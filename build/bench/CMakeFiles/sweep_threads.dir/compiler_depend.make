# Empty compiler generated dependencies file for sweep_threads.
# This may be replaced when dependencies are built.
