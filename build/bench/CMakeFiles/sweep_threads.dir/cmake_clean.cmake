file(REMOVE_RECURSE
  "CMakeFiles/sweep_threads.dir/sweep_threads.cc.o"
  "CMakeFiles/sweep_threads.dir/sweep_threads.cc.o.d"
  "sweep_threads"
  "sweep_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
