# Empty compiler generated dependencies file for detector_accuracy.
# This may be replaced when dependencies are built.
