file(REMOVE_RECURSE
  "CMakeFiles/detector_accuracy.dir/detector_accuracy.cc.o"
  "CMakeFiles/detector_accuracy.dir/detector_accuracy.cc.o.d"
  "detector_accuracy"
  "detector_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
