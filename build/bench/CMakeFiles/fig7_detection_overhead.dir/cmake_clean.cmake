file(REMOVE_RECURSE
  "CMakeFiles/fig7_detection_overhead.dir/fig7_detection_overhead.cc.o"
  "CMakeFiles/fig7_detection_overhead.dir/fig7_detection_overhead.cc.o.d"
  "fig7_detection_overhead"
  "fig7_detection_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_detection_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
