file(REMOVE_RECURSE
  "CMakeFiles/fig8_memory_overhead.dir/fig8_memory_overhead.cc.o"
  "CMakeFiles/fig8_memory_overhead.dir/fig8_memory_overhead.cc.o.d"
  "fig8_memory_overhead"
  "fig8_memory_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_memory_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
