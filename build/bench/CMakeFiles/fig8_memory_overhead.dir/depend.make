# Empty dependencies file for fig8_memory_overhead.
# This may be replaced when dependencies are built.
