file(REMOVE_RECURSE
  "CMakeFiles/predator_prediction.dir/predator_prediction.cc.o"
  "CMakeFiles/predator_prediction.dir/predator_prediction.cc.o.d"
  "predator_prediction"
  "predator_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predator_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
