# Empty dependencies file for predator_prediction.
# This may be replaced when dependencies are built.
