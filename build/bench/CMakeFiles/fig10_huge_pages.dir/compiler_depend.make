# Empty compiler generated dependencies file for fig10_huge_pages.
# This may be replaced when dependencies are built.
