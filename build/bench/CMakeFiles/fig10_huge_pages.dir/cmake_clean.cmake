file(REMOVE_RECURSE
  "CMakeFiles/fig10_huge_pages.dir/fig10_huge_pages.cc.o"
  "CMakeFiles/fig10_huge_pages.dir/fig10_huge_pages.cc.o.d"
  "fig10_huge_pages"
  "fig10_huge_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_huge_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
