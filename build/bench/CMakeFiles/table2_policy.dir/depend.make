# Empty dependencies file for table2_policy.
# This may be replaced when dependencies are built.
