file(REMOVE_RECURSE
  "CMakeFiles/table2_policy.dir/table2_policy.cc.o"
  "CMakeFiles/table2_policy.dir/table2_policy.cc.o.d"
  "table2_policy"
  "table2_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
