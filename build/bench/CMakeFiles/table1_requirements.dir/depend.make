# Empty dependencies file for table1_requirements.
# This may be replaced when dependencies are built.
