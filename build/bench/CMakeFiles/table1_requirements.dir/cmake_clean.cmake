file(REMOVE_RECURSE
  "CMakeFiles/table1_requirements.dir/table1_requirements.cc.o"
  "CMakeFiles/table1_requirements.dir/table1_requirements.cc.o.d"
  "table1_requirements"
  "table1_requirements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_requirements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
