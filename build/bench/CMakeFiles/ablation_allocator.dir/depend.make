# Empty dependencies file for ablation_allocator.
# This may be replaced when dependencies are built.
