file(REMOVE_RECURSE
  "CMakeFiles/ablation_allocator.dir/ablation_allocator.cc.o"
  "CMakeFiles/ablation_allocator.dir/ablation_allocator.cc.o.d"
  "ablation_allocator"
  "ablation_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
