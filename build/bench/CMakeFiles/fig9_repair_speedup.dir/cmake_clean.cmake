file(REMOVE_RECURSE
  "CMakeFiles/fig9_repair_speedup.dir/fig9_repair_speedup.cc.o"
  "CMakeFiles/fig9_repair_speedup.dir/fig9_repair_speedup.cc.o.d"
  "fig9_repair_speedup"
  "fig9_repair_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_repair_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
