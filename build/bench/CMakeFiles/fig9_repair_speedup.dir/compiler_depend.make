# Empty compiler generated dependencies file for fig9_repair_speedup.
# This may be replaced when dependencies are built.
