# Empty compiler generated dependencies file for ablation_ptsb_everywhere.
# This may be replaced when dependencies are built.
