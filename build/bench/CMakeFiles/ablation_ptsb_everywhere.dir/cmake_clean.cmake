file(REMOVE_RECURSE
  "CMakeFiles/ablation_ptsb_everywhere.dir/ablation_ptsb_everywhere.cc.o"
  "CMakeFiles/ablation_ptsb_everywhere.dir/ablation_ptsb_everywhere.cc.o.d"
  "ablation_ptsb_everywhere"
  "ablation_ptsb_everywhere.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ptsb_everywhere.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
