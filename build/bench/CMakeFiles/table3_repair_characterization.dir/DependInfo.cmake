
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table3_repair_characterization.cc" "bench/CMakeFiles/table3_repair_characterization.dir/table3_repair_characterization.cc.o" "gcc" "bench/CMakeFiles/table3_repair_characterization.dir/table3_repair_characterization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tmi_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tmi_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/tmi_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/ptsb/CMakeFiles/tmi_ptsb.dir/DependInfo.cmake"
  "/root/repo/build/src/consistency/CMakeFiles/tmi_consistency.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tmi_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tmi_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tmi_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tmi_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/tmi_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/tmi_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/tmi_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/tmi_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tmi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
