file(REMOVE_RECURSE
  "CMakeFiles/table3_repair_characterization.dir/table3_repair_characterization.cc.o"
  "CMakeFiles/table3_repair_characterization.dir/table3_repair_characterization.cc.o.d"
  "table3_repair_characterization"
  "table3_repair_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_repair_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
