# Empty dependencies file for fig12_cholesky_consistency.
# This may be replaced when dependencies are built.
