file(REMOVE_RECURSE
  "CMakeFiles/fig12_cholesky_consistency.dir/fig12_cholesky_consistency.cc.o"
  "CMakeFiles/fig12_cholesky_consistency.dir/fig12_cholesky_consistency.cc.o.d"
  "fig12_cholesky_consistency"
  "fig12_cholesky_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cholesky_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
