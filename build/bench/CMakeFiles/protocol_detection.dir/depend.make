# Empty dependencies file for protocol_detection.
# This may be replaced when dependencies are built.
