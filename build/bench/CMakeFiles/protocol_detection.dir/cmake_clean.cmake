file(REMOVE_RECURSE
  "CMakeFiles/protocol_detection.dir/protocol_detection.cc.o"
  "CMakeFiles/protocol_detection.dir/protocol_detection.cc.o.d"
  "protocol_detection"
  "protocol_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
