file(REMOVE_RECURSE
  "CMakeFiles/fig11_canneal_consistency.dir/fig11_canneal_consistency.cc.o"
  "CMakeFiles/fig11_canneal_consistency.dir/fig11_canneal_consistency.cc.o.d"
  "fig11_canneal_consistency"
  "fig11_canneal_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_canneal_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
