# Empty compiler generated dependencies file for fig11_canneal_consistency.
# This may be replaced when dependencies are built.
