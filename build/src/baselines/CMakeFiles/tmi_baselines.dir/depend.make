# Empty dependencies file for tmi_baselines.
# This may be replaced when dependencies are built.
