file(REMOVE_RECURSE
  "libtmi_baselines.a"
)
