file(REMOVE_RECURSE
  "CMakeFiles/tmi_baselines.dir/laser.cc.o"
  "CMakeFiles/tmi_baselines.dir/laser.cc.o.d"
  "CMakeFiles/tmi_baselines.dir/sheriff.cc.o"
  "CMakeFiles/tmi_baselines.dir/sheriff.cc.o.d"
  "libtmi_baselines.a"
  "libtmi_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmi_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
