# Empty compiler generated dependencies file for tmi_perf.
# This may be replaced when dependencies are built.
