file(REMOVE_RECURSE
  "CMakeFiles/tmi_perf.dir/pebs.cc.o"
  "CMakeFiles/tmi_perf.dir/pebs.cc.o.d"
  "libtmi_perf.a"
  "libtmi_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmi_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
