file(REMOVE_RECURSE
  "libtmi_perf.a"
)
