# Empty dependencies file for tmi_cache.
# This may be replaced when dependencies are built.
