file(REMOVE_RECURSE
  "libtmi_cache.a"
)
