file(REMOVE_RECURSE
  "CMakeFiles/tmi_cache.dir/cache_sim.cc.o"
  "CMakeFiles/tmi_cache.dir/cache_sim.cc.o.d"
  "libtmi_cache.a"
  "libtmi_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmi_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
