# Empty dependencies file for tmi_detect.
# This may be replaced when dependencies are built.
