file(REMOVE_RECURSE
  "libtmi_detect.a"
)
