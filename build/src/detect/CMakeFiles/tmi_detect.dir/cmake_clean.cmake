file(REMOVE_RECURSE
  "CMakeFiles/tmi_detect.dir/detector.cc.o"
  "CMakeFiles/tmi_detect.dir/detector.cc.o.d"
  "libtmi_detect.a"
  "libtmi_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmi_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
