# Empty compiler generated dependencies file for tmi_sched.
# This may be replaced when dependencies are built.
