file(REMOVE_RECURSE
  "CMakeFiles/tmi_sched.dir/scheduler.cc.o"
  "CMakeFiles/tmi_sched.dir/scheduler.cc.o.d"
  "CMakeFiles/tmi_sched.dir/sync.cc.o"
  "CMakeFiles/tmi_sched.dir/sync.cc.o.d"
  "libtmi_sched.a"
  "libtmi_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmi_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
