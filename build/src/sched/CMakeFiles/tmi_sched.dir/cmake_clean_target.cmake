file(REMOVE_RECURSE
  "libtmi_sched.a"
)
