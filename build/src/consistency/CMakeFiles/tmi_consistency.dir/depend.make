# Empty dependencies file for tmi_consistency.
# This may be replaced when dependencies are built.
