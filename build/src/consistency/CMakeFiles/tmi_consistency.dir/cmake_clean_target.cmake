file(REMOVE_RECURSE
  "libtmi_consistency.a"
)
