file(REMOVE_RECURSE
  "CMakeFiles/tmi_consistency.dir/ccc.cc.o"
  "CMakeFiles/tmi_consistency.dir/ccc.cc.o.d"
  "libtmi_consistency.a"
  "libtmi_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmi_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
