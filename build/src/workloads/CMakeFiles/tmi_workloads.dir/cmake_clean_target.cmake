file(REMOVE_RECURSE
  "libtmi_workloads.a"
)
