# Empty compiler generated dependencies file for tmi_workloads.
# This may be replaced when dependencies are built.
