file(REMOVE_RECURSE
  "CMakeFiles/tmi_workloads.dir/boost_micro.cc.o"
  "CMakeFiles/tmi_workloads.dir/boost_micro.cc.o.d"
  "CMakeFiles/tmi_workloads.dir/canneal.cc.o"
  "CMakeFiles/tmi_workloads.dir/canneal.cc.o.d"
  "CMakeFiles/tmi_workloads.dir/cholesky.cc.o"
  "CMakeFiles/tmi_workloads.dir/cholesky.cc.o.d"
  "CMakeFiles/tmi_workloads.dir/fuzz_layout.cc.o"
  "CMakeFiles/tmi_workloads.dir/fuzz_layout.cc.o.d"
  "CMakeFiles/tmi_workloads.dir/generic_kernel.cc.o"
  "CMakeFiles/tmi_workloads.dir/generic_kernel.cc.o.d"
  "CMakeFiles/tmi_workloads.dir/histogram.cc.o"
  "CMakeFiles/tmi_workloads.dir/histogram.cc.o.d"
  "CMakeFiles/tmi_workloads.dir/leveldb.cc.o"
  "CMakeFiles/tmi_workloads.dir/leveldb.cc.o.d"
  "CMakeFiles/tmi_workloads.dir/linear_regression.cc.o"
  "CMakeFiles/tmi_workloads.dir/linear_regression.cc.o.d"
  "CMakeFiles/tmi_workloads.dir/lu_ncb.cc.o"
  "CMakeFiles/tmi_workloads.dir/lu_ncb.cc.o.d"
  "CMakeFiles/tmi_workloads.dir/registry.cc.o"
  "CMakeFiles/tmi_workloads.dir/registry.cc.o.d"
  "CMakeFiles/tmi_workloads.dir/stringmatch.cc.o"
  "CMakeFiles/tmi_workloads.dir/stringmatch.cc.o.d"
  "libtmi_workloads.a"
  "libtmi_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmi_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
