
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/boost_micro.cc" "src/workloads/CMakeFiles/tmi_workloads.dir/boost_micro.cc.o" "gcc" "src/workloads/CMakeFiles/tmi_workloads.dir/boost_micro.cc.o.d"
  "/root/repo/src/workloads/canneal.cc" "src/workloads/CMakeFiles/tmi_workloads.dir/canneal.cc.o" "gcc" "src/workloads/CMakeFiles/tmi_workloads.dir/canneal.cc.o.d"
  "/root/repo/src/workloads/cholesky.cc" "src/workloads/CMakeFiles/tmi_workloads.dir/cholesky.cc.o" "gcc" "src/workloads/CMakeFiles/tmi_workloads.dir/cholesky.cc.o.d"
  "/root/repo/src/workloads/fuzz_layout.cc" "src/workloads/CMakeFiles/tmi_workloads.dir/fuzz_layout.cc.o" "gcc" "src/workloads/CMakeFiles/tmi_workloads.dir/fuzz_layout.cc.o.d"
  "/root/repo/src/workloads/generic_kernel.cc" "src/workloads/CMakeFiles/tmi_workloads.dir/generic_kernel.cc.o" "gcc" "src/workloads/CMakeFiles/tmi_workloads.dir/generic_kernel.cc.o.d"
  "/root/repo/src/workloads/histogram.cc" "src/workloads/CMakeFiles/tmi_workloads.dir/histogram.cc.o" "gcc" "src/workloads/CMakeFiles/tmi_workloads.dir/histogram.cc.o.d"
  "/root/repo/src/workloads/leveldb.cc" "src/workloads/CMakeFiles/tmi_workloads.dir/leveldb.cc.o" "gcc" "src/workloads/CMakeFiles/tmi_workloads.dir/leveldb.cc.o.d"
  "/root/repo/src/workloads/linear_regression.cc" "src/workloads/CMakeFiles/tmi_workloads.dir/linear_regression.cc.o" "gcc" "src/workloads/CMakeFiles/tmi_workloads.dir/linear_regression.cc.o.d"
  "/root/repo/src/workloads/lu_ncb.cc" "src/workloads/CMakeFiles/tmi_workloads.dir/lu_ncb.cc.o" "gcc" "src/workloads/CMakeFiles/tmi_workloads.dir/lu_ncb.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/tmi_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/tmi_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/stringmatch.cc" "src/workloads/CMakeFiles/tmi_workloads.dir/stringmatch.cc.o" "gcc" "src/workloads/CMakeFiles/tmi_workloads.dir/stringmatch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tmi_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tmi_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tmi_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/tmi_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/tmi_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/tmi_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/tmi_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tmi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
