file(REMOVE_RECURSE
  "CMakeFiles/tmi_runtime.dir/tmi_runtime.cc.o"
  "CMakeFiles/tmi_runtime.dir/tmi_runtime.cc.o.d"
  "libtmi_runtime.a"
  "libtmi_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmi_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
