# Empty compiler generated dependencies file for tmi_runtime.
# This may be replaced when dependencies are built.
