file(REMOVE_RECURSE
  "libtmi_runtime.a"
)
