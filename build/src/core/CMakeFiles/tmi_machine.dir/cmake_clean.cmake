file(REMOVE_RECURSE
  "CMakeFiles/tmi_machine.dir/machine.cc.o"
  "CMakeFiles/tmi_machine.dir/machine.cc.o.d"
  "libtmi_machine.a"
  "libtmi_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmi_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
