file(REMOVE_RECURSE
  "libtmi_machine.a"
)
