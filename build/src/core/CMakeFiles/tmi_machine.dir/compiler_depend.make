# Empty compiler generated dependencies file for tmi_machine.
# This may be replaced when dependencies are built.
