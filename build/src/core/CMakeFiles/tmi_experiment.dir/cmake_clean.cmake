file(REMOVE_RECURSE
  "CMakeFiles/tmi_experiment.dir/experiment.cc.o"
  "CMakeFiles/tmi_experiment.dir/experiment.cc.o.d"
  "libtmi_experiment.a"
  "libtmi_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmi_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
