file(REMOVE_RECURSE
  "libtmi_experiment.a"
)
