# Empty dependencies file for tmi_experiment.
# This may be replaced when dependencies are built.
