file(REMOVE_RECURSE
  "CMakeFiles/tmi_mem.dir/mmu.cc.o"
  "CMakeFiles/tmi_mem.dir/mmu.cc.o.d"
  "CMakeFiles/tmi_mem.dir/physical.cc.o"
  "CMakeFiles/tmi_mem.dir/physical.cc.o.d"
  "libtmi_mem.a"
  "libtmi_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmi_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
