# Empty dependencies file for tmi_mem.
# This may be replaced when dependencies are built.
