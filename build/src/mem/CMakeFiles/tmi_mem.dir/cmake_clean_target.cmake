file(REMOVE_RECURSE
  "libtmi_mem.a"
)
