# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("mem")
subdirs("sched")
subdirs("cache")
subdirs("perf")
subdirs("isa")
subdirs("ptsb")
subdirs("consistency")
subdirs("detect")
subdirs("alloc")
subdirs("runtime")
subdirs("baselines")
subdirs("workloads")
subdirs("core")
