# CMake generated Testfile for 
# Source directory: /root/repo/src/ptsb
# Build directory: /root/repo/build/src/ptsb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
