file(REMOVE_RECURSE
  "CMakeFiles/tmi_ptsb.dir/ptsb.cc.o"
  "CMakeFiles/tmi_ptsb.dir/ptsb.cc.o.d"
  "libtmi_ptsb.a"
  "libtmi_ptsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmi_ptsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
