# Empty dependencies file for tmi_ptsb.
# This may be replaced when dependencies are built.
