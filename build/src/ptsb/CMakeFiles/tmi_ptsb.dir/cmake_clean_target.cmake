file(REMOVE_RECURSE
  "libtmi_ptsb.a"
)
