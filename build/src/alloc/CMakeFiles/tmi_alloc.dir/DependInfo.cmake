
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/glibc_like.cc" "src/alloc/CMakeFiles/tmi_alloc.dir/glibc_like.cc.o" "gcc" "src/alloc/CMakeFiles/tmi_alloc.dir/glibc_like.cc.o.d"
  "/root/repo/src/alloc/lockless.cc" "src/alloc/CMakeFiles/tmi_alloc.dir/lockless.cc.o" "gcc" "src/alloc/CMakeFiles/tmi_alloc.dir/lockless.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tmi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
