file(REMOVE_RECURSE
  "CMakeFiles/tmi_alloc.dir/glibc_like.cc.o"
  "CMakeFiles/tmi_alloc.dir/glibc_like.cc.o.d"
  "CMakeFiles/tmi_alloc.dir/lockless.cc.o"
  "CMakeFiles/tmi_alloc.dir/lockless.cc.o.d"
  "libtmi_alloc.a"
  "libtmi_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmi_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
