# Empty compiler generated dependencies file for tmi_alloc.
# This may be replaced when dependencies are built.
