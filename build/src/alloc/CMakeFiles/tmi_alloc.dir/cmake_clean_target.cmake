file(REMOVE_RECURSE
  "libtmi_alloc.a"
)
