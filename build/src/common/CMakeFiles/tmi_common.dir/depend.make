# Empty dependencies file for tmi_common.
# This may be replaced when dependencies are built.
