file(REMOVE_RECURSE
  "CMakeFiles/tmi_common.dir/logging.cc.o"
  "CMakeFiles/tmi_common.dir/logging.cc.o.d"
  "CMakeFiles/tmi_common.dir/stats.cc.o"
  "CMakeFiles/tmi_common.dir/stats.cc.o.d"
  "libtmi_common.a"
  "libtmi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
