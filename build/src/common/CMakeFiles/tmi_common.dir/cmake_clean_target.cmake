file(REMOVE_RECURSE
  "libtmi_common.a"
)
