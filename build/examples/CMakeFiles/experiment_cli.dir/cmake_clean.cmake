file(REMOVE_RECURSE
  "CMakeFiles/experiment_cli.dir/experiment_cli.cpp.o"
  "CMakeFiles/experiment_cli.dir/experiment_cli.cpp.o.d"
  "experiment_cli"
  "experiment_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
