# Empty dependencies file for experiment_cli.
# This may be replaced when dependencies are built.
