file(REMOVE_RECURSE
  "CMakeFiles/consistency_demo.dir/consistency_demo.cpp.o"
  "CMakeFiles/consistency_demo.dir/consistency_demo.cpp.o.d"
  "consistency_demo"
  "consistency_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
