# Empty dependencies file for consistency_demo.
# This may be replaced when dependencies are built.
