# Empty compiler generated dependencies file for leveldb_repair.
# This may be replaced when dependencies are built.
