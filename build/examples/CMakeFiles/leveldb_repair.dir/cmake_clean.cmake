file(REMOVE_RECURSE
  "CMakeFiles/leveldb_repair.dir/leveldb_repair.cpp.o"
  "CMakeFiles/leveldb_repair.dir/leveldb_repair.cpp.o.d"
  "leveldb_repair"
  "leveldb_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leveldb_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
