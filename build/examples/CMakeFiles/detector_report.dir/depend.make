# Empty dependencies file for detector_report.
# This may be replaced when dependencies are built.
