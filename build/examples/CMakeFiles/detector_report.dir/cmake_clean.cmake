file(REMOVE_RECURSE
  "CMakeFiles/detector_report.dir/detector_report.cpp.o"
  "CMakeFiles/detector_report.dir/detector_report.cpp.o.d"
  "detector_report"
  "detector_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
