# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/perf_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/ptsb_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/detect_test[1]_include.cmake")
include("/root/repo/build/tests/alloc_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_repair_test[1]_include.cmake")
include("/root/repo/build/tests/integration_consistency_test[1]_include.cmake")
include("/root/repo/build/tests/integration_baseline_test[1]_include.cmake")
include("/root/repo/build/tests/integration_sweep_test[1]_include.cmake")
