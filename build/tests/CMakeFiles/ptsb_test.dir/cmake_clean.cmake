file(REMOVE_RECURSE
  "CMakeFiles/ptsb_test.dir/ptsb/conflict_test.cc.o"
  "CMakeFiles/ptsb_test.dir/ptsb/conflict_test.cc.o.d"
  "CMakeFiles/ptsb_test.dir/ptsb/ptsb_test.cc.o"
  "CMakeFiles/ptsb_test.dir/ptsb/ptsb_test.cc.o.d"
  "ptsb_test"
  "ptsb_test.pdb"
  "ptsb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptsb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
