# Empty dependencies file for ptsb_test.
# This may be replaced when dependencies are built.
