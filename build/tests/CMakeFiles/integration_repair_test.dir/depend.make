# Empty dependencies file for integration_repair_test.
# This may be replaced when dependencies are built.
