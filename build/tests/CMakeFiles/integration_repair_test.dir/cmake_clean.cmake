file(REMOVE_RECURSE
  "CMakeFiles/integration_repair_test.dir/integration/repair_test.cc.o"
  "CMakeFiles/integration_repair_test.dir/integration/repair_test.cc.o.d"
  "integration_repair_test"
  "integration_repair_test.pdb"
  "integration_repair_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_repair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
