file(REMOVE_RECURSE
  "CMakeFiles/detect_test.dir/detect/accuracy_test.cc.o"
  "CMakeFiles/detect_test.dir/detect/accuracy_test.cc.o.d"
  "CMakeFiles/detect_test.dir/detect/detector_test.cc.o"
  "CMakeFiles/detect_test.dir/detect/detector_test.cc.o.d"
  "CMakeFiles/detect_test.dir/detect/prediction_test.cc.o"
  "CMakeFiles/detect_test.dir/detect/prediction_test.cc.o.d"
  "detect_test"
  "detect_test.pdb"
  "detect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
