file(REMOVE_RECURSE
  "CMakeFiles/integration_baseline_test.dir/integration/baseline_test.cc.o"
  "CMakeFiles/integration_baseline_test.dir/integration/baseline_test.cc.o.d"
  "integration_baseline_test"
  "integration_baseline_test.pdb"
  "integration_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
