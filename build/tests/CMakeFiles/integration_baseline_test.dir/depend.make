# Empty dependencies file for integration_baseline_test.
# This may be replaced when dependencies are built.
