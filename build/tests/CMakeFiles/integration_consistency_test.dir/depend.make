# Empty dependencies file for integration_consistency_test.
# This may be replaced when dependencies are built.
