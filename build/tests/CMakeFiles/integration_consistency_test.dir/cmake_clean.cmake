file(REMOVE_RECURSE
  "CMakeFiles/integration_consistency_test.dir/integration/consistency_test.cc.o"
  "CMakeFiles/integration_consistency_test.dir/integration/consistency_test.cc.o.d"
  "integration_consistency_test"
  "integration_consistency_test.pdb"
  "integration_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
