/**
 * @file
 * Unit tests for the green-thread scheduler.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sched/scheduler.hh"

namespace tmi
{

TEST(Scheduler, RunsSingleThreadToCompletion)
{
    SimScheduler sched;
    bool ran = false;
    sched.spawn("t", [&] { ran = true; });
    EXPECT_EQ(sched.run(), RunOutcome::Completed);
    EXPECT_TRUE(ran);
}

TEST(Scheduler, AdvanceAccumulatesClock)
{
    SimScheduler sched;
    sched.spawn("t", [&] {
        sched.advance(100);
        sched.advance(250);
    });
    sched.run();
    EXPECT_EQ(sched.maxClock(), 350u);
}

TEST(Scheduler, MinClockFirstInterleaving)
{
    // The slow thread advances in big steps; the fast one in small
    // steps. Min-clock scheduling must interleave them so that the
    // fast thread's events stay between the slow thread's.
    SimScheduler sched(10);
    std::vector<int> order;
    sched.spawn("slow", [&] {
        for (int i = 0; i < 3; ++i) {
            order.push_back(100 + i);
            sched.advance(100);
        }
    });
    sched.spawn("fast", [&] {
        for (int i = 0; i < 3; ++i) {
            order.push_back(200 + i);
            sched.advance(10);
        }
    });
    sched.run();
    // fast(200,201,202) all run before slow's second step (101)
    // because their clocks (0,10,20) are below 100.
    auto pos = [&](int v) {
        for (std::size_t i = 0; i < order.size(); ++i) {
            if (order[i] == v)
                return i;
        }
        return order.size();
    };
    EXPECT_LT(pos(202), pos(101));
}

TEST(Scheduler, BlockAndWake)
{
    SimScheduler sched;
    bool woke = false;
    ThreadId sleeper = sched.spawn("sleeper", [&] {
        sched.block();
        woke = true;
    });
    sched.spawn("waker", [&] {
        sched.advance(500);
        sched.wake(sleeper, sched.now());
    });
    EXPECT_EQ(sched.run(), RunOutcome::Completed);
    EXPECT_TRUE(woke);
    // The sleeper resumed no earlier than the waker's clock.
    EXPECT_GE(sched.thread(sleeper).clock(), 500u);
}

TEST(Scheduler, WakeBeforeBlockIsNotLost)
{
    // A wake that arrives while the target is still Running must be
    // consumed by the next block() instead of losing the wakeup.
    SimScheduler sched(1000000); // huge quantum: no preemption
    ThreadId a = sched.spawn("a", [&] {
        sched.yield(); // let b run first
        sched.block(); // b already woke us: must not sleep
    });
    sched.spawn("b", [&] { sched.wake(a, 42); });
    EXPECT_EQ(sched.run(), RunOutcome::Completed);
}

TEST(Scheduler, DeadlockDetected)
{
    SimScheduler sched;
    sched.spawn("stuck", [&] { sched.block(); });
    EXPECT_EQ(sched.run(), RunOutcome::Deadlock);
}

TEST(Scheduler, TimeoutOnRunawayThread)
{
    SimScheduler sched;
    sched.spawn("spin", [&] {
        while (true)
            sched.advance(100);
    });
    EXPECT_EQ(sched.run(50000), RunOutcome::Timeout);
}

TEST(Scheduler, DaemonDoesNotKeepSimulationAlive)
{
    SimScheduler sched;
    sched.spawn(
        "daemon",
        [&] {
            while (true)
                sched.sleepUntil(sched.now() + 1000);
        },
        /*daemon=*/true);
    sched.spawn("app", [&] { sched.advance(5000); });
    EXPECT_EQ(sched.run(), RunOutcome::Completed);
}

TEST(Scheduler, SleepUntilAdvancesClock)
{
    SimScheduler sched;
    sched.spawn("s", [&] {
        sched.sleepUntil(12345);
        EXPECT_GE(sched.now(), 12345u);
    });
    sched.run();
    EXPECT_GE(sched.maxClock(), 12345u);
}

TEST(Scheduler, SpawnFromInsideThreadInheritsClock)
{
    SimScheduler sched;
    Cycles child_start = 0;
    sched.spawn("parent", [&] {
        sched.advance(700);
        sched.spawn("child",
                    [&] { child_start = sched.now(); });
    });
    sched.run();
    EXPECT_GE(child_start, 700u);
}

TEST(Scheduler, PenalizeAddsTime)
{
    SimScheduler sched;
    ThreadId t = sched.spawn("t", [&] { sched.block(); });
    sched.spawn("p", [&] {
        sched.penalize(t, 9000);
        sched.wake(t, 0);
    });
    EXPECT_EQ(sched.run(), RunOutcome::Completed);
    EXPECT_GE(sched.thread(t).clock(), 9000u);
    EXPECT_GE(sched.maxClock(), 9000u);
}

TEST(Scheduler, CheckpointRestoreRewindsTheStackNotTheHeap)
{
    SimScheduler sched;
    FiberCheckpoint ck;
    int passes = 0; // host-resident: survives the rewind
    sched.spawn("t", [&] {
        int local = 0; // fiber-stack resident: rewound
        std::uint64_t before = ck.resumes;
        sched.checkpointCurrent(ck);
        bool rolled_back = ck.resumes != before;
        ++passes;
        ++local;
        if (!rolled_back) {
            EXPECT_EQ(local, 1);
            sched.restoreCurrent(ck);
            FAIL() << "restoreCurrent must not return";
        }
        EXPECT_EQ(local, 1) << "stack locals must rewind to capture";
    });
    EXPECT_EQ(sched.run(), RunOutcome::Completed);
    EXPECT_EQ(passes, 2) << "heap state must survive the rewind";
    EXPECT_EQ(ck.resumes, 1u);
}

TEST(Scheduler, HijackRewindsASuspendedThread)
{
    SimScheduler sched;
    FiberCheckpoint ck;
    bool rewound = false;
    ThreadId victim = sched.spawn("victim", [&] {
        std::uint64_t before = ck.resumes;
        sched.checkpointCurrent(ck);
        if (ck.resumes != before) {
            rewound = true; // the remote abort landed
            return;
        }
        // First pass: yield forever; only the hijack ends the spin.
        for (int i = 0; i < 1'000'000; ++i)
            sched.advance(10);
        FAIL() << "victim was never hijacked";
    });
    sched.spawn("attacker", [&] {
        sched.advance(100); // victim captures, then spins
        sched.hijackThread(victim, ck);
    });
    EXPECT_EQ(sched.run(), RunOutcome::Completed);
    EXPECT_TRUE(rewound);
    EXPECT_EQ(ck.resumes, 1u);
}

TEST(Scheduler, RestoreKeepsAbortedWorkOnTheClock)
{
    // Rollback rewinds state, never time: cycles burned inside an
    // aborted txn stay burned (that is what makes livelock-by-abort
    // visible to the timeout verdicts).
    SimScheduler sched;
    FiberCheckpoint ck;
    Cycles at_capture = 0, at_resume = 0;
    sched.spawn("t", [&] {
        sched.advance(500);
        std::uint64_t before = ck.resumes;
        at_capture = sched.now();
        sched.checkpointCurrent(ck);
        if (ck.resumes != before) {
            at_resume = sched.now();
            return;
        }
        sched.advance(250); // doomed speculative work
        sched.restoreCurrent(ck);
    });
    EXPECT_EQ(sched.run(), RunOutcome::Completed);
    EXPECT_EQ(at_capture, 500u);
    EXPECT_EQ(at_resume, 750u);
}

TEST(Scheduler, ManyThreadsAllComplete)
{
    SimScheduler sched;
    int done = 0;
    for (int i = 0; i < 32; ++i) {
        sched.spawn("w" + std::to_string(i), [&, i] {
            for (int k = 0; k < i + 1; ++k)
                sched.advance(10);
            ++done;
        });
    }
    EXPECT_EQ(sched.run(), RunOutcome::Completed);
    EXPECT_EQ(done, 32);
    EXPECT_GT(sched.contextSwitches(), 32u);
}

} // namespace tmi
