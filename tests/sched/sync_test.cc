/**
 * @file
 * Unit tests for simulated synchronization primitives.
 */

#include <gtest/gtest.h>

#include "sched/sync.hh"

namespace tmi
{

namespace
{

struct SyncFixture : public ::testing::Test
{
    SyncFixture() : sched(100), sync(sched) {}

    SimScheduler sched;
    SyncManager sync;
};

} // namespace

TEST_F(SyncFixture, MutexProvidesMutualExclusion)
{
    sync.mutexInit(1);
    int in_critical = 0;
    bool overlap = false;
    for (int i = 0; i < 4; ++i) {
        sched.spawn("t" + std::to_string(i), [&] {
            for (int k = 0; k < 50; ++k) {
                sync.mutexLock(1);
                ++in_critical;
                if (in_critical > 1)
                    overlap = true;
                sched.advance(500); // long critical section
                --in_critical;
                sync.mutexUnlock(1);
                sched.advance(50);
            }
        });
    }
    EXPECT_EQ(sched.run(), RunOutcome::Completed);
    EXPECT_FALSE(overlap);
    EXPECT_EQ(sync.acquires(), 200u);
    EXPECT_GT(sync.contendedAcquires(), 0u);
}

TEST_F(SyncFixture, TryLockFailsWhenHeld)
{
    sync.mutexInit(1);
    sched.spawn("holder", [&] {
        EXPECT_TRUE(sync.mutexTryLock(1));
        sched.spawn("prober", [&] {
            EXPECT_FALSE(sync.mutexTryLock(1));
        });
        sched.advance(10000);
        sync.mutexUnlock(1);
    });
    EXPECT_EQ(sched.run(), RunOutcome::Completed);
}

TEST_F(SyncFixture, MutexHandoffIsFifo)
{
    sync.mutexInit(1);
    std::vector<int> order;
    sched.spawn("t0", [&] {
        sync.mutexLock(1);
        sched.advance(10000); // let waiters queue in spawn order
        sync.mutexUnlock(1);
    });
    for (int i = 1; i <= 3; ++i) {
        sched.spawn("t" + std::to_string(i), [&, i] {
            sched.advance(static_cast<Cycles>(i)); // queue in order
            sync.mutexLock(1);
            order.push_back(i);
            sync.mutexUnlock(1);
        });
    }
    EXPECT_EQ(sched.run(), RunOutcome::Completed);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
}

TEST_F(SyncFixture, BarrierReleasesAllAtMaxArrival)
{
    sync.barrierInit(7, 3);
    Cycles release[3] = {};
    for (int i = 0; i < 3; ++i) {
        sched.spawn("t" + std::to_string(i), [&, i] {
            sched.advance(static_cast<Cycles>(1000 * (i + 1)));
            sync.barrierWait(7);
            release[i] = sched.now();
        });
    }
    EXPECT_EQ(sched.run(), RunOutcome::Completed);
    // Nobody leaves the barrier before the last arrival (~3000).
    for (int i = 0; i < 3; ++i)
        EXPECT_GE(release[i], 3000u);
}

TEST_F(SyncFixture, BarrierIsReusable)
{
    sync.barrierInit(7, 2);
    int rounds_done = 0;
    for (int i = 0; i < 2; ++i) {
        sched.spawn("t" + std::to_string(i), [&, i] {
            for (int r = 0; r < 5; ++r) {
                sched.advance(static_cast<Cycles>(100 * (i + 1)));
                sync.barrierWait(7);
            }
            ++rounds_done;
        });
    }
    EXPECT_EQ(sched.run(), RunOutcome::Completed);
    EXPECT_EQ(rounds_done, 2);
}

TEST_F(SyncFixture, CondSignalWakesOneWaiter)
{
    sync.mutexInit(1);
    sync.condInit(2);
    int woken = 0;
    for (int i = 0; i < 2; ++i) {
        sched.spawn("waiter" + std::to_string(i), [&] {
            sync.mutexLock(1);
            sync.condWait(2, 1);
            ++woken;
            sync.mutexUnlock(1);
        });
    }
    sched.spawn("signaler", [&] {
        sched.advance(5000);
        sync.mutexLock(1);
        sync.condSignal(2);
        sync.mutexUnlock(1);
        sched.advance(5000);
        sync.mutexLock(1);
        sync.condSignal(2);
        sync.mutexUnlock(1);
    });
    EXPECT_EQ(sched.run(), RunOutcome::Completed);
    EXPECT_EQ(woken, 2);
}

TEST_F(SyncFixture, CondBroadcastWakesAll)
{
    sync.mutexInit(1);
    sync.condInit(2);
    int woken = 0;
    for (int i = 0; i < 4; ++i) {
        sched.spawn("waiter" + std::to_string(i), [&] {
            sync.mutexLock(1);
            sync.condWait(2, 1);
            ++woken;
            sync.mutexUnlock(1);
        });
    }
    sched.spawn("bcast", [&] {
        sched.advance(5000);
        sync.mutexLock(1);
        sync.condBroadcast(2);
        sync.mutexUnlock(1);
    });
    EXPECT_EQ(sched.run(), RunOutcome::Completed);
    EXPECT_EQ(woken, 4);
}

TEST_F(SyncFixture, SignalBetweenUnlockAndBlockNotLost)
{
    // Regression for the classic lost-wakeup window: the signaler
    // runs in the gap where the waiter has released the mutex but
    // has not yet blocked.
    sync.mutexInit(1);
    sync.condInit(2);
    SimScheduler tight(1); // quantum 1: maximum interleaving
    SyncManager tsync(tight);
    tsync.mutexInit(1);
    tsync.condInit(2);
    bool woke = false;
    tight.spawn("waiter", [&] {
        tsync.mutexLock(1);
        tsync.condWait(2, 1);
        woke = true;
        tsync.mutexUnlock(1);
    });
    tight.spawn("signaler", [&] {
        tight.advance(2);
        tsync.mutexLock(1);
        tsync.condSignal(2);
        tsync.mutexUnlock(1);
    });
    EXPECT_EQ(tight.run(1000000), RunOutcome::Completed);
    EXPECT_TRUE(woke);
}

} // namespace tmi
