/**
 * @file
 * Unit tests for code-centric consistency: the Table 2 matrix and
 * the per-thread region policy.
 */

#include <gtest/gtest.h>

#include "consistency/ccc.hh"

namespace tmi
{

TEST(Table2, SemanticsMatrix)
{
    using RK = RegionKind;
    using IS = InteractionSemantics;
    // Case 1: regular/regular and regular/atomic are undefined.
    EXPECT_EQ(interactionSemantics(RK::Regular, RK::Regular),
              IS::Undefined);
    EXPECT_EQ(interactionSemantics(RK::Regular, RK::Atomic),
              IS::Undefined);
    EXPECT_EQ(interactionSemantics(RK::Atomic, RK::Regular),
              IS::Undefined);
    // Case 2: atomic/atomic has atomic semantics.
    EXPECT_EQ(interactionSemantics(RK::Atomic, RK::Atomic), IS::Atomic);
    // Cases 3 and 4: asm with regular or atomic is unknown.
    EXPECT_EQ(interactionSemantics(RK::Regular, RK::Asm), IS::Unknown);
    EXPECT_EQ(interactionSemantics(RK::Asm, RK::Regular), IS::Unknown);
    EXPECT_EQ(interactionSemantics(RK::Atomic, RK::Asm), IS::Unknown);
    // Case 5: asm/asm is TSO.
    EXPECT_EQ(interactionSemantics(RK::Asm, RK::Asm), IS::Tso);
}

TEST(Table2, CaseNumbers)
{
    using RK = RegionKind;
    EXPECT_EQ(interactionCase(RK::Regular, RK::Regular), 1);
    EXPECT_EQ(interactionCase(RK::Regular, RK::Atomic), 1);
    EXPECT_EQ(interactionCase(RK::Atomic, RK::Atomic), 2);
    EXPECT_EQ(interactionCase(RK::Regular, RK::Asm), 3);
    EXPECT_EQ(interactionCase(RK::Atomic, RK::Asm), 4);
    EXPECT_EQ(interactionCase(RK::Asm, RK::Asm), 5);
}

TEST(Table2, PtsbPermittedOnlyForUndefinedCells)
{
    using RK = RegionKind;
    EXPECT_TRUE(ptsbPermitted(RK::Regular, RK::Regular));
    EXPECT_TRUE(ptsbPermitted(RK::Regular, RK::Atomic));
    EXPECT_FALSE(ptsbPermitted(RK::Atomic, RK::Atomic));
    EXPECT_FALSE(ptsbPermitted(RK::Regular, RK::Asm));
    EXPECT_FALSE(ptsbPermitted(RK::Atomic, RK::Asm));
    EXPECT_FALSE(ptsbPermitted(RK::Asm, RK::Asm));
}

TEST(Ccc, StartsInRegularRegion)
{
    CodeCentricConsistency ccc;
    ccc.threadStart(0);
    EXPECT_EQ(ccc.currentRegion(0), RegionKind::Regular);
    EXPECT_FALSE(ccc.mustBypassPrivate(0));
}

TEST(Ccc, AtomicRegionRequiresFlushAndBypass)
{
    CodeCentricConsistency ccc;
    ccc.threadStart(0);
    EXPECT_TRUE(ccc.regionEnter(0, RegionKind::Atomic));
    EXPECT_EQ(ccc.currentRegion(0), RegionKind::Atomic);
    EXPECT_TRUE(ccc.mustBypassPrivate(0));
    ccc.regionExit(0);
    EXPECT_FALSE(ccc.mustBypassPrivate(0));
}

TEST(Ccc, AsmRegionRequiresFlushAndBypass)
{
    CodeCentricConsistency ccc;
    ccc.threadStart(0);
    EXPECT_TRUE(ccc.regionEnter(0, RegionKind::Asm));
    EXPECT_TRUE(ccc.mustBypassPrivate(0));
    ccc.regionExit(0);
}

TEST(Ccc, NestedRegionsFlushOnce)
{
    CodeCentricConsistency ccc;
    ccc.threadStart(0);
    EXPECT_TRUE(ccc.regionEnter(0, RegionKind::Atomic));
    // Already operating on shared memory: no second flush.
    EXPECT_FALSE(ccc.regionEnter(0, RegionKind::Asm));
    EXPECT_EQ(ccc.currentRegion(0), RegionKind::Asm);
    ccc.regionExit(0);
    EXPECT_EQ(ccc.currentRegion(0), RegionKind::Atomic);
    EXPECT_TRUE(ccc.mustBypassPrivate(0));
    ccc.regionExit(0);
    EXPECT_FALSE(ccc.mustBypassPrivate(0));
}

TEST(Ccc, RelaxedAtomicsNeedNoFlush)
{
    CodeCentricConsistency ccc;
    EXPECT_FALSE(ccc.atomicOpNeedsFlush(MemOrder::Relaxed));
    EXPECT_TRUE(ccc.atomicOpNeedsFlush(MemOrder::SeqCst));
}

TEST(Ccc, DisabledEngineNeverFlushes)
{
    CodeCentricConsistency ccc(/*enabled=*/false);
    ccc.threadStart(0);
    EXPECT_FALSE(ccc.regionEnter(0, RegionKind::Asm));
    EXPECT_FALSE(ccc.mustBypassPrivate(0));
    EXPECT_FALSE(ccc.atomicOpNeedsFlush(MemOrder::SeqCst));
    // It still tracks regions for diagnostics.
    EXPECT_EQ(ccc.currentRegion(0), RegionKind::Asm);
}

TEST(Ccc, ThreadsAreIndependent)
{
    CodeCentricConsistency ccc;
    ccc.threadStart(0);
    ccc.threadStart(1);
    ccc.regionEnter(0, RegionKind::Asm);
    EXPECT_TRUE(ccc.mustBypassPrivate(0));
    EXPECT_FALSE(ccc.mustBypassPrivate(1));
}

TEST(Ccc, UnknownThreadDefaultsToRegular)
{
    CodeCentricConsistency ccc;
    EXPECT_EQ(ccc.currentRegion(42), RegionKind::Regular);
    EXPECT_FALSE(ccc.mustBypassPrivate(42));
}

TEST(Ccc, CountsTransitionsAndFlushes)
{
    CodeCentricConsistency ccc;
    ccc.threadStart(0);
    ccc.regionEnter(0, RegionKind::Atomic);
    ccc.regionExit(0);
    ccc.regionEnter(0, RegionKind::Asm);
    ccc.regionExit(0);
    EXPECT_EQ(ccc.transitions(), 4u);
    EXPECT_EQ(ccc.flushesRequired(), 2u);
}

} // namespace tmi
