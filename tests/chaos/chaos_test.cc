/**
 * @file
 * The chaos subsystem under test: deterministic schedule generation,
 * spec round-trips, the differential oracle, ddmin minimization, and
 * small end-to-end campaigns (determinism across worker counts, the
 * RecoverUp interplay, and the seeded Sheriff dissolve-ordering
 * regression the whole engine exists to catch).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <set>
#include <sstream>

#include "chaos/campaign.hh"
#include "fault/fault_injector.hh"

using namespace tmi;
using namespace tmi::chaos;

// ---------------------------------------------------------------------
// ScheduleGenerator

TEST(ScheduleGenerator, SameSeedAndIndexReplaysByteForByte)
{
    ScheduleGenerator a(123), b(123);
    for (std::uint64_t k : {0ULL, 1ULL, 7ULL, 63ULL}) {
        ChaosSchedule sa = a.generate(k, 1'000'000);
        ChaosSchedule sb = b.generate(k, 1'000'000);
        EXPECT_EQ(sa, sb) << "index " << k;
        EXPECT_EQ(writeScheduleSpec(sa), writeScheduleSpec(sb));
    }
}

TEST(ScheduleGenerator, DrawsAreOrderIndependent)
{
    // generate(k) may be called in any order (or never for k-1):
    // each draw depends only on (campaign seed, k).
    ScheduleGenerator fwd(9), rev(9);
    ChaosSchedule a5 = fwd.generate(5);
    rev.generate(63);
    rev.generate(0);
    EXPECT_EQ(rev.generate(5), a5);
}

TEST(ScheduleGenerator, DifferentSeedsOrIndicesDiffer)
{
    ScheduleGenerator a(1), b(2);
    EXPECT_NE(a.generate(0), b.generate(0));
    EXPECT_NE(a.generate(0), a.generate(1));
}

TEST(ScheduleGenerator, EventsAreDistinctRegistryPointsWithinBounds)
{
    GeneratorOptions opts;
    opts.minEvents = 2;
    opts.maxEvents = 6;
    ScheduleGenerator gen(42, opts);
    std::set<std::string> registry;
    for (const FaultPointInfo &info : FaultInjector::allPoints())
        registry.insert(info.name);

    for (std::uint64_t k = 0; k < 64; ++k) {
        ChaosSchedule s = gen.generate(k, 10'000'000);
        EXPECT_GE(s.events.size(), opts.minEvents);
        EXPECT_LE(s.events.size(), opts.maxEvents);
        std::set<std::string> seen;
        for (const ChaosEvent &ev : s.events) {
            EXPECT_TRUE(registry.count(ev.point))
                << ev.point << " not in the registry";
            EXPECT_TRUE(seen.insert(ev.point).second)
                << ev.point << " drawn twice in one schedule";
            const FaultSpec &spec = ev.spec;
            // At least one trigger is always armed.
            EXPECT_TRUE(spec.probability > 0 || spec.fireAt > 0 ||
                        spec.everyNth > 0 || spec.burstPeriod > 0);
            if (spec.burstPeriod != 0) {
                EXPECT_GE(spec.burstLen, 1u);
                EXPECT_LE(spec.burstLen, spec.burstPeriod);
            }
            if (spec.windowEnd != 0) {
                EXPECT_LT(spec.windowStart, spec.windowEnd);
            }
        }
    }
}

TEST(ScheduleGenerator, ZeroHorizonDisablesWindows)
{
    ScheduleGenerator gen(7);
    for (std::uint64_t k = 0; k < 32; ++k) {
        for (const ChaosEvent &ev : gen.generate(k, 0).events) {
            EXPECT_EQ(ev.spec.windowStart, 0u);
            EXPECT_EQ(ev.spec.windowEnd, 0u);
        }
    }
}

TEST(ScheduleGenerator, GeneratedCellsProduceValidConfigs)
{
    ScheduleGenerator gen(11);
    Config base;
    for (std::uint64_t k = 0; k < 16; ++k) {
        ChaosSchedule s = gen.generate(k, 5'000'000);
        s.workload = "histogramfs";
        EXPECT_TRUE(s.toConfig(base).validate().empty());
    }
}

// ---------------------------------------------------------------------
// Spec round-trip

TEST(ScheduleSpec, GeneratedSchedulesRoundTrip)
{
    ScheduleGenerator gen(77);
    for (std::uint64_t k = 0; k < 64; ++k) {
        ChaosSchedule s = gen.generate(k, 123'456'789);
        s.workload = "lreg";
        ChaosSchedule parsed;
        std::string err;
        ASSERT_TRUE(parseScheduleSpec(writeScheduleSpec(s), parsed,
                                      err))
            << err;
        EXPECT_EQ(parsed, s);
    }
}

TEST(ScheduleSpec, ArmingKnobsRoundTrip)
{
    ChaosSchedule s;
    s.workload = "histogramfs";
    s.treatment = Treatment::SheriffProtect;
    s.sheriffBuggyDissolve = true;
    s.watchdog = 1;
    s.monitor = 0;
    s.watchdogTimeout = 123'456;
    s.analysisInterval = 50'000;
    s.recoverUpWindows = 3;
    s.events.push_back(
        {faultpoint::ptsbOversizeCommit, FaultSpec::always()});
    ChaosSchedule parsed;
    std::string err;
    ASSERT_TRUE(parseScheduleSpec(writeScheduleSpec(s), parsed, err))
        << err;
    EXPECT_EQ(parsed, s);
}

TEST(ScheduleSpec, ErrorsNameTheLine)
{
    ChaosSchedule s;
    std::string err;
    EXPECT_FALSE(parseScheduleSpec(
        "workload = x\nbogus_key = 1\n", s, err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
    EXPECT_FALSE(parseScheduleSpec(
        "workload = x\nevent = p.q rate=0.5\n", s, err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
    EXPECT_FALSE(parseScheduleSpec("seed = 1\n", s, err));
    EXPECT_NE(err.find("workload"), std::string::npos) << err;
}

// ---------------------------------------------------------------------
// Minimizer (synthetic predicates: no runs involved)

namespace
{

ChaosSchedule
syntheticSchedule(unsigned events)
{
    ChaosSchedule s;
    s.workload = "synthetic";
    auto points = FaultInjector::allPoints();
    for (unsigned i = 0; i < events; ++i) {
        s.events.push_back(
            {points[i % points.size()].name,
             FaultSpec::withProbability(0.1 + i * 0.01)});
    }
    return s;
}

bool
hasEvent(const ChaosSchedule &s, const std::string &point)
{
    for (const ChaosEvent &ev : s.events) {
        if (ev.point == point)
            return true;
    }
    return false;
}

} // namespace

TEST(Minimize, FindsTheTwoCulpritsAmongEight)
{
    ChaosSchedule failing = syntheticSchedule(8);
    std::string a = failing.events[1].point;
    std::string c = failing.events[6].point;
    MinimizeStats stats;
    ChaosSchedule min = minimizeSchedule(
        failing,
        [&](const ChaosSchedule &s) {
            return hasEvent(s, a) && hasEvent(s, c);
        },
        &stats);
    ASSERT_EQ(min.events.size(), 2u);
    EXPECT_TRUE(hasEvent(min, a));
    EXPECT_TRUE(hasEvent(min, c));
    EXPECT_EQ(stats.originalEvents, 8u);
    EXPECT_EQ(stats.minimizedEvents, 2u);
    EXPECT_GT(stats.probes, 0u);
    // The run cell survives minimization untouched.
    EXPECT_EQ(min.workload, failing.workload);
    EXPECT_EQ(min.faultSeed, failing.faultSeed);
}

TEST(Minimize, SingleCulpritShrinksToOneEvent)
{
    ChaosSchedule failing = syntheticSchedule(5);
    std::string culprit = failing.events[3].point;
    ChaosSchedule min = minimizeSchedule(
        failing,
        [&](const ChaosSchedule &s) { return hasEvent(s, culprit); });
    ASSERT_EQ(min.events.size(), 1u);
    EXPECT_EQ(min.events[0].point, culprit);
}

TEST(Minimize, UnreproducibleFailureComesBackUnchanged)
{
    ChaosSchedule failing = syntheticSchedule(4);
    MinimizeStats stats;
    ChaosSchedule min = minimizeSchedule(
        failing, [](const ChaosSchedule &) { return false; }, &stats);
    EXPECT_EQ(min, failing);
    EXPECT_EQ(stats.minimizedEvents, 4u);
}

// ---------------------------------------------------------------------
// Oracle

namespace
{

RunResult
completedRun(std::uint64_t digest)
{
    RunResult r;
    r.outcome = RunOutcome::Completed;
    r.resultDigest = digest;
    return r;
}

} // namespace

TEST(Oracle, VerdictsCoverTheSeverityLadder)
{
    RunResult golden = completedRun(0xabcd);

    EXPECT_EQ(judge(golden, completedRun(0xabcd)).verdict,
              Verdict::Pass);
    EXPECT_EQ(judge(golden, completedRun(0x1111)).verdict,
              Verdict::DigestMismatch);

    RunResult invariant = completedRun(0xabcd);
    invariant.invariantViolations = 3;
    EXPECT_EQ(judge(golden, invariant).verdict,
              Verdict::InvariantViolation);

    RunResult livelock = completedRun(0xabcd);
    livelock.outcome = RunOutcome::Timeout;
    EXPECT_EQ(judge(golden, livelock).verdict, Verdict::Livelock);

    RunResult deadlock = completedRun(0xabcd);
    deadlock.outcome = RunOutcome::Deadlock;
    EXPECT_EQ(judge(golden, deadlock).verdict, Verdict::RunFailed);

    // An unjudgeable golden poisons nothing: NoDigest, not a failure.
    RunResult no_digest_golden = completedRun(0);
    Judgement j = judge(no_digest_golden, completedRun(0x2222));
    EXPECT_EQ(j.verdict, Verdict::NoDigest);
    EXPECT_FALSE(j.pass());
    EXPECT_FALSE(j.fail());

    RunResult hung_golden = completedRun(0xabcd);
    hung_golden.outcome = RunOutcome::Timeout;
    EXPECT_EQ(judge(hung_golden, completedRun(0xabcd)).verdict,
              Verdict::NoDigest);
}

TEST(Oracle, MismatchReasonNamesBothDigests)
{
    Judgement j = judge(completedRun(0xab), completedRun(0xcd));
    EXPECT_NE(j.reason.find("ab"), std::string::npos) << j.reason;
    EXPECT_NE(j.reason.find("cd"), std::string::npos) << j.reason;
}

TEST(Oracle, AnnotateTraceBracketsTheTimeline)
{
    RunResult res = completedRun(0x55);
    res.cycles = 9000;
    obs::TraceEvent mid;
    mid.time = 100;
    mid.kind = obs::EventKind::RepairEngage;
    res.traceEvents.push_back(mid);
    res.traceRecorded = 1;

    ChaosSchedule sched;
    sched.workload = "histogramfs";
    sched.campaignSeed = 77;
    sched.events.resize(2);

    annotateTrace(res, sched, {Verdict::Pass, "-"});
    ASSERT_EQ(res.traceEvents.size(), 3u);
    EXPECT_EQ(res.traceEvents.front().kind,
              obs::EventKind::ChaosSchedule);
    EXPECT_EQ(res.traceEvents.front().a0, 77u);
    EXPECT_EQ(res.traceEvents.front().a1, 2u);
    EXPECT_STREQ(res.traceEvents.front().detail, "histogramfs");
    EXPECT_EQ(res.traceEvents.back().kind,
              obs::EventKind::ChaosVerdict);
    EXPECT_EQ(res.traceEvents.back().time, 9000u);
    EXPECT_EQ(res.traceEvents.back().a0, 1u);
    EXPECT_EQ(res.traceEvents.back().a1, 0x55u);
    EXPECT_STREQ(res.traceEvents.back().detail, "pass");
    EXPECT_EQ(res.traceRecorded, 3u);
}

TEST(Oracle, AnnotateTraceIsANoOpOnUntracedRuns)
{
    RunResult res = completedRun(0x55);
    annotateTrace(res, ChaosSchedule{}, {Verdict::Pass, "-"});
    EXPECT_TRUE(res.traceEvents.empty());
    EXPECT_EQ(res.traceRecorded, 0u);
}

// ---------------------------------------------------------------------
// Campaign end-to-end (small but real runs)

namespace
{

CampaignSpec
smallSpec()
{
    CampaignSpec spec;
    spec.base.run.workload = "histogramfs";
    spec.base.run.treatment = Treatment::TmiProtect;
    spec.workloads = {"histogramfs"};
    spec.treatments = {Treatment::TmiProtect};
    spec.schedules = 4;
    spec.campaignSeed = 7;
    spec.minimizeFailures = false;
    return spec;
}

} // namespace

TEST(Campaign, ValidateCatchesEmptyAxesAndBadCells)
{
    CampaignSpec spec = smallSpec();
    EXPECT_TRUE(spec.validate().empty());
    EXPECT_EQ(spec.totalRuns(), 5u); // 1 golden + 4 chaos

    spec.workloads = {"no-such-workload"};
    EXPECT_FALSE(spec.validate().empty());
    spec.workloads.clear();
    EXPECT_FALSE(spec.validate().empty());
    spec = smallSpec();
    spec.schedules = 0;
    EXPECT_FALSE(spec.validate().empty());
}

TEST(Campaign, TmiSurvivesTheSmallCampaignAndMatchesTheGolden)
{
    CampaignSpec spec = smallSpec();
    driver::RunnerOptions opts;
    opts.workers = 2;
    opts.progress = false;
    driver::Runner runner(opts);
    std::ostringstream csv;
    CampaignOutcome out = runCampaign(spec, runner, &csv);

    ASSERT_EQ(out.rows.size(), 5u);
    EXPECT_TRUE(out.rows[0].golden);
    ASSERT_NE(out.rows[0].run.resultDigest, 0u);
    EXPECT_EQ(out.judged, 4u);
    EXPECT_TRUE(out.allPassed()) << csv.str();
    for (std::size_t i = 1; i < out.rows.size(); ++i) {
        const CampaignRow &row = out.rows[i];
        EXPECT_EQ(row.judgement.verdict, Verdict::Pass)
            << row.judgement.reason;
        EXPECT_EQ(row.run.resultDigest, out.rows[0].run.resultDigest);
        EXPECT_EQ(row.goldenDigest, out.rows[0].run.resultDigest);
    }
}

TEST(Campaign, CsvIsByteIdenticalAcrossWorkerCounts)
{
    CampaignSpec spec = smallSpec();
    std::string csv_by_workers[2];
    for (unsigned i = 0; i < 2; ++i) {
        driver::RunnerOptions opts;
        opts.workers = i == 0 ? 1 : 4;
        opts.progress = false;
        driver::Runner runner(opts);
        std::ostringstream csv;
        runCampaign(spec, runner, &csv);
        csv_by_workers[i] = csv.str();
    }
    EXPECT_EQ(csv_by_workers[0], csv_by_workers[1]);
    // And the header is the one check_chaos.py pins.
    EXPECT_EQ(csv_by_workers[0].substr(
                  0, csv_by_workers[0].find('\n')),
              chaosCsvHeader());
}

// ---------------------------------------------------------------------
// Sharded campaign (process isolation + journals + resume)

namespace
{

/** RAII temp journal dir for the sharded-campaign tests. */
struct TempDir
{
    TempDir()
    {
        char tmpl[] = "/tmp/tmi_chaos_shard_XXXXXX";
        path = ::mkdtemp(tmpl) ? tmpl : "";
    }
    ~TempDir()
    {
        std::error_code ec;
        if (!path.empty())
            std::filesystem::remove_all(path, ec);
    }
    std::string path;
};

ShardedCampaignOptions
shardedOptions(const std::string &dir, unsigned shards)
{
    ShardedCampaignOptions opts;
    opts.shard.journalDir = dir;
    opts.shard.shards = shards;
    opts.shard.runner.workers = 1;
    opts.shard.onEvent = [](const std::string &) {};
    opts.collectRows = true;
    return opts;
}

} // namespace

TEST(ShardedCampaign, CsvMatchesTheInProcessCampaign)
{
    CampaignSpec spec = smallSpec();

    driver::RunnerOptions ro;
    ro.workers = 1;
    ro.progress = false;
    driver::Runner runner(ro);
    std::ostringstream inproc;
    CampaignOutcome golden = runCampaign(spec, runner, &inproc);

    TempDir dir;
    ASSERT_FALSE(dir.path.empty());
    std::ostringstream sharded;
    driver::ShardRunStats stats;
    CampaignOutcome out = runCampaignSharded(
        spec, shardedOptions(dir.path, 2), &sharded, &stats);

    // Worker processes + journal merge leave no trace in the CSV.
    EXPECT_EQ(sharded.str(), inproc.str());
    EXPECT_EQ(out.judged, golden.judged);
    EXPECT_EQ(out.passed, golden.passed);
    EXPECT_EQ(out.failed, golden.failed);
    EXPECT_EQ(out.jobFailures, 0u);
    EXPECT_TRUE(out.clean());
    EXPECT_EQ(stats.crashes, 0u);
    EXPECT_TRUE(stats.allOk());
    ASSERT_EQ(out.rows.size(), golden.rows.size());
    for (std::size_t i = 0; i < out.rows.size(); ++i) {
        EXPECT_EQ(out.rows[i].run.resultDigest,
                  golden.rows[i].run.resultDigest);
    }
}

TEST(ShardedCampaign, ResumeReplaysOnlyTheLostShard)
{
    CampaignSpec spec = smallSpec();

    TempDir dir;
    ASSERT_FALSE(dir.path.empty());
    std::ostringstream first;
    CampaignOutcome a = runCampaignSharded(
        spec, shardedOptions(dir.path, 2), &first);
    EXPECT_TRUE(a.clean());

    // A kill mid-campaign, modeled by its on-disk aftermath: one
    // chaos shard's journal never made it.
    std::filesystem::remove(
        driver::ShardSupervisor::journalPath(dir.path + "/chaos", 1));

    ShardedCampaignOptions resume = shardedOptions(dir.path, 2);
    resume.shard.resume = true;
    std::ostringstream second;
    driver::ShardRunStats stats;
    CampaignOutcome b = runCampaignSharded(
        spec, resume, &second, &stats);

    EXPECT_EQ(second.str(), first.str()); // byte-identical resume
    EXPECT_TRUE(b.clean());
    // Goldens (1) + chaos shard 0 (2 jobs) were already journaled.
    EXPECT_EQ(stats.resumedJobs, 3u);
}

TEST(ShardedCampaign, PoisonedScheduleFailsTheCampaignVisibly)
{
    CampaignSpec spec = smallSpec();

    TempDir dir;
    ASSERT_FALSE(dir.path.empty());
    ShardedCampaignOptions opts = shardedOptions(dir.path, 2);
    // Chaos job 2 (goldens run fault-free, so keying on the armed
    // fault list spares the golden phase) kills its worker on every
    // attempt until the supervisor quarantines it.
    opts.shard.childFaultHook =
        [](const driver::Job &job, std::uint64_t globalId, unsigned) {
            if (globalId == 2 && !job.config.run.faults.empty())
                std::abort();
        };

    std::ostringstream csv;
    driver::ShardRunStats stats;
    CampaignOutcome out =
        runCampaignSharded(spec, opts, &csv, &stats);

    EXPECT_EQ(stats.poisoned, 1u);
    EXPECT_EQ(stats.crashes, 2u);
    EXPECT_EQ(out.jobFailures, 1u);
    EXPECT_EQ(out.failed, 1u); // judged RunFailed, not dropped
    EXPECT_FALSE(out.clean());
    EXPECT_NE(csv.str().find(",poisoned,"), std::string::npos);
    // The other three schedules still ran and passed.
    EXPECT_EQ(out.passed, 3u);
}

// ---------------------------------------------------------------------
// RecoverUp x oracle (satellite: the ladder drops, recovers, and the
// oracle still certifies the end state)

TEST(Campaign, RecoverUpRunDropsClimbsBackAndMatchesTheGolden)
{
    ChaosSchedule sched;
    sched.workload = "histogramfs";
    sched.treatment = Treatment::TmiProtect;
    sched.recoverUpWindows = 2;
    sched.analysisInterval = 200'000;
    FaultSpec clone_fail;
    clone_fail.probability = 1.0;
    clone_fail.maxFires = 4;
    sched.events.push_back({faultpoint::memCloneFail, clone_fail});

    CampaignRow row = replaySchedule(sched);
    ASSERT_EQ(row.run.outcome, RunOutcome::Completed);
    // The clone faults exhausted one engage's retry budget...
    EXPECT_EQ(row.run.t2pAborts, 4u);
    EXPECT_GE(row.run.ladderDrops, 1u);
    // ...the ladder climbed back after two clean windows...
    EXPECT_GE(row.run.ladderRecovers, 1u);
    EXPECT_EQ(row.run.ladderRung, "detect-and-repair");
    // ...and the recovered run converged to the fault-free end state.
    EXPECT_EQ(row.judgement.verdict, Verdict::Pass)
        << row.judgement.reason;
    EXPECT_EQ(row.run.resultDigest, row.goldenDigest);
}

// ---------------------------------------------------------------------
// The seeded regression (satellite: the dissolve-ordering bug behind
// ExperimentConfig::sheriffBuggyDissolve must be caught and shrunk)

namespace
{

/** The scenario goldens/chaos/sheriff_dissolve_order.spec pins:
 *  inflated commits stretch the pre-spawn commit window so the
 *  watchdog-driven dissolve lands mid-spawn-loop. */
ChaosSchedule
dissolveOrderSchedule()
{
    ChaosSchedule sched;
    sched.workload = "histogramfs";
    sched.treatment = Treatment::SheriffProtect;
    sched.sheriffBuggyDissolve = true;
    sched.watchdog = 1;
    sched.watchdogTimeout = 100'000;
    sched.analysisInterval = 50'000;
    sched.events.push_back({faultpoint::ptsbOversizeCommit,
                            FaultSpec::withProbability(0.9)});
    return sched;
}

} // namespace

TEST(Regression, OracleCatchesTheSheriffDissolveOrderingBug)
{
    CampaignRow buggy = replaySchedule(dissolveOrderSchedule());
    EXPECT_TRUE(buggy.judgement.fail());
    EXPECT_EQ(buggy.judgement.verdict, Verdict::DigestMismatch)
        << buggy.judgement.reason;
    EXPECT_NE(buggy.run.resultDigest, buggy.goldenDigest);

    // The identical schedule against the fixed ordering passes: the
    // bug, not the faults, is what loses the writes.
    ChaosSchedule fixed = dissolveOrderSchedule();
    fixed.sheriffBuggyDissolve = false;
    CampaignRow ok = replaySchedule(fixed);
    EXPECT_EQ(ok.judgement.verdict, Verdict::Pass)
        << ok.judgement.reason;
}

TEST(Regression, MinimizerShrinksTheNoisySchedulePastTheNoise)
{
    // The failure wrapped in three bystander events, as a campaign
    // would surface it; ddmin must strip every bystander.
    ChaosSchedule noisy = dissolveOrderSchedule();
    noisy.events.push_back({faultpoint::perfDropRecord,
                            FaultSpec::withProbability(0.05)});
    FaultSpec every;
    every.everyNth = 700;
    noisy.events.push_back({faultpoint::memCloneFail, every});
    FaultSpec rare = FaultSpec::withProbability(0.001);
    rare.maxFires = 2;
    noisy.events.push_back({faultpoint::allocMetadataCorrupt, rare});

    CampaignRow failing = replaySchedule(noisy);
    ASSERT_TRUE(failing.judgement.fail()) << failing.judgement.reason;

    RunResult golden = completedRun(failing.goldenDigest);
    MinimizeStats stats;
    ChaosSchedule min = minimizeSchedule(
        noisy,
        [&](const ChaosSchedule &s) {
            return judge(golden, runExperiment(s.toConfig({}))).fail();
        },
        &stats);
    EXPECT_LE(min.events.size(), 3u);
    ASSERT_EQ(min.events.size(), 1u);
    EXPECT_EQ(min.events[0].point, faultpoint::ptsbOversizeCommit);
    EXPECT_EQ(stats.originalEvents, 4u);

    // The minimized schedule still reproduces, and still replays
    // clean once the bug is fixed -- reproducers pin the bug, not
    // the noise around it.
    CampaignRow repro = replaySchedule(min);
    EXPECT_EQ(repro.judgement.verdict, Verdict::DigestMismatch);
}
