/**
 * @file
 * Unit tests for the page twinning store buffer, including the
 * Figure 3 AMBSA (word tearing) property.
 */

#include <gtest/gtest.h>

#include "ptsb/ptsb.hh"

namespace tmi
{

namespace
{

/** Two converted processes sharing one shm page. */
struct PtsbFixture : public ::testing::Test
{
    PtsbFixture()
        : mmu(smallPageShift), region("shm", mmu.phys())
    {
        region.grow(2);
        p0 = mmu.createAddressSpace();
        p1 = mmu.createAddressSpace();
        mmu.mapShared(p0, vbase, region, 0, 2);
        mmu.mapShared(p1, vbase, region, 0, 2);
        ptsb0 = std::make_unique<Ptsb>(mmu, p0);
        ptsb1 = std::make_unique<Ptsb>(mmu, p1);
        mmu.setCowCallback([this](ProcessId pid, VPage vpage,
                                  PPage shared, PPage priv) -> CowOutcome {
            if (pid == p0)
                return ptsb0->onCowFault(vpage, shared, priv);
            if (pid == p1)
                return ptsb1->onCowFault(vpage, shared, priv);
            return {};
        });
    }

    void
    protectBoth(VPage vpage)
    {
        ptsb0->protectPage(vpage);
        ptsb1->protectPage(vpage);
    }

    VPage vpage() const { return vbase >> smallPageShift; }

    static constexpr Addr vbase = 0x10000000;
    Mmu mmu;
    ShmRegion region;
    ProcessId p0 = 0, p1 = 0;
    std::unique_ptr<Ptsb> ptsb0, ptsb1;
};

} // namespace

TEST_F(PtsbFixture, ProtectThenWriteCreatesTwin)
{
    ptsb0->protectPage(vpage());
    EXPECT_TRUE(ptsb0->isProtected(vpage()));
    EXPECT_EQ(ptsb0->dirtyPages(), 0u);

    std::uint64_t v = 1;
    mmu.write(p0, vbase, &v, 8);
    EXPECT_EQ(ptsb0->dirtyPages(), 1u);
    EXPECT_EQ(ptsb0->twinBytes(), smallPageBytes);
}

TEST_F(PtsbFixture, CommitPublishesChangedBytes)
{
    ptsb0->protectPage(vpage());
    std::uint64_t v = 0xabcdef;
    mmu.write(p0, vbase + 16, &v, 8);

    // Before commit: invisible to p1.
    std::uint64_t out = 0;
    mmu.read(p1, vbase + 16, &out, 8);
    EXPECT_EQ(out, 0u);

    CommitResult res = ptsb0->commit();
    EXPECT_EQ(res.pagesDiffed, 1u);
    EXPECT_GT(res.bytesChanged, 0u);
    EXPECT_GT(res.cost, 0u);

    mmu.read(p1, vbase + 16, &out, 8);
    EXPECT_EQ(out, 0xabcdefu);
}

TEST_F(PtsbFixture, CommitReArmsForNextWrite)
{
    ptsb0->protectPage(vpage());
    std::uint64_t v = 1;
    mmu.write(p0, vbase, &v, 8);
    ptsb0->commit();
    EXPECT_EQ(ptsb0->dirtyPages(), 0u);
    EXPECT_TRUE(ptsb0->isProtected(vpage()));

    // Next write re-twins and sees the committed state as base.
    std::uint64_t w = 2;
    mmu.write(p0, vbase + 8, &w, 8);
    EXPECT_EQ(ptsb0->dirtyPages(), 1u);
    ptsb0->commit();

    std::uint64_t out = 0;
    mmu.read(p1, vbase, &out, 8);
    EXPECT_EQ(out, 1u);
    mmu.read(p1, vbase + 8, &out, 8);
    EXPECT_EQ(out, 2u);
}

TEST_F(PtsbFixture, MergeTouchesOnlyChangedBytes)
{
    // p0 buffers a write to byte 0; meanwhile p1 writes byte 1
    // directly to shared memory. p0's commit must not clobber it.
    ptsb0->protectPage(vpage());
    std::uint8_t a = 0x11;
    mmu.write(p0, vbase, &a, 1);

    std::uint8_t b = 0x22;
    mmu.write(p1, vbase + 1, &b, 1);

    ptsb0->commit();
    std::uint8_t out[2];
    mmu.read(p1, vbase, out, 2);
    EXPECT_EQ(out[0], 0x11);
    EXPECT_EQ(out[1], 0x22);
}

TEST_F(PtsbFixture, DisjointWritesBothSurvive)
{
    protectBoth(vpage());
    std::uint64_t v0 = 100, v1 = 200;
    mmu.write(p0, vbase, &v0, 8);
    mmu.write(p1, vbase + 8, &v1, 8);
    ptsb0->commit();
    ptsb1->commit();

    std::uint64_t out = 0;
    mmu.phys().read((region.frameFor(0) << smallPageShift), &out, 8);
    EXPECT_EQ(out, 100u);
    mmu.phys().read((region.frameFor(0) << smallPageShift) + 8, &out,
                    8);
    EXPECT_EQ(out, 200u);
}

TEST_F(PtsbFixture, Figure3AmbsaViolation)
{
    // The paper's Figure 3: x is 2-byte aligned, initially 0.
    // Thread 0: store x <- 0xAB00;  Thread 1: store x <- 0x00CD.
    // Under any hardware memory model the result is one of the two
    // stored values. Under racing PTSBs the diff sees each 2-byte
    // store as a 1-byte store and the merge fabricates 0xABCD.
    protectBoth(vpage());
    std::uint16_t s0 = 0xAB00, s1 = 0x00CD;
    mmu.write(p0, vbase, &s0, 2);
    mmu.write(p1, vbase, &s1, 2);
    ptsb0->commit();
    ptsb1->commit();

    std::uint16_t x = 0;
    mmu.read(p0, vbase, &x, 2);
    EXPECT_EQ(x, 0xABCD); // AMBSA broken: a value no thread stored
}

TEST_F(PtsbFixture, NoRaceNoAmbsaViolation)
{
    // Lemma 3.1: without a data race (here: serialized commit
    // between the writes), values are preserved exactly.
    protectBoth(vpage());
    std::uint16_t s0 = 0xAB00;
    mmu.write(p0, vbase, &s0, 2);
    ptsb0->commit();

    std::uint16_t s1 = 0x00CD;
    mmu.write(p1, vbase, &s1, 2);
    ptsb1->commit();

    std::uint16_t x = 0;
    mmu.read(p0, vbase, &x, 2);
    EXPECT_EQ(x, 0x00CD); // the second write, intact
}

TEST_F(PtsbFixture, UnprotectAfterCommit)
{
    ptsb0->protectPage(vpage());
    std::uint64_t v = 5;
    mmu.write(p0, vbase, &v, 8);
    ptsb0->commit();
    ptsb0->unprotectPage(vpage());
    EXPECT_FALSE(ptsb0->isProtected(vpage()));

    // Writes now go straight to shared memory.
    std::uint64_t w = 6;
    mmu.write(p0, vbase, &w, 8);
    std::uint64_t out = 0;
    mmu.read(p1, vbase, &out, 8);
    EXPECT_EQ(out, 6u);
}

TEST_F(PtsbFixture, CommitCostScalesWithDirtyPages)
{
    ptsb0->protectPage(vpage());
    ptsb0->protectPage(vpage() + 1);
    std::uint64_t v = 1;
    CommitResult one, two;
    mmu.write(p0, vbase, &v, 8);
    one = ptsb0->commit();
    mmu.write(p0, vbase, &v, 8);
    mmu.write(p0, vbase + smallPageBytes, &v, 8);
    two = ptsb0->commit();
    EXPECT_EQ(two.pagesDiffed, 2u);
    EXPECT_GT(two.cost, one.cost);
}

TEST(PtsbHuge, HugePageCommitUsesMemcmpPrefilter)
{
    // On a 2 MB page with one dirty byte, the memcmp pre-filter
    // descends into exactly one 4 KB chunk, so the commit cost is
    // dominated by cheap memcmp scans, far below a full byte diff.
    Mmu mmu(hugePageShift);
    ShmRegion region("shm", mmu.phys());
    region.grow(1);
    ProcessId p0 = mmu.createAddressSpace();
    constexpr Addr vbase = 0x40000000;
    mmu.mapShared(p0, vbase, region, 0, 1);
    PtsbCosts costs;
    Ptsb ptsb(mmu, p0, costs);
    mmu.setCowCallback([&](ProcessId, VPage vpage, PPage shared,
                           PPage priv) -> CowOutcome {
        return ptsb.onCowFault(vpage, shared, priv);
    });

    ptsb.protectPage(vbase >> hugePageShift);
    std::uint8_t b = 1;
    mmu.write(p0, vbase + 123456, &b, 1);
    CommitResult res = ptsb.commit();

    std::uint64_t chunks = hugePageBytes / smallPageBytes;
    Cycles full_diff = costs.commitBase + chunks * costs.diffPer4k;
    EXPECT_EQ(res.bytesChanged, 1u);
    EXPECT_LT(res.cost, full_diff / 3);

    std::uint8_t out = 0;
    mmu.readShared(p0, vbase + 123456, &out, 1);
    EXPECT_EQ(out, 1u);
}

} // namespace tmi
