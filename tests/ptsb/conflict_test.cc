/**
 * @file
 * Tests for the PTSB's racy-merge (conflict) diagnostic: Lemma 3.1
 * operationalized. Race-free commit orders never conflict; racing
 * commits to the same bytes are flagged.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ptsb/ptsb.hh"

namespace tmi
{

namespace
{

struct ConflictFixture : public ::testing::Test
{
    ConflictFixture() : mmu(smallPageShift), region("shm", mmu.phys())
    {
        region.grow(1);
        for (int i = 0; i < 2; ++i) {
            pids[i] = mmu.createAddressSpace();
            mmu.mapShared(pids[i], vbase, region, 0, 1);
            ptsbs[i] = std::make_unique<Ptsb>(mmu, pids[i]);
            ptsbs[i]->protectPage(vbase >> smallPageShift);
        }
        mmu.setCowCallback([this](ProcessId pid, VPage vp, PPage sf,
                                  PPage pf) -> CowOutcome {
            for (int i = 0; i < 2; ++i) {
                if (pids[i] == pid)
                    return ptsbs[i]->onCowFault(vp, sf, pf);
            }
            return {};
        });
    }

    static constexpr Addr vbase = 0x10000000;
    Mmu mmu;
    ShmRegion region;
    ProcessId pids[2] = {};
    std::unique_ptr<Ptsb> ptsbs[2];
};

} // namespace

TEST_F(ConflictFixture, RacingSameByteWritesFlagConflict)
{
    std::uint8_t a = 1, b = 2;
    mmu.write(pids[0], vbase, &a, 1);
    mmu.write(pids[1], vbase, &b, 1);
    CommitResult r0 = ptsbs[0]->commit();
    CommitResult r1 = ptsbs[1]->commit();
    EXPECT_EQ(r0.conflictBytes, 0u); // first merge sees clean shared
    EXPECT_EQ(r1.conflictBytes, 1u); // second overwrites a racy byte
    EXPECT_EQ(ptsbs[1]->conflictBytes(), 1u);
}

TEST_F(ConflictFixture, DisjointRacingWritesDoNotConflict)
{
    std::uint64_t a = 1, b = 2;
    mmu.write(pids[0], vbase, &a, 8);
    mmu.write(pids[1], vbase + 8, &b, 8);
    EXPECT_EQ(ptsbs[0]->commit().conflictBytes, 0u);
    EXPECT_EQ(ptsbs[1]->commit().conflictBytes, 0u);
}

TEST_F(ConflictFixture, SerializedWritesNeverConflict)
{
    // Commit-between-writes = synchronization: no conflicts, ever.
    for (int round = 0; round < 10; ++round) {
        std::uint64_t v = round;
        mmu.write(pids[round % 2], vbase, &v, 8);
        EXPECT_EQ(ptsbs[round % 2]->commit().conflictBytes, 0u);
    }
}

TEST_F(ConflictFixture, Figure3TearingReportsConflicts)
{
    // The Figure 3 AMBSA program: the halves that overlap in the
    // merge are racy; the diagnostic sees the second commit touch a
    // line whose bytes... in this specific pattern the two stores
    // change DISJOINT bytes (0xAB00 changes the high byte, 0x00CD
    // the low byte), which is exactly why tearing is silent: no
    // conflict is flagged even though AMBSA broke.
    std::uint16_t s0 = 0xAB00, s1 = 0x00CD;
    mmu.write(pids[0], vbase, &s0, 2);
    mmu.write(pids[1], vbase, &s1, 2);
    EXPECT_EQ(ptsbs[0]->commit().conflictBytes, 0u);
    EXPECT_EQ(ptsbs[1]->commit().conflictBytes, 0u);

    std::uint16_t x = 0;
    mmu.readShared(pids[0], vbase, &x, 2);
    EXPECT_EQ(x, 0xABCD); // torn, yet conflict-free: races on
                          // distinct bytes evade byte-level checks
}

/** Randomized: conflicts appear iff byte ranges race. */
class ConflictSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ConflictSweep, RandomRaceFreeScheduleIsConflictFree)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    Mmu mmu(smallPageShift);
    ShmRegion region("shm", mmu.phys());
    region.grow(1);
    constexpr Addr vbase = 0x10000000;
    ProcessId pids[2];
    std::unique_ptr<Ptsb> ptsbs[2];
    for (int i = 0; i < 2; ++i) {
        pids[i] = mmu.createAddressSpace();
        mmu.mapShared(pids[i], vbase, region, 0, 1);
        ptsbs[i] = std::make_unique<Ptsb>(mmu, pids[i]);
        ptsbs[i]->protectPage(vbase >> smallPageShift);
    }
    Ptsb *p0 = ptsbs[0].get();
    Ptsb *p1 = ptsbs[1].get();
    mmu.setCowCallback([&](ProcessId pid, VPage vp, PPage sf,
                           PPage pf) -> CowOutcome {
        return (pid == pids[0] ? p0 : p1)->onCowFault(vp, sf, pf);
    });

    // Race-free: one writer at a time, commit before handover.
    std::uint64_t total_conflicts = 0;
    for (int round = 0; round < 50; ++round) {
        int who = static_cast<int>(rng.below(2));
        for (int w = 0; w < 10; ++w) {
            std::uint64_t v = rng.next() | 1;
            Addr off = rng.below(smallPageBytes / 8) * 8;
            mmu.write(pids[who], vbase + off, &v, 8);
        }
        total_conflicts +=
            ptsbs[who]->commit().conflictBytes;
    }
    EXPECT_EQ(total_conflicts, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictSweep,
                         ::testing::Values(11, 22, 33, 44));

} // namespace tmi
