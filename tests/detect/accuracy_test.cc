/**
 * @file
 * Ground-truth accuracy tests: the detector, run end-to-end through
 * the machine + perf stack on the layout fuzzer, must find the
 * false-shared lines and not flag the true-shared/private/read-only
 * ones, at the paper's default sampling period.
 */

#include <gtest/gtest.h>

#include <map>

#include "runtime/tmi_runtime.hh"
#include "workloads/fuzz_layout.hh"

namespace tmi
{

namespace
{

struct Verdicts
{
    std::map<Addr, std::pair<double, double>> byLine; //!< (fs, ts)
};

Verdicts
runFuzz(std::uint64_t seed, FuzzLayoutWorkload &workload)
{
    MachineConfig mc;
    mc.cores = 4;
    mc.shmBackedHeap = true;
    mc.tmiModifiedAllocator = true;
    mc.seed = seed;
    Machine machine(mc);

    workload.init(machine);
    TmiConfig tc;
    tc.mode = TmiMode::DetectOnly;
    tc.analysisInterval = 500'000;
    TmiRuntime tmi(machine, tc);
    tmi.attach();

    machine.spawnThread("fuzz-main", [&workload](ThreadApi &api) {
        workload.main(api);
    });
    EXPECT_EQ(machine.sched().run(60'000'000'000ULL),
              RunOutcome::Completed);

    Verdicts verdicts;
    for (const auto &rep : tmi.detector().topContendedLines(10000))
        verdicts.byLine[rep.lineAddr] = {rep.fsEvents, rep.tsEvents};
    return verdicts;
}

} // namespace

class FuzzAccuracy : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzAccuracy, DefaultPeriodFindsMostFalseSharing)
{
    WorkloadParams params;
    params.threads = 4;
    params.scale = 3;
    params.seed = GetParam();
    FuzzLayoutWorkload::Mix mix;
    FuzzLayoutWorkload workload(params, mix);
    Verdicts verdicts = runFuzz(GetParam(), workload);

    unsigned tp = 0, fp = 0, fn = 0;
    const auto &truth = workload.groundTruth();
    for (std::size_t i = 0; i < truth.size(); ++i) {
        auto it = verdicts.byLine.find(workload.lineAddr(i));
        bool flagged = it != verdicts.byLine.end() &&
                       it->second.first > it->second.second &&
                       it->second.first > 0;
        bool is_fs = truth[i] == LineBehaviour::FalseShared;
        tp += is_fs && flagged;
        fp += !is_fs && flagged;
        fn += is_fs && !flagged;
    }
    // At the paper's period (100), recall should be high and false
    // positives few (address noise can bleed onto neighbours).
    EXPECT_GE(tp, (tp + fn) * 8 / 10) << "recall below 80%";
    EXPECT_LE(fp, 4u) << "too many false positives";
}

TEST_P(FuzzAccuracy, PrivateAndReadOnlyLinesStayQuiet)
{
    WorkloadParams params;
    params.threads = 4;
    params.scale = 3;
    params.seed = GetParam();
    FuzzLayoutWorkload::Mix mix;
    mix.falseSharedPct = 0;
    mix.trueSharedPct = 0;
    mix.privatePct = 50;
    FuzzLayoutWorkload workload(params, mix);
    Verdicts verdicts = runFuzz(GetParam(), workload);

    // Without cross-thread writes there is no HITM at all: nothing
    // to classify anywhere.
    double total_fs = 0;
    for (const auto &[addr, v] : verdicts.byLine) {
        (void)addr;
        total_fs += v.first;
    }
    EXPECT_EQ(total_fs, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzAccuracy,
                         ::testing::Values(3u, 17u, 99u));

} // namespace tmi
