/**
 * @file
 * Tests for Predator-style false sharing prediction at larger line
 * sizes, fed by instrumentation sampling rather than HITM events.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "detect/detector.hh"

namespace tmi
{

namespace
{

struct PredictionFixture : public ::testing::Test
{
    PredictionFixture()
    {
        pc_store = instrs.define("p.store", MemKind::Store, 8);
        pc_load = instrs.define("p.load", MemKind::Load, 8);
        map.add(base, 1 << 20, RangeKind::AppHeap, "heap");
        det = std::make_unique<Detector>(instrs, map,
                                         DetectorConfig{});
    }

    static constexpr Addr base = 0x10000000;
    InstructionTable instrs;
    AddressMap map;
    std::unique_ptr<Detector> det;
    Addr pc_store = 0, pc_load = 0;
};

} // namespace

TEST_F(PredictionFixture, AdjacentLineWritersPredictedAt128)
{
    // Thread 0 owns line 0, thread 1 owns line 1: invisible on
    // 64-byte hardware, false sharing at 128 bytes.
    det->consumeAccess(0, base + 0, pc_store);
    det->consumeAccess(1, base + 64, pc_store);

    auto predicted = det->predictFalseSharing(7);
    ASSERT_EQ(predicted.size(), 1u);
    EXPECT_EQ(predicted[0], base);
    // Nothing contends on current hardware.
    EXPECT_EQ(det->fsEventsEstimated(), 0.0);
}

TEST_F(PredictionFixture, ExistingFalseSharingNotDoubleReported)
{
    // Both threads already conflict within one 64-byte line: that is
    // today's false sharing, not a prediction.
    det->consumeAccess(0, base + 0, pc_store);
    det->consumeAccess(1, base + 8, pc_store);
    EXPECT_TRUE(det->predictFalseSharing(7).empty());
}

TEST_F(PredictionFixture, SameThreadAcrossLinesNotPredicted)
{
    det->consumeAccess(0, base + 0, pc_store);
    det->consumeAccess(0, base + 64, pc_store);
    EXPECT_TRUE(det->predictFalseSharing(7).empty());
}

TEST_F(PredictionFixture, ReadOnlyNeighboursNotPredicted)
{
    det->consumeAccess(0, base + 0, pc_load);
    det->consumeAccess(1, base + 64, pc_load);
    EXPECT_TRUE(det->predictFalseSharing(7).empty());
}

TEST_F(PredictionFixture, ReadWriteAcrossLinesIsPredicted)
{
    det->consumeAccess(0, base + 0, pc_store);
    det->consumeAccess(1, base + 64, pc_load);
    EXPECT_EQ(det->predictFalseSharing(7).size(), 1u);
}

TEST_F(PredictionFixture, SeparateBlocksNotMerged)
{
    // Lines 0 and 2 are in different 128-byte blocks.
    det->consumeAccess(0, base + 0, pc_store);
    det->consumeAccess(1, base + 128, pc_store);
    EXPECT_TRUE(det->predictFalseSharing(7).empty());
    // At 256-byte lines they do collide.
    EXPECT_EQ(det->predictFalseSharing(8).size(), 1u);
}

TEST(PredictionEndToEnd, InstrumentationFeedsTheDetector)
{
    // Per-thread 64-byte-aligned slots: clean on this machine, false
    // shared at 128 bytes. The full pipeline: machine instrumentation
    // sampler -> detector -> prediction.
    MachineConfig mc;
    mc.instrumentationSampling = 1; // sample every access
    Machine machine(mc);
    Addr pc_st = machine.instructions().define("w.store",
                                               MemKind::Store, 8);
    Addr pc_ld = machine.instructions().define("w.load",
                                               MemKind::Load, 8);

    Detector det(machine.instructions(), machine.addressMap(),
                 DetectorConfig{});
    machine.setAccessSampler([&det](const AccessContext &ctx) {
        det.consumeAccess(ctx.tid, ctx.vaddr, ctx.pc);
    });

    Addr slots = 0;
    machine.spawnThread("main", [&](ThreadApi &api) {
        slots = api.memalign(lineBytes, 4 * lineBytes);
        api.fill(slots, 0, 4 * lineBytes);
        std::vector<ThreadId> ws;
        for (int t = 0; t < 4; ++t) {
            Addr slot = slots + t * lineBytes;
            ws.push_back(api.spawn("w", [&, slot](ThreadApi &w) {
                for (int i = 0; i < 500; ++i) {
                    std::uint64_t v = w.load(pc_ld, slot);
                    w.store(pc_st, slot, v + 1);
                }
            }));
        }
        for (ThreadId t : ws)
            api.join(t);
    });
    ASSERT_EQ(machine.sched().run(10'000'000'000ULL),
              RunOutcome::Completed);

    // No contention on 64-byte hardware...
    EXPECT_EQ(machine.cache().hitmEvents(), 0u);
    // ...but both 128-byte blocks are predicted.
    auto predicted = det.predictFalseSharing(7);
    ASSERT_EQ(predicted.size(), 2u);
    EXPECT_EQ(predicted[0], slots);
    EXPECT_EQ(predicted[1], slots + 128);
    // And one 256-byte block covers everything.
    EXPECT_EQ(det.predictFalseSharing(8).size(), 1u);
}

TEST(PredictionEndToEnd, InstrumentationCostsShowUp)
{
    // The instrumentation tax is real: the same program runs slower
    // with sampling enabled (Predator-style overhead).
    auto run = [](std::uint64_t sampling) {
        MachineConfig mc;
        mc.instrumentationSampling = sampling;
        Machine machine(mc);
        Addr pc_st = machine.instructions().define(
            "w.store", MemKind::Store, 8);
        machine.spawnThread("main", [&](ThreadApi &api) {
            Addr a = api.malloc(64);
            for (int i = 0; i < 5000; ++i)
                api.store(pc_st, a, i);
        });
        machine.sched().run(10'000'000'000ULL);
        return machine.elapsed();
    };
    EXPECT_GT(run(1), run(0) * 3 / 2);
}

} // namespace tmi
