/**
 * @file
 * Unit tests for the false sharing detector.
 */

#include <gtest/gtest.h>

#include "detect/detector.hh"

namespace tmi
{

namespace
{

struct DetectorFixture : public ::testing::Test
{
    DetectorFixture()
    {
        pc_store4 = instrs.define("w.store4", MemKind::Store, 4);
        pc_load4 = instrs.define("w.load4", MemKind::Load, 4);
        pc_store8 = instrs.define("w.store8", MemKind::Store, 8);
        map.add(heapBase, 1 << 20, RangeKind::AppHeap, "heap");
        map.add(libBase, 1 << 20, RangeKind::SystemLib, "libc");
        cfg.samplePeriod = 10;
        cfg.cyclesPerSecond = 1e9;
        cfg.repairThreshold = 1000.0;
        det = std::make_unique<Detector>(instrs, map, cfg);
    }

    PebsRecord
    rec(ThreadId tid, Addr vaddr, Addr pc)
    {
        PebsRecord r;
        r.tid = tid;
        r.vaddr = vaddr;
        r.pc = pc;
        return r;
    }

    static constexpr Addr heapBase = 0x10000000;
    static constexpr Addr libBase = 0x70000000;
    InstructionTable instrs;
    AddressMap map;
    DetectorConfig cfg;
    std::unique_ptr<Detector> det;
    Addr pc_store4 = 0, pc_load4 = 0, pc_store8 = 0;
};

} // namespace

TEST_F(DetectorFixture, AddressMapFiltersSystemRanges)
{
    det->consume(rec(0, libBase + 64, pc_store4));
    EXPECT_EQ(det->recordsClassified(), 0u);
    EXPECT_EQ(det->recordsFiltered(), 1u);

    det->consume(rec(0, heapBase + 64, pc_store4));
    EXPECT_EQ(det->recordsClassified(), 1u);
}

TEST_F(DetectorFixture, UnknownPcFiltered)
{
    det->consume(rec(0, heapBase, 0x123457));
    EXPECT_EQ(det->recordsClassified(), 0u);
    EXPECT_EQ(det->recordsFiltered(), 1u);
}

TEST_F(DetectorFixture, DisjointWritesClassifyAsFalseSharing)
{
    // Thread 0 stores bytes [0,4); thread 1 stores [8,12): same
    // line, disjoint ranges -> false sharing.
    det->consume(rec(0, heapBase + 0, pc_store4));
    det->consume(rec(1, heapBase + 8, pc_store4));
    EXPECT_GT(det->fsEventsEstimated(), 0.0);
    EXPECT_EQ(det->tsEventsEstimated(), 0.0);
}

TEST_F(DetectorFixture, OverlappingWriteIsTrueSharing)
{
    det->consume(rec(0, heapBase + 0, pc_store4));
    det->consume(rec(1, heapBase + 0, pc_store4));
    EXPECT_EQ(det->fsEventsEstimated(), 0.0);
    EXPECT_GT(det->tsEventsEstimated(), 0.0);
}

TEST_F(DetectorFixture, PartialOverlapIsTrueSharing)
{
    // 8-byte store at offset 0 overlaps a 4-byte store at offset 4.
    det->consume(rec(0, heapBase + 0, pc_store8));
    det->consume(rec(1, heapBase + 4, pc_store4));
    EXPECT_GT(det->tsEventsEstimated(), 0.0);
    EXPECT_EQ(det->fsEventsEstimated(), 0.0);
}

TEST_F(DetectorFixture, ReadWriteDisjointIsFalseSharing)
{
    det->consume(rec(0, heapBase + 0, pc_store4));
    det->consume(rec(1, heapBase + 32, pc_load4));
    EXPECT_GT(det->fsEventsEstimated(), 0.0);
}

TEST_F(DetectorFixture, DisjointLoadsOnHitmLineAreFalseSharing)
{
    // A HITM line is remote-Modified by definition, so even pure
    // load records with disjoint per-thread offsets indicate false
    // sharing (the stores upgrade without missing and are rarely
    // sampled -- the shptr-lock pattern).
    det->consume(rec(0, heapBase + 0, pc_load4));
    det->consume(rec(1, heapBase + 8, pc_load4));
    EXPECT_GT(det->fsEventsEstimated(), 0.0);
}

TEST_F(DetectorFixture, OverlappingLoadsAreTrueSharing)
{
    det->consume(rec(0, heapBase + 0, pc_load4));
    det->consume(rec(1, heapBase + 0, pc_load4));
    EXPECT_GT(det->tsEventsEstimated(), 0.0);
    EXPECT_EQ(det->fsEventsEstimated(), 0.0);
}

TEST_F(DetectorFixture, SameThreadNeverConflicts)
{
    det->consume(rec(0, heapBase + 0, pc_store4));
    det->consume(rec(0, heapBase + 8, pc_store4));
    det->consume(rec(0, heapBase + 8, pc_store4));
    EXPECT_EQ(det->fsEventsEstimated(), 0.0);
    EXPECT_EQ(det->tsEventsEstimated(), 0.0);
}

TEST_F(DetectorFixture, PeriodScalingMultipliesEvents)
{
    det->consume(rec(0, heapBase + 0, pc_store4));
    det->consume(rec(1, heapBase + 8, pc_store4));
    det->consume(rec(0, heapBase + 0, pc_store4));
    // Two FS-classified records at period 10 -> ~20 events... the
    // first record has no conflicting signature yet, so exactly the
    // 2nd and 3rd records count.
    EXPECT_DOUBLE_EQ(det->fsEventsEstimated(), 20.0);
}

TEST_F(DetectorFixture, AnalyzeNominatesHotPages)
{
    // 100 records x period 10 = 1000 estimated events in a window
    // of 0.5e9 cycles (0.5 s) -> 2000 ev/s > threshold 1000.
    for (int i = 0; i < 50; ++i) {
        det->consume(rec(0, heapBase + 0, pc_store4));
        det->consume(rec(1, heapBase + 8, pc_store4));
    }
    AnalysisResult res = det->analyze(500'000'000);
    ASSERT_EQ(res.pagesToRepair.size(), 1u);
    EXPECT_EQ(res.pagesToRepair[0], heapBase >> smallPageShift);
    EXPECT_GT(res.fsEventsPerSec, cfg.repairThreshold);
}

TEST_F(DetectorFixture, BelowThresholdNotNominated)
{
    det->consume(rec(0, heapBase + 0, pc_store4));
    det->consume(rec(1, heapBase + 8, pc_store4));
    // 10 events over 1 second = 10 ev/s << 1000.
    AnalysisResult res = det->analyze(1'000'000'000);
    EXPECT_TRUE(res.pagesToRepair.empty());
}

TEST_F(DetectorFixture, TrueSharingPagesNotNominated)
{
    for (int i = 0; i < 200; ++i) {
        det->consume(rec(0, heapBase + 0, pc_store4));
        det->consume(rec(1, heapBase + 0, pc_store4));
    }
    AnalysisResult res = det->analyze(1'000'000);
    EXPECT_TRUE(res.pagesToRepair.empty());
    EXPECT_GT(res.tsEventsPerSec, 0.0);
}

TEST_F(DetectorFixture, WindowResetsBetweenAnalyses)
{
    for (int i = 0; i < 50; ++i) {
        det->consume(rec(0, heapBase + 0, pc_store4));
        det->consume(rec(1, heapBase + 8, pc_store4));
    }
    AnalysisResult first = det->analyze(1'000'000);
    EXPECT_FALSE(first.pagesToRepair.empty());
    // No new records: the next window is quiet.
    AnalysisResult second = det->analyze(1'000'000);
    EXPECT_TRUE(second.pagesToRepair.empty());
    EXPECT_EQ(second.fsEventsPerSec, 0.0);
}

TEST_F(DetectorFixture, HugePageAggregation)
{
    cfg.pageShift = hugePageShift;
    Detector hdet(instrs, map, cfg);
    for (int i = 0; i < 50; ++i) {
        hdet.consume(rec(0, heapBase + 0, pc_store4));
        hdet.consume(rec(1, heapBase + 8, pc_store4));
    }
    AnalysisResult res = hdet.analyze(1'000'000);
    ASSERT_EQ(res.pagesToRepair.size(), 1u);
    EXPECT_EQ(res.pagesToRepair[0], heapBase >> hugePageShift);
}

TEST_F(DetectorFixture, MetadataBytesGrowWithTrackedLines)
{
    std::uint64_t before = det->metadataBytes();
    for (int i = 0; i < 10; ++i)
        det->consume(rec(0, heapBase + i * 64, pc_store4));
    EXPECT_GT(det->metadataBytes(), before);
    EXPECT_EQ(det->trackedLines(), 10u);
}

TEST_F(DetectorFixture, TopContendedLinesRanksByFsEvents)
{
    // Line A: heavy false sharing; line B: one true-sharing pair.
    for (int i = 0; i < 20; ++i) {
        det->consume(rec(0, heapBase + 0, pc_store4));
        det->consume(rec(1, heapBase + 8, pc_store4));
    }
    det->consume(rec(0, heapBase + 256, pc_store4));
    det->consume(rec(1, heapBase + 256, pc_store4));

    auto top = det->topContendedLines(10);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].lineAddr, heapBase);
    EXPECT_GT(top[0].fsEvents, top[1].fsEvents);
    EXPECT_GT(top[1].tsEvents, 0.0);

    // The report carries the signatures a fix needs: two threads,
    // disjoint 4-byte stores.
    ASSERT_EQ(top[0].accesses.size(), 2u);
    EXPECT_NE(top[0].accesses[0].tid, top[0].accesses[1].tid);
    EXPECT_TRUE(top[0].accesses[0].isWrite);
    EXPECT_EQ(top[0].accesses[0].width, 4u);
}

TEST_F(DetectorFixture, TopContendedLinesTruncates)
{
    for (int i = 0; i < 8; ++i)
        det->consume(rec(0, heapBase + i * 64, pc_store4));
    EXPECT_EQ(det->topContendedLines(3).size(), 3u);
    EXPECT_EQ(det->topContendedLines(100).size(), 8u);
}

TEST_F(DetectorFixture, SignatureTableIsBounded)
{
    cfg.maxSigsPerLine = 4;
    Detector bounded(instrs, map, cfg);
    for (unsigned t = 0; t < 12; ++t)
        bounded.consume(rec(t, heapBase + (t % 16) * 4, pc_store4));
    auto top = bounded.topContendedLines(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_LE(top[0].accesses.size(), 4u);
}

TEST_F(DetectorFixture, ConsumeReturnsCost)
{
    EXPECT_EQ(det->consume(rec(0, heapBase, pc_store4)),
              cfg.classifyCostPerRecord);
    EXPECT_EQ(det->consume(rec(0, libBase, pc_store4)), 0u);
}

} // namespace tmi
