/**
 * @file
 * Unit tests for the fault-injection framework: trigger semantics,
 * exact seeded replay, and stream independence between points.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_injector.hh"

namespace tmi
{

namespace
{

std::vector<bool>
firePattern(FaultInjector &inj, const char *point, unsigned n)
{
    std::vector<bool> fires;
    for (unsigned i = 0; i < n; ++i)
        fires.push_back(inj.shouldFail(point));
    return fires;
}

} // namespace

TEST(FaultInjector, UnarmedPointsNeverFail)
{
    FaultInjector inj;
    EXPECT_FALSE(inj.enabled());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(inj.shouldFail(faultpoint::memCloneFail));
    EXPECT_EQ(inj.totalFires(), 0u);
}

TEST(FaultInjector, AlwaysFiresEveryQuery)
{
    FaultInjector inj;
    inj.arm(faultpoint::memCloneFail, FaultSpec::always());
    EXPECT_TRUE(inj.enabled());
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(inj.shouldFail(faultpoint::memCloneFail));
    EXPECT_EQ(inj.queries(faultpoint::memCloneFail), 10u);
    EXPECT_EQ(inj.fires(faultpoint::memCloneFail), 10u);
}

TEST(FaultInjector, FireAtHitsExactlyTheNthQuery)
{
    FaultInjector inj;
    inj.arm(faultpoint::schedStopTimeout, FaultSpec::once(3));
    std::vector<bool> fires =
        firePattern(inj, faultpoint::schedStopTimeout, 6);
    EXPECT_EQ(fires, (std::vector<bool>{false, false, true, false,
                                        false, false}));
}

TEST(FaultInjector, EveryNthFiresPeriodically)
{
    FaultInjector inj;
    FaultSpec spec;
    spec.everyNth = 4;
    inj.arm(faultpoint::ptsbOversizeCommit, spec);
    std::vector<bool> fires =
        firePattern(inj, faultpoint::ptsbOversizeCommit, 8);
    EXPECT_EQ(fires, (std::vector<bool>{false, false, false, true,
                                        false, false, false, true}));
}

TEST(FaultInjector, MaxFiresCapsTheCount)
{
    FaultInjector inj;
    FaultSpec spec = FaultSpec::always();
    spec.maxFires = 3;
    inj.arm(faultpoint::perfDropRecord, spec);
    unsigned fired = 0;
    for (int i = 0; i < 20; ++i)
        fired += inj.shouldFail(faultpoint::perfDropRecord);
    EXPECT_EQ(fired, 3u);
    EXPECT_EQ(inj.fires(faultpoint::perfDropRecord), 3u);
    EXPECT_EQ(inj.queries(faultpoint::perfDropRecord), 20u);
}

TEST(FaultInjector, ProbabilityRoughlyMatchesRate)
{
    FaultInjector inj(1234);
    inj.arm(faultpoint::memFrameExhausted,
            FaultSpec::withProbability(0.25));
    unsigned fired = 0;
    const unsigned n = 10000;
    for (unsigned i = 0; i < n; ++i)
        fired += inj.shouldFail(faultpoint::memFrameExhausted);
    EXPECT_GT(fired, n / 5);     // > 20%
    EXPECT_LT(fired, 3 * n / 10); // < 30%
}

TEST(FaultInjector, SameSeedReplaysExactly)
{
    FaultInjector a(777), b(777);
    a.arm(faultpoint::perfCorruptAddr, FaultSpec::withProbability(0.3));
    b.arm(faultpoint::perfCorruptAddr, FaultSpec::withProbability(0.3));
    EXPECT_EQ(firePattern(a, faultpoint::perfCorruptAddr, 500),
              firePattern(b, faultpoint::perfCorruptAddr, 500));
}

TEST(FaultInjector, DifferentSeedsDiffer)
{
    FaultInjector a(777), b(778);
    a.arm(faultpoint::perfCorruptAddr, FaultSpec::withProbability(0.3));
    b.arm(faultpoint::perfCorruptAddr, FaultSpec::withProbability(0.3));
    EXPECT_NE(firePattern(a, faultpoint::perfCorruptAddr, 500),
              firePattern(b, faultpoint::perfCorruptAddr, 500));
}

TEST(FaultInjector, PointStreamsAreInterleavingIndependent)
{
    // A point's pattern is a function of its own query index alone:
    // interleaving queries to other points must not perturb it.
    FaultInjector solo(99), mixed(99);
    solo.arm(faultpoint::memFrameExhausted,
             FaultSpec::withProbability(0.4));
    mixed.arm(faultpoint::memFrameExhausted,
              FaultSpec::withProbability(0.4));
    mixed.arm(faultpoint::perfWildPc, FaultSpec::withProbability(0.4));

    std::vector<bool> solo_fires, mixed_fires;
    for (unsigned i = 0; i < 300; ++i) {
        solo_fires.push_back(
            solo.shouldFail(faultpoint::memFrameExhausted));
        // Noise queries between the observed point's queries.
        mixed.shouldFail(faultpoint::perfWildPc);
        mixed_fires.push_back(
            mixed.shouldFail(faultpoint::memFrameExhausted));
        mixed.shouldFail(faultpoint::perfWildPc);
    }
    EXPECT_EQ(solo_fires, mixed_fires);
}

TEST(FaultInjector, RearmResetsCounters)
{
    FaultInjector inj;
    inj.arm(faultpoint::memCloneFail, FaultSpec::once(1));
    EXPECT_TRUE(inj.shouldFail(faultpoint::memCloneFail));
    EXPECT_FALSE(inj.shouldFail(faultpoint::memCloneFail));
    inj.arm(faultpoint::memCloneFail, FaultSpec::once(1));
    EXPECT_TRUE(inj.shouldFail(faultpoint::memCloneFail));
}

TEST(FaultInjector, DisarmStopsFiring)
{
    FaultInjector inj;
    inj.arm(faultpoint::memCloneFail, FaultSpec::always());
    EXPECT_TRUE(inj.shouldFail(faultpoint::memCloneFail));
    inj.disarm(faultpoint::memCloneFail);
    EXPECT_FALSE(inj.enabled());
    EXPECT_FALSE(inj.shouldFail(faultpoint::memCloneFail));
}

TEST(FaultInjector, StatsCountAcrossPoints)
{
    FaultInjector inj;
    inj.arm(faultpoint::memCloneFail, FaultSpec::always());
    inj.arm(faultpoint::perfDropRecord, FaultSpec::once(2));
    inj.shouldFail(faultpoint::memCloneFail);   // fires
    inj.shouldFail(faultpoint::perfDropRecord); // no
    inj.shouldFail(faultpoint::perfDropRecord); // fires
    EXPECT_EQ(inj.totalFires(), 2u);

    stats::StatGroup g("fault");
    inj.regStats(g);
    double queries = 0, fired = 0;
    EXPECT_TRUE(g.lookupScalar("faultQueries", queries));
    EXPECT_TRUE(g.lookupScalar("faultFires", fired));
    EXPECT_EQ(queries, 3.0);
    EXPECT_EQ(fired, 2.0);
}

TEST(FaultInjector, RegistryListsEveryInjectablePoint)
{
    auto points = FaultInjector::allPoints();
    ASSERT_EQ(points.size(), 14u);
    // Every name is unique, has a summary, and round-trips through
    // arm(): the registry IS the set of armable points.
    std::set<std::string> names;
    FaultInjector inj;
    for (const FaultPointInfo &info : points) {
        EXPECT_TRUE(names.insert(info.name).second)
            << info.name << " listed twice";
        ASSERT_NE(info.summary, nullptr);
        EXPECT_GT(std::string_view(info.summary).size(), 10u)
            << info.name;
        inj.arm(info.name, FaultSpec::always());
        EXPECT_TRUE(inj.shouldFail(info.name)) << info.name;
    }
    // The namespace constants all appear in the registry.
    for (const char *p :
         {faultpoint::perfRingOverflow, faultpoint::perfDropRecord,
          faultpoint::perfCorruptAddr, faultpoint::perfWildPc,
          faultpoint::memFrameExhausted, faultpoint::memCloneFail,
          faultpoint::ptsbTwinAllocFail,
          faultpoint::ptsbOversizeCommit,
          faultpoint::schedStopTimeout,
          faultpoint::allocMetadataCorrupt,
          faultpoint::allocSizeClassExhausted,
          faultpoint::htmSpuriousAbort,
          faultpoint::htmCapacityMisaccount,
          faultpoint::htmFallbackStuck}) {
        EXPECT_TRUE(names.count(p)) << p << " missing from registry";
    }
}

TEST(FaultInjector, WindowedSpecNeverFiresWithoutAClock)
{
    FaultInjector inj;
    inj.arm(faultpoint::memCloneFail,
            FaultSpec::always().inWindow(0, 1'000'000));
    for (unsigned i = 0; i < 50; ++i)
        EXPECT_FALSE(inj.shouldFail(faultpoint::memCloneFail));
    EXPECT_EQ(inj.totalFires(), 0u);
}

TEST(FaultInjector, WindowGatesFiringOnSimulatedTime)
{
    FaultInjector inj;
    std::uint64_t now = 0;
    inj.setClock([&] { return now; });
    inj.arm(faultpoint::memCloneFail,
            FaultSpec::always().inWindow(100, 200));

    now = 99; // before the window
    EXPECT_FALSE(inj.shouldFail(faultpoint::memCloneFail));
    now = 100; // inclusive start
    EXPECT_TRUE(inj.shouldFail(faultpoint::memCloneFail));
    now = 199;
    EXPECT_TRUE(inj.shouldFail(faultpoint::memCloneFail));
    now = 200; // exclusive end
    EXPECT_FALSE(inj.shouldFail(faultpoint::memCloneFail));
    EXPECT_EQ(inj.fires(faultpoint::memCloneFail), 2u);
}

TEST(FaultInjector, BurstFiresLenOutOfEveryPeriod)
{
    FaultInjector inj;
    FaultSpec spec;
    spec.burstLen = 3;
    spec.burstPeriod = 10;
    inj.arm(faultpoint::perfRingOverflow, spec);

    std::vector<bool> fires;
    for (unsigned i = 0; i < 30; ++i)
        fires.push_back(inj.shouldFail(faultpoint::perfRingOverflow));
    // 3 fires at the head of every 10-query period.
    for (unsigned i = 0; i < 30; ++i)
        EXPECT_EQ(fires[i], i % 10 < 3) << "query " << i;
    EXPECT_EQ(inj.fires(faultpoint::perfRingOverflow), 9u);
}

TEST(FaultInjector, WindowDoesNotPerturbTheRandomStream)
{
    // A windowed point must consume its random draws even while the
    // window is closed, so fire positions inside the window are a
    // pure function of the query index -- replay depends on it.
    FaultInjector open(7), gated(7);
    std::uint64_t now = 0;
    gated.setClock([&] { return now; });
    open.arm(faultpoint::perfWildPc, FaultSpec::withProbability(0.3));
    gated.arm(faultpoint::perfWildPc,
              FaultSpec::withProbability(0.3).inWindow(1000, 2000));

    std::vector<bool> open_fires, gated_fires;
    for (unsigned i = 0; i < 400; ++i) {
        now = i * 10; // queries 100..199 land inside the window
        open_fires.push_back(open.shouldFail(faultpoint::perfWildPc));
        gated_fires.push_back(
            gated.shouldFail(faultpoint::perfWildPc));
    }
    for (unsigned i = 0; i < 400; ++i) {
        bool in_window = i >= 100 && i < 200;
        EXPECT_EQ(gated_fires[i], in_window && open_fires[i])
            << "query " << i;
    }
}

} // namespace tmi
