/**
 * @file
 * Exporter golden tests: the Chrome trace JSON and CSV time-series
 * formats are pinned byte for byte on a tiny fixed timeline, so a
 * format drift fails loudly instead of silently breaking downstream
 * tooling (Perfetto, the plotting scripts, scripts/check_trace.py).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/export.hh"

using namespace tmi;
using namespace tmi::obs;

namespace
{

/** Two-event timeline: one sample, one ladder drop with a detail
 *  string that needs JSON escaping. cyclesPerSecond = 1e6 makes one
 *  cycle == one microsecond, so timestamps are easy to eyeball. */
std::vector<TraceEvent>
tinyTimeline()
{
    std::vector<TraceEvent> events;
    TraceEvent a;
    a.time = 1000;
    a.tid = 1;
    a.kind = EventKind::HitmSample;
    a.a0 = 5;
    a.a1 = 6;
    events.push_back(a);
    TraceEvent b;
    b.time = 2000;
    b.tid = 2;
    b.kind = EventKind::LadderDrop;
    b.a0 = 0;
    b.a1 = 1;
    b.setDetail("T2P \"failed\"");
    events.push_back(b);
    return events;
}

} // namespace

TEST(ExportGolden, ChromeTraceJson)
{
    ChromeTraceMeta meta;
    meta.cyclesPerSecond = 1e6;
    meta.processName = "golden";
    std::ostringstream os;
    writeChromeTrace(os, tinyTimeline(), meta);

    const std::string expected =
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"tid\":0,\"args\":{\"name\":\"golden\"}},\n"
        "{\"name\":\"hitm.sample\",\"cat\":\"tmi\",\"ph\":\"i\","
        "\"s\":\"t\",\"ts\":1000.000,\"pid\":1,\"tid\":1,"
        "\"args\":{\"cycles\":1000,\"a0\":5,\"a1\":6}},\n"
        "{\"name\":\"ladder.drop\",\"cat\":\"tmi\",\"ph\":\"i\","
        "\"s\":\"t\",\"ts\":2000.000,\"pid\":1,\"tid\":2,"
        "\"args\":{\"cycles\":2000,\"a0\":0,\"a1\":1,"
        "\"detail\":\"T2P \\\"failed\\\"\"}}]}\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(ExportGolden, ChromeTraceEmptyTimelineIsValidJson)
{
    std::ostringstream os;
    writeChromeTrace(os, {});
    EXPECT_EQ(os.str(),
              "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
              "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
              "\"tid\":0,\"args\":{\"name\":\"tmi\"}}]}\n");
}

TEST(ExportGolden, CsvTimeSeries)
{
    std::ostringstream os;
    writeCsvTimeSeries(os, tinyTimeline(), 1e6, /*bucket=*/1000);

    const std::string expected =
        "window,start_ms,hitm.sample,pebs.record_drop,t2p.begin,"
        "t2p.commit,t2p.rollback,cow.fault,cow.fallback,ptsb.commit,"
        "watchdog.flush,repair.engage,repair.page_protect,"
        "repair.unrepair,ladder.drop,ladder.recover,fault.fire,"
        "detect.window,alloc.fallback,chaos.schedule,"
        "chaos.verdict\n"
        // Empty windows are emitted too: rows stay uniformly spaced.
        "0,0.000,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0\n"
        "1,1.000,1,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0\n"
        "2,2.000,0,0,0,0,0,0,0,0,0,0,0,0,1,0,0,0,0,0,0\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(ExportGolden, CsvZeroBucketDoesNotDivideByZero)
{
    std::ostringstream os;
    writeCsvTimeSeries(os, {}, 1e6, 0);
    EXPECT_NE(os.str().find("window,start_ms"), std::string::npos);
}

TEST(ExportGolden, MetricsCsv)
{
    MetricsRegistry reg;
    reg.counter("runtime.commits").add(3);
    reg.gauge("mem.pages").set(2.5);
    Histogram &h = reg.histogram("workload.sojourn.cycles");
    for (int i = 0; i < 4; ++i)
        h.sample(1.0);
    h.sample(100.0);

    std::ostringstream os;
    writeMetricsCsv(os, reg);
    EXPECT_EQ(
        os.str(),
        "kind,name,value,count,mean,min,max,p50,p99,p999\n"
        "gauge,mem.pages,2.5,,,,,,,\n"
        "counter,runtime.commits,3,,,,,,,\n"
        "histogram,workload.sojourn.cycles,,5,20.8,1,100,"
        "1.75,100,100\n");
}

TEST(Export, SummarizeCountsAndSpan)
{
    TraceSummary sum = summarizeTrace(tinyTimeline());
    EXPECT_EQ(sum.total, 2u);
    EXPECT_EQ(sum.count(EventKind::HitmSample), 1u);
    EXPECT_EQ(sum.count(EventKind::LadderDrop), 1u);
    EXPECT_EQ(sum.firstTime, 1000u);
    EXPECT_EQ(sum.lastTime, 2000u);
}

TEST(Export, ReportNamesKindsAndTransitions)
{
    std::ostringstream os;
    writeTraceReport(os, tinyTimeline(), 1e6);
    std::string text = os.str();
    EXPECT_NE(text.find("trace: 2 events"), std::string::npos);
    EXPECT_NE(text.find("hitm.sample"), std::string::npos);
    EXPECT_NE(text.find("transitions:"), std::string::npos);
    EXPECT_NE(text.find("T2P \"failed\""), std::string::npos);
    // Non-transition kinds do not show up in the narrative.
    EXPECT_EQ(text.find("fault points fired"), std::string::npos);
}
