/**
 * @file
 * MetricsRegistry unit tests: registration/re-fetch identity, kind
 * collisions, histogram bucketing, StatGroup import, scoping.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"
#include "obs/metrics.hh"

using namespace tmi;
using namespace tmi::obs;

TEST(Metrics, CounterRegisterAndRefetchSameObject)
{
    MetricsRegistry reg;
    Counter &a = reg.counter("runtime.commits", "PTSB commits");
    a.add(3);
    ++a;
    Counter &b = reg.counter("runtime.commits");
    EXPECT_EQ(&a, &b);
    EXPECT_DOUBLE_EQ(b.value(), 4.0);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_TRUE(reg.contains("runtime.commits"));
    EXPECT_EQ(reg.kindOf("runtime.commits"), MetricKind::Counter);
}

TEST(Metrics, NameCollisionServesScrapAndCounts)
{
    MetricsRegistry reg;
    Counter &real = reg.counter("x");
    real.add(7);

    // Same name, different kind: warned, counted, scrap returned.
    Gauge &scrap = reg.gauge("x");
    scrap.set(99);
    EXPECT_EQ(reg.collisions(), 1u);

    // The legitimate registrant is unharmed and still a counter.
    double v = 0;
    ASSERT_TRUE(reg.value("x", v));
    EXPECT_DOUBLE_EQ(v, 7.0);
    EXPECT_EQ(reg.kindOf("x"), MetricKind::Counter);

    // Scrap writes from two collisions never alias each other's
    // legitimate metrics.
    Histogram &scrap2 = reg.histogram("x");
    scrap2.sample(1);
    EXPECT_EQ(reg.collisions(), 2u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, HistogramLog2Buckets)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("lat", "commit latency");
    h.sample(0.5); // bucket 0: < 1
    h.sample(1);   // bucket 1: [1, 2)
    h.sample(3);   // bucket 2: [2, 4)
    h.sample(4);   // bucket 3: [4, 8)
    h.sample(1e30); // clamps to the last bucket

    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(Histogram::numBuckets - 1), 1u);
    EXPECT_DOUBLE_EQ(h.min(), 0.5);
    EXPECT_DOUBLE_EQ(h.max(), 1e30);
}

TEST(Metrics, NamesAreSorted)
{
    MetricsRegistry reg;
    reg.counter("b.two");
    reg.gauge("a.one");
    reg.histogram("c.three");
    auto names = reg.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a.one");
    EXPECT_EQ(names[1], "b.two");
    EXPECT_EQ(names[2], "c.three");
}

TEST(Metrics, ImportStatsBridgesScalarsAndDistributions)
{
    stats::Scalar hits;
    hits += 42;
    stats::Distribution lat;
    lat.sample(10);
    lat.sample(30);

    stats::StatGroup root("machine");
    stats::StatGroup child("cache");
    child.addScalar("hitmEvents", &hits, "true HITM count");
    child.addDistribution("commitLat", &lat, "commit latency");
    root.addChild(&child);

    MetricsRegistry reg;
    reg.importStats(root, "machine");

    double v = 0;
    ASSERT_TRUE(reg.value("machine.cache.hitmEvents", v));
    EXPECT_DOUBLE_EQ(v, 42.0);
    ASSERT_TRUE(reg.value("machine.cache.commitLat.mean", v));
    EXPECT_DOUBLE_EQ(v, 20.0);
    ASSERT_TRUE(reg.value("machine.cache.commitLat.max", v));
    EXPECT_DOUBLE_EQ(v, 30.0);
    ASSERT_TRUE(reg.value("machine.cache.commitLat.count", v));
    EXPECT_DOUBLE_EQ(v, 2.0);
    EXPECT_FALSE(reg.value("machine.cache.missing", v));
}

TEST(Metrics, ScopePrefixesAndNests)
{
    MetricsRegistry reg;
    MetricScope runtime(reg, "runtime");
    runtime.counter("commits").add(1);
    MetricScope t2p = runtime.scope("t2p");
    t2p.gauge("attempts").set(3);

    EXPECT_TRUE(reg.contains("runtime.commits"));
    EXPECT_TRUE(reg.contains("runtime.t2p.attempts"));
    EXPECT_EQ(t2p.prefix(), "runtime.t2p");
}

TEST(Metrics, HistogramQuantileEmptyAndSingleSample)
{
    Histogram h;
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0); // empty -> 0

    // One sample: every quantile clamps to the one tracked value.
    h.sample(5);
    EXPECT_DOUBLE_EQ(h.p50(), 5.0);
    EXPECT_DOUBLE_EQ(h.p99(), 5.0);
    EXPECT_DOUBLE_EQ(h.p999(), 5.0);
}

TEST(Metrics, HistogramQuantileInterpolatesAndClamps)
{
    Histogram h;
    for (int i = 0; i < 4; ++i)
        h.sample(1.0); // bucket [1, 2)
    h.sample(100.0);   // bucket [64, 128)

    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);   // q <= 0 -> min
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0); // q >= 1 -> max
    // rank ceil(0.5 * 5) = 3 of the 4 samples in [1, 2):
    // 1 + (3/4) * (2 - 1).
    EXPECT_DOUBLE_EQ(h.p50(), 1.75);
    // rank 5 interpolates to the top of [64, 128); the clamp pulls
    // it back to the exact tracked max.
    EXPECT_DOUBLE_EQ(h.p99(), 100.0);
    EXPECT_LE(h.p50(), h.p99());
    EXPECT_LE(h.p99(), h.p999());
}

TEST(Metrics, HistogramMergeFoldsMomentsAndBuckets)
{
    Histogram a, b;
    a.sample(1);
    a.sample(1);
    b.sample(100);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 100.0);
    EXPECT_DOUBLE_EQ(a.sum(), 102.0);
    EXPECT_DOUBLE_EQ(a.quantile(1.0), 100.0);

    // Merging an empty histogram is a no-op; merging into an empty
    // one copies the extremes.
    Histogram empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 3u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 3u);
    EXPECT_DOUBLE_EQ(empty.min(), 1.0);
    EXPECT_DOUBLE_EQ(empty.max(), 100.0);
}

TEST(Metrics, FindAccessorsRespectKind)
{
    MetricsRegistry reg;
    reg.counter("c").add(1);
    reg.histogram("h").sample(2);
    EXPECT_NE(reg.findCounter("c"), nullptr);
    EXPECT_EQ(reg.findGauge("c"), nullptr);
    EXPECT_EQ(reg.findHistogram("c"), nullptr);
    EXPECT_EQ(reg.findCounter("missing"), nullptr);
    EXPECT_NE(reg.findHistogram("h"), nullptr);
}

TEST(Metrics, DumpListsEveryMetric)
{
    MetricsRegistry reg;
    reg.counter("a", "first").add(1);
    reg.gauge("b").set(2);
    reg.histogram("c").sample(5);
    std::ostringstream os;
    reg.dump(os);
    std::string text = os.str();
    EXPECT_NE(text.find("counter"), std::string::npos);
    EXPECT_NE(text.find("# first"), std::string::npos);
    EXPECT_NE(text.find("n=1 mean=5 max=5"), std::string::npos);
}
