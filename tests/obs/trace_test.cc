/**
 * @file
 * TraceRecorder unit tests: ring wraparound, drain ordering, the
 * clock/thread-source closures, and config validation.
 */

#include <gtest/gtest.h>

#include "obs/trace.hh"

using namespace tmi;
using namespace tmi::obs;

// Tests that need events to actually land skip under the tracing-off
// preset (-DTMI_TRACING=0 turns record bodies into no-ops).
#define SKIP_IF_TRACING_COMPILED_OUT()                                 \
    if (!TraceRecorder::compiledIn)                                    \
    GTEST_SKIP() << "built with TMI_TRACING=0"

TEST(TraceRecorder, RecordsAndCountsPerKind)
{
    SKIP_IF_TRACING_COMPILED_OUT();
    TraceConfig cfg;
    cfg.enabled = true;
    TraceRecorder rec(cfg);

    rec.recordAt(10, EventKind::HitmSample, 1, 0xdead, 0xbeef);
    rec.recordAt(20, EventKind::HitmSample, 2);
    rec.recordAt(30, EventKind::LadderDrop, 1, 2, 1, "why");

    EXPECT_EQ(rec.recorded(), 3u);
    EXPECT_EQ(rec.overwritten(), 0u);
    EXPECT_EQ(rec.count(EventKind::HitmSample), 2u);
    EXPECT_EQ(rec.count(EventKind::LadderDrop), 1u);
    EXPECT_EQ(rec.count(EventKind::CowFault), 0u);
    EXPECT_EQ(rec.threadsTraced(), 2u);
    EXPECT_EQ(rec.retained(), 3u);
}

TEST(TraceRecorder, DrainMergesTimeSorted)
{
    SKIP_IF_TRACING_COMPILED_OUT();
    TraceConfig cfg;
    cfg.enabled = true;
    TraceRecorder rec(cfg);

    // Interleave two threads with out-of-order arrival.
    rec.recordAt(30, EventKind::PtsbCommit, 2);
    rec.recordAt(10, EventKind::HitmSample, 1);
    rec.recordAt(20, EventKind::CowFault, 2);
    rec.recordAt(40, EventKind::HitmSample, 1);

    auto events = rec.drain();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].time, events[i].time);
    EXPECT_EQ(events[0].kind, EventKind::HitmSample);
    EXPECT_EQ(events[3].tid, 1u);

    // Drain clears the rings but keeps the counters.
    EXPECT_EQ(rec.retained(), 0u);
    EXPECT_EQ(rec.recorded(), 4u);
    EXPECT_TRUE(rec.drain().empty());
}

TEST(TraceRecorder, RingWrapsOverwritingOldest)
{
    SKIP_IF_TRACING_COMPILED_OUT();
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.ringCapacity = 4;
    TraceRecorder rec(cfg);

    for (std::uint64_t i = 0; i < 10; ++i)
        rec.recordAt(i, EventKind::HitmSample, 1, /*a0=*/i);

    EXPECT_EQ(rec.recorded(), 10u);
    EXPECT_EQ(rec.overwritten(), 6u);
    EXPECT_EQ(rec.retained(), 4u);

    // The newest window survives, oldest-first.
    auto events = rec.drain();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(events[i].a0, 6u + i);
}

TEST(TraceRecorder, WrapIsPerThread)
{
    SKIP_IF_TRACING_COMPILED_OUT();
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.ringCapacity = 2;
    TraceRecorder rec(cfg);

    for (std::uint64_t i = 0; i < 5; ++i)
        rec.recordAt(i, EventKind::HitmSample, /*tid=*/7);
    rec.recordAt(100, EventKind::CowFault, /*tid=*/8);

    // Thread 7 wrapped; thread 8 did not lose anything.
    EXPECT_EQ(rec.overwritten(), 3u);
    auto events = rec.drain();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events.back().tid, 8u);
}

TEST(TraceRecorder, ClockAndThreadSourceStampRecordHere)
{
    SKIP_IF_TRACING_COMPILED_OUT();
    TraceConfig cfg;
    cfg.enabled = true;
    TraceRecorder rec(cfg);
    Cycles now = 123;
    ThreadId tid = 9;
    rec.setClock([&now] { return now; });
    rec.setThreadSource([&tid] { return tid; });

    rec.recordHere(EventKind::FaultFire, 1, 0, "mem.clone_fail");
    now = 456;
    tid = 2;
    rec.recordHere(EventKind::T2pRollback, 2);

    auto events = rec.drain();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].time, 123u);
    EXPECT_EQ(events[0].tid, 9u);
    EXPECT_STREQ(events[0].detail, "mem.clone_fail");
    EXPECT_EQ(events[1].time, 456u);
    EXPECT_EQ(events[1].tid, 2u);
}

TEST(TraceRecorder, DetailTruncatesSafely)
{
    TraceEvent ev;
    std::string long_detail(100, 'x');
    ev.setDetail(long_detail.c_str());
    EXPECT_EQ(std::string(ev.detail).size(),
              TraceEvent::detailCapacity - 1);
    ev.setDetail(nullptr); // no-op, no crash
}

TEST(TraceRecorder, EventKindNamesAreDottedAndComplete)
{
    EXPECT_EQ(allEventKinds().size(), numEventKinds);
    for (EventKind kind : allEventKinds()) {
        std::string name = eventKindName(kind);
        EXPECT_NE(name.find('.'), std::string::npos) << name;
    }
    EXPECT_STREQ(eventKindName(EventKind::LadderDrop), "ladder.drop");
    EXPECT_STREQ(eventKindName(EventKind::FaultFire), "fault.fire");
}

TEST(TraceConfigValidation, RejectsZeroRing)
{
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.ringCapacity = 0;
    std::vector<ConfigError> errors;
    validateConfig(cfg, errors);
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors[0].field, "TraceConfig.ringCapacity");
}

TEST(TraceConfigValidation, DisabledConfigIsAlwaysValid)
{
    TraceConfig cfg; // enabled = false
    cfg.ringCapacity = 0;
    std::vector<ConfigError> errors;
    validateConfig(cfg, errors);
    EXPECT_TRUE(errors.empty());
}
