/**
 * @file
 * Unit tests for the instruction table and region matrix helpers.
 */

#include <gtest/gtest.h>

#include "isa/instructions.hh"

namespace tmi
{

TEST(InstructionTable, DefineAndLookup)
{
    InstructionTable tab;
    Addr pc1 = tab.define("load8", MemKind::Load, 8);
    Addr pc2 = tab.define("store4", MemKind::Store, 4);
    EXPECT_NE(pc1, pc2);
    EXPECT_GE(pc1, InstructionTable::textBase);

    const InstrInfo &i1 = tab.lookup(pc1);
    EXPECT_EQ(i1.kind, MemKind::Load);
    EXPECT_EQ(i1.width, 8u);
    EXPECT_EQ(i1.name, "load8");

    const InstrInfo &i2 = tab.lookup(pc2);
    EXPECT_EQ(i2.kind, MemKind::Store);
    EXPECT_EQ(i2.width, 4u);
}

TEST(InstructionTable, ContainsRejectsForeignPcs)
{
    InstructionTable tab;
    Addr pc = tab.define("x", MemKind::Load, 1);
    EXPECT_TRUE(tab.contains(pc));
    EXPECT_FALSE(tab.contains(pc + 4)); // past the end
    EXPECT_FALSE(tab.contains(pc + 1)); // misaligned
    EXPECT_FALSE(tab.contains(0));
    EXPECT_FALSE(tab.contains(0x1234));
}

TEST(InstructionTable, PcsAreDenselySpaced)
{
    InstructionTable tab;
    Addr prev = tab.define("a", MemKind::Load, 1);
    for (int i = 0; i < 10; ++i) {
        Addr pc = tab.define("b", MemKind::Load, 1);
        EXPECT_EQ(pc, prev + 4);
        prev = pc;
    }
    EXPECT_EQ(tab.size(), 11u);
}

TEST(InstructionTable, MetadataBytesGrowWithSize)
{
    InstructionTable tab;
    std::uint64_t before = tab.metadataBytes();
    tab.define("a", MemKind::Load, 8);
    EXPECT_GT(tab.metadataBytes(), before);
}

TEST(Regions, NamesResolve)
{
    EXPECT_STREQ(regionName(RegionKind::Regular), "regular");
    EXPECT_STREQ(regionName(RegionKind::Atomic), "atomic");
    EXPECT_STREQ(regionName(RegionKind::Asm), "asm");
}

} // namespace tmi
