/**
 * @file
 * Unit tests for the PEBS/perf sampling model.
 */

#include <gtest/gtest.h>

#include "perf/pebs.hh"

namespace tmi
{

namespace
{

AccessContext
hitmCtx(ThreadId tid, Addr vaddr, bool write)
{
    AccessContext c;
    c.core = tid;
    c.tid = tid;
    c.paddr = vaddr;
    c.vaddr = vaddr;
    c.pc = 0x400000;
    c.width = 8;
    c.isWrite = write;
    return c;
}

} // namespace

TEST(Pebs, PeriodControlsRecordRate)
{
    PerfConfig cfg;
    cfg.period = 10;
    PerfSession perf(cfg);
    perf.attachThread(3);
    for (int i = 0; i < 1000; ++i)
        perf.onHitm(hitmCtx(3, 0x1000, false), 100);
    EXPECT_EQ(perf.recordsEmitted(), 100u);
    EXPECT_EQ(perf.eventsSeen(), 1000u);
}

TEST(Pebs, UnattachedThreadIgnored)
{
    PerfSession perf;
    EXPECT_EQ(perf.onHitm(hitmCtx(9, 0x1000, false), 0), 0u);
    EXPECT_EQ(perf.eventsSeen(), 0u);
}

TEST(Pebs, EmittedRecordChargesAssistCost)
{
    PerfConfig cfg;
    cfg.period = 1;
    cfg.addrNoiseProb = 0;
    PerfSession perf(cfg);
    perf.attachThread(0);
    EXPECT_EQ(perf.onHitm(hitmCtx(0, 0x1000, false), 5),
              cfg.recordCost);
}

TEST(Pebs, StoresUnderReported)
{
    PerfConfig cfg;
    cfg.period = 1;
    cfg.storeSampleBias = 0.3;
    PerfSession perf(cfg);
    perf.attachThread(0);
    perf.attachThread(1);
    for (int i = 0; i < 10000; ++i) {
        perf.onHitm(hitmCtx(0, 0x1000, false), 0); // loads
        perf.onHitm(hitmCtx(1, 0x2000, true), 0);  // stores
    }
    std::vector<PebsRecord> loads, stores;
    perf.drain(0, loads);
    perf.drain(1, stores);
    // All 10000 load events produce records (some lost to the full
    // ring); stores count toward the period only ~30% of the time.
    EXPECT_EQ(loads.size() + perf.recordsLost(), 10000u);
    EXPECT_LT(stores.size(), loads.size() / 2);
    EXPECT_GT(stores.size(), 1000u);
}

TEST(Pebs, BufferOverflowDropsRecords)
{
    PerfConfig cfg;
    cfg.period = 1;
    cfg.bufferRecords = 16;
    cfg.storeSampleBias = 1.0;
    PerfSession perf(cfg);
    perf.attachThread(0);
    for (int i = 0; i < 100; ++i)
        perf.onHitm(hitmCtx(0, 0x1000, false), 0);
    EXPECT_EQ(perf.recordsLost(), 84u);
    std::vector<PebsRecord> out;
    EXPECT_EQ(perf.drain(0, out), 16u);
}

TEST(Pebs, DrainEmptiesBuffer)
{
    PerfConfig cfg;
    cfg.period = 1;
    PerfSession perf(cfg);
    perf.attachThread(0);
    perf.onHitm(hitmCtx(0, 0x1234, false), 77);
    std::vector<PebsRecord> out;
    EXPECT_EQ(perf.drain(0, out), 1u);
    EXPECT_EQ(out[0].tid, 0u);
    EXPECT_EQ(out[0].pc, 0x400000u);
    EXPECT_EQ(out[0].time, 77u);
    out.clear();
    EXPECT_EQ(perf.drain(0, out), 0u);
}

TEST(Pebs, DrainAllCoversThreads)
{
    PerfConfig cfg;
    cfg.period = 1;
    PerfSession perf(cfg);
    perf.attachThread(0);
    perf.attachThread(1);
    perf.onHitm(hitmCtx(0, 0x1000, false), 0);
    perf.onHitm(hitmCtx(1, 0x2000, false), 0);
    std::vector<PebsRecord> out;
    EXPECT_EQ(perf.drainAll(out), 2u);
}

TEST(Pebs, AddressNoiseStaysNearTruth)
{
    PerfConfig cfg;
    cfg.period = 1;
    cfg.addrNoiseProb = 1.0; // always perturb
    PerfSession perf(cfg);
    perf.attachThread(0);
    for (int i = 0; i < 100; ++i)
        perf.onHitm(hitmCtx(0, 0x10000, false), 0);
    std::vector<PebsRecord> out;
    perf.drain(0, out);
    int moved = 0;
    for (const auto &rec : out) {
        EXPECT_LE(rec.vaddr, 0x10000u + 2 * lineBytes);
        EXPECT_GE(rec.vaddr, 0x10000u - 2 * lineBytes);
        if (rec.vaddr != 0x10000u)
            ++moved;
    }
    EXPECT_GT(moved, 50);
}

TEST(Pebs, PcIsAlwaysExact)
{
    PerfConfig cfg;
    cfg.period = 1;
    cfg.addrNoiseProb = 1.0;
    PerfSession perf(cfg);
    perf.attachThread(0);
    for (int i = 0; i < 50; ++i)
        perf.onHitm(hitmCtx(0, 0x9000, false), 0);
    std::vector<PebsRecord> out;
    perf.drain(0, out);
    for (const auto &rec : out)
        EXPECT_EQ(rec.pc, 0x400000u);
}

TEST(Pebs, BufferBytesScalesWithThreads)
{
    PerfSession perf;
    perf.attachThread(0);
    std::uint64_t one = perf.bufferBytes();
    perf.attachThread(1);
    EXPECT_EQ(perf.bufferBytes(), 2 * one);
}

} // namespace tmi
