/**
 * @file
 * Edge-case tests for the Machine facade: access widths, condvars,
 * barriers under load, bulk ops spanning pages, sbrk growth, and the
 * sync-object traffic model.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"

namespace tmi
{

namespace
{

struct EdgeFixture : public ::testing::Test
{
    EdgeFixture() : machine(MachineConfig{}) {}

    RunOutcome
    runAs(std::function<void(ThreadApi &)> fn)
    {
        machine.spawnThread("test", std::move(fn));
        return machine.sched().run(20'000'000'000ULL);
    }

    Addr
    defineLoad(unsigned width)
    {
        return machine.instructions().define(
            "edge.load" + std::to_string(width), MemKind::Load, width);
    }

    Addr
    defineStore(unsigned width)
    {
        return machine.instructions().define(
            "edge.store" + std::to_string(width), MemKind::Store,
            width);
    }

    Machine machine;
};

} // namespace

TEST_F(EdgeFixture, AllAccessWidthsRoundTrip)
{
    runAs([&](ThreadApi &api) {
        Addr a = api.memalign(lineBytes, 64);
        for (unsigned width : {1u, 2u, 4u, 8u}) {
            Addr pc_st = defineStore(width);
            Addr pc_ld = defineLoad(width);
            std::uint64_t pattern = 0x1122334455667788ULL;
            std::uint64_t mask =
                width == 8 ? ~0ULL : ((1ULL << (8 * width)) - 1);
            api.store(pc_st, a, pattern & mask);
            EXPECT_EQ(api.load(pc_ld, a), pattern & mask)
                << "width " << width;
        }
    });
}

TEST_F(EdgeFixture, NarrowStoresDoNotClobberNeighbours)
{
    runAs([&](ThreadApi &api) {
        Addr a = api.memalign(lineBytes, 16);
        Addr pc_st8 = defineStore(8);
        Addr pc_st1 = defineStore(1);
        Addr pc_ld8 = defineLoad(8);
        api.store(pc_st8, a, 0xAAAAAAAAAAAAAAAAULL);
        api.store(pc_st1, a + 3, 0xBB);
        EXPECT_EQ(api.load(pc_ld8, a), 0xAAAAAAAABBAAAAAAULL);
    });
}

TEST_F(EdgeFixture, MismatchedKindAsserts)
{
    EXPECT_DEATH(
        {
            Addr pc_ld = defineLoad(8);
            machine.spawnThread("bad", [&, pc_ld](ThreadApi &api) {
                Addr a = api.malloc(8);
                api.store(pc_ld, a, 1); // store through a load PC
            });
            machine.sched().run(1'000'000'000ULL);
        },
        "assertion");
}

TEST_F(EdgeFixture, ProducerConsumerViaCondvar)
{
    Addr pc_st = defineStore(8);
    Addr pc_ld = defineLoad(8);
    machine.spawnThread("main", [&](ThreadApi &api) {
        Addr queue = api.memalign(lineBytes, 8);
        api.fill(queue, 0, 8);
        Addr lock = api.memalign(lineBytes, lineBytes);
        Addr cond = api.memalign(lineBytes, lineBytes);
        api.mutexInit(lock);
        api.condInit(cond);

        std::uint64_t consumed = 0;
        ThreadId consumer =
            api.spawn("consumer", [&](ThreadApi &c) {
                for (int i = 0; i < 50; ++i) {
                    c.mutexLock(lock);
                    while (c.load(pc_ld, queue) == 0)
                        c.condWait(cond, lock);
                    consumed += c.load(pc_ld, queue);
                    c.store(pc_st, queue, 0);
                    c.mutexUnlock(lock);
                }
            });
        ThreadId producer =
            api.spawn("producer", [&](ThreadApi &p) {
                for (int i = 1; i <= 50; ++i) {
                    p.mutexLock(lock);
                    p.store(pc_st, queue, static_cast<std::uint64_t>(i));
                    p.condSignal(cond);
                    p.mutexUnlock(lock);
                    p.compute(500);
                }
            });
        api.join(producer);
        api.join(consumer);
        EXPECT_EQ(consumed, 50u * 51 / 2);
    });
    EXPECT_EQ(machine.sched().run(20'000'000'000ULL),
              RunOutcome::Completed);
}

TEST_F(EdgeFixture, BarrierPhasesStayAligned)
{
    Addr pc_st = defineStore(8);
    Addr pc_ld = defineLoad(8);
    machine.spawnThread("main", [&](ThreadApi &api) {
        constexpr int threads = 4, rounds = 20;
        Addr bar = api.malloc(lineBytes);
        api.barrierInit(bar, threads);
        // One slot per thread; in each round every thread checks the
        // others' slots hold the *same round number* before writing
        // the next -- any barrier misalignment breaks it.
        Addr slots = api.memalign(lineBytes, lineBytes * threads);
        api.fill(slots, 0, lineBytes * threads);
        bool ok = true;

        std::vector<ThreadId> ws;
        for (int t = 0; t < threads; ++t) {
            ws.push_back(api.spawn("w", [&, t](ThreadApi &w) {
                for (int r = 1; r <= rounds; ++r) {
                    w.store(pc_st, slots + t * lineBytes,
                            static_cast<std::uint64_t>(r));
                    w.barrierWait(bar);
                    for (int o = 0; o < threads; ++o) {
                        if (w.load(pc_ld, slots + o * lineBytes) !=
                            static_cast<std::uint64_t>(r)) {
                            ok = false;
                        }
                    }
                    w.barrierWait(bar);
                }
            }));
        }
        for (ThreadId t : ws)
            api.join(t);
        EXPECT_TRUE(ok);
    });
    EXPECT_EQ(machine.sched().run(20'000'000'000ULL),
              RunOutcome::Completed);
}

TEST_F(EdgeFixture, SbrkGrowsHeapContiguously)
{
    Addr first = machine.sbrk(100);
    Addr second = machine.sbrk(smallPageBytes * 3);
    EXPECT_EQ(first, Machine::heapBase);
    EXPECT_EQ(second, first + smallPageBytes); // 100 B rounded up
    EXPECT_EQ(machine.heapRegion().pages(), 4u);
}

TEST_F(EdgeFixture, BulkFillThenReadBack)
{
    runAs([&](ThreadApi &api) {
        Addr a = api.malloc(3 * smallPageBytes);
        api.fill(a, 0x5a, 3 * smallPageBytes);
        std::vector<std::uint8_t> buf(3 * smallPageBytes);
        api.readBuf(a, buf.data(), buf.size());
        for (std::uint8_t b : buf)
            ASSERT_EQ(b, 0x5a);
    });
}

TEST_F(EdgeFixture, TryLockPathsExerciseTraffic)
{
    machine.spawnThread("main", [&](ThreadApi &api) {
        Addr lock = api.memalign(lineBytes, lineBytes);
        api.mutexInit(lock);
        EXPECT_TRUE(api.mutexTryLock(lock));
        ThreadId w = api.spawn("prober", [&](ThreadApi &p) {
            EXPECT_FALSE(p.mutexTryLock(lock));
        });
        api.join(w);
        api.mutexUnlock(lock);
        EXPECT_TRUE(api.mutexTryLock(lock));
        api.mutexUnlock(lock);
    });
    EXPECT_EQ(machine.sched().run(5'000'000'000ULL),
              RunOutcome::Completed);
}

TEST_F(EdgeFixture, AtomicWidthsFromPc)
{
    runAs([&](ThreadApi &api) {
        Addr a = api.memalign(lineBytes, 8);
        Addr pc4 = defineStore(4);
        api.fill(a, 0, 8);
        api.fetchAdd(pc4, a, 0xFFFFFFFFULL, MemOrder::SeqCst);
        // 4-byte RMW: the high half of the word stays untouched.
        Addr pc_ld8 = defineLoad(8);
        EXPECT_EQ(api.load(pc_ld8, a), 0x00000000FFFFFFFFULL);
    });
}

TEST_F(EdgeFixture, ComputeOnlyThreadsFinishInOrder)
{
    // Threads with different compute loads finish at their own
    // simulated times; the makespan equals the longest.
    machine.spawnThread("main", [&](ThreadApi &api) {
        ThreadId slow = api.spawn(
            "slow", [](ThreadApi &t) { t.compute(1'000'000); });
        ThreadId fast = api.spawn(
            "fast", [](ThreadApi &t) { t.compute(10'000); });
        api.join(slow);
        api.join(fast);
    });
    EXPECT_EQ(machine.sched().run(20'000'000'000ULL),
              RunOutcome::Completed);
    EXPECT_GE(machine.elapsed(), 1'000'000u);
    EXPECT_LT(machine.elapsed(), 1'200'000u);
}

} // namespace tmi
