/**
 * @file
 * Unit tests for the Tmi runtime: detection -> conversion ->
 * targeted protection -> commits, plus CCC wiring.
 */

#include <gtest/gtest.h>

#include "runtime/tmi_runtime.hh"

namespace tmi
{

namespace
{

/** A machine + runtime where two threads false-share one line. */
struct TmiFixture : public ::testing::Test
{
    TmiFixture()
    {
        MachineConfig mc;
        mc.shmBackedHeap = true;
        mc.tmiModifiedAllocator = true;
        machine = std::make_unique<Machine>(mc);
        pc_load = machine->instructions().define("t.load",
                                                 MemKind::Load, 8);
        pc_store = machine->instructions().define("t.store",
                                                  MemKind::Store, 8);
        pc_atomic = machine->instructions().define("t.atomic",
                                                   MemKind::Store, 8);
    }

    TmiRuntime &
    makeRuntime(TmiConfig cfg = {})
    {
        cfg.analysisInterval = 200'000; // fast cadence for tests
        cfg.detector.repairThreshold = 1000.0;
        runtime = std::make_unique<TmiRuntime>(*machine, cfg);
        runtime->attach();
        return *runtime;
    }

    /** Two workers hammer adjacent slots of one line. */
    void
    runFalseSharing(std::uint64_t iters,
                    std::function<void(ThreadApi &, int)> extra = {})
    {
        machine->spawnThread("main", [&, iters](ThreadApi &api) {
            shared_arr = api.memalign(lineBytes, 16);
            api.fill(shared_arr, 0, 16);
            std::vector<ThreadId> ws;
            for (int t = 0; t < 2; ++t) {
                Addr slot = shared_arr + t * 8;
                ws.push_back(api.spawn(
                    "w" + std::to_string(t),
                    [&, slot, t, iters](ThreadApi &w) {
                        for (std::uint64_t i = 0; i < iters; ++i) {
                            std::uint64_t v = w.load(pc_load, slot);
                            w.store(pc_store, slot, v + 1);
                            if (extra)
                                extra(w, t);
                        }
                    }));
            }
            for (ThreadId t : ws)
                api.join(t);
        });
        ASSERT_EQ(machine->sched().run(50'000'000'000ULL),
                  RunOutcome::Completed);
    }

    std::unique_ptr<Machine> machine;
    std::unique_ptr<TmiRuntime> runtime;
    Addr shared_arr = 0;
    Addr pc_load = 0, pc_store = 0, pc_atomic = 0;
};

} // namespace

TEST_F(TmiFixture, DetectsAndRepairsFalseSharing)
{
    TmiRuntime &tmi = makeRuntime();
    runFalseSharing(60000);
    EXPECT_TRUE(tmi.repairActive());
    EXPECT_GE(tmi.protectedPageCount(), 1u);
    EXPECT_GT(tmi.totalCommits(), 0u);
    EXPECT_GT(tmi.t2pCycles(), 0u);
    EXPECT_GT(tmi.repairStartCycles(), 0u);
    // Both threads' increments survive (commit correctness).
    std::uint64_t total = machine->peekShared(shared_arr, 8) +
                          machine->peekShared(shared_arr + 8, 8);
    EXPECT_EQ(total, 120000u);
}

TEST_F(TmiFixture, RepairReducesHitmRate)
{
    std::uint64_t baseline_hitm = 0;
    // Unrepaired run.
    {
        MachineConfig mc;
        Machine plain(mc);
        Addr pl = plain.instructions().define("l", MemKind::Load, 8);
        Addr ps = plain.instructions().define("s", MemKind::Store, 8);
        plain.spawnThread("main", [&](ThreadApi &api) {
            Addr arr = api.memalign(lineBytes, 16);
            api.fill(arr, 0, 16);
            std::vector<ThreadId> ws;
            for (int t = 0; t < 2; ++t) {
                Addr slot = arr + t * 8;
                ws.push_back(api.spawn(
                    "w", [&, slot](ThreadApi &w) {
                        for (int i = 0; i < 60000; ++i) {
                            std::uint64_t v = w.load(pl, slot);
                            w.store(ps, slot, v + 1);
                        }
                    }));
            }
            for (ThreadId t : ws)
                api.join(t);
        });
        plain.sched().run(50'000'000'000ULL);
        baseline_hitm = plain.cache().hitmEvents();
    }

    makeRuntime();
    runFalseSharing(60000);
    // Same access count, far less coherence traffic once repaired.
    EXPECT_LT(machine->cache().hitmEvents(), baseline_hitm / 2);
}

TEST_F(TmiFixture, DetectOnlyModeNeverConverts)
{
    TmiConfig cfg;
    cfg.mode = TmiMode::DetectOnly;
    TmiRuntime &tmi = makeRuntime(cfg);
    runFalseSharing(30000);
    EXPECT_FALSE(tmi.repairActive());
    EXPECT_EQ(tmi.protectedPageCount(), 0u);
    EXPECT_GT(tmi.detector().fsEventsEstimated(), 0.0);
}

TEST_F(TmiFixture, AllocOnlyModeHasNoDetector)
{
    TmiConfig cfg;
    cfg.mode = TmiMode::AllocOnly;
    TmiRuntime &tmi = makeRuntime(cfg);
    runFalseSharing(5000);
    EXPECT_FALSE(tmi.repairActive());
    EXPECT_EQ(tmi.detector().recordsClassified(), 0u);
}

TEST_F(TmiFixture, SyncObjectsRedirectedToInternalRegion)
{
    makeRuntime();
    Addr lock_va = 0;
    machine->spawnThread("main", [&](ThreadApi &api) {
        lock_va = api.malloc(64);
        api.mutexInit(lock_va);
        api.mutexLock(lock_va);
        api.mutexUnlock(lock_va);
    });
    ASSERT_EQ(machine->sched().run(1'000'000'000ULL),
              RunOutcome::Completed);
    // The lock body lives in the internal region now; the heap word
    // holds the (truncated, simulated) redirection marker.
    std::uint64_t marker = machine->peekShared(lock_va, 4);
    EXPECT_NE(marker, 0u);
    EXPECT_GT(machine->internalBytes(), 0u);
}

TEST_F(TmiFixture, SeqCstAtomicsFlushPtsb)
{
    TmiRuntime &tmi = makeRuntime();
    Addr actr = 0;
    machine->spawnThread("pre", [&](ThreadApi &api) {
        actr = api.memalign(lineBytes, 8);
        api.fill(actr, 0, 8);
    });
    ASSERT_EQ(machine->sched().run(1'000'000'000ULL),
              RunOutcome::Completed);

    runFalseSharing(60000, [&](ThreadApi &w, int) {
        w.fetchAdd(pc_atomic, actr, 1, MemOrder::SeqCst);
    });
    ASSERT_TRUE(tmi.repairActive());
    // Atomic total is exact: atomics bypass the PTSB.
    EXPECT_EQ(machine->peekShared(actr, 8), 120000u);
    // Flush-commits vastly outnumber sync commits here.
    EXPECT_GT(tmi.totalCommits(), 1000u);
}

TEST_F(TmiFixture, RelaxedAtomicsDoNotFlush)
{
    TmiRuntime &tmi = makeRuntime();
    Addr actr = 0;
    machine->spawnThread("pre", [&](ThreadApi &api) {
        actr = api.memalign(lineBytes, 8);
        api.fill(actr, 0, 8);
    });
    ASSERT_EQ(machine->sched().run(1'000'000'000ULL),
              RunOutcome::Completed);

    runFalseSharing(60000, [&](ThreadApi &w, int) {
        w.fetchAdd(pc_atomic, actr, 1, MemOrder::Relaxed);
    });
    ASSERT_TRUE(tmi.repairActive());
    // Atomicity still preserved (relaxed atomics run on shared
    // pages)...
    EXPECT_EQ(machine->peekShared(actr, 8), 120000u);
    // ...but they did not force commits: only thread exits and the
    // occasional sync commit happened.
    EXPECT_LT(tmi.totalCommits(), 100u);
}

TEST_F(TmiFixture, PtsbEverywhereProtectsWholeHeap)
{
    TmiConfig cfg;
    cfg.ptsbEverywhere = true;
    TmiRuntime &tmi = makeRuntime(cfg);
    runFalseSharing(60000);
    ASSERT_TRUE(tmi.repairActive());
    EXPECT_GE(tmi.protectedPageCount(),
              machine->heapRegion().pages());
}

TEST_F(TmiFixture, OverheadBytesAccounted)
{
    TmiRuntime &tmi = makeRuntime();
    runFalseSharing(60000);
    // Rings + detector metadata + internal region are all nonzero.
    EXPECT_GT(tmi.overheadBytes(), 1u << 20);
}

TEST_F(TmiFixture, LateThreadsBornConverted)
{
    TmiRuntime &tmi = makeRuntime();
    machine->spawnThread("main", [&](ThreadApi &api) {
        Addr arr = api.memalign(lineBytes, 16);
        api.fill(arr, 0, 16);
        std::vector<ThreadId> ws;
        for (int t = 0; t < 2; ++t) {
            Addr slot = arr + t * 8;
            ws.push_back(api.spawn("w", [&, slot](ThreadApi &w) {
                for (int i = 0; i < 60000; ++i) {
                    std::uint64_t v = w.load(pc_load, slot);
                    w.store(pc_store, slot, v + 1);
                }
            }));
        }
        for (ThreadId t : ws)
            api.join(t);
        // Repair engaged during the workers' run; a late thread
        // must start life as a process with pages protected.
        ThreadId late = api.spawn("late", [&](ThreadApi &w) {
            std::uint64_t v = w.load(pc_load, arr);
            w.store(pc_store, arr, v + 1);
        });
        api.join(late);
    });
    ASSERT_EQ(machine->sched().run(50'000'000'000ULL),
              RunOutcome::Completed);
    ASSERT_TRUE(tmi.repairActive());
    double conv = 0;
    stats::StatGroup g("tmi");
    tmi.regStats(g);
    EXPECT_TRUE(g.lookupScalar("t2pConversions", conv));
    EXPECT_GE(conv, 4.0); // main + 2 workers + late thread
}

} // namespace tmi
