/**
 * @file
 * Unit tests for the Machine facade: data integrity, atomics, sync
 * traffic, threads, bulk operations.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"

namespace tmi
{

namespace
{

struct MachineFixture : public ::testing::Test
{
    MachineFixture() : machine(MachineConfig{})
    {
        pc_load = machine.instructions().define("t.load",
                                                MemKind::Load, 8);
        pc_store = machine.instructions().define("t.store",
                                                 MemKind::Store, 8);
        pc_load4 = machine.instructions().define("t.load4",
                                                 MemKind::Load, 4);
        pc_store4 = machine.instructions().define("t.store4",
                                                  MemKind::Store, 4);
    }

    /** Run @p fn as a single app thread to completion. */
    RunOutcome
    runAs(std::function<void(ThreadApi &)> fn)
    {
        machine.spawnThread("test", std::move(fn));
        return machine.sched().run(10'000'000'000ULL);
    }

    Machine machine;
    Addr pc_load = 0, pc_store = 0, pc_load4 = 0, pc_store4 = 0;
};

} // namespace

TEST_F(MachineFixture, StoreLoadRoundTrip)
{
    runAs([&](ThreadApi &api) {
        Addr a = api.malloc(64);
        api.store(pc_store, a, 0x1122334455667788ULL);
        EXPECT_EQ(api.load(pc_load, a), 0x1122334455667788ULL);
        api.store(pc_store4, a + 8, 0xabcd);
        EXPECT_EQ(api.load(pc_load4, a + 8), 0xabcdu);
    });
}

TEST_F(MachineFixture, NarrowLoadSeesPartOfWideStore)
{
    runAs([&](ThreadApi &api) {
        Addr a = api.malloc(64);
        api.store(pc_store, a, 0x1122334455667788ULL);
        // Little-endian: low 4 bytes.
        EXPECT_EQ(api.load(pc_load4, a), 0x55667788u);
    });
}

TEST_F(MachineFixture, AccessesAdvanceSimTime)
{
    runAs([&](ThreadApi &api) {
        Addr a = api.malloc(64);
        Cycles before = api.machine().sched().now();
        api.store(pc_store, a, 1);
        EXPECT_GT(api.machine().sched().now(), before);
    });
}

TEST_F(MachineFixture, AtomicFetchAddAccumulates)
{
    runAs([&](ThreadApi &api) {
        Addr a = api.malloc(64);
        EXPECT_EQ(api.fetchAdd(pc_store, a, 5), 0u);
        EXPECT_EQ(api.fetchAdd(pc_store, a, 3), 5u);
        EXPECT_EQ(api.atomicLoad(pc_load, a), 8u);
    });
}

TEST_F(MachineFixture, CasSucceedsAndFails)
{
    runAs([&](ThreadApi &api) {
        Addr a = api.malloc(64);
        api.atomicStore(pc_store, a, 10);
        EXPECT_TRUE(api.cas(pc_store, a, 10, 20));
        EXPECT_FALSE(api.cas(pc_store, a, 10, 30));
        EXPECT_EQ(api.atomicLoad(pc_load, a), 20u);
    });
}

TEST_F(MachineFixture, MultiThreadCounterWithMutex)
{
    Addr counter = 0;
    Addr lock = 0;
    machine.spawnThread("main", [&](ThreadApi &api) {
        counter = api.memalign(lineBytes, 8);
        api.fill(counter, 0, 8);
        lock = api.memalign(lineBytes, lineBytes);
        api.mutexInit(lock);
        std::vector<ThreadId> workers;
        for (int t = 0; t < 4; ++t) {
            workers.push_back(
                api.spawn("w" + std::to_string(t), [&](ThreadApi &w) {
                    for (int i = 0; i < 200; ++i) {
                        w.mutexLock(lock);
                        std::uint64_t v = w.load(pc_load, counter);
                        w.store(pc_store, counter, v + 1);
                        w.mutexUnlock(lock);
                    }
                }));
        }
        for (ThreadId t : workers)
            api.join(t);
        EXPECT_EQ(api.load(pc_load, counter), 800u);
    });
    EXPECT_EQ(machine.sched().run(10'000'000'000ULL),
              RunOutcome::Completed);
}

TEST_F(MachineFixture, RacyIncrementWithoutLockLosesUpdates)
{
    // Sanity check that contention is real in the simulation: two
    // threads doing read-modify-write without a lock interleave and
    // lose updates (with a quantum small enough to interleave).
    Addr counter = 0;
    machine.spawnThread("main", [&](ThreadApi &api) {
        counter = api.memalign(lineBytes, 8);
        api.fill(counter, 0, 8);
        std::vector<ThreadId> workers;
        for (int t = 0; t < 4; ++t) {
            workers.push_back(
                api.spawn("w" + std::to_string(t), [&](ThreadApi &w) {
                    for (int i = 0; i < 500; ++i) {
                        std::uint64_t v = w.load(pc_load, counter);
                        w.compute(100); // widen the race window
                        w.store(pc_store, counter, v + 1);
                    }
                }));
        }
        for (ThreadId t : workers)
            api.join(t);
        EXPECT_LT(api.load(pc_load, counter), 2000u);
    });
    EXPECT_EQ(machine.sched().run(10'000'000'000ULL),
              RunOutcome::Completed);
}

TEST_F(MachineFixture, FalseSharingGeneratesHitm)
{
    machine.spawnThread("main", [&](ThreadApi &api) {
        Addr arr = api.memalign(lineBytes, 16); // two slots, one line
        api.fill(arr, 0, 16);
        std::vector<ThreadId> workers;
        for (int t = 0; t < 2; ++t) {
            Addr slot = arr + t * 8;
            workers.push_back(
                api.spawn("w" + std::to_string(t),
                          [&, slot](ThreadApi &w) {
                              for (int i = 0; i < 2000; ++i)
                                  w.store(pc_store, slot, i);
                          }));
        }
        for (ThreadId t : workers)
            api.join(t);
    });
    machine.sched().run(10'000'000'000ULL);
    EXPECT_GT(machine.cache().hitmEvents(), 100u);
}

TEST_F(MachineFixture, PaddedSlotsGenerateNoHitm)
{
    machine.spawnThread("main", [&](ThreadApi &api) {
        Addr arr = api.memalign(lineBytes, 2 * lineBytes);
        api.fill(arr, 0, 2 * lineBytes);
        std::vector<ThreadId> workers;
        for (int t = 0; t < 2; ++t) {
            Addr slot = arr + t * lineBytes;
            workers.push_back(
                api.spawn("w" + std::to_string(t),
                          [&, slot](ThreadApi &w) {
                              for (int i = 0; i < 2000; ++i)
                                  w.store(pc_store, slot, i);
                          }));
        }
        for (ThreadId t : workers)
            api.join(t);
    });
    machine.sched().run(10'000'000'000ULL);
    EXPECT_EQ(machine.cache().hitmEvents(), 0u);
}

TEST_F(MachineFixture, BulkWriteReadRoundTrip)
{
    runAs([&](ThreadApi &api) {
        Addr a = api.malloc(10000);
        std::vector<std::uint8_t> data(10000);
        for (std::size_t i = 0; i < data.size(); ++i)
            data[i] = static_cast<std::uint8_t>(i * 7);
        api.writeBuf(a, data.data(), data.size());
        std::vector<std::uint8_t> out(10000);
        api.readBuf(a, out.data(), out.size());
        EXPECT_EQ(out, data);
    });
}

TEST_F(MachineFixture, JoinWaitsForTarget)
{
    machine.spawnThread("main", [&](ThreadApi &api) {
        Addr flag = api.malloc(8);
        api.fill(flag, 0, 8);
        ThreadId w = api.spawn("worker", [&](ThreadApi &wapi) {
            wapi.compute(100000);
            wapi.store(pc_store, flag, 1);
        });
        api.join(w);
        EXPECT_EQ(api.load(pc_load, flag), 1u);
        EXPECT_GE(api.machine().sched().now(), 100000u);
    });
    EXPECT_EQ(machine.sched().run(10'000'000'000ULL),
              RunOutcome::Completed);
}

TEST_F(MachineFixture, JoinOfFinishedThreadReturnsImmediately)
{
    machine.spawnThread("main", [&](ThreadApi &api) {
        ThreadId w = api.spawn("worker", [](ThreadApi &) {});
        api.compute(1'000'000); // let the worker finish
        api.join(w);
        api.join(w); // idempotent
    });
    EXPECT_EQ(machine.sched().run(10'000'000'000ULL),
              RunOutcome::Completed);
}

TEST_F(MachineFixture, InternalAllocIsLineAlignedAndFiltered)
{
    Addr a = machine.internalAlloc(10);
    Addr b = machine.internalAlloc(10);
    EXPECT_EQ(a % lineBytes, 0u);
    EXPECT_GE(b, a + lineBytes);
    EXPECT_FALSE(machine.addressMap().eligible(a));
    EXPECT_EQ(machine.internalBytes(), 2 * lineBytes);
}

TEST_F(MachineFixture, HeapIsEligibleForDetection)
{
    runAs([&](ThreadApi &api) {
        Addr a = api.malloc(64);
        EXPECT_TRUE(api.machine().addressMap().eligible(a));
    });
}

TEST_F(MachineFixture, SoftFaultsChargedOnFirstTouch)
{
    runAs([&](ThreadApi &api) {
        Addr a = api.malloc(smallPageBytes * 4);
        Cycles t0 = api.machine().sched().now();
        api.store(pc_store, a, 1); // first touch: fault
        Cycles faulted = api.machine().sched().now() - t0;
        t0 = api.machine().sched().now();
        api.store(pc_store, a + 8, 2); // same page: no fault
        Cycles warm = api.machine().sched().now() - t0;
        EXPECT_GT(faulted, warm);
    });
}

TEST_F(MachineFixture, PeekMatchesStoredData)
{
    Addr a = 0;
    runAs([&](ThreadApi &api) {
        a = api.malloc(64);
        api.store(pc_store, a, 424242);
    });
    EXPECT_EQ(machine.peek(a, 8), 424242u);
    EXPECT_EQ(machine.peekShared(a, 8), 424242u);
}

} // namespace tmi
