/**
 * @file
 * Self-healing tests for the Tmi runtime: transactional T2P with
 * rollback/retry, the degradation ladder, COW fallback on twin
 * allocation failure, the effectiveness monitor's un-repair path,
 * and the PTSB livelock watchdog.
 */

#include <gtest/gtest.h>

#include "runtime/tmi_runtime.hh"

namespace tmi
{

namespace
{

/** Same shape as the TmiFixture in tmi_runtime_test.cc. */
struct RobustFixture : public ::testing::Test
{
    RobustFixture() { makeMachine(false); }

    void
    makeMachine(bool trace)
    {
        MachineConfig mc;
        mc.shmBackedHeap = true;
        mc.tmiModifiedAllocator = true;
        mc.trace.enabled = trace;
        machine = std::make_unique<Machine>(mc);
        pc_load = machine->instructions().define("t.load",
                                                 MemKind::Load, 8);
        pc_store = machine->instructions().define("t.store",
                                                  MemKind::Store, 8);
        pc_atomic = machine->instructions().define("t.atomic",
                                                   MemKind::Store, 8);
    }

    TmiRuntime &
    makeRuntime(TmiConfig cfg = {})
    {
        cfg.analysisInterval = 200'000; // fast cadence for tests
        cfg.detector.repairThreshold = 1000.0;
        runtime = std::make_unique<TmiRuntime>(*machine, cfg);
        runtime->attach();
        return *runtime;
    }

    void
    runFalseSharing(std::uint64_t iters,
                    std::function<void(ThreadApi &, int)> extra = {})
    {
        machine->spawnThread("main", [&, iters](ThreadApi &api) {
            shared_arr = api.memalign(lineBytes, 16);
            api.fill(shared_arr, 0, 16);
            std::vector<ThreadId> ws;
            for (int t = 0; t < 2; ++t) {
                Addr slot = shared_arr + t * 8;
                ws.push_back(api.spawn(
                    "w" + std::to_string(t),
                    [&, slot, t, iters](ThreadApi &w) {
                        for (std::uint64_t i = 0; i < iters; ++i) {
                            std::uint64_t v = w.load(pc_load, slot);
                            w.store(pc_store, slot, v + 1);
                            if (extra)
                                extra(w, t);
                        }
                    }));
            }
            for (ThreadId t : ws)
                api.join(t);
        });
        ASSERT_EQ(machine->sched().run(50'000'000'000ULL),
                  RunOutcome::Completed);
    }

    std::uint64_t
    fsTotal() const
    {
        return machine->peekShared(shared_arr, 8) +
               machine->peekShared(shared_arr + 8, 8);
    }

    std::unique_ptr<Machine> machine;
    std::unique_ptr<TmiRuntime> runtime;
    Addr shared_arr = 0;
    Addr pc_load = 0, pc_store = 0, pc_atomic = 0;
};

} // namespace

TEST_F(RobustFixture, T2pAbortRollsBackThenRetrySucceeds)
{
    TmiRuntime &tmi = makeRuntime();
    // First conversion attempt hits a thread that refuses to stop;
    // the transaction aborts, rolls back, and the retry succeeds.
    machine->faults().arm(faultpoint::schedStopTimeout,
                          FaultSpec::once(1));
    runFalseSharing(60000);
    EXPECT_EQ(tmi.t2pAborts(), 1u);
    EXPECT_TRUE(tmi.repairActive());
    EXPECT_EQ(tmi.rung(), TmiMode::DetectAndRepair);
    // The abort left the address space intact: no update lost.
    EXPECT_EQ(fsTotal(), 120000u);
}

TEST_F(RobustFixture, CloneFailureExhaustsRetriesAndDegrades)
{
    TmiRuntime &tmi = makeRuntime();
    machine->faults().arm(faultpoint::memCloneFail,
                          FaultSpec::always());
    runFalseSharing(60000);
    // All t2pMaxAttempts (default 4) failed; runtime dropped a rung.
    EXPECT_EQ(tmi.t2pAborts(), 4u);
    EXPECT_EQ(machine->faults().fires(faultpoint::memCloneFail), 4u);
    EXPECT_EQ(tmi.rung(), TmiMode::DetectOnly);
    EXPECT_FALSE(tmi.repairActive());
    EXPECT_GE(tmi.ladderDrops(), 1u);
    // Rollback identity: every thread still lives in process 0.
    for (ThreadId tid = 0; tid < 3; ++tid)
        EXPECT_EQ(machine->processOf(tid), 0u);
    EXPECT_EQ(fsTotal(), 120000u);
}

TEST_F(RobustFixture, TwinAllocFailureFallsBackToSharing)
{
    TmiRuntime &tmi = makeRuntime();
    machine->faults().arm(faultpoint::ptsbTwinAllocFail,
                          FaultSpec::always());
    runFalseSharing(60000);
    // Every COW attempt failed to twin; the pages reverted to shared
    // mappings (unrepaired but memory-safe) and the run stayed
    // correct.
    EXPECT_GT(tmi.cowFallbacks(), 0u);
    EXPECT_EQ(fsTotal(), 120000u);
}

TEST_F(RobustFixture, FrameExhaustionAbandonsCowSafely)
{
    TmiRuntime &tmi = makeRuntime();
    machine->faults().arm(faultpoint::memFrameExhausted,
                          FaultSpec::always());
    runFalseSharing(60000);
    EXPECT_GT(tmi.cowFallbacks(), 0u);
    EXPECT_EQ(fsTotal(), 120000u);
}

TEST_F(RobustFixture, MonitorUnrepairsWhenRepairRegresses)
{
    TmiConfig cfg;
    // Make the monitor hair-triggered: no warmup slack, one bad
    // window suffices, and the benefit estimate is negligible.
    cfg.robust.monitorWarmupWindows = 1;
    cfg.robust.regressWindows = 1;
    cfg.robust.hitmCostEstimate = 1;
    TmiRuntime &tmi = makeRuntime(cfg);
    // Every commit is inflated 64x, so repair costs far more than it
    // saves once SeqCst atomics force a commit per iteration.
    machine->faults().arm(faultpoint::ptsbOversizeCommit,
                          FaultSpec::always());

    Addr actr = 0;
    machine->spawnThread("pre", [&](ThreadApi &api) {
        actr = api.memalign(lineBytes, 8);
        api.fill(actr, 0, 8);
    });
    ASSERT_EQ(machine->sched().run(1'000'000'000ULL),
              RunOutcome::Completed);

    runFalseSharing(60000, [&](ThreadApi &w, int) {
        w.fetchAdd(pc_atomic, actr, 1, MemOrder::SeqCst);
    });
    EXPECT_GE(tmi.unrepairs(), 1u);
    // Un-repair preserved both the racy-line counts and atomicity.
    EXPECT_EQ(fsTotal(), 120000u);
    EXPECT_EQ(machine->peekShared(actr, 8), 120000u);
}

TEST_F(RobustFixture, WatchdogBreaksPtsbLivelock)
{
    TmiConfig cfg;
    cfg.ptsbEverywhere = true; // flag pages are protected too
    cfg.robust.watchdogTimeout = 2'000'000;
    cfg.robust.watchdogMaxFlushes = 1000; // keep flushing, never
                                          // un-repair
    cfg.robust.monitorEnabled = false;
    TmiRuntime &tmi = makeRuntime(cfg);

    // After a false-sharing phase engages repair, w0 publishes flagA
    // (buffered in its PTSB -- invisible) and spins on flagB; w1
    // spins on flagA before publishing flagB. Neither thread ever
    // reaches a sync commit point: without the watchdog this
    // livelocks (the cholesky failure mode). Each flag sits on a
    // page its reader never writes, so a forced commit makes the
    // store visible through the shared frame.
    Addr flag_a = 0, flag_b = 0;
    machine->spawnThread("main", [&](ThreadApi &api) {
        shared_arr = api.memalign(lineBytes, 16);
        api.fill(shared_arr, 0, 16);
        flag_a = api.memalign(smallPageBytes, 8);
        api.fill(flag_a, 0, 8);
        flag_b = api.memalign(smallPageBytes, 8);
        api.fill(flag_b, 0, 8);
        ThreadId t0 = api.spawn("w0", [&](ThreadApi &w) {
            for (int i = 0; i < 60000; ++i) {
                std::uint64_t v = w.load(pc_load, shared_arr);
                w.store(pc_store, shared_arr, v + 1);
            }
            w.store(pc_store, flag_a, 1);
            while (w.load(pc_load, flag_b) == 0) {
            }
        });
        ThreadId t1 = api.spawn("w1", [&](ThreadApi &w) {
            for (int i = 0; i < 60000; ++i) {
                std::uint64_t v = w.load(pc_load, shared_arr + 8);
                w.store(pc_store, shared_arr + 8, v + 1);
            }
            while (w.load(pc_load, flag_a) == 0) {
            }
            w.store(pc_store, flag_b, 1);
        });
        api.join(t0);
        api.join(t1);
    });
    ASSERT_EQ(machine->sched().run(2'000'000'000ULL),
              RunOutcome::Completed);
    ASSERT_TRUE(runtime->repairActive());
    EXPECT_GE(tmi.watchdogFires(), 1u);
    EXPECT_EQ(fsTotal(), 120000u);
    EXPECT_EQ(machine->peekShared(flag_a, 8), 1u);
    EXPECT_EQ(machine->peekShared(flag_b, 8), 1u);
}

TEST_F(RobustFixture, RecoverUpReArmsRepairAfterCleanWindows)
{
    makeMachine(true); // trace on: the recovery event is asserted
    TmiConfig cfg;
    cfg.robust.recoverUpWindows = 2;
    TmiRuntime &tmi = makeRuntime(cfg);
    // The clone fails exactly as often as one engage's retry budget:
    // the first engage exhausts its attempts and drops the ladder,
    // then the fault is spent and the machine is healthy again.
    FaultSpec clone_fail;
    clone_fail.probability = 1.0;
    clone_fail.maxFires = 4;
    machine->faults().arm(faultpoint::memCloneFail, clone_fail);
    runFalseSharing(200000);
    EXPECT_EQ(tmi.t2pAborts(), 4u);
    EXPECT_GE(tmi.ladderDrops(), 1u);
    // Two clean windows later the ladder climbed back and the next
    // engage succeeded.
    EXPECT_GE(tmi.ladderRecovers(), 1u);
    EXPECT_EQ(tmi.rung(), TmiMode::DetectAndRepair);
    EXPECT_TRUE(tmi.repairActive());
    // The climb reset the rollback budget.
    EXPECT_EQ(tmi.unrepairs(), 0u);
    std::size_t recover_events = 0;
    for (const auto &ev : machine->trace()->drain())
        recover_events += ev.kind == obs::EventKind::LadderRecover;
    EXPECT_EQ(recover_events, tmi.ladderRecovers());
    EXPECT_EQ(fsTotal(), 400000u);
}

TEST_F(RobustFixture, RecoverUpDisabledKeepsDropPermanent)
{
    TmiRuntime &tmi = makeRuntime(); // recoverUpWindows = 0
    FaultSpec clone_fail;
    clone_fail.probability = 1.0;
    clone_fail.maxFires = 4;
    machine->faults().arm(faultpoint::memCloneFail, clone_fail);
    runFalseSharing(200000);
    // The faults were spent long before the run ended, but with
    // recovery disabled the drop is permanent.
    EXPECT_EQ(machine->faults().fires(faultpoint::memCloneFail), 4u);
    EXPECT_EQ(tmi.rung(), TmiMode::DetectOnly);
    EXPECT_FALSE(tmi.repairActive());
    EXPECT_EQ(tmi.ladderRecovers(), 0u);
    EXPECT_EQ(fsTotal(), 400000u);
}

TEST_F(RobustFixture, FaultFreeRunIsUnperturbed)
{
    // The injector is wired but never armed: behavior must be
    // byte-identical to a build without the framework.
    TmiRuntime &tmi = makeRuntime();
    EXPECT_FALSE(machine->faults().enabled());
    runFalseSharing(60000);
    EXPECT_TRUE(tmi.repairActive());
    EXPECT_EQ(tmi.t2pAborts(), 0u);
    EXPECT_EQ(tmi.unrepairs(), 0u);
    EXPECT_EQ(tmi.watchdogFires(), 0u);
    EXPECT_EQ(tmi.cowFallbacks(), 0u);
    EXPECT_EQ(tmi.ladderDrops(), 0u);
    EXPECT_EQ(machine->faults().totalFires(), 0u);
    EXPECT_EQ(fsTotal(), 120000u);
}

} // namespace tmi
