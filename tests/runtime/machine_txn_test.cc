/**
 * @file
 * Unit tests for the Machine's bounded-transaction engine: commit
 * permanence, abort rollback (memory and stack), the MESI-derived
 * conflict signals, capacity accounting, and the commit-time safety
 * oracle. The htm-elide backend is built entirely on this surface.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "runtime/invariants.hh"

namespace tmi
{

namespace
{

struct TxnFixture : public ::testing::Test
{
    TxnFixture() : machine(MachineConfig{})
    {
        pc_load = machine.instructions().define("txn.load",
                                                MemKind::Load, 8);
        pc_store = machine.instructions().define("txn.store",
                                                 MemKind::Store, 8);
    }

    RunOutcome
    runAs(std::function<void(ThreadApi &)> fn)
    {
        machine.spawnThread("test", std::move(fn));
        return machine.sched().run(10'000'000'000ULL);
    }

    Machine machine;
    Addr pc_load = 0, pc_store = 0;
};

} // namespace

TEST_F(TxnFixture, CommitMakesSpeculativeStoresPermanent)
{
    runAs([&](ThreadApi &api) {
        Addr a = api.malloc(64);
        api.store(pc_store, a, 7);
        ASSERT_TRUE(api.machine().txnBegin(api.tid(), 8, 8));
        api.store(pc_store, a, 42);
        api.machine().txnCommit(api.tid());
        EXPECT_EQ(api.load(pc_load, a), 42u);
    });
    EXPECT_EQ(machine.txnCommitCount(), 1u);
    EXPECT_EQ(machine.txnAbortCount(), 0u);
}

TEST_F(TxnFixture, SelfAbortRollsBackMemoryAndRewindsTheStack)
{
    runAs([&](ThreadApi &api) {
        Addr a = api.malloc(64);
        api.store(pc_store, a, 7);
        // `tries` is on the fiber stack, so the rollback rewinds it
        // to its begin-time value -- progress across retries must be
        // made on the abort path, the way the htm retry loop bumps
        // its attempt counter only after txnBegin returns false.
        unsigned tries = 0;
        if (api.machine().txnBegin(api.tid(), 8, 8)) {
            ++tries;
            api.store(pc_store, a, 42);
            api.machine().txnAbortSelf(api.tid(),
                                       TxnAbortReason::Spurious);
            FAIL() << "txnAbortSelf must not return";
        }
        EXPECT_EQ(api.machine().txnAbortReason(api.tid()),
                  TxnAbortReason::Spurious);
        EXPECT_EQ(tries, 0u) << "stack locals rewind to begin time";
        EXPECT_EQ(api.load(pc_load, a), 7u)
            << "speculative store must be undone";
    });
    EXPECT_EQ(machine.txnCommitCount(), 0u);
    EXPECT_EQ(machine.txnAbortCount(), 1u);
}

TEST_F(TxnFixture, RemoteStoreAbortsTheSpeculatingReader)
{
    // Requester wins: a plain store into a speculative read set
    // hijacks the speculator back to its begin point.
    Addr a = 0;
    bool aborted = false;
    runAs([&](ThreadApi &api) {
        a = api.malloc(64);
        api.store(pc_store, a, 1);
        ThreadId reader = api.spawn("reader", [&](ThreadApi &rapi) {
            // Warm the line to Shared first: a transactional hit on
            // the writer's still-Modified copy would be a Conflict
            // abort of our own making, not the remote kill under
            // test.
            rapi.load(pc_load, a);
            if (rapi.machine().txnBegin(rapi.tid(), 8, 8)) {
                rapi.load(pc_load, a);
                // Spin inside the txn until the writer's store lands.
                for (int i = 0; i < 1000; ++i)
                    rapi.machine().compute(rapi.tid(), 50);
                rapi.machine().txnCommit(rapi.tid());
                return;
            }
            aborted = true;
            EXPECT_EQ(rapi.machine().txnAbortReason(rapi.tid()),
                      TxnAbortReason::RemoteConflict);
        });
        api.machine().compute(api.tid(), 500);
        api.store(pc_store, a, 2);
        api.join(reader);
    });
    EXPECT_TRUE(aborted);
}

TEST_F(TxnFixture, WriteSetOverflowAbortsWithCapacity)
{
    runAs([&](ThreadApi &api) {
        Addr a = api.malloc(4096);
        api.fill(a, 0, 4096);
        if (api.machine().txnBegin(api.tid(), 8, 2)) {
            api.store(pc_store, a, 1);
            api.store(pc_store, a + 64, 2);
            api.store(pc_store, a + 128, 3); // third line: over cap
            api.machine().txnCommit(api.tid());
            FAIL() << "capacity overflow must abort";
        }
        EXPECT_EQ(api.machine().txnAbortReason(api.tid()),
                  TxnAbortReason::Capacity);
        EXPECT_EQ(api.load(pc_load, a), 0u);
        EXPECT_EQ(api.load(pc_load, a + 64), 0u);
    });
}

TEST_F(TxnFixture, NestedSyncInsideATxnAborts)
{
    runAs([&](ThreadApi &api) {
        Addr lock = api.malloc(64);
        api.mutexInit(lock);
        if (api.machine().txnBegin(api.tid(), 8, 8)) {
            api.mutexLock(lock); // no hooks installed: plain lock
            FAIL() << "nested sync must abort the txn";
        }
        EXPECT_EQ(api.machine().txnAbortReason(api.tid()),
                  TxnAbortReason::Nested);
    });
}

TEST_F(TxnFixture, CommitAfterObservedConflictTripsTheOracle)
{
    // The safety invariant behind the chaos liveness cells: a txn
    // that saw a conflicting remote store must never commit. The
    // machine's own paths always abort first, so drive the probe
    // directly with the contradictory claim.
    InvariantProbe probe(machine);
    probe.afterTxnCommit("test", false);
    EXPECT_EQ(probe.violations(), 0u);
    probe.afterTxnCommit("test", true);
    EXPECT_EQ(probe.violations(), 1u);
}

} // namespace tmi
