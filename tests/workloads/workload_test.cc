/**
 * @file
 * Parameterized correctness sweep: every registered workload must
 * complete and validate under plain pthreads and under the manual
 * fix, at small scale.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "workloads/workload.hh"

namespace tmi
{

namespace
{

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const auto &info : workloadRegistry())
        names.push_back(info.name);
    return names;
}

} // namespace

class WorkloadSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadSweep, ValidUnderPthreads)
{
    ExperimentConfig cfg;
    cfg.workload = GetParam();
    cfg.threads = 4;
    cfg.scale = 1;
    RunResult res = runExperiment(cfg);
    EXPECT_EQ(res.outcome, RunOutcome::Completed);
    EXPECT_TRUE(res.valid) << GetParam();
    EXPECT_GT(res.cycles, 0u);
    EXPECT_GT(res.memOps, 0u);
}

TEST_P(WorkloadSweep, ValidUnderManualFix)
{
    ExperimentConfig cfg;
    cfg.workload = GetParam();
    cfg.treatment = Treatment::Manual;
    cfg.threads = 4;
    cfg.scale = 1;
    RunResult res = runExperiment(cfg);
    EXPECT_TRUE(res.compatible) << GetParam();
}

TEST_P(WorkloadSweep, DeterministicAcrossRuns)
{
    ExperimentConfig cfg;
    cfg.workload = GetParam();
    cfg.threads = 2;
    cfg.scale = 1;
    RunResult a = runExperiment(cfg);
    RunResult b = runExperiment(cfg);
    EXPECT_EQ(a.cycles, b.cycles) << GetParam();
    EXPECT_EQ(a.hitmEvents, b.hitmEvents) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadSweep, ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(WorkloadRegistry, HasThePapersThirtyFiveWorkloadsPlusCholesky)
{
    unsigned overhead_set = 0;
    for (const auto &info : workloadRegistry())
        overhead_set += info.inOverheadSet;
    EXPECT_EQ(overhead_set, 35u);
    // 35 overhead-set entries + cholesky + the two server-family
    // feed handlers (not in the paper's overhead set).
    EXPECT_EQ(workloadRegistry().size(), 38u);
}

TEST(WorkloadRegistry, FamiliesPartitionTheRegistry)
{
    std::vector<std::string> fams = workloadFamilies();
    ASSERT_EQ(fams.size(), 2u);
    EXPECT_EQ(fams[0], "batch");
    EXPECT_EQ(fams[1], "server");
    std::vector<std::string> server = workloadsInFamily("server");
    std::vector<std::string> expected = {"feed-spsc", "feed-spmc"};
    EXPECT_EQ(server, expected);
    EXPECT_EQ(workloadsInFamily("batch").size(),
              workloadRegistry().size() - server.size());
    EXPECT_TRUE(workloadsInFamily("no-such-family").empty());
}

TEST(WorkloadRegistry, FalseSharingSetMatchesFigure9)
{
    std::vector<std::string> expected = {
        "histogram", "histogramfs", "lreg", "stringmatch", "lu-ncb",
        "leveldb", "spinlockpool", "shptr-relaxed", "shptr-lock"};
    std::vector<std::string> got;
    for (const auto &info : workloadRegistry()) {
        if (info.knownFalseSharing)
            got.push_back(info.name);
    }
    EXPECT_EQ(got, expected);
}

TEST(WorkloadRegistry, FindWorkloadReturnsEntry)
{
    EXPECT_EQ(findWorkload("leveldb").name, "leveldb");
    EXPECT_TRUE(findWorkload("canneal").usesAtomicsOrAsm);
    EXPECT_DEATH_IF_SUPPORTED(
        { findWorkload("does-not-exist"); }, "unknown workload");
}

} // namespace tmi
