/**
 * @file
 * Server-family tests: the open-loop traffic generator's purity and
 * monotonicity, and the feed-handler workloads' determinism, latency
 * reporting, knob plumbing, and schedule-independent digest.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/experiment.hh"
#include "workloads/server/traffic.hh"
#include "workloads/workload.hh"

namespace tmi
{

namespace
{

const ArrivalProfile kProfiles[] = {ArrivalProfile::Steady,
                                    ArrivalProfile::Bursty,
                                    ArrivalProfile::Diurnal};

} // namespace

TEST(Traffic, ArrivalsArePureInConfigAndIndex)
{
    TrafficConfig cfg;
    cfg.profile = ArrivalProfile::Bursty;
    cfg.seed = 42;
    // Same (config, index) twice, out of order: identical times --
    // a shard or chaos replay regenerates the exact stream.
    for (std::uint64_t i : {std::uint64_t(500), std::uint64_t(0),
                            std::uint64_t(77)}) {
        EXPECT_EQ(arrivalAt(cfg, i), arrivalAt(cfg, i));
    }
    TrafficConfig again = cfg;
    EXPECT_EQ(arrivalAt(cfg, 123), arrivalAt(again, 123));
}

TEST(Traffic, ArrivalsAreMonotoneForEveryProfileAndGap)
{
    for (ArrivalProfile p : kProfiles) {
        for (Cycles gap : {Cycles(1), Cycles(5), Cycles(600)}) {
            TrafficConfig cfg;
            cfg.profile = p;
            cfg.gap = gap;
            cfg.seed = 9;
            Cycles prev = arrivalAt(cfg, 0);
            for (std::uint64_t i = 1; i < 3000; ++i) {
                Cycles at = arrivalAt(cfg, i);
                ASSERT_GE(at, prev)
                    << arrivalProfileName(p) << " gap=" << gap
                    << " index=" << i;
                prev = at;
            }
        }
    }
}

TEST(Traffic, SeedsProduceDistinctStreams)
{
    TrafficConfig a, b;
    a.seed = 1;
    b.seed = 2;
    unsigned differing = 0;
    for (std::uint64_t i = 0; i < 64; ++i)
        differing += arrivalAt(a, i) != arrivalAt(b, i);
    EXPECT_GT(differing, 0u);
    EXPECT_NE(payloadAt(1, 0), payloadAt(2, 0));
}

TEST(Traffic, PayloadsAreNonzeroAndDeterministic)
{
    for (std::uint64_t i = 0; i < 256; ++i) {
        ASSERT_NE(payloadAt(7, i), 0u);
        ASSERT_EQ(payloadAt(7, i), payloadAt(7, i));
    }
}

TEST(Traffic, ProfileNamesRoundTrip)
{
    for (ArrivalProfile p : kProfiles) {
        ArrivalProfile back = ArrivalProfile::Steady;
        ASSERT_TRUE(parseArrivalProfile(arrivalProfileName(p), back));
        EXPECT_EQ(back, p);
    }
    ArrivalProfile out = ArrivalProfile::Steady;
    EXPECT_FALSE(parseArrivalProfile("square-wave", out));
}

class FeedHandler : public ::testing::TestWithParam<const char *>
{
};

TEST_P(FeedHandler, DeterministicWithLatencyReport)
{
    ExperimentConfig cfg;
    cfg.workload = GetParam();
    cfg.threads = 4;
    cfg.scale = 1;
    RunResult a = runExperiment(cfg);
    RunResult b = runExperiment(cfg);

    EXPECT_EQ(a.outcome, RunOutcome::Completed);
    EXPECT_TRUE(a.valid);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.resultDigest, b.resultDigest);
    EXPECT_NE(a.resultDigest, 0u);

    // Every completed request is a latency sample.
    EXPECT_GT(a.requests, 0u);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_LE(a.sojournP50, a.sojournP99);
    EXPECT_LE(a.sojournP99, a.sojournP999);
    EXPECT_GT(a.sojournP999, 0.0);
}

TEST_P(FeedHandler, DigestIsScheduleIndependent)
{
    // The commutative end-state digest must not move when the PEBS
    // sampling period perturbs the interleaving (the chaos oracle's
    // contract); wall cycles may differ.
    ExperimentConfig cfg;
    cfg.workload = GetParam();
    cfg.threads = 4;
    cfg.scale = 1;
    cfg.perfPeriod = 100;
    RunResult a = runExperiment(cfg);
    cfg.perfPeriod = 997;
    RunResult b = runExperiment(cfg);
    EXPECT_TRUE(a.valid);
    EXPECT_TRUE(b.valid);
    EXPECT_EQ(a.resultDigest, b.resultDigest);
}

TEST_P(FeedHandler, EveryProfileKnobRunsValid)
{
    for (const char *profile : {"steady", "bursty", "diurnal"}) {
        ExperimentConfig cfg;
        cfg.workload = GetParam();
        cfg.threads = 4;
        cfg.scale = 1;
        cfg.params = {{"profile", profile}, {"requests", "32"}};
        RunResult res = runExperiment(cfg);
        EXPECT_TRUE(res.valid) << GetParam() << " " << profile;
        EXPECT_GT(res.requests, 0u) << GetParam() << " " << profile;
    }
}

INSTANTIATE_TEST_SUITE_P(Server, FeedHandler,
                         ::testing::Values("feed-spsc", "feed-spmc"),
                         [](const auto &info) {
                             return std::string(info.param) ==
                                            "feed-spsc"
                                        ? "spsc"
                                        : "spmc";
                         });

TEST(FeedHandlerKnobs, RequestsKnobSetsTheCompletedCount)
{
    // feed-spsc at 4 threads runs 2 lanes, one producer each, so the
    // completed total is 2 * requests * scale.
    ExperimentConfig cfg;
    cfg.workload = "feed-spsc";
    cfg.threads = 4;
    cfg.scale = 1;
    cfg.params = {{"requests", "32"}};
    RunResult small = runExperiment(cfg);
    EXPECT_EQ(small.requests, 64u);

    cfg.params = {{"requests", "48"}};
    RunResult big = runExperiment(cfg);
    EXPECT_EQ(big.requests, 96u);
    EXPECT_NE(small.resultDigest, big.resultDigest);
}

TEST(FeedHandlerKnobs, BadParamsFailValidationNotTheRun)
{
    std::vector<ConfigError> errors = Experiment::builder()
                                          .workload("feed-spsc")
                                          .param("bogus_knob", "7")
                                          .check();
    ASSERT_FALSE(errors.empty());
    bool lists_valid = false;
    for (const ConfigError &e : errors) {
        lists_valid |=
            e.message.find("arrival_gap") != std::string::npos;
    }
    EXPECT_TRUE(lists_valid);

    errors = Experiment::builder()
                 .workload("feed-spsc")
                 .param("profile", "square-wave")
                 .check();
    EXPECT_FALSE(errors.empty());

    // A workload with no schema rejects every key.
    errors = Experiment::builder()
                 .workload("histogramfs")
                 .param("requests", "32")
                 .check();
    EXPECT_FALSE(errors.empty());
}

} // namespace tmi
