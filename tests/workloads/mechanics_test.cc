/**
 * @file
 * Tests for the workloads' bug *mechanisms*: each known-FS program
 * must actually generate false sharing in its documented place, and
 * its manual fix must remove it -- verified by coherence and
 * detector evidence, not just end-to-end speedups.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "workloads/workload.hh"

namespace tmi
{

namespace
{

RunResult
detectRun(const std::string &workload, bool manual_fix,
          std::uint64_t scale = 2)
{
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.treatment =
        manual_fix ? Treatment::Manual : Treatment::TmiDetect;
    cfg.threads = 4;
    cfg.scale = scale;
    cfg.analysisInterval = 500'000;
    return runExperiment(cfg);
}

} // namespace

/** Every known-FS workload must show FS to the detector... */
class FsMechanism : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FsMechanism, BuggyLayoutGeneratesFalseSharingEvidence)
{
    RunResult res = detectRun(GetParam(), false);
    ASSERT_TRUE(res.compatible);
    // Exceptions where the FS never reaches detection under Tmi:
    // spinlockpool (lock redirection removes it at init) and lu-ncb
    // (the modified allocator removes it at allocation).
    if (GetParam() == "spinlockpool" || GetParam() == "lu-ncb") {
        EXPECT_EQ(res.fsEventsEstimated, 0.0) << "should be pre-fixed";
        return;
    }
    EXPECT_GT(res.fsEventsEstimated, 0.0) << GetParam();
}

TEST_P(FsMechanism, ManualFixRemovesTheCoherenceTraffic)
{
    // spinlockpool and lu-ncb are already fixed by the Tmi
    // allocator/redirection in the tmi-detect run, so there is no
    // buggy baseline to compare against here (covered above).
    if (GetParam() == "spinlockpool" || GetParam() == "lu-ncb")
        GTEST_SKIP();
    RunResult buggy = detectRun(GetParam(), false);
    RunResult fixed = detectRun(GetParam(), true);
    ASSERT_TRUE(fixed.compatible);
    if (GetParam() == "leveldb") {
        // leveldb keeps real true sharing (queue, table) even after
        // the injected counters are padded; compare loosely.
        EXPECT_LT(fixed.hitmEvents, buggy.hitmEvents);
        return;
    }
    EXPECT_LT(fixed.hitmEvents, buggy.hitmEvents / 2) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    KnownFs, FsMechanism,
    ::testing::Values("histogram", "histogramfs", "lreg",
                      "stringmatch", "lu-ncb", "leveldb",
                      "spinlockpool", "shptr-relaxed", "shptr-lock"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(Mechanics, HistogramFsInputAccentuatesTheBug)
{
    RunResult standard = detectRun("histogram", false);
    RunResult fs_input = detectRun("histogramfs", false);
    ASSERT_TRUE(standard.compatible);
    ASSERT_TRUE(fs_input.compatible);
    // Same code, different image: the crafted input concentrates
    // increments on the row-boundary lines.
    EXPECT_GT(fs_input.hitmEvents, standard.hitmEvents);
}

TEST(Mechanics, CannealContentionTooDiffuseToRepair)
{
    // canneal's swaps hit random slots across a large netlist:
    // plenty of coherence traffic, but no page concentrates enough
    // false sharing to cross the repair threshold -- "Tmi does not
    // identify significant enough false sharing ... to trigger its
    // repair mechanisms" (section 4.5).
    ExperimentConfig cfg;
    cfg.workload = "canneal";
    cfg.treatment = Treatment::TmiProtect;
    cfg.threads = 4;
    cfg.scale = 2;
    cfg.analysisInterval = 500'000;
    RunResult res = runExperiment(cfg);
    ASSERT_TRUE(res.compatible);
    EXPECT_GT(res.hitmEvents, 0u);
    EXPECT_FALSE(res.repairActive);
}

TEST(Mechanics, LeveldbTrueSharingDominatesItsResidualFs)
{
    // "leveldb exhibits roughly 10x more HITM events attributable to
    // true sharing rather than false sharing" -- after the manual
    // fix removes the injected counters, what remains is mostly the
    // queue's and table's true sharing.
    RunResult fixed = detectRun("leveldb", true, 3);
    ASSERT_TRUE(fixed.compatible);
    EXPECT_GT(fixed.hitmEvents, 0u);
}

TEST(Mechanics, DedupSpendsTimeInAsmRegions)
{
    // dedup's openssl stand-in must actually enter asm regions so
    // code-centric consistency has something to do.
    ExperimentConfig cfg;
    cfg.workload = "dedup";
    cfg.treatment = Treatment::TmiDetect;
    cfg.threads = 4;
    cfg.scale = 1;
    cfg.dumpStats = true;
    RunResult res = runExperiment(cfg);
    ASSERT_TRUE(res.compatible);
    EXPECT_NE(res.statsText.find("regionTransitions"),
              std::string::npos);
    // Parse the transition count out of the dump.
    auto pos = res.statsText.find("regionTransitions");
    double transitions =
        std::strtod(res.statsText.c_str() + pos + 17, nullptr);
    EXPECT_GT(transitions, 100.0);
}

TEST(Mechanics, StringmatchScratchStraddlesNeighbourLines)
{
    // The cur_word_final store of thread t must land on the line
    // holding thread t+1's cur_word: visible as FS classified on the
    // scratch lines by the detector.
    RunResult res = detectRun("stringmatch", false);
    ASSERT_TRUE(res.compatible);
    EXPECT_GT(res.fsEventsEstimated, 0.0);
}

} // namespace tmi
