/**
 * @file
 * Typed workload-parameter unit tests: schema declaration, assignment
 * parsing, resolution against the schema (defaults, overlays, the
 * error messages the CLIs surface), and the canonical-text round-trip
 * the sweep CSV's params column depends on.
 */

#include <gtest/gtest.h>

#include "workloads/params.hh"

namespace tmi
{

namespace
{

ParamSchema
feedLikeSchema()
{
    ParamSchema s;
    s.enumKnob("profile", "steady", {"steady", "bursty", "diurnal"},
               "arrival process shape");
    s.intKnob("arrival_gap", 600, "mean inter-arrival gap");
    s.doubleKnob("load", 0.5, "target utilisation");
    s.boolKnob("strict", false, "fail on overflow");
    return s;
}

} // namespace

TEST(ParamSchema, DeclaresKnobsInOrderWithDefaults)
{
    ParamSchema s = feedLikeSchema();
    ASSERT_EQ(s.specs().size(), 4u);
    EXPECT_EQ(s.specs()[0].name, "profile");
    EXPECT_EQ(s.specs()[0].defaultText(), "steady");
    EXPECT_EQ(s.specs()[1].defaultText(), "600");
    EXPECT_EQ(s.specs()[3].defaultText(), "false");
    EXPECT_NE(s.find("arrival_gap"), nullptr);
    EXPECT_EQ(s.find("nope"), nullptr);
    EXPECT_NE(s.validKeyList().find("arrival_gap"),
              std::string::npos);
}

TEST(ParamParse, AssignmentSplitsAtFirstEqualsAndTrims)
{
    std::pair<std::string, std::string> kv;
    std::string err;
    ASSERT_TRUE(parseParamAssignment(" arrival_gap = 900 ", kv, err));
    EXPECT_EQ(kv.first, "arrival_gap");
    EXPECT_EQ(kv.second, "900");

    ASSERT_TRUE(parseParamAssignment("k=a=b", kv, err));
    EXPECT_EQ(kv.second, "a=b");

    EXPECT_FALSE(parseParamAssignment("no-equals", kv, err));
    EXPECT_FALSE(parseParamAssignment("=value", kv, err));
}

TEST(ParamResolve, DefaultsFillEverythingWhenRawIsEmpty)
{
    ParamValues out;
    std::string err;
    ASSERT_TRUE(resolveParams(feedLikeSchema(), {}, out, err)) << err;
    EXPECT_EQ(out.getEnum("profile"), "steady");
    EXPECT_EQ(out.getInt("arrival_gap"), 600u);
    EXPECT_DOUBLE_EQ(out.getDouble("load"), 0.5);
    EXPECT_FALSE(out.getBool("strict"));
}

TEST(ParamResolve, OverlaysInOrderWithLaterDuplicatesWinning)
{
    ParamValues out;
    std::string err;
    RawParams raw = {{"arrival_gap", "100"},
                     {"profile", "bursty"},
                     {"arrival_gap", "900"},
                     {"strict", "true"},
                     {"load", "0.75"}};
    ASSERT_TRUE(resolveParams(feedLikeSchema(), raw, out, err)) << err;
    EXPECT_EQ(out.getInt("arrival_gap"), 900u);
    EXPECT_EQ(out.getEnum("profile"), "bursty");
    EXPECT_TRUE(out.getBool("strict"));
    EXPECT_DOUBLE_EQ(out.getDouble("load"), 0.75);
}

TEST(ParamResolve, UnknownKeyNamesTheValidOnes)
{
    ParamValues out;
    std::string err;
    EXPECT_FALSE(resolveParams(feedLikeSchema(), {{"bogus", "1"}},
                               out, err));
    EXPECT_NE(err.find("bogus"), std::string::npos) << err;
    EXPECT_NE(err.find("arrival_gap"), std::string::npos) << err;

    // An empty schema rejects any key with a distinct message.
    err.clear();
    EXPECT_FALSE(
        resolveParams(ParamSchema{}, {{"anything", "1"}}, out, err));
    EXPECT_NE(err.find("no parameters"), std::string::npos) << err;
}

TEST(ParamResolve, TypeErrorsNameExpectedAndGot)
{
    ParamValues out;
    std::string err;
    EXPECT_FALSE(resolveParams(feedLikeSchema(),
                               {{"arrival_gap", "fast"}}, out, err));
    EXPECT_NE(err.find("arrival_gap"), std::string::npos) << err;

    err.clear();
    EXPECT_FALSE(resolveParams(feedLikeSchema(),
                               {{"profile", "square"}}, out, err));
    // Enum errors list the legal values.
    EXPECT_NE(err.find("bursty"), std::string::npos) << err;

    err.clear();
    EXPECT_FALSE(resolveParams(feedLikeSchema(), {{"load", "x"}},
                               out, err));
    err.clear();
    EXPECT_FALSE(resolveParams(feedLikeSchema(), {{"strict", "2"}},
                               out, err));
}

TEST(ParamText, CanonicalFormSortsAndRoundTrips)
{
    EXPECT_EQ(canonicalParamText({}), "-");
    RawParams raw = {{"b", "2"}, {"a", "1"}, {"c", "3"}};
    std::string text = canonicalParamText(raw);
    EXPECT_EQ(text, "a=1;b=2;c=3");

    // Parse each ';'-separated assignment back and re-canonicalise:
    // the round trip is the identity.
    RawParams back;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t semi = text.find(';', start);
        std::string item =
            text.substr(start, semi == std::string::npos
                                   ? std::string::npos
                                   : semi - start);
        std::pair<std::string, std::string> kv;
        std::string err;
        ASSERT_TRUE(parseParamAssignment(item, kv, err)) << err;
        back.push_back(kv);
        if (semi == std::string::npos)
            break;
        start = semi + 1;
    }
    EXPECT_EQ(canonicalParamText(back), text);

    // Equal keys keep their relative order (stable sort), so the
    // later-wins overlay semantics survive the round trip.
    EXPECT_EQ(canonicalParamText({{"k", "2"}, {"k", "1"}}),
              "k=2;k=1");
}

} // namespace tmi
