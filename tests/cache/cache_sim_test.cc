/**
 * @file
 * Unit tests for the MESI cache simulator and HITM generation.
 */

#include <gtest/gtest.h>

#include "cache/cache_sim.hh"

namespace tmi
{

namespace
{

AccessContext
ctx(CoreId core, Addr paddr, bool write, unsigned width = 8)
{
    AccessContext c;
    c.core = core;
    c.tid = core;
    c.paddr = paddr;
    c.vaddr = paddr;
    c.pc = 0x400000;
    c.width = width;
    c.isWrite = write;
    return c;
}

} // namespace

TEST(CacheSim, ColdReadMissesToDram)
{
    CacheSim cache;
    AccessResult r = cache.access(ctx(0, 0x1000, false));
    EXPECT_FALSE(r.l1Hit);
    EXPECT_FALSE(r.hitm);
    EXPECT_EQ(r.latency, cache.config().dramLatency);
}

TEST(CacheSim, SecondAccessHitsL1)
{
    CacheSim cache;
    cache.access(ctx(0, 0x1000, false));
    AccessResult r = cache.access(ctx(0, 0x1008, false));
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, cache.config().l1HitLatency);
}

TEST(CacheSim, WriteAfterReadUpgradesSilently)
{
    CacheSim cache;
    cache.access(ctx(0, 0x1000, false)); // E
    AccessResult r = cache.access(ctx(0, 0x1000, true)); // E->M
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, cache.config().l1HitLatency);
}

TEST(CacheSim, RemoteDirtyReadIsHitm)
{
    CacheSim cache;
    cache.access(ctx(0, 0x1000, true)); // core 0: M
    AccessResult r = cache.access(ctx(1, 0x1000, false));
    EXPECT_TRUE(r.hitm);
    EXPECT_EQ(r.latency, cache.config().hitmLatency);
    EXPECT_EQ(cache.hitmEvents(), 1u);
}

TEST(CacheSim, RemoteDirtyWriteIsHitm)
{
    CacheSim cache;
    cache.access(ctx(0, 0x1000, true));
    AccessResult r = cache.access(ctx(1, 0x1008, true)); // same line
    EXPECT_TRUE(r.hitm);
    EXPECT_EQ(cache.hitmEvents(), 1u);
}

TEST(CacheSim, DistinctLinesDoNotConflict)
{
    CacheSim cache;
    cache.access(ctx(0, 0x1000, true));
    AccessResult r = cache.access(ctx(1, 0x1040, true)); // next line
    EXPECT_FALSE(r.hitm);
    EXPECT_EQ(cache.hitmEvents(), 0u);
}

TEST(CacheSim, PingPongGeneratesHitmPerHandoff)
{
    CacheSim cache;
    for (int i = 0; i < 10; ++i) {
        cache.access(ctx(0, 0x1000, true));
        cache.access(ctx(1, 0x1000, true));
    }
    // Every ownership transfer after the first write is a HITM.
    EXPECT_EQ(cache.hitmEvents(), 19u);
}

TEST(CacheSim, CleanSharingIsNotHitm)
{
    CacheSim cache;
    cache.access(ctx(0, 0x1000, false));
    AccessResult r = cache.access(ctx(1, 0x1000, false));
    EXPECT_FALSE(r.hitm);
    EXPECT_EQ(r.latency, cache.config().cleanForwardLatency);
}

TEST(CacheSim, SharedWriteUpgradesWithInvalidation)
{
    CacheSim cache;
    cache.access(ctx(0, 0x1000, false));
    cache.access(ctx(1, 0x1000, false)); // both Shared
    AccessResult r = cache.access(ctx(0, 0x1000, true));
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, cache.config().upgradeLatency);
    // Core 1's copy was invalidated: its next read misses and is a
    // HITM against core 0's Modified line.
    AccessResult r2 = cache.access(ctx(1, 0x1000, false));
    EXPECT_TRUE(r2.hitm);
}

TEST(CacheSim, ReadAfterHitmDowngradesOwner)
{
    CacheSim cache;
    cache.access(ctx(0, 0x1000, true));  // M in core 0
    cache.access(ctx(1, 0x1000, false)); // HITM, both now S
    // Another read from a third core: no further HITM.
    AccessResult r = cache.access(ctx(2, 0x1000, false));
    EXPECT_FALSE(r.hitm);
    EXPECT_EQ(cache.hitmEvents(), 1u);
}

TEST(CacheSim, HitmCallbackChargedIntoLatency)
{
    CacheSim cache;
    cache.setHitmCallback([](const AccessContext &) { return 500; });
    cache.access(ctx(0, 0x1000, true));
    AccessResult r = cache.access(ctx(1, 0x1000, false));
    EXPECT_EQ(r.latency, cache.config().hitmLatency + 500);
}

TEST(CacheSim, EvictionWritesBackAndForgetsLine)
{
    CacheConfig cfg;
    cfg.l1Sets = 1;
    cfg.l1Ways = 2;
    CacheSim cache(cfg);
    // Fill both ways dirty, then evict one with a third line.
    cache.access(ctx(0, 0 * 64, true));
    cache.access(ctx(0, 1 * 64, true));
    cache.access(ctx(0, 2 * 64, true)); // evicts line 0 (LRU)
    // Line 0 is gone from core 0: another core's write misses to
    // LLC, not HITM.
    AccessResult r = cache.access(ctx(1, 0 * 64, true));
    EXPECT_FALSE(r.hitm);
    EXPECT_EQ(r.latency, cache.config().llcHitLatency);
}

TEST(CacheSim, InvalidatePageClearsAllCores)
{
    CacheSim cache;
    cache.access(ctx(0, 0x1000, true));
    cache.access(ctx(1, 0x2000, true));
    cache.invalidatePage(0x1000 >> smallPageShift, smallPageShift);
    // 0x1000's line (page 1) dropped everywhere; 0x2000 (page 2)
    // untouched.
    AccessResult r = cache.access(ctx(2, 0x1000, true));
    EXPECT_FALSE(r.hitm);
    AccessResult r2 = cache.access(ctx(2, 0x2000, true));
    EXPECT_TRUE(r2.hitm);
}

TEST(CacheSim, LineSpanAccessAsserts)
{
    CacheSim cache;
    EXPECT_DEATH(cache.access(ctx(0, 0x103c, false, 8)),
                 "assertion");
}

/** Parameterized sweep: ping-pong HITM counts scale with rounds. */
class PingPongSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(PingPongSweep, HitmScalesLinearly)
{
    int rounds = GetParam();
    CacheSim cache;
    for (int i = 0; i < rounds; ++i) {
        cache.access(ctx(0, 0x40, true));
        cache.access(ctx(1, 0x40, true));
    }
    EXPECT_EQ(cache.hitmEvents(),
              static_cast<std::uint64_t>(2 * rounds - 1));
}

INSTANTIATE_TEST_SUITE_P(Rounds, PingPongSweep,
                         ::testing::Values(1, 2, 5, 20, 100));

} // namespace tmi
