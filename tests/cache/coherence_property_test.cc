/**
 * @file
 * Property tests: the MESI simulator must uphold its invariants
 * under arbitrary access interleavings.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "cache/cache_sim.hh"
#include "common/rng.hh"

namespace tmi
{

namespace
{

AccessContext
randomCtx(Rng &rng, unsigned cores, unsigned lines)
{
    AccessContext c;
    c.core = static_cast<CoreId>(rng.below(cores));
    c.tid = c.core;
    c.paddr = rng.below(lines) * lineBytes + rng.below(8) * 8;
    c.vaddr = c.paddr;
    c.pc = 0x400000;
    c.width = 8;
    c.isWrite = rng.chance(0.4);
    return c;
}

} // namespace

/** Sweep over RNG seeds: SWMR and directory agreement always hold. */
class CoherenceProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(CoherenceProperty, SwmrHoldsUnderRandomTraffic)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    CacheConfig cfg;
    cfg.cores = 4;
    cfg.l1Sets = 8; // small caches force constant eviction
    cfg.l1Ways = 2;
    cfg.llcSets = 64;
    cfg.llcWays = 4;
    CacheSim cache(cfg);

    for (int i = 0; i < 20000; ++i) {
        cache.access(randomCtx(rng, cfg.cores, 64));
        if (i % 512 == 0)
            ASSERT_TRUE(cache.auditCoherence()) << "at access " << i;
    }
    EXPECT_TRUE(cache.auditCoherence());
}

TEST_P(CoherenceProperty, InvalidationsKeepInvariants)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 3);
    CacheSim cache;
    for (int i = 0; i < 5000; ++i) {
        cache.access(randomCtx(rng, 4, 32));
        if (rng.chance(0.01))
            cache.invalidateLine(rng.below(32) * lineBytes);
        if (rng.chance(0.002)) {
            cache.invalidatePage(0, smallPageShift);
        }
        if (i % 256 == 0)
            ASSERT_TRUE(cache.auditCoherence());
    }
}

TEST_P(CoherenceProperty, LatenciesAlwaysSane)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
    CacheConfig cfg;
    CacheSim cache(cfg);
    Cycles max_lat =
        std::max({cfg.hitmLatency, cfg.dramLatency,
                  cfg.cleanForwardLatency, cfg.upgradeLatency});
    for (int i = 0; i < 10000; ++i) {
        AccessResult res = cache.access(randomCtx(rng, 4, 128));
        EXPECT_GE(res.latency, cfg.l1HitLatency);
        EXPECT_LE(res.latency, max_lat);
        // HITM is only reported with the HITM latency.
        if (res.hitm)
            EXPECT_EQ(res.latency, cfg.hitmLatency);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

TEST(CoherenceAudit, DetectsNothingOnFreshCache)
{
    CacheSim cache;
    EXPECT_TRUE(cache.auditCoherence());
}

TEST(CoherenceAudit, SingleOwnerAfterWriteStorm)
{
    // After many cores write the same line in turn, exactly the last
    // writer owns it.
    CacheSim cache;
    for (CoreId c = 0; c < 4; ++c) {
        AccessContext ctx;
        ctx.core = c;
        ctx.paddr = 0x40;
        ctx.vaddr = 0x40;
        ctx.pc = 0x400000;
        ctx.width = 8;
        ctx.isWrite = true;
        cache.access(ctx);
        ASSERT_TRUE(cache.auditCoherence());
    }
}

} // namespace tmi
