/**
 * @file
 * Unit tests for the TLB model.
 */

#include <gtest/gtest.h>

#include "cache/tlb.hh"

namespace tmi
{

TEST(Tlb, MissThenHit)
{
    Tlb tlb(TlbConfig{}, smallPageShift);
    EXPECT_GT(tlb.lookup(0x1000), 0u);
    EXPECT_EQ(tlb.lookup(0x1008), 0u); // same page
    EXPECT_GT(tlb.lookup(0x2000), 0u); // new page
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(Tlb, CapacityEviction)
{
    TlbConfig cfg;
    cfg.entries4k = 4;
    Tlb tlb(cfg, smallPageShift);
    for (Addr p = 0; p < 5; ++p)
        tlb.lookup(p * smallPageBytes);
    // Page 0 was LRU and is gone.
    EXPECT_GT(tlb.lookup(0), 0u);
    // Page 4 is still resident.
    EXPECT_EQ(tlb.lookup(4 * smallPageBytes), 0u);
}

TEST(Tlb, HugePagesCoverMoreMemory)
{
    TlbConfig cfg;
    cfg.entries4k = 64;
    cfg.entries2m = 32;
    Tlb small(cfg, smallPageShift);
    Tlb huge(cfg, hugePageShift);
    // Touch 16 MB at 4 KB strides: thrashes the 4K TLB (4096 pages,
    // 64 entries) but fits easily in the 2M TLB (8 pages).
    for (int rep = 0; rep < 2; ++rep) {
        for (Addr a = 0; a < (16 << 20); a += smallPageBytes) {
            small.lookup(a);
            huge.lookup(a);
        }
    }
    EXPECT_GT(small.misses(), 1000u);
    EXPECT_LE(huge.misses(), 8u);
}

TEST(Tlb, FlushDropsEverything)
{
    Tlb tlb(TlbConfig{}, smallPageShift);
    tlb.lookup(0x1000);
    tlb.flush();
    EXPECT_GT(tlb.lookup(0x1000), 0u);
}

TEST(Tlb, FlushPageIsSelective)
{
    Tlb tlb(TlbConfig{}, smallPageShift);
    tlb.lookup(0x1000);
    tlb.lookup(0x2000);
    tlb.flushPage(0x1000 >> smallPageShift);
    EXPECT_GT(tlb.lookup(0x1000), 0u);
    EXPECT_EQ(tlb.lookup(0x2000), 0u);
}

} // namespace tmi
