/**
 * @file
 * Tests for the MOESI protocol option: Owned-state dirty sharing,
 * its writeback savings, and its consequence for HITM visibility
 * (Intel-style HITM detection goes quiet under dirty sharing).
 */

#include <gtest/gtest.h>

#include "cache/cache_sim.hh"
#include "common/rng.hh"

namespace tmi
{

namespace
{

AccessContext
ctx(CoreId core, Addr paddr, bool write)
{
    AccessContext c;
    c.core = core;
    c.tid = core;
    c.paddr = paddr;
    c.vaddr = paddr;
    c.pc = 0x400000;
    c.width = 8;
    c.isWrite = write;
    return c;
}

CacheConfig
moesiConfig()
{
    CacheConfig cfg;
    cfg.protocol = Protocol::Moesi;
    return cfg;
}

} // namespace

TEST(Moesi, FirstReadOfDirtyLineIsStillHitm)
{
    CacheSim cache(moesiConfig());
    cache.access(ctx(0, 0x1000, true));
    AccessResult r = cache.access(ctx(1, 0x1000, false));
    EXPECT_TRUE(r.hitm);
    EXPECT_EQ(cache.hitmEvents(), 1u);
    EXPECT_TRUE(cache.auditCoherence());
}

TEST(Moesi, SubsequentReadsAreQuietOwnedForwards)
{
    CacheSim cache(moesiConfig());
    cache.access(ctx(0, 0x1000, true));  // M in core 0
    cache.access(ctx(1, 0x1000, false)); // HITM; owner -> O
    AccessResult r = cache.access(ctx(2, 0x1000, false));
    EXPECT_FALSE(r.hitm); // served from Owned: no Intel HITM event
    EXPECT_EQ(r.latency, cache.config().ownedForwardLatency);
    EXPECT_EQ(cache.hitmEvents(), 1u);
    EXPECT_EQ(cache.ownedForwards(), 1u);
    EXPECT_TRUE(cache.auditCoherence());
}

TEST(Moesi, DirtyReadAvoidsWriteback)
{
    CacheSim mesi;
    CacheSim moesi(moesiConfig());
    for (CacheSim *cache : {&mesi, &moesi}) {
        cache->access(ctx(0, 0x1000, true));
        cache->access(ctx(1, 0x1000, false));
    }
    // MESI pays a writeback on the downgrade; MOESI keeps the dirty
    // line in the owner's cache.
    EXPECT_EQ(mesi.writebacks(), 1u);
    EXPECT_EQ(moesi.writebacks(), 0u);
}

TEST(Moesi, WriteToOwnedLineReclaimsModified)
{
    CacheSim cache(moesiConfig());
    cache.access(ctx(0, 0x1000, true));
    cache.access(ctx(1, 0x1000, false)); // core0 -> O, core1 S
    // The owner writes again: O->M upgrade invalidating the sharer.
    AccessResult r = cache.access(ctx(0, 0x1000, true));
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, cache.config().upgradeLatency);
    EXPECT_TRUE(cache.auditCoherence());
    // And the next remote read is a HITM again.
    AccessResult r2 = cache.access(ctx(1, 0x1000, false));
    EXPECT_TRUE(r2.hitm);
}

TEST(Moesi, SharerWriteWritesBackOwnedCopy)
{
    CacheSim cache(moesiConfig());
    cache.access(ctx(0, 0x1000, true));
    cache.access(ctx(1, 0x1000, false)); // core0 O, core1 S
    // The *sharer* upgrades: the dirty O copy must be written back.
    AccessResult r = cache.access(ctx(1, 0x1000, true));
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(cache.writebacks(), 1u);
    EXPECT_TRUE(cache.auditCoherence());
}

TEST(Moesi, WriteMissOnOwnedLineInvalidatesAll)
{
    CacheSim cache(moesiConfig());
    cache.access(ctx(0, 0x1000, true));
    cache.access(ctx(1, 0x1000, false)); // 0:O 1:S
    AccessResult r = cache.access(ctx(2, 0x1000, true));
    EXPECT_FALSE(r.hitm); // dirty, but Owned: quiet on Intel counters
    EXPECT_GE(cache.writebacks(), 1u);
    EXPECT_TRUE(cache.auditCoherence());
    // Core 2 now has the only copy.
    AccessResult r2 = cache.access(ctx(0, 0x1000, false));
    EXPECT_TRUE(r2.hitm);
}

TEST(Moesi, ReadSharingHitmRateCollapsesVsMesi)
{
    // One writer, three readers polling: the detection-relevant
    // difference between the protocols.
    auto run = [](Protocol p) {
        CacheConfig cfg;
        cfg.protocol = p;
        CacheSim cache(cfg);
        for (int round = 0; round < 200; ++round) {
            cache.access(ctx(0, 0x40, true));
            for (CoreId c = 1; c < 4; ++c)
                cache.access(ctx(c, 0x40, false));
        }
        return cache.hitmEvents();
    };
    std::uint64_t mesi = run(Protocol::Mesi);
    std::uint64_t moesi = run(Protocol::Moesi);
    EXPECT_EQ(mesi, moesi); // per round: one M-hit each; the rest of
                            // MESI's reads hit S copies...
    // ...but write-write ping-pong differs: see the property sweep.
}

/** Property: MOESI upholds the extended invariants under chaos. */
class MoesiProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(MoesiProperty, InvariantsHoldUnderRandomTraffic)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 1);
    CacheConfig cfg = moesiConfig();
    cfg.l1Sets = 8;
    cfg.l1Ways = 2;
    CacheSim cache(cfg);
    for (int i = 0; i < 20000; ++i) {
        AccessContext c = ctx(static_cast<CoreId>(rng.below(4)),
                              rng.below(64) * lineBytes,
                              rng.chance(0.4));
        cache.access(c);
        if (i % 512 == 0)
            ASSERT_TRUE(cache.auditCoherence()) << "at access " << i;
    }
    EXPECT_TRUE(cache.auditCoherence());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MoesiProperty,
                         ::testing::Values(1, 7, 42, 1337));

} // namespace tmi
