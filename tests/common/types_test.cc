/**
 * @file
 * Unit tests for address/alignment helpers.
 */

#include <gtest/gtest.h>

#include "common/types.hh"

namespace tmi
{

TEST(Types, LineConstants)
{
    EXPECT_EQ(lineBytes, 64u);
    EXPECT_EQ(smallPageBytes, 4096u);
    EXPECT_EQ(hugePageBytes, 2u * 1024 * 1024);
}

TEST(Types, LineAlign)
{
    EXPECT_EQ(lineAlign(0), 0u);
    EXPECT_EQ(lineAlign(63), 0u);
    EXPECT_EQ(lineAlign(64), 64u);
    EXPECT_EQ(lineAlign(130), 128u);
}

TEST(Types, LineNumberAndOffset)
{
    EXPECT_EQ(lineNumber(64), 1u);
    EXPECT_EQ(lineNumber(127), 1u);
    EXPECT_EQ(lineOffset(127), 63u);
    EXPECT_EQ(lineOffset(128), 0u);
}

TEST(Types, RoundUpDown)
{
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundUp(65, 64), 128u);
    EXPECT_EQ(roundDown(65, 64), 64u);
    EXPECT_EQ(roundDown(63, 64), 0u);
}

TEST(Types, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(65));
}

TEST(Types, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
    EXPECT_EQ(floorLog2(1ull << 40), 40u);
}

/** Property sweep: roundUp/roundDown bracket the value. */
class AlignSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AlignSweep, RoundBrackets)
{
    Addr a = GetParam();
    for (Addr align : {8ull, 64ull, 4096ull}) {
        EXPECT_LE(roundDown(a, align), a);
        EXPECT_GE(roundUp(a, align), a);
        EXPECT_EQ(roundUp(a, align) % align, 0u);
        EXPECT_EQ(roundDown(a, align) % align, 0u);
        EXPECT_LT(roundUp(a, align) - roundDown(a, align), 2 * align);
    }
}

INSTANTIATE_TEST_SUITE_P(Values, AlignSweep,
                         ::testing::Values(0, 1, 7, 63, 64, 65, 4095,
                                           4096, 4097, 123456789));

} // namespace tmi
