/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace tmi::stats
{

TEST(Scalar, Accumulates)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Distribution, Moments)
{
    Distribution d;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
    EXPECT_DOUBLE_EQ(d.variance(), 1.25);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.variance(), 0.0);
}

TEST(StatGroup, LookupNested)
{
    Scalar inner;
    inner = 42;
    StatGroup child("cache");
    child.addScalar("hits", &inner, "test stat");
    StatGroup root("machine");
    root.addChild(&child);

    double out = 0;
    EXPECT_TRUE(root.lookupScalar("cache.hits", out));
    EXPECT_EQ(out, 42.0);
    EXPECT_FALSE(root.lookupScalar("cache.misses", out));
    EXPECT_FALSE(root.lookupScalar("cpu.hits", out));
    EXPECT_FALSE(root.lookupScalar("hits", out));
}

TEST(StatGroup, DumpContainsNamesAndValues)
{
    Scalar s;
    s = 7;
    StatGroup g("top");
    g.addScalar("things", &s, "number of things");
    std::ostringstream os;
    g.dump(os);
    std::string text = os.str();
    EXPECT_NE(text.find("top"), std::string::npos);
    EXPECT_NE(text.find("things"), std::string::npos);
    EXPECT_NE(text.find("7"), std::string::npos);
    EXPECT_NE(text.find("number of things"), std::string::npos);
}

} // namespace tmi::stats
