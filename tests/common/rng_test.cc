/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace tmi
{

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng r(7);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[r.below(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool lo = false, hi = false;
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t v = r.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        lo |= v == 5;
        hi |= v == 8;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceFrequency)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

} // namespace tmi
