/**
 * @file
 * Runner behaviour tests: retries with backoff, failure containment
 * (one job exhausting its budget must not poison its siblings),
 * host-side timeout, cancellation, and bad-spec reporting.
 */

#include <gtest/gtest.h>

#include "driver/runner.hh"

namespace tmi::driver
{

namespace
{

RunnerOptions
withWorkers(unsigned n)
{
    RunnerOptions opts;
    opts.workers = n;
    return opts;
}

SweepSpec
smallSpec(std::vector<std::string> workloads = {"histogramfs"})
{
    SweepSpec spec;
    spec.workloads = std::move(workloads);
    spec.base.run.treatment = Treatment::TmiProtect;
    spec.base.run.scale = 1;
    spec.base.run.analysisInterval = 300'000;
    return spec;
}

} // namespace

TEST(Runner, TransientFailureIsRetried)
{
    RunnerOptions opts;
    opts.workers = 2;
    opts.maxAttempts = 3;
    opts.retryBackoff = std::chrono::milliseconds(1);
    // Job 0 fails on its first two attempts, then recovers.
    opts.failInjector = [](const Job &job, unsigned attempt) {
        return job.id == 0 && attempt < 3;
    };
    Runner runner(opts);

    std::vector<JobResult> results =
        runner.run(smallSpec({"histogramfs", "spinlockpool"}));
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].status, JobStatus::Ok);
    EXPECT_EQ(results[0].attempts, 3u);
    EXPECT_EQ(results[1].status, JobStatus::Ok);
    EXPECT_EQ(results[1].attempts, 1u);
    EXPECT_EQ(runner.stats().retries, 2u);
    EXPECT_EQ(runner.stats().ok, 2u);
}

TEST(Runner, ExhaustedRetriesFailWithoutPoisoningSiblings)
{
    RunnerOptions opts;
    opts.workers = 2;
    opts.maxAttempts = 2;
    opts.retryBackoff = std::chrono::milliseconds(1);
    // Job 1 never succeeds; its siblings must be untouched.
    opts.failInjector = [](const Job &job, unsigned) {
        return job.id == 1;
    };
    Runner runner(opts);

    std::vector<JobResult> results = runner.run(
        smallSpec({"histogramfs", "spinlockpool", "histogram"}));
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].status, JobStatus::Ok);
    EXPECT_EQ(results[1].status, JobStatus::Failed);
    EXPECT_EQ(results[1].attempts, 2u);
    EXPECT_EQ(results[1].error, "injected failure");
    EXPECT_EQ(results[2].status, JobStatus::Ok);
    EXPECT_TRUE(results[2].run.compatible);
    EXPECT_EQ(runner.stats().failed, 1u);
    EXPECT_EQ(runner.stats().ok, 2u);
}

TEST(Runner, InvalidSpecReportsEveryJobFailed)
{
    SweepSpec spec = smallSpec();
    spec.base.run.threads = 0; // invalid per-cell config

    unsigned delivered = 0;
    FunctionSink sink([&](const JobResult &r) {
        ++delivered;
        EXPECT_EQ(r.status, JobStatus::Failed);
        EXPECT_NE(r.error.find("threads"), std::string::npos);
    });
    Runner runner(withWorkers(1));
    std::vector<JobResult> results = runner.run(spec, &sink);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(delivered, 1u);
    EXPECT_EQ(runner.stats().failed, 1u);
}

TEST(Runner, HostTimeoutKillsRunawayJob)
{
    // An effectively-unbounded simulation (huge scale and budget)
    // against a tiny host timeout: the watchdog must cancel it
    // through the scheduler's abort flag, and it is not retried.
    SweepSpec spec = smallSpec();
    spec.base.run.scale = 5'000;
    RunnerOptions opts;
    opts.workers = 1;
    opts.jobTimeout = std::chrono::milliseconds(50);
    Runner runner(opts);

    std::vector<JobResult> results = runner.run(spec);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::TimedOut);
    EXPECT_EQ(results[0].attempts, 1u);
    EXPECT_EQ(runner.stats().timedOut, 1u);
}

TEST(Runner, RequestStopCancelsRemainingJobs)
{
    SweepSpec spec =
        smallSpec({"histogramfs", "spinlockpool", "histogram",
                   "stringmatch"});
    Runner runner(withWorkers(1));
    // Serial worker + in-order delivery: stopping from the first
    // delivery leaves every later job not-yet-started.
    FunctionSink sink([&](const JobResult &r) {
        if (r.job.id == 0)
            runner.requestStop();
    });

    std::vector<JobResult> results = runner.run(spec, &sink);
    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[0].status, JobStatus::Ok);
    for (std::size_t i = 1; i < results.size(); ++i)
        EXPECT_EQ(results[i].status, JobStatus::Cancelled);
    EXPECT_EQ(runner.stats().cancelled, 3u);
}

TEST(Runner, StatsAndResultsCoverEveryJob)
{
    SweepSpec spec = smallSpec({"histogramfs", "spinlockpool"});
    spec.seeds = {1, 2, 3};
    Runner runner(withWorkers(3));

    std::vector<JobResult> results = runner.run(spec);
    ASSERT_EQ(results.size(), 6u);
    const SweepStats &stats = runner.stats();
    EXPECT_EQ(stats.total, 6u);
    EXPECT_EQ(stats.ok + stats.failed + stats.timedOut +
                  stats.cancelled,
              6u);
    EXPECT_GT(stats.wallSeconds, 0.0);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].job.id, i);
        EXPECT_EQ(results[i].status, JobStatus::Ok);
        EXPECT_TRUE(results[i].run.compatible);
    }
}

} // namespace tmi::driver
