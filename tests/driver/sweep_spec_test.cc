/**
 * @file
 * Unit tests for the declarative sweep specification: matrix
 * expansion (order, ids, fault folding), validation, and the shared
 * key=value parsing used by both spec files and tmi-sweep flags.
 */

#include <gtest/gtest.h>

#include "driver/sweep.hh"

namespace tmi::driver
{

TEST(SweepSpec, ExpandsRowMajorWithDenseIds)
{
    SweepSpec spec;
    spec.workloads = {"histogramfs", "spinlockpool"};
    spec.treatments = {Treatment::Pthreads, Treatment::TmiProtect};
    spec.seeds = {1, 2, 3};

    ASSERT_EQ(spec.matrixSize(), 12u);
    std::vector<Job> jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 12u);

    // Dense ids in expansion order; workload is the outermost axis,
    // seed the innermost.
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].id, i);
    EXPECT_EQ(jobs[0].config.run.workload, "histogramfs");
    EXPECT_EQ(jobs[0].config.run.seed, 1u);
    EXPECT_EQ(jobs[1].config.run.seed, 2u);
    EXPECT_EQ(jobs[3].config.run.treatment, Treatment::TmiProtect);
    EXPECT_EQ(jobs[6].config.run.workload, "spinlockpool");
    EXPECT_EQ(jobs[11].config.run.seed, 3u);
}

TEST(SweepSpec, EmptyAxesFallBackToBaseConfig)
{
    SweepSpec spec;
    spec.workloads = {"histogramfs"};
    spec.base.run.treatment = Treatment::TmiDetect;
    spec.base.run.scale = 7;
    spec.base.run.seed = 99;

    std::vector<Job> jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].config.run.treatment, Treatment::TmiDetect);
    EXPECT_EQ(jobs[0].config.run.scale, 7u);
    EXPECT_EQ(jobs[0].config.run.seed, 99u);
    EXPECT_EQ(jobs[0].scenario(), "none");
}

TEST(SweepSpec, FaultAxisFoldsIntoJobConfig)
{
    SweepSpec spec;
    spec.workloads = {"histogramfs"};
    spec.faultPoints = {"mem.frame_exhausted"};
    spec.faultRates = {0.0, 0.5};

    std::vector<Job> jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 2u);
    // Rate 0 is the clean control: no fault armed at all.
    EXPECT_TRUE(jobs[0].config.run.faults.empty());
    EXPECT_EQ(jobs[0].scenario(), "none");
    ASSERT_EQ(jobs[1].config.run.faults.size(), 1u);
    EXPECT_EQ(jobs[1].config.run.faults[0].first,
              "mem.frame_exhausted");
    EXPECT_EQ(jobs[1].scenario(), "mem.frame_exhausted@0.50");
}

TEST(SweepSpec, ValidateCatchesBadAxes)
{
    SweepSpec spec;
    EXPECT_FALSE(spec.validate().empty()); // no workloads

    spec.workloads = {"no-such-workload"};
    EXPECT_FALSE(spec.validate().empty());

    spec.workloads = {"histogramfs"};
    EXPECT_TRUE(spec.validate().empty());

    spec.faultRates = {1.5};
    EXPECT_FALSE(spec.validate().empty()); // rate out of [0,1]

    spec.faultRates = {0.5};
    EXPECT_FALSE(spec.validate().empty()); // rate without a point

    spec.faultPoints = {"mem.frame_exhausted"};
    EXPECT_TRUE(spec.validate().empty());

    spec.scales = {0};
    EXPECT_FALSE(spec.validate().empty());
}

TEST(SweepSpec, SpecTextRoundTrips)
{
    SweepSpec spec;
    std::string err;
    ASSERT_TRUE(parseSpecText(spec,
                              "# sweep over two workloads\n"
                              "workloads = histogramfs, spinlockpool\n"
                              "treatments = pthreads,tmi-protect\n"
                              "scales = 2,4\n"
                              "seeds = 1,2\n"
                              "threads = 8\n"
                              "budget = 1000000\n"
                              "watchdog = -1\n"
                              "\n"
                              "fault_points = mem.frame_exhausted\n"
                              "fault_rates = 0,0.5\n",
                              err))
        << err;
    EXPECT_EQ(spec.workloads,
              (std::vector<std::string>{"histogramfs",
                                        "spinlockpool"}));
    EXPECT_EQ(spec.treatments,
              (std::vector<Treatment>{Treatment::Pthreads,
                                      Treatment::TmiProtect}));
    EXPECT_EQ(spec.base.run.threads, 8u);
    EXPECT_EQ(spec.base.run.budget, 1'000'000u);
    EXPECT_EQ(spec.base.run.watchdog, -1);
    EXPECT_EQ(spec.matrixSize(), 2u * 2 * 2 * 2 * 2);
}

TEST(SweepSpec, SpecTextReportsLineNumbers)
{
    SweepSpec spec;
    std::string err;
    EXPECT_FALSE(parseSpecText(spec,
                               "workloads = histogramfs\n"
                               "scales = banana\n",
                               err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;

    err.clear();
    EXPECT_FALSE(parseSpecText(spec, "no equals sign here\n", err));
    EXPECT_NE(err.find("line 1"), std::string::npos) << err;

    err.clear();
    EXPECT_FALSE(parseSpecText(spec, "wibble = 3\n", err));
    EXPECT_NE(err.find("wibble"), std::string::npos) << err;
}

TEST(SweepSpec, ParamKeyAppendsToBaseConfig)
{
    SweepSpec spec;
    std::string err;
    // The spec parser splits at the FIRST '=', so the param's own
    // assignment survives in the value.
    ASSERT_TRUE(parseSpecText(spec,
                              "workloads = feed-spsc\n"
                              "param = arrival_gap=900\n"
                              "param = profile = bursty\n",
                              err))
        << err;
    ASSERT_EQ(spec.base.run.params.size(), 2u);
    EXPECT_EQ(spec.base.run.params[0].first, "arrival_gap");
    EXPECT_EQ(spec.base.run.params[0].second, "900");
    EXPECT_EQ(spec.base.run.params[1].first, "profile");
    EXPECT_EQ(spec.base.run.params[1].second, "bursty");
    EXPECT_TRUE(spec.validate().empty());

    // Every expanded job inherits the base params.
    std::vector<Job> jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].config.run.params, spec.base.run.params);

    err.clear();
    EXPECT_FALSE(parseSpecText(spec, "param = no-assignment\n", err));
    EXPECT_NE(err.find("key=value"), std::string::npos) << err;
}

TEST(SweepSpec, UnknownParamFailsValidateWithValidKeys)
{
    SweepSpec spec;
    spec.workloads = {"feed-spsc"};
    spec.base.run.params = {{"bogus_knob", "7"}};
    std::vector<ConfigError> errors = spec.validate();
    ASSERT_FALSE(errors.empty());
    bool mentions_key = false, mentions_valid = false;
    for (const ConfigError &e : errors) {
        mentions_key |=
            e.message.find("bogus_knob") != std::string::npos;
        mentions_valid |=
            e.message.find("arrival_gap") != std::string::npos;
    }
    EXPECT_TRUE(mentions_key);
    EXPECT_TRUE(mentions_valid);

    // Workloads without a schema reject any key.
    spec.workloads = {"histogramfs"};
    spec.base.run.params = {{"arrival_gap", "900"}};
    EXPECT_FALSE(spec.validate().empty());
}

TEST(SweepSpec, FamilyTokenExpandsInWorkloadsList)
{
    SweepSpec spec;
    std::string err;
    ASSERT_TRUE(parseSpecText(spec,
                              "workloads = histogramfs, family:server\n",
                              err))
        << err;
    EXPECT_EQ(spec.workloads,
              (std::vector<std::string>{"histogramfs", "feed-spsc",
                                        "feed-spmc"}));

    err.clear();
    SweepSpec bad;
    EXPECT_FALSE(
        parseSpecText(bad, "workloads = family:nope\n", err));
    EXPECT_NE(err.find("nope"), std::string::npos) << err;
    EXPECT_NE(err.find("server"), std::string::npos) << err;
}

TEST(SweepSpec, ListParsersRejectGarbage)
{
    std::string err;
    std::vector<std::uint64_t> u;
    EXPECT_FALSE(parseU64List("1,x", u, err));
    std::vector<double> d;
    EXPECT_FALSE(parseDoubleList("0.5,?", d, err));
    std::vector<Treatment> t;
    EXPECT_FALSE(parseTreatmentList("tmi-protect,bogus", t, err));
    EXPECT_NE(err.find("bogus"), std::string::npos);

    EXPECT_EQ(splitList(" a , b ,, c "),
              (std::vector<std::string>{"a", "b", "c"}));
}

} // namespace tmi::driver
