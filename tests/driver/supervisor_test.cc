/**
 * @file
 * Shard supervisor tests: the merged CSV must be byte-identical to an
 * uninterrupted in-process run for any shard count, through injected
 * worker crashes, quarantine of poison jobs, and checkpoint/resume
 * from partially written journals. Crashes are injected with the
 * test-only ShardOptions::childFaultHook, which runs inside the
 * forked worker and may abort() it mid-job.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "driver/supervisor.hh"

namespace tmi::driver
{

namespace
{

namespace fs = std::filesystem;

/** Same 8-cell matrix the determinism test sweeps. */
SweepSpec
matrixSpec()
{
    SweepSpec spec;
    spec.workloads = {"histogramfs", "spinlockpool"};
    spec.treatments = {Treatment::Pthreads, Treatment::TmiProtect};
    spec.base.run.scale = 1;
    spec.base.run.analysisInterval = 300'000;
    spec.faultPoints = {"mem.frame_exhausted"};
    spec.faultRates = {0.0, 0.5};
    return spec;
}

/** Uninterrupted single-process golden CSV for @p spec. */
std::string
runnerCsv(const SweepSpec &spec)
{
    std::ostringstream os;
    SweepCsvSink sink(os);
    RunnerOptions opts;
    opts.workers = 1;
    Runner runner(opts);
    runner.run(spec, &sink);
    return os.str();
}

/** One deterministic child execution stream per shard: jobs journal
 *  strictly in id order, which the crash-attribution tests rely on. */
ShardOptions
baseOptions(const std::string &dir)
{
    ShardOptions opts;
    opts.journalDir = dir;
    opts.checkpointEvery = 2;
    opts.runner.workers = 1;
    opts.onEvent = [](const std::string &) {}; // quiet tests
    return opts;
}

class SupervisorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/tmi_supervisor_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        _dir = tmpl;
    }

    void
    TearDown() override
    {
        std::error_code ec;
        fs::remove_all(_dir, ec);
    }

    std::string
    subdir(const char *name) const
    {
        return _dir + "/" + name;
    }

    std::string _dir;
};

/** Run @p spec under a supervisor; returns the merged CSV. */
std::string
supervisedCsv(const SweepSpec &spec, ShardOptions opts,
              ShardRunStats *statsOut = nullptr)
{
    std::ostringstream os;
    SweepCsvSink sink(os);
    ShardSupervisor supervisor(std::move(opts));
    ShardRunStats stats = supervisor.run(spec.expand(), &sink);
    if (statsOut)
        *statsOut = stats;
    return os.str();
}

/** Child-side attempt recorder: appends one "id\n" line per job
 *  attempt to @p path. The hook runs in the forked worker, so the
 *  only channel back to the test is the filesystem. */
std::function<void(const Job &, std::uint64_t, unsigned)>
attemptRecorder(const std::string &path)
{
    return [path](const Job &, std::uint64_t globalId, unsigned) {
        int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (fd >= 0) {
            char buf[32];
            int n = std::snprintf(buf, sizeof(buf), "%llu\n",
                                  static_cast<unsigned long long>(
                                      globalId));
            [[maybe_unused]] ssize_t w = ::write(fd, buf, n);
            ::close(fd);
        }
    };
}

std::set<std::uint64_t>
readAttempts(const std::string &path)
{
    std::set<std::uint64_t> ids;
    std::ifstream is(path);
    std::uint64_t id;
    while (is >> id)
        ids.insert(id);
    return ids;
}

} // namespace

TEST(ShardRangeTest, PartitionIsContiguousAndComplete)
{
    for (unsigned shards : {1u, 3u, 4u, 7u}) {
        std::uint64_t next = 0;
        for (unsigned s = 0; s < shards; ++s) {
            auto [begin, end] =
                ShardSupervisor::shardRange(10, shards, s);
            EXPECT_EQ(begin, next);
            EXPECT_GE(end, begin);
            next = end;
        }
        EXPECT_EQ(next, 10u);
    }
}

TEST_F(SupervisorTest, MergedCsvMatchesRunnerForAnyShardCount)
{
    SweepSpec spec = matrixSpec();
    std::string golden = runnerCsv(spec);

    ShardRunStats stats;
    EXPECT_EQ(
        supervisedCsv(spec, baseOptions(subdir("s1")), &stats),
        golden);
    EXPECT_EQ(stats.shards, 1u);
    EXPECT_TRUE(stats.allOk());

    ShardOptions four = baseOptions(subdir("s4"));
    four.shards = 4;
    EXPECT_EQ(supervisedCsv(spec, four, &stats), golden);
    EXPECT_EQ(stats.shards, 4u);
    EXPECT_TRUE(stats.allOk());
    EXPECT_EQ(stats.crashes, 0u);

    // More shards than jobs clamps to one job per shard.
    ShardOptions many = baseOptions(subdir("s64"));
    many.shards = 64;
    EXPECT_EQ(supervisedCsv(spec, many, &stats), golden);
    EXPECT_EQ(stats.shards, spec.matrixSize());
}

TEST_F(SupervisorTest, CrashedShardIsRequeuedNotLost)
{
    SweepSpec spec = matrixSpec();
    std::string golden = runnerCsv(spec);

    // Generation 0 of the owning shard aborts on job 3; the respawn
    // (generation 1) lets it through.
    ShardOptions opts = baseOptions(subdir("crash1"));
    opts.shards = 2;
    opts.childFaultHook = [](const Job &, std::uint64_t globalId,
                             unsigned generation) {
        if (globalId == 3 && generation == 0)
            std::abort();
    };

    ShardRunStats stats;
    std::string csv = supervisedCsv(spec, opts, &stats);
    EXPECT_EQ(csv, golden); // crash leaves no trace in the results
    EXPECT_EQ(stats.crashes, 1u);
    EXPECT_EQ(stats.respawns, 1u);
    EXPECT_EQ(stats.poisoned, 0u);
    EXPECT_TRUE(stats.allOk());
}

TEST_F(SupervisorTest, PoisonJobIsQuarantinedAfterSecondKill)
{
    SweepSpec spec = matrixSpec();

    // Job 3 kills its shard on every attempt, every generation.
    ShardOptions opts = baseOptions(subdir("poison"));
    opts.shards = 2;
    opts.killBudget = 2;
    opts.childFaultHook = [](const Job &, std::uint64_t globalId,
                             unsigned) {
        if (globalId == 3)
            std::abort();
    };

    ShardRunStats stats;
    std::string csv = supervisedCsv(spec, opts, &stats);
    EXPECT_EQ(stats.crashes, 2u);
    // One respawn between the kills; after the quarantine the shard
    // has nothing left and settles without a third generation.
    EXPECT_EQ(stats.respawns, 1u);
    EXPECT_EQ(stats.poisoned, 1u);
    EXPECT_EQ(stats.sweep.poisoned, 1u);
    EXPECT_EQ(stats.sweep.ok, spec.matrixSize() - 1);
    EXPECT_FALSE(stats.allOk());

    // The poison job appears in the CSV -- never silently dropped --
    // and every sibling row is byte-identical to the clean run.
    std::istringstream merged(csv), clean(runnerCsv(spec));
    std::string mline, cline;
    std::uint64_t row = 0, poisonRows = 0;
    while (std::getline(merged, mline) &&
           std::getline(clean, cline)) {
        if (row == 3 + 1) { // header + job id
            EXPECT_NE(mline.find(",poisoned,"), std::string::npos)
                << mline;
            ++poisonRows;
        } else {
            EXPECT_EQ(mline, cline) << "row " << row;
        }
        ++row;
    }
    EXPECT_EQ(row, spec.matrixSize() + 1);
    EXPECT_EQ(poisonRows, 1u);
}

TEST_F(SupervisorTest, ResumeRunsExactlyTheUnjournaledJobs)
{
    SweepSpec spec = matrixSpec();
    std::string golden = runnerCsv(spec);

    // Full 4-shard campaign (2 jobs per shard) into dir A.
    ShardOptions first = baseOptions(subdir("A"));
    first.shards = 4;
    EXPECT_EQ(supervisedCsv(spec, first), golden);

    // Simulate a supervisor killed mid-campaign by rebuilding dir B
    // from A with damaged journals:
    //   shard 0: complete          -> jobs 0,1 resumed
    //   shard 1: journal missing   -> jobs 2,3 re-run
    //   shard 2: torn mid-record   -> job 4 resumed, job 5 re-run
    //   shard 3: complete          -> jobs 6,7 resumed
    std::string dirB = subdir("B");
    fs::create_directories(dirB);
    fs::copy_file(subdir("A") + "/MANIFEST", dirB + "/MANIFEST");
    for (unsigned s : {0u, 2u, 3u}) {
        fs::copy_file(ShardSupervisor::journalPath(subdir("A"), s),
                      ShardSupervisor::journalPath(dirB, s));
    }
    std::string shard2 = ShardSupervisor::journalPath(dirB, 2);
    fs::resize_file(shard2, fs::file_size(shard2) - 5);

    ShardOptions resume = baseOptions(dirB);
    resume.shards = 2; // ignored: the manifest pins 4
    resume.resume = true;
    std::string attempts = dirB + "/attempts.txt";
    resume.childFaultHook = attemptRecorder(attempts);

    ShardRunStats stats;
    std::string csv = supervisedCsv(spec, resume, &stats);
    EXPECT_EQ(csv, golden); // byte-identical after kill + resume
    EXPECT_EQ(stats.shards, 4u);
    EXPECT_EQ(stats.resumedJobs, 5u);
    EXPECT_GE(stats.tornRecords, 1u);
    EXPECT_TRUE(stats.allOk());
    EXPECT_EQ(readAttempts(attempts),
              (std::set<std::uint64_t>{2, 3, 5}));
}

TEST_F(SupervisorTest, ResumeOfCompleteCampaignRerunsNothing)
{
    SweepSpec spec = matrixSpec();
    std::string golden = runnerCsv(spec);

    ShardOptions first = baseOptions(subdir("done"));
    first.shards = 2;
    EXPECT_EQ(supervisedCsv(spec, first), golden);

    ShardOptions again = baseOptions(subdir("done"));
    again.shards = 2;
    again.resume = true;
    std::string attempts = subdir("done") + "/attempts.txt";
    again.childFaultHook = attemptRecorder(attempts);

    ShardRunStats stats;
    EXPECT_EQ(supervisedCsv(spec, again, &stats), golden);
    EXPECT_EQ(stats.resumedJobs, spec.matrixSize());
    EXPECT_TRUE(readAttempts(attempts).empty());
}

TEST_F(SupervisorTest, FreshRunRefusesAUsedDirectory)
{
    SweepSpec spec = matrixSpec();
    ShardOptions first = baseOptions(subdir("used"));
    supervisedCsv(spec, first);

    ShardOptions second = baseOptions(subdir("used"));
    EXPECT_THROW(supervisedCsv(spec, second), std::runtime_error);
}

TEST_F(SupervisorTest, ResumeRefusesAMismatchedSpec)
{
    SweepSpec spec = matrixSpec();
    ShardOptions first = baseOptions(subdir("pin"));
    supervisedCsv(spec, first);

    SweepSpec other = matrixSpec();
    other.faultRates = {0.0, 0.25}; // different expansion
    ShardOptions resume = baseOptions(subdir("pin"));
    resume.resume = true;
    EXPECT_THROW(supervisedCsv(other, resume), std::runtime_error);
}

} // namespace tmi::driver
