/**
 * @file
 * The sweep driver's central invariant: output is byte-identical
 * whatever the worker count. Each job is a deterministic simulation
 * keyed by its config, and the sink sees results strictly in job-id
 * order -- so the full CSV from 1, 2 and 8 workers must compare equal
 * down to the last byte.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "driver/runner.hh"

namespace tmi::driver
{

namespace
{

SweepSpec
matrixSpec()
{
    SweepSpec spec;
    spec.workloads = {"histogramfs", "spinlockpool"};
    spec.treatments = {Treatment::Pthreads, Treatment::TmiProtect};
    spec.base.run.scale = 1;
    spec.base.run.analysisInterval = 300'000;
    spec.faultPoints = {"mem.frame_exhausted"};
    spec.faultRates = {0.0, 0.5};
    return spec;
}

std::string
sweepCsv(const SweepSpec &spec, unsigned workers)
{
    std::ostringstream os;
    SweepCsvSink sink(os);
    RunnerOptions opts;
    opts.workers = workers;
    Runner runner(opts);
    runner.run(spec, &sink);
    return os.str();
}

} // namespace

TEST(SweepDeterminism, CsvIsByteIdenticalAcrossWorkerCounts)
{
    SweepSpec spec = matrixSpec();
    std::string golden = sweepCsv(spec, 1);

    // The golden single-worker run must itself be complete.
    EXPECT_EQ(static_cast<std::uint64_t>(
                  std::count(golden.begin(), golden.end(), '\n')),
              spec.matrixSize() + 1);

    EXPECT_EQ(sweepCsv(spec, 2), golden);
    EXPECT_EQ(sweepCsv(spec, 8), golden);
}

TEST(SweepDeterminism, ResultsArriveInJobIdOrder)
{
    SweepSpec spec = matrixSpec();
    std::uint64_t expected = 0;
    bool ordered = true;
    FunctionSink sink([&](const JobResult &r) {
        ordered = ordered && r.job.id == expected;
        ++expected;
    });
    RunnerOptions opts;
    opts.workers = 4;
    Runner runner(opts);
    std::vector<JobResult> results = runner.run(spec, &sink);
    EXPECT_TRUE(ordered);
    EXPECT_EQ(expected, spec.matrixSize());
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i].job.id, i);
}

TEST(SweepDeterminism, RepeatedSweepsAgreeRunForRun)
{
    // Two sweeps of the same spec on different worker counts agree
    // not just on bytes but on the measured simulated cycles.
    SweepSpec spec = matrixSpec();
    RunnerOptions oa, ob;
    oa.workers = 1;
    ob.workers = 3;
    Runner a(oa), b(ob);
    std::vector<JobResult> ra = a.run(spec);
    std::vector<JobResult> rb = b.run(spec);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].status, rb[i].status);
        EXPECT_EQ(ra[i].run.cycles, rb[i].run.cycles);
        EXPECT_EQ(ra[i].run.hitmEvents, rb[i].run.hitmEvents);
        EXPECT_EQ(ra[i].run.faultFires, rb[i].run.faultFires);
    }
}

} // namespace tmi::driver
