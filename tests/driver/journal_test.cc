/**
 * @file
 * Journal format tests: encode/decode round-trips, CRC rejection of
 * torn and corrupted tails, truncated-checkpoint recovery, and the
 * writer's reopen-truncate-append contract. The journal is the
 * supervisor's source of truth, so these run against raw files with
 * hand-made damage, not through the orchestration layer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "driver/journal.hh"

namespace tmi::driver
{

namespace
{

namespace fs = std::filesystem;

class JournalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/tmi_journal_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        _dir = tmpl;
        _path = _dir + "/shard-000.journal";
    }

    void
    TearDown() override
    {
        std::error_code ec;
        fs::remove_all(_dir, ec);
    }

    std::string _dir;
    std::string _path;
};

/** A record with every field class populated (strings, doubles,
 *  flags, counters) so round-trips cover the whole codec. */
JournalRecord
sampleRecord(std::uint64_t id)
{
    JournalRecord rec;
    rec.jobId = id;
    rec.status = id % 2 ? JobStatus::Failed : JobStatus::Ok;
    rec.attempts = static_cast<unsigned>(1 + id % 3);
    rec.error = id % 2 ? "some, error\nwith noise" : "";
    rec.run.workload = "histogramfs";
    rec.run.treatment = Treatment::TmiProtect;
    rec.run.outcome = RunOutcome::Completed;
    rec.run.valid = true;
    rec.run.compatible = true;
    rec.run.resultDigest = 0xdeadbeef00ull + id;
    rec.run.cycles = 123456789 + id;
    rec.run.seconds = 0.125 * static_cast<double>(id + 1);
    rec.run.hitmEvents = 42 + id;
    rec.run.pebsRecords = 7;
    rec.run.fsEventsEstimated = 3.5;
    rec.run.ladderRung = "detect-and-repair";
    rec.run.faultFires = id;
    rec.run.watchdogFlushes = 2;
    rec.run.invariantViolations = 0;
    return rec;
}

void
expectEqual(const JournalRecord &a, const JournalRecord &b)
{
    EXPECT_EQ(a.jobId, b.jobId);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.run.workload, b.run.workload);
    EXPECT_EQ(a.run.treatment, b.run.treatment);
    EXPECT_EQ(a.run.outcome, b.run.outcome);
    EXPECT_EQ(a.run.valid, b.run.valid);
    EXPECT_EQ(a.run.resultDigest, b.run.resultDigest);
    EXPECT_EQ(a.run.cycles, b.run.cycles);
    EXPECT_EQ(a.run.seconds, b.run.seconds);
    EXPECT_EQ(a.run.hitmEvents, b.run.hitmEvents);
    EXPECT_EQ(a.run.fsEventsEstimated, b.run.fsEventsEstimated);
    EXPECT_EQ(a.run.ladderRung, b.run.ladderRung);
    EXPECT_EQ(a.run.faultFires, b.run.faultFires);
    EXPECT_EQ(a.run.watchdogFlushes, b.run.watchdogFlushes);
}

/** Write @p n sample records through the writer and close. */
void
writeJournal(const std::string &path, std::uint64_t n,
             std::uint64_t checkpointEvery = 2)
{
    JournalWriter w(path, checkpointEvery);
    ASSERT_TRUE(w.open()) << w.lastError();
    for (std::uint64_t i = 0; i < n; ++i)
        ASSERT_TRUE(w.append(sampleRecord(i)));
    w.close();
}

std::uint64_t
fileSize(const std::string &path)
{
    return static_cast<std::uint64_t>(fs::file_size(path));
}

} // namespace

TEST_F(JournalTest, EncodeDecodeRoundTrip)
{
    JournalRecord rec = sampleRecord(17);
    std::string payload = encodeRecord(rec);
    JournalRecord back;
    ASSERT_TRUE(decodeRecord(payload, back));
    expectEqual(back, rec);
}

TEST_F(JournalTest, DecodeRejectsShortAndPaddedPayloads)
{
    std::string payload = encodeRecord(sampleRecord(3));
    JournalRecord out;
    EXPECT_FALSE(decodeRecord(payload.substr(0, 10), out));
    EXPECT_FALSE(decodeRecord(payload + "x", out));
    EXPECT_FALSE(decodeRecord("", out));
}

TEST_F(JournalTest, WriteThenRecoverRoundTrips)
{
    writeJournal(_path, 5);
    JournalRecovery rec = recoverJournal(_path);
    EXPECT_TRUE(rec.existed);
    EXPECT_EQ(rec.tornBytes, 0u);
    ASSERT_EQ(rec.records.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        expectEqual(rec.records[i], sampleRecord(i));
}

TEST_F(JournalTest, MissingJournalRecoversEmpty)
{
    JournalRecovery rec = recoverJournal(_path);
    EXPECT_FALSE(rec.existed);
    EXPECT_TRUE(rec.records.empty());
    EXPECT_EQ(rec.validBytes, 0u);
}

TEST_F(JournalTest, TornTailIsDroppedNotInterpreted)
{
    writeJournal(_path, 3);
    std::uint64_t clean = fileSize(_path);
    {
        // A crash mid-append: garbage that never got its frame.
        std::ofstream os(_path, std::ios::app | std::ios::binary);
        os << "\x13\x00\x00\x00gargbage-torn-tail";
    }
    JournalRecovery rec = recoverJournal(_path);
    ASSERT_EQ(rec.records.size(), 3u);
    EXPECT_EQ(rec.validBytes, clean);
    EXPECT_GT(rec.tornBytes, 0u);
}

TEST_F(JournalTest, TruncatedMidRecordDropsOnlyTheTornRecord)
{
    writeJournal(_path, 3);
    fs::resize_file(_path, fileSize(_path) - 5);
    JournalRecovery rec = recoverJournal(_path);
    ASSERT_EQ(rec.records.size(), 2u);
    expectEqual(rec.records[1], sampleRecord(1));
    EXPECT_GT(rec.tornBytes, 0u);
}

TEST_F(JournalTest, CorruptedPayloadByteFailsItsCrc)
{
    writeJournal(_path, 3);
    // Flip one byte inside the middle record's payload.
    std::fstream f(_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    std::uint64_t frame0_end = 0;
    {
        JournalRecovery rec = recoverJournal(_path);
        ASSERT_EQ(rec.records.size(), 3u);
        // Offset of record 1's payload: scan reports frame starts.
        std::uint64_t offset1 = 0;
        int seen = 0;
        scanJournal(_path, [&](const JournalRecord &,
                               std::uint64_t off) {
            if (seen++ == 1)
                offset1 = off;
        });
        frame0_end = offset1;
    }
    f.seekp(static_cast<std::streamoff>(frame0_end + 8 + 4));
    f.put('\xff');
    f.close();

    // Recovery keeps the valid prefix (record 0) and drops the
    // corrupt record *and everything after it*: a CRC break means
    // the file can no longer be trusted past that point.
    JournalRecovery rec = recoverJournal(_path);
    ASSERT_EQ(rec.records.size(), 1u);
    expectEqual(rec.records[0], sampleRecord(0));
    EXPECT_GT(rec.tornBytes, 0u);
}

TEST_F(JournalTest, ForeignFileRecoversAsFullyTorn)
{
    {
        std::ofstream os(_path, std::ios::binary);
        os << "not a journal at all, just some text\n";
    }
    JournalRecovery rec = recoverJournal(_path);
    EXPECT_TRUE(rec.existed);
    EXPECT_TRUE(rec.records.empty());
    EXPECT_EQ(rec.validBytes, 0u);
    EXPECT_GT(rec.tornBytes, 0u);
}

TEST_F(JournalTest, ReopenTruncatesTornTailBeforeAppending)
{
    writeJournal(_path, 2);
    std::uint64_t clean = fileSize(_path);
    {
        std::ofstream os(_path, std::ios::app | std::ios::binary);
        os << "torn";
    }
    JournalWriter w(_path, 1);
    ASSERT_TRUE(w.open());
    EXPECT_EQ(w.recovered().records.size(), 2u);
    EXPECT_EQ(fileSize(_path), clean); // tail gone before append
    ASSERT_TRUE(w.append(sampleRecord(2)));
    w.close();

    JournalRecovery rec = recoverJournal(_path);
    ASSERT_EQ(rec.records.size(), 3u);
    expectEqual(rec.records[2], sampleRecord(2));
    EXPECT_EQ(rec.tornBytes, 0u);
}

TEST_F(JournalTest, StaleCheckpointIsAdvisoryOnly)
{
    // Checkpoint meta claims 4 records; the journal then loses two
    // (disk rollback / truncation after the checkpoint was cut).
    writeJournal(_path, 4, /*checkpointEvery=*/1);
    JournalRecovery before = recoverJournal(_path);
    ASSERT_EQ(before.records.size(), 4u);
    // Truncate to exactly two records' worth of bytes.
    std::uint64_t offset2 = 0;
    int seen = 0;
    scanJournal(_path, [&](const JournalRecord &, std::uint64_t off) {
        if (seen++ == 2)
            offset2 = off;
    });
    fs::resize_file(_path, offset2);

    JournalRecovery rec = recoverJournal(_path);
    ASSERT_EQ(rec.records.size(), 2u);
    EXPECT_TRUE(rec.checkpointStale);
    EXPECT_EQ(rec.tornBytes, 0u); // clean cut, just shorter

    // And the writer resumes from the scan, not the stale meta.
    JournalWriter w(_path, 1);
    ASSERT_TRUE(w.open());
    EXPECT_EQ(w.recordCount(), 2u);
    w.close();
}

TEST_F(JournalTest, ReadRecordAtRandomAccess)
{
    writeJournal(_path, 4);
    std::vector<std::uint64_t> offsets;
    scanJournal(_path, [&](const JournalRecord &, std::uint64_t off) {
        offsets.push_back(off);
    });
    ASSERT_EQ(offsets.size(), 4u);
    JournalRecord rec;
    ASSERT_TRUE(readRecordAt(_path, offsets[2], rec));
    expectEqual(rec, sampleRecord(2));
    EXPECT_FALSE(readRecordAt(_path, offsets[2] + 1, rec));
}

TEST_F(JournalTest, CheckpointMetaIsPublishedAtomically)
{
    JournalWriter w(_path, 2);
    ASSERT_TRUE(w.open());
    ASSERT_TRUE(w.append(sampleRecord(0)));
    // Below the cadence: no checkpoint yet.
    EXPECT_FALSE(fs::exists(JournalWriter::checkpointPath(_path)));
    ASSERT_TRUE(w.append(sampleRecord(1)));
    EXPECT_TRUE(fs::exists(JournalWriter::checkpointPath(_path)));
    // The tempfile must never linger.
    EXPECT_FALSE(
        fs::exists(JournalWriter::checkpointPath(_path) + ".tmp"));
    w.close();
}

} // namespace tmi::driver
