/**
 * @file
 * Unit tests for the layout-plan text format and lowering: plans
 * round-trip byte-for-byte (parse(write(p)) == p), malformed text is
 * rejected with a located error, and lowering produces the segment
 * tables the replay machine installs.
 */

#include <gtest/gtest.h>

#include "staticrepair/layout_plan.hh"

namespace tmi::staticrepair
{

namespace
{

LayoutPlan
samplePlan()
{
    LayoutPlan plan;
    PlanSite pad;
    pad.key = "a0";
    pad.bytes = 100;
    pad.kind = RepairKind::Pad;
    plan.sites.push_back(pad);

    PlanSite split;
    split.key = "counts#2";
    split.bytes = 12296;
    split.kind = RepairKind::Split;
    split.cuts = {3080, 6152, 9224};
    plan.sites.push_back(split);

    PlanSite spread;
    spread.key = "spinlock.pool";
    spread.bytes = 172;
    spread.kind = RepairKind::Spread;
    spread.arrayBase = 8;
    spread.arrayStride = 4;
    spread.arrayCount = 41;
    plan.sites.push_back(spread);
    return plan;
}

} // namespace

TEST(LayoutPlanText, RoundTripIsIdentity)
{
    LayoutPlan plan = samplePlan();
    std::string text = writePlan(plan);

    LayoutPlan back;
    std::string err;
    ASSERT_TRUE(parsePlan(text, back, err)) << err;
    EXPECT_EQ(plan, back);
    // And the text itself is a fixed point.
    EXPECT_EQ(writePlan(back), text);
}

TEST(LayoutPlanText, EmptyPlanRoundTrips)
{
    LayoutPlan plan;
    LayoutPlan back;
    std::string err;
    ASSERT_TRUE(parsePlan(writePlan(plan), back, err)) << err;
    EXPECT_EQ(plan, back);
}

TEST(LayoutPlanText, CommentsAndBlankLinesIgnored)
{
    std::string text = "# a golden plan\n"
                       "tmi-layout-plan v1\n"
                       "\n"
                       "# the hot site\n"
                       "site a0 bytes 100 pad\n"
                       "end\n";
    LayoutPlan plan;
    std::string err;
    ASSERT_TRUE(parsePlan(text, plan, err)) << err;
    ASSERT_EQ(plan.sites.size(), 1u);
    EXPECT_EQ(plan.sites[0].key, "a0");
    EXPECT_EQ(plan.sites[0].kind, RepairKind::Pad);
}

TEST(LayoutPlanText, RejectsMalformedInput)
{
    LayoutPlan plan;
    std::string err;
    // No header.
    EXPECT_FALSE(parsePlan("site a0 bytes 8 pad\nend\n", plan, err));
    // Wrong version.
    EXPECT_FALSE(parsePlan("tmi-layout-plan v9\nend\n", plan, err));
    // Missing end terminator.
    EXPECT_FALSE(parsePlan("tmi-layout-plan v1\n", plan, err));
    // Unknown directive.
    EXPECT_FALSE(parsePlan(
        "tmi-layout-plan v1\nsite a0 bytes 8 shuffle\nend\n", plan,
        err));
    // Cuts must be strictly increasing and interior.
    EXPECT_FALSE(parsePlan(
        "tmi-layout-plan v1\nsite a0 bytes 64 split 32 32\nend\n",
        plan, err));
    EXPECT_FALSE(parsePlan(
        "tmi-layout-plan v1\nsite a0 bytes 64 split 64\nend\n", plan,
        err));
    EXPECT_FALSE(parsePlan(
        "tmi-layout-plan v1\nsite a0 bytes 64 split 0\nend\n", plan,
        err));
    // Spread geometry must fit the allocation.
    EXPECT_FALSE(parsePlan(
        "tmi-layout-plan v1\nsite a0 bytes 64 spread 0 8 9\nend\n",
        plan, err));
    // Trailing garbage after a well-formed line.
    EXPECT_FALSE(parsePlan(
        "tmi-layout-plan v1\nsite a0 bytes 8 pad extra\nend\n", plan,
        err));
    EXPECT_FALSE(err.empty());
}

TEST(LayoutPlanLowering, PadAlignsAndRounds)
{
    PlanSite site;
    site.key = "a0";
    site.bytes = 100;
    site.kind = RepairKind::Pad;
    LoweredSite low = lowerSite(site);
    EXPECT_TRUE(low.segments.empty());
    EXPECT_EQ(low.newBytes, 128u);
    EXPECT_EQ(low.alignment, lineBytes);
}

TEST(LayoutPlanLowering, SplitShiftsLaterParts)
{
    PlanSite site;
    site.key = "a0";
    site.bytes = 200;
    site.kind = RepairKind::Split;
    site.cuts = {100};
    LoweredSite low = lowerSite(site);
    // Part 0 keeps offset 0 (no segment); part 1 moves from 100 to
    // the next line boundary, 128.
    ASSERT_EQ(low.segments.size(), 1u);
    EXPECT_EQ(low.segments[0].begin, 100u);
    EXPECT_EQ(low.segments[0].end, 200u);
    EXPECT_EQ(low.segments[0].shift, 28);
    EXPECT_EQ(low.newBytes, 256u);
}

TEST(LayoutPlanLowering, SpreadPlacesOneElementPerLine)
{
    PlanSite site;
    site.key = "pool";
    site.bytes = 172;
    site.kind = RepairKind::Spread;
    site.arrayBase = 8;
    site.arrayStride = 4;
    site.arrayCount = 41;
    LoweredSite low = lowerSite(site);
    ASSERT_EQ(low.segments.size(), 41u);
    // Element i: [8 + 4i, 12 + 4i) -> 64 + 64i.
    for (std::uint64_t i = 0; i < 41; ++i) {
        EXPECT_EQ(low.segments[i].begin, 8 + 4 * i);
        EXPECT_EQ(low.segments[i].end, 12 + 4 * i);
        EXPECT_EQ(static_cast<std::uint64_t>(
                      low.segments[i].begin + low.segments[i].shift),
                  64 + 64 * i);
    }
    EXPECT_GE(low.newBytes, 64 + 41 * 64u);
}

TEST(LayoutPlanLowering, RedirectedSiteCountSkipsPads)
{
    LayoutPlan plan = samplePlan();
    // Pad installs no segments; split and spread do.
    EXPECT_EQ(redirectedSiteCount(plan), 2u);
}

} // namespace tmi::staticrepair
