/**
 * @file
 * Unit tests for the layout planner: directive choice, PEBS-noise
 * filtering, and determinism (same profile -> byte-identical plan).
 */

#include <gtest/gtest.h>

#include "staticrepair/planner.hh"

namespace tmi::staticrepair
{

namespace
{

/** A site where @p threads each hammer their own @p widthBytes
 *  partition of a @p bytes blob, @p samples times per signature. */
SiteProfile
partitionedSite(const std::string &key, unsigned threads,
                std::uint64_t bytes, std::uint64_t samples)
{
    SiteProfile site;
    site.key = key;
    site.bytes = bytes;
    site.fsEvents = 10'000;
    std::uint64_t part = bytes / threads;
    for (unsigned t = 0; t < threads; ++t) {
        site.accesses.push_back(
            {static_cast<ThreadId>(t + 2), t * part, 8, true,
             samples});
        site.accesses.push_back(
            {static_cast<ThreadId>(t + 2), t * part + part - 8, 8,
             false, samples});
    }
    return site;
}

} // namespace

TEST(Planner, DisjointRangesSplit)
{
    LayoutProfile profile;
    profile.sites.push_back(partitionedSite("a0", 4, 4096, 50));
    LayoutPlan plan = LayoutPlanner().plan(profile);
    ASSERT_EQ(plan.sites.size(), 1u);
    EXPECT_EQ(plan.sites[0].kind, RepairKind::Split);
    EXPECT_EQ(plan.sites[0].cuts,
              (std::vector<std::uint64_t>{1024, 2048, 3072}));
}

TEST(Planner, NoiseStraysDoNotBreakSplit)
{
    LayoutProfile profile;
    SiteProfile site = partitionedSite("a0", 4, 4096, 50);
    // A PEBS skid stray: thread 5 appears once inside thread 4's
    // partition. One sample out of 50 is far below the noise floor.
    site.accesses.push_back({5, 2100, 8, false, 1});
    profile.sites.push_back(site);
    LayoutPlan plan = LayoutPlanner().plan(profile);
    ASSERT_EQ(plan.sites.size(), 1u);
    EXPECT_EQ(plan.sites[0].kind, RepairKind::Split);
    EXPECT_EQ(plan.sites[0].cuts,
              (std::vector<std::uint64_t>{1024, 2048, 3072}));
}

TEST(Planner, OverlappingRangesFallBackToPad)
{
    LayoutProfile profile;
    SiteProfile site;
    site.key = "a0";
    site.bytes = 256;
    site.fsEvents = 10'000;
    // Two threads interleave over the same bytes: no clean cut.
    site.accesses.push_back({2, 0, 8, true, 40});
    site.accesses.push_back({2, 128, 8, true, 40});
    site.accesses.push_back({3, 64, 8, true, 40});
    site.accesses.push_back({3, 192, 8, true, 40});
    profile.sites.push_back(site);
    LayoutPlan plan = LayoutPlanner().plan(profile);
    ASSERT_EQ(plan.sites.size(), 1u);
    EXPECT_EQ(plan.sites[0].kind, RepairKind::Pad);
    EXPECT_TRUE(plan.sites[0].cuts.empty());
}

TEST(Planner, DeclaredGeometryWinsAsSpread)
{
    LayoutProfile profile;
    SiteProfile site = partitionedSite("pool", 4, 164, 50);
    site.hasGeometry = true;
    site.geometry = {0, 4, 41};
    profile.sites.push_back(site);
    LayoutPlan plan = LayoutPlanner().plan(profile);
    ASSERT_EQ(plan.sites.size(), 1u);
    EXPECT_EQ(plan.sites[0].kind, RepairKind::Spread);
    EXPECT_EQ(plan.sites[0].arrayStride, 4u);
    EXPECT_EQ(plan.sites[0].arrayCount, 41u);
}

TEST(Planner, ColdSitesAreSkipped)
{
    LayoutProfile profile;
    SiteProfile site = partitionedSite("a0", 4, 4096, 50);
    site.fsEvents = 10; // below minSiteFsEvents
    profile.sites.push_back(site);
    EXPECT_TRUE(LayoutPlanner().plan(profile).sites.empty());
}

TEST(Planner, OversizedExpansionFallsBackToPad)
{
    PlannerConfig cfg;
    cfg.maxSiteBytes = 8192;
    LayoutProfile profile;
    SiteProfile site = partitionedSite("pool", 4, 4096, 50);
    // Spreading 1024 elements over a line each would need 64 KiB;
    // the cap forces plain padding instead.
    site.hasGeometry = true;
    site.geometry = {0, 4, 1024};
    profile.sites.push_back(site);
    LayoutPlan plan = LayoutPlanner(cfg).plan(profile);
    ASSERT_EQ(plan.sites.size(), 1u);
    EXPECT_EQ(plan.sites[0].kind, RepairKind::Pad);
}

TEST(Planner, SameProfileYieldsByteIdenticalPlan)
{
    LayoutProfile profile;
    profile.sites.push_back(partitionedSite("a0", 4, 4096, 50));
    SiteProfile pool = partitionedSite("pool", 2, 164, 30);
    pool.hasGeometry = true;
    pool.geometry = {0, 4, 41};
    profile.sites.push_back(pool);

    std::string first = writePlan(LayoutPlanner().plan(profile));
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(writePlan(LayoutPlanner().plan(profile)), first);
    EXPECT_FALSE(first.empty());
}

} // namespace tmi::staticrepair
