/**
 * @file
 * Unit tests for the plan applier: plan-directed placement preserves
 * program semantics under both allocators, installs redirection only
 * for matching sites, and tears segments down on free.
 */

#include <gtest/gtest.h>

#include "staticrepair/applier.hh"

namespace tmi::staticrepair
{

namespace
{

class ApplierTest : public ::testing::TestWithParam<AllocatorKind>
{
  protected:
    ApplierTest()
    {
        MachineConfig mc;
        mc.allocator = GetParam();
        machine = std::make_unique<Machine>(mc);
        pc_load = machine->instructions().define("t.load",
                                                 MemKind::Load, 8);
        pc_store = machine->instructions().define("t.store",
                                                  MemKind::Store, 8);
    }

    RunOutcome
    runAs(std::function<void(ThreadApi &)> fn)
    {
        machine->spawnThread("test", std::move(fn));
        return machine->sched().run(10'000'000'000ULL);
    }

    std::unique_ptr<Machine> machine;
    Addr pc_load = 0, pc_store = 0;
};

LayoutPlan
splitPlan(const std::string &key, std::uint64_t bytes,
          std::uint64_t cut)
{
    LayoutPlan plan;
    PlanSite site;
    site.key = key;
    site.bytes = bytes;
    site.kind = RepairKind::Split;
    site.cuts = {cut};
    plan.sites.push_back(site);
    return plan;
}

} // namespace

TEST_P(ApplierTest, SemanticsPreservedAcrossTheCut)
{
    PlanApplier applier(*machine, splitPlan("blob", 200, 100));
    machine->setAllocHook(&applier);

    RunOutcome out = runAs([&](ThreadApi &api) {
        Addr a = api.mallocAt("blob", 200);
        // Straddle both parts, including bytes adjacent to the cut.
        for (Addr off : {0, 48, 92, 100, 112, 192}) {
            api.store(pc_store, a + off, 0xbeef0000 + off);
        }
        for (Addr off : {0, 48, 92, 100, 112, 192}) {
            EXPECT_EQ(api.load(pc_load, a + off), 0xbeef0000 + off);
        }
        api.free(a);
    });
    EXPECT_EQ(out, RunOutcome::Completed);
    EXPECT_EQ(applier.appliedSites(), 1u);
    EXPECT_EQ(applier.redirectedSites(), 1u);
    // Split 200 at 100: part 1 moves from 100 to 128, total 256.
    EXPECT_EQ(applier.paddingBytes(), 56u);
}

TEST_P(ApplierTest, RedirectionActuallySeparatesTheParts)
{
    PlanApplier applier(*machine, splitPlan("blob", 200, 100));
    machine->setAllocHook(&applier);

    runAs([&](ThreadApi &api) {
        Addr a = api.mallocAt("blob", 200);
        bool hit = false;
        // Offset 99 stays put; offset 100 lands on the next line.
        Addr p0 = machine->staticLayout().redirect(a + 99, hit);
        EXPECT_FALSE(hit);
        EXPECT_EQ(p0, a + 99);
        Addr p1 = machine->staticLayout().redirect(a + 100, hit);
        EXPECT_TRUE(hit);
        EXPECT_EQ(p1, a + 128);
        EXPECT_NE(lineNumber(p0), lineNumber(p1));
        api.free(a);
    });
}

TEST_P(ApplierTest, BulkOpsRoundTripThroughRedirection)
{
    PlanApplier applier(*machine, splitPlan("blob", 200, 100));
    machine->setAllocHook(&applier);

    RunOutcome out = runAs([&](ThreadApi &api) {
        Addr a = api.mallocAt("blob", 200);
        std::vector<std::uint8_t> in(200);
        for (std::size_t i = 0; i < in.size(); ++i)
            in[i] = static_cast<std::uint8_t>(i * 7 + 3);
        api.writeBuf(a, in.data(), in.size());
        std::vector<std::uint8_t> back(200);
        api.readBuf(a, back.data(), back.size());
        EXPECT_EQ(in, back);
        api.free(a);
    });
    EXPECT_EQ(out, RunOutcome::Completed);
}

TEST_P(ApplierTest, FreeRemovesSegments)
{
    PlanApplier applier(*machine, splitPlan("blob", 200, 100));
    machine->setAllocHook(&applier);

    runAs([&](ThreadApi &api) {
        Addr a = api.mallocAt("blob", 200);
        EXPECT_FALSE(machine->staticLayout().empty());
        api.free(a);
        EXPECT_TRUE(machine->staticLayout().empty());
    });
}

TEST_P(ApplierTest, NonMatchingSizeDeclines)
{
    PlanApplier applier(*machine, splitPlan("blob", 200, 100));
    machine->setAllocHook(&applier);

    runAs([&](ThreadApi &api) {
        // Same site, different size: the plan is stale for this
        // allocation and must leave it alone.
        Addr a = api.mallocAt("blob", 300);
        EXPECT_TRUE(machine->staticLayout().empty());
        api.store(pc_store, a, 42);
        EXPECT_EQ(api.load(pc_load, a), 42u);
        api.free(a);
    });
    EXPECT_EQ(applier.appliedSites(), 0u);
}

TEST_P(ApplierTest, SpreadSeparatesArrayElements)
{
    LayoutPlan plan;
    PlanSite site;
    site.key = "pool";
    site.bytes = 172;
    site.kind = RepairKind::Spread;
    site.arrayBase = 8;
    site.arrayStride = 4;
    site.arrayCount = 41;
    plan.sites.push_back(site);
    PlanApplier applier(*machine, plan);
    machine->setAllocHook(&applier);

    runAs([&](ThreadApi &api) {
        Addr a = api.mallocAt("pool", 172);
        bool hit = false;
        Addr e0 = machine->staticLayout().redirect(a + 8, hit);
        Addr e1 = machine->staticLayout().redirect(a + 12, hit);
        // Adjacent 4-byte elements land one line apart.
        EXPECT_EQ(e1 - e0, static_cast<Addr>(lineBytes));
        EXPECT_NE(lineNumber(e0), lineNumber(e1));
        api.free(a);
    });
}

INSTANTIATE_TEST_SUITE_P(BothAllocators, ApplierTest,
                         ::testing::Values(AllocatorKind::Lockless,
                                           AllocatorKind::GlibcLike),
                         [](const auto &info) {
                             return info.param ==
                                            AllocatorKind::Lockless
                                        ? "lockless"
                                        : "glibc_like";
                         });

} // namespace tmi::staticrepair
