/**
 * @file
 * Unit tests for the two allocators' layout and cost policies.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "alloc/glibc_like.hh"
#include "alloc/lockless.hh"

namespace tmi
{

namespace
{

/** Minimal provider: a bump pointer plus a cycle ledger. */
class FakeProvider : public MemoryProvider
{
  public:
    Addr
    sbrk(std::uint64_t bytes) override
    {
        Addr r = _brk;
        _brk += roundUp(bytes, smallPageBytes);
        return r;
    }

    void
    chargeCycles(ThreadId tid, Cycles cycles) override
    {
        (void)tid;
        charged += cycles;
    }

    Cycles charged = 0;

  private:
    Addr _brk = 0x10000000;
};

bool
sameLine(Addr a, Addr b)
{
    return lineNumber(a) == lineNumber(b);
}

} // namespace

TEST(Lockless, DistinctThreadsGetDistinctSlabs)
{
    FakeProvider prov;
    LocklessAllocator alloc(prov);
    Addr a = alloc.malloc(0, 64);
    Addr b = alloc.malloc(1, 64);
    // Different threads' small objects never share a cache line.
    EXPECT_FALSE(sameLine(a, b));
}

TEST(Lockless, SmallObjectsSameThreadPack)
{
    FakeProvider prov;
    LocklessAllocator alloc(prov);
    Addr a = alloc.malloc(0, 16);
    Addr b = alloc.malloc(0, 16);
    EXPECT_NE(a, b);
    EXPECT_LT(std::max(a, b) - std::min(a, b), 64 * 1024u);
}

TEST(Lockless, FreeRecyclesToSameThread)
{
    FakeProvider prov;
    LocklessAllocator alloc(prov);
    Addr a = alloc.malloc(0, 128);
    alloc.free(0, a);
    Addr b = alloc.malloc(0, 128);
    EXPECT_EQ(a, b);
}

TEST(Lockless, LargeAllocationsAreLineAligned)
{
    FakeProvider prov;
    LocklessAllocator alloc(prov);
    Addr a = alloc.malloc(0, 100000);
    EXPECT_EQ(a % lineBytes, 0u);
}

TEST(Lockless, ForceMisalignSkewsLargeAllocations)
{
    FakeProvider prov;
    LocklessConfig cfg;
    cfg.forceMisalign = true;
    LocklessAllocator alloc(prov, cfg);
    Addr a = alloc.malloc(0, 100000);
    EXPECT_EQ(a % lineBytes, 8u);
}

TEST(Lockless, MinSmallBytesSeparatesTinyObjects)
{
    FakeProvider prov;
    LocklessConfig cfg;
    cfg.minSmallBytes = lineBytes; // Tmi's modified allocator
    LocklessAllocator alloc(prov, cfg);
    Addr a = alloc.malloc(0, 32);
    Addr b = alloc.malloc(0, 32);
    EXPECT_FALSE(sameLine(a, b));
}

TEST(Lockless, DefaultTinyObjectsCanShareALine)
{
    FakeProvider prov;
    LocklessAllocator alloc(prov);
    // 32-byte class: two objects per line. Grab several and check
    // at least one adjacent pair shares a line (the lu-ncb bug).
    std::vector<Addr> addrs;
    for (int i = 0; i < 8; ++i)
        addrs.push_back(alloc.malloc(0, 32));
    bool shared = false;
    for (std::size_t i = 0; i + 1 < addrs.size(); ++i)
        shared |= sameLine(addrs[i], addrs[i + 1]);
    EXPECT_TRUE(shared);
}

TEST(Lockless, MemalignHonorsAlignment)
{
    FakeProvider prov;
    LocklessAllocator alloc(prov);
    for (Addr align : {64ull, 256ull, 4096ull}) {
        Addr a = alloc.memalign(0, align, 100);
        EXPECT_EQ(a % align, 0u);
    }
}

TEST(Lockless, StatsTrackLiveBytes)
{
    FakeProvider prov;
    LocklessAllocator alloc(prov);
    Addr a = alloc.malloc(0, 1000);
    EXPECT_EQ(alloc.allocStats().bytesLive, 1000u);
    alloc.free(0, a);
    EXPECT_EQ(alloc.allocStats().bytesLive, 0u);
    EXPECT_EQ(alloc.allocStats().bytesPeak, 1000u);
}

TEST(GlibcLike, AdjacentAllocationsPackAcrossThreads)
{
    FakeProvider prov;
    GlibcLikeAllocator alloc(prov);
    Addr a = alloc.malloc(0, 24);
    Addr b = alloc.malloc(1, 24);
    // Sequential carving: different threads' objects are adjacent
    // and share a cache line.
    EXPECT_TRUE(sameLine(a, b) ||
                std::max(a, b) - std::min(a, b) < 2 * lineBytes);
}

TEST(GlibcLike, AllocationsAreNotLineAligned)
{
    FakeProvider prov;
    GlibcLikeAllocator alloc(prov);
    Addr a = alloc.malloc(0, 4096);
    EXPECT_NE(a % lineBytes, 0u);
}

TEST(GlibcLike, FreeListReuse)
{
    FakeProvider prov;
    GlibcLikeAllocator alloc(prov);
    Addr a = alloc.malloc(0, 48);
    alloc.free(0, a);
    Addr b = alloc.malloc(1, 48);
    EXPECT_EQ(a, b);
}

TEST(GlibcLike, AlternatingThreadsPayContention)
{
    FakeProvider prov;
    GlibcLikeAllocator alloc(prov);
    alloc.malloc(0, 64);
    Cycles before = prov.charged;
    alloc.malloc(0, 64);
    Cycles same_thread = prov.charged - before;
    before = prov.charged;
    alloc.malloc(1, 64);
    Cycles cross_thread = prov.charged - before;
    EXPECT_GT(cross_thread, same_thread);
}

TEST(GlibcLike, LocklessIsCheaperPerOp)
{
    FakeProvider p1, p2;
    LocklessAllocator fast(p1);
    GlibcLikeAllocator slow(p2);
    // Alternating-thread allocation storm (the pattern where the
    // paper's 16% gap comes from).
    for (int i = 0; i < 1000; ++i) {
        fast.malloc(i % 4, 64);
        slow.malloc(i % 4, 64);
    }
    EXPECT_LT(p1.charged, p2.charged);
}

TEST(GlibcLike, MemalignHonorsAlignment)
{
    FakeProvider prov;
    GlibcLikeAllocator alloc(prov);
    Addr a = alloc.memalign(0, 4096, 100);
    EXPECT_EQ(a % 4096, 0u);
}

} // namespace tmi
