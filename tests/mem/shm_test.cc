/**
 * @file
 * Unit tests for shared-memory regions and address-space basics.
 */

#include <gtest/gtest.h>

#include "mem/address_space.hh"
#include "mem/shm.hh"

namespace tmi
{

TEST(ShmRegion, GrowAllocatesFreshFrames)
{
    PhysicalMemory phys(smallPageShift);
    ShmRegion region("r", phys);
    EXPECT_EQ(region.pages(), 0u);

    EXPECT_EQ(region.grow(3), 0u);
    EXPECT_EQ(region.pages(), 3u);
    EXPECT_EQ(region.bytes(), 3 * smallPageBytes);

    EXPECT_EQ(region.grow(2), 3u);
    EXPECT_EQ(region.pages(), 5u);

    // Frames are distinct and live.
    for (std::uint64_t i = 0; i < 5; ++i) {
        EXPECT_TRUE(phys.frameLive(region.frameFor(i)));
        for (std::uint64_t j = i + 1; j < 5; ++j)
            EXPECT_NE(region.frameFor(i), region.frameFor(j));
    }
}

TEST(ShmRegion, FramesAreStableAcrossGrowth)
{
    PhysicalMemory phys(smallPageShift);
    ShmRegion region("r", phys);
    region.grow(2);
    PPage first = region.frameFor(0);
    region.grow(100);
    EXPECT_EQ(region.frameFor(0), first);
}

TEST(ShmRegion, TwoRegionsDoNotShareFrames)
{
    PhysicalMemory phys(smallPageShift);
    ShmRegion a("a", phys), b("b", phys);
    a.grow(2);
    b.grow(2);
    for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j)
            EXPECT_NE(a.frameFor(i), b.frameFor(j));
    }
}

TEST(AddressSpace, InstallFindErase)
{
    PhysicalMemory phys(smallPageShift);
    ShmRegion region("r", phys);
    region.grow(1);

    AddressSpace as(7);
    EXPECT_EQ(as.pid(), 7u);
    EXPECT_EQ(as.find(100), nullptr);

    PageEntry entry;
    entry.backing = &region;
    entry.filePage = 0;
    as.install(100, entry);
    ASSERT_NE(as.find(100), nullptr);
    EXPECT_EQ(as.mappedPages(), 1u);
    EXPECT_EQ(as.find(100)->activeFrame(), region.frameFor(0));

    as.erase(100);
    EXPECT_EQ(as.find(100), nullptr);
}

TEST(AddressSpace, ActiveFrameFollowsPrivateCopy)
{
    PhysicalMemory phys(smallPageShift);
    ShmRegion region("r", phys);
    region.grow(1);

    PageEntry entry;
    entry.backing = &region;
    entry.filePage = 0;
    EXPECT_EQ(entry.activeFrame(), region.frameFor(0));

    entry.kind = MapKind::PrivateCow;
    // Protected but not yet copied: still reads the shared frame.
    EXPECT_EQ(entry.activeFrame(), region.frameFor(0));

    entry.privateFrame = phys.allocFrame();
    EXPECT_EQ(entry.activeFrame(), entry.privateFrame);
}

} // namespace tmi
