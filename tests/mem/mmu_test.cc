/**
 * @file
 * Unit tests for the MMU: mapping, translation, COW, cloning.
 */

#include <gtest/gtest.h>

#include "mem/mmu.hh"

namespace tmi
{

namespace
{

struct MmuFixture : public ::testing::Test
{
    MmuFixture()
        : mmu(smallPageShift), region("shm", mmu.phys())
    {
        pid = mmu.createAddressSpace();
        region.grow(4);
        mmu.mapShared(pid, vbase, region, 0, 4);
    }

    static constexpr Addr vbase = 0x10000000;
    Mmu mmu;
    ShmRegion region;
    ProcessId pid;
};

} // namespace

TEST_F(MmuFixture, TranslateSharedMapping)
{
    TranslateResult tr = mmu.translate(pid, vbase + 123, false);
    EXPECT_EQ(tr.paddr,
              (region.frameFor(0) << smallPageShift) + 123);
    EXPECT_TRUE(tr.softFault); // first touch
    EXPECT_FALSE(tr.cowFault);

    tr = mmu.translate(pid, vbase + 124, true);
    EXPECT_FALSE(tr.softFault); // page already touched
}

TEST_F(MmuFixture, WriteVisibleThroughSecondSpace)
{
    ProcessId pid2 = mmu.createAddressSpace();
    mmu.mapShared(pid2, vbase, region, 0, 4);

    std::uint32_t v = 77;
    mmu.write(pid, vbase + 8, &v, 4);
    std::uint32_t out = 0;
    mmu.read(pid2, vbase + 8, &out, 4);
    EXPECT_EQ(out, 77u);
}

TEST_F(MmuFixture, ProtectTriggersCowOnWriteOnly)
{
    VPage vp = mmu.vpageOf(vbase);
    mmu.protectPrivateCow(pid, vp);
    EXPECT_TRUE(mmu.isProtected(pid, vp));

    // Reads do not fault and still see shared data.
    std::uint32_t v = 5;
    // Seed shared data via a second space.
    ProcessId pid2 = mmu.createAddressSpace();
    mmu.mapShared(pid2, vbase, region, 0, 4);
    mmu.write(pid2, vbase, &v, 4);

    std::uint32_t out = 0;
    mmu.read(pid, vbase, &out, 4);
    EXPECT_EQ(out, 5u);
    EXPECT_EQ(mmu.cowFaults(), 0u);

    // First write copies the frame.
    std::uint32_t w = 9;
    TranslateResult tr = mmu.translate(pid, vbase, true);
    EXPECT_TRUE(tr.cowFault);
    mmu.phys().write(tr.paddr, &w, 4);
    EXPECT_EQ(mmu.cowFaults(), 1u);

    // Private write invisible to the other space.
    mmu.read(pid2, vbase, &out, 4);
    EXPECT_EQ(out, 5u);
    mmu.read(pid, vbase, &out, 4);
    EXPECT_EQ(out, 9u);
}

TEST_F(MmuFixture, CowCallbackReceivesFrames)
{
    VPage vp = mmu.vpageOf(vbase);
    mmu.protectPrivateCow(pid, vp);
    bool called = false;
    mmu.setCowCallback([&](ProcessId p, VPage v, PPage shared,
                           PPage priv) -> CowOutcome {
        called = true;
        EXPECT_EQ(p, pid);
        EXPECT_EQ(v, vp);
        EXPECT_EQ(shared, region.frameFor(0));
        EXPECT_NE(priv, shared);
        return {123, true};
    });
    TranslateResult tr = mmu.translate(pid, vbase, true);
    EXPECT_TRUE(called);
    EXPECT_EQ(tr.extraCost, 123u);
}

TEST_F(MmuFixture, DropPrivateFrameReArms)
{
    VPage vp = mmu.vpageOf(vbase);
    mmu.protectPrivateCow(pid, vp);
    mmu.translate(pid, vbase, true);
    EXPECT_EQ(mmu.cowFaults(), 1u);

    mmu.dropPrivateFrame(pid, vp);
    EXPECT_TRUE(mmu.isProtected(pid, vp));
    mmu.translate(pid, vbase, true);
    EXPECT_EQ(mmu.cowFaults(), 2u);
}

TEST_F(MmuFixture, UnprotectRestoresSharing)
{
    VPage vp = mmu.vpageOf(vbase);
    mmu.protectPrivateCow(pid, vp);
    mmu.translate(pid, vbase, true);
    mmu.dropPrivateFrame(pid, vp);
    mmu.unprotect(pid, vp);
    EXPECT_FALSE(mmu.isProtected(pid, vp));

    TranslateResult tr = mmu.translate(pid, vbase, true);
    EXPECT_FALSE(tr.cowFault);
    EXPECT_EQ(tr.paddr, region.frameFor(0) << smallPageShift);
}

TEST_F(MmuFixture, CloneSharesFramesUntilProtected)
{
    std::uint64_t v = 42;
    mmu.write(pid, vbase + 64, &v, 8);

    ProcessId clone = mmu.cloneAddressSpace(pid);
    std::uint64_t out = 0;
    mmu.read(clone, vbase + 64, &out, 8);
    EXPECT_EQ(out, 42u);

    // Writes through either space stay visible to both (shared).
    std::uint64_t w = 43;
    mmu.write(clone, vbase + 64, &w, 8);
    mmu.read(pid, vbase + 64, &out, 8);
    EXPECT_EQ(out, 43u);
}

TEST_F(MmuFixture, ClonedPrivatePagesAreCopied)
{
    VPage vp = mmu.vpageOf(vbase);
    mmu.protectPrivateCow(pid, vp);
    std::uint64_t v = 7;
    mmu.write(pid, vbase, &v, 8); // COW into pid's private frame

    ProcessId clone = mmu.cloneAddressSpace(pid);
    std::uint64_t out = 0;
    mmu.read(clone, vbase, &out, 8);
    EXPECT_EQ(out, 7u); // fork copies the dirty private page

    std::uint64_t w = 8;
    mmu.write(clone, vbase, &w, 8);
    mmu.read(pid, vbase, &out, 8);
    EXPECT_EQ(out, 7u); // and the copies are independent
}

TEST_F(MmuFixture, ReadSharedBypassesPrivate)
{
    VPage vp = mmu.vpageOf(vbase);
    mmu.protectPrivateCow(pid, vp);
    std::uint64_t v = 11;
    mmu.write(pid, vbase, &v, 8); // private

    std::uint64_t out = 99;
    mmu.readShared(pid, vbase, &out, 8);
    EXPECT_EQ(out, 0u); // shared frame still zero
}

TEST_F(MmuFixture, TranslatePeekHasNoSideEffects)
{
    Addr paddr = 0;
    EXPECT_TRUE(mmu.translatePeek(pid, vbase + 5, paddr));
    EXPECT_EQ(mmu.softFaults(), 0u);
    EXPECT_FALSE(mmu.translatePeek(pid, 0xdead0000, paddr));
}

TEST_F(MmuFixture, PageSpanningDataOps)
{
    std::vector<std::uint8_t> data(smallPageBytes + 100, 0xab);
    mmu.write(pid, vbase + 50, data.data(), data.size());
    std::vector<std::uint8_t> out(data.size());
    mmu.read(pid, vbase + 50, out.data(), out.size());
    EXPECT_EQ(out, data);
}

} // namespace tmi
