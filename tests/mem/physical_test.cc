/**
 * @file
 * Unit tests for the simulated physical memory.
 */

#include <gtest/gtest.h>

#include "mem/physical.hh"

namespace tmi
{

TEST(PhysicalMemory, FreshFrameReadsZero)
{
    PhysicalMemory phys(smallPageShift);
    PPage f = phys.allocFrame();
    std::uint8_t buf[16] = {0xff};
    phys.read(f * phys.pageBytes(), buf, sizeof(buf));
    for (std::uint8_t b : buf)
        EXPECT_EQ(b, 0);
}

TEST(PhysicalMemory, WriteReadRoundTrip)
{
    PhysicalMemory phys(smallPageShift);
    PPage f = phys.allocFrame();
    Addr base = f * phys.pageBytes();
    std::uint64_t v = 0xdeadbeefcafef00dULL;
    phys.write(base + 100, &v, 8);
    std::uint64_t out = 0;
    phys.read(base + 100, &out, 8);
    EXPECT_EQ(out, v);
}

TEST(PhysicalMemory, CopyPreservesContent)
{
    PhysicalMemory phys(smallPageShift);
    PPage src = phys.allocFrame();
    std::uint32_t v = 1234;
    phys.write(src * phys.pageBytes() + 8, &v, 4);

    PPage dst = phys.allocCopy(src);
    EXPECT_NE(src, dst);
    std::uint32_t out = 0;
    phys.read(dst * phys.pageBytes() + 8, &out, 4);
    EXPECT_EQ(out, v);

    // Copies diverge after the copy.
    std::uint32_t w = 99;
    phys.write(src * phys.pageBytes() + 8, &w, 4);
    phys.read(dst * phys.pageBytes() + 8, &out, 4);
    EXPECT_EQ(out, v);
}

TEST(PhysicalMemory, CopyOfUntouchedFrameIsLazy)
{
    PhysicalMemory phys(smallPageShift);
    PPage src = phys.allocFrame();
    PPage dst = phys.allocCopy(src);
    EXPECT_EQ(phys.framePtrIfTouched(dst), nullptr);
    std::uint8_t b = 0xff;
    phys.read(dst * phys.pageBytes(), &b, 1);
    EXPECT_EQ(b, 0);
}

TEST(PhysicalMemory, FreeTracksLiveCount)
{
    PhysicalMemory phys(smallPageShift);
    PPage a = phys.allocFrame();
    PPage b = phys.allocFrame();
    EXPECT_EQ(phys.liveFrames(), 2u);
    EXPECT_EQ(phys.peakFrames(), 2u);
    phys.freeFrame(a);
    EXPECT_EQ(phys.liveFrames(), 1u);
    EXPECT_FALSE(phys.frameLive(a));
    EXPECT_TRUE(phys.frameLive(b));
    EXPECT_EQ(phys.peakFrames(), 2u);
}

TEST(PhysicalMemory, CrossFrameAccess)
{
    PhysicalMemory phys(smallPageShift);
    PPage a = phys.allocFrame();
    PPage b = phys.allocFrame();
    ASSERT_EQ(b, a + 1); // frames are consecutive by construction
    Addr boundary = b * phys.pageBytes() - 4;
    std::uint64_t v = 0x1122334455667788ULL;
    phys.write(boundary, &v, 8);
    std::uint64_t out = 0;
    phys.read(boundary, &out, 8);
    EXPECT_EQ(out, v);
}

TEST(PhysicalMemory, HugePageGeometry)
{
    PhysicalMemory phys(hugePageShift);
    EXPECT_EQ(phys.pageBytes(), hugePageBytes);
    PPage f = phys.allocFrame();
    Addr last = (f + 1) * phys.pageBytes() - 1;
    std::uint8_t b = 0x5a;
    phys.write(last, &b, 1);
    std::uint8_t out = 0;
    phys.read(last, &out, 1);
    EXPECT_EQ(out, 0x5a);
}

} // namespace tmi
