/**
 * @file
 * Unit tests for the AccessPipeline invalidation-epoch contract:
 * every mapping mutation site (protect, un-protect, COW service,
 * clone, mapShared, private-frame drop, PTSB commit) and hook-state
 * change (hook install, TLB flush; the ladder rungs are exercised by
 * the robustness suite) must bump the global epoch, and an entry
 * installed under an older epoch must never be served.
 */

#include <gtest/gtest.h>

#include "core/access_path.hh"
#include "core/machine.hh"
#include "mem/mmu.hh"
#include "ptsb/ptsb.hh"

namespace tmi
{

namespace
{

/** An Mmu wired to a pipeline's epoch, with one shared mapping. */
struct EpochFixture : public ::testing::Test
{
    EpochFixture()
        : mmu(smallPageShift), pipe(1), region("shm", mmu.phys())
    {
        mmu.setEpoch(&pipe.epoch());
        pid = mmu.createAddressSpace();
        region.grow(4);
        mmu.mapShared(pid, vbase, region, 0, 4);
    }

    std::uint64_t epoch() const { return pipe.epoch().value(); }

    /** Touch the page and install its translation in the cache. */
    void
    cacheTranslation()
    {
        TranslateResult tr = mmu.translate(pid, vbase, true);
        EXPECT_TRUE(tr.cacheable);
        pipe.frameInsert(0, pid, vp(),
                         tr.paddr & ~Addr{smallPageBytes - 1});
    }

    bool
    cachedHit()
    {
        Addr base = 0;
        return pipe.frameLookup(0, pid, vp(), base);
    }

    VPage vp() const { return vbase >> smallPageShift; }

    static constexpr Addr vbase = 0x10000000;
    Mmu mmu;
    AccessPipeline pipe;
    ShmRegion region;
    ProcessId pid;
};

} // namespace

TEST_F(EpochFixture, FreshPipelineServesNothing)
{
    // The epoch starts at 1 precisely so zero-initialized entry tags
    // can never match.
    EXPECT_GE(epoch(), 1u);
    EXPECT_FALSE(cachedHit());
}

TEST_F(EpochFixture, EntryHitsUntilEpochBump)
{
    cacheTranslation();
    EXPECT_TRUE(cachedHit());
    pipe.epoch().bump();
    EXPECT_FALSE(cachedHit());
    // Re-inserting under the new epoch revives the slot.
    cacheTranslation();
    EXPECT_TRUE(cachedHit());
}

TEST_F(EpochFixture, EntryIsPidAndPageTagged)
{
    cacheTranslation();
    Addr base = 0;
    ProcessId other = mmu.createAddressSpace();
    EXPECT_FALSE(pipe.frameLookup(0, other, vp(), base));
    EXPECT_FALSE(pipe.frameLookup(0, pid, vp() + 1, base));
}

TEST_F(EpochFixture, ProtectBumpsAndKillsEntry)
{
    cacheTranslation();
    std::uint64_t e0 = epoch();
    mmu.protectPrivateCow(pid, vp());
    EXPECT_GT(epoch(), e0);
    EXPECT_FALSE(cachedHit());
    // A protected page is no longer cacheable: reads stay shared but
    // translate is impure (a write would COW-fault).
    TranslateResult tr = mmu.translate(pid, vbase, false);
    EXPECT_FALSE(tr.cacheable);
}

TEST_F(EpochFixture, CowServiceIsNeverCacheable)
{
    mmu.protectPrivateCow(pid, vp());
    TranslateResult tr = mmu.translate(pid, vbase, true);
    EXPECT_TRUE(tr.cowFault);
    // The freshly twinned private frame must not enter the cache:
    // its mapping can revert (drop/abandon) without a trace.
    EXPECT_FALSE(tr.cacheable);
}

TEST_F(EpochFixture, UnprotectBumps)
{
    mmu.protectPrivateCow(pid, vp());
    std::uint64_t e0 = epoch();
    mmu.unprotect(pid, vp());
    EXPECT_GT(epoch(), e0);
}

TEST_F(EpochFixture, DropPrivateFrameBumps)
{
    mmu.protectPrivateCow(pid, vp());
    TranslateResult tr = mmu.translate(pid, vbase, true);
    ASSERT_TRUE(tr.cowFault); // private frame now live
    std::uint64_t e0 = epoch();
    mmu.dropPrivateFrame(pid, vp());
    EXPECT_GT(epoch(), e0);
}

TEST_F(EpochFixture, CloneBumps)
{
    std::uint64_t e0 = epoch();
    ProcessId child = mmu.cloneAddressSpace(pid);
    EXPECT_GT(epoch(), e0);
    EXPECT_NE(child, pid);
}

TEST_F(EpochFixture, MapSharedBumps)
{
    std::uint64_t e0 = epoch();
    mmu.mapShared(pid, vbase + 4 * smallPageBytes, region, 0, 4);
    EXPECT_GT(epoch(), e0);
}

TEST(AccessPipelinePtsb, CommitBumpsEpoch)
{
    // A PTSB commit republishes buffered writes through the shared
    // frame (dropping the private twin): any cached translation for
    // the page must die with it.
    Mmu mmu(smallPageShift);
    AccessPipeline pipe(1);
    mmu.setEpoch(&pipe.epoch());
    ShmRegion region("shm", mmu.phys());
    region.grow(2);
    ProcessId p0 = mmu.createAddressSpace();
    constexpr Addr vbase = 0x10000000;
    mmu.mapShared(p0, vbase, region, 0, 2);
    Ptsb ptsb(mmu, p0);
    mmu.setCowCallback([&](ProcessId, VPage vpage, PPage shared,
                           PPage priv) -> CowOutcome {
        return ptsb.onCowFault(vpage, shared, priv);
    });

    ptsb.protectPage(vbase >> smallPageShift);
    std::uint64_t v = 0xabcdef;
    mmu.write(p0, vbase + 16, &v, 8);
    ASSERT_EQ(ptsb.dirtyPages(), 1u);

    std::uint64_t e0 = pipe.epoch().value();
    CommitResult res = ptsb.commit();
    EXPECT_GT(res.bytesChanged, 0u);
    EXPECT_GT(pipe.epoch().value(), e0);
}

TEST(AccessPipelineSnapshot, HookSnapshotGoesStaleOnBump)
{
    AccessPipeline pipe(1);
    EXPECT_TRUE(pipe.stale()); // never validated
    pipe.revalidate(true, false);
    EXPECT_FALSE(pipe.stale());
    EXPECT_TRUE(pipe.interceptArmed());
    EXPECT_FALSE(pipe.atomicsBypass());
    pipe.epoch().bump();
    EXPECT_TRUE(pipe.stale());
    pipe.revalidate(false, true);
    EXPECT_FALSE(pipe.stale());
    EXPECT_FALSE(pipe.interceptArmed());
    EXPECT_TRUE(pipe.atomicsBypass());
}

TEST(AccessPipelineSnapshot, BypassFlagsArePerThread)
{
    AccessPipeline pipe(1);
    EXPECT_FALSE(pipe.bypassPrivate(0)); // unknown tid: no bypass
    pipe.setBypassPrivate(2, true);
    EXPECT_FALSE(pipe.bypassPrivate(0));
    EXPECT_FALSE(pipe.bypassPrivate(1));
    EXPECT_TRUE(pipe.bypassPrivate(2));
    pipe.setBypassPrivate(2, false);
    EXPECT_FALSE(pipe.bypassPrivate(2));
}

TEST(AccessPipelineMachine, HookInstallAndTlbFlushBump)
{
    MachineConfig mc;
    Machine m(mc);
    std::uint64_t e0 = m.accessEpoch().value();
    m.setHooks(nullptr);
    std::uint64_t e1 = m.accessEpoch().value();
    EXPECT_GT(e1, e0);
    m.flushTlbs();
    EXPECT_GT(m.accessEpoch().value(), e1);
}

} // namespace tmi
