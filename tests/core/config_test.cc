/**
 * @file
 * tmi::Config + ExperimentBuilder tests: round-trips, validation as
 * data (not fatal), the scalar-overlay rule, and an end-to-end traced
 * run through the new API.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/config.hh"
#include "fault/fault_injector.hh"
#include "obs/trace.hh"

using namespace tmi;

TEST(ConfigValidate, DefaultTemplatesAreValidOnceWorkloadIsSet)
{
    Config cfg;
    cfg.run.workload = "histogramfs";
    EXPECT_TRUE(cfg.validate().empty());
}

TEST(ConfigValidate, CollectsEveryErrorWithFieldNames)
{
    Config cfg;
    cfg.run.workload = "no-such-workload";
    cfg.run.threads = 0;
    cfg.run.perfPeriod = 0;
    cfg.run.watchdog = 5;
    cfg.machine.quantum = 0;
    cfg.tmi.analysisInterval = 0;

    auto errors = cfg.validate();
    auto has = [&errors](const std::string &field) {
        return std::any_of(errors.begin(), errors.end(),
                           [&field](const ConfigError &e) {
                               return e.field == field;
                           });
    };
    EXPECT_TRUE(has("run.workload"));
    EXPECT_TRUE(has("run.threads"));
    EXPECT_TRUE(has("run.perfPeriod"));
    EXPECT_TRUE(has("run.watchdog"));
    EXPECT_TRUE(has("machine.quantum"));
    EXPECT_TRUE(has("tmi.analysisInterval"));
    EXPECT_GE(errors.size(), 6u);

    // And the formatted form names every field.
    std::string text = formatConfigErrors(errors);
    EXPECT_NE(text.find("run.workload"), std::string::npos);
    EXPECT_NE(text.find("machine.quantum"), std::string::npos);
}

TEST(ConfigValidate, BadFaultSpecIsNamedPerPoint)
{
    Config cfg;
    cfg.run.workload = "histogramfs";
    cfg.run.faults.emplace_back(faultpoint::memCloneFail,
                                FaultSpec::withProbability(1.5));
    auto errors = cfg.validate();
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].field.find("mem.clone_fail"),
              std::string::npos);
}

TEST(Builder, CheckReportsWithoutDying)
{
    auto errors =
        Experiment::builder().workload("nope").threads(0).check();
    EXPECT_GE(errors.size(), 2u);
}

TEST(Builder, RoundTripsThroughConfig)
{
    Config cfg = Experiment::builder()
                     .workload("lreg")
                     .treatment(Treatment::TmiProtect)
                     .threads(8)
                     .scale(3)
                     .perfPeriod(50)
                     .repairThreshold(123.0)
                     .analysisInterval(1'000'000)
                     .budget(5'000'000'000ULL)
                     .seed(99)
                     .dumpStats(true)
                     .fault(faultpoint::memCloneFail,
                            FaultSpec::once(2))
                     .faultSeed(7)
                     .watchdog(1)
                     .monitor(0)
                     .trace(true)
                     .build();

    EXPECT_EQ(cfg.run.workload, "lreg");
    EXPECT_EQ(cfg.run.threads, 8u);
    EXPECT_EQ(cfg.run.perfPeriod, 50u);
    EXPECT_TRUE(cfg.run.trace.enabled);
    ASSERT_EQ(cfg.run.faults.size(), 1u);
    EXPECT_EQ(cfg.run.faults[0].second, FaultSpec::once(2));

    // builder(cfg) -> build() reproduces the config exactly, and ==
    // is deep: tweaking one nested field breaks equality.
    Config back = Experiment::builder(cfg).build();
    EXPECT_EQ(back, cfg);
    back.tmi.detector.samplePeriod += 1;
    EXPECT_FALSE(back == cfg);
}

TEST(Builder, MachineTemplateMirrorsScalarsButLaterSettersWin)
{
    MachineConfig mc;
    mc.cores = 6;
    mc.perf.period = 55;
    mc.trace.enabled = true;
    mc.trace.ringCapacity = 128;

    Config cfg = Experiment::builder()
                     .workload("histogramfs")
                     .machine(mc)
                     .build();
    // The template's scalars were mirrored into the run view, so the
    // overlay in runExperiment() keeps them.
    EXPECT_EQ(cfg.run.threads, 6u);
    EXPECT_EQ(cfg.run.perfPeriod, 55u);
    EXPECT_TRUE(cfg.run.trace.enabled);
    EXPECT_EQ(cfg.run.trace.ringCapacity, 128u);

    // A scalar setter after machine() overrides just that field.
    Config cfg2 = Experiment::builder()
                      .workload("histogramfs")
                      .machine(mc)
                      .perfPeriod(77)
                      .build();
    EXPECT_EQ(cfg2.run.perfPeriod, 77u);
    EXPECT_EQ(cfg2.run.threads, 6u);
}

TEST(Builder, DetectorTemplateSyncsRepairThreshold)
{
    DetectorConfig dc;
    dc.repairThreshold = 42.0;
    Config cfg = Experiment::builder()
                     .workload("histogramfs")
                     .detector(dc)
                     .build();
    EXPECT_DOUBLE_EQ(cfg.run.repairThreshold, 42.0);
    EXPECT_DOUBLE_EQ(cfg.tmi.detector.repairThreshold, 42.0);
}

TEST(BuilderRun, TracedFaultedRunCapturesTheWholeStory)
{
    if (!obs::TraceRecorder::compiledIn)
        GTEST_SKIP() << "built with TMI_TRACING=0";
    RunResult res = Experiment::builder()
                        .workload("histogramfs")
                        .treatment(Treatment::TmiProtect)
                        .threads(2)
                        .scale(1)
                        .analysisInterval(300'000)
                        .fault(faultpoint::memCloneFail,
                               FaultSpec::always())
                        .trace(true)
                        .run();

    // The fault cannot cost correctness: the ladder absorbs it.
    EXPECT_TRUE(res.compatible);
    EXPECT_EQ(res.ladderRung, "detect-only");
    EXPECT_GT(res.faultFires, 0u);

    // The timeline tells the same story, in time order.
    ASSERT_FALSE(res.traceEvents.empty());
    EXPECT_GT(res.traceRecorded, 0u);
    auto count = [&res](obs::EventKind kind) {
        std::size_t n = 0;
        for (const auto &ev : res.traceEvents)
            n += ev.kind == kind;
        return n;
    };
    EXPECT_GT(count(obs::EventKind::FaultFire), 0u);
    EXPECT_GT(count(obs::EventKind::T2pRollback), 0u);
    EXPECT_EQ(count(obs::EventKind::LadderDrop), res.ladderDrops);
    for (std::size_t i = 1; i < res.traceEvents.size(); ++i) {
        EXPECT_LE(res.traceEvents[i - 1].time,
                  res.traceEvents[i].time);
    }

    // The metrics registry carries both imported stats and the
    // trace's per-kind totals.
    ASSERT_NE(res.metrics, nullptr);
    double v = 0;
    ASSERT_TRUE(res.metrics->value("obs.event.fault.fire", v));
    EXPECT_DOUBLE_EQ(v, static_cast<double>(res.faultFires));
    ASSERT_TRUE(res.metrics->value("obs.trace.recorded", v));
    EXPECT_DOUBLE_EQ(v, static_cast<double>(res.traceRecorded));
    EXPECT_TRUE(res.metrics->value("machine.hitmEvents", v));
}

TEST(BuilderRun, TracingOffCostsNothingAndCapturesNothing)
{
    RunResult res = Experiment::builder()
                        .workload("histogramfs")
                        .treatment(Treatment::TmiProtect)
                        .threads(2)
                        .scale(1)
                        .run();
    EXPECT_TRUE(res.traceEvents.empty());
    EXPECT_EQ(res.traceRecorded, 0u);
    EXPECT_EQ(res.metrics, nullptr);
}

TEST(BuilderRun, FaultFireCountsNeedNoTracing)
{
    // The chaos oracle consumes fault.fires from the metrics
    // registry; those counts must exist on every build, including
    // TMI_TRACING=0, as long as stats are requested -- they come from
    // the injector itself, not from FaultFire trace events.
    FaultSpec clone_fail;
    clone_fail.probability = 1.0;
    clone_fail.maxFires = 2;
    RunResult res = Experiment::builder()
                        .workload("histogramfs")
                        .treatment(Treatment::TmiProtect)
                        .threads(2)
                        .scale(1)
                        .fault(faultpoint::memCloneFail, clone_fail)
                        .dumpStats(true)
                        .run();
    EXPECT_TRUE(res.traceEvents.empty());
    ASSERT_NE(res.metrics, nullptr);
    double fires = 0;
    ASSERT_TRUE(res.metrics->value("fault.fires", fires));
    EXPECT_EQ(fires, 2.0);
    double point_fires = 0;
    ASSERT_TRUE(res.metrics->value("fault.fires.mem.clone_fail",
                                   point_fires));
    EXPECT_EQ(point_fires, 2.0);
    EXPECT_EQ(res.faultFires, 2u);
}

TEST(BuilderRun, TracedRunIsCycleIdenticalToUntraced)
{
    if (!obs::TraceRecorder::compiledIn)
        GTEST_SKIP() << "built with TMI_TRACING=0";
    auto cell = [] {
        return Experiment::builder()
            .workload("histogramfs")
            .treatment(Treatment::TmiProtect)
            .threads(2)
            .scale(1);
    };
    RunResult off = cell().run();
    RunResult on = cell().trace(true).run();
    // Tracing charges no simulated cycles: same clock, same events.
    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.hitmEvents, off.hitmEvents);
    EXPECT_GT(on.traceRecorded, 0u);
}

TEST(BuilderRun, LegacyExperimentConfigPathStillWorks)
{
    ExperimentConfig cfg;
    cfg.workload = "histogramfs";
    cfg.treatment = Treatment::Pthreads;
    cfg.threads = 2;
    cfg.scale = 1;
    RunResult res = runExperiment(cfg);
    EXPECT_TRUE(res.compatible);
}
