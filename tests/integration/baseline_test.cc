/**
 * @file
 * Integration tests for the Sheriff and LASER baselines: their
 * strengths and the documented failure modes (Table 1).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace tmi
{

namespace
{

ExperimentConfig
cfgFor(const std::string &workload, Treatment treatment,
       std::uint64_t scale = 4)
{
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.treatment = treatment;
    cfg.threads = 4;
    cfg.scale = scale;
    cfg.analysisInterval = 500'000;
    cfg.budget = 30'000'000'000ULL;
    return cfg;
}

} // namespace

TEST(Sheriff, RepairsSimpleFalseSharingWell)
{
    RunResult base =
        runExperiment(cfgFor("histogramfs", Treatment::Pthreads));
    RunResult sheriff =
        runExperiment(cfgFor("histogramfs", Treatment::SheriffProtect));
    ASSERT_TRUE(sheriff.compatible);
    // Sheriff prevents FS from the very start: solid speedup.
    EXPECT_GT(speedup(base, sheriff), 1.3);
}

TEST(Sheriff, IncompatibleWithAtomicsWorkloads)
{
    // "Sheriff does not work on ... leveldb or shptr-relaxed."
    RunResult leveldb =
        runExperiment(cfgFor("leveldb", Treatment::SheriffProtect, 2));
    EXPECT_FALSE(leveldb.compatible);
}

TEST(Sheriff, DetectModeSlowerThanTmiDetect)
{
    RunResult base =
        runExperiment(cfgFor("streamcluster", Treatment::Pthreads, 1));
    RunResult sheriff = runExperiment(
        cfgFor("streamcluster", Treatment::SheriffDetect, 1));
    RunResult tmi =
        runExperiment(cfgFor("streamcluster", Treatment::TmiDetect, 1));
    ASSERT_TRUE(sheriff.compatible);
    ASSERT_TRUE(tmi.compatible);
    // Sheriff page-protects everything from the start; Tmi treads
    // lightly (2% vs 27% average in Table 1).
    double sheriff_overhead =
        static_cast<double>(sheriff.cycles) / base.cycles;
    double tmi_overhead =
        static_cast<double>(tmi.cycles) / base.cycles;
    EXPECT_GT(sheriff_overhead, tmi_overhead);
}

TEST(Laser, RepairsButCapturesLessThanTmi)
{
    RunResult base =
        runExperiment(cfgFor("lreg", Treatment::Pthreads));
    RunResult laser =
        runExperiment(cfgFor("lreg", Treatment::Laser));
    RunResult tmi =
        runExperiment(cfgFor("lreg", Treatment::TmiProtect));
    RunResult manual =
        runExperiment(cfgFor("lreg", Treatment::Manual));
    ASSERT_TRUE(laser.compatible);
    ASSERT_TRUE(laser.repairActive);

    double laser_speedup = speedup(base, laser);
    double tmi_speedup = speedup(base, tmi);
    double manual_speedup = speedup(base, manual);
    // LASER helps, but far less than Tmi or the manual fix.
    EXPECT_GT(laser_speedup, 1.05);
    EXPECT_GT(tmi_speedup, laser_speedup);
    EXPECT_GT(manual_speedup, laser_speedup);
}

TEST(Laser, PreservesConsistencyOnCanneal)
{
    // LASER's store buffer is TSO-correct: canneal stays valid.
    ExperimentConfig cfg = cfgFor("canneal", Treatment::Laser, 2);
    cfg.repairThreshold = 1.0;
    RunResult res = runExperiment(cfg);
    EXPECT_TRUE(res.compatible);
}

TEST(Laser, DeclinesRepairOnSyncHeavyMicrobenchmarks)
{
    // "LASER does not enable repair on the Boost microbenchmarks."
    RunResult res =
        runExperiment(cfgFor("shptr-relaxed", Treatment::Laser));
    EXPECT_TRUE(res.compatible);
    EXPECT_FALSE(res.repairActive);
}

TEST(SheriffLadder, CloneFailureExhaustionDropsToPartialIsolation)
{
    // Every cloneAddressSpace call fails: each thread burns its full
    // retry budget, stays plain, and the runtime lands on the
    // partial-isolation rung -- but the program still finishes with
    // correct results.
    ExperimentConfig cfg =
        cfgFor("histogramfs", Treatment::SheriffProtect, 2);
    cfg.faults.emplace_back(faultpoint::memCloneFail,
                            FaultSpec::always());
    RunResult res = runExperiment(cfg);
    EXPECT_TRUE(res.compatible);
    EXPECT_EQ(res.ladderRung, "partial-isolation");
    EXPECT_GE(res.t2pAborts, 1u);
    EXPECT_EQ(res.faultFires, res.t2pAborts);
}

TEST(SheriffLadder, SingleCloneFailureIsRetriedAway)
{
    // One transient clone failure: the retry succeeds and isolation
    // stays fully engaged.
    ExperimentConfig cfg =
        cfgFor("histogramfs", Treatment::SheriffProtect, 2);
    cfg.faults.emplace_back(faultpoint::memCloneFail,
                            FaultSpec::once());
    RunResult res = runExperiment(cfg);
    EXPECT_TRUE(res.compatible);
    EXPECT_EQ(res.ladderRung, "full-isolation");
    EXPECT_EQ(res.t2pAborts, 1u);
}

TEST(SheriffLadder, MonitorDissolvesUnprofitableIsolation)
{
    // "reverse" commits constantly (fine-grained locks over a big
    // array), so isolation overhead dwarfs the merge benefit. The
    // effectiveness monitor must dissolve -- and the dissolution must
    // not lose buffered writes, even when threads are created while
    // the dissolve is in flight.
    ExperimentConfig cfg =
        cfgFor("reverse", Treatment::SheriffProtect, 2);
    cfg.monitor = 1;
    RunResult res = runExperiment(cfg);
    EXPECT_TRUE(res.compatible);
    EXPECT_EQ(res.ladderRung, "dissolved");
    EXPECT_GE(res.unrepairs, 1u);
}

TEST(Table1, TmiOverheadLowWithoutContention)
{
    RunResult base =
        runExperiment(cfgFor("swaptions", Treatment::Pthreads, 4));
    RunResult detect =
        runExperiment(cfgFor("swaptions", Treatment::TmiDetect, 4));
    ASSERT_TRUE(detect.compatible);
    double overhead =
        static_cast<double>(detect.cycles) / base.cycles - 1.0;
    EXPECT_LT(overhead, 0.10);
}

TEST(Table1, TmiCapturesMostOfManualSpeedup)
{
    ExperimentConfig base_cfg =
        cfgFor("histogramfs", Treatment::Pthreads, 8);
    RunResult base = runExperiment(base_cfg);
    base_cfg.treatment = Treatment::TmiProtect;
    RunResult tmi = runExperiment(base_cfg);
    base_cfg.treatment = Treatment::Manual;
    RunResult manual = runExperiment(base_cfg);

    double capture = (speedup(base, tmi) - 1.0) /
                     (speedup(base, manual) - 1.0);
    EXPECT_GT(capture, 0.5);
}

} // namespace tmi
