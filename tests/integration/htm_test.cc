/**
 * @file
 * Integration tests for the htm-elide baseline: speculative lock
 * elision over the MESI simulator, the abort/retry/fallback state
 * machine, the abort-storm watchdog with RecoverUp, and the
 * malloc-placement sensitivity axis.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/experiment.hh"

namespace tmi
{

namespace
{

ExperimentBuilder
htmCell(const std::string &workload, unsigned threads = 4)
{
    ExperimentBuilder b;
    b.workload(workload)
        .treatment(Treatment::HtmElide)
        .threads(threads)
        .scale(4)
        .analysisInterval(500'000)
        .budget(30'000'000'000ULL);
    return b;
}

RunResult
pthreadsRun(const std::string &workload, unsigned threads = 4)
{
    ExperimentBuilder b;
    b.workload(workload)
        .treatment(Treatment::Pthreads)
        .threads(threads)
        .scale(4)
        .analysisInterval(500'000)
        .budget(30'000'000'000ULL);
    return b.run();
}

} // namespace

TEST(HtmElide, ElidesSpinlockPoolAndRemovesTheHitms)
{
    // The packed spinlock array false-shares on every CAS; with the
    // locks elided nobody ever writes a lock word, and the padded
    // payload slots are thread-private -- coherence traffic vanishes.
    RunResult base = pthreadsRun("spinlockpool");
    RunResult htm = htmCell("spinlockpool").run();
    ASSERT_EQ(htm.outcome, RunOutcome::Completed);
    ASSERT_TRUE(htm.valid);
    EXPECT_GT(htm.txnCommits, 0u);
    EXPECT_EQ(htm.txnFallbackLocks, 0u);
    EXPECT_LT(htm.hitmEvents * 10, base.hitmEvents)
        << "elision should remove nearly all HITM traffic";
    EXPECT_EQ(htm.resultDigest, base.resultDigest)
        << "elision must not change the computation";
}

TEST(HtmElide, ContendedLockDegradesThatSiteAndStaysCorrect)
{
    // shptr-lock's refcount mutex is truly (not falsely) shared:
    // speculation on it aborts, the fallback rung engages, and the
    // storm watchdog eventually pins that one site to lock-only.
    // The answer must stay byte-correct throughout, and eliding the
    // uncontended stretches still cuts coherence traffic.
    RunResult base = pthreadsRun("shptr-lock");
    RunResult htm = htmCell("shptr-lock").run();
    ASSERT_EQ(htm.outcome, RunOutcome::Completed);
    ASSERT_TRUE(htm.valid);
    EXPECT_GT(htm.txnCommits, 0u);
    EXPECT_GT(htm.txnAborts, 0u);
    EXPECT_GT(htm.txnFallbackLocks, 0u);
    EXPECT_LE(htm.hitmEvents, base.hitmEvents);
    EXPECT_EQ(htm.resultDigest, base.resultDigest);
    EXPECT_EQ(htm.invariantViolations, 0u)
        << "no txn may commit after observing a conflict";
}

TEST(HtmElide, SpuriousAbortBurstsAreRetriedWithoutLivelock)
{
    // Clustered spurious aborts (the TSX errata model): short bursts
    // kill a few consecutive attempts, then clear. Bursts below the
    // retry budget must be absorbed by backoff-and-retry alone --
    // commits keep flowing, the run finishes, and the answer is
    // byte-correct. Livelock-by-abort is the failure mode under test.
    RunResult base = pthreadsRun("spinlockpool");
    FaultSpec burst;
    burst.burstLen = 6;
    burst.burstPeriod = 3000;
    RunResult htm = htmCell("spinlockpool")
                        .fault(faultpoint::htmSpuriousAbort, burst)
                        .run();
    ASSERT_EQ(htm.outcome, RunOutcome::Completed) << "no livelock";
    ASSERT_TRUE(htm.valid);
    EXPECT_GT(htm.txnAborts, 0u);
    EXPECT_GT(htm.txnCommits, 0u) << "clear stretches still elide";
    EXPECT_EQ(htm.resultDigest, base.resultDigest);
}

TEST(HtmElide, AbortStormTripsTheWatchdogThenRecoversUp)
{
    // A hard spurious-abort window early in the run: every entry
    // burns its retry budget, falls back, and the watchdog trips the
    // site to lock-only (bounded work per entry -- no livelock).
    // After the window ends and the site stays quiet for the
    // configured number of storm windows, RecoverUp re-arms elision
    // and commits resume.
    RobustnessConfig rc;
    rc.recoverUpWindows = 1;
    RunResult htm = htmCell("spinlockpool", 2)
                        .scale(8)
                        .robustness(rc)
                        .fault(faultpoint::htmSpuriousAbort,
                               FaultSpec::always().inWindow(0, 400'000))
                        .run();
    ASSERT_EQ(htm.outcome, RunOutcome::Completed);
    ASSERT_TRUE(htm.valid);
    EXPECT_GT(htm.txnFallbackLocks, 0u) << "fallback rung engaged";
    EXPECT_GE(htm.watchdogFlushes, 1u) << "storm watchdog tripped";
    EXPECT_GE(htm.ladderDrops, 1u);
    EXPECT_GE(htm.ladderRecovers, 1u) << "quiet site must recover";
    EXPECT_GT(htm.txnCommits, 0u) << "elision resumed after recovery";
}

TEST(HtmElide, WatchdogOffIsBoundedByRetriesAlone)
{
    // With the watchdog disabled the same storm still terminates:
    // maxRetries bounds every entry, each falls back to the real
    // lock. Degraded throughput, never livelock.
    RunResult htm = htmCell("spinlockpool", 2)
                        .watchdog(0)
                        .fault(faultpoint::htmSpuriousAbort,
                               FaultSpec::always().inWindow(0, 400'000))
                        .run();
    ASSERT_EQ(htm.outcome, RunOutcome::Completed);
    ASSERT_TRUE(htm.valid);
    EXPECT_GT(htm.txnFallbackLocks, 0u);
    EXPECT_EQ(htm.watchdogFlushes, 0u);
}

TEST(HtmElide, PlacementPolicyDrivesTheAbortRate)
{
    // The malloc-placement axis: with each worker malloc'ing its own
    // 8-byte slot, a packed shared arena puts the slots on common
    // lines (txn conflicts -> aborts) while per-thread arenas keep
    // them apart. The abort-rate response must be monotone:
    // pack >= arena >= isolate.
    auto run = [](PlacementPolicy p) {
        return htmCell("spinlockpool")
            .param("small_slots", "1")
            .placement(p)
            .run();
    };
    RunResult pack = run(PlacementPolicy::Pack);
    RunResult arena = run(PlacementPolicy::Arena);
    RunResult isolate = run(PlacementPolicy::Isolate);
    for (const RunResult *r : {&pack, &arena, &isolate}) {
        ASSERT_EQ(r->outcome, RunOutcome::Completed);
        ASSERT_TRUE(r->valid);
    }
    auto rate = [](const RunResult &r) {
        std::uint64_t tries = r.txnCommits + r.txnAborts;
        return tries ? static_cast<double>(r.txnAborts) / tries : 0.0;
    };
    EXPECT_GT(rate(pack), rate(arena));
    EXPECT_GE(rate(arena), rate(isolate));
    EXPECT_GT(pack.txnFallbackLocks, 0u)
        << "packed slots should contend hard enough to fall back";
}

TEST(HtmElide, PlacementAxisIsRejectedForShmTreatments)
{
    // The shm-backed treatments own their allocator policy; the
    // placement axis must not silently fight it.
    ExperimentBuilder b;
    b.workload("spinlockpool")
        .treatment(Treatment::TmiProtect)
        .placement(PlacementPolicy::Pack);
    EXPECT_FALSE(b.check().empty());
}

} // namespace tmi
