/**
 * @file
 * Integration tests for the fault-injection framework and the
 * degradation ladder: every injected fault must land the run on some
 * rung with a correct checksum -- degraded service, never a wrong
 * answer or a hang. Also covers config validation fatal()s and
 * deterministic fault replay.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace tmi
{

namespace
{

ExperimentConfig
faultedConfig(const std::string &workload, Treatment treatment)
{
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.treatment = treatment;
    cfg.threads = 4;
    cfg.scale = 2;
    cfg.analysisInterval = 300'000;
    cfg.repairThreshold = 1.0;
    cfg.budget = 1'500'000'000ULL;
    return cfg;
}

} // namespace

TEST(Degradation, TwinFailureKeepsHistogramCorrect)
{
    // Twin allocation fails mid-repair on every COW: the pages fall
    // back to shared mappings and the checksum must still validate.
    ExperimentConfig cfg =
        faultedConfig("histogramfs", Treatment::TmiProtect);
    cfg.faults.emplace_back(faultpoint::ptsbTwinAllocFail,
                            FaultSpec::always());
    RunResult res = runExperiment(cfg);
    EXPECT_TRUE(res.compatible);
    EXPECT_GT(res.cowFallbacks, 0u);
}

TEST(Degradation, RingOverflowDropsARung)
{
    // A permanently-full PEBS ring starves the detector; perf-health
    // must notice the lost-record rate and walk down the ladder
    // rather than act on garbage.
    ExperimentConfig cfg =
        faultedConfig("histogramfs", Treatment::TmiProtect);
    cfg.faults.emplace_back(faultpoint::perfRingOverflow,
                            FaultSpec::always());
    RunResult res = runExperiment(cfg);
    EXPECT_TRUE(res.compatible);
    EXPECT_GE(res.ladderDrops, 1u);
    EXPECT_NE(res.ladderRung, "detect-and-repair");
}

TEST(Degradation, CloneFailureLandsOnDetectOnly)
{
    ExperimentConfig cfg =
        faultedConfig("histogramfs", Treatment::TmiProtect);
    cfg.faults.emplace_back(faultpoint::memCloneFail,
                            FaultSpec::always());
    RunResult res = runExperiment(cfg);
    EXPECT_TRUE(res.compatible);
    EXPECT_FALSE(res.repairActive);
    EXPECT_EQ(res.ladderRung, "detect-only");
    EXPECT_GE(res.t2pAborts, 1u);
}

TEST(Degradation, OneShotStopTimeoutIsRetriedTransparently)
{
    // A single thread missing one stop request costs one aborted
    // transaction; the retry succeeds and repair proceeds normally.
    ExperimentConfig cfg =
        faultedConfig("histogramfs", Treatment::TmiProtect);
    cfg.faults.emplace_back(faultpoint::schedStopTimeout,
                            FaultSpec::once());
    RunResult res = runExperiment(cfg);
    EXPECT_TRUE(res.compatible);
    EXPECT_TRUE(res.repairActive);
    EXPECT_EQ(res.ladderRung, "detect-and-repair");
    EXPECT_EQ(res.t2pAborts, 1u);
}

TEST(Degradation, FaultReplayIsDeterministic)
{
    // Same seed, same probabilistic fault spec: two runs must agree
    // cycle-for-cycle and fire-for-fire.
    ExperimentConfig cfg =
        faultedConfig("histogramfs", Treatment::TmiProtect);
    cfg.faults.emplace_back(faultpoint::memFrameExhausted,
                            FaultSpec::withProbability(0.3));
    RunResult a = runExperiment(cfg);
    RunResult b = runExperiment(cfg);
    EXPECT_TRUE(a.compatible);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.faultFires, b.faultFires);
    EXPECT_GT(a.faultFires, 0u);
}

TEST(Degradation, WatchdogUnhangsCholeskyWithoutCcc)
{
    // Figure 12's failure mode: cholesky's volatile-flag handoff
    // livelocks when the flag store is stuck in a PTSB with CCC off.
    // With the watchdog forced on, the stalled buffer is flushed and
    // the run terminates instead of timing out. (Correctness is not
    // claimed -- CCC is still off -- only forward progress.)
    ExperimentConfig cfg =
        faultedConfig("cholesky", Treatment::TmiProtectNoCcc);
    cfg.watchdog = 1;
    cfg.watchdogTimeout = 50'000'000;
    RunResult res = runExperiment(cfg);
    EXPECT_EQ(res.outcome, RunOutcome::Completed);
    EXPECT_GE(res.watchdogFlushes, 1u);
}

TEST(Degradation, ZeroAnalysisIntervalIsFatal)
{
    ExperimentConfig cfg =
        faultedConfig("histogramfs", Treatment::TmiProtect);
    cfg.analysisInterval = 0;
    EXPECT_EXIT(runExperiment(cfg), ::testing::ExitedWithCode(1),
                "analysisInterval");
}

TEST(Degradation, ZeroRepairThresholdIsFatal)
{
    ExperimentConfig cfg =
        faultedConfig("histogramfs", Treatment::TmiProtect);
    cfg.repairThreshold = 0.0;
    EXPECT_EXIT(runExperiment(cfg), ::testing::ExitedWithCode(1),
                "repairThreshold");
}

} // namespace tmi
