/**
 * @file
 * Integration tests for the Figure 11/12 consistency case studies:
 * a PTSB without code-centric consistency corrupts canneal's atomic
 * swaps and hangs cholesky's volatile-flag loop; Tmi with CCC (and
 * native execution) stay correct.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace tmi
{

namespace
{

ExperimentConfig
consistencyConfig(const std::string &workload, Treatment treatment)
{
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.treatment = treatment;
    cfg.threads = 4;
    cfg.scale = 2;
    cfg.analysisInterval = 300'000;
    // Aggressive repair so the PTSB definitely covers the workload's
    // pages (canneal's own FS is otherwise below threshold).
    cfg.repairThreshold = 1.0;
    // A tight budget so hangs terminate quickly.
    cfg.budget = 1'500'000'000ULL;
    return cfg;
}

} // namespace

TEST(Figure11, CannealCorrectNatively)
{
    RunResult res = runExperiment(
        consistencyConfig("canneal", Treatment::Pthreads));
    EXPECT_TRUE(res.compatible);
}

TEST(Figure11, CannealCorrectUnderTmiWithCcc)
{
    RunResult res = runExperiment(
        consistencyConfig("canneal", Treatment::PtsbEverywhere));
    // PTSB active on canneal's pages, yet the asm-region atomics
    // operate on shared memory: the multiset survives.
    EXPECT_TRUE(res.compatible);
}

TEST(Figure11, CannealCompatibleByDefaultEvenWithoutCcc)
{
    // canneal's contention is too diffuse to cross the repair
    // threshold, so Tmi -- even with CCC disabled -- never
    // intervenes and cannot break it. Compatibility-by-default is
    // itself a safety property (section 3).
    ExperimentConfig cfg =
        consistencyConfig("canneal", Treatment::TmiProtectNoCcc);
    cfg.repairThreshold = 100000.0;
    RunResult res = runExperiment(cfg);
    EXPECT_TRUE(res.compatible);
    EXPECT_FALSE(res.repairActive);
}

TEST(Figure11, NoCccRepairLeaksRacyMerges)
{
    // Where repair DOES engage without CCC (leveldb: the injected
    // counters trigger it), the lock-free CAS claims race on private
    // pages: the racy-merge diagnostic fires, i.e. the execution has
    // left defined behaviour even when this particular run's values
    // happen to survive validation.
    ExperimentConfig cfg =
        consistencyConfig("leveldb", Treatment::TmiProtectNoCcc);
    cfg.repairThreshold = 100000.0;
    cfg.budget = 60'000'000'000ULL;
    RunResult res = runExperiment(cfg);
    ASSERT_TRUE(res.repairActive);
    EXPECT_GT(res.conflictBytes, 0u);

    cfg.treatment = Treatment::TmiProtect;
    RunResult safe = runExperiment(cfg);
    ASSERT_TRUE(safe.compatible);
    EXPECT_EQ(safe.conflictBytes, 0u);
}

TEST(Figure11, CannealBreaksUnderSheriff)
{
    RunResult res = runExperiment(
        consistencyConfig("canneal", Treatment::SheriffProtect));
    EXPECT_FALSE(res.compatible);
}

TEST(Figure12, CholeskyCorrectNatively)
{
    RunResult res = runExperiment(
        consistencyConfig("cholesky", Treatment::Pthreads));
    EXPECT_TRUE(res.compatible);
}

TEST(Figure12, CholeskyCorrectUnderTmiWithCcc)
{
    RunResult res = runExperiment(
        consistencyConfig("cholesky", Treatment::TmiProtect));
    EXPECT_TRUE(res.compatible);
}

TEST(Figure12, CholeskyHangsWithoutCcc)
{
    RunResult res = runExperiment(
        consistencyConfig("cholesky", Treatment::TmiProtectNoCcc));
    EXPECT_EQ(res.outcome, RunOutcome::Timeout);
}

TEST(Figure12, CholeskyHangsUnderSheriff)
{
    // "sheriff-detect and sheriff-protect hang on cholesky."
    RunResult res = runExperiment(
        consistencyConfig("cholesky", Treatment::SheriffProtect));
    EXPECT_EQ(res.outcome, RunOutcome::Timeout);
}

TEST(CodeCentric, ConflictDiagnosticFlagsSheriffRaces)
{
    // The PTSB's racy-merge counter is an operational Lemma 3.1:
    // canneal's CAS-based swaps through Sheriff's private pages
    // produce conflicting merges, which Tmi-with-CCC never does.
    RunResult sheriff = runExperiment(
        consistencyConfig("canneal", Treatment::SheriffProtect));
    EXPECT_GT(sheriff.conflictBytes, 0u);

    RunResult tmi = runExperiment(
        consistencyConfig("canneal", Treatment::PtsbEverywhere));
    ASSERT_TRUE(tmi.compatible);
    EXPECT_EQ(tmi.conflictBytes, 0u);
}

TEST(CodeCentric, RepairedFsWorkloadsAreConflictFree)
{
    // Targeted repair of real false sharing: disjoint bytes only, so
    // the diagnostic must stay silent.
    ExperimentConfig cfg =
        consistencyConfig("lreg", Treatment::TmiProtect);
    cfg.repairThreshold = 100000.0;
    cfg.budget = 60'000'000'000ULL;
    RunResult res = runExperiment(cfg);
    ASSERT_TRUE(res.compatible);
    ASSERT_TRUE(res.repairActive);
    EXPECT_EQ(res.conflictBytes, 0u);
}

TEST(CodeCentric, LeveldbAtomicsSurviveRepair)
{
    // leveldb uses inline-assembly atomics; with CCC they stay
    // correct even with its counter page under the PTSB.
    ExperimentConfig cfg =
        consistencyConfig("leveldb", Treatment::TmiProtect);
    cfg.repairThreshold = 100000.0;
    RunResult res = runExperiment(cfg);
    EXPECT_TRUE(res.compatible);
    EXPECT_TRUE(res.repairActive);
}

} // namespace tmi
