/**
 * @file
 * Parameterized integration sweeps: repair must work across thread
 * counts, page sizes, and sampling periods, and the experiment
 * driver's stats plumbing must deliver.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace tmi
{

namespace
{

ExperimentConfig
sweepConfig(const std::string &workload)
{
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.threads = 4;
    cfg.scale = 4;
    cfg.analysisInterval = 500'000;
    return cfg;
}

} // namespace

/** Thread-count sweep over the headline repair result. */
class ThreadSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ThreadSweep, RepairWorksAtAnyWidth)
{
    ExperimentConfig cfg = sweepConfig("histogramfs");
    cfg.threads = GetParam();
    cfg.treatment = Treatment::Pthreads;
    RunResult base = runExperiment(cfg);
    ASSERT_TRUE(base.compatible);

    cfg.treatment = Treatment::TmiProtect;
    RunResult tmi = runExperiment(cfg);
    ASSERT_TRUE(tmi.compatible);
    EXPECT_TRUE(tmi.repairActive);
    if (GetParam() > 1)
        EXPECT_GT(speedup(base, tmi), 1.1);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep,
                         ::testing::Values(2u, 4u, 8u));

/** Page-size sweep: repair must also work with 2 MB huge pages. */
TEST(PageSizeSweep, HugePageRepairWorks)
{
    ExperimentConfig cfg = sweepConfig("lreg");
    cfg.pageShift = hugePageShift;
    cfg.treatment = Treatment::Pthreads;
    RunResult base = runExperiment(cfg);
    ASSERT_TRUE(base.compatible);

    cfg.treatment = Treatment::TmiProtect;
    RunResult tmi = runExperiment(cfg);
    ASSERT_TRUE(tmi.compatible);
    EXPECT_TRUE(tmi.repairActive);
    EXPECT_GT(speedup(base, tmi), 1.2);
    // Targeted protection at 2 MB granularity: one huge page covers
    // the whole args array.
    EXPECT_LE(tmi.pagesProtected, 2u);
}

TEST(PageSizeSweep, HugePagesReduceFaults)
{
    ExperimentConfig cfg = sweepConfig("fft");
    cfg.scale = 1;
    cfg.treatment = Treatment::TmiAlloc;
    cfg.pageShift = smallPageShift;
    RunResult small = runExperiment(cfg);
    cfg.pageShift = hugePageShift;
    RunResult huge = runExperiment(cfg);
    ASSERT_TRUE(small.compatible);
    ASSERT_TRUE(huge.compatible);
    EXPECT_GT(small.softFaults, 100 * huge.softFaults);
    EXPECT_LT(huge.cycles, small.cycles);
}

/** Sampling-period sweep: detection still fires at coarse periods. */
class PeriodSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PeriodSweep, DetectionSurvivesPeriod)
{
    ExperimentConfig cfg = sweepConfig("histogramfs");
    cfg.perfPeriod = GetParam();
    cfg.treatment = Treatment::TmiProtect;
    RunResult res = runExperiment(cfg);
    EXPECT_TRUE(res.compatible);
    EXPECT_TRUE(res.repairActive)
        << "period " << GetParam() << " missed the false sharing";
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodSweep,
                         ::testing::Values(1u, 10u, 100u, 1000u));

TEST(StatsPlumbing, DumpStatsCapturesComponents)
{
    ExperimentConfig cfg = sweepConfig("lreg");
    cfg.treatment = Treatment::TmiProtect;
    cfg.dumpStats = true;
    RunResult res = runExperiment(cfg);
    ASSERT_TRUE(res.compatible);
    // The dump names stats from every layer.
    EXPECT_NE(res.statsText.find("hitmEvents"), std::string::npos);
    EXPECT_NE(res.statsText.find("softFaults"), std::string::npos);
    EXPECT_NE(res.statsText.find("t2pConversions"), std::string::npos);
    EXPECT_NE(res.statsText.find("recordsClassified"),
              std::string::npos);
    EXPECT_NE(res.statsText.find("contextSwitches"),
              std::string::npos);
}

TEST(StatsPlumbing, NoDumpByDefault)
{
    ExperimentConfig cfg = sweepConfig("swaptions");
    cfg.scale = 1;
    RunResult res = runExperiment(cfg);
    EXPECT_TRUE(res.statsText.empty());
}

TEST(Determinism, ResultsIdenticalAcrossTreatRuns)
{
    // The whole stack is deterministic: same config -> same cycles,
    // HITM count, commits, and repair timeline.
    ExperimentConfig cfg = sweepConfig("leveldb");
    cfg.treatment = Treatment::TmiProtect;
    RunResult a = runExperiment(cfg);
    RunResult b = runExperiment(cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.hitmEvents, b.hitmEvents);
    EXPECT_EQ(a.commits, b.commits);
    EXPECT_EQ(a.repairStartCycles, b.repairStartCycles);
    EXPECT_EQ(a.pagesProtected, b.pagesProtected);
}

TEST(Determinism, SeedChangesExecutionButNotCorrectness)
{
    ExperimentConfig cfg = sweepConfig("leveldb");
    RunResult a = runExperiment(cfg);
    cfg.seed = 1234567;
    RunResult b = runExperiment(cfg);
    EXPECT_TRUE(a.compatible);
    EXPECT_TRUE(b.compatible);
    EXPECT_NE(a.cycles, b.cycles); // different keys, different run
}

} // namespace tmi
