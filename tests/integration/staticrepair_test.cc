/**
 * @file
 * End-to-end integration tests for Huron-style static repair: the
 * profile -> plan -> replay pipeline cuts residual HITMs hard on the
 * known false-sharing workloads, preserves results, and never engages
 * the runtime repair machinery.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace tmi
{

namespace
{

ExperimentConfig
baseConfig(const std::string &workload)
{
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.threads = 4;
    cfg.scale = 4;
    cfg.analysisInterval = 500'000;
    return cfg;
}

} // namespace

TEST(StaticRepair, HistogramProfileReplayCutsHitms)
{
    ExperimentConfig cfg = baseConfig("histogramfs");

    cfg.treatment = Treatment::Pthreads;
    RunResult base = runExperiment(cfg);
    ASSERT_TRUE(base.compatible);
    ASSERT_GT(base.hitmEvents, 1000u);

    cfg.treatment = Treatment::HuronStatic;
    RunResult hs = runExperiment(cfg);
    ASSERT_TRUE(hs.compatible) << "replay broke the program";
    ASSERT_EQ(hs.outcome, RunOutcome::Completed);

    // The replay result is the same computation.
    EXPECT_EQ(hs.resultDigest, base.resultDigest);
    // The plan found the contended site and redirected it.
    EXPECT_GE(hs.planSites, 1u);
    EXPECT_EQ(hs.planAppliedSites, hs.planSites);
    EXPECT_GE(hs.planRedirectedSites, 1u);
    EXPECT_GT(hs.planPaddingBytes, 0u);
    // The profile phase saw the baseline contention...
    EXPECT_GT(hs.planProfileHitms, base.hitmEvents / 2);
    // ...and the replay kills at least 5x of it (in practice ~1000x)
    // with zero runtime repairs.
    EXPECT_LE(hs.hitmEvents * 5, base.hitmEvents);
    EXPECT_EQ(hs.pagesProtected, 0u);
    EXPECT_EQ(hs.commits, 0u);
}

TEST(StaticRepair, PlanInReplaysIdentically)
{
    ExperimentConfig cfg = baseConfig("histogramfs");
    cfg.treatment = Treatment::HuronStatic;
    RunResult profiled = runExperiment(cfg);
    ASSERT_TRUE(profiled.compatible);
    ASSERT_FALSE(profiled.planText.empty());

    // Feed the synthesized plan back: profiling is skipped and the
    // replay is cycle-identical to the profiled run's replay.
    cfg.planIn = profiled.planText;
    RunResult replayed = runExperiment(cfg);
    ASSERT_TRUE(replayed.compatible);
    EXPECT_EQ(replayed.planText, profiled.planText);
    EXPECT_EQ(replayed.cycles, profiled.cycles);
    EXPECT_EQ(replayed.hitmEvents, profiled.hitmEvents);
    EXPECT_EQ(replayed.resultDigest, profiled.resultDigest);
    // A pure replay never profiled, so it reports no profile HITMs.
    EXPECT_EQ(replayed.planProfileHitms, 0u);
}

TEST(StaticRepair, SpreadRepairsDeclaredArrayGeometry)
{
    ExperimentConfig cfg = baseConfig("spinlockpool");

    cfg.treatment = Treatment::Pthreads;
    RunResult base = runExperiment(cfg);
    ASSERT_TRUE(base.compatible);
    ASSERT_GT(base.hitmEvents, 1000u);

    cfg.treatment = Treatment::HuronStatic;
    RunResult hs = runExperiment(cfg);
    ASSERT_TRUE(hs.compatible);
    // The tagged pool plans as an index-redirected array.
    EXPECT_NE(hs.planText.find("spread"), std::string::npos)
        << hs.planText;
    EXPECT_LE(hs.hitmEvents * 5, base.hitmEvents);
    EXPECT_EQ(hs.resultDigest, base.resultDigest);
}

TEST(StaticRepair, DeterministicAcrossRepeatedRuns)
{
    ExperimentConfig cfg = baseConfig("histogramfs");
    cfg.treatment = Treatment::HuronStatic;
    RunResult first = runExperiment(cfg);
    RunResult second = runExperiment(cfg);
    EXPECT_EQ(first.planText, second.planText);
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(first.hitmEvents, second.hitmEvents);
}

} // namespace tmi
