/**
 * @file
 * Cycle-identity golden: pins the simulated makespan, true HITM
 * count, and mem-op count for a small workload x treatment matrix.
 *
 * The pinned values were recorded at the commit immediately before
 * the AccessPipeline hot-path refactor. Any change to these numbers
 * means the refactor altered simulated behaviour -- the event stream
 * (cycles, HITM counts, stats) is the contract; host-time wins must
 * never move it.
 *
 * Regenerating (only legitimate after an *intentional* model change):
 *   TMI_GOLDEN_DUMP=1 ./build/tests/integration_cycle_identity_test |
 *     grep '^{' > tests/integration/cycle_identity_golden.inc
 */

#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace tmi
{
namespace
{

struct GoldenCell
{
    const char *workload;
    const char *treatment;
    std::uint64_t cycles;
    std::uint64_t hitmEvents;
    std::uint64_t memOps;
};

/** The matrix to run: every translation/hook flavour the access path
 *  has -- plain, manual fix, Tmi rungs (COW + CCC bypass), Sheriff
 *  (atomics buffered), PTSB-everywhere (heavy COW/commit churn), and
 *  LASER (interception armed). */
constexpr GoldenCell matrix[] = {
    {"histogramfs", "pthreads", 0, 0, 0},
    {"histogramfs", "manual", 0, 0, 0},
    {"histogramfs", "tmi-alloc", 0, 0, 0},
    {"histogramfs", "tmi-detect", 0, 0, 0},
    {"histogramfs", "tmi-protect", 0, 0, 0},
    {"histogramfs", "sheriff-protect", 0, 0, 0},
    {"histogramfs", "ptsb-everywhere", 0, 0, 0},
    {"histogramfs", "laser", 0, 0, 0},
    {"lreg", "pthreads", 0, 0, 0},
    {"lreg", "tmi-protect", 0, 0, 0},
    {"lreg", "laser", 0, 0, 0},
    {"spinlockpool", "pthreads", 0, 0, 0},
    {"spinlockpool", "tmi-protect", 0, 0, 0},
    {"streamcluster", "pthreads", 0, 0, 0},
    {"streamcluster", "tmi-protect", 0, 0, 0},
};

constexpr GoldenCell golden[] = {
#include "cycle_identity_golden.inc"
};

RunResult
runCell(const char *workload, const char *treatment)
{
    const Treatment *t = tryParseTreatment(treatment);
    if (!t)
        ADD_FAILURE() << "unknown treatment " << treatment;
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.treatment = t ? *t : Treatment::Pthreads;
    cfg.threads = 4;
    cfg.scale = 1;
    cfg.analysisInterval = 500'000;
    cfg.budget = 60'000'000'000ULL;
    return runExperiment(cfg);
}

TEST(CycleIdentity, MatrixMatchesGolden)
{
    if (std::getenv("TMI_GOLDEN_DUMP")) {
        for (const GoldenCell &cell : matrix) {
            RunResult res = runCell(cell.workload, cell.treatment);
            std::printf("{\"%s\", \"%s\", %lluULL, %lluULL, "
                        "%lluULL},\n",
                        cell.workload, cell.treatment,
                        static_cast<unsigned long long>(res.cycles),
                        static_cast<unsigned long long>(
                            res.hitmEvents),
                        static_cast<unsigned long long>(res.memOps));
        }
        return;
    }

    ASSERT_EQ(std::size(golden), std::size(matrix))
        << "golden table out of sync with the matrix; regenerate "
           "cycle_identity_golden.inc (see file header)";
    for (const GoldenCell &cell : golden) {
        RunResult res = runCell(cell.workload, cell.treatment);
        SCOPED_TRACE(std::string(cell.workload) + " x " +
                     cell.treatment);
        EXPECT_TRUE(res.compatible);
        EXPECT_EQ(res.cycles, cell.cycles);
        EXPECT_EQ(res.hitmEvents, cell.hitmEvents);
        EXPECT_EQ(res.memOps, cell.memOps);
    }
}

} // namespace
} // namespace tmi
