/**
 * @file
 * Integration tests: Tmi repairs every Figure 9 workload online,
 * correctly, and with a real speedup.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "workloads/workload.hh"

namespace tmi
{

namespace
{

ExperimentConfig
baseConfig(const std::string &workload)
{
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.threads = 4;
    cfg.scale = 4;
    cfg.analysisInterval = 500'000;
    return cfg;
}

} // namespace

/** Per-workload repair checks over the Figure 9 set. */
class RepairSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RepairSweep, TmiRepairsAndPreservesResults)
{
    ExperimentConfig cfg = baseConfig(GetParam());

    cfg.treatment = Treatment::Pthreads;
    RunResult base = runExperiment(cfg);
    ASSERT_TRUE(base.compatible) << "baseline broken";

    cfg.treatment = Treatment::TmiProtect;
    RunResult tmi = runExperiment(cfg);
    ASSERT_TRUE(tmi.compatible) << "tmi-protect broke " << GetParam();

    cfg.treatment = Treatment::Manual;
    RunResult manual = runExperiment(cfg);
    ASSERT_TRUE(manual.compatible);

    double tmi_speedup = speedup(base, tmi);
    double manual_speedup = speedup(base, manual);

    // The manual fix must actually help (these are the FS bugs).
    EXPECT_GT(manual_speedup, 1.15) << GetParam();
    // Tmi must capture a real part of it.
    EXPECT_GT(tmi_speedup, 1.05) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Figure9, RepairSweep,
    ::testing::Values("histogram", "histogramfs", "lreg",
                      "stringmatch", "lu-ncb", "leveldb",
                      "spinlockpool", "shptr-relaxed"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(Repair, EngagesOnlyWhenFalseSharingExists)
{
    // A clean data-parallel workload must never trigger repair.
    ExperimentConfig cfg = baseConfig("blackscholes");
    cfg.scale = 1;
    cfg.treatment = Treatment::TmiProtect;
    RunResult res = runExperiment(cfg);
    EXPECT_TRUE(res.compatible);
    EXPECT_FALSE(res.repairActive);
    EXPECT_EQ(res.pagesProtected, 0u);
}

TEST(Repair, HistogramFsReducesHitmEvents)
{
    ExperimentConfig cfg = baseConfig("histogramfs");
    cfg.treatment = Treatment::Pthreads;
    RunResult base = runExperiment(cfg);
    cfg.treatment = Treatment::TmiProtect;
    RunResult tmi = runExperiment(cfg);
    EXPECT_LT(tmi.hitmEvents, base.hitmEvents / 3);
}

TEST(Repair, Table3CharacterizationIsSane)
{
    ExperimentConfig cfg = baseConfig("lreg");
    cfg.treatment = Treatment::TmiProtect;
    RunResult res = runExperiment(cfg);
    ASSERT_TRUE(res.repairActive);
    // T2P under 200 us of simulated time per the paper's Table 3
    // (total across 5 threads: main + 4 workers).
    double t2p_us = res.t2pCycles / 3.4e3;
    EXPECT_LT(t2p_us, 400.0);
    EXPECT_GT(t2p_us, 10.0);
    // Repair engaged after a nonzero unrepaired prefix.
    EXPECT_GT(res.repairStartCycles, 0u);
    EXPECT_LT(res.repairStartCycles, res.cycles);
    EXPECT_GT(res.commits, 0u);
}

TEST(Repair, ShptrLockGainsAlmostNothing)
{
    // The pathological case: mutex-protected refcounts force a PTSB
    // commit at every acquire/release, eating the repair's benefit
    // (the paper measures just 1.04x).
    ExperimentConfig cfg = baseConfig("shptr-lock");
    cfg.treatment = Treatment::Pthreads;
    RunResult base = runExperiment(cfg);
    cfg.treatment = Treatment::TmiProtect;
    RunResult tmi = runExperiment(cfg);
    ASSERT_TRUE(tmi.compatible);

    cfg.workload = "shptr-relaxed";
    cfg.treatment = Treatment::Pthreads;
    RunResult rbase = runExperiment(cfg);
    cfg.treatment = Treatment::TmiProtect;
    RunResult rtmi = runExperiment(cfg);
    ASSERT_TRUE(rtmi.compatible);

    // Code-centric consistency makes the relaxed variant repairable
    // at a profit; the lock variant stays near 1x.
    EXPECT_GT(speedup(rbase, rtmi), speedup(base, tmi) + 0.3);
}

TEST(Repair, LuNcbFixedByAllocatorWithoutPtsb)
{
    ExperimentConfig cfg = baseConfig("lu-ncb");
    cfg.treatment = Treatment::Pthreads;
    RunResult base = runExperiment(cfg);
    cfg.treatment = Treatment::TmiAlloc;
    RunResult alloc_only = runExperiment(cfg);
    ASSERT_TRUE(alloc_only.compatible);
    // The allocator change alone removes the false sharing.
    EXPECT_GT(speedup(base, alloc_only), 1.15);
    EXPECT_LT(alloc_only.hitmEvents, base.hitmEvents / 3);
}

TEST(Repair, TargetedProtectionTouchesFewPages)
{
    ExperimentConfig cfg = baseConfig("lreg");
    cfg.treatment = Treatment::TmiProtect;
    RunResult res = runExperiment(cfg);
    ASSERT_TRUE(res.repairActive);
    // lreg's args array spans a handful of pages; targeted repair
    // must not balloon to the whole heap.
    EXPECT_LE(res.pagesProtected, 8u);
}

TEST(Repair, PtsbEverywhereCostsMoreThanTargeted)
{
    ExperimentConfig cfg = baseConfig("histogram");
    cfg.scale = 6;
    cfg.treatment = Treatment::TmiProtect;
    RunResult targeted = runExperiment(cfg);
    cfg.treatment = Treatment::PtsbEverywhere;
    RunResult everywhere = runExperiment(cfg);
    ASSERT_TRUE(targeted.compatible);
    ASSERT_TRUE(everywhere.compatible);
    // Section 4.3: indiscriminate PTSB use hurts histogram.
    EXPECT_GT(everywhere.cycles, targeted.cycles);
}

} // namespace tmi
