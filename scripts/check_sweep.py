#!/usr/bin/env python3
"""Validate a sweep CSV against the canonical driver schema.

The sweep driver (src/driver/sink.cc) writes one header plus one row
per job, in job-id order, with the same 43 columns for every row.
This checker keeps that contract honest from the outside -- CI runs a
small sweep through tmi-sweep and pipes the file through here, so a
schema drift (a renamed column, a duplicated or dropped job, a row
sprouting extra cells from an unsanitized error message) fails the
build instead of someone's plotting script.

Usage:
    scripts/check_sweep.py sweep.csv
    scripts/check_sweep.py sweep.csv --expect-rows 40
    scripts/check_sweep.py sweep.csv --expect-ok
    scripts/check_sweep.py sweep.csv --manifest journal-dir/

--manifest validates the sharded-orchestration metadata the CSV came
from (the supervisor's MANIFEST plus one journal per shard) and
cross-checks its job count against the CSV row count. Shard identity
deliberately does NOT appear as a CSV column -- the merged CSV must
be byte-identical for any shard count -- so this is where the shard
bookkeeping gets audited.

Exit status is non-zero on any schema violation or unmet requirement.
"""

import argparse
import os
import sys

# Keep in lockstep with sweepCsvHeader() in src/driver/sink.cc.
COLUMNS = [
    "job_id", "workload", "treatment", "threads", "scale", "period",
    "fault_point", "fault_rate", "seed", "status", "attempts",
    "error", "outcome", "valid", "rung", "cycles", "seconds",
    "hitm_events", "pebs_records", "pages_protected", "commits",
    "conflict_bytes", "fault_fires", "t2p_aborts", "unrepairs",
    "watchdog_flushes", "cow_fallbacks", "ladder_drops", "params",
    "requests", "sojourn_p50", "sojourn_p99", "sojourn_p999",
    "plan_sites", "plan_applied", "plan_padding_bytes",
    "plan_redirected", "plan_profile_hitms", "placement",
    "txn_commits", "txn_aborts", "abort_rate", "fallback_locks",
]

PLACEMENTS = {"default", "pack", "arena", "isolate"}

STATUSES = {"ok", "failed", "timeout", "cancelled", "poisoned"}

NUMERIC = [
    "job_id", "threads", "scale", "period", "seed", "attempts",
    "cycles", "hitm_events", "pebs_records", "pages_protected",
    "commits", "conflict_bytes", "fault_fires", "t2p_aborts",
    "unrepairs", "watchdog_flushes", "cow_fallbacks", "ladder_drops",
    "requests", "plan_sites", "plan_applied", "plan_padding_bytes",
    "plan_redirected", "plan_profile_hitms", "txn_commits",
    "txn_aborts", "fallback_locks",
]


def check_manifest(journal_dir, expect_jobs):
    """Validate one supervisor journal directory (MANIFEST + one
    journal file per shard). Returns a list of errors."""
    errors = []
    mpath = os.path.join(journal_dir, "MANIFEST")
    try:
        with open(mpath, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as exc:
        return ["%s: not readable: %s" % (mpath, exc)]

    if not lines or lines[0] != "tmi-campaign-manifest v1":
        return ["%s: bad header %r" % (mpath, lines[:1])]
    kv = dict(line.split("=", 1) for line in lines[1:] if "=" in line)
    for key in ("jobs", "shards", "fingerprint"):
        if key not in kv:
            errors.append("%s: missing %s=" % (mpath, key))
    if errors:
        return errors
    if not kv["jobs"].isdigit() or not kv["shards"].isdigit():
        return ["%s: jobs/shards are not unsigned integers" % mpath]
    fp = kv["fingerprint"]
    if len(fp) != 16 or any(c not in "0123456789abcdef" for c in fp):
        errors.append("%s: fingerprint=%r is not 16-digit hex"
                      % (mpath, fp))
    jobs, shards = int(kv["jobs"]), int(kv["shards"])
    if shards < 1:
        errors.append("%s: shards=%d < 1" % (mpath, shards))
    if expect_jobs is not None and jobs != expect_jobs:
        errors.append("%s: jobs=%d != %d CSV data rows"
                      % (mpath, jobs, expect_jobs))
    for s in range(shards):
        jpath = os.path.join(journal_dir, "shard-%03d.journal" % s)
        if not os.path.exists(jpath):
            errors.append("%s: missing journal for shard %d (%s)"
                          % (journal_dir, s, jpath))
    return errors


def check(path, expect_rows, expect_ok):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as exc:
        return ["%s: not readable: %s" % (path, exc)], 0

    if not lines:
        return ["%s: empty file" % path], 0
    header = lines[0].split(",")
    if header != COLUMNS:
        return ["header mismatch: got %r" % lines[0]], 0

    seen_ids = []
    n_ok = 0
    for lineno, line in enumerate(lines[1:], start=2):
        cells = line.split(",")
        if len(cells) != len(COLUMNS):
            errors.append("line %d: %d cells, want %d"
                          % (lineno, len(cells), len(COLUMNS)))
            continue
        row = dict(zip(COLUMNS, cells))
        for col in NUMERIC:
            if not row[col].isdigit():
                errors.append("line %d: %s=%r is not an unsigned "
                              "integer" % (lineno, col, row[col]))
        for col in ("fault_rate", "seconds", "sojourn_p50",
                    "sojourn_p99", "sojourn_p999", "abort_rate"):
            try:
                float(row[col])
            except ValueError:
                errors.append("line %d: %s=%r is not a number"
                              % (lineno, col, row[col]))
        if row["status"] not in STATUSES:
            errors.append("line %d: status=%r not in %s"
                          % (lineno, row["status"], sorted(STATUSES)))
        if row["valid"] not in ("0", "1"):
            errors.append("line %d: valid=%r not 0/1"
                          % (lineno, row["valid"]))
        if row["placement"] not in PLACEMENTS:
            errors.append("line %d: placement=%r not in %s"
                          % (lineno, row["placement"],
                             sorted(PLACEMENTS)))
        if row["job_id"].isdigit():
            seen_ids.append(int(row["job_id"]))
        n_ok += row["status"] == "ok"

    if seen_ids != sorted(set(seen_ids)):
        errors.append("job_ids are not strictly increasing and "
                      "unique: %s..." % seen_ids[:10])
    if seen_ids and seen_ids != list(range(len(seen_ids))):
        errors.append("job_ids are not dense from 0: %s..."
                      % seen_ids[:10])

    rows = len(lines) - 1
    if expect_rows is not None and rows != expect_rows:
        errors.append("row count %d != expected %d (|matrix|)"
                      % (rows, expect_rows))
    if expect_ok and n_ok != rows:
        errors.append("%d of %d rows not status=ok" % (rows - n_ok, rows))
    return errors, rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csv", help="sweep CSV file to validate")
    ap.add_argument("--expect-rows", type=int, default=None,
                    help="require exactly this many data rows "
                         "(the matrix size)")
    ap.add_argument("--expect-ok", action="store_true",
                    help="require every row to have status=ok")
    ap.add_argument("--manifest", default=None, metavar="DIR",
                    help="also validate the shard supervisor's "
                         "journal directory (MANIFEST + per-shard "
                         "journals) this CSV was merged from")
    args = ap.parse_args()

    errors, rows = check(args.csv, args.expect_rows, args.expect_ok)
    if args.manifest is not None:
        errors += check_manifest(args.manifest,
                                 rows if not errors else None)
    if errors:
        for err in errors:
            print("check_sweep: %s" % err, file=sys.stderr)
        return 1
    print("check_sweep: %s ok (%d rows)" % (args.csv, rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
