#!/usr/bin/env python3
"""Validate a chaos-campaign CSV against the canonical schema.

The chaos campaign (src/chaos/campaign.cc) writes one header plus one
row per run -- golden cell baselines first, then the judged chaos
runs -- in an order that depends only on the campaign spec, never on
worker count or timing. This checker keeps that contract honest from
the outside: CI runs a small fixed-seed campaign through tmi-chaos
and pipes the CSV through here, so a schema drift, a non-dense row
id, a golden without a digest, or a surviving run whose end state
silently diverged from its golden fails the build.

Usage:
    scripts/check_chaos.py chaos.csv
    scripts/check_chaos.py chaos.csv --expect-rows 195
    scripts/check_chaos.py chaos.csv --expect-pass
    scripts/check_chaos.py chaos.csv --manifest journal-dir/

--manifest validates the sharded campaign's journal directory: the
goldens/ and chaos/ phase subdirectories each carry a supervisor
MANIFEST plus one journal per shard, and their job counts must sum
to the CSV row count. Shard identity deliberately does NOT appear as
a CSV column (the CSV is byte-identical for any shard count), so
this is where the shard bookkeeping gets audited.

Exit status is non-zero on any schema violation or unmet requirement.
"""

import argparse
import os
import sys

# Keep in lockstep with chaosCsvHeader() in src/chaos/campaign.cc.
COLUMNS = [
    "row_id", "kind", "workload", "treatment", "threads", "scale",
    "seed", "campaign_seed", "schedule_index", "fault_seed", "events",
    "status", "outcome", "verdict", "reason", "rung", "cycles",
    "slowdown", "fault_fires", "t2p_aborts", "unrepairs",
    "watchdog_flushes", "ladder_drops", "ladder_recovers",
    "invariant_violations", "digest", "golden_digest",
]

KINDS = {"golden", "chaos"}
STATUSES = {"ok", "failed", "timeout", "cancelled", "poisoned"}
VERDICTS = {
    "golden", "pass", "digest.mismatch", "invariant.violation",
    "livelock", "run.failed", "no.digest",
}

NUMERIC = [
    "row_id", "threads", "scale", "seed", "campaign_seed",
    "schedule_index", "fault_seed", "events", "cycles", "fault_fires",
    "t2p_aborts", "unrepairs", "watchdog_flushes", "ladder_drops",
    "ladder_recovers", "invariant_violations",
]

HEX16 = ["digest", "golden_digest"]


def is_hex16(cell):
    return len(cell) == 16 and all(
        c in "0123456789abcdef" for c in cell)


def read_manifest(journal_dir):
    """Parse one supervisor journal dir. Returns (errors, jobs)."""
    errors = []
    mpath = os.path.join(journal_dir, "MANIFEST")
    try:
        with open(mpath, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as exc:
        return ["%s: not readable: %s" % (mpath, exc)], 0

    if not lines or lines[0] != "tmi-campaign-manifest v1":
        return ["%s: bad header %r" % (mpath, lines[:1])], 0
    kv = dict(line.split("=", 1) for line in lines[1:] if "=" in line)
    for key in ("jobs", "shards", "fingerprint"):
        if key not in kv:
            errors.append("%s: missing %s=" % (mpath, key))
    if errors:
        return errors, 0
    if not kv["jobs"].isdigit() or not kv["shards"].isdigit():
        return ["%s: jobs/shards are not unsigned integers"
                % mpath], 0
    fp = kv["fingerprint"]
    if len(fp) != 16 or any(c not in "0123456789abcdef" for c in fp):
        errors.append("%s: fingerprint=%r is not 16-digit hex"
                      % (mpath, fp))
    jobs, shards = int(kv["jobs"]), int(kv["shards"])
    if shards < 1:
        errors.append("%s: shards=%d < 1" % (mpath, shards))
    for s in range(shards):
        jpath = os.path.join(journal_dir, "shard-%03d.journal" % s)
        if not os.path.exists(jpath):
            errors.append("%s: missing journal for shard %d (%s)"
                          % (journal_dir, s, jpath))
    return errors, jobs


def check_manifest(campaign_dir, expect_rows):
    """Validate both phase journal dirs of a sharded campaign."""
    errors = []
    total_jobs = 0
    for phase in ("goldens", "chaos"):
        phase_errors, jobs = read_manifest(
            os.path.join(campaign_dir, phase))
        errors += phase_errors
        total_jobs += jobs
    if not errors and expect_rows is not None \
            and total_jobs != expect_rows:
        errors.append("%s: goldens+chaos jobs=%d != %d CSV data rows"
                      % (campaign_dir, total_jobs, expect_rows))
    return errors


def check(path, expect_rows, expect_pass):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as exc:
        return ["%s: not readable: %s" % (path, exc)], 0

    if not lines:
        return ["%s: empty file" % path], 0
    header = lines[0].split(",")
    if header != COLUMNS:
        return ["header mismatch: got %r" % lines[0]], 0

    seen_ids = []
    goldens = {}  # (workload, treatment) -> digest
    chaos_seen = False
    n_failed = 0
    for lineno, line in enumerate(lines[1:], start=2):
        cells = line.split(",")
        if len(cells) != len(COLUMNS):
            errors.append("line %d: %d cells, want %d"
                          % (lineno, len(cells), len(COLUMNS)))
            continue
        row = dict(zip(COLUMNS, cells))
        for col in NUMERIC:
            if not row[col].isdigit():
                errors.append("line %d: %s=%r is not an unsigned "
                              "integer" % (lineno, col, row[col]))
        for col in HEX16:
            if not is_hex16(row[col]):
                errors.append("line %d: %s=%r is not a 16-digit hex "
                              "digest" % (lineno, col, row[col]))
        try:
            float(row["slowdown"])
        except ValueError:
            errors.append("line %d: slowdown=%r is not a number"
                          % (lineno, row["slowdown"]))
        if row["kind"] not in KINDS:
            errors.append("line %d: kind=%r not in %s"
                          % (lineno, row["kind"], sorted(KINDS)))
        if row["status"] not in STATUSES:
            errors.append("line %d: status=%r not in %s"
                          % (lineno, row["status"], sorted(STATUSES)))
        if row["verdict"] not in VERDICTS:
            errors.append("line %d: verdict=%r not in %s"
                          % (lineno, row["verdict"], sorted(VERDICTS)))
        if row["row_id"].isdigit():
            seen_ids.append(int(row["row_id"]))

        cell = (row["workload"], row["treatment"])
        if row["kind"] == "golden":
            if row["verdict"] != "golden":
                errors.append("line %d: golden row has verdict=%r"
                              % (lineno, row["verdict"]))
            if chaos_seen:
                # Goldens come first; a late golden means the phase
                # ordering (and therefore determinism) broke.
                errors.append("line %d: golden row after chaos rows"
                              % lineno)
            goldens[cell] = row["digest"]
        else:
            chaos_seen = True
            if row["verdict"] == "golden":
                errors.append("line %d: chaos row has verdict=golden"
                              % lineno)
            if cell not in goldens:
                errors.append("line %d: chaos row for cell %s has no "
                              "preceding golden" % (lineno, cell))
            elif (row["golden_digest"] != goldens[cell]
                  and row["verdict"] != "no.digest"):
                errors.append(
                    "line %d: golden_digest=%s does not echo the "
                    "cell's golden (%s)"
                    % (lineno, row["golden_digest"], goldens[cell]))
            # The core oracle claim: a surviving run either matched
            # its golden digest or was flagged.
            if (row["status"] == "ok" and row["verdict"] == "pass"
                    and row["digest"] != row["golden_digest"]):
                errors.append(
                    "line %d: verdict=pass but digest %s != golden %s"
                    % (lineno, row["digest"], row["golden_digest"]))
            n_failed += row["verdict"] in (
                "digest.mismatch", "invariant.violation", "livelock",
                "run.failed")

    if seen_ids != sorted(set(seen_ids)):
        errors.append("row_ids are not strictly increasing and "
                      "unique: %s..." % seen_ids[:10])
    if seen_ids and seen_ids != list(range(len(seen_ids))):
        errors.append("row_ids are not dense from 0: %s..."
                      % seen_ids[:10])

    rows = len(lines) - 1
    if expect_rows is not None and rows != expect_rows:
        errors.append("row count %d != expected %d "
                      "(cells * (1 + schedules))"
                      % (rows, expect_rows))
    if expect_pass and n_failed:
        errors.append("%d chaos run(s) failed the oracle" % n_failed)
    return errors, rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csv", help="chaos campaign CSV file to validate")
    ap.add_argument("--expect-rows", type=int, default=None,
                    help="require exactly this many data rows "
                         "(cells * (1 + schedules))")
    ap.add_argument("--expect-pass", action="store_true",
                    help="require every judged run to pass the "
                         "differential oracle")
    ap.add_argument("--manifest", default=None, metavar="DIR",
                    help="also validate the sharded campaign's "
                         "journal directory (goldens/ and chaos/ "
                         "supervisor MANIFESTs + per-shard journals)")
    args = ap.parse_args()

    errors, rows = check(args.csv, args.expect_rows, args.expect_pass)
    if args.manifest is not None:
        errors += check_manifest(args.manifest,
                                 rows if not errors else None)
    if errors:
        for err in errors:
            print("check_chaos: %s" % err, file=sys.stderr)
        return 1
    print("check_chaos: %s ok (%d rows)" % (args.csv, rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
