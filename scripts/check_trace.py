#!/usr/bin/env python3
"""Validate a TMI Chrome trace JSON file against the event schema.

The exporter (src/obs/export.cc) writes Chrome trace_event JSON: one
"M" (metadata) process_name record followed by "i" (instant) events,
one per recorded TraceEvent.  This checker keeps that contract honest
from the outside -- CI runs a traced experiment and pipes the output
file through here, so a format drift that chrome://tracing or
Perfetto would reject fails the build instead of a demo.

Usage:
    scripts/check_trace.py trace.json
    scripts/check_trace.py trace.json --require fault.fire,ladder.drop
    scripts/check_trace.py trace.json --min-events 100

Exit status is non-zero on any schema violation or unmet requirement.
"""

import argparse
import collections
import json
import sys

# Keep in lockstep with eventKindName() in src/obs/trace.cc.
KNOWN_KINDS = {
    "hitm.sample",
    "pebs.record_drop",
    "t2p.begin",
    "t2p.commit",
    "t2p.rollback",
    "cow.fault",
    "cow.fallback",
    "ptsb.commit",
    "watchdog.flush",
    "repair.engage",
    "repair.page_protect",
    "repair.unrepair",
    "ladder.drop",
    "fault.fire",
    "detect.window",
    "alloc.fallback",
}


def check(path, require, min_events):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return ["%s: not readable as JSON: %s" % (path, exc)], {}

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["top level must be an object with a traceEvents array"], {}
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents must be an array"], {}

    counts = collections.Counter()
    last_ts = None
    saw_meta = False
    for i, ev in enumerate(events):
        where = "traceEvents[%d]" % i
        if not isinstance(ev, dict):
            errors.append("%s: not an object" % where)
            continue
        ph = ev.get("ph")
        if ph == "M":
            saw_meta = True
            continue
        if ph != "i":
            errors.append("%s: ph=%r, expected 'i' or 'M'" % (where, ph))
            continue
        name = ev.get("name")
        if name not in KNOWN_KINDS:
            errors.append("%s: unknown event kind %r" % (where, name))
        for field in ("ts", "pid", "tid"):
            if not isinstance(ev.get(field), (int, float)):
                errors.append("%s: missing numeric %r" % (where, field))
        args = ev.get("args")
        if not isinstance(args, dict) or not isinstance(
            args.get("cycles"), int
        ):
            errors.append("%s: args.cycles missing" % where)
        ts = ev.get("ts")
        if isinstance(ts, (int, float)):
            if last_ts is not None and ts < last_ts:
                errors.append(
                    "%s: timestamps go backwards (%s < %s)"
                    % (where, ts, last_ts)
                )
            last_ts = ts
        if isinstance(name, str):
            counts[name] += 1

    if not saw_meta:
        errors.append("no process_name metadata record")
    total = sum(counts.values())
    if total < min_events:
        errors.append(
            "only %d instant events, need at least %d" % (total, min_events)
        )
    for kind in require:
        if kind not in KNOWN_KINDS:
            errors.append("--require names unknown kind %r" % kind)
        elif counts[kind] == 0:
            errors.append("required event kind %r never fired" % kind)
    return errors, counts


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace JSON file to validate")
    ap.add_argument(
        "--require",
        default="",
        metavar="KIND[,KIND...]",
        help="comma-separated event kinds that must appear at least once",
    )
    ap.add_argument(
        "--min-events",
        type=int,
        default=1,
        metavar="N",
        help="fail unless at least N instant events are present",
    )
    opts = ap.parse_args()
    require = [k for k in opts.require.split(",") if k]

    errors, counts = check(opts.trace, require, opts.min_events)
    if errors:
        for err in errors:
            print("check_trace: %s" % err, file=sys.stderr)
        return 1
    total = sum(counts.values())
    summary = ", ".join(
        "%s=%d" % (k, counts[k]) for k in sorted(counts)
    )
    print("check_trace: OK, %d events (%s)" % (total, summary))
    return 0


if __name__ == "__main__":
    sys.exit(main())
