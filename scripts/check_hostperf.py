#!/usr/bin/env python3
"""Validate a BENCH_hostperf.json emitted by bench/host_perf.

The host-perf harness (bench/host_perf.cc) writes one JSON document
with a cell per workload x treatment: host nanoseconds per simulated
memory operation, plus the compiled-in pre-refactor baseline and the
resulting speedup. This checker keeps that contract honest from the
outside -- CI runs the benchmark at smoke scale and pipes the file
through here, so schema drift (a renamed key, a cell that silently
stopped measuring, an inconsistent derived value) fails the build
instead of someone's dashboard.

Usage:
    scripts/check_hostperf.py BENCH_hostperf.json
    scripts/check_hostperf.py BENCH_hostperf.json --expect-cells 11
    scripts/check_hostperf.py BENCH_hostperf.json \
        --min-speedup 1.5 --min-cells 3

--min-speedup requires at least --min-cells cells (default 1) with a
recorded baseline to meet the given speedup; it only makes sense at
the scale the baseline table was recorded at.

Exit status is non-zero on any schema violation or unmet requirement.
"""

import argparse
import json
import sys

SCHEMA = "tmi-hostperf-v1"

TOP_KEYS = ["schema", "scale", "threads", "reps", "baseline_scale",
            "cells"]

CELL_KEYS = ["workload", "treatment", "mem_ops", "host_ns",
             "ns_per_memop", "memops_per_sec",
             "baseline_ns_per_memop", "speedup_vs_baseline"]


def check(path, expect_cells, min_speedup, min_cells):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return ["%s: unreadable or not JSON: %s" % (path, exc)]

    for key in TOP_KEYS:
        if key not in doc:
            errors.append("missing top-level key %r" % key)
    if errors:
        return errors
    if doc["schema"] != SCHEMA:
        return ["schema %r, want %r" % (doc["schema"], SCHEMA)]
    for key in ("scale", "threads", "reps", "baseline_scale"):
        if not isinstance(doc[key], int) or doc[key] < 1:
            errors.append("%s=%r is not a positive integer"
                          % (key, doc[key]))

    cells = doc["cells"]
    if not isinstance(cells, list) or not cells:
        return errors + ["cells is not a non-empty list"]
    if expect_cells is not None and len(cells) != expect_cells:
        errors.append("%d cells, want %d" % (len(cells), expect_cells))

    seen = set()
    fast_enough = 0
    baselined = 0
    for i, cell in enumerate(cells):
        where = "cell %d" % i
        if not isinstance(cell, dict):
            errors.append("%s: not an object" % where)
            continue
        missing = [k for k in CELL_KEYS if k not in cell]
        if missing:
            errors.append("%s: missing keys %s" % (where, missing))
            continue
        where = "cell %d (%s x %s)" % (i, cell["workload"],
                                       cell["treatment"])
        key = (cell["workload"], cell["treatment"])
        if key in seen:
            errors.append("%s: duplicate cell" % where)
        seen.add(key)
        for k in ("mem_ops", "host_ns"):
            if not isinstance(cell[k], int) or cell[k] <= 0:
                errors.append("%s: %s=%r is not a positive integer"
                              % (where, k, cell[k]))
                break
        else:
            ns = cell["host_ns"] / cell["mem_ops"]
            if abs(ns - cell["ns_per_memop"]) > max(0.01, ns * 0.01):
                errors.append("%s: ns_per_memop=%r inconsistent with "
                              "host_ns/mem_ops=%.4f"
                              % (where, cell["ns_per_memop"], ns))
        base = cell["baseline_ns_per_memop"]
        speedup = cell["speedup_vs_baseline"]
        if base > 0:
            baselined += 1
            want = base / cell["ns_per_memop"]
            if abs(speedup - want) > max(0.01, want * 0.01):
                errors.append("%s: speedup=%r inconsistent with "
                              "baseline/ns_per_memop=%.4f"
                              % (where, speedup, want))
            if min_speedup is not None and speedup >= min_speedup:
                fast_enough += 1
        elif speedup != 0:
            errors.append("%s: speedup=%r without a baseline"
                          % (where, speedup))

    if min_speedup is not None:
        if baselined == 0:
            errors.append("--min-speedup given but no cell has a "
                          "baseline (scale %r vs baseline_scale %r)"
                          % (doc["scale"], doc["baseline_scale"]))
        elif fast_enough < min_cells:
            errors.append("only %d cells reach %.2fx, want >= %d"
                          % (fast_enough, min_speedup, min_cells))
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("json", help="BENCH_hostperf.json to validate")
    ap.add_argument("--expect-cells", type=int, default=None,
                    help="require exactly this many cells")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="require cells to reach this speedup")
    ap.add_argument("--min-cells", type=int, default=1,
                    help="cells that must meet --min-speedup")
    args = ap.parse_args()

    errors = check(args.json, args.expect_cells, args.min_speedup,
                   args.min_cells)
    for err in errors:
        print("check_hostperf: %s" % err, file=sys.stderr)
    if not errors:
        print("check_hostperf: %s ok" % args.json)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
