#!/usr/bin/env bash
# Tier-1 verification, twice: the plain build and the ASan+UBSan
# build. Both must be green for a change to land.
#
#   scripts/ci.sh            # both passes
#   scripts/ci.sh default    # plain only
#   scripts/ci.sh asan-ubsan # sanitized only
set -euo pipefail
cd "$(dirname "$0")/.."

# The fibers switch stacks via swapcontext; ASan's interceptor
# handles that, but stack-use-after-return instrumentation does not.
export ASAN_OPTIONS="detect_stack_use_after_return=0:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1:${UBSAN_OPTIONS:-}"

run_pass() {
    local preset="$1"
    echo "=== [$preset] configure + build + ctest ==="
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$(nproc)"
    ctest --preset "$preset"
}

for preset in "${@:-default asan-ubsan}"; do
    # Allow "scripts/ci.sh default asan-ubsan" as well as no args.
    for p in $preset; do
        run_pass "$p"
    done
done

# Observability smoke: one traced, fault-injected robustness run must
# emit Chrome trace JSON that passes the schema checker, including the
# fault-fire and ladder-drop events the robustness figure depends on.
echo "=== traced robustness sweep + trace schema check ==="
trace_out="$(mktemp -t tmi_trace.XXXXXX.json)"
trap 'rm -f "$trace_out"' EXIT
./build/examples/experiment_cli \
    --workload histogramfs --treatment tmi-protect --scale 2 \
    --fault mem.clone_fail:always \
    --trace-out "$trace_out"
python3 scripts/check_trace.py "$trace_out" \
    --require fault.fire,ladder.drop,t2p.rollback,hitm.sample \
    --min-events 100

# Sweep-driver smoke: a small matrix through tmi-sweep on 2 workers
# must produce a schema-valid CSV that is byte-identical to the same
# sweep on 1 worker (the driver's determinism contract).
echo "=== tmi-sweep smoke + CSV schema check ==="
sweep1="$(mktemp -t tmi_sweep1.XXXXXX.csv)"
sweep2="$(mktemp -t tmi_sweep2.XXXXXX.csv)"
trap 'rm -f "$trace_out" "$sweep1" "$sweep2"' EXIT
sweep_args=(--workloads histogramfs,spinlockpool
    --treatments pthreads,tmi-protect --scales 2
    --fault-points mem.frame_exhausted --fault-rates 0,0.5
    --no-progress)
./build/examples/tmi-sweep "${sweep_args[@]}" --workers 1 --csv "$sweep1"
./build/examples/tmi-sweep "${sweep_args[@]}" --workers 2 --csv "$sweep2"
python3 scripts/check_sweep.py "$sweep1" --expect-rows 8 --expect-ok
cmp "$sweep1" "$sweep2"

# Chaos smoke: a fixed-seed campaign over two cells must produce a
# schema-valid CSV, byte-identical on 1 and 4 workers, with every
# surviving run converging to its cell's fault-free digest; and the
# checked-in minimized reproducer for the Sheriff dissolve-ordering
# regression must still be caught by the differential oracle.
echo "=== tmi-chaos campaign smoke + golden reproducer replay ==="
chaos1="$(mktemp -t tmi_chaos1.XXXXXX.csv)"
chaos4="$(mktemp -t tmi_chaos4.XXXXXX.csv)"
trap 'rm -f "$trace_out" "$sweep1" "$sweep2" "$chaos1" "$chaos4"' EXIT
chaos_args=(--workloads histogramfs --treatments tmi-protect,laser
    --schedules 8 --campaign-seed 2026 --no-minimize --no-progress)
./build/examples/tmi-chaos campaign "${chaos_args[@]}" \
    --workers 1 --csv "$chaos1"
./build/examples/tmi-chaos campaign "${chaos_args[@]}" \
    --workers 4 --csv "$chaos4"
python3 scripts/check_chaos.py "$chaos1" --expect-rows 18 --expect-pass
cmp "$chaos1" "$chaos4"
./build/examples/tmi-chaos replay \
    goldens/chaos/sheriff_dissolve_order.spec --expect-fail

# Crash-safe orchestration smoke: the same workloads on the shard
# supervisor (worker processes + journals) must merge to CSVs
# byte-identical to the in-process runs, the checkers must validate
# the shard metadata the CSVs deliberately omit, and a supervisor
# SIGKILLed mid-campaign must resume from its journals into the same
# bytes as an uninterrupted run.
echo "=== crash-safe orchestration smoke (kill -9 + resume) ==="
shard_dir="$(mktemp -d -t tmi_shards.XXXXXX)"
sweep3="$(mktemp -t tmi_sweep3.XXXXXX.csv)"
sweep4="$(mktemp -t tmi_sweep4.XXXXXX.csv)"
kill_gold="$(mktemp -t tmi_killgold.XXXXXX.csv)"
chaos_sh="$(mktemp -t tmi_chaos_sh.XXXXXX.csv)"
trap 'rm -f "$trace_out" "$sweep1" "$sweep2" "$chaos1" "$chaos4" \
    "$sweep3" "$sweep4" "$kill_gold" "$chaos_sh"; \
    rm -rf "$shard_dir"' EXIT

./build/examples/tmi-sweep "${sweep_args[@]}" --csv "$sweep3" \
    --journal-dir "$shard_dir/full" --shards 3 --checkpoint-every 2
python3 scripts/check_sweep.py "$sweep3" --expect-rows 8 --expect-ok \
    --manifest "$shard_dir/full"
cmp "$sweep1" "$sweep3"

./build/examples/tmi-chaos campaign "${chaos_args[@]}" \
    --csv "$chaos_sh" --journal-dir "$shard_dir/chaos" --shards 2
python3 scripts/check_chaos.py "$chaos_sh" --expect-rows 18 \
    --expect-pass --manifest "$shard_dir/chaos"
cmp "$chaos1" "$chaos_sh"

# SIGKILL the supervisor once at least one result has been journaled.
# setsid gives it its own session, so the process-group kill takes
# the forked shard workers with it and leaves ci.sh alone. If the
# small campaign wins the race and finishes before the kill lands,
# resume is a no-op over complete journals -- the byte comparison is
# meaningful either way.
kill_args=(--workloads histogramfs,spinlockpool
    --treatments pthreads,tmi-protect --scales 2
    --fault-points mem.frame_exhausted --fault-rates 0,0.25,0.5,0.75
    --no-progress)
./build/examples/tmi-sweep "${kill_args[@]}" --workers 1 \
    --csv "$kill_gold"
setsid ./build/examples/tmi-sweep "${kill_args[@]}" --csv "$sweep4" \
    --journal-dir "$shard_dir/killed" --shards 2 \
    --checkpoint-every 1 &
victim=$!
for _ in $(seq 1 200); do
    size="$(stat -c%s "$shard_dir/killed/shard-000.journal" \
        2>/dev/null || echo 0)"
    if [ "$size" -gt 8 ]; then break; fi # past the journal magic
    sleep 0.02
done
kill -9 -- "-$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
./build/examples/tmi-sweep "${kill_args[@]}" --csv "$sweep4" \
    --journal-dir "$shard_dir/killed" --resume
cmp "$kill_gold" "$sweep4"
python3 scripts/check_sweep.py "$sweep4" --expect-rows 16 \
    --expect-ok --manifest "$shard_dir/killed"

# Access-path smoke: the cycle-identity golden (simulated outputs are
# byte-identical across hot-path changes; also run under ctest, pinned
# here explicitly because the AccessPipeline depends on it) plus one
# host-perf pass at smoke scale through the schema checker. Speedup
# gating only applies at the baseline scale, so CI checks schema, not
# throughput.
echo "=== cycle-identity golden + host-perf smoke ==="
./build/tests/integration_cycle_identity_test
hostperf="$(mktemp -t tmi_hostperf.XXXXXX.json)"
trap 'rm -f "$trace_out" "$sweep1" "$sweep2" "$chaos1" "$chaos4" \
    "$hostperf"' EXIT
TMI_BENCH_SCALE=1 TMI_HOSTPERF_REPS=1 \
    ./build/bench/host_perf --out "$hostperf"
python3 scripts/check_hostperf.py "$hostperf" --expect-cells 11

# Server-family smoke: the feed-handler workloads through the
# family:server spec expansion with --param knobs must produce a
# schema-valid CSV carrying per-row tail latency (nonzero requests,
# p50 <= p99 <= p999), byte-identical on 1 and 4 workers; and a
# misspelled --param key must fail fast (exit 2) naming the valid
# knobs instead of silently running the default.
echo "=== server-family latency sweep + --param validation ==="
server1="$(mktemp -t tmi_server1.XXXXXX.csv)"
server4="$(mktemp -t tmi_server4.XXXXXX.csv)"
param_err="$(mktemp -t tmi_paramerr.XXXXXX.txt)"
trap 'rm -f "$trace_out" "$sweep1" "$sweep2" "$chaos1" "$chaos4" \
    "$hostperf" "$server1" "$server4" "$param_err"' EXIT
server_args=(--workloads family:server
    --treatments pthreads,tmi-protect --scales 1
    --param requests=96 --param arrival_gap=300 --no-progress)
./build/examples/tmi-sweep "${server_args[@]}" --workers 1 \
    --csv "$server1"
./build/examples/tmi-sweep "${server_args[@]}" --workers 4 \
    --csv "$server4"
python3 scripts/check_sweep.py "$server1" --expect-rows 4 --expect-ok
cmp "$server1" "$server4"
awk -F, 'NR > 1 && ($30 + 0 == 0 || $31 + 0 > $32 + 0 \
    || $32 + 0 > $33 + 0) \
    { print "bad latency row: " $0; bad = 1 } END { exit bad }' \
    "$server1"

rc=0
./build/examples/tmi-sweep --workloads feed-spsc \
    --treatments pthreads --param bogus_knob=7 --no-progress \
    --dry-run 2> "$param_err" || rc=$?
[ "$rc" -eq 2 ]
grep -q "bogus_knob" "$param_err"
grep -q "arrival_gap" "$param_err"

# Static-repair smoke: the fixed-seed profile phase must synthesize
# exactly the checked-in golden layout plan (profile -> plan is
# deterministic), and a huron-static sweep -- both the self-profiling
# cells and a pure replay of the golden plan via --plan-in -- must be
# byte-identical on 1 and 4 workers, cut each workload's HITMs at
# least 5x against its pthreads row, and report zero profile HITMs on
# the pure replay (profiling really was skipped).
echo "=== huron-static golden plan + profile->plan->replay smoke ==="
plan_out="$(mktemp -t tmi_plan.XXXXXX.txt)"
huron1="$(mktemp -t tmi_huron1.XXXXXX.csv)"
huron4="$(mktemp -t tmi_huron4.XXXXXX.csv)"
replay1="$(mktemp -t tmi_replay1.XXXXXX.csv)"
trap 'rm -f "$trace_out" "$sweep1" "$sweep2" "$chaos1" "$chaos4" \
    "$hostperf" "$server1" "$server4" "$param_err" "$plan_out" \
    "$huron1" "$huron4" "$replay1"' EXIT
./build/examples/experiment_cli --workload histogramfs \
    --treatment huron-static --scale 4 --interval 500000 \
    --plan-out "$plan_out"
cmp goldens/staticrepair/histogramfs.plan "$plan_out"

huron_args=(--workloads histogramfs,lreg,spinlockpool
    --treatments pthreads,huron-static --scales 4 --interval 500000
    --no-progress)
./build/examples/tmi-sweep "${huron_args[@]}" --workers 1 \
    --csv "$huron1"
./build/examples/tmi-sweep "${huron_args[@]}" --workers 4 \
    --csv "$huron4"
python3 scripts/check_sweep.py "$huron1" --expect-rows 6 --expect-ok
cmp "$huron1" "$huron4"
awk -F, 'NR > 1 { hitm[$2 "," $3] = $18
        if ($3 == "huron-static" && ($34 + 0 < 1 || $35 != $34)) {
            print "huron row without applied plan: " $0; bad = 1 } }
    END { for (k in hitm) { split(k, a, ",")
            if (a[2] != "huron-static") continue
            base = hitm[a[1] ",pthreads"]
            if (hitm[k] * 5 > base) {
                print "weak repair on " a[1] ": " hitm[k] \
                    " vs " base; bad = 1 } }
        exit bad }' "$huron1"

./build/examples/tmi-sweep --workloads histogramfs \
    --treatments pthreads,huron-static --scales 4 --interval 500000 \
    --plan-in goldens/staticrepair/histogramfs.plan \
    --no-progress --workers 1 --csv "$replay1"
python3 scripts/check_sweep.py "$replay1" --expect-rows 2 --expect-ok
awk -F, 'NR > 1 && $3 == "huron-static" \
    && ($38 + 0 != 0 || $34 + 0 < 1 || $18 * 5 > base) \
    { print "bad replay row: " $0; bad = 1 }
    NR > 1 && $3 == "pthreads" { base = $18 }
    END { exit bad }' "$replay1"

# Long-running stateful server chaos smoke: fault schedules against
# the feed handlers (typed --param knobs, requests scaled well past
# the default so per-worker stat state stays live across many ring
# generations) must all converge to the fault-free end-state digest,
# byte-identical on 1 and 4 workers. sheriff-protect is excluded:
# it cannot validate the ring atomics.
echo "=== server-family chaos campaign smoke ==="
schaos1="$(mktemp -t tmi_schaos1.XXXXXX.csv)"
schaos4="$(mktemp -t tmi_schaos4.XXXXXX.csv)"
trap 'rm -f "$trace_out" "$sweep1" "$sweep2" "$chaos1" "$chaos4" \
    "$hostperf" "$server1" "$server4" "$param_err" "$plan_out" \
    "$huron1" "$huron4" "$replay1" "$schaos1" "$schaos4"' EXIT
schaos_args=(--workloads feed-spsc,feed-spmc
    --treatments tmi-protect,laser --schedules 4 --campaign-seed 2026
    --param requests=384 --param stat_rounds=8
    --no-minimize --no-progress)
./build/examples/tmi-chaos campaign "${schaos_args[@]}" \
    --workers 1 --csv "$schaos1"
./build/examples/tmi-chaos campaign "${schaos_args[@]}" \
    --workers 4 --csv "$schaos4"
python3 scripts/check_chaos.py "$schaos1" --expect-rows 20 \
    --expect-pass
cmp "$schaos1" "$schaos4"

# htm-elide smoke: the elision sweep must be byte-identical on 1 and
# 4 workers and show the backend doing its job -- spinlockpool's
# packed-lock HITMs collapse at least 10x with zero fallbacks, and
# the lock-free shptr-relaxed rows prove the txn hooks are a no-op
# (identical hitm and cycle counts against pthreads). The placement
# axis must keep its monotone abort-rate response (pack > arena >=
# isolate on per-worker malloc'd slots): elision cannot fix what the
# allocator broke, and CI pins that ordering.
echo "=== htm-elide sweep + malloc-placement gate ==="
htm1="$(mktemp -t tmi_htm1.XXXXXX.csv)"
htm4="$(mktemp -t tmi_htm4.XXXXXX.csv)"
place1="$(mktemp -t tmi_place1.XXXXXX.csv)"
trap 'rm -f "$trace_out" "$sweep1" "$sweep2" "$chaos1" "$chaos4" \
    "$hostperf" "$server1" "$server4" "$param_err" "$plan_out" \
    "$huron1" "$huron4" "$replay1" "$schaos1" "$schaos4" \
    "$htm1" "$htm4" "$place1"' EXIT
htm_args=(--workloads spinlockpool,shptr-lock,shptr-relaxed
    --treatments pthreads,htm-elide --scales 2 --no-progress)
./build/examples/tmi-sweep "${htm_args[@]}" --workers 1 --csv "$htm1"
./build/examples/tmi-sweep "${htm_args[@]}" --workers 4 --csv "$htm4"
python3 scripts/check_sweep.py "$htm1" --expect-rows 6 --expect-ok
cmp "$htm1" "$htm4"
awk -F, 'NR > 1 { hitm[$2 "," $3] = $18; cyc[$2 "," $3] = $16
        if ($3 == "htm-elide" && $2 == "spinlockpool" \
            && ($40 + 0 < 1 || $43 + 0 != 0)) {
            print "spinlockpool must elide commit-clean: " $0
            bad = 1 } }
    END { if (hitm["spinlockpool,htm-elide"] * 10 > \
              hitm["spinlockpool,pthreads"]) {
            print "weak elision on spinlockpool: " \
                hitm["spinlockpool,htm-elide"] " vs " \
                hitm["spinlockpool,pthreads"]; bad = 1 }
        if (hitm["shptr-relaxed,htm-elide"] != \
                hitm["shptr-relaxed,pthreads"] ||
            cyc["shptr-relaxed,htm-elide"] != \
                cyc["shptr-relaxed,pthreads"]) {
            print "txn hooks must be a no-op on lock-free code"
            bad = 1 }
        exit bad }' "$htm1"

./build/examples/tmi-sweep --workloads spinlockpool \
    --treatments htm-elide --placements pack,arena,isolate \
    --param small_slots=1 --scales 2 --no-progress \
    --workers 1 --csv "$place1"
python3 scripts/check_sweep.py "$place1" --expect-rows 3 --expect-ok
awk -F, 'NR > 1 { rate[$39] = $42 + 0 }
    END { if (!(rate["pack"] > rate["arena"] &&
               rate["arena"] >= rate["isolate"])) {
            print "placement abort-rate not monotone: pack=" \
                rate["pack"] " arena=" rate["arena"] \
                " isolate=" rate["isolate"]; bad = 1 }
        exit bad }' "$place1"

# Abort-storm chaos smoke: a fixed-seed campaign whose schedules arm
# all three htm.* fault points (spurious-abort storms included) must
# pass -- the armed watchdog bounds every storm -- with verdicts
# byte-identical on 1 and 4 workers; and the checked-in minimized
# livelock-by-abort reproducer (watchdog disarmed, stuck fallback)
# must still be caught by the oracle.
echo "=== htm abort-storm chaos smoke + livelock reproducer ==="
hchaos1="$(mktemp -t tmi_hchaos1.XXXXXX.csv)"
hchaos4="$(mktemp -t tmi_hchaos4.XXXXXX.csv)"
trap 'rm -f "$trace_out" "$sweep1" "$sweep2" "$chaos1" "$chaos4" \
    "$hostperf" "$server1" "$server4" "$param_err" "$plan_out" \
    "$huron1" "$huron4" "$replay1" "$schaos1" "$schaos4" \
    "$htm1" "$htm4" "$place1" "$hchaos1" "$hchaos4"' EXIT
hchaos_args=(--workloads spinlockpool --treatments htm-elide
    --schedules 8 --campaign-seed 2026 --no-minimize --no-progress)
./build/examples/tmi-chaos campaign "${hchaos_args[@]}" \
    --workers 1 --csv "$hchaos1"
./build/examples/tmi-chaos campaign "${hchaos_args[@]}" \
    --workers 4 --csv "$hchaos4"
python3 scripts/check_chaos.py "$hchaos1" --expect-rows 9 \
    --expect-pass
cmp "$hchaos1" "$hchaos4"
./build/examples/tmi-chaos replay \
    goldens/chaos/htm_abort_storm.spec --expect-fail

echo "=== CI green ==="
