#!/usr/bin/env bash
# Tier-1 verification, twice: the plain build and the ASan+UBSan
# build. Both must be green for a change to land.
#
#   scripts/ci.sh            # both passes
#   scripts/ci.sh default    # plain only
#   scripts/ci.sh asan-ubsan # sanitized only
set -euo pipefail
cd "$(dirname "$0")/.."

# The fibers switch stacks via swapcontext; ASan's interceptor
# handles that, but stack-use-after-return instrumentation does not.
export ASAN_OPTIONS="detect_stack_use_after_return=0:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1:${UBSAN_OPTIONS:-}"

run_pass() {
    local preset="$1"
    echo "=== [$preset] configure + build + ctest ==="
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$(nproc)"
    ctest --preset "$preset"
}

for preset in "${@:-default asan-ubsan}"; do
    # Allow "scripts/ci.sh default asan-ubsan" as well as no args.
    for p in $preset; do
        run_pass "$p"
    done
done

# Observability smoke: one traced, fault-injected robustness run must
# emit Chrome trace JSON that passes the schema checker, including the
# fault-fire and ladder-drop events the robustness figure depends on.
echo "=== traced robustness sweep + trace schema check ==="
trace_out="$(mktemp -t tmi_trace.XXXXXX.json)"
trap 'rm -f "$trace_out"' EXIT
./build/examples/experiment_cli \
    --workload histogramfs --treatment tmi-protect --scale 2 \
    --fault mem.clone_fail:always \
    --trace-out "$trace_out"
python3 scripts/check_trace.py "$trace_out" \
    --require fault.fire,ladder.drop,t2p.rollback,hitm.sample \
    --min-events 100

echo "=== CI green ==="
