/**
 * @file
 * The layout profile a static-repair profiling run harvests.
 *
 * Phase 1 of Huron-style repair runs the workload under the detector
 * with repair disabled and attributes each contended line back to the
 * live allocation(s) covering it, producing per-allocation-site
 * access evidence the planner turns into layout directives.
 */

#ifndef TMI_STATICREPAIR_PROFILE_HH
#define TMI_STATICREPAIR_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/machine.hh"

namespace tmi::staticrepair
{

/** One distinct access signature, re-based to allocation offsets. */
struct ProfileAccess
{
    ThreadId tid = 0;
    std::uint64_t offset = 0; //!< within the allocation
    unsigned width = 0;
    bool isWrite = false;
    /** Times sampled; PEBS address noise shows up as one-off strays
     *  and the planner filters on this. */
    std::uint64_t samples = 1;
};

/** Evidence for one allocation site. */
struct SiteProfile
{
    std::string key;          //!< allocation-site key
    std::uint64_t bytes = 0;  //!< allocation size observed
    double fsEvents = 0;      //!< estimated false-sharing events
    double tsEvents = 0;      //!< estimated true-sharing events
    std::vector<ProfileAccess> accesses;
    bool hasGeometry = false; //!< workload declared array geometry
    ArraySiteGeom geometry;
};

/** The full profile: sites sorted by key for determinism. */
struct LayoutProfile
{
    std::vector<SiteProfile> sites;
    /** Contended lines that matched no live allocation. */
    std::size_t unattributedLines = 0;
    /** Total contended lines the detector reported. */
    std::size_t contendedLines = 0;
};

} // namespace tmi::staticrepair

#endif // TMI_STATICREPAIR_PROFILE_HH
