#include "planner.hh"

#include <algorithm>
#include <map>

namespace tmi::staticrepair
{

namespace
{

struct ThreadRange
{
    std::uint64_t begin;
    std::uint64_t end;
};

/** Per-thread [min, max+width) touch ranges, sorted by begin. */
std::vector<ThreadRange>
threadRanges(const SiteProfile &site, const PlannerConfig &cfg)
{
    // PEBS address noise scatters near-unique one-off signatures
    // into other threads' territory; only repeated signatures shape
    // the ranges.
    std::uint64_t maxSamples = 0;
    for (const ProfileAccess &acc : site.accesses)
        maxSamples = std::max(maxSamples, acc.samples);
    double floor = std::max(
        static_cast<double>(cfg.minSigSamples),
        cfg.sigNoiseFraction * static_cast<double>(maxSamples));

    std::map<ThreadId, ThreadRange> byTid;
    for (const ProfileAccess &acc : site.accesses) {
        if (static_cast<double>(acc.samples) < floor)
            continue;
        auto [it, fresh] = byTid.try_emplace(
            acc.tid,
            ThreadRange{acc.offset, acc.offset + acc.width});
        if (!fresh) {
            it->second.begin = std::min(it->second.begin, acc.offset);
            it->second.end =
                std::max(it->second.end, acc.offset + acc.width);
        }
    }
    std::vector<ThreadRange> ranges;
    ranges.reserve(byTid.size());
    for (const auto &[tid, range] : byTid)
        ranges.push_back(range);
    std::sort(ranges.begin(), ranges.end(),
              [](const ThreadRange &a, const ThreadRange &b) {
                  return a.begin < b.begin;
              });
    return ranges;
}

bool
disjoint(const std::vector<ThreadRange> &ranges)
{
    for (std::size_t i = 1; i < ranges.size(); ++i) {
        if (ranges[i].begin < ranges[i - 1].end)
            return false;
    }
    return true;
}

} // namespace

LayoutPlan
LayoutPlanner::plan(const LayoutProfile &profile) const
{
    LayoutPlan out;
    for (const SiteProfile &site : profile.sites) {
        if (site.fsEvents < _cfg.minSiteFsEvents)
            continue;
        PlanSite ps;
        ps.key = site.key;
        ps.bytes = site.bytes;
        ps.kind = RepairKind::Pad;

        if (site.hasGeometry && site.geometry.elemBytes > 0 &&
            site.geometry.count > 0 &&
            site.geometry.baseOff +
                    site.geometry.elemBytes * site.geometry.count <=
                site.bytes) {
            ps.kind = RepairKind::Spread;
            ps.arrayBase = site.geometry.baseOff;
            ps.arrayStride = site.geometry.elemBytes;
            ps.arrayCount = site.geometry.count;
        } else {
            std::vector<ThreadRange> ranges =
                threadRanges(site, _cfg);
            if (ranges.size() >= 2 && disjoint(ranges)) {
                // Cut just below each later thread's first touched
                // byte (8-byte rounded so a field straddle stays
                // whole), clamped above the previous range.
                std::vector<std::uint64_t> cuts;
                bool ok = true;
                std::uint64_t prevEnd = ranges[0].end;
                std::uint64_t prevCut = 0;
                for (std::size_t i = 1; i < ranges.size(); ++i) {
                    std::uint64_t cut = std::max(
                        prevEnd, roundDown(ranges[i].begin, 8));
                    if (cut <= prevCut || cut >= site.bytes) {
                        ok = false;
                        break;
                    }
                    cuts.push_back(cut);
                    prevCut = cut;
                    prevEnd = ranges[i].end;
                }
                if (ok) {
                    ps.kind = RepairKind::Split;
                    ps.cuts = std::move(cuts);
                }
            }
        }

        if (lowerSite(ps).newBytes > _cfg.maxSiteBytes) {
            // Too costly to expand: fall back to plain padding.
            ps.kind = RepairKind::Pad;
            ps.cuts.clear();
            ps.arrayBase = ps.arrayStride = ps.arrayCount = 0;
            if (lowerSite(ps).newBytes > _cfg.maxSiteBytes)
                continue;
        }
        out.sites.push_back(std::move(ps));
    }
    return out;
}

} // namespace tmi::staticrepair
