#include "applier.hh"

#include <algorithm>

namespace tmi::staticrepair
{

PlanApplier::PlanApplier(Machine &machine, LayoutPlan plan)
    : _m(machine), _plan(std::move(plan))
{}

Addr
PlanApplier::onAlloc(ThreadId tid, const std::string &key,
                     std::uint64_t bytes, Addr alignment)
{
    const PlanSite *site = _plan.find(key, bytes);
    if (!site)
        return 0;
    LoweredSite low = lowerSite(*site);
    // Preserve any alignment the workload itself requested (e.g. a
    // page-aligned stat block) on top of the plan's line alignment.
    Addr align = std::max<Addr>(alignment, low.alignment);
    Addr base = _m.allocator().memalign(tid, align, low.newBytes);
    if (!low.segments.empty()) {
        std::vector<LayoutSegment> segs = low.segments;
        for (LayoutSegment &seg : segs) {
            seg.begin += base;
            seg.end += base;
        }
        _m.staticLayout().install(base, std::move(segs));
        _placed.insert(base);
        ++_redirected;
    }
    ++_applied;
    _padding += low.newBytes - bytes;
    return base;
}

void
PlanApplier::onFree(ThreadId tid, Addr base)
{
    (void)tid;
    if (_placed.erase(base))
        _m.staticLayout().remove(base);
}

} // namespace tmi::staticrepair
