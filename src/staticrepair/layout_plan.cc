#include "layout_plan.hh"

#include <cstdio>
#include <sstream>

namespace tmi::staticrepair
{

const char *
repairKindName(RepairKind kind)
{
    switch (kind) {
      case RepairKind::Pad:
        return "pad";
      case RepairKind::Split:
        return "split";
      case RepairKind::Spread:
        return "spread";
    }
    return "?";
}

const PlanSite *
LayoutPlan::find(const std::string &key, std::uint64_t bytes) const
{
    for (const PlanSite &site : sites) {
        if (site.key == key && site.bytes == bytes)
            return &site;
    }
    return nullptr;
}

std::string
writePlan(const LayoutPlan &plan)
{
    std::ostringstream out;
    out << "tmi-layout-plan v1\n";
    for (const PlanSite &site : plan.sites) {
        out << "site " << site.key << " bytes " << site.bytes << ' '
            << repairKindName(site.kind);
        switch (site.kind) {
          case RepairKind::Pad:
            break;
          case RepairKind::Split:
            for (std::uint64_t cut : site.cuts)
                out << ' ' << cut;
            break;
          case RepairKind::Spread:
            out << ' ' << site.arrayBase << ' ' << site.arrayStride
                << ' ' << site.arrayCount;
            break;
        }
        out << '\n';
    }
    out << "end\n";
    return out.str();
}

namespace
{

bool
parseU64(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : tok) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = v;
    return true;
}

} // namespace

bool
parsePlan(const std::string &text, LayoutPlan &out, std::string &err)
{
    out = LayoutPlan{};
    std::istringstream in(text);
    std::string line;
    bool sawHeader = false;
    bool sawEnd = false;
    unsigned lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream toks(line);
        std::string tok;
        toks >> tok;
        if (!sawHeader) {
            std::string version;
            toks >> version;
            if (tok != "tmi-layout-plan" || version != "v1") {
                err = "line " + std::to_string(lineno) +
                      ": expected 'tmi-layout-plan v1' header";
                return false;
            }
            sawHeader = true;
            continue;
        }
        if (sawEnd) {
            err = "line " + std::to_string(lineno) +
                  ": content after 'end'";
            return false;
        }
        if (tok == "end") {
            sawEnd = true;
            continue;
        }
        if (tok != "site") {
            err = "line " + std::to_string(lineno) +
                  ": expected 'site' or 'end', got '" + tok + "'";
            return false;
        }
        PlanSite site;
        std::string byteskw, bytestok, kind;
        toks >> site.key >> byteskw >> bytestok >> kind;
        if (site.key.empty() || byteskw != "bytes" ||
            !parseU64(bytestok, site.bytes) || site.bytes == 0) {
            err = "line " + std::to_string(lineno) +
                  ": expected 'site <key> bytes <n> <kind> ...'";
            return false;
        }
        std::vector<std::uint64_t> nums;
        while (toks >> tok) {
            std::uint64_t v = 0;
            if (!parseU64(tok, v)) {
                err = "line " + std::to_string(lineno) +
                      ": bad number '" + tok + "'";
                return false;
            }
            nums.push_back(v);
        }
        if (kind == "pad") {
            site.kind = RepairKind::Pad;
            if (!nums.empty()) {
                err = "line " + std::to_string(lineno) +
                      ": pad takes no arguments";
                return false;
            }
        } else if (kind == "split") {
            site.kind = RepairKind::Split;
            if (nums.empty()) {
                err = "line " + std::to_string(lineno) +
                      ": split needs at least one cut";
                return false;
            }
            std::uint64_t prev = 0;
            for (std::uint64_t cut : nums) {
                if (cut <= prev || cut >= site.bytes) {
                    err = "line " + std::to_string(lineno) +
                          ": cuts must be strictly increasing in "
                          "(0, bytes)";
                    return false;
                }
                prev = cut;
            }
            site.cuts = std::move(nums);
        } else if (kind == "spread") {
            site.kind = RepairKind::Spread;
            if (nums.size() != 3) {
                err = "line " + std::to_string(lineno) +
                      ": spread needs <base> <stride> <count>";
                return false;
            }
            site.arrayBase = nums[0];
            site.arrayStride = nums[1];
            site.arrayCount = nums[2];
            if (site.arrayStride == 0 || site.arrayCount == 0 ||
                site.arrayBase +
                        site.arrayStride * site.arrayCount >
                    site.bytes) {
                err = "line " + std::to_string(lineno) +
                      ": spread geometry exceeds the allocation";
                return false;
            }
        } else {
            err = "line " + std::to_string(lineno) +
                  ": unknown directive '" + kind + "'";
            return false;
        }
        out.sites.push_back(std::move(site));
    }
    if (!sawHeader) {
        err = "empty plan: missing header";
        return false;
    }
    if (!sawEnd) {
        err = "truncated plan: missing 'end'";
        return false;
    }
    return true;
}

LoweredSite
lowerSite(const PlanSite &site)
{
    LoweredSite low;
    low.alignment = lineBytes;
    switch (site.kind) {
      case RepairKind::Pad:
        low.newBytes = roundUp(site.bytes, lineBytes);
        break;
      case RepairKind::Split: {
        // Parts [0,c1), [c1,c2), ..., [ck, bytes). The first part
        // keeps offset 0 (the base is line-aligned); every later
        // part starts on the next fresh line.
        std::uint64_t begin = 0;
        std::uint64_t newOff = 0;
        std::uint64_t newEnd = 0;
        std::size_t part = 0;
        for (std::size_t i = 0; i <= site.cuts.size(); ++i, ++part) {
            std::uint64_t end =
                i < site.cuts.size() ? site.cuts[i] : site.bytes;
            if (part > 0)
                newOff = roundUp(newEnd, lineBytes);
            std::int64_t shift =
                static_cast<std::int64_t>(newOff) -
                static_cast<std::int64_t>(begin);
            if (shift != 0)
                low.segments.push_back({begin, end, shift});
            newEnd = newOff + (end - begin);
            begin = end;
        }
        low.newBytes = roundUp(newEnd, lineBytes);
        break;
      }
      case RepairKind::Spread: {
        // Head [0, arrayBase) stays put; element i moves to its own
        // line (elements wider than a line keep line-rounded
        // spacing); any tail follows the last element.
        std::uint64_t spacing = roundUp(site.arrayStride, lineBytes);
        std::uint64_t newBase =
            site.arrayBase ? roundUp(site.arrayBase, lineBytes) : 0;
        for (std::uint64_t i = 0; i < site.arrayCount; ++i) {
            std::uint64_t begin =
                site.arrayBase + i * site.arrayStride;
            std::uint64_t newOff = newBase + i * spacing;
            std::int64_t shift =
                static_cast<std::int64_t>(newOff) -
                static_cast<std::int64_t>(begin);
            if (shift != 0) {
                low.segments.push_back(
                    {begin, begin + site.arrayStride, shift});
            }
        }
        std::uint64_t tailBegin =
            site.arrayBase + site.arrayCount * site.arrayStride;
        std::uint64_t tailNew = newBase + site.arrayCount * spacing;
        std::uint64_t newEnd = tailNew;
        if (site.bytes > tailBegin) {
            std::int64_t shift =
                static_cast<std::int64_t>(tailNew) -
                static_cast<std::int64_t>(tailBegin);
            if (shift != 0)
                low.segments.push_back({tailBegin, site.bytes, shift});
            newEnd = tailNew + (site.bytes - tailBegin);
        }
        low.newBytes = roundUp(newEnd, lineBytes);
        break;
      }
    }
    if (low.newBytes < site.bytes)
        low.newBytes = site.bytes;
    return low;
}

std::size_t
redirectedSiteCount(const LayoutPlan &plan)
{
    std::size_t n = 0;
    for (const PlanSite &site : plan.sites)
        n += site.kind != RepairKind::Pad;
    return n;
}

} // namespace tmi::staticrepair
