#include "profiler.hh"

#include <algorithm>
#include <map>

namespace tmi::staticrepair
{

StaticProfiler::StaticProfiler(Machine &machine,
                               const ProfilerConfig &config)
    : _m(machine), _cfg(config),
      _detector(machine.instructions(), machine.addressMap(),
                config.detector)
{}

void
StaticProfiler::attach()
{
    _m.spawnSystemThread(
        "static-profiler", [this](ThreadApi &) { loop(); },
        /*daemon=*/true);
}

void
StaticProfiler::loop()
{
    // The TMI detection loop, minus the repair arm: drain, classify,
    // analyze, charge the cost -- and never nominate a page.
    Cycles last = _m.sched().now();
    std::vector<PebsRecord> records;
    while (true) {
        _m.sched().sleepUntil(last + _cfg.analysisInterval);
        Cycles now = _m.sched().now();
        Cycles window = now - last;
        last = now;
        records.clear();
        _m.perf().drainAll(records);
        Cycles cost = 0;
        for (const PebsRecord &rec : records)
            cost += _detector.consume(rec);
        AnalysisResult res = _detector.analyze(window);
        cost += res.cost;
        _m.sched().advance(cost);
    }
}

LayoutProfile
StaticProfiler::harvest()
{
    // Records sampled after the daemon's last wakeup would otherwise
    // be lost; classification cost no longer matters post-run.
    std::vector<PebsRecord> leftovers;
    _m.perf().drainAll(leftovers);
    for (const PebsRecord &rec : leftovers)
        _detector.consume(rec);

    LayoutProfile profile;
    std::map<std::string, SiteProfile> bySite;
    std::vector<LineReport> lines =
        _detector.topContendedLines(_cfg.maxLines);
    profile.contendedLines = lines.size();
    for (const LineReport &line : lines) {
        // A line attributes to every live allocation it overlaps
        // (allocator packing puts several small objects on one line).
        bool attributed = false;
        std::map<std::string, bool> credited;
        for (const ReportedAccess &acc : line.accesses) {
            Addr addr = line.lineAddr + acc.offset;
            const AllocationRecord *rec = _m.findAllocation(addr);
            if (!rec)
                continue;
            attributed = true;
            SiteProfile &site = bySite[rec->site];
            if (site.key.empty()) {
                site.key = rec->site;
                site.bytes = rec->bytes;
                std::string name =
                    rec->site.substr(0, rec->site.find('#'));
                if (const ArraySiteGeom *geom = _m.arraySite(name)) {
                    site.hasGeometry = true;
                    site.geometry = *geom;
                }
            }
            site.accesses.push_back({acc.tid, addr - rec->base,
                                     acc.width, acc.isWrite,
                                     acc.samples});
            if (!credited[rec->site]) {
                credited[rec->site] = true;
                site.fsEvents += line.fsEvents;
                site.tsEvents += line.tsEvents;
            }
        }
        if (!attributed)
            ++profile.unattributedLines;
    }
    for (auto &[key, site] : bySite) {
        std::sort(site.accesses.begin(), site.accesses.end(),
                  [](const ProfileAccess &a, const ProfileAccess &b) {
                      if (a.offset != b.offset)
                          return a.offset < b.offset;
                      if (a.tid != b.tid)
                          return a.tid < b.tid;
                      if (a.width != b.width)
                          return a.width < b.width;
                      return a.isWrite < b.isWrite;
                  });
        profile.sites.push_back(std::move(site));
    }
    return profile;
}

} // namespace tmi::staticrepair
