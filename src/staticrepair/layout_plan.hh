/**
 * @file
 * The serializable layout plan a Huron-style static repair produces.
 *
 * A plan is a list of per-allocation-site directives synthesized from
 * a profiling run: Pad (line-align and round up), Split (pull each
 * thread's byte range onto its own line), and Spread (per-element
 * line spacing for array-like sites, snippet-2 style index
 * redirection). Plans round-trip through a stable text format so CI
 * can pin goldens: parsePlan(writePlan(p)) == p.
 *
 * Directives are expressed against *allocation offsets*; lowerSite()
 * turns one into the machine-level LayoutSegment table relative to a
 * concrete base address at apply time.
 */

#ifndef TMI_STATICREPAIR_LAYOUT_PLAN_HH
#define TMI_STATICREPAIR_LAYOUT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/machine.hh"

namespace tmi::staticrepair
{

/** How one allocation site is repaired. */
enum class RepairKind
{
    Pad,    //!< line-align the base, round the size up to a line
    Split,  //!< line-align each thread's partition of the object
    Spread, //!< one cache line per array element (index redirection)
};

/** Stable lowercase token for the plan text format. */
const char *repairKindName(RepairKind kind);

/** One per-site directive. */
struct PlanSite
{
    /** Allocation-site key (Machine::allocationLog site string). */
    std::string key;
    /** Allocation size the directive applies to; other sizes at the
     *  same site are left alone (the profile may be stale). */
    std::uint64_t bytes = 0;
    RepairKind kind = RepairKind::Pad;

    /** Split: strictly increasing interior cut offsets; part i spans
     *  [cut[i-1], cut[i]) with an implicit leading cut at 0. */
    std::vector<std::uint64_t> cuts;

    /** Spread: element geometry within the allocation. */
    std::uint64_t arrayBase = 0;
    std::uint64_t arrayStride = 0;
    std::uint64_t arrayCount = 0;

    bool operator==(const PlanSite &) const = default;
};

/** The full plan: one directive per repaired site. */
struct LayoutPlan
{
    std::vector<PlanSite> sites;

    bool operator==(const LayoutPlan &) const = default;

    /** Directive for (@p key, @p bytes), or null. */
    const PlanSite *find(const std::string &key,
                         std::uint64_t bytes) const;
};

/** Serialize @p plan to the versioned text format. */
std::string writePlan(const LayoutPlan &plan);

/**
 * Parse the text format. Returns false and sets @p err on malformed
 * input (bad header, unknown directive, non-increasing cuts, ...).
 */
bool parsePlan(const std::string &text, LayoutPlan &out,
               std::string &err);

/** A directive lowered against offset 0 (add the base at apply). */
struct LoweredSite
{
    /** Offset-relative redirection segments (empty for Pad). */
    std::vector<LayoutSegment> segments;
    /** Placement size after the repair (>= the original bytes). */
    std::uint64_t newBytes = 0;
    /** Required placement alignment. */
    std::uint64_t alignment = lineBytes;
};

/** Lower @p site's directive to segments and a placement size. */
LoweredSite lowerSite(const PlanSite &site);

/** Number of plan sites that install redirection (Split + Spread). */
std::size_t redirectedSiteCount(const LayoutPlan &plan);

} // namespace tmi::staticrepair

#endif // TMI_STATICREPAIR_LAYOUT_PLAN_HH
