/**
 * @file
 * The profiling daemon for static repair: TMI's detection loop with
 * the repair arm cut off. It drains PEBS records on the detector's
 * cadence and charges classification/analysis cost to its own system
 * thread, so a profiling run models the in-house profiling tax; at
 * run end, harvest() attributes the contended lines to allocation
 * sites through the machine's allocation log.
 */

#ifndef TMI_STATICREPAIR_PROFILER_HH
#define TMI_STATICREPAIR_PROFILER_HH

#include "detect/detector.hh"
#include "staticrepair/profile.hh"

namespace tmi::staticrepair
{

/** Profiling-pass tuning. */
struct ProfilerConfig
{
    DetectorConfig detector;
    /** Drain/analyze cadence (matches the TMI runtime default). */
    Cycles analysisInterval = 2'000'000;
    /** Hottest lines harvested into the profile. */
    std::size_t maxLines = 64;

    bool operator==(const ProfilerConfig &) const = default;
};

/** Phase-1 profiler: observe, never repair. */
class StaticProfiler
{
  public:
    StaticProfiler(Machine &machine, const ProfilerConfig &config);

    /** Spawn the daemon detection thread (before the workload). */
    void attach();

    /**
     * Build the profile after the run: drain any leftover records,
     * then attribute the hottest contended lines to the live
     * allocations covering them.
     */
    LayoutProfile harvest();

    const Detector &detector() const { return _detector; }

  private:
    void loop();

    Machine &_m;
    ProfilerConfig _cfg;
    Detector _detector;
};

} // namespace tmi::staticrepair

#endif // TMI_STATICREPAIR_PROFILER_HH
