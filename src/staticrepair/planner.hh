/**
 * @file
 * The layout planner: turns a LayoutProfile into a LayoutPlan.
 *
 * Directive choice per site, in preference order:
 *  - Spread when the workload declared array geometry (snippet-2
 *    style per-element index redirection);
 *  - Split when the profiled threads touch pairwise-disjoint byte
 *    ranges (each range gets its own line run);
 *  - Pad otherwise (line-align and round up -- fixes packing-induced
 *    false sharing between neighboring allocations).
 *
 * Planning is deterministic: the same profile yields a byte-identical
 * plan, which is what lets CI pin golden plans.
 */

#ifndef TMI_STATICREPAIR_PLANNER_HH
#define TMI_STATICREPAIR_PLANNER_HH

#include "staticrepair/layout_plan.hh"
#include "staticrepair/profile.hh"

namespace tmi::staticrepair
{

/** Planner tuning. */
struct PlannerConfig
{
    /** Sites below this many estimated FS events are noise (PEBS
     *  address jitter lands a few records on innocent lines). */
    double minSiteFsEvents = 500.0;
    /** Cap on a repaired site's expanded size. */
    std::uint64_t maxSiteBytes = std::uint64_t{1} << 22;
    /** Signatures sampled fewer times than this are ignored when
     *  deriving per-thread ranges (PEBS address-noise strays are
     *  near-unique, hot program accesses repeat). */
    std::uint64_t minSigSamples = 2;
    /** ... and also ignored below this fraction of the site's
     *  hottest signature. */
    double sigNoiseFraction = 0.04;

    bool operator==(const PlannerConfig &) const = default;
};

class LayoutPlanner
{
  public:
    explicit LayoutPlanner(const PlannerConfig &config = {})
        : _cfg(config)
    {}

    /** Synthesize the plan (profile sites must be sorted by key). */
    LayoutPlan plan(const LayoutProfile &profile) const;

  private:
    PlannerConfig _cfg;
};

} // namespace tmi::staticrepair

#endif // TMI_STATICREPAIR_PLANNER_HH
