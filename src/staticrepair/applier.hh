/**
 * @file
 * The plan applier: an AllocHook that places profiled allocation
 * sites according to a LayoutPlan during the replay run.
 *
 * Pad sites are simply realigned and rounded up; Split/Spread sites
 * additionally install machine-level redirection segments so every
 * access to the original offsets lands on the repaired layout.
 * Memory comes from the machine's stock allocator (memalign), so the
 * application's free() of the returned base stays valid; a free drops
 * the site's segments.
 */

#ifndef TMI_STATICREPAIR_APPLIER_HH
#define TMI_STATICREPAIR_APPLIER_HH

#include <set>

#include "staticrepair/layout_plan.hh"

namespace tmi::staticrepair
{

/** Phase-2 allocation interceptor. */
class PlanApplier : public AllocHook
{
  public:
    PlanApplier(Machine &machine, LayoutPlan plan);

    Addr onAlloc(ThreadId tid, const std::string &key,
                 std::uint64_t bytes, Addr alignment) override;
    void onFree(ThreadId tid, Addr base) override;

    /** @name Apply telemetry */
    /// @{
    /** Allocations placed by the plan. */
    std::uint64_t appliedSites() const { return _applied; }
    /** Extra bytes the repaired placements occupy. */
    std::uint64_t paddingBytes() const { return _padding; }
    /** Placed allocations that installed redirection segments. */
    std::uint64_t redirectedSites() const { return _redirected; }
    /// @}

    const LayoutPlan &plan() const { return _plan; }

  private:
    Machine &_m;
    LayoutPlan _plan;
    std::set<Addr> _placed; //!< bases with installed segments
    std::uint64_t _applied = 0;
    std::uint64_t _padding = 0;
    std::uint64_t _redirected = 0;
};

} // namespace tmi::staticrepair

#endif // TMI_STATICREPAIR_APPLIER_HH
