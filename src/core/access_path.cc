#include "access_path.hh"

namespace tmi
{

AccessPipeline::AccessPipeline(unsigned cores)
    : _pcs(static_cast<std::size_t>(cores) * pcWays),
      _frames(static_cast<std::size_t>(cores) * frameWays)
{
}

} // namespace tmi
