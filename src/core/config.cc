/**
 * @file
 * Config aggregation + the fluent ExperimentBuilder.
 */

#include "core/config.hh"

namespace tmi
{

std::vector<ConfigError>
Config::validate() const
{
    std::vector<ConfigError> errors;
    validateConfig(run, errors, "run");
    validateConfig(machine, errors, "machine");
    validateConfig(tmi, errors, "tmi");
    return errors;
}

void
Config::validateOrDie() const
{
    fatalIfConfigErrors(validate());
}

ExperimentBuilder &
ExperimentBuilder::workload(const std::string &name)
{
    _config.run.workload = name;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::treatment(Treatment t)
{
    _config.run.treatment = t;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::threads(unsigned n)
{
    _config.run.threads = n;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::scale(std::uint64_t s)
{
    _config.run.scale = s;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::pageShift(unsigned shift)
{
    _config.run.pageShift = shift;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::allocator(AllocatorKind kind)
{
    _config.run.allocator = kind;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::placement(PlacementPolicy p)
{
    _config.run.placement = p;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::perfPeriod(std::uint64_t period)
{
    _config.run.perfPeriod = period;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::repairThreshold(double threshold)
{
    _config.run.repairThreshold = threshold;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::analysisInterval(Cycles interval)
{
    _config.run.analysisInterval = interval;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::budget(Cycles cycles)
{
    _config.run.budget = cycles;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::seed(std::uint64_t s)
{
    _config.run.seed = s;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::dumpStats(bool on)
{
    _config.run.dumpStats = on;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::planIn(const std::string &text)
{
    _config.run.planIn = text;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::param(const std::string &key,
                         const std::string &value)
{
    _config.run.params.emplace_back(key, value);
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::fault(const std::string &point, const FaultSpec &spec)
{
    _config.run.faults.emplace_back(point, spec);
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::faultSeed(std::uint64_t s)
{
    _config.run.faultSeed = s;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::watchdog(int mode)
{
    _config.run.watchdog = mode;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::watchdogTimeout(Cycles timeout)
{
    _config.run.watchdogTimeout = timeout;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::monitor(int mode)
{
    _config.run.monitor = mode;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::machine(const MachineConfig &mc)
{
    _config.machine = mc;
    // Mirror the scalars the overlay would clobber, so a machine()
    // template is honored in full unless a later scalar setter
    // deliberately overrides part of it.
    _config.run.threads = mc.cores;
    _config.run.pageShift = mc.pageShift;
    _config.run.allocator = mc.allocator;
    _config.run.perfPeriod = mc.perf.period;
    _config.run.seed = mc.seed;
    _config.run.faults = mc.faults;
    _config.run.faultSeed = mc.faultSeed;
    _config.run.trace = mc.trace;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::runtime(const TmiConfig &tc)
{
    _config.tmi = tc;
    _config.run.repairThreshold = tc.detector.repairThreshold;
    _config.run.analysisInterval = tc.analysisInterval;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::detector(const DetectorConfig &dc)
{
    _config.tmi.detector = dc;
    _config.run.repairThreshold = dc.repairThreshold;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::robustness(const RobustnessConfig &rc)
{
    _config.tmi.robust = rc;
    // The run-level -1/0/1 overrides default to "keep the template".
    _config.run.watchdog = rc.watchdogEnabled ? 1 : 0;
    _config.run.monitor = rc.monitorEnabled ? 1 : 0;
    _config.run.watchdogTimeout = rc.watchdogTimeout;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::trace(const obs::TraceConfig &tc)
{
    _config.run.trace = tc;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::trace(bool enabled)
{
    _config.run.trace.enabled = enabled;
    return *this;
}

std::vector<ConfigError>
ExperimentBuilder::check() const
{
    return _config.validate();
}

Config
ExperimentBuilder::build() const
{
    _config.validateOrDie();
    return _config;
}

RunResult
ExperimentBuilder::run() const
{
    return runExperiment(build());
}

} // namespace tmi
