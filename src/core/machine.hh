/**
 * @file
 * The simulated machine: the execution substrate every experiment
 * runs on.
 *
 * A Machine couples the green-thread scheduler, the MMU, the MESI
 * cache hierarchy, per-core TLBs, the PEBS/perf model, the
 * application allocator, and the synchronization layer. Workloads
 * program against ThreadApi; runtimes (Tmi, Sheriff, LASER) observe
 * and steer execution through the RuntimeHooks interface.
 *
 * Simulated wall-clock time is SimScheduler::maxClock() -- the
 * makespan across all thread clocks -- so speedups are ratios of
 * simulated cycles, not host time.
 */

#ifndef TMI_CORE_MACHINE_HH
#define TMI_CORE_MACHINE_HH

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "alloc/allocator.hh"
#include "cache/cache_sim.hh"
#include "cache/tlb.hh"
#include "common/rng.hh"
#include "core/access_path.hh"
#include "detect/address_map.hh"
#include "fault/fault_injector.hh"
#include "isa/instructions.hh"
#include "mem/mmu.hh"
#include "obs/trace.hh"
#include "perf/pebs.hh"
#include "sched/scheduler.hh"
#include "sched/sync.hh"

namespace tmi
{

class Machine;
class ThreadApi;

/** Why a speculative region (lock elision, baselines/htm) aborted. */
enum class TxnAbortReason : std::uint8_t
{
    None,           //!< no abort recorded
    Conflict,       //!< remote-Modified hit observed inside the txn
    RemoteConflict, //!< another thread's access hit this txn's sets
    Capacity,       //!< bounded read/write set overflowed
    Spurious,       //!< injected htm.spurious_abort fired
    Nested,         //!< sync / bulk operation inside the txn
};

/** Human-readable name for @p reason. */
const char *txnAbortReasonName(TxnAbortReason reason);

/** Which allocator serves application memory. */
enum class AllocatorKind
{
    Lockless,  //!< per-thread size classes (the paper's baseline)
    GlibcLike, //!< shared arena, packs threads' objects together
};

/** Full machine configuration. */
struct MachineConfig
{
    unsigned cores = 4;
    unsigned pageShift = smallPageShift;
    CacheConfig cache;
    TlbConfig tlb;
    SyncCosts syncCosts;
    PerfConfig perf;
    Cycles quantum = 40;
    double cyclesPerSecond = 3.4e9;

    AllocatorKind allocator = AllocatorKind::Lockless;
    bool forceMisalign = false; //!< expose known FS bugs (section 4.3)
    /** Tmi's modified Lockless allocator: line-granular small
     *  objects (fixes allocator-induced FS such as lu-ncb). */
    bool tmiModifiedAllocator = false;

    /**
     * Heap backing: Tmi serves memory from a shared file-backed
     * mapping, which takes more expensive soft faults than the
     * anonymous private memory ordinary allocators use (section 4.4).
     */
    bool shmBackedHeap = false;
    Cycles anonFaultCost = 1200;
    Cycles shmFaultCost = 1800;
    Cycles hugeFaultExtra = 1500; //!< per-fault extra for a 2 MB fill

    Cycles regionCallbackCost = 4; //!< NOP CCC callback (section 3.4.2)
    /** Per-access tax when a static layout segment redirects the
     *  address (Huron-style index-redirection table lookup). Accesses
     *  outside any installed segment -- and every access when no
     *  layout is installed -- pay nothing. */
    Cycles staticRedirectCost = 1;
    /**
     * Predator-style compiler instrumentation: when nonzero, every
     * Nth data access is reported to the access sampler and every
     * access pays the instrumentation tax. Off (0) by default --
     * this is the heavyweight alternative to HITM sampling that the
     * related work uses for *predictive* detection.
     */
    std::uint64_t instrumentationSampling = 0;
    Cycles instrumentationCost = 25; //!< per-access tax when enabled
    std::uint64_t seed = 42;

    /** Named fault points to arm at construction (robustness runs). */
    std::vector<std::pair<std::string, FaultSpec>> faults;
    /** Seed for the fault injector's per-point streams. */
    std::uint64_t faultSeed = 0xfa17u;

    /** Structured event tracing. Disabled, no recorder is allocated
     *  and every emit site reduces to a null-pointer check. */
    obs::TraceConfig trace;

    bool operator==(const MachineConfig &) const = default;
};

/** Collect MachineConfig constraint violations under @p prefix. */
void validateConfig(const MachineConfig &config,
                    std::vector<ConfigError> &errors,
                    const std::string &prefix = "MachineConfig");

/**
 * Observation and steering interface for runtimes.
 *
 * The default implementations describe plain pthreads execution:
 * nothing is intercepted and nothing costs anything extra.
 */
class RuntimeHooks
{
  public:
    virtual ~RuntimeHooks() = default;

    /** An application thread was created (pthread_create hook). */
    virtual void onThreadCreate(ThreadId tid) { (void)tid; }

    /** An application thread returned from its start routine. */
    virtual void onThreadExit(ThreadId tid) { (void)tid; }

    /**
     * Should @p tid's plain accesses ignore PrivateCow divergence and
     * operate on shared frames right now? (True inside atomic/asm
     * regions under code-centric consistency.)
     */
    virtual bool bypassPrivate(ThreadId tid)
    {
        (void)tid;
        return false;
    }

    /**
     * Do atomic operations operate on shared pages? Tmi: yes (that
     * is what preserves their semantics). Sheriff: no -- its PTSB
     * buffers atomics too, which is exactly its correctness flaw.
     */
    virtual bool atomicsBypassPrivate() { return true; }

    /**
     * An atomic operation is about to execute.
     * @param is_rmw true for read-modify-write operations (CAS,
     *        fetch-add), which are full fences on x86-TSO.
     */
    virtual void onAtomicOp(ThreadId tid, MemOrder order, bool is_rmw)
    {
        (void)tid;
        (void)order;
        (void)is_rmw;
    }

    /** Region-transition callback (code-centric consistency). */
    virtual void onRegionEnter(ThreadId tid, RegionKind kind)
    {
        (void)tid;
        (void)kind;
    }

    /** Region-exit callback. */
    virtual void onRegionExit(ThreadId tid) { (void)tid; }

    /**
     * Sync-object init interception (pthread_mutex_init and friends):
     * may allocate a process-shared object and return its canonical
     * simulated address; return @p va to leave the object in place.
     */
    virtual Addr onSyncObjectInit(ThreadId tid, Addr va)
    {
        (void)tid;
        return va;
    }

    /** A lock/barrier/cond acquire completed (commit point). */
    virtual void onSyncAcquire(ThreadId tid) { (void)tid; }

    /** A release is about to publish (commit point). */
    virtual void onSyncRelease(ThreadId tid) { (void)tid; }

    /**
     * LASER-style store-buffer interception: return true to service
     * the access without coherence traffic, charging @p cost.
     */
    virtual bool
    interceptAccess(ThreadId tid, Addr va, bool is_write, Cycles &cost)
    {
        (void)tid;
        (void)va;
        (void)is_write;
        (void)cost;
        return false;
    }

    /**
     * Could interceptAccess currently return true for any access?
     * While false, the machine skips the per-access interceptAccess
     * call entirely (the AccessPipeline snapshots this answer); the
     * runtime must bump the machine's access epoch whenever the
     * answer changes.
     */
    virtual bool interceptArmed() { return false; }

    /** The heap grew: pages [first, first+n) are now mapped. */
    virtual void onHeapGrow(VPage first, std::uint64_t n)
    {
        (void)first;
        (void)n;
    }

    /**
     * A mutex at canonical address @p caddr is about to be acquired.
     * Return true to ELIDE the acquisition: the runtime has opened a
     * speculative region for @p tid and the machine skips both the
     * lock-word traffic and the SyncManager acquire (baselines/htm).
     */
    virtual bool onMutexLock(ThreadId tid, Addr caddr)
    {
        (void)tid;
        (void)caddr;
        return false;
    }

    /**
     * The matching unlock for @p caddr. Return true when the unlock
     * is elided too -- i.e. the speculative region committed and no
     * lock-word store or SyncManager release must happen.
     */
    virtual bool onMutexUnlock(ThreadId tid, Addr caddr)
    {
        (void)tid;
        (void)caddr;
        return false;
    }
};

/**
 * One piece of a static layout transformation: virtual addresses in
 * [begin, end) are redirected by @p shift before translation. Segments
 * describe *original* addresses; the redirected address begin + shift
 * is where the replay run actually places those bytes.
 */
struct LayoutSegment
{
    Addr begin = 0;
    Addr end = 0;
    std::int64_t shift = 0;

    bool operator==(const LayoutSegment &) const = default;
};

/**
 * The machine-level address redirection table for static (Huron-style)
 * layout repair. Keyed by allocation base so a free can drop exactly
 * the segments its allocation installed. The empty() fast path keeps
 * the access pipeline untouched when no plan is active.
 */
class StaticLayoutTable
{
  public:
    bool empty() const { return _flat.empty(); }

    std::size_t segmentCount() const { return _flat.size(); }

    /** Install @p segs (original-address ranges) under @p key. */
    void install(Addr key, std::vector<LayoutSegment> segs);

    /** Drop every segment installed under @p key. */
    void remove(Addr key);

    /** Redirected address for @p va; @p hit reports table coverage. */
    Addr redirect(Addr va, bool &hit) const;

    /**
     * Length of the longest run starting at @p va (capped at
     * @p max_len) over which the redirection shift is constant;
     * that constant is returned through @p shift (0 when uncovered).
     */
    std::uint64_t span(Addr va, std::uint64_t max_len,
                       std::int64_t &shift) const;

  private:
    void rebuild();

    std::map<Addr, std::vector<LayoutSegment>> _byKey;
    std::vector<LayoutSegment> _flat; //!< sorted by begin, disjoint
};

/** One application allocation, as recorded by the machine. */
struct AllocationRecord
{
    Addr base = 0;
    std::uint64_t bytes = 0;
    /** Deterministic allocation-site key: the workload-supplied tag,
     *  or "a<appThreadIndex>" with "#<n>" suffixed for repeats. */
    std::string site;
    bool live = true;
};

/** Workload-declared geometry of an array-like allocation site. */
struct ArraySiteGeom
{
    std::uint64_t baseOff = 0;   //!< first element's allocation offset
    std::uint64_t elemBytes = 0; //!< element stride
    std::uint64_t count = 0;     //!< element count
};

/**
 * Allocation interception for static layout repair: a PlanApplier
 * implements this to place profiled sites according to a LayoutPlan.
 * Hooks see every application allocation (ThreadApi::malloc and
 * friends); runtime internalAlloc traffic is not routed here.
 */
class AllocHook
{
  public:
    virtual ~AllocHook() = default;

    /**
     * Place the allocation for site @p key (@p alignment 0 for plain
     * malloc). Return the base address, or 0 to decline and let the
     * stock allocator serve it. An implementation that places the
     * allocation must obtain memory from the machine's allocator so
     * a later free(base) remains valid.
     */
    virtual Addr onAlloc(ThreadId tid, const std::string &key,
                         std::uint64_t bytes, Addr alignment) = 0;

    /** @p base is about to be freed (drop any installed segments). */
    virtual void onFree(ThreadId tid, Addr base)
    {
        (void)tid;
        (void)base;
    }
};

/** The simulated machine. */
class Machine : public MemoryProvider
{
  public:
    /** Base virtual address of the application heap. */
    static constexpr Addr heapBase = 0x100000000ULL;
    /** Base virtual address of Tmi's internal process-shared region
     *  (above the heap's 64 GB reservation). */
    static constexpr Addr internalBase = 0x2000000000ULL;

    explicit Machine(const MachineConfig &config = {});

    const MachineConfig &config() const { return _config; }

    /** @name Component access */
    /// @{
    Mmu &mmu() { return _mmu; }
    CacheSim &cache() { return _cache; }
    SimScheduler &sched() { return _sched; }
    SyncManager &sync() { return _sync; }
    PerfSession &perf() { return _perf; }
    FaultInjector &faults() { return _faults; }
    InstructionTable &instructions() { return _instrs; }
    const InstructionTable &instructions() const { return _instrs; }
    AddressMap &addressMap() { return _amap; }
    Allocator &allocator() { return *_alloc; }
    ShmRegion &heapRegion() { return _heap; }

    /** The trace recorder, or null when tracing is disabled. */
    obs::TraceRecorder *trace() { return _trace.get(); }
    /// @}

    /** Install the runtime (may be null for plain pthreads). */
    void setHooks(RuntimeHooks *hooks);
    RuntimeHooks *hooks() { return _hooks; }

    /**
     * The access-path invalidation epoch. Any component whose state
     * change can alter a translation or a snapshotted hook answer
     * must bump() this (see common/epoch.hh for the full rule).
     */
    InvalidationEpoch &accessEpoch() { return _pipeline.epoch(); }

    /** The cached access fast path (tests and diagnostics). */
    AccessPipeline &pipeline() { return _pipeline; }

    /** Sink for sampled accesses under instrumentation mode. */
    using AccessSampler = std::function<void(const AccessContext &)>;

    /** Install the instrumentation sink (Predator-mode detection). */
    void
    setAccessSampler(AccessSampler sampler)
    {
        _accessSampler = std::move(sampler);
    }

    /** @name Thread management */
    /// @{
    /**
     * Create an application thread (pthread_create). Fires the
     * runtime hook, attaches perf, and seeds a per-thread RNG.
     */
    ThreadId spawnThread(std::string name,
                         std::function<void(ThreadApi &)> fn);

    /**
     * Create an internal (runtime) thread: no app hooks, optionally
     * daemon. Used for Tmi's detection thread.
     */
    ThreadId spawnSystemThread(std::string name,
                               std::function<void(ThreadApi &)> fn,
                               bool daemon = true);

    /** Block until thread @p tid finishes (pthread_join). */
    void joinThread(ThreadId waiter, ThreadId target);

    /** Address space currently backing @p tid. */
    ProcessId processOf(ThreadId tid) const;

    /** Rebind @p tid to address space @p pid (T2P conversion). */
    void setThreadProcess(ThreadId tid, ProcessId pid);

    /** Core @p tid runs on. */
    CoreId coreOf(ThreadId tid) const
    {
        return static_cast<CoreId>(tid % _config.cores);
    }

    /** All application thread ids spawned so far. */
    const std::vector<ThreadId> &appThreads() const
    {
        return _appThreads;
    }

    /** Per-thread deterministic RNG. */
    Rng &rng(ThreadId tid);
    /// @}

    /** @name Memory system */
    /// @{
    /** MemoryProvider: extend the heap; maps into every process. */
    Addr sbrk(std::uint64_t bytes) override;

    /** MemoryProvider: charge allocator bookkeeping cycles. */
    void chargeCycles(ThreadId tid, Cycles cycles) override;

    /**
     * Allocate line-aligned bytes in the internal process-shared
     * region (sync objects, Tmi state). Filtered from detection.
     */
    Addr internalAlloc(std::uint64_t bytes);

    /** Bytes currently allocated in the internal region. */
    std::uint64_t internalBytes() const
    {
        return _internalBrk - internalBase;
    }

    /**
     * One simulated data access. Returns the loaded value (zero for
     * stores). @p pc must name a registered instruction whose kind
     * matches @p is_write; its width is used.
     *
     * @param bypass_private operate on the shared frame even if the
     *        page is PrivateCow (atomics / asm regions).
     */
    std::uint64_t memOp(ThreadId tid, Addr pc, Addr va, bool is_write,
                        std::uint64_t store_value, bool bypass_private);

    /**
     * A run of @p count stores at the same @p pc, walking @p va by
     * @p stride and storing value, value + value_step, ... Issues the
     * exact access stream of the equivalent memOp loop (every element
     * takes the full per-access path and may yield), but inside one
     * Machine call so workload inner loops avoid per-element
     * dispatch.
     */
    void memOpStream(ThreadId tid, Addr pc, Addr va,
                     std::uint64_t count, Addr stride,
                     std::uint64_t value, std::uint64_t value_step);

    /**
     * Bulk initialization write: page-chunked, charged at line
     * granularity rather than per byte. Takes soft faults normally.
     */
    void bulkWrite(ThreadId tid, Addr va, const void *buf,
                   std::size_t size);

    /** Bulk fill (memset) with the same costing as bulkWrite. */
    void bulkFill(ThreadId tid, Addr va, std::uint8_t byte,
                  std::size_t size);

    /** Bulk read, charged at line granularity. */
    void bulkRead(ThreadId tid, Addr va, void *buf, std::size_t size);

    /** Debug read with no cost and no faults (validation). */
    std::uint64_t peek(Addr va, unsigned width) const;

    /** Debug read of the shared (committed) view of @p va. */
    std::uint64_t peekShared(Addr va, unsigned width) const;

    /** Flush every core's TLB (mapping change). */
    void flushTlbs();
    /// @}

    /** @name Application allocation (site-tracked) */
    /// @{
    /**
     * Application malloc: consults the AllocHook (static repair),
     * falls back to the stock allocator, and records the allocation
     * under a deterministic site key (@p site, or a generated
     * per-app-thread sequence key when null).
     */
    Addr appMalloc(ThreadId tid, std::uint64_t bytes,
                   const char *site = nullptr);

    /** Application memalign with the same hook/record path. */
    Addr appMemalign(ThreadId tid, Addr alignment, std::uint64_t bytes,
                     const char *site = nullptr);

    /** Application free: retires the record and any layout segments. */
    void appFree(ThreadId tid, Addr addr);

    /** Declare array geometry for @p site (enables Spread repair). */
    void describeArraySite(const char *site, std::uint64_t base_off,
                           std::uint64_t elem_bytes,
                           std::uint64_t count);

    /** Geometry declared for @p site, or null. */
    const ArraySiteGeom *arraySite(const std::string &site) const;

    /** Install the allocation hook (may be null). */
    void setAllocHook(AllocHook *hook) { _allocHook = hook; }

    /** The static layout redirection table. */
    StaticLayoutTable &staticLayout() { return _layout; }
    const StaticLayoutTable &staticLayout() const { return _layout; }

    /** Live allocation covering @p va, or null. */
    const AllocationRecord *findAllocation(Addr va) const;

    /** Append-only log of every application allocation. */
    const std::vector<AllocationRecord> &allocationLog() const
    {
        return _allocLog;
    }
    /// @}

    /** @name Synchronization (pthread-like, with simulated traffic) */
    /// @{
    void mutexInit(ThreadId tid, Addr va);
    void mutexLock(ThreadId tid, Addr va);
    bool mutexTryLock(ThreadId tid, Addr va);
    void mutexUnlock(ThreadId tid, Addr va);
    void barrierInit(ThreadId tid, Addr va, unsigned parties);
    void barrierWait(ThreadId tid, Addr va);
    void condInit(ThreadId tid, Addr va);
    void condWait(ThreadId tid, Addr va, Addr mutex_va);
    void condSignal(ThreadId tid, Addr va);
    void condBroadcast(ThreadId tid, Addr va);
    /// @}

    /** @name Atomics (always on the shared view under Tmi) */
    /// @{
    std::uint64_t atomicLoad(ThreadId tid, Addr pc, Addr va,
                             MemOrder order);
    void atomicStore(ThreadId tid, Addr pc, Addr va, std::uint64_t v,
                     MemOrder order);
    std::uint64_t atomicFetchAdd(ThreadId tid, Addr pc, Addr va,
                                 std::uint64_t delta, MemOrder order);
    bool atomicCas(ThreadId tid, Addr pc, Addr va, std::uint64_t expect,
                   std::uint64_t desired, MemOrder order);
    /// @}

    /** @name Code regions */
    /// @{
    void regionEnter(ThreadId tid, RegionKind kind);
    void regionExit(ThreadId tid);
    /// @}

    /** @name Bounded transactional execution (lock elision)
     *
     *  A transaction speculatively executes a lock-protected region:
     *  every plain access inside it is tracked in bounded va-line
     *  read/write sets, every store is undo-logged, and the fiber
     *  stack is checkpointed at begin. Conflicts come from the MESI
     *  simulator: a remote-Modified hit inside the txn, or any other
     *  thread touching a line in the txn's sets (requester wins, so a
     *  non-speculative access always defeats a speculative one),
     *  aborts the txn -- memory is rolled back from the undo log and
     *  control re-emerges from txnBegin() returning false. With no
     *  transaction ever begun, every hook below is a single counter
     *  test, so non-elision runs stay cycle-identical. */
    /// @{
    /**
     * Open a speculative region for @p tid with the given set
     * capacities (in cache lines).
     *
     * @retval true  fresh begin: the caller is now speculating.
     * @retval false control arrived here via a rollback -- the txn
     *               aborted (see txnAbortReason()); memory and the
     *               fiber stack are back at their begin-time state.
     */
    bool txnBegin(ThreadId tid, unsigned read_lines,
                  unsigned write_lines);

    /** Commit @p tid's txn: speculative state becomes permanent. */
    void txnCommit(ThreadId tid);

    /**
     * Abort @p tid's txn from inside it. Rolls back memory and
     * rewinds the fiber; control re-emerges from txnBegin().
     */
    [[noreturn]] void txnAbortSelf(ThreadId tid, TxnAbortReason why);

    /** Is @p tid currently speculating? */
    bool txnActive(ThreadId tid) const;

    /** Why @p tid's last txn aborted (None after a commit). */
    TxnAbortReason txnAbortReason(ThreadId tid) const;

    /**
     * Did @p tid's current/last txn observe a conflicting remote
     * store? By construction an observing txn aborts before commit;
     * the chaos oracle checks this at commit time (liveness probes
     * must not mask a safety regression).
     */
    bool txnConflictObserved(ThreadId tid) const;

    /** Transactions committed / aborted machine-wide. */
    std::uint64_t txnCommitCount() const
    {
        return static_cast<std::uint64_t>(_statTxnCommits.value());
    }
    std::uint64_t txnAbortCount() const
    {
        return static_cast<std::uint64_t>(_statTxnAborts.value());
    }
    /// @}

    /** Pure compute time on @p tid. */
    void compute(ThreadId tid, Cycles cycles)
    {
        (void)tid;
        _sched.advance(cycles);
    }

    /** Soft-fault cost under the current backing configuration. */
    Cycles faultCost() const;

    /** Register every component's stats under @p group. */
    void regStats(stats::StatGroup &group);

    /** Simulated makespan so far. */
    Cycles elapsed() const { return _sched.maxClock(); }

    /** Total atomic operations executed (LASER's repair heuristic). */
    std::uint64_t
    atomicOpCount() const
    {
        return static_cast<std::uint64_t>(_statAtomicOps.value());
    }

    /** Total plain memory operations executed. */
    std::uint64_t
    memOpCount() const
    {
        return static_cast<std::uint64_t>(_statMemOps.value());
    }

  private:
    friend class ThreadApi;

    std::uint64_t readPhys(Addr paddr, unsigned width) const;
    void writePhys(Addr paddr, std::uint64_t value, unsigned width);
    /**
     * Translation + coherence + timing for one access, without the
     * data movement. Returns the physical address the data op should
     * use. Shared by memOp and the atomic RMWs (which must not let
     * the charge-phase clobber the location).
     */
    Addr accessPath(ThreadId tid, Addr pc, Addr va, bool is_write,
                    bool bypass_private);
    /** Re-query the hooks for the pipeline's snapshot (epoch miss). */
    void revalidatePipeline();
    /** Physical address of @p va through the always-shared mapping. */
    Addr sharedPaddr(ProcessId pid, Addr va) const;
    ThreadId spawnCommon(std::string name,
                         std::function<void(ThreadApi &)> fn,
                         bool daemon, bool app_thread);
    /** Canonical sync address, issuing redirection load traffic. */
    Addr syncAddr(ThreadId tid, Addr va);
    /** Abort @p tid's txn if one is active (sync/bulk inside it). */
    void txnAbortIfActive(ThreadId tid, TxnAbortReason why);
    /** Pre-access txn work: remote-abort conflicting txns, track the
     *  line in @p tid's sets, fire capacity/spurious self-aborts. */
    void txnPreAccess(ThreadId tid, Addr va, bool is_write);
    /** Post-access txn work: a remote-Modified hit aborts the txn. */
    void txnPostAccess(ThreadId tid, bool hitm);
    /** Undo-log @p paddr's old bytes before an in-txn store. */
    void txnTrackWrite(ThreadId tid, Addr paddr, unsigned width);
    /** Deterministic site key for an allocation by @p tid. */
    std::string makeSiteKey(ThreadId tid, const char *site);
    /** Record an application allocation in the log. */
    void recordAllocation(Addr base, std::uint64_t bytes,
                          std::string site);

    MachineConfig _config;
    AccessPipeline _pipeline;
    Mmu _mmu;
    ShmRegion _heap;
    ShmRegion _internal;
    Addr _heapBrk;
    Addr _internalBrk;
    SimScheduler _sched;
    SyncManager _sync;
    CacheSim _cache;
    std::vector<Tlb> _tlbs;
    PerfSession _perf;
    FaultInjector _faults;
    InstructionTable _instrs;
    AddressMap _amap;
    std::unique_ptr<Allocator> _alloc;
    std::unique_ptr<obs::TraceRecorder> _trace;
    RuntimeHooks *_hooks = nullptr;

    AccessSampler _accessSampler;
    std::uint64_t _accessSampleCounter = 0;
    std::vector<ProcessId> _threadProcess;
    std::vector<std::unique_ptr<Rng>> _threadRngs;
    /** Per-thread bulkFill scratch: bulkWrite yields between page
     *  chunks, so a shared buffer could be refilled with another
     *  thread's byte mid-copy. */
    std::vector<std::vector<std::uint8_t>> _bulkScratch;
    std::vector<ThreadId> _appThreads;
    std::unordered_map<ThreadId, std::vector<ThreadId>> _joiners;
    std::unordered_map<Addr, Addr> _syncRedirect;

    /** Per-thread speculative-execution state (lock elision). */
    struct TxnState
    {
        struct Undo
        {
            Addr paddr = 0;
            std::uint64_t old = 0;
            unsigned width = 0;
        };

        bool active = false;
        unsigned readCap = 0;
        unsigned writeCap = 0;
        /** Tracked va-lines (va >> lineShift); bounded, so linear. */
        std::vector<Addr> readLines;
        std::vector<Addr> writeLines;
        /** Accounted line counts; htm.capacity_misaccount can make
         *  these exceed the real set sizes. */
        unsigned readCount = 0;
        unsigned writeCount = 0;
        std::vector<Undo> undo;
        FiberCheckpoint ck;
        TxnAbortReason lastAbort = TxnAbortReason::None;
        bool conflictObserved = false;
    };

    /** Roll @p tx's undo log back (reverse order) and invalidate the
     *  speculatively written lines from every private cache. */
    void txnRollbackMemory(TxnState &tx);
    /** Tear @p tx down as aborted (shared by self/remote aborts). */
    void txnMarkAborted(TxnState &tx, TxnAbortReason why);

    /** Indexed by tid; deque so references survive growth. */
    std::deque<TxnState> _txns;
    /** Machine-wide active-txn count: the single gate every txn hook
     *  tests, so elision-off runs take no new work anywhere. */
    unsigned _activeTxns = 0;

    AllocHook *_allocHook = nullptr;
    StaticLayoutTable _layout;
    std::vector<AllocationRecord> _allocLog;
    std::map<Addr, std::size_t> _liveAllocs; //!< base -> log index
    std::unordered_map<std::string, std::uint32_t> _siteInstances;
    std::unordered_map<std::string, ArraySiteGeom> _arraySites;

    /** Machine-registered instruction PCs for sync-object traffic. */
    Addr _pcLockCas = 0;
    Addr _pcLockStore = 0;
    Addr _pcPtrLoad = 0;
    Addr _pcPtrStore = 0;
    Addr _pcBulk = 0;
    Addr _pcBulkStore = 0;

    stats::Scalar _statMemOps;
    stats::Scalar _statAtomicOps;
    stats::Scalar _statBulkBytes;
    stats::Scalar _statTxnCommits;
    stats::Scalar _statTxnAborts;
};

/**
 * The per-thread programming interface workloads use.
 *
 * A thin value type binding (Machine, tid); all methods forward.
 */
class ThreadApi
{
  public:
    ThreadApi(Machine &machine, ThreadId tid)
        : _machine(machine), _tid(tid)
    {}

    Machine &machine() { return _machine; }
    ThreadId tid() const { return _tid; }

    /** @name Plain accesses (PC selects kind and width) */
    /// @{
    std::uint64_t
    load(Addr pc, Addr va)
    {
        return _machine.memOp(_tid, pc, va, false, 0, false);
    }

    void
    store(Addr pc, Addr va, std::uint64_t value)
    {
        _machine.memOp(_tid, pc, va, true, value, false);
    }

    /** @p count stores at @p pc, va walking by @p stride, values
     *  value, value + value_step, ... -- one Machine call issuing
     *  the identical access stream to the equivalent store() loop. */
    void
    storeStream(Addr pc, Addr va, std::uint64_t count, Addr stride,
                std::uint64_t value = 0, std::uint64_t value_step = 0)
    {
        _machine.memOpStream(_tid, pc, va, count, stride, value,
                             value_step);
    }
    /// @}

    /** @name Atomics */
    /// @{
    std::uint64_t
    atomicLoad(Addr pc, Addr va, MemOrder order = MemOrder::SeqCst)
    {
        return _machine.atomicLoad(_tid, pc, va, order);
    }

    void
    atomicStore(Addr pc, Addr va, std::uint64_t v,
                MemOrder order = MemOrder::SeqCst)
    {
        _machine.atomicStore(_tid, pc, va, v, order);
    }

    std::uint64_t
    fetchAdd(Addr pc, Addr va, std::uint64_t delta,
             MemOrder order = MemOrder::SeqCst)
    {
        return _machine.atomicFetchAdd(_tid, pc, va, delta, order);
    }

    bool
    cas(Addr pc, Addr va, std::uint64_t expect, std::uint64_t desired,
        MemOrder order = MemOrder::SeqCst)
    {
        return _machine.atomicCas(_tid, pc, va, expect, desired, order);
    }
    /// @}

    /** @name Code regions (instrumentation callbacks) */
    /// @{
    void enterAtomic() { _machine.regionEnter(_tid, RegionKind::Atomic); }
    void exitAtomic() { _machine.regionExit(_tid); }
    void enterAsm() { _machine.regionEnter(_tid, RegionKind::Asm); }
    void exitAsm() { _machine.regionExit(_tid); }
    /// @}

    /** @name Synchronization */
    /// @{
    void mutexInit(Addr va) { _machine.mutexInit(_tid, va); }
    void mutexLock(Addr va) { _machine.mutexLock(_tid, va); }
    bool mutexTryLock(Addr va) { return _machine.mutexTryLock(_tid, va); }
    void mutexUnlock(Addr va) { _machine.mutexUnlock(_tid, va); }
    void barrierInit(Addr va, unsigned n)
    {
        _machine.barrierInit(_tid, va, n);
    }
    void barrierWait(Addr va) { _machine.barrierWait(_tid, va); }
    void condInit(Addr va) { _machine.condInit(_tid, va); }
    void condWait(Addr va, Addr m) { _machine.condWait(_tid, va, m); }
    void condSignal(Addr va) { _machine.condSignal(_tid, va); }
    void condBroadcast(Addr va) { _machine.condBroadcast(_tid, va); }
    /// @}

    /** @name Memory management */
    /// @{
    Addr malloc(std::uint64_t bytes)
    {
        return _machine.appMalloc(_tid, bytes);
    }

    /** malloc under a named allocation site (static repair). */
    Addr mallocAt(const char *site, std::uint64_t bytes)
    {
        return _machine.appMalloc(_tid, bytes, site);
    }

    void free(Addr addr) { _machine.appFree(_tid, addr); }

    Addr memalign(Addr alignment, std::uint64_t bytes)
    {
        return _machine.appMemalign(_tid, alignment, bytes);
    }

    /** memalign under a named allocation site (static repair). */
    Addr memalignAt(const char *site, Addr alignment,
                    std::uint64_t bytes)
    {
        return _machine.appMemalign(_tid, alignment, bytes, site);
    }

    /** Declare array geometry for @p site (enables Spread repair). */
    void describeArray(const char *site, std::uint64_t base_off,
                       std::uint64_t elem_bytes, std::uint64_t count)
    {
        _machine.describeArraySite(site, base_off, elem_bytes, count);
    }
    /// @}

    /** @name Bulk and misc */
    /// @{
    void
    fill(Addr va, std::uint8_t byte, std::size_t n)
    {
        _machine.bulkFill(_tid, va, byte, n);
    }

    void
    writeBuf(Addr va, const void *buf, std::size_t n)
    {
        _machine.bulkWrite(_tid, va, buf, n);
    }

    void
    readBuf(Addr va, void *buf, std::size_t n)
    {
        _machine.bulkRead(_tid, va, buf, n);
    }

    void compute(Cycles c) { _machine.compute(_tid, c); }

    ThreadId
    spawn(std::string name, std::function<void(ThreadApi &)> fn)
    {
        return _machine.spawnThread(std::move(name), std::move(fn));
    }

    void join(ThreadId target) { _machine.joinThread(_tid, target); }

    Rng &rng() { return _machine.rng(_tid); }
    /// @}

  private:
    Machine &_machine;
    ThreadId _tid;
};

} // namespace tmi

#endif // TMI_CORE_MACHINE_HH
