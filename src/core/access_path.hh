/**
 * @file
 * AccessPipeline: the cached fast path in front of the per-access
 * machinery.
 *
 * Machine::accessPath used to recompute three things on every
 * simulated load/store: the PC's static InstrInfo (a bounds-checked
 * table walk, twice per memOp), the page translation (an
 * unordered_map walk through the address space), and the runtime
 * hook state (virtual calls answering questions whose answers change
 * only at rare, well-defined events). This layer caches all three:
 *
 *  - a per-core direct-mapped PC cache in front of the isa table
 *    (instructions are immutable once defined, so entries never
 *    expire);
 *  - a per-core direct-mapped (pid, vpage) -> frame-base software
 *    translation cache in front of Mmu::translate. Only pages that
 *    are touched and SharedRW are cacheable: for exactly those,
 *    translate() is pure (no faults, no stats, no RNG draws, no
 *    extra cost), so serving the cached frame is bit-identical.
 *    This cache is *host-side only* -- distinct from the timed TLB
 *    model in src/cache/tlb.hh, which stays on the per-access path
 *    because its hit/miss stream is part of the simulated contract;
 *  - a snapshot of the hook-state word (intercept-armed /
 *    atomics-bypass) so the per-access virtual RuntimeHooks queries
 *    collapse to flag reads, plus per-thread bypass-private flags
 *    push-updated at region transitions.
 *
 * Validity is governed by the global InvalidationEpoch (see
 * common/epoch.hh): every translation entry carries the epoch value
 * it was inserted under and dies automatically when any mutation
 * site bumps the counter; the hook snapshot is re-queried on
 * mismatch. The simulated side effects that must stay per-access --
 * TLB lookup, coherence simulation, stats, instrumentation
 * sampling, scheduler advance -- are untouched by design.
 */

#ifndef TMI_CORE_ACCESS_PATH_HH
#define TMI_CORE_ACCESS_PATH_HH

#include <vector>

#include "common/epoch.hh"
#include "common/types.hh"
#include "isa/instructions.hh"

namespace tmi
{

/** The cached per-access fast path (see file comment). */
class AccessPipeline
{
  public:
    explicit AccessPipeline(unsigned cores);

    /** The global invalidation epoch every mutation site bumps. */
    InvalidationEpoch &epoch() { return _epoch; }
    const InvalidationEpoch &epoch() const { return _epoch; }

    /** What the hot path needs from an InstrInfo, by value so the
     *  holder survives a cache eviction across a scheduler yield. */
    struct CachedInstr
    {
        Addr pc = ~Addr{0};
        unsigned width = 0;
        bool isStore = false;
    };

    /**
     * PC -> (kind, width) through the per-core cache; fills from
     * @p instrs (asserting validity) on miss. Instructions are
     * immutable and the table is append-only, so hits never need
     * epoch validation.
     */
    CachedInstr
    instr(CoreId core, Addr pc, const InstructionTable &instrs)
    {
        PcEntry &e = _pcs[core * pcWays + pcIndex(pc)];
        if (e.info.pc != pc) {
            const InstrInfo &info = instrs.lookup(pc);
            e.info.pc = pc;
            e.info.width = info.width;
            e.info.isStore = info.kind == MemKind::Store;
        }
        return e.info;
    }

    /**
     * Translation-cache probe for (pid, vpage): true plus the frame
     * base address on a valid hit. Entries from older epochs miss.
     */
    bool
    frameLookup(CoreId core, ProcessId pid, VPage vpage,
                Addr &frame_base) const
    {
        const FrameEntry &e =
            _frames[core * frameWays + frameIndex(pid, vpage)];
        if (e.epoch != _epoch.value() || e.vpage != vpage ||
            e.pid != pid) {
            return false;
        }
        frame_base = e.frameBase;
        return true;
    }

    /** Install a translation proven cacheable by Mmu::translate. */
    void
    frameInsert(CoreId core, ProcessId pid, VPage vpage,
                Addr frame_base)
    {
        FrameEntry &e =
            _frames[core * frameWays + frameIndex(pid, vpage)];
        e.vpage = vpage;
        e.pid = pid;
        e.frameBase = frame_base;
        e.epoch = _epoch.value();
    }

    /** @name Hook-state snapshot */
    /// @{
    /** True when the snapshot predates the current epoch. */
    bool stale() const { return _snapshotEpoch != _epoch.value(); }

    /** Refresh the snapshot; the owner supplies the hook answers. */
    void
    revalidate(bool intercept_armed, bool atomics_bypass)
    {
        _interceptArmed = intercept_armed;
        _atomicsBypass = atomics_bypass;
        _snapshotEpoch = _epoch.value();
    }

    /** Is any runtime interception (LASER store buffer) armed? */
    bool interceptArmed() const { return _interceptArmed; }

    /** Do atomics operate on the shared view? */
    bool atomicsBypass() const { return _atomicsBypass; }
    /// @}

    /** @name Per-thread bypass-private flags
     *  Push-updated by the Machine at every event that can change
     *  RuntimeHooks::bypassPrivate's answer (region enter/exit,
     *  thread creation, hook install), so the per-access virtual
     *  query collapses to a byte read. */
    /// @{
    bool
    bypassPrivate(ThreadId tid) const
    {
        return tid < _bypass.size() && _bypass[tid] != 0;
    }

    void
    setBypassPrivate(ThreadId tid, bool bypass)
    {
        if (_bypass.size() <= tid)
            _bypass.resize(tid + 1, 0);
        _bypass[tid] = bypass ? 1 : 0;
    }

    /** Threads with a recorded flag (hook-install recompute). */
    ThreadId
    bypassCount() const
    {
        return static_cast<ThreadId>(_bypass.size());
    }
    /// @}

  private:
    static constexpr unsigned pcWays = 32;    //!< per core
    static constexpr unsigned frameWays = 64; //!< per core

    static unsigned
    pcIndex(Addr pc)
    {
        return static_cast<unsigned>(pc >> 2) & (pcWays - 1);
    }

    static unsigned
    frameIndex(ProcessId pid, VPage vpage)
    {
        return static_cast<unsigned>(vpage + pid) & (frameWays - 1);
    }

    struct PcEntry
    {
        CachedInstr info;
    };

    struct FrameEntry
    {
        VPage vpage = ~VPage{0};
        ProcessId pid = 0;
        Addr frameBase = 0;
        std::uint64_t epoch = 0; //!< 0 = never valid (epoch starts at 1)
    };

    InvalidationEpoch _epoch;
    std::vector<PcEntry> _pcs;       //!< cores x pcWays
    std::vector<FrameEntry> _frames; //!< cores x frameWays

    bool _interceptArmed = false;
    bool _atomicsBypass = true;
    std::uint64_t _snapshotEpoch = 0;

    std::vector<std::uint8_t> _bypass; //!< per-thread, sized on use
};

} // namespace tmi

#endif // TMI_CORE_ACCESS_PATH_HH
