#include "machine.hh"

#include <algorithm>
#include <cstring>

#include "alloc/glibc_like.hh"
#include "alloc/lockless.hh"

namespace tmi
{

// ---------------------------------------------------------------------
// StaticLayoutTable

void
StaticLayoutTable::install(Addr key, std::vector<LayoutSegment> segs)
{
    auto &slot = _byKey[key];
    slot.clear();
    for (const LayoutSegment &s : segs) {
        if (s.end > s.begin)
            slot.push_back(s);
    }
    if (slot.empty())
        _byKey.erase(key);
    rebuild();
}

void
StaticLayoutTable::remove(Addr key)
{
    if (_byKey.erase(key))
        rebuild();
}

void
StaticLayoutTable::rebuild()
{
    _flat.clear();
    for (const auto &[key, segs] : _byKey)
        _flat.insert(_flat.end(), segs.begin(), segs.end());
    std::sort(_flat.begin(), _flat.end(),
              [](const LayoutSegment &a, const LayoutSegment &b) {
                  return a.begin < b.begin;
              });
}

Addr
StaticLayoutTable::redirect(Addr va, bool &hit) const
{
    auto it = std::upper_bound(
        _flat.begin(), _flat.end(), va,
        [](Addr v, const LayoutSegment &s) { return v < s.begin; });
    if (it != _flat.begin()) {
        --it;
        if (va < it->end) {
            hit = true;
            return static_cast<Addr>(
                static_cast<std::int64_t>(va) + it->shift);
        }
    }
    hit = false;
    return va;
}

std::uint64_t
StaticLayoutTable::span(Addr va, std::uint64_t max_len,
                        std::int64_t &shift) const
{
    shift = 0;
    if (_flat.empty() || max_len == 0)
        return max_len;
    auto it = std::upper_bound(
        _flat.begin(), _flat.end(), va,
        [](Addr v, const LayoutSegment &s) { return v < s.begin; });
    if (it != _flat.begin()) {
        auto prev = std::prev(it);
        if (va < prev->end) {
            shift = prev->shift;
            return std::min<std::uint64_t>(max_len, prev->end - va);
        }
    }
    if (it == _flat.end())
        return max_len;
    return std::min<std::uint64_t>(max_len, it->begin - va);
}

void
validateConfig(const MachineConfig &config,
               std::vector<ConfigError> &errors,
               const std::string &prefix)
{
    if (config.cores == 0) {
        errors.push_back({prefix + ".cores",
                          "must be >= 1: something has to run the "
                          "threads"});
    }
    if (config.pageShift < smallPageShift ||
        config.pageShift > hugePageShift) {
        errors.push_back({prefix + ".pageShift",
                          "must be between 12 (4 KB) and 21 (2 MB)"});
    }
    if (config.quantum == 0) {
        errors.push_back({prefix + ".quantum",
                          "must be positive: a zero quantum never "
                          "preempts and single-threads the machine"});
    }
    if (config.cyclesPerSecond <= 0) {
        errors.push_back({prefix + ".cyclesPerSecond",
                          "must be positive: wall-clock conversions "
                          "would divide by zero"});
    }
    for (const auto &[point, spec] : config.faults) {
        if (point.empty()) {
            errors.push_back({prefix + ".faults",
                              "fault points need non-empty names"});
        }
        if (spec.probability < 0.0 || spec.probability > 1.0) {
            errors.push_back({prefix + ".faults[" + point + "]",
                              "probability must be in [0, 1]"});
        }
    }
    validateConfig(config.perf, errors, prefix + ".perf");
    obs::validateConfig(config.trace, errors, prefix + ".trace");
}

Machine::Machine(const MachineConfig &config)
    : _config(config), _pipeline(config.cores), _mmu(config.pageShift),
      _heap("tmi_heap", _mmu.phys()),
      _internal("tmi_internal", _mmu.phys()), _heapBrk(heapBase),
      _internalBrk(internalBase), _sched(config.quantum),
      _sync(_sched, config.syncCosts),
      _cache([&config] {
          CacheConfig c = config.cache;
          c.cores = config.cores;
          return c;
      }()),
      _perf(config.perf), _faults(config.faultSeed)
{
    std::vector<ConfigError> errors;
    validateConfig(config, errors);
    fatalIfConfigErrors(errors);

    for (unsigned c = 0; c < config.cores; ++c)
        _tlbs.emplace_back(config.tlb, config.pageShift);

    // The access-path caches die whenever a mapping mutates.
    _mmu.setEpoch(&_pipeline.epoch());

    // Fault injection: arm the configured points and wire the
    // injector into the layers that can fail. With no armed points
    // the wiring is free (a null-check or an empty-table probe).
    for (const auto &[point, spec] : config.faults)
        _faults.arm(point, spec);
    _mmu.setFaultInjector(&_faults);
    _perf.setFaultInjector(&_faults);
    // Windowed specs fire by simulated time; outside any thread (e.g.
    // init-time queries) the makespan stands in for the clock.
    _faults.setClock([this] {
        return _sched.current() ? _sched.now() : _sched.maxClock();
    });

    // Observability: the recorder exists only when tracing is on, so
    // the disabled path costs one null-pointer check per emit site.
    if (config.trace.enabled && obs::TraceRecorder::compiledIn) {
        _trace = std::make_unique<obs::TraceRecorder>(config.trace);
        _trace->setClock(
            [this] { return _sched.current() ? _sched.now() : 0; });
        _trace->setThreadSource([this]() -> ThreadId {
            return _sched.current() ? _sched.current()->tid() : 0;
        });
        _mmu.setTrace(_trace.get());
        _perf.setTrace(_trace.get());
        _faults.setTrace(_trace.get());
    }

    // The root address space all threads initially share.
    ProcessId root = _mmu.createAddressSpace();
    TMI_ASSERT(root == 0);

    // PEBS wiring: HITM coherence events flow to the perf session,
    // which charges the triggering access the assist cost when a
    // record is emitted.
    _cache.setHitmCallback([this](const AccessContext &ctx) {
        return _perf.onHitm(ctx, _sched.current() ? _sched.now() : 0);
    });

    // The detector's /proc/pid/maps view: heap and globals are
    // eligible; Tmi-internal memory is filtered like a system
    // library, so Tmi never tries to repair its own lock objects.
    _amap.add(heapBase, Addr{64} << 30, RangeKind::AppHeap, "heap");
    _amap.add(internalBase, Addr{1} << 30, RangeKind::SystemLib,
              "tmi-internal");

    // Memory instructions the machine itself issues for sync-object
    // traffic (the lock word CAS is what makes spinlockpool's false
    // sharing visible to the coherence protocol).
    _pcLockCas = _instrs.define("sync.lock.cas", MemKind::Store, 4);
    _pcLockStore = _instrs.define("sync.lock.store", MemKind::Store, 4);
    // The redirection word Tmi installs in a sync object. Modeled as
    // 4 bytes so it fits even in a packed boost-style spinlock; the
    // authoritative mapping is the runtime's redirect table.
    _pcPtrLoad = _instrs.define("sync.ptr.load", MemKind::Load, 4);
    _pcPtrStore = _instrs.define("sync.ptr.store", MemKind::Store, 4);

    switch (config.allocator) {
      case AllocatorKind::Lockless: {
        LocklessConfig lc;
        lc.forceMisalign = config.forceMisalign;
        if (config.tmiModifiedAllocator)
            lc.minSmallBytes = lineBytes;
        _alloc = std::make_unique<LocklessAllocator>(*this, lc);
        break;
      }
      case AllocatorKind::GlibcLike:
        _alloc = std::make_unique<GlibcLikeAllocator>(*this);
        break;
    }
    _alloc->setFaultInjector(&_faults);
    _alloc->setTrace(_trace.get());
}

// ---------------------------------------------------------------------
// Threads

ThreadId
Machine::spawnCommon(std::string name,
                     std::function<void(ThreadApi &)> fn, bool daemon,
                     bool app_thread)
{
    ThreadId parent_tid =
        _sched.current() ? _sched.current()->tid() : ~ThreadId{0};
    ProcessId pid = 0;
    if (parent_tid != ~ThreadId{0} && parent_tid < _threadProcess.size())
        pid = _threadProcess[parent_tid];

    ThreadId tid = _sched.spawn(
        name,
        [this, body = std::move(fn)]() {
            ThreadId self = _sched.current()->tid();
            ThreadApi api(*this, self);
            body(api);
            bool is_app = false;
            for (ThreadId t : _appThreads) {
                if (t == self) {
                    is_app = true;
                    break;
                }
            }
            if (is_app && _hooks)
                _hooks->onThreadExit(self);
            auto it = _joiners.find(self);
            if (it != _joiners.end()) {
                for (ThreadId waiter : it->second)
                    _sched.wake(waiter, _sched.now());
                _joiners.erase(it);
            }
        },
        daemon);

    if (_threadProcess.size() <= tid) {
        _threadProcess.resize(tid + 1, 0);
        _threadRngs.resize(tid + 1);
    }
    _threadProcess[tid] = pid;
    // Seed by app-thread creation index, not raw tid: runtimes add
    // system threads that shift tids, and workload randomness must
    // not depend on which runtime is attached.
    std::uint64_t seed_index =
        app_thread ? _appThreads.size() + 1 : 1000 + tid;
    _threadRngs[tid] = std::make_unique<Rng>(
        _config.seed ^ (0x9e3779b9ULL * (seed_index + 1)));

    if (app_thread) {
        _appThreads.push_back(tid);
        _perf.attachThread(tid);
        if (_hooks)
            _hooks->onThreadCreate(tid);
    }
    _pipeline.setBypassPrivate(tid,
                               _hooks && _hooks->bypassPrivate(tid));
    return tid;
}

ThreadId
Machine::spawnThread(std::string name,
                     std::function<void(ThreadApi &)> fn)
{
    // pthread_create has release semantics: the child must observe
    // everything the parent wrote before the create (e.g. input data
    // the parent initialized while its pages were PTSB-buffered).
    if (_hooks && _sched.current())
        _hooks->onSyncRelease(_sched.current()->tid());
    return spawnCommon(std::move(name), std::move(fn), false, true);
}

ThreadId
Machine::spawnSystemThread(std::string name,
                           std::function<void(ThreadApi &)> fn,
                           bool daemon)
{
    return spawnCommon(std::move(name), std::move(fn), daemon, false);
}

void
Machine::joinThread(ThreadId waiter, ThreadId target)
{
    if (_sched.thread(target).state() != SimThread::State::Finished) {
        _joiners[target].push_back(waiter);
        _sched.block();
    }
    // pthread_join has acquire semantics: drop any buffered pages so
    // the joiner reads the target's published results.
    if (_hooks)
        _hooks->onSyncAcquire(waiter);
}

ProcessId
Machine::processOf(ThreadId tid) const
{
    TMI_ASSERT(tid < _threadProcess.size());
    return _threadProcess[tid];
}

void
Machine::setThreadProcess(ThreadId tid, ProcessId pid)
{
    TMI_ASSERT(tid < _threadProcess.size());
    _threadProcess[tid] = pid;
    // T2P rebind: cached (pid, vpage) translations stay keyed by the
    // old pid but the hook answers may shift with the rebind.
    _pipeline.epoch().bump();
}

void
Machine::setHooks(RuntimeHooks *hooks)
{
    _hooks = hooks;
    _pipeline.epoch().bump();
    // The bypass flags are push-updated, not epoch-checked, so a new
    // runtime must recompute them for every thread spawned so far.
    for (ThreadId tid = 0; tid < _threadProcess.size(); ++tid) {
        _pipeline.setBypassPrivate(tid,
                                   _hooks && _hooks->bypassPrivate(tid));
    }
}

Rng &
Machine::rng(ThreadId tid)
{
    TMI_ASSERT(tid < _threadRngs.size() && _threadRngs[tid]);
    return *_threadRngs[tid];
}

// ---------------------------------------------------------------------
// Memory

Addr
Machine::sbrk(std::uint64_t bytes)
{
    std::uint64_t page_bytes = _mmu.pageBytes();
    std::uint64_t pages = (bytes + page_bytes - 1) / page_bytes;
    std::uint64_t old_pages = _heap.grow(pages);
    Addr vbase = heapBase + old_pages * page_bytes;
    for (ProcessId pid = 0; pid < _mmu.spaceCount(); ++pid)
        _mmu.mapShared(pid, vbase, _heap, old_pages, pages);
    _heapBrk = vbase + pages * page_bytes;
    if (_hooks)
        _hooks->onHeapGrow(vbase >> _mmu.pageShift(), pages);
    return vbase;
}

void
Machine::chargeCycles(ThreadId tid, Cycles cycles)
{
    (void)tid; // charged to the calling thread by construction
    if (_sched.current())
        _sched.advance(cycles);
}

Addr
Machine::internalAlloc(std::uint64_t bytes)
{
    bytes = roundUp(bytes, lineBytes);
    std::uint64_t page_bytes = _mmu.pageBytes();
    Addr mapped_end =
        internalBase + _internal.pages() * page_bytes;
    if (_internalBrk + bytes > mapped_end) {
        std::uint64_t need = _internalBrk + bytes - mapped_end;
        std::uint64_t pages = (need + page_bytes - 1) / page_bytes;
        std::uint64_t old_pages = _internal.grow(pages);
        Addr vbase = internalBase + old_pages * page_bytes;
        for (ProcessId pid = 0; pid < _mmu.spaceCount(); ++pid)
            _mmu.mapShared(pid, vbase, _internal, old_pages, pages);
    }
    Addr addr = _internalBrk;
    _internalBrk += bytes;
    return addr;
}

// ---------------------------------------------------------------------
// Application allocation

std::string
Machine::makeSiteKey(ThreadId tid, const char *site)
{
    std::string name;
    if (site && *site) {
        name = site;
    } else {
        // Untagged: key by app-thread creation index, not raw tid --
        // runtimes add system threads that shift tids, and a profile
        // must match its replay regardless of what was attached.
        std::size_t idx = _appThreads.size();
        for (std::size_t i = 0; i < _appThreads.size(); ++i) {
            if (_appThreads[i] == tid) {
                idx = i;
                break;
            }
        }
        name = idx < _appThreads.size()
                   ? "a" + std::to_string(idx)
                   : "sys" + std::to_string(tid);
    }
    std::uint32_t n = _siteInstances[name]++;
    return n == 0 ? name : name + "#" + std::to_string(n);
}

void
Machine::recordAllocation(Addr base, std::uint64_t bytes,
                          std::string site)
{
    _liveAllocs[base] = _allocLog.size();
    _allocLog.push_back({base, bytes, std::move(site), true});
}

Addr
Machine::appMalloc(ThreadId tid, std::uint64_t bytes, const char *site)
{
    std::string key = makeSiteKey(tid, site);
    Addr addr = 0;
    if (_allocHook)
        addr = _allocHook->onAlloc(tid, key, bytes, 0);
    if (!addr)
        addr = _alloc->malloc(tid, bytes);
    recordAllocation(addr, bytes, std::move(key));
    return addr;
}

Addr
Machine::appMemalign(ThreadId tid, Addr alignment, std::uint64_t bytes,
                     const char *site)
{
    std::string key = makeSiteKey(tid, site);
    Addr addr = 0;
    if (_allocHook)
        addr = _allocHook->onAlloc(tid, key, bytes, alignment);
    if (!addr)
        addr = _alloc->memalign(tid, alignment, bytes);
    recordAllocation(addr, bytes, std::move(key));
    return addr;
}

void
Machine::appFree(ThreadId tid, Addr addr)
{
    auto it = _liveAllocs.find(addr);
    if (it != _liveAllocs.end()) {
        _allocLog[it->second].live = false;
        _liveAllocs.erase(it);
    }
    if (_allocHook)
        _allocHook->onFree(tid, addr);
    _alloc->free(tid, addr);
}

void
Machine::describeArraySite(const char *site, std::uint64_t base_off,
                           std::uint64_t elem_bytes,
                           std::uint64_t count)
{
    TMI_ASSERT(site && *site, "array sites must be named");
    _arraySites[site] = {base_off, elem_bytes, count};
}

const ArraySiteGeom *
Machine::arraySite(const std::string &site) const
{
    auto it = _arraySites.find(site);
    return it == _arraySites.end() ? nullptr : &it->second;
}

const AllocationRecord *
Machine::findAllocation(Addr va) const
{
    auto it = _liveAllocs.upper_bound(va);
    if (it == _liveAllocs.begin())
        return nullptr;
    --it;
    const AllocationRecord &rec = _allocLog[it->second];
    return va < rec.base + rec.bytes ? &rec : nullptr;
}

std::uint64_t
Machine::readPhys(Addr paddr, unsigned width) const
{
    std::uint8_t buf[8] = {};
    _mmu.phys().read(paddr, buf, width);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < width; ++i)
        v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
    return v;
}

void
Machine::writePhys(Addr paddr, std::uint64_t value, unsigned width)
{
    std::uint8_t buf[8];
    for (unsigned i = 0; i < width; ++i)
        buf[i] = static_cast<std::uint8_t>(value >> (8 * i));
    _mmu.phys().write(paddr, buf, width);
}

Addr
Machine::sharedPaddr(ProcessId pid, Addr va) const
{
    const PageEntry *entry =
        _mmu.space(pid).find(va >> _mmu.pageShift());
    TMI_ASSERT(entry, "shared access to unmapped page");
    PPage frame = entry->backing->frameFor(entry->filePage);
    Addr off = va & (_mmu.pageBytes() - 1);
    return (frame << _mmu.pageShift()) | off;
}

Cycles
Machine::faultCost() const
{
    Cycles c = _config.shmBackedHeap ? _config.shmFaultCost
                                     : _config.anonFaultCost;
    if (_config.pageShift >= hugePageShift)
        c += _config.hugeFaultExtra;
    return c;
}

void
Machine::revalidatePipeline()
{
    _pipeline.revalidate(_hooks && _hooks->interceptArmed(),
                         !_hooks || _hooks->atomicsBypassPrivate());
}

Addr
Machine::accessPath(ThreadId tid, Addr pc, Addr va, bool is_write,
                    bool bypass_private)
{
    CoreId core = coreOf(tid);
    AccessPipeline::CachedInstr info =
        _pipeline.instr(core, pc, _instrs);
    TMI_ASSERT(info.isStore == is_write,
               "instruction kind does not match access");
    ++_statMemOps;

    // Static layout repair: redirect through the plan's segment table
    // before translation, so TLBs, frame caches, coherence state and
    // detection all key on the repaired layout. One branch when empty.
    Cycles redirect_lat = 0;
    if (!_layout.empty()) {
        bool hit = false;
        Addr nva = _layout.redirect(va, hit);
        if (hit) {
            va = nva;
            redirect_lat = _config.staticRedirectCost;
        }
    }

    ProcessId pid = _threadProcess[tid];
    Cycles lat = _tlbs[core].lookup(va) + redirect_lat;

    if (_pipeline.stale())
        revalidatePipeline();

    // LASER-style interception: the runtime services the access from
    // its software store buffer, with no coherence traffic. While the
    // snapshot says nothing is armed, the call would return false
    // with no side effects, so it is skipped outright.
    Cycles intercept_cost = 0;
    if (_pipeline.interceptArmed() && _hooks &&
        _hooks->interceptAccess(tid, va, is_write, intercept_cost)) {
        _sched.advance(lat + intercept_cost);
        return sharedPaddr(pid, va);
    }

    if (!bypass_private && _pipeline.bypassPrivate(tid))
        bypass_private = true;

    Addr paddr;
    if (bypass_private) {
        paddr = sharedPaddr(pid, va);
    } else {
        VPage vpage = va >> _mmu.pageShift();
        Addr page_mask = _mmu.pageBytes() - 1;
        Addr frame_base;
        if (_pipeline.frameLookup(core, pid, vpage, frame_base)) {
            paddr = frame_base | (va & page_mask);
        } else {
            TranslateResult tr = _mmu.translate(pid, va, is_write);
            paddr = tr.paddr;
            if (tr.softFault)
                lat += faultCost();
            lat += tr.extraCost;
            if (tr.cacheable) {
                _pipeline.frameInsert(core, pid, vpage,
                                      tr.paddr & ~page_mask);
            }
        }
    }

    // Transactional conflict detection (lock elision). One counter
    // test when no txn is live anywhere, so elision-off runs charge
    // and trace exactly as before this path existed.
    if (_activeTxns != 0)
        txnPreAccess(tid, va, is_write);

    AccessContext ctx;
    ctx.core = core;
    ctx.tid = tid;
    ctx.paddr = paddr;
    ctx.vaddr = va;
    ctx.pc = pc;
    ctx.width = info.width;
    ctx.isWrite = is_write;
    AccessResult res = _cache.access(ctx);

    if (_activeTxns != 0)
        txnPostAccess(tid, res.hitm);

    if (_config.instrumentationSampling) {
        // Predator-style instrumentation: every access pays the tax;
        // every Nth is reported to the sampler.
        lat += _config.instrumentationCost;
        if (++_accessSampleCounter >=
            _config.instrumentationSampling) {
            _accessSampleCounter = 0;
            if (_accessSampler)
                _accessSampler(ctx);
        }
    }

    std::uint64_t xlate_epoch = _pipeline.epoch().value();
    _sched.advance(lat + res.latency);
    if (!bypass_private && _pipeline.epoch().value() != xlate_epoch) {
        // The advance yielded, and some other fiber changed a mapping
        // meanwhile -- e.g. a watchdog force-commit dropped the
        // private frame this paddr points into, which the caller is
        // about to read or write. Functionally the access completes
        // now, so re-resolve against the live page tables; its
        // timing was already charged above, and any fresh divergence
        // cost is forgiven (the pathological-commit corner is not a
        // place to model twin costs precisely).
        paddr = _mmu.translate(pid, va, is_write).paddr;
    }
    return paddr;
}

std::uint64_t
Machine::memOp(ThreadId tid, Addr pc, Addr va, bool is_write,
               std::uint64_t store_value, bool bypass_private)
{
    Addr paddr = accessPath(tid, pc, va, is_write, bypass_private);
    unsigned width = _pipeline.instr(coreOf(tid), pc, _instrs).width;
    if (is_write) {
        if (_activeTxns != 0)
            txnTrackWrite(tid, paddr, width);
        writePhys(paddr, store_value, width);
        return 0;
    }
    return readPhys(paddr, width);
}

void
Machine::memOpStream(ThreadId tid, Addr pc, Addr va,
                     std::uint64_t count, Addr stride,
                     std::uint64_t value, std::uint64_t value_step)
{
    // Width is immutable once a PC is defined, so it can be hoisted
    // even though every accessPath below may yield.
    unsigned width = _pipeline.instr(coreOf(tid), pc, _instrs).width;
    for (std::uint64_t i = 0; i < count; ++i) {
        Addr paddr = accessPath(tid, pc, va, true, false);
        if (_activeTxns != 0)
            txnTrackWrite(tid, paddr, width);
        writePhys(paddr, value, width);
        va += stride;
        value += value_step;
    }
}

void
Machine::bulkWrite(ThreadId tid, Addr va, const void *buf,
                   std::size_t size)
{
    // Bulk traffic bypasses the per-access path, so a txn could
    // neither track nor roll it back: treat it as a capacity abort.
    txnAbortIfActive(tid, TxnAbortReason::Capacity);
    ProcessId pid = _threadProcess[tid];
    const auto *in = static_cast<const std::uint8_t *>(buf);
    std::uint64_t page_bytes = _mmu.pageBytes();
    while (size > 0) {
        // Clamp the chunk to the current constant-shift layout run,
        // then redirect; a span straddling a segment boundary would
        // otherwise copy to the wrong placement.
        std::uint64_t run = size;
        Addr eff = va;
        if (!_layout.empty()) {
            std::int64_t shift = 0;
            run = _layout.span(va, size, shift);
            eff = static_cast<Addr>(
                static_cast<std::int64_t>(va) + shift);
        }
        Addr off = eff & (page_bytes - 1);
        std::size_t chunk =
            std::min<std::size_t>(run, page_bytes - off);
        TranslateResult tr = _mmu.translate(pid, eff, true);
        Cycles lat = tr.extraCost + (tr.softFault ? faultCost() : 0);
        lat += 2 * (chunk / lineBytes + 1);
        _mmu.phys().write(tr.paddr, in, chunk);
        _statBulkBytes += static_cast<double>(chunk);
        _sched.advance(lat);
        in += chunk;
        va += chunk;
        size -= chunk;
    }
}

void
Machine::bulkFill(ThreadId tid, Addr va, std::uint8_t byte,
                  std::size_t size)
{
    if (_bulkScratch.size() <= tid)
        _bulkScratch.resize(tid + 1);
    std::vector<std::uint8_t> &chunk = _bulkScratch[tid];
    std::size_t want = std::min<std::size_t>(size, smallPageBytes);
    if (chunk.size() < want)
        chunk.resize(want);
    std::memset(chunk.data(), byte, want);
    // Hold the heap buffer, not the vector: a concurrent bulkFill by
    // a later tid can resize _bulkScratch across bulkWrite's yields,
    // moving the inner vector objects (their buffers stay put).
    const std::uint8_t *data = chunk.data();
    while (size > 0) {
        std::size_t n = std::min(size, want);
        bulkWrite(tid, va, data, n);
        va += n;
        size -= n;
    }
}

void
Machine::bulkRead(ThreadId tid, Addr va, void *buf, std::size_t size)
{
    // Untracked reads would escape conflict detection (see bulkWrite).
    txnAbortIfActive(tid, TxnAbortReason::Capacity);
    ProcessId pid = _threadProcess[tid];
    auto *out = static_cast<std::uint8_t *>(buf);
    std::uint64_t page_bytes = _mmu.pageBytes();
    while (size > 0) {
        std::uint64_t run = size;
        Addr eff = va;
        if (!_layout.empty()) {
            std::int64_t shift = 0;
            run = _layout.span(va, size, shift);
            eff = static_cast<Addr>(
                static_cast<std::int64_t>(va) + shift);
        }
        Addr off = eff & (page_bytes - 1);
        std::size_t chunk =
            std::min<std::size_t>(run, page_bytes - off);
        TranslateResult tr = _mmu.translate(pid, eff, false);
        Cycles lat = tr.softFault ? faultCost() : 0;
        lat += 2 * (chunk / lineBytes + 1);
        _mmu.phys().read(tr.paddr, out, chunk);
        _sched.advance(lat);
        out += chunk;
        va += chunk;
        size -= chunk;
    }
}

std::uint64_t
Machine::peek(Addr va, unsigned width) const
{
    if (!_layout.empty()) {
        bool hit = false;
        va = _layout.redirect(va, hit);
    }
    Addr paddr = 0;
    bool ok = _mmu.translatePeek(0, va, paddr);
    TMI_ASSERT(ok, "peek of unmapped address");
    return readPhys(paddr, width);
}

std::uint64_t
Machine::peekShared(Addr va, unsigned width) const
{
    if (!_layout.empty()) {
        bool hit = false;
        va = _layout.redirect(va, hit);
    }
    return readPhys(sharedPaddr(0, va), width);
}

void
Machine::flushTlbs()
{
    for (auto &tlb : _tlbs)
        tlb.flush();
    // Callers flush because a mapping changed; kill the software
    // translation cache too even if the mutation site forgot.
    _pipeline.epoch().bump();
}

// ---------------------------------------------------------------------
// Atomics

std::uint64_t
Machine::atomicLoad(ThreadId tid, Addr pc, Addr va, MemOrder order)
{
    if (_hooks)
        _hooks->onAtomicOp(tid, order, false);
    ++_statAtomicOps;
    if (_pipeline.stale())
        revalidatePipeline();
    return memOp(tid, pc, va, false, 0, _pipeline.atomicsBypass());
}

void
Machine::atomicStore(ThreadId tid, Addr pc, Addr va, std::uint64_t v,
                     MemOrder order)
{
    if (_hooks)
        _hooks->onAtomicOp(tid, order, false);
    ++_statAtomicOps;
    if (_pipeline.stale())
        revalidatePipeline();
    memOp(tid, pc, va, true, v, _pipeline.atomicsBypass());
}

std::uint64_t
Machine::atomicFetchAdd(ThreadId tid, Addr pc, Addr va,
                        std::uint64_t delta, MemOrder order)
{
    if (_hooks)
        _hooks->onAtomicOp(tid, order, true);
    ++_statAtomicOps;
    if (_pipeline.stale())
        revalidatePipeline();
    bool bypass = _pipeline.atomicsBypass();
    unsigned width = _pipeline.instr(coreOf(tid), pc, _instrs).width;

    // Charge one RFO write access; then perform the whole
    // read-modify-write on the resolved frame without yielding, so
    // the operation is indivisible.
    Addr paddr = accessPath(tid, pc, va, true, bypass);
    std::uint64_t old = readPhys(paddr, width);
    if (_activeTxns != 0)
        txnTrackWrite(tid, paddr, width);
    writePhys(paddr, old + delta, width);
    return old;
}

bool
Machine::atomicCas(ThreadId tid, Addr pc, Addr va, std::uint64_t expect,
                   std::uint64_t desired, MemOrder order)
{
    if (_hooks)
        _hooks->onAtomicOp(tid, order, true);
    ++_statAtomicOps;
    if (_pipeline.stale())
        revalidatePipeline();
    bool bypass = _pipeline.atomicsBypass();
    unsigned width = _pipeline.instr(coreOf(tid), pc, _instrs).width;

    Addr paddr = accessPath(tid, pc, va, true, bypass);
    std::uint64_t old = readPhys(paddr, width);
    if (old != expect)
        return false;
    if (_activeTxns != 0)
        txnTrackWrite(tid, paddr, width);
    writePhys(paddr, desired, width);
    return true;
}

// ---------------------------------------------------------------------
// Regions

void
Machine::regionEnter(ThreadId tid, RegionKind kind)
{
    _sched.advance(_config.regionCallbackCost);
    if (_hooks) {
        _hooks->onRegionEnter(tid, kind);
        // Region transitions are the only frequent event that can
        // change bypassPrivate's answer; push the new value instead
        // of churning the epoch.
        _pipeline.setBypassPrivate(tid, _hooks->bypassPrivate(tid));
    }
}

void
Machine::regionExit(ThreadId tid)
{
    _sched.advance(_config.regionCallbackCost);
    if (_hooks) {
        _hooks->onRegionExit(tid);
        _pipeline.setBypassPrivate(tid, _hooks->bypassPrivate(tid));
    }
}

// ---------------------------------------------------------------------
// Bounded transactions (lock elision)

const char *
txnAbortReasonName(TxnAbortReason reason)
{
    switch (reason) {
      case TxnAbortReason::None:
        return "none";
      case TxnAbortReason::Conflict:
        return "conflict";
      case TxnAbortReason::RemoteConflict:
        return "remote-conflict";
      case TxnAbortReason::Capacity:
        return "capacity";
      case TxnAbortReason::Spurious:
        return "spurious";
      case TxnAbortReason::Nested:
        return "nested";
    }
    return "?";
}

bool
Machine::txnBegin(ThreadId tid, unsigned read_lines,
                  unsigned write_lines)
{
    TMI_ASSERT(_sched.current() && _sched.current()->tid() == tid,
               "txnBegin outside its own simulated thread");
    if (_txns.size() <= tid)
        _txns.resize(tid + 1);
    TMI_ASSERT(!_txns[tid].active, "nested txnBegin");
    // The latch lives in THIS frame, so it is part of the snapshot: a
    // rollback restores it while the heap-resident counter keeps its
    // bump, which is how an abort arrival is recognized.
    std::uint64_t before = _txns[tid].ck.resumes;
    _sched.checkpointCurrent(_txns[tid].ck);
    TxnState &tx = _txns[tid]; // re-resolve: rollbacks arrive late
    if (tx.ck.resumes != before)
        return false; // aborted; reason in lastAbort
    tx.active = true;
    tx.readCap = read_lines;
    tx.writeCap = write_lines;
    tx.readLines.clear();
    tx.writeLines.clear();
    tx.readCount = 0;
    tx.writeCount = 0;
    tx.undo.clear();
    tx.conflictObserved = false;
    ++_activeTxns;
    return true;
}

void
Machine::txnCommit(ThreadId tid)
{
    TMI_ASSERT(tid < _txns.size() && _txns[tid].active,
               "txnCommit outside a txn");
    TxnState &tx = _txns[tid];
    tx.active = false;
    tx.lastAbort = TxnAbortReason::None;
    tx.undo.clear();
    TMI_ASSERT(_activeTxns > 0);
    --_activeTxns;
    ++_statTxnCommits;
}

void
Machine::txnMarkAborted(TxnState &tx, TxnAbortReason why)
{
    txnRollbackMemory(tx);
    tx.active = false;
    tx.lastAbort = why;
    TMI_ASSERT(_activeTxns > 0);
    --_activeTxns;
    ++_statTxnAborts;
}

void
Machine::txnAbortSelf(ThreadId tid, TxnAbortReason why)
{
    TMI_ASSERT(tid < _txns.size() && _txns[tid].active,
               "txnAbortSelf outside a txn");
    TxnState &tx = _txns[tid];
    txnMarkAborted(tx, why);
    _sched.restoreCurrent(tx.ck);
}

void
Machine::txnRollbackMemory(TxnState &tx)
{
    // Reverse order, so overlapping writes restore the oldest bytes.
    for (auto it = tx.undo.rbegin(); it != tx.undo.rend(); ++it)
        writePhys(it->paddr, it->old, it->width);
    // Speculative stores left lines Modified in the aborting core's
    // cache; drop them so no later access takes a HITM (or a dirty
    // forward) from state that never architecturally existed.
    for (const TxnState::Undo &u : tx.undo)
        _cache.invalidateLine(u.paddr);
    tx.undo.clear();
}

bool
Machine::txnActive(ThreadId tid) const
{
    return tid < _txns.size() && _txns[tid].active;
}

TxnAbortReason
Machine::txnAbortReason(ThreadId tid) const
{
    return tid < _txns.size() ? _txns[tid].lastAbort
                              : TxnAbortReason::None;
}

bool
Machine::txnConflictObserved(ThreadId tid) const
{
    return tid < _txns.size() && _txns[tid].conflictObserved;
}

void
Machine::txnAbortIfActive(ThreadId tid, TxnAbortReason why)
{
    if (_activeTxns != 0 && tid < _txns.size() && _txns[tid].active)
        txnAbortSelf(tid, why);
}

void
Machine::txnPreAccess(ThreadId tid, Addr va, bool is_write)
{
    Addr line = va >> lineShift;
    // Requester wins: any other txn holding this line in a
    // conflicting set is aborted *now*, so its undo restore lands
    // before this access reads or overwrites the data. The same rule
    // makes non-speculative accesses always defeat speculation.
    for (std::size_t victim = 0; victim < _txns.size(); ++victim) {
        if (victim == tid)
            continue;
        TxnState &vx = _txns[victim];
        if (!vx.active)
            continue;
        bool conflict =
            std::find(vx.writeLines.begin(), vx.writeLines.end(),
                      line) != vx.writeLines.end();
        if (!conflict && is_write) {
            conflict = std::find(vx.readLines.begin(),
                                 vx.readLines.end(),
                                 line) != vx.readLines.end();
        }
        if (conflict) {
            txnMarkAborted(vx, TxnAbortReason::RemoteConflict);
            _sched.hijackThread(static_cast<ThreadId>(victim), vx.ck);
        }
    }

    if (tid >= _txns.size() || !_txns[tid].active)
        return;
    TxnState &tx = _txns[tid];
    if (_faults.enabled() &&
        _faults.shouldFail(faultpoint::htmSpuriousAbort))
        txnAbortSelf(tid, TxnAbortReason::Spurious);
    // Capacity accounting. htm.capacity_misaccount books the line
    // twice, modeling the set-estimation errata real HTM ships with:
    // the txn aborts earlier than its true footprint warrants.
    unsigned weight = 1;
    if (_faults.enabled() &&
        _faults.shouldFail(faultpoint::htmCapacityMisaccount))
        weight = 2;
    std::vector<Addr> &lines = is_write ? tx.writeLines : tx.readLines;
    unsigned &count = is_write ? tx.writeCount : tx.readCount;
    unsigned cap = is_write ? tx.writeCap : tx.readCap;
    if (std::find(lines.begin(), lines.end(), line) == lines.end()) {
        lines.push_back(line);
        count += weight;
    }
    if (count > cap)
        txnAbortSelf(tid, TxnAbortReason::Capacity);
}

void
Machine::txnPostAccess(ThreadId tid, bool hitm)
{
    if (!hitm || tid >= _txns.size() || !_txns[tid].active)
        return;
    // A remote-Modified hit inside a txn IS the conflict signal.
    // Record the observation before aborting so the commit-time
    // oracle can catch any path that forgets to abort.
    _txns[tid].conflictObserved = true;
    txnAbortSelf(tid, TxnAbortReason::Conflict);
}

void
Machine::txnTrackWrite(ThreadId tid, Addr paddr, unsigned width)
{
    if (tid >= _txns.size() || !_txns[tid].active)
        return;
    TxnState &tx = _txns[tid];
    tx.undo.push_back({paddr, readPhys(paddr, width), width});
}

// ---------------------------------------------------------------------
// Synchronization

Addr
Machine::syncAddr(ThreadId tid, Addr va)
{
    auto it = _syncRedirect.find(va);
    TMI_ASSERT(it != _syncRedirect.end(),
               "sync object used before init");
    if (it->second != va) {
        // Follow the indirection Tmi installed: one pointer load.
        memOp(tid, _pcPtrLoad, va, false, 0, true);
    }
    return it->second;
}

void
Machine::mutexInit(ThreadId tid, Addr va)
{
    Addr caddr = _hooks ? _hooks->onSyncObjectInit(tid, va) : va;
    _syncRedirect[va] = caddr;
    if (caddr != va)
        memOp(tid, _pcPtrStore, va, true, caddr >> lineShift, true);
    _sync.mutexInit(caddr);
}

void
Machine::mutexLock(ThreadId tid, Addr va)
{
    Addr caddr = syncAddr(tid, va);
    // Lock elision: the runtime may open a speculative region instead
    // of acquiring. The lock word is then only *read* (the runtime
    // subscribes it to the txn), so a real acquirer's CAS aborts the
    // speculation through the normal conflict path.
    if (_hooks && _hooks->onMutexLock(tid, caddr))
        return;
    // A real acquisition inside a txn -- a nested lock the runtime
    // declined to elide -- may block; it cannot stay speculative.
    txnAbortIfActive(tid, TxnAbortReason::Nested);
    memOp(tid, _pcLockCas, caddr, true, 1, true);
    _sync.mutexLock(caddr);
    if (_hooks)
        _hooks->onSyncAcquire(tid);
}

bool
Machine::mutexTryLock(ThreadId tid, Addr va)
{
    Addr caddr = syncAddr(tid, va);
    // Trylock is never elided: its return value must reflect the real
    // lock word, which a speculative region cannot promise.
    txnAbortIfActive(tid, TxnAbortReason::Nested);
    memOp(tid, _pcLockCas, caddr, true, 1, true);
    bool got = _sync.mutexTryLock(caddr);
    if (got && _hooks)
        _hooks->onSyncAcquire(tid);
    return got;
}

void
Machine::mutexUnlock(ThreadId tid, Addr va)
{
    Addr caddr = syncAddr(tid, va);
    // Elided unlock: the speculative region commits here -- no
    // lock-word store, no SyncManager release.
    if (_hooks && _hooks->onMutexUnlock(tid, caddr))
        return;
    if (_hooks)
        _hooks->onSyncRelease(tid);
    memOp(tid, _pcLockStore, caddr, true, 0, true);
    _sync.mutexUnlock(caddr);
}

void
Machine::barrierInit(ThreadId tid, Addr va, unsigned parties)
{
    Addr caddr = _hooks ? _hooks->onSyncObjectInit(tid, va) : va;
    _syncRedirect[va] = caddr;
    if (caddr != va)
        memOp(tid, _pcPtrStore, va, true, caddr >> lineShift, true);
    _sync.barrierInit(caddr, parties);
}

void
Machine::barrierWait(ThreadId tid, Addr va)
{
    Addr caddr = syncAddr(tid, va);
    txnAbortIfActive(tid, TxnAbortReason::Nested);
    if (_hooks)
        _hooks->onSyncRelease(tid);
    memOp(tid, _pcLockCas, caddr, true, 1, true);
    _sync.barrierWait(caddr);
    if (_hooks)
        _hooks->onSyncAcquire(tid);
}

void
Machine::condInit(ThreadId tid, Addr va)
{
    Addr caddr = _hooks ? _hooks->onSyncObjectInit(tid, va) : va;
    _syncRedirect[va] = caddr;
    if (caddr != va)
        memOp(tid, _pcPtrStore, va, true, caddr >> lineShift, true);
    _sync.condInit(caddr);
}

void
Machine::condWait(ThreadId tid, Addr va, Addr mutex_va)
{
    Addr caddr = syncAddr(tid, va);
    Addr cmutex = syncAddr(tid, mutex_va);
    txnAbortIfActive(tid, TxnAbortReason::Nested);
    if (_hooks)
        _hooks->onSyncRelease(tid);
    memOp(tid, _pcLockCas, caddr, true, 1, true);
    _sync.condWait(caddr, cmutex);
    if (_hooks)
        _hooks->onSyncAcquire(tid);
}

void
Machine::condSignal(ThreadId tid, Addr va)
{
    Addr caddr = syncAddr(tid, va);
    txnAbortIfActive(tid, TxnAbortReason::Nested);
    memOp(tid, _pcLockStore, caddr, true, 0, true);
    _sync.condSignal(caddr);
}

void
Machine::condBroadcast(ThreadId tid, Addr va)
{
    Addr caddr = syncAddr(tid, va);
    txnAbortIfActive(tid, TxnAbortReason::Nested);
    memOp(tid, _pcLockStore, caddr, true, 0, true);
    _sync.condBroadcast(caddr);
}

// ---------------------------------------------------------------------
// Stats

void
Machine::regStats(stats::StatGroup &group)
{
    group.addScalar("memOps", &_statMemOps, "simulated data accesses");
    group.addScalar("atomicOps", &_statAtomicOps,
                    "simulated atomic operations");
    group.addScalar("bulkBytes", &_statBulkBytes,
                    "bytes moved by bulk operations");
    group.addScalar("txnCommits", &_statTxnCommits,
                    "speculative regions committed");
    group.addScalar("txnAborts", &_statTxnAborts,
                    "speculative regions aborted");
    _mmu.regStats(group);
    _cache.regStats(group);
    _sched.regStats(group);
    _sync.regStats(group);
    _perf.regStats(group);
    _faults.regStats(group);
    _alloc->allocStats().regStats(group);
    for (auto &tlb : _tlbs)
        tlb.regStats(group);
}

} // namespace tmi
