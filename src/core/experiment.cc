#include "experiment.hh"

#include <sstream>

#include "baselines/laser.hh"
#include "baselines/sheriff.hh"
#include "runtime/tmi_runtime.hh"
#include "workloads/workload.hh"

namespace tmi
{

const char *
treatmentName(Treatment t)
{
    switch (t) {
      case Treatment::Pthreads:
        return "pthreads";
      case Treatment::Manual:
        return "manual";
      case Treatment::TmiAlloc:
        return "tmi-alloc";
      case Treatment::TmiDetect:
        return "tmi-detect";
      case Treatment::TmiProtect:
        return "tmi-protect";
      case Treatment::TmiProtectNoCcc:
        return "tmi-protect-no-ccc";
      case Treatment::PtsbEverywhere:
        return "ptsb-everywhere";
      case Treatment::SheriffDetect:
        return "sheriff-detect";
      case Treatment::SheriffProtect:
        return "sheriff-protect";
      case Treatment::Laser:
        return "laser";
    }
    return "?";
}

namespace
{

bool
isTmiTreatment(Treatment t)
{
    return t == Treatment::TmiAlloc || t == Treatment::TmiDetect ||
           t == Treatment::TmiProtect ||
           t == Treatment::TmiProtectNoCcc ||
           t == Treatment::PtsbEverywhere;
}

bool
isSheriffTreatment(Treatment t)
{
    return t == Treatment::SheriffDetect ||
           t == Treatment::SheriffProtect;
}

} // namespace

RunResult
runExperiment(const ExperimentConfig &config)
{
    const WorkloadInfo &info = findWorkload(config.workload);

    MachineConfig mc;
    mc.cores = config.threads;
    mc.pageShift = config.pageShift;
    mc.allocator = config.allocator;
    mc.perf.period = config.perfPeriod;
    mc.seed = config.seed;
    // Tmi and Sheriff serve application memory from process-shared,
    // file-backed mappings and use the modified small-object policy;
    // pthreads/manual/LASER run the stock allocator on anonymous
    // memory.
    mc.shmBackedHeap =
        isTmiTreatment(config.treatment) ||
        isSheriffTreatment(config.treatment);
    mc.tmiModifiedAllocator = mc.shmBackedHeap;
    mc.faults = config.faults;
    mc.faultSeed = config.faultSeed;

    Machine machine(mc);

    WorkloadParams params;
    params.threads = config.threads;
    params.scale = config.scale;
    params.manualFix = config.treatment == Treatment::Manual;
    params.seed = config.seed;
    std::unique_ptr<Workload> workload = info.make(params);
    workload->init(machine);

    std::unique_ptr<TmiRuntime> tmi;
    std::unique_ptr<SheriffRuntime> sheriff;
    std::unique_ptr<LaserRuntime> laser;

    switch (config.treatment) {
      case Treatment::Pthreads:
      case Treatment::Manual:
        break;
      case Treatment::TmiAlloc:
      case Treatment::TmiDetect:
      case Treatment::TmiProtect:
      case Treatment::TmiProtectNoCcc:
      case Treatment::PtsbEverywhere: {
        TmiConfig tc;
        tc.mode = config.treatment == Treatment::TmiAlloc
                      ? TmiMode::AllocOnly
                  : config.treatment == Treatment::TmiDetect
                      ? TmiMode::DetectOnly
                      : TmiMode::DetectAndRepair;
        tc.cccEnabled = config.treatment != Treatment::TmiProtectNoCcc;
        // The no-CCC ablation applies the PTSB indiscriminately: the
        // Figure 11/12 question is what an unguarded PTSB does to
        // atomics/asm, not whether targeted detection happens to
        // choose their pages.
        tc.ptsbEverywhere =
            config.treatment == Treatment::PtsbEverywhere ||
            config.treatment == Treatment::TmiProtectNoCcc;
        tc.detector.repairThreshold = config.repairThreshold;
        tc.analysisInterval = config.analysisInterval;
        // The ablation treatments exist to reproduce the paper's
        // failure modes (Fig. 11/12 hangs and racy merges), so the
        // self-healing machinery defaults off for them and the
        // failure is allowed to unfold unless explicitly overridden.
        bool ablation =
            config.treatment == Treatment::TmiProtectNoCcc ||
            config.treatment == Treatment::PtsbEverywhere;
        tc.robust.watchdogEnabled =
            config.watchdog == -1 ? !ablation : config.watchdog != 0;
        tc.robust.monitorEnabled =
            config.monitor == -1 ? !ablation : config.monitor != 0;
        if (config.watchdogTimeout != 0)
            tc.robust.watchdogTimeout = config.watchdogTimeout;
        tmi = std::make_unique<TmiRuntime>(machine, tc);
        tmi->attach();
        break;
      }
      case Treatment::SheriffDetect:
      case Treatment::SheriffProtect: {
        SheriffConfig sc;
        sc.detectMode = config.treatment == Treatment::SheriffDetect;
        sheriff = std::make_unique<SheriffRuntime>(machine, sc);
        sheriff->attach();
        break;
      }
      case Treatment::Laser: {
        LaserConfig lc;
        lc.detector.repairThreshold = config.repairThreshold;
        lc.analysisInterval = config.analysisInterval;
        laser = std::make_unique<LaserRuntime>(machine, lc);
        laser->attach();
        break;
      }
    }

    Workload *wl = workload.get();
    machine.spawnThread(std::string(info.name) + "-main",
                        [wl](ThreadApi &api) { wl->main(api); });

    RunResult res;
    res.workload = config.workload;
    res.treatment = config.treatment;
    res.outcome = machine.sched().run(config.budget);
    res.valid = res.outcome == RunOutcome::Completed &&
                workload->validate(machine);
    res.compatible = res.valid;

    res.cycles = machine.elapsed();
    res.seconds = static_cast<double>(res.cycles) /
                  machine.config().cyclesPerSecond;
    res.hitmEvents = machine.cache().hitmEvents();
    res.pebsRecords = machine.perf().recordsEmitted();
    res.softFaults = machine.mmu().softFaults();
    res.memOps = machine.memOpCount();
    res.faultFires = machine.faults().totalFires();
    res.appBytesPeak = machine.allocator().allocStats().bytesPeak;

    if (tmi) {
        res.repairActive = tmi->repairActive();
        res.repairStartCycles = tmi->repairStartCycles();
        res.t2pCycles = tmi->t2pCycles();
        res.commits = tmi->totalCommits();
        res.conflictBytes = tmi->totalConflictBytes();
        res.pagesProtected = tmi->protectedPageCount();
        res.overheadBytes = tmi->overheadBytes();
        res.fsEventsEstimated = tmi->detector().fsEventsEstimated();
        res.tsEventsEstimated = tmi->detector().tsEventsEstimated();
        res.ladderRung = tmiModeName(tmi->rung());
        res.t2pAborts = tmi->t2pAborts();
        res.unrepairs = tmi->unrepairs();
        res.watchdogFlushes = tmi->watchdogFires();
        res.cowFallbacks = tmi->cowFallbacks();
        res.ladderDrops = tmi->ladderDrops();
    } else if (sheriff) {
        res.repairActive = true;
        res.commits = sheriff->totalCommits();
        res.conflictBytes = sheriff->totalConflictBytes();
        res.overheadBytes = machine.internalBytes();
    } else if (laser) {
        res.repairActive = laser->repairActive();
        res.fsEventsEstimated = laser->detector().fsEventsEstimated();
        res.tsEventsEstimated = laser->detector().tsEventsEstimated();
    }
    if (res.seconds > 0) {
        res.commitsPerSec =
            static_cast<double>(res.commits) / res.seconds;
    }

    if (config.dumpStats) {
        stats::StatGroup machine_group("machine");
        machine.regStats(machine_group);
        stats::StatGroup runtime_group("runtime");
        if (tmi)
            tmi->regStats(runtime_group);
        else if (sheriff)
            sheriff->regStats(runtime_group);
        else if (laser)
            laser->regStats(runtime_group);

        std::ostringstream os;
        machine_group.dump(os);
        runtime_group.dump(os);
        res.statsText = os.str();
    }
    return res;
}

double
speedup(const RunResult &baseline, const RunResult &treated)
{
    if (treated.cycles == 0)
        return 0.0;
    return static_cast<double>(baseline.cycles) /
           static_cast<double>(treated.cycles);
}

} // namespace tmi
