#include "experiment.hh"

#include <cstdio>
#include <functional>
#include <sstream>

#include "baselines/htm.hh"
#include "baselines/laser.hh"
#include "baselines/sheriff.hh"
#include "core/config.hh"
#include "runtime/tmi_runtime.hh"
#include "staticrepair/applier.hh"
#include "staticrepair/planner.hh"
#include "staticrepair/profiler.hh"
#include "workloads/workload.hh"

namespace tmi
{

const char *
treatmentName(Treatment t)
{
    switch (t) {
      case Treatment::Pthreads:
        return "pthreads";
      case Treatment::Manual:
        return "manual";
      case Treatment::TmiAlloc:
        return "tmi-alloc";
      case Treatment::TmiDetect:
        return "tmi-detect";
      case Treatment::TmiProtect:
        return "tmi-protect";
      case Treatment::TmiProtectNoCcc:
        return "tmi-protect-no-ccc";
      case Treatment::PtsbEverywhere:
        return "ptsb-everywhere";
      case Treatment::SheriffDetect:
        return "sheriff-detect";
      case Treatment::SheriffProtect:
        return "sheriff-protect";
      case Treatment::Laser:
        return "laser";
      case Treatment::HuronStatic:
        return "huron-static";
      case Treatment::HtmElide:
        return "htm-elide";
    }
    return "?";
}

const char *
treatmentDescription(Treatment t)
{
    switch (t) {
      case Treatment::Pthreads:
        return "plain execution, stock allocator (baseline)";
      case Treatment::Manual:
        return "source-level fix: hand padding/alignment";
      case Treatment::TmiAlloc:
        return "TMI's process-shared allocator only";
      case Treatment::TmiDetect:
        return "TMI allocator + HITM sampling and detection thread";
      case Treatment::TmiProtect:
        return "full TMI: detection + online page privatization";
      case Treatment::TmiProtectNoCcc:
        return "ablation: PTSB everywhere with CCC off (Fig. 11/12)";
      case Treatment::PtsbEverywhere:
        return "ablation: repair protects the whole heap";
      case Treatment::SheriffDetect:
        return "Sheriff detection tool (prior work)";
      case Treatment::SheriffProtect:
        return "Sheriff repair tool (buffers atomics too)";
      case Treatment::Laser:
        return "LASER detection + software store-buffer repair";
      case Treatment::HuronStatic:
        return "Huron-style offline repair: profile, plan layout, "
               "replay with apply-at-alloc";
      case Treatment::HtmElide:
        return "HTM lock elision: bounded txns with retry/fallback "
               "and an abort-storm watchdog";
    }
    return "?";
}

const std::vector<Treatment> &
allTreatments()
{
    static const std::vector<Treatment> all = {
        Treatment::Pthreads,        Treatment::Manual,
        Treatment::TmiAlloc,        Treatment::TmiDetect,
        Treatment::TmiProtect,      Treatment::TmiProtectNoCcc,
        Treatment::PtsbEverywhere,  Treatment::SheriffDetect,
        Treatment::SheriffProtect,  Treatment::Laser,
        Treatment::HuronStatic,     Treatment::HtmElide,
    };
    return all;
}

const Treatment *
tryParseTreatment(const std::string &name)
{
    for (const Treatment &t : allTreatments()) {
        if (name == treatmentName(t))
            return &t;
    }
    return nullptr;
}

const char *
placementName(PlacementPolicy p)
{
    switch (p) {
      case PlacementPolicy::Default:
        return "default";
      case PlacementPolicy::Pack:
        return "pack";
      case PlacementPolicy::Arena:
        return "arena";
      case PlacementPolicy::Isolate:
        return "isolate";
    }
    return "?";
}

const std::vector<PlacementPolicy> &
allPlacements()
{
    static const std::vector<PlacementPolicy> all = {
        PlacementPolicy::Default,
        PlacementPolicy::Pack,
        PlacementPolicy::Arena,
        PlacementPolicy::Isolate,
    };
    return all;
}

const PlacementPolicy *
tryParsePlacement(const std::string &name)
{
    for (const PlacementPolicy &p : allPlacements()) {
        if (name == placementName(p))
            return &p;
    }
    return nullptr;
}

namespace
{

bool
isTmiTreatment(Treatment t)
{
    return t == Treatment::TmiAlloc || t == Treatment::TmiDetect ||
           t == Treatment::TmiProtect ||
           t == Treatment::TmiProtectNoCcc ||
           t == Treatment::PtsbEverywhere;
}

bool
isSheriffTreatment(Treatment t)
{
    return t == Treatment::SheriffDetect ||
           t == Treatment::SheriffProtect;
}

} // namespace

void
validateConfig(const ExperimentConfig &config,
               std::vector<ConfigError> &errors,
               const std::string &prefix)
{
    const WorkloadInfo *winfo = nullptr;
    if (config.workload.empty()) {
        errors.push_back({prefix + ".workload",
                          "must name a registered workload"});
    } else if (!(winfo = tryFindWorkload(config.workload))) {
        errors.push_back({prefix + ".workload",
                          "unknown workload '" + config.workload +
                              "'"});
    }
    if (winfo && !config.params.empty()) {
        ParamValues resolved;
        std::string perr;
        if (!resolveParams(winfo->schema, config.params, resolved,
                           perr)) {
            errors.push_back({prefix + ".params", perr});
        }
    }
    if (config.threads == 0) {
        errors.push_back({prefix + ".threads", "must be >= 1"});
    }
    if (config.scale == 0) {
        errors.push_back({prefix + ".scale",
                          "must be >= 1: a zero input size runs "
                          "nothing"});
    }
    if (config.pageShift < smallPageShift ||
        config.pageShift > hugePageShift) {
        errors.push_back({prefix + ".pageShift",
                          "must be between 12 (4 KB) and 21 (2 MB)"});
    }
    if (config.placement != PlacementPolicy::Default &&
        (isTmiTreatment(config.treatment) ||
         isSheriffTreatment(config.treatment))) {
        errors.push_back({prefix + ".placement",
                          "the shm-backed treatments own their "
                          "allocator policy; the placement axis "
                          "applies to pthreads/manual/laser/"
                          "huron-static/htm-elide"});
    }
    if (config.perfPeriod == 0) {
        errors.push_back({prefix + ".perfPeriod",
                          "must be >= 1: PEBS cannot sample every "
                          "zeroth event"});
    }
    if (config.repairThreshold <= 0) {
        errors.push_back({prefix + ".repairThreshold",
                          "must be positive: a free threshold would "
                          "repair every sampled page"});
    }
    if (config.analysisInterval == 0) {
        errors.push_back({prefix + ".analysisInterval",
                          "must be positive: the detection thread "
                          "needs a wakeup cadence"});
    }
    if (config.budget == 0) {
        errors.push_back({prefix + ".budget",
                          "must be positive: a zero budget times out "
                          "immediately"});
    }
    if (config.watchdog < -1 || config.watchdog > 1) {
        errors.push_back({prefix + ".watchdog",
                          "must be -1 (treatment default), 0 (off) "
                          "or 1 (on)"});
    }
    if (config.monitor < -1 || config.monitor > 1) {
        errors.push_back({prefix + ".monitor",
                          "must be -1 (treatment default), 0 (off) "
                          "or 1 (on)"});
    }
    for (const auto &[point, spec] : config.faults) {
        if (point.empty()) {
            errors.push_back({prefix + ".faults",
                              "fault points need non-empty names"});
        }
        if (spec.probability < 0.0 || spec.probability > 1.0) {
            errors.push_back({prefix + ".faults[" + point + "]",
                              "probability must be in [0, 1]"});
        }
        if (spec.windowEnd != 0 &&
            spec.windowEnd <= spec.windowStart) {
            errors.push_back({prefix + ".faults[" + point + "]",
                              "windowEnd must be 0 (unbounded) or "
                              "> windowStart"});
        }
        if (spec.burstLen != 0 && spec.burstPeriod == 0) {
            errors.push_back({prefix + ".faults[" + point + "]",
                              "burstLen needs a nonzero "
                              "burstPeriod"});
        }
        if (spec.burstLen > spec.burstPeriod) {
            errors.push_back({prefix + ".faults[" + point + "]",
                              "burstLen must be <= burstPeriod "
                              "(the burst must fit its period)"});
        }
    }
    if (!config.planIn.empty()) {
        staticrepair::LayoutPlan plan;
        std::string perr;
        if (!staticrepair::parsePlan(config.planIn, plan, perr)) {
            errors.push_back({prefix + ".planIn", perr});
        }
    }
    obs::validateConfig(config.trace, errors, prefix + ".trace");
}

RunResult
runExperiment(const ExperimentConfig &config)
{
    Config full;
    full.run = config;
    return runExperiment(full);
}

namespace
{

/**
 * Run one machine+workload cell. @p prepare runs right after machine
 * construction (install alloc hooks / profilers); @p finish runs
 * before the machine dies (harvest anything that needs live machine
 * state). Both may be null.
 */
RunResult
runCell(const Config &full,
        const std::function<void(Machine &)> &prepare,
        const std::function<void(Machine &, RunResult &)> &finish)
{
    const ExperimentConfig &config = full.run;
    const WorkloadInfo &info = findWorkload(config.workload);

    // Start from the deep template, overlay every run.* scalar: the
    // run view is always authoritative over the template (see
    // config.hh for the rule).
    MachineConfig mc = full.machine;
    mc.cores = config.threads;
    mc.pageShift = config.pageShift;
    mc.allocator = config.allocator;
    mc.perf.period = config.perfPeriod;
    mc.seed = config.seed;
    // Tmi and Sheriff serve application memory from process-shared,
    // file-backed mappings and use the modified small-object policy;
    // pthreads/manual/LASER run the stock allocator on anonymous
    // memory.
    mc.shmBackedHeap =
        isTmiTreatment(config.treatment) ||
        isSheriffTreatment(config.treatment);
    mc.tmiModifiedAllocator = mc.shmBackedHeap;
    // The malloc-placement axis overrides the treatment's allocator
    // defaults (validateConfig rejects it for the shm-backed
    // treatments, whose repair machinery owns the layout policy).
    switch (config.placement) {
      case PlacementPolicy::Default:
        break;
      case PlacementPolicy::Pack:
        // Dense shared-arena packing: 16-byte granules plus the 8-byte
        // header skew mean small objects from different threads share
        // lines routinely.
        mc.allocator = AllocatorKind::GlibcLike;
        mc.tmiModifiedAllocator = false;
        break;
      case PlacementPolicy::Arena:
        mc.allocator = AllocatorKind::Lockless;
        mc.tmiModifiedAllocator = false;
        break;
      case PlacementPolicy::Isolate:
        // Per-thread arenas plus the line-granular small-object floor:
        // no two threads' small objects ever share a cache line.
        mc.allocator = AllocatorKind::Lockless;
        mc.tmiModifiedAllocator = true;
        break;
    }
    mc.faults = config.faults;
    mc.faultSeed = config.faultSeed;
    mc.trace = config.trace;

    Machine machine(mc);
    if (prepare)
        prepare(machine);

    WorkloadParams params;
    params.threads = config.threads;
    params.scale = config.scale;
    params.manualFix = config.treatment == Treatment::Manual;
    params.seed = config.seed;
    {
        // Defaults plus the validated overrides; validateOrDie
        // already rejected unknown or ill-typed keys above.
        std::string perr;
        if (!resolveParams(info.schema, config.params, params.extra,
                           perr)) {
            fatal("workload params failed late validation: %s",
                  perr.c_str());
        }
    }
    std::unique_ptr<Workload> workload = info.make(params);
    workload->init(machine);

    std::unique_ptr<TmiRuntime> tmi;
    std::unique_ptr<SheriffRuntime> sheriff;
    std::unique_ptr<LaserRuntime> laser;
    std::unique_ptr<HtmRuntime> htm;

    switch (config.treatment) {
      case Treatment::Pthreads:
      case Treatment::Manual:
        break;
      case Treatment::HuronStatic:
        // No runtime: both static-repair phases run plain machines;
        // the profiler/applier arrive through the prepare callback.
        break;
      case Treatment::TmiAlloc:
      case Treatment::TmiDetect:
      case Treatment::TmiProtect:
      case Treatment::TmiProtectNoCcc:
      case Treatment::PtsbEverywhere: {
        TmiConfig tc = full.tmi;
        tc.mode = config.treatment == Treatment::TmiAlloc
                      ? TmiMode::AllocOnly
                  : config.treatment == Treatment::TmiDetect
                      ? TmiMode::DetectOnly
                      : TmiMode::DetectAndRepair;
        tc.cccEnabled = config.treatment != Treatment::TmiProtectNoCcc;
        // The no-CCC ablation applies the PTSB indiscriminately: the
        // Figure 11/12 question is what an unguarded PTSB does to
        // atomics/asm, not whether targeted detection happens to
        // choose their pages.
        tc.ptsbEverywhere =
            config.treatment == Treatment::PtsbEverywhere ||
            config.treatment == Treatment::TmiProtectNoCcc;
        tc.detector.repairThreshold = config.repairThreshold;
        tc.analysisInterval = config.analysisInterval;
        // The ablation treatments exist to reproduce the paper's
        // failure modes (Fig. 11/12 hangs and racy merges), so the
        // self-healing machinery defaults off for them and the
        // failure is allowed to unfold unless explicitly overridden.
        bool ablation =
            config.treatment == Treatment::TmiProtectNoCcc ||
            config.treatment == Treatment::PtsbEverywhere;
        tc.robust.watchdogEnabled =
            config.watchdog == -1 ? !ablation : config.watchdog != 0;
        tc.robust.monitorEnabled =
            config.monitor == -1 ? !ablation : config.monitor != 0;
        if (config.watchdogTimeout != 0)
            tc.robust.watchdogTimeout = config.watchdogTimeout;
        tmi = std::make_unique<TmiRuntime>(machine, tc);
        tmi->attach();
        break;
      }
      case Treatment::SheriffDetect:
      case Treatment::SheriffProtect: {
        SheriffConfig sc;
        sc.detectMode = config.treatment == Treatment::SheriffDetect;
        // Stock Sheriff has no self-healing, so -1 keeps the watchdog
        // and monitor off and lets its documented failure modes
        // unfold; robustness sweeps arm them explicitly for
        // apples-to-apples ladder comparisons against Tmi.
        sc.robust.watchdogEnabled = config.watchdog == 1;
        sc.robust.monitorEnabled = config.monitor == 1;
        sc.monitorInterval = config.analysisInterval;
        if (config.watchdogTimeout != 0)
            sc.robust.watchdogTimeout = config.watchdogTimeout;
        sc.buggyDissolveOrder = config.sheriffBuggyDissolve;
        sheriff = std::make_unique<SheriffRuntime>(machine, sc);
        sheriff->attach();
        break;
      }
      case Treatment::Laser: {
        LaserConfig lc;
        lc.detector.repairThreshold = config.repairThreshold;
        lc.analysisInterval = config.analysisInterval;
        // Same convention as Sheriff: the effectiveness/perf-health
        // monitor is opt-in, preserving stock LASER behaviour (e.g.
        // the histogram slowdown) unless a sweep arms it.
        lc.robust.monitorEnabled = config.monitor == 1;
        laser = std::make_unique<LaserRuntime>(machine, lc);
        laser->attach();
        break;
      }
      case Treatment::HtmElide: {
        HtmConfig hc;
        hc.robust = full.tmi.robust;
        hc.robust.monitorEnabled = false; // no repair to judge
        // The abort-storm watchdog is this backend's livelock
        // defence, so unlike the ablations it defaults on.
        hc.robust.watchdogEnabled =
            config.watchdog == -1 ? true : config.watchdog != 0;
        htm = std::make_unique<HtmRuntime>(machine, hc);
        htm->attach();
        break;
      }
    }

    Workload *wl = workload.get();
    machine.spawnThread(std::string(info.name) + "-main",
                        [wl](ThreadApi &api) { wl->main(api); });

    machine.sched().setAbortFlag(config.cancel);

    RunResult res;
    res.workload = config.workload;
    res.treatment = config.treatment;
    res.outcome = machine.sched().run(config.budget);
    res.valid = res.outcome == RunOutcome::Completed &&
                workload->validate(machine);
    res.compatible = res.valid;
    // A digest of an incomplete run would hash half-written state;
    // the chaos oracle judges those by outcome instead.
    if (res.outcome == RunOutcome::Completed)
        res.resultDigest = workload->resultDigest(machine);

    res.cycles = machine.elapsed();
    res.seconds = static_cast<double>(res.cycles) /
                  machine.config().cyclesPerSecond;
    res.hitmEvents = machine.cache().hitmEvents();
    res.pebsRecords = machine.perf().recordsEmitted();
    res.softFaults = machine.mmu().softFaults();
    res.memOps = machine.memOpCount();
    res.faultFires = machine.faults().totalFires();
    res.appBytesPeak = machine.allocator().allocStats().bytesPeak;

    // Tail latency: harvested even on timeout -- a run that wedged
    // after serving half its requests still measured those.
    if (const obs::Histogram *lat = workload->latencyHistogram()) {
        res.requests = lat->count();
        res.sojournP50 = lat->p50();
        res.sojournP99 = lat->p99();
        res.sojournP999 = lat->p999();
    }

    if (tmi) {
        res.repairActive = tmi->repairActive();
        res.repairStartCycles = tmi->repairStartCycles();
        res.t2pCycles = tmi->t2pCycles();
        res.commits = tmi->totalCommits();
        res.conflictBytes = tmi->totalConflictBytes();
        res.pagesProtected = tmi->protectedPageCount();
        res.overheadBytes = tmi->overheadBytes();
        res.fsEventsEstimated = tmi->detector().fsEventsEstimated();
        res.tsEventsEstimated = tmi->detector().tsEventsEstimated();
        res.ladderRung = tmiModeName(tmi->rung());
        res.t2pAborts = tmi->t2pAborts();
        res.unrepairs = tmi->unrepairs();
        res.watchdogFlushes = tmi->watchdogFires();
        res.cowFallbacks = tmi->cowFallbacks();
        res.ladderDrops = tmi->ladderDrops();
        res.ladderRecovers = tmi->ladderRecovers();
        res.invariantViolations = tmi->invariants().violations();
    } else if (sheriff) {
        res.repairActive = true;
        res.commits = sheriff->totalCommits();
        res.conflictBytes = sheriff->totalConflictBytes();
        res.overheadBytes = machine.internalBytes();
        res.ladderRung = sheriff->rungName();
        res.t2pAborts = sheriff->t2pAborts();
        res.unrepairs = sheriff->unrepairs();
        res.watchdogFlushes = sheriff->watchdogFires();
        res.cowFallbacks = sheriff->cowFallbacks();
        res.ladderDrops = sheriff->ladderDrops();
        res.invariantViolations = sheriff->invariants().violations();
    } else if (laser) {
        res.repairActive = laser->repairActive();
        res.fsEventsEstimated = laser->detector().fsEventsEstimated();
        res.tsEventsEstimated = laser->detector().tsEventsEstimated();
        res.ladderRung = laser->rungName();
        res.unrepairs = laser->unrepairs();
        res.ladderDrops = laser->ladderDrops();
    } else if (htm) {
        res.repairActive = htm->elisionActive();
        res.txnCommits = machine.txnCommitCount();
        res.txnAborts = machine.txnAbortCount();
        res.txnFallbackLocks = htm->fallbackLocks();
        res.commits = res.txnCommits; // commits/s column analogue
        res.ladderRung = htm->rungName();
        res.watchdogFlushes = htm->watchdogFlushes();
        res.ladderDrops = htm->ladderDrops();
        res.ladderRecovers = htm->ladderRecovers();
        res.invariantViolations = htm->probe().violations();
    }
    if (res.seconds > 0) {
        res.commitsPerSec =
            static_cast<double>(res.commits) / res.seconds;
    }

    // Observability harvest: the stats dump and the metrics registry
    // are two views over the same StatGroup tree, so one registration
    // pass serves both. Keyed on trace.enabled (the request), not
    // machine.trace() (the recorder): on TMI_TRACING=OFF builds the
    // recorder is compiled out but the stats-derived metrics -- fault
    // fires above all -- must still land.
    if (config.dumpStats || config.trace.enabled) {
        stats::StatGroup machine_group("machine");
        machine.regStats(machine_group);
        stats::StatGroup runtime_group("runtime");
        if (tmi)
            tmi->regStats(runtime_group);
        else if (sheriff)
            sheriff->regStats(runtime_group);
        else if (laser)
            laser->regStats(runtime_group);
        else if (htm)
            htm->regStats(runtime_group);

        if (config.dumpStats) {
            std::ostringstream os;
            machine_group.dump(os);
            runtime_group.dump(os);
            res.statsText = os.str();
        }

        res.metrics = std::make_shared<obs::MetricsRegistry>();
        res.metrics->importStats(machine_group, "machine");
        res.metrics->importStats(runtime_group, "runtime");

        if (const obs::Histogram *lat = workload->latencyHistogram()) {
            res.metrics
                ->histogram("workload.sojourn.cycles",
                            "request sojourn time, simulated cycles")
                .merge(*lat);
        }

        // Fault-fire accounting straight from the injector, never
        // from the trace: obs.event.fault.fire below only exists when
        // the recorder does, and chaos verdicts need these counts on
        // every build.
        res.metrics
            ->counter("fault.fires",
                      "fault-point fires (trace-independent)")
            .add(static_cast<double>(machine.faults().totalFires()));
        for (const std::string &point :
             machine.faults().armedPoints()) {
            res.metrics
                ->counter("fault.fires." + point,
                          "fires at this point")
                .add(static_cast<double>(
                    machine.faults().fires(point)));
        }
    }

    if (obs::TraceRecorder *rec = machine.trace()) {
        res.traceRecorded = rec->recorded();
        res.traceOverwritten = rec->overwritten();
        // Per-kind totals survive ring wraparound, so export them as
        // metrics even when the timeline itself lost its tail.
        for (obs::EventKind kind : obs::allEventKinds()) {
            res.metrics
                ->counter(std::string("obs.event.") +
                              obs::eventKindName(kind),
                          "events recorded (incl. overwritten)")
                .add(static_cast<double>(rec->count(kind)));
        }
        res.metrics->counter("obs.trace.recorded")
            .add(static_cast<double>(rec->recorded()));
        res.metrics->counter("obs.trace.overwritten")
            .add(static_cast<double>(rec->overwritten()));
        res.traceEvents = rec->drain();
    }
    if (finish)
        finish(machine, res);
    return res;
}

/**
 * The huron-static treatment: a two-phase offline repair.
 *
 * Phase 1 (skipped when a plan is supplied via planIn) runs the
 * workload on a plain pthreads-configured machine with the profiling
 * daemon attached, harvests the contended-line evidence into a
 * LayoutProfile, and plans the layout. Phase 2 replays the workload
 * on a fresh identical machine with the PlanApplier intercepting
 * allocation. The returned result is the replay's; the profiling
 * phase contributes only planProfileHitms and the plan itself.
 */
RunResult
runHuronStatic(const Config &full)
{
    const ExperimentConfig &config = full.run;
    staticrepair::LayoutPlan plan;
    std::uint64_t profileHitms = 0;

    if (!config.planIn.empty()) {
        std::string perr;
        if (!staticrepair::parsePlan(config.planIn, plan, perr))
            fatal("bad planIn: %s", perr.c_str());
    } else {
        Config pcfg = full;
        // The profiling phase exists to produce the plan; its own
        // stats/trace capture would only be discarded.
        pcfg.run.dumpStats = false;
        pcfg.run.trace = obs::TraceConfig{};
        staticrepair::ProfilerConfig prof_cfg;
        prof_cfg.detector.samplePeriod = config.perfPeriod;
        prof_cfg.detector.repairThreshold = config.repairThreshold;
        prof_cfg.detector.pageShift = config.pageShift;
        prof_cfg.analysisInterval = config.analysisInterval;
        std::unique_ptr<staticrepair::StaticProfiler> profiler;
        staticrepair::LayoutProfile profile;
        RunResult pres = runCell(
            pcfg,
            [&](Machine &m) {
                profiler =
                    std::make_unique<staticrepair::StaticProfiler>(
                        m, prof_cfg);
                profiler->attach();
            },
            [&](Machine &m, RunResult &) {
                (void)m;
                profile = profiler->harvest();
            });
        profileHitms = pres.hitmEvents;
        profiler.reset();
        if (pres.outcome != RunOutcome::Completed) {
            // The profiling run wedged: report it as the cell's
            // outcome rather than replaying from garbage evidence.
            pres.planProfileHitms = profileHitms;
            return pres;
        }
        plan = staticrepair::LayoutPlanner().plan(profile);
    }

    std::unique_ptr<staticrepair::PlanApplier> applier;
    RunResult res = runCell(
        full,
        [&](Machine &m) {
            applier = std::make_unique<staticrepair::PlanApplier>(
                m, plan);
            m.setAllocHook(applier.get());
        },
        [&](Machine &m, RunResult &r) {
            (void)m;
            r.planSites = plan.sites.size();
            r.planAppliedSites = applier->appliedSites();
            r.planPaddingBytes = applier->paddingBytes();
            r.planRedirectedSites = applier->redirectedSites();
            r.overheadBytes += applier->paddingBytes();
        });
    res.planProfileHitms = profileHitms;
    res.planText = staticrepair::writePlan(plan);
    return res;
}

} // namespace

RunResult
runExperiment(const Config &full)
{
    full.validateOrDie();
    if (full.run.treatment == Treatment::HuronStatic)
        return runHuronStatic(full);
    return runCell(full, nullptr, nullptr);
}

const char *
robustnessCsvHeader()
{
    return "workload,scenario,outcome,rung,slowdown,fires,"
           "t2p_aborts,unrepairs,watchdog,cow_fallbacks";
}

std::string
robustnessCsvRow(const RunResult &res, const std::string &scenario,
                 double slowdown)
{
    const char *outcome = res.compatible ? "ok"
                          : res.outcome == RunOutcome::Timeout
                              ? "HANG"
                          : res.outcome == RunOutcome::Deadlock
                              ? "DEADLOCK"
                              : "WRONG";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s,%s,%s,%s,%.4f,%llu,%llu,%llu,%llu,%llu",
                  res.workload.c_str(), scenario.c_str(), outcome,
                  res.ladderRung.c_str(), slowdown,
                  static_cast<unsigned long long>(res.faultFires),
                  static_cast<unsigned long long>(res.t2pAborts),
                  static_cast<unsigned long long>(res.unrepairs),
                  static_cast<unsigned long long>(res.watchdogFlushes),
                  static_cast<unsigned long long>(res.cowFallbacks));
    return buf;
}

double
speedup(const RunResult &baseline, const RunResult &treated)
{
    if (treated.cycles == 0)
        return 0.0;
    return static_cast<double>(baseline.cycles) /
           static_cast<double>(treated.cycles);
}

} // namespace tmi
