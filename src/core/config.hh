/**
 * @file
 * The unified experiment configuration: one aggregate that carries
 * everything a run needs, validated as a whole, built fluently.
 *
 * Config layers three structs:
 *
 *  - run: the per-cell scalars (workload, treatment, threads, ...)
 *    that the evaluation matrix sweeps over;
 *  - machine: a full MachineConfig *template* for the deep knobs
 *    (cache geometry, TLB, sync costs, PEBS internals);
 *  - tmi: a full TmiConfig template for the runtime's deep knobs
 *    (PTSB costs, robustness ladder, detector internals).
 *
 * Override rule (simple and always the same): runExperiment() starts
 * from the templates and then overlays every run.* scalar on top --
 * run.threads wins over machine.cores, run.perfPeriod over
 * machine.perf.period, run.repairThreshold over
 * tmi.detector.repairThreshold, run.trace over machine.trace, and so
 * on. The ExperimentBuilder keeps the two views consistent: its
 * template setters (machine(), detector(), runtime(), ...) mirror the
 * affected scalars back into run so a later scalar setter still wins
 * and build() round-trips.
 *
 * validate() aggregates every per-module validator into one list of
 * ConfigError {field, message} pairs instead of dying on the first
 * problem; validateOrDie() is the fail-fast wrapper the constructors
 * use.
 */

#ifndef TMI_CORE_CONFIG_HH
#define TMI_CORE_CONFIG_HH

#include <string>
#include <vector>

#include "core/experiment.hh"
#include "runtime/tmi_runtime.hh"

namespace tmi
{

/** The complete, validated description of one experiment run. */
struct Config
{
    /** Per-cell scalars; authoritative over the templates below. */
    ExperimentConfig run;
    /** Deep machine template (cache/TLB/sync/PEBS internals). */
    MachineConfig machine;
    /** Deep runtime template, used by the Tmi treatments. */
    TmiConfig tmi;

    bool operator==(const Config &) const = default;

    /** Every constraint violation across run, machine and tmi, with
     *  dotted field names ("run.threads", "machine.perf.period"). */
    std::vector<ConfigError> validate() const;

    /** Fail-fast wrapper: fatal() listing every error at once. */
    void validateOrDie() const;
};

/** Run one experiment from a full Config (the real engine; the
 *  ExperimentConfig overload forwards here with default templates). */
RunResult runExperiment(const Config &config);

/**
 * Fluent builder for Config. Chain setters, then build() (validated,
 * fatal on errors), check() (errors as data), or run() directly:
 *
 *   RunResult r = Experiment::builder()
 *                     .workload("histogramfs")
 *                     .treatment(Treatment::TmiProtect)
 *                     .threads(8)
 *                     .trace(true)
 *                     .run();
 */
class ExperimentBuilder
{
  public:
    ExperimentBuilder() = default;
    /** Start from an existing Config (round-trip / tweak-and-rerun). */
    explicit ExperimentBuilder(const Config &base) : _config(base) {}

    /** @name Run-level scalar setters */
    /// @{
    ExperimentBuilder &workload(const std::string &name);
    ExperimentBuilder &treatment(Treatment t);
    ExperimentBuilder &threads(unsigned n);
    ExperimentBuilder &scale(std::uint64_t s);
    ExperimentBuilder &pageShift(unsigned shift);
    ExperimentBuilder &allocator(AllocatorKind kind);
    /** Malloc-placement sensitivity axis (htm-elide / baselines). */
    ExperimentBuilder &placement(PlacementPolicy p);
    ExperimentBuilder &perfPeriod(std::uint64_t period);
    ExperimentBuilder &repairThreshold(double threshold);
    ExperimentBuilder &analysisInterval(Cycles interval);
    ExperimentBuilder &budget(Cycles cycles);
    ExperimentBuilder &seed(std::uint64_t s);
    ExperimentBuilder &dumpStats(bool on = true);
    /** Layout-plan text for huron-static replay (skips profiling). */
    ExperimentBuilder &planIn(const std::string &text);
    /** Append one workload knob (raw; validated at build/run). */
    ExperimentBuilder &param(const std::string &key,
                             const std::string &value);
    /** Arm one fault point (repeatable; appends). */
    ExperimentBuilder &fault(const std::string &point,
                             const FaultSpec &spec);
    ExperimentBuilder &faultSeed(std::uint64_t s);
    ExperimentBuilder &watchdog(int mode);
    ExperimentBuilder &watchdogTimeout(Cycles timeout);
    ExperimentBuilder &monitor(int mode);
    /// @}

    /** @name Template setters (deep knobs)
     *  Each mirrors the scalars it covers back into run so the
     *  overlay in runExperiment() is a no-op unless a later scalar
     *  setter deliberately overrides. */
    /// @{
    ExperimentBuilder &machine(const MachineConfig &mc);
    ExperimentBuilder &runtime(const TmiConfig &tc);
    ExperimentBuilder &detector(const DetectorConfig &dc);
    ExperimentBuilder &robustness(const RobustnessConfig &rc);
    ExperimentBuilder &trace(const obs::TraceConfig &tc);
    /** Shorthand: flip tracing on/off, keep the ring default. */
    ExperimentBuilder &trace(bool enabled);
    /// @}

    /** Validation errors for the current state (empty = buildable). */
    std::vector<ConfigError> check() const;

    /** The validated Config; fatal() listing every error if any. */
    Config build() const;

    /** build() + runExperiment() in one step. */
    RunResult run() const;

    /** Current (unvalidated) state; the tests use this to assert
     *  round-trips without going through fatal paths. */
    const Config &peek() const { return _config; }

  private:
    Config _config;
};

/** Entry point for the fluent API: Experiment::builder()....run(). */
class Experiment
{
  public:
    static ExperimentBuilder builder() { return ExperimentBuilder{}; }

    static ExperimentBuilder
    builder(const Config &base)
    {
        return ExperimentBuilder{base};
    }
};

} // namespace tmi

#endif // TMI_CORE_CONFIG_HH
