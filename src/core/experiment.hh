/**
 * @file
 * Experiment driver: runs one (workload x treatment) cell of the
 * paper's evaluation matrix and extracts every number the tables and
 * figures need.
 *
 * Treatments correspond to the bars in Figures 7 and 9:
 * pthreads / manual are uninstrumented baselines; tmi-alloc /
 * tmi-detect / tmi-protect are Tmi's three activation levels;
 * sheriff-detect / sheriff-protect and laser are the prior systems;
 * ptsb-everywhere and tmi-protect-no-ccc are the ablations of
 * sections 4.3 and 4.5.
 */

#ifndef TMI_CORE_EXPERIMENT_HH
#define TMI_CORE_EXPERIMENT_HH

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/machine.hh"
#include "obs/metrics.hh"

namespace tmi
{

/** Which runtime (if any) supervises the run. */
enum class Treatment
{
    Pthreads,        //!< plain execution, Lockless allocator
    Manual,          //!< source-level fix (padding/alignment)
    TmiAlloc,        //!< Tmi's process-shared allocator only
    TmiDetect,       //!< + perf monitoring and detection thread
    TmiProtect,      //!< full Tmi with online repair
    TmiProtectNoCcc, //!< PTSB everywhere, CCC off (Fig. 11/12)
    PtsbEverywhere,  //!< repair protects the whole heap (ablation)
    SheriffDetect,   //!< Sheriff detection tool
    SheriffProtect,  //!< Sheriff repair tool
    Laser,           //!< LASER detection + store-buffer repair
    HuronStatic,     //!< Huron-style offline profile -> layout replay
    HtmElide,        //!< speculative lock elision over the MESI sim
};

/** Name as used in reports. */
const char *treatmentName(Treatment t);

/** One-line description (CLI --list-treatments output). */
const char *treatmentDescription(Treatment t);

/** Every treatment, in declaration (= report) order. */
const std::vector<Treatment> &allTreatments();

/** Parse a report-style name ("tmi-protect"); null on no match. */
const Treatment *tryParseTreatment(const std::string &name);

/**
 * Malloc-placement policy: a sensitivity axis over where the
 * allocator puts small objects, orthogonal to the treatment. Under
 * htm-elide it moves the abort rate (objects packed onto shared lines
 * conflict; isolated ones commit); under pthreads it moves the HITM
 * count the same direction. Default leaves the treatment's own
 * allocator settings alone.
 */
enum class PlacementPolicy
{
    Default, //!< treatment's own allocator configuration
    Pack,    //!< glibc-like shared arena: dense 16B packing
    Arena,   //!< per-thread size-class arenas
    Isolate, //!< per-thread arenas + line-aligned small objects
};

/** Name as used in reports/CSV ("default", "pack", ...). */
const char *placementName(PlacementPolicy p);

/** Every placement policy, in declaration order. */
const std::vector<PlacementPolicy> &allPlacements();

/** Parse a placement name; null on no match. */
const PlacementPolicy *tryParsePlacement(const std::string &name);

/** One cell of the evaluation matrix. */
struct ExperimentConfig
{
    std::string workload;
    Treatment treatment = Treatment::Pthreads;
    unsigned threads = 4;
    std::uint64_t scale = 1;
    unsigned pageShift = smallPageShift;
    AllocatorKind allocator = AllocatorKind::Lockless;
    /** Malloc-placement sensitivity axis; Default = leave the
     *  treatment's allocator configuration alone. */
    PlacementPolicy placement = PlacementPolicy::Default;
    std::uint64_t perfPeriod = 100;
    /** Detector repair threshold (estimated FS events/sec/page). */
    double repairThreshold = 100000.0;
    /** Detector analysis cadence in simulated cycles. */
    Cycles analysisInterval = 2'000'000;
    /** Simulated-cycle budget; exceeding it reports Timeout. */
    Cycles budget = 400'000'000'000ULL;
    std::uint64_t seed = 42;
    /** Capture the full component statistics dump in the result. */
    bool dumpStats = false;

    /** Workload-specific knobs as raw key=value pairs, validated
     *  against the workload's ParamSchema (workloads/params.hh) by
     *  validateConfig() and resolved into WorkloadParams::extra at
     *  run start. Order is the order given; later duplicates win. */
    std::vector<std::pair<std::string, std::string>> params;

    /** Fault points to arm on the machine (robustness experiments;
     *  empty = no injection anywhere on the hot path). */
    std::vector<std::pair<std::string, FaultSpec>> faults;
    std::uint64_t faultSeed = 0xfa17u;
    /** PTSB livelock watchdog: -1 treatment default (off for the
     *  no-CCC/everywhere ablations, which exist to reproduce the
     *  paper's failure modes), 0 force off, 1 force on. */
    int watchdog = -1;
    /** Override RobustnessConfig::watchdogTimeout (0 = keep). */
    Cycles watchdogTimeout = 0;
    /** Post-repair effectiveness monitor: same -1/0/1 convention. */
    int monitor = -1;
    /** TEST-ONLY: reintroduce Sheriff's dissolve-ordering bug (see
     *  SheriffConfig::buggyDissolveOrder). Exists so chaos regression
     *  runs can replay the bug through the normal experiment path. */
    bool sheriffBuggyDissolve = false;

    /** huron-static: a pre-computed layout plan (text format). When
     *  non-empty the profiling phase is skipped and the replay runs
     *  under this plan; other treatments ignore it. */
    std::string planIn;

    /** Host-side cancellation token (not owned; null = none). When it
     *  becomes true the scheduler stops at the next fiber switch and
     *  the run reports RunOutcome::Timeout. The sweep driver uses
     *  this for per-job timeouts and sweep-wide cancellation. */
    const std::atomic<bool> *cancel = nullptr;

    /** Structured event tracing: enabled, the run's drained timeline
     *  and a unified metrics registry land in the RunResult. */
    obs::TraceConfig trace;

    bool operator==(const ExperimentConfig &) const = default;
};

/** Collect ExperimentConfig constraint violations under @p prefix. */
void validateConfig(const ExperimentConfig &config,
                    std::vector<ConfigError> &errors,
                    const std::string &prefix = "ExperimentConfig");

/** Everything measured from one run. */
struct RunResult
{
    std::string workload;
    Treatment treatment = Treatment::Pthreads;
    RunOutcome outcome = RunOutcome::Completed;
    bool valid = false;
    /** Completed with correct results. */
    bool compatible = false;
    /** Workload end-state digest (chaos oracle): the workload's
     *  resultDigest() over the shared committed view. Zero when the
     *  run did not complete or the workload defines no digest. */
    std::uint64_t resultDigest = 0;

    Cycles cycles = 0;   //!< simulated makespan
    double seconds = 0;  //!< cycles / cyclesPerSecond

    std::uint64_t hitmEvents = 0;   //!< true coherence HITM count
    std::uint64_t pebsRecords = 0;  //!< sampled records emitted
    double fsEventsEstimated = 0;   //!< detector estimate
    double tsEventsEstimated = 0;

    bool repairActive = false;
    Cycles repairStartCycles = 0;   //!< Table 3 "Unrepaired"
    Cycles t2pCycles = 0;           //!< Table 3 "T2P"
    std::uint64_t commits = 0;      //!< PTSB commits
    double commitsPerSec = 0;       //!< Table 3 "Commits/s"
    std::uint64_t pagesProtected = 0;
    /** Racy-merge bytes (nonzero = the PTSB raced; Lemma 3.1). */
    std::uint64_t conflictBytes = 0;

    std::uint64_t appBytesPeak = 0;       //!< application memory
    std::uint64_t overheadBytes = 0;      //!< runtime memory overhead
    std::uint64_t softFaults = 0;
    std::uint64_t memOps = 0;

    /** @name Robustness telemetry (Tmi, Sheriff and LASER; zero /
     *  empty for pthreads/manual) */
    /// @{
    /** Final degradation-ladder rung ("detect-and-repair" when
     *  nothing degraded; Sheriff reports "full-isolation" /
     *  "partial-isolation" / "dissolved"; empty for the
     *  uninstrumented baselines). */
    std::string ladderRung;
    std::uint64_t faultFires = 0;      //!< injected faults that fired
    std::uint64_t t2pAborts = 0;       //!< rolled-back conversions
    std::uint64_t unrepairs = 0;       //!< repair rollbacks
    std::uint64_t watchdogFlushes = 0; //!< livelock force-commits
    std::uint64_t cowFallbacks = 0;    //!< pages degraded to shared
    std::uint64_t ladderDrops = 0;     //!< rung transitions taken
    std::uint64_t ladderRecovers = 0;  //!< rungs climbed back up
    /** Ladder-transition invariant probe failures (see
     *  runtime/invariants.hh); nonzero means the runtime broke its
     *  own transition contract even if results happen to be right. */
    std::uint64_t invariantViolations = 0;
    /// @}

    /** @name Transactional telemetry (htm-elide; zero otherwise) */
    /// @{
    std::uint64_t txnCommits = 0;       //!< speculative commits
    std::uint64_t txnAborts = 0;        //!< aborts, all causes
    std::uint64_t txnFallbackLocks = 0; //!< entries on the real lock
    /// @}

    /** @name Tail latency (workloads with a latencyHistogram();
     *  zero for the batch kernels) */
    /// @{
    std::uint64_t requests = 0; //!< completed requests recorded
    double sojournP50 = 0;      //!< median sojourn, simulated cycles
    double sojournP99 = 0;
    double sojournP999 = 0;
    /// @}

    /** @name Static repair (huron-static; zero/empty otherwise).
     *  Residual false sharing after the repair is hitmEvents -- the
     *  replay's coherence HITM count -- against planProfileHitms
     *  from the unrepaired profiling phase. */
    /// @{
    std::uint64_t planSites = 0;          //!< directives in the plan
    std::uint64_t planAppliedSites = 0;   //!< allocations placed
    std::uint64_t planPaddingBytes = 0;   //!< extra bytes of layout
    std::uint64_t planRedirectedSites = 0; //!< with redirection tables
    std::uint64_t planProfileHitms = 0;   //!< profiling-phase HITMs
    /** The plan the replay ran under (text format; --plan-out). */
    std::string planText;
    /// @}

    /** Full stats dump (only when ExperimentConfig::dumpStats). */
    std::string statsText;

    /** @name Observability capture (only when trace.enabled) */
    /// @{
    /** Time-ordered timeline drained from the recorder at run end. */
    std::vector<obs::TraceEvent> traceEvents;
    /** Lifetime events accepted by the recorder. */
    std::uint64_t traceRecorded = 0;
    /** Events lost to per-thread ring wraparound. */
    std::uint64_t traceOverwritten = 0;
    /// @}

    /** Unified metrics registry built from every component's stats
     *  (populated when dumpStats or tracing is on; shared so
     *  RunResult stays copyable). */
    std::shared_ptr<obs::MetricsRegistry> metrics;
};

/** Run one experiment cell. */
RunResult runExperiment(const ExperimentConfig &config);

/** Speedup of @p treated relative to @p baseline (by sim time). */
double speedup(const RunResult &baseline, const RunResult &treated);

/** @name Robustness-sweep CSV format
 *  The column set the robustness figures consume; shared between the
 *  robustness_degradation bench and experiment_cli --csv-out so both
 *  produce byte-identical rows. */
/// @{
/** "workload,scenario,outcome,rung,slowdown,..." header line. */
const char *robustnessCsvHeader();

/** One run as a robustness-sweep row. @p scenario labels the fault
 *  configuration ("none", "clone-fail", ...); @p slowdown is cycles
 *  relative to the fault-free run (1.0 when there is no baseline). */
std::string robustnessCsvRow(const RunResult &res,
                             const std::string &scenario,
                             double slowdown);
/// @}

} // namespace tmi

#endif // TMI_CORE_EXPERIMENT_HH
