/**
 * @file
 * Code-centric consistency (paper section 3.4).
 *
 * Code-centric consistency identifies the points where a program's
 * effective memory model changes (regular C/C++ <-> atomics <->
 * inline assembly) and lets a runtime adapt. This engine keeps a
 * per-thread region stack fed by the instrumentation callbacks and
 * answers the two questions Tmi needs:
 *
 *  1. may this thread's writes still go through its PTSB right now?
 *  2. does entering this region require flushing the PTSB first?
 *
 * It also encodes the full Table-2 interaction matrix so tests and
 * the table2 bench can check the policy against the paper.
 */

#ifndef TMI_CONSISTENCY_CCC_HH
#define TMI_CONSISTENCY_CCC_HH

#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "isa/regions.hh"

namespace tmi
{

/** Semantics of concurrent conflicting accesses between two regions. */
enum class InteractionSemantics : std::uint8_t
{
    Undefined, //!< any behaviour permitted (C/C++ data race)
    Atomic,    //!< atomicity guaranteed by the C/C++ memory model
    Unknown,   //!< unaddressed by existing specifications
    Tso,       //!< hardware TSO semantics
};

/** Table 2: semantics of a conflict between regions @p a and @p b. */
InteractionSemantics interactionSemantics(RegionKind a, RegionKind b);

/** Table 2 case number (1-5) for a conflict between @p a and @p b. */
int interactionCase(RegionKind a, RegionKind b);

/**
 * Table 2 shading: whether Tmi permits PTSB use for a conflict
 * between regions @p a and @p b. Only regular/regular and
 * regular/atomic conflicts (undefined semantics) permit it.
 */
bool ptsbPermitted(RegionKind a, RegionKind b);

/** Per-thread region tracking and PTSB policy decisions. */
class CodeCentricConsistency
{
  public:
    /**
     * @param enabled when false the engine still tracks regions but
     *        reports that no flush/bypass is ever needed -- used to
     *        reproduce the Figure 11/12 failure modes.
     */
    explicit CodeCentricConsistency(bool enabled = true)
        : _enabled(enabled)
    {}

    bool enabled() const { return _enabled; }

    /** Register a thread (starts in a Regular region). */
    void threadStart(ThreadId tid);

    /**
     * Instrumentation callback: enter a region of kind @p kind.
     * @retval true if the caller must flush this thread's PTSB
     *         before proceeding.
     */
    bool regionEnter(ThreadId tid, RegionKind kind);

    /** Instrumentation callback: leave the innermost region. */
    void regionExit(ThreadId tid);

    /** Innermost region the thread is executing in. */
    RegionKind currentRegion(ThreadId tid) const;

    /**
     * Must this thread's accesses bypass its private COW pages and
     * operate on shared memory right now?
     *
     * True inside atomic and asm regions (cases 2, 4, 5 and the
     * conservative case 3), when the engine is enabled.
     */
    bool mustBypassPrivate(ThreadId tid) const;

    /**
     * Policy for a single atomic operation of order @p order outside
     * an explicit region: relaxed atomics need no flush (they only
     * require atomicity, provided they run on shared pages); stronger
     * orders do.
     */
    bool atomicOpNeedsFlush(MemOrder order) const;

    /** Region-transition callbacks observed (diagnostics). */
    std::uint64_t transitions() const
    {
        return static_cast<std::uint64_t>(_statTransitions.value());
    }

    /** Flushes the policy demanded. */
    std::uint64_t flushesRequired() const
    {
        return static_cast<std::uint64_t>(_statFlushes.value());
    }

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    struct ThreadState
    {
        std::vector<RegionKind> stack;
    };

    ThreadState &state(ThreadId tid);

    bool _enabled;
    std::unordered_map<ThreadId, ThreadState> _threads;

    stats::Scalar _statTransitions;
    stats::Scalar _statFlushes;
};

} // namespace tmi

#endif // TMI_CONSISTENCY_CCC_HH
