#include "ccc.hh"

namespace tmi
{

InteractionSemantics
interactionSemantics(RegionKind a, RegionKind b)
{
    // Normalize: the matrix is symmetric.
    if (static_cast<int>(a) > static_cast<int>(b))
        std::swap(a, b);

    if (a == RegionKind::Regular) {
        if (b == RegionKind::Regular || b == RegionKind::Atomic)
            return InteractionSemantics::Undefined; // cases 1
        return InteractionSemantics::Unknown;       // case 3
    }
    if (a == RegionKind::Atomic) {
        if (b == RegionKind::Atomic)
            return InteractionSemantics::Atomic;    // case 2
        return InteractionSemantics::Unknown;       // case 4
    }
    return InteractionSemantics::Tso;               // case 5
}

int
interactionCase(RegionKind a, RegionKind b)
{
    if (static_cast<int>(a) > static_cast<int>(b))
        std::swap(a, b);
    if (a == RegionKind::Regular) {
        if (b == RegionKind::Regular || b == RegionKind::Atomic)
            return 1;
        return 3;
    }
    if (a == RegionKind::Atomic)
        return b == RegionKind::Atomic ? 2 : 4;
    return 5;
}

bool
ptsbPermitted(RegionKind a, RegionKind b)
{
    // Only the undefined-semantics cells of Table 2 are shaded: a
    // data race in C/C++ permits any behaviour, including AMBSA
    // violations. Every cell involving asm, and atomic/atomic,
    // forbids the PTSB.
    return interactionSemantics(a, b) == InteractionSemantics::Undefined;
}

void
CodeCentricConsistency::threadStart(ThreadId tid)
{
    _threads.emplace(tid, ThreadState{});
}

CodeCentricConsistency::ThreadState &
CodeCentricConsistency::state(ThreadId tid)
{
    // Auto-register: system threads and pre-main code start in a
    // Regular region like everything else.
    return _threads[tid];
}

bool
CodeCentricConsistency::regionEnter(ThreadId tid, RegionKind kind)
{
    ThreadState &st = state(tid);
    ++_statTransitions;
    bool was_regular = st.stack.empty();
    st.stack.push_back(kind);
    if (!_enabled)
        return false;
    // Flush when crossing from regular code into an atomic or asm
    // region (cases 2-5); nested non-regular regions are already
    // operating on shared memory.
    bool flush = was_regular && kind != RegionKind::Regular;
    if (flush)
        ++_statFlushes;
    return flush;
}

void
CodeCentricConsistency::regionExit(ThreadId tid)
{
    ThreadState &st = state(tid);
    TMI_ASSERT(!st.stack.empty(), "region exit without matching enter");
    ++_statTransitions;
    st.stack.pop_back();
}

RegionKind
CodeCentricConsistency::currentRegion(ThreadId tid) const
{
    auto it = _threads.find(tid);
    if (it == _threads.end() || it->second.stack.empty())
        return RegionKind::Regular;
    return it->second.stack.back();
}

bool
CodeCentricConsistency::mustBypassPrivate(ThreadId tid) const
{
    if (!_enabled)
        return false;
    return currentRegion(tid) != RegionKind::Regular;
}

bool
CodeCentricConsistency::atomicOpNeedsFlush(MemOrder order) const
{
    if (!_enabled)
        return false;
    // relaxed requires atomicity only; operating directly on the
    // shared page satisfies it with no flush (section 3.4.1 case 2).
    return order != MemOrder::Relaxed;
}

void
CodeCentricConsistency::regStats(stats::StatGroup &group)
{
    group.addScalar("regionTransitions", &_statTransitions,
                    "region enter/exit callbacks observed");
    group.addScalar("flushesRequired", &_statFlushes,
                    "region entries that required a PTSB flush");
}

} // namespace tmi
