/**
 * @file
 * The false sharing detector (paper section 3.1).
 *
 * The per-application detection thread drains PEBS records, filters
 * them against the address map, disassembles each record's PC to
 * recover load/store and access width, and classifies HITM traffic
 * per cache line as read-write false sharing, true sharing, or
 * not-yet-classifiable. Because sampling with period n hides n-1 of
 * every n events, each record is scaled back to n estimated events.
 * Once a line's estimated false-sharing rate crosses the repair
 * threshold, its page is nominated for targeted repair.
 */

#ifndef TMI_DETECT_DETECTOR_HH
#define TMI_DETECT_DETECTOR_HH

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/config_error.hh"
#include "common/stats.hh"
#include "detect/address_map.hh"
#include "isa/instructions.hh"
#include "perf/pebs.hh"

namespace tmi
{

/** Detector tuning. */
struct DetectorConfig
{
    /** Sampling period the perf session uses (for n/r scaling). */
    std::uint64_t samplePeriod = 100;
    /** Simulated core frequency, for events-per-second estimates. */
    double cyclesPerSecond = 3.4e9;
    /**
     * Estimated false-sharing events/second on one page above which
     * repair triggers. The paper repairs structures producing over
     * 100,000 HITM events per second.
     */
    double repairThreshold = 100000.0;
    /** Distinct access signatures remembered per line. */
    unsigned maxSigsPerLine = 16;
    /** Page shift used to aggregate lines to pages. */
    unsigned pageShift = smallPageShift;
    /** Analysis cost charged to the detection thread, per line. */
    Cycles analyzeCostPerLine = 120;
    /** Fixed analysis cost per invocation. */
    Cycles analyzeCostBase = 5000;
    /** Cost to classify one drained record. */
    Cycles classifyCostPerRecord = 160;

    bool operator==(const DetectorConfig &) const = default;
};

/** Collect DetectorConfig constraint violations under @p prefix. */
void validateConfig(const DetectorConfig &config,
                    std::vector<ConfigError> &errors,
                    const std::string &prefix = "DetectorConfig");

/** One access signature in a line report. */
struct ReportedAccess
{
    ThreadId tid;
    unsigned offset; //!< within the 64-byte line
    unsigned width;
    bool isWrite;
    /** Times this exact signature was sampled. Downstream consumers
     *  (the static-repair planner) use this to tell hot program
     *  accesses from PEBS address-noise strays. */
    std::uint64_t samples = 1;
};

/** Diagnostic summary of one contended cache line. */
struct LineReport
{
    Addr lineAddr = 0;      //!< byte address of the line
    double fsEvents = 0;    //!< lifetime estimated FS events
    double tsEvents = 0;    //!< lifetime estimated TS events
    std::vector<ReportedAccess> accesses;
};

/** Result of one periodic analysis pass. */
struct AnalysisResult
{
    /** Pages whose false-sharing rate crossed the threshold. */
    std::vector<VPage> pagesToRepair;
    /** Estimated false-sharing events/sec across all lines. */
    double fsEventsPerSec = 0;
    /** Estimated true-sharing events/sec across all lines. */
    double tsEventsPerSec = 0;
    /** Cost to charge the detection thread. */
    Cycles cost = 0;
};

/** Per-application false sharing detector. */
class Detector
{
  public:
    Detector(const InstructionTable &instrs, const AddressMap &map,
             const DetectorConfig &config = {});

    const DetectorConfig &config() const { return _config; }

    /**
     * Classify one drained PEBS record.
     * @return the classification cost to charge the detection thread.
     */
    Cycles consume(const PebsRecord &rec);

    /**
     * Instrumentation feed (Predator mode): record an access
     * observed by compiler instrumentation rather than a HITM
     * sample. Populates the per-line signature tables -- including
     * for lines with no coherence contention at all, which is what
     * makes prediction at larger line sizes possible -- without
     * contributing to HITM event estimates.
     */
    void consumeAccess(ThreadId tid, Addr vaddr, Addr pc);

    /**
     * Periodic analysis over the events observed since the previous
     * call (the once-per-interval scan of section 3.1).
     *
     * @param window_cycles simulated cycles the window covered.
     */
    AnalysisResult analyze(Cycles window_cycles);

    /** Lifetime estimated false-sharing events (period-scaled). */
    double fsEventsEstimated() const { return _statFsEvents.value(); }

    /** Lifetime estimated true-sharing events (period-scaled). */
    double tsEventsEstimated() const { return _statTsEvents.value(); }

    /** Records accepted (post address-map filter). */
    std::uint64_t recordsClassified() const
    {
        return static_cast<std::uint64_t>(_statRecords.value());
    }

    /** Records rejected by the address-map filter. */
    std::uint64_t recordsFiltered() const
    {
        return static_cast<std::uint64_t>(_statFiltered.value());
    }

    /**
     * Approximate bytes of detector metadata (line table, signatures,
     * disassembly info) for the Figure 8 memory accounting.
     */
    std::uint64_t metadataBytes() const;

    /** Number of distinct contended lines tracked. */
    std::size_t trackedLines() const { return _lines.size(); }

    /**
     * The @p n hottest lines by lifetime estimated false-sharing
     * events, with the distinct per-thread access signatures seen on
     * each -- the report a programmer would fix the bug from.
     */
    std::vector<LineReport> topContendedLines(std::size_t n) const;

    /**
     * Predator-style prediction (Liu et al., PPoPP 2014, cited in
     * section 5): which line-sized blocks would *become* false
     * shared on a machine with larger cache lines of
     * 2^@p line_shift bytes? A block is predicted when distinct
     * threads touch disjoint byte ranges that fall in the same
     * bigger line but in different current lines (so today's
     * hardware shows no contention there yet).
     *
     * @return base addresses of the predicted larger lines.
     */
    std::vector<Addr> predictFalseSharing(unsigned line_shift) const;

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    /** One distinct (thread, offset, width, kind) access pattern. */
    struct AccessSig
    {
        ThreadId tid;
        std::uint8_t offset; //!< within the 64-byte line
        std::uint8_t width;
        bool isWrite;
        std::uint32_t samples = 1; //!< times sampled
    };

    struct LineStats
    {
        std::vector<AccessSig> sigs;
        double fsEventsWindow = 0; //!< scaled events, current window
        double tsEventsWindow = 0;
        double fsEventsTotal = 0;
        double tsEventsTotal = 0;
    };

    enum class Verdict
    {
        FalseSharing,
        TrueSharing,
        Unknown,
    };

    Verdict classify(LineStats &line, const AccessSig &sig) const;

    const InstructionTable &_instrs;
    const AddressMap &_map;
    DetectorConfig _config;

    std::unordered_map<Addr, LineStats> _lines; //!< keyed by line number

    stats::Scalar _statRecords;
    stats::Scalar _statFiltered;
    stats::Scalar _statFsEvents;
    stats::Scalar _statTsEvents;
    stats::Scalar _statAnalyses;
    stats::Scalar _statRepairsNominated;
};

} // namespace tmi

#endif // TMI_DETECT_DETECTOR_HH
