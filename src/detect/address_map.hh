/**
 * @file
 * Model of the /proc/pid/maps address map (paper section 3.1).
 *
 * At startup Tmi's detection thread reads the address map to restrict
 * detection and repair to the application's heap and globals,
 * filtering out the stack and system libraries. Components register
 * their simulated ranges here and the detector consults it per
 * record.
 */

#ifndef TMI_DETECT_ADDRESS_MAP_HH
#define TMI_DETECT_ADDRESS_MAP_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace tmi
{

/** What a mapped range contains. */
enum class RangeKind : std::uint8_t
{
    AppHeap,    //!< application heap (detection allowed)
    AppGlobals, //!< application globals (detection allowed)
    Stack,      //!< thread stacks (filtered)
    SystemLib,  //!< system libraries (filtered)
};

/** A simple sorted-range address map. */
class AddressMap
{
  public:
    /** Register [base, base+size) as @p kind. */
    void
    add(Addr base, Addr size, RangeKind kind, std::string name)
    {
        _ranges.push_back({base, base + size, kind, std::move(name)});
    }

    /** Kind of the range containing @p addr; SystemLib if unmapped. */
    RangeKind
    classify(Addr addr) const
    {
        for (const auto &r : _ranges) {
            if (addr >= r.begin && addr < r.end)
                return r.kind;
        }
        return RangeKind::SystemLib;
    }

    /** True if the detector should consider @p addr at all. */
    bool
    eligible(Addr addr) const
    {
        RangeKind k = classify(addr);
        return k == RangeKind::AppHeap || k == RangeKind::AppGlobals;
    }

    /** Number of registered ranges. */
    std::size_t size() const { return _ranges.size(); }

  private:
    struct Range
    {
        Addr begin;
        Addr end;
        RangeKind kind;
        std::string name;
    };

    std::vector<Range> _ranges;
};

} // namespace tmi

#endif // TMI_DETECT_ADDRESS_MAP_HH
