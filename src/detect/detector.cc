#include "detector.hh"

#include <algorithm>

namespace tmi
{

void
validateConfig(const DetectorConfig &config,
               std::vector<ConfigError> &errors,
               const std::string &prefix)
{
    if (config.samplePeriod < 1) {
        errors.push_back(
            {prefix + ".samplePeriod",
             "must be >= 1: the n/r period-scaling correction would "
             "multiply every record by zero and no page could ever "
             "cross the repair threshold"});
    }
    if (config.cyclesPerSecond <= 0) {
        errors.push_back({prefix + ".cyclesPerSecond",
                          "must be positive: rate estimates would "
                          "divide by zero"});
    }
    if (config.repairThreshold <= 0) {
        errors.push_back(
            {prefix + ".repairThreshold",
             "must be positive: a zero threshold nominates every "
             "sampled page for repair on the first analysis pass"});
    }
    if (config.maxSigsPerLine == 0) {
        errors.push_back({prefix + ".maxSigsPerLine",
                          "must be >= 1: with no remembered "
                          "signatures nothing can ever be classified"});
    }
}

Detector::Detector(const InstructionTable &instrs, const AddressMap &map,
                   const DetectorConfig &config)
    : _instrs(instrs), _map(map), _config(config)
{
    std::vector<ConfigError> errors;
    validateConfig(config, errors);
    fatalIfConfigErrors(errors);
}

Detector::Verdict
Detector::classify(LineStats &line, const AccessSig &sig) const
{
    // Compare the incoming access against remembered signatures from
    // *other* threads. Disjoint byte ranges are false sharing;
    // overlapping ranges are true sharing. Load/load pairs count
    // too: a HITM means the line was in Modified state in a remote
    // private cache, so the line is write-contended by definition --
    // the sampled loads just reveal which bytes each thread touches.
    // (Stores under-sample badly here: a store that follows the
    // thread's own load of the line upgrades S->M without missing,
    // so it never triggers PEBS.)
    bool saw_fs = false;
    bool saw_ts = false;
    unsigned new_lo = sig.offset;
    unsigned new_hi = sig.offset + sig.width;
    for (const auto &other : line.sigs) {
        if (other.tid == sig.tid)
            continue;
        unsigned lo = other.offset;
        unsigned hi = other.offset + other.width;
        bool overlap = new_lo < hi && lo < new_hi;
        if (overlap)
            saw_ts = true;
        else
            saw_fs = true;
    }
    // True sharing dominates: if any conflicting access overlaps,
    // repairing the line would not help.
    if (saw_ts)
        return Verdict::TrueSharing;
    if (saw_fs)
        return Verdict::FalseSharing;
    return Verdict::Unknown;
}

Cycles
Detector::consume(const PebsRecord &rec)
{
    if (!_map.eligible(rec.vaddr)) {
        ++_statFiltered;
        return 0;
    }
    if (!_instrs.contains(rec.pc)) {
        // PC outside the analyzed binary (e.g. an imprecise sample).
        ++_statFiltered;
        return 0;
    }
    ++_statRecords;

    const InstrInfo &info = _instrs.lookup(rec.pc);
    AccessSig sig;
    sig.tid = rec.tid;
    sig.offset = static_cast<std::uint8_t>(lineOffset(rec.vaddr));
    sig.width = static_cast<std::uint8_t>(info.width);
    sig.isWrite = info.kind == MemKind::Store;

    LineStats &line = _lines[lineNumber(rec.vaddr)];
    Verdict verdict = classify(line, sig);

    // Remember this signature if it is new and there is room; count
    // repeats so consumers can separate hot accesses from strays.
    bool known = false;
    for (auto &other : line.sigs) {
        if (other.tid == sig.tid && other.offset == sig.offset &&
            other.width == sig.width && other.isWrite == sig.isWrite) {
            ++other.samples;
            known = true;
            break;
        }
    }
    if (!known && line.sigs.size() < _config.maxSigsPerLine)
        line.sigs.push_back(sig);

    // With period n, each record stands for about n real events
    // (section 3.1's under-reporting correction).
    double events = static_cast<double>(_config.samplePeriod);
    switch (verdict) {
      case Verdict::FalseSharing:
        line.fsEventsWindow += events;
        line.fsEventsTotal += events;
        _statFsEvents += events;
        break;
      case Verdict::TrueSharing:
        line.tsEventsWindow += events;
        line.tsEventsTotal += events;
        _statTsEvents += events;
        break;
      case Verdict::Unknown:
        break;
    }
    return _config.classifyCostPerRecord;
}

AnalysisResult
Detector::analyze(Cycles window_cycles)
{
    AnalysisResult res;
    ++_statAnalyses;
    res.cost = _config.analyzeCostBase +
               _config.analyzeCostPerLine *
                   static_cast<Cycles>(_lines.size());
    if (window_cycles == 0)
        return res;

    double window_sec =
        static_cast<double>(window_cycles) / _config.cyclesPerSecond;

    std::unordered_map<VPage, double> page_rate;
    double fs_total = 0;
    double ts_total = 0;
    for (auto &[line_no, line] : _lines) {
        fs_total += line.fsEventsWindow;
        ts_total += line.tsEventsWindow;
        if (line.fsEventsWindow > 0) {
            Addr byte_addr = line_no << lineShift;
            VPage vpage = byte_addr >> _config.pageShift;
            page_rate[vpage] += line.fsEventsWindow / window_sec;
        }
        line.fsEventsWindow = 0;
        line.tsEventsWindow = 0;
    }

    res.fsEventsPerSec = fs_total / window_sec;
    res.tsEventsPerSec = ts_total / window_sec;
    for (const auto &[vpage, rate] : page_rate) {
        if (rate >= _config.repairThreshold) {
            res.pagesToRepair.push_back(vpage);
            ++_statRepairsNominated;
        }
    }
    return res;
}

void
Detector::consumeAccess(ThreadId tid, Addr vaddr, Addr pc)
{
    if (!_map.eligible(vaddr) || !_instrs.contains(pc))
        return;
    const InstrInfo &info = _instrs.lookup(pc);
    AccessSig sig;
    sig.tid = tid;
    sig.offset = static_cast<std::uint8_t>(lineOffset(vaddr));
    sig.width = static_cast<std::uint8_t>(info.width);
    sig.isWrite = info.kind == MemKind::Store;

    LineStats &line = _lines[lineNumber(vaddr)];
    for (auto &other : line.sigs) {
        if (other.tid == sig.tid && other.offset == sig.offset &&
            other.width == sig.width && other.isWrite == sig.isWrite) {
            ++other.samples;
            return;
        }
    }
    if (line.sigs.size() < _config.maxSigsPerLine)
        line.sigs.push_back(sig);
}

std::vector<Addr>
Detector::predictFalseSharing(unsigned line_shift) const
{
    TMI_ASSERT(line_shift > lineShift && line_shift <= 16);
    // Group tracked 64-byte lines into the larger blocks and look
    // for cross-thread conflicts that only exist *across* current
    // line boundaries: invisible to today's hardware, false sharing
    // on a machine with bigger lines.
    struct BlockAccess
    {
        ThreadId tid;
        std::uint64_t lo; //!< byte offset within the big block
        std::uint64_t hi;
        bool isWrite;
        Addr lineNo; //!< current 64-byte line it came from
    };
    std::unordered_map<Addr, std::vector<BlockAccess>> blocks;
    for (const auto &[line_no, line] : _lines) {
        Addr byte_addr = line_no << lineShift;
        Addr block = byte_addr >> line_shift;
        std::uint64_t base =
            byte_addr & ((Addr{1} << line_shift) - 1);
        for (const auto &sig : line.sigs) {
            blocks[block].push_back({sig.tid, base + sig.offset,
                                     base + sig.offset + sig.width,
                                     sig.isWrite, line_no});
        }
    }

    std::vector<Addr> predicted;
    for (const auto &[block, accs] : blocks) {
        bool new_conflict = false;
        bool existing_conflict = false;
        for (std::size_t i = 0;
             i < accs.size() && !existing_conflict; ++i) {
            for (std::size_t j = i + 1; j < accs.size(); ++j) {
                const BlockAccess &a = accs[i];
                const BlockAccess &b = accs[j];
                if (a.tid == b.tid || (!a.isWrite && !b.isWrite))
                    continue;
                bool overlap = a.lo < b.hi && b.lo < a.hi;
                if (overlap)
                    continue; // true sharing at any line size
                if (a.lineNo == b.lineNo) {
                    // Conflicts already within one current line:
                    // this is today's false sharing, not new.
                    existing_conflict = true;
                    break;
                }
                new_conflict = true;
            }
        }
        if (new_conflict && !existing_conflict)
            predicted.push_back(block << line_shift);
    }
    std::sort(predicted.begin(), predicted.end());
    return predicted;
}

std::vector<LineReport>
Detector::topContendedLines(std::size_t n) const
{
    std::vector<LineReport> reports;
    reports.reserve(_lines.size());
    for (const auto &[line_no, line] : _lines) {
        LineReport rep;
        rep.lineAddr = line_no << lineShift;
        rep.fsEvents = line.fsEventsTotal;
        rep.tsEvents = line.tsEventsTotal;
        for (const auto &sig : line.sigs) {
            rep.accesses.push_back({sig.tid, sig.offset, sig.width,
                                    sig.isWrite, sig.samples});
        }
        reports.push_back(std::move(rep));
    }
    std::sort(reports.begin(), reports.end(),
              [](const LineReport &a, const LineReport &b) {
                  if (a.fsEvents != b.fsEvents)
                      return a.fsEvents > b.fsEvents;
                  return a.tsEvents > b.tsEvents;
              });
    if (reports.size() > n)
        reports.resize(n);
    return reports;
}

std::uint64_t
Detector::metadataBytes() const
{
    // Line table buckets + signature vectors + static disassembly
    // info. Constants approximate the C++ structures' real sizes.
    std::uint64_t line_bytes = 0;
    for (const auto &[line_no, line] : _lines) {
        (void)line_no;
        line_bytes += 96 + line.sigs.capacity() * sizeof(AccessSig);
    }
    return line_bytes + _instrs.metadataBytes();
}

void
Detector::regStats(stats::StatGroup &group)
{
    group.addScalar("recordsClassified", &_statRecords,
                    "PEBS records accepted for classification");
    group.addScalar("recordsFiltered", &_statFiltered,
                    "records dropped by the address-map filter");
    group.addScalar("fsEventsEstimated", &_statFsEvents,
                    "estimated false-sharing HITM events");
    group.addScalar("tsEventsEstimated", &_statTsEvents,
                    "estimated true-sharing HITM events");
    group.addScalar("analyses", &_statAnalyses,
                    "periodic analysis passes");
    group.addScalar("repairsNominated", &_statRepairsNominated,
                    "pages nominated for repair");
}

} // namespace tmi
