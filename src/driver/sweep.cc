#include "sweep.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "workloads/workload.hh"

namespace tmi::driver
{

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok:
        return "ok";
      case JobStatus::Failed:
        return "failed";
      case JobStatus::TimedOut:
        return "timeout";
      case JobStatus::Cancelled:
        return "cancelled";
      case JobStatus::Poisoned:
        return "poisoned";
    }
    return "?";
}

std::string
Job::scenario() const
{
    if (faultPoint.empty() || faultRate <= 0.0)
        return "none";
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s@%.2f", faultPoint.c_str(),
                  faultRate);
    return buf;
}

namespace
{

/** The effective value list for an axis: the spec's, or the base
 *  config's single value when the axis is not swept. */
template <typename T>
std::vector<T>
axisOr(const std::vector<T> &axis, T fallback)
{
    if (!axis.empty())
        return axis;
    return {fallback};
}

} // namespace

std::uint64_t
SweepSpec::matrixSize() const
{
    if (workloads.empty())
        return 0;
    std::uint64_t n = workloads.size();
    n *= treatments.empty() ? 1 : treatments.size();
    n *= placements.empty() ? 1 : placements.size();
    n *= scales.empty() ? 1 : scales.size();
    n *= periods.empty() ? 1 : periods.size();
    n *= faultPoints.empty() ? 1 : faultPoints.size();
    n *= faultRates.empty() ? 1 : faultRates.size();
    n *= seeds.empty() ? 1 : seeds.size();
    return n;
}

std::vector<ConfigError>
SweepSpec::validate() const
{
    std::vector<ConfigError> errors;
    if (workloads.empty()) {
        errors.push_back({"SweepSpec.workloads",
                          "must name at least one workload"});
    }
    for (const std::string &w : workloads) {
        if (!tryFindWorkload(w)) {
            errors.push_back({"SweepSpec.workloads",
                              "unknown workload '" + w + "'"});
        }
    }
    for (std::uint64_t s : scales) {
        if (s == 0)
            errors.push_back({"SweepSpec.scales", "must be >= 1"});
    }
    for (std::uint64_t p : periods) {
        if (p == 0)
            errors.push_back({"SweepSpec.periods", "must be >= 1"});
    }
    for (const std::string &p : faultPoints) {
        if (p.empty()) {
            errors.push_back({"SweepSpec.faultPoints",
                              "fault points need non-empty names"});
        }
    }
    for (double r : faultRates) {
        if (r < 0.0 || r > 1.0) {
            errors.push_back({"SweepSpec.faultRates",
                              "probabilities must be in [0, 1]"});
        }
    }
    if (!faultRates.empty() && faultPoints.empty()) {
        bool any_nonzero = false;
        for (double r : faultRates)
            any_nonzero = any_nonzero || r > 0.0;
        if (any_nonzero) {
            errors.push_back({"SweepSpec.faultRates",
                              "nonzero rates need fault_points to "
                              "arm"});
        }
    }
    // Per-cell constraints that do not depend on the axes are checked
    // once on the base config (with a workload patched in so a blank
    // base does not double-report).
    Config probe = base;
    if (!workloads.empty())
        probe.run.workload = workloads.front();
    if (!treatments.empty())
        probe.run.treatment = treatments.front();
    if (!placements.empty())
        probe.run.placement = placements.front();
    if (!scales.empty())
        probe.run.scale = scales.front();
    if (!periods.empty())
        probe.run.perfPeriod = periods.front();
    for (ConfigError &e : probe.validate())
        errors.push_back(std::move(e));
    return errors;
}

std::vector<Job>
SweepSpec::expand() const
{
    const auto wls = workloads;
    const auto trs = axisOr(treatments, base.run.treatment);
    const auto pls = axisOr(placements, base.run.placement);
    const auto scs = axisOr(scales, base.run.scale);
    const auto pds = axisOr(periods, base.run.perfPeriod);
    const auto fps = axisOr(faultPoints, std::string{});
    const auto frs = axisOr(faultRates, 0.0);
    const auto sds = axisOr(seeds, base.run.seed);

    std::vector<Job> jobs;
    jobs.reserve(matrixSize());
    for (const std::string &w : wls) {
      for (Treatment t : trs) {
        for (PlacementPolicy pl : pls) {
            for (std::uint64_t sc : scs) {
                for (std::uint64_t pd : pds) {
                    for (const std::string &fp : fps) {
                        for (double fr : frs) {
                            for (std::uint64_t sd : sds) {
                                Job job;
                                job.id = jobs.size();
                                job.config = base;
                                job.config.run.workload = w;
                                job.config.run.treatment = t;
                                job.config.run.placement = pl;
                                job.config.run.scale = sc;
                                job.config.run.perfPeriod = pd;
                                job.config.run.seed = sd;
                                job.faultPoint = fp;
                                job.faultRate = fr;
                                if (!fp.empty() && fr > 0.0) {
                                    job.config.run.faults.emplace_back(
                                        fp,
                                        FaultSpec::withProbability(
                                            fr));
                                }
                                jobs.push_back(std::move(job));
                            }
                        }
                    }
                }
            }
        }
      }
    }
    return jobs;
}

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

bool
parseOneU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
parseOneDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

} // namespace

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream is(csv);
    while (std::getline(is, item, ',')) {
        item = trim(item);
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

bool
parseU64List(const std::string &csv, std::vector<std::uint64_t> &out,
             std::string &err)
{
    for (const std::string &item : splitList(csv)) {
        std::uint64_t v = 0;
        if (!parseOneU64(item, v)) {
            err = "not an unsigned integer: '" + item + "'";
            return false;
        }
        out.push_back(v);
    }
    return true;
}

bool
parseDoubleList(const std::string &csv, std::vector<double> &out,
                std::string &err)
{
    for (const std::string &item : splitList(csv)) {
        double v = 0;
        if (!parseOneDouble(item, v)) {
            err = "not a number: '" + item + "'";
            return false;
        }
        out.push_back(v);
    }
    return true;
}

bool
parseTreatmentList(const std::string &csv,
                   std::vector<Treatment> &out, std::string &err)
{
    for (const std::string &item : splitList(csv)) {
        const Treatment *t = tryParseTreatment(item);
        if (!t) {
            err = "unknown treatment '" + item + "'";
            return false;
        }
        out.push_back(*t);
    }
    return true;
}

bool
parsePlacementList(const std::string &csv,
                   std::vector<PlacementPolicy> &out, std::string &err)
{
    for (const std::string &item : splitList(csv)) {
        const PlacementPolicy *p = tryParsePlacement(item);
        if (!p) {
            err = "unknown placement '" + item +
                  "' (default, pack, arena, isolate)";
            return false;
        }
        out.push_back(*p);
    }
    return true;
}

bool
applySpecEntry(SweepSpec &spec, const std::string &key,
               const std::string &value, std::string &err)
{
    std::string k = trim(key);
    std::string v = trim(value);
    if (k == "workloads") {
        for (std::string &w : splitList(v)) {
            // "family:NAME" expands to every workload tagged with
            // that family, in registry order, at parse time -- so
            // matrixSize()/expand() and the spec echo all see the
            // concrete list.
            if (w.rfind("family:", 0) == 0) {
                std::string fam = trim(w.substr(7));
                std::vector<std::string> members =
                    workloadsInFamily(fam);
                if (members.empty()) {
                    err = "unknown workload family '" + fam +
                          "' (known:";
                    for (const std::string &f : workloadFamilies())
                        err += " " + f;
                    err += ")";
                    return false;
                }
                for (std::string &m : members)
                    spec.workloads.push_back(std::move(m));
                continue;
            }
            spec.workloads.push_back(std::move(w));
        }
        return true;
    }
    if (k == "param") {
        // One workload knob: "param = key=value". The spec parser
        // split the line at its FIRST '=', so the remainder of the
        // assignment arrives intact in @p value here.
        std::size_t eq = v.find('=');
        if (eq == std::string::npos) {
            err = "param wants key=value, got '" + v + "'";
            return false;
        }
        std::string pk = trim(v.substr(0, eq));
        std::string pv = trim(v.substr(eq + 1));
        if (pk.empty()) {
            err = "param wants key=value, got '" + v + "'";
            return false;
        }
        spec.base.run.params.emplace_back(std::move(pk),
                                          std::move(pv));
        return true;
    }
    if (k == "treatments")
        return parseTreatmentList(v, spec.treatments, err);
    if (k == "placements")
        return parsePlacementList(v, spec.placements, err);
    if (k == "scales")
        return parseU64List(v, spec.scales, err);
    if (k == "periods")
        return parseU64List(v, spec.periods, err);
    if (k == "fault_points") {
        for (std::string &p : splitList(v))
            spec.faultPoints.push_back(std::move(p));
        return true;
    }
    if (k == "fault_rates")
        return parseDoubleList(v, spec.faultRates, err);
    if (k == "seeds")
        return parseU64List(v, spec.seeds, err);

    // Base-config scalars (single values, not axes).
    std::uint64_t u = 0;
    if (k == "threads" || k == "budget" || k == "interval" ||
        k == "period" || k == "seed" || k == "watchdog" ||
        k == "monitor") {
        // "watchdog = -1" must parse; handle the sign here.
        bool neg = !v.empty() && v[0] == '-';
        if (!parseOneU64(neg ? v.substr(1) : v, u)) {
            err = "not an integer: '" + v + "'";
            return false;
        }
        if (neg && k != "watchdog" && k != "monitor") {
            err = "'" + k + "' cannot be negative";
            return false;
        }
        if (k == "threads")
            spec.base.run.threads = static_cast<unsigned>(u);
        else if (k == "budget")
            spec.base.run.budget = u;
        else if (k == "interval")
            spec.base.run.analysisInterval = u;
        else if (k == "period")
            spec.base.run.perfPeriod = u;
        else if (k == "seed")
            spec.base.run.seed = u;
        else if (k == "watchdog")
            spec.base.run.watchdog =
                neg ? -static_cast<int>(u) : static_cast<int>(u);
        else
            spec.base.run.monitor =
                neg ? -static_cast<int>(u) : static_cast<int>(u);
        return true;
    }
    err = "unknown spec key '" + k + "'";
    return false;
}

bool
parseSpecText(SweepSpec &spec, const std::string &text,
              std::string &err)
{
    std::istringstream is(text);
    std::string line;
    unsigned lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        std::size_t eq = line.find('=');
        if (eq == std::string::npos) {
            err = "line " + std::to_string(lineno) +
                  ": expected key = value";
            return false;
        }
        std::string entry_err;
        if (!applySpecEntry(spec, line.substr(0, eq),
                            line.substr(eq + 1), entry_err)) {
            err = "line " + std::to_string(lineno) + ": " + entry_err;
            return false;
        }
    }
    return true;
}

} // namespace tmi::driver
