/**
 * @file
 * Declarative sweep specification for the experiment driver.
 *
 * A SweepSpec is a base tmi::Config plus value lists for the
 * evaluation axes (workload x treatment x scale x period x
 * fault-point x fault-rate x seed). expand() takes the cross product
 * in a fixed row-major order and assigns each cell a dense job id;
 * everything downstream (the Runner, the CSV sink, check_sweep.py)
 * keys on that id, which is what makes sweep output byte-identical
 * regardless of worker count or completion order.
 *
 * Specs can be built three ways: directly in code (benches), from
 * key=value text (the tmi-sweep --spec file), or flag by flag
 * (tmi-sweep command line) -- the last two share applySpecEntry so a
 * spec file and the equivalent flags cannot drift apart.
 */

#ifndef TMI_DRIVER_SWEEP_HH
#define TMI_DRIVER_SWEEP_HH

#include <string>
#include <vector>

#include "core/config.hh"

namespace tmi::driver
{

/** One expanded cell of the sweep matrix. */
struct Job
{
    /** Dense index in expansion order; the determinism key. */
    std::uint64_t id = 0;
    /** Fully resolved configuration (fault already folded in). */
    Config config;
    /** Fault axis echo ("" = no injected fault). */
    std::string faultPoint;
    double faultRate = 0.0;

    /** Robustness-CSV scenario label: "none" or "point@rate". */
    std::string scenario() const;
};

/** How a job's execution concluded. */
enum class JobStatus
{
    Ok,        //!< ran to a RunResult (possibly sim-level Timeout)
    Failed,    //!< invalid config or exhausted its retry budget
    TimedOut,  //!< killed by the host-side per-job timeout
    Cancelled, //!< sweep stopped before the job ran
    Poisoned,  //!< quarantined: killed its shard process twice
};

/** Lower-case status name as written to the sweep CSV. */
const char *jobStatusName(JobStatus status);

/** One job's outcome, as delivered to the ResultSink in id order. */
struct JobResult
{
    Job job;
    JobStatus status = JobStatus::Cancelled;
    /** Execution attempts consumed (0 when cancelled before any). */
    unsigned attempts = 0;
    /** Last failure message (empty on success). */
    std::string error;
    /** The measurement; meaningful only when status == Ok. */
    RunResult run;
};

/** The declarative sweep: base config + axis value lists. */
struct SweepSpec
{
    /** Template every job starts from; axis values overlay run.*. */
    Config base;

    /** Workloads to sweep (required: at least one). */
    std::vector<std::string> workloads;
    /** Empty = just base.run.treatment. */
    std::vector<Treatment> treatments;
    /** Malloc-placement policies; empty = just base.run.placement. */
    std::vector<PlacementPolicy> placements;
    /** Empty = just base.run.scale. */
    std::vector<std::uint64_t> scales;
    /** PEBS periods; empty = just base.run.perfPeriod. */
    std::vector<std::uint64_t> periods;
    /** Fault points to arm one at a time; empty = no fault axis. */
    std::vector<std::string> faultPoints;
    /** Probabilities for each armed point; 0 = clean control cell.
     *  Empty = {0} (no injection). */
    std::vector<double> faultRates;
    /** Empty = just base.run.seed. */
    std::vector<std::uint64_t> seeds;

    /** Cells in the cross product (0 when the spec is invalid). */
    std::uint64_t matrixSize() const;

    /** Every constraint violation (empty = runnable). */
    std::vector<ConfigError> validate() const;

    /**
     * Cross product in row-major axis order (workload outermost,
     * then treatment, placement, scale, period, fault point, fault
     * rate, seed innermost), ids dense from 0. Call validate() first;
     * expansion of an invalid spec is allowed but its jobs may fail.
     */
    std::vector<Job> expand() const;
};

/** @name Spec text format
 *  One `key = value` per line; blank lines and #-comments ignored.
 *  List values are comma-separated. Keys: workloads, treatments,
 *  placements, scales, periods, fault_points, fault_rates, seeds,
 *  threads, budget, interval, period, watchdog, monitor, seed, param.
 *  A workloads item of the form `family:NAME` expands to every
 *  registered workload tagged with that family. `param = key=value`
 *  appends one workload knob to the base config (repeatable; applies
 *  to every job, validated against each workload's schema). */
/// @{
/** Apply one entry; false + @p err on unknown key or bad value. */
bool applySpecEntry(SweepSpec &spec, const std::string &key,
                    const std::string &value, std::string &err);

/** Parse a whole spec text; false + @p err (with line number) on the
 *  first bad line. */
bool parseSpecText(SweepSpec &spec, const std::string &text,
                   std::string &err);
/// @}

/** @name List-parsing helpers (shared with the tmi-sweep flags) */
/// @{
/** Split on commas, trimming whitespace; empty items dropped. */
std::vector<std::string> splitList(const std::string &csv);

/** Parse a comma list of non-negative integers; false on garbage. */
bool parseU64List(const std::string &csv,
                  std::vector<std::uint64_t> &out, std::string &err);

/** Parse a comma list of doubles; false on garbage. */
bool parseDoubleList(const std::string &csv, std::vector<double> &out,
                     std::string &err);

/** Parse a comma list of treatment names; false on an unknown one. */
bool parseTreatmentList(const std::string &csv,
                        std::vector<Treatment> &out, std::string &err);

/** Parse a comma list of placement names; false on an unknown one. */
bool parsePlacementList(const std::string &csv,
                        std::vector<PlacementPolicy> &out,
                        std::string &err);
/// @}

} // namespace tmi::driver

#endif // TMI_DRIVER_SWEEP_HH
