/**
 * @file
 * The shard supervisor: crash-safe, multi-process campaign
 * orchestration.
 *
 * The in-process Runner contains exceptions and runaway simulations,
 * but a segfault, abort, or host-OOM in any job still takes down the
 * whole campaign -- exactly the failure modes our own fault injector
 * (and the paper's COW-storm/livelock pathologies) produce on
 * purpose. The supervisor moves the containment boundary to the
 * process:
 *
 *  - *Sharding*: the job list is split into contiguous job-id ranges,
 *    one worker process per shard (fork; the child never returns).
 *    Each child executes its range on an ordinary Runner and appends
 *    every completed result to its own journal (driver/journal.hh).
 *
 *  - *Crash containment*: a child that dies abnormally (signal,
 *    nonzero exit, watchdog) costs only its in-flight job. The
 *    supervisor recovers the shard journal, charges the kill to the
 *    first unjournaled job of the shard (children run their range in
 *    id order), and respawns the shard for the remaining jobs. A job
 *    whose kill count reaches the budget (default 2) is quarantined:
 *    the supervisor writes a status=poisoned record to the journal
 *    itself, so the job is visible in every downstream CSV and never
 *    silently dropped -- and never run again.
 *
 *  - *Checkpoint/resume*: because every result is journaled before
 *    the campaign ends, a supervisor killed at an arbitrary point
 *    (SIGKILL included) resumes by recovering the journals and
 *    running only the jobs with no durable record. A MANIFEST file
 *    (job count, shard count, spec fingerprint; tempfile+rename)
 *    pins the journal directory to one expansion, so a resume with a
 *    different spec fails loudly instead of merging unrelated runs.
 *
 *  - *Streaming merge*: shards cover contiguous id ranges and each
 *    journal is internally ordered (dedup by id for requeue edge
 *    cases), so the final merge walks shard 0..S-1 re-emitting
 *    records in global id order -- one record in memory at a time,
 *    which keeps campaign memory flat at any matrix size. Since job
 *    results are pure functions of their configs, the merged stream
 *    is byte-identical to an uninterrupted single-process run.
 */

#ifndef TMI_DRIVER_SUPERVISOR_HH
#define TMI_DRIVER_SUPERVISOR_HH

#include <functional>

#include "driver/journal.hh"
#include "driver/runner.hh"

namespace tmi::driver
{

/** Orchestration policy for one supervised campaign. */
struct ShardOptions
{
    /** Worker processes; 0 = hardware concurrency (min 1). */
    unsigned shards = 1;
    /** Journal directory (required; created if missing). */
    std::string journalDir;
    /** Recover existing journals and skip their jobs. Off = the
     *  directory must not already hold a MANIFEST. */
    bool resume = false;
    /** Child kills charged to one job before quarantine. */
    unsigned killBudget = 2;
    /** Respawns per shard before the remainder is failed outright
     *  (safety net above the per-job budget). */
    unsigned maxRespawnsPerShard = 64;
    /** Journal fsync/checkpoint cadence, in records. */
    std::uint64_t checkpointEvery = 16;
    /** Execution policy inside each child (workers is per-child;
     *  keep 1 unless shards << cores). */
    RunnerOptions runner;
    /** Called in the parent when a shard crashes. */
    std::function<void(const std::string &line)> onEvent;
    /** TEST-ONLY: runs in the child before each job attempt; may
     *  abort()/raise() to simulate a crashing job. @p globalId is
     *  the campaign-wide job id, @p generation the shard's respawn
     *  count (0 = first spawn). */
    std::function<void(const Job &job, std::uint64_t globalId,
                       unsigned generation)>
        childFaultHook;
};

/** What one supervised campaign did (SweepStats + orchestration). */
struct ShardRunStats
{
    SweepStats sweep; //!< per-status totals over the merged stream
    std::uint64_t shards = 0;
    std::uint64_t crashes = 0;     //!< abnormal child exits
    std::uint64_t respawns = 0;    //!< extra generations spawned
    std::uint64_t poisoned = 0;    //!< quarantined jobs
    std::uint64_t resumedJobs = 0; //!< journaled before this run
    std::uint64_t tornRecords = 0; //!< bytes-dropped recoveries seen

    /** True when every job ended status=ok. */
    bool
    allOk() const
    {
        return sweep.ok == sweep.total;
    }
};

/**
 * Orchestrates one job list across shard worker processes. The
 * merged result stream reaches @p sink strictly in job-id order
 * after all shards settle; ids are reassigned densely in input
 * order, exactly like Runner::run. Throws std::runtime_error on
 * setup failures (unwritable journal dir, manifest mismatch) --
 * never for job- or shard-level failures, which are contained and
 * reported in the stats.
 */
class ShardSupervisor
{
  public:
    explicit ShardSupervisor(ShardOptions options);

    /** Run (or resume) @p jobs; stream merged results to @p sink. */
    ShardRunStats run(std::vector<Job> jobs, ResultSink *sink);

    const ShardOptions &options() const { return _opts; }

    /** Shard index covering a global job id under this partition
     *  (exposed for the tests; ranges are contiguous). */
    static std::pair<std::uint64_t, std::uint64_t>
    shardRange(std::uint64_t jobs, unsigned shards, unsigned shard);

    /** Stable fingerprint of an expansion, for the MANIFEST. */
    static std::uint64_t fingerprintJobs(const std::vector<Job> &jobs);

    /** Journal path for shard @p k under @p dir. */
    static std::string journalPath(const std::string &dir,
                                   unsigned shard);

  private:
    struct ShardState;

    void spawnShard(ShardState &shard, const std::vector<Job> &jobs);
    [[noreturn]] void childMain(ShardState &shard,
                                const std::vector<Job> &jobs);
    void reapShard(ShardState &shard, int waitStatus);
    void writeManifest(const std::string &path, std::uint64_t jobs,
                       std::uint64_t fingerprint) const;

    ShardOptions _opts;
    ShardRunStats _stats;
};

} // namespace tmi::driver

#endif // TMI_DRIVER_SUPERVISOR_HH
