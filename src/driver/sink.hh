/**
 * @file
 * Result sinks for the sweep driver.
 *
 * The Runner delivers every JobResult to one ResultSink, strictly in
 * job-id order and from one thread at a time (the delivery lock),
 * regardless of which worker finished which job when. A sink can
 * therefore stream CSV rows, update aggregates, or forward to the
 * existing exporters without any synchronization of its own -- and
 * its output is byte-identical for any worker count.
 *
 * sweepCsvHeader()/sweepCsvRow() define the canonical aggregated
 * sweep schema; scripts/check_sweep.py validates files against it.
 */

#ifndef TMI_DRIVER_SINK_HH
#define TMI_DRIVER_SINK_HH

#include <cstdio>
#include <functional>
#include <ostream>

#include "driver/sweep.hh"

namespace tmi::driver
{

/** Receives results in job-id order; calls are serialized. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;
    virtual void onResult(const JobResult &result) = 0;
};

/** @name Canonical sweep CSV schema */
/// @{
/** The header line (no trailing newline). */
const char *sweepCsvHeader();

/** One result as a schema row (no trailing newline). Commas and
 *  newlines in the error message are sanitized to ';'. */
std::string sweepCsvRow(const JobResult &result);
/// @}

/**
 * Streams the canonical CSV; writes the header on construction.
 *
 * Two flavors: the ostream constructor streams without durability
 * guarantees (tests, stdout), while the path constructor owns a
 * stdio stream and fflush+fsyncs it every @p flushEvery rows and on
 * destruction -- a crashed orchestrator never leaves a torn final
 * row, and everything written before the last sync boundary survives
 * even a power cut.
 */
class SweepCsvSink : public ResultSink
{
  public:
    explicit SweepCsvSink(std::ostream &os);
    /** Open @p path for writing (truncates). ok() reports failure. */
    explicit SweepCsvSink(const std::string &path,
                          std::uint64_t flushEvery = 64);
    ~SweepCsvSink() override;

    void onResult(const JobResult &result) override;

    /** fflush + fsync the owned file (no-op in ostream mode). */
    void sync();

    /** False when the path constructor could not open the file. */
    bool ok() const { return _os != nullptr || _file != nullptr; }

  private:
    std::ostream *_os = nullptr;
    std::FILE *_file = nullptr; //!< owned; null in ostream mode
    std::uint64_t _flushEvery = 64;
    std::uint64_t _sinceFlush = 0;
};

/** Adapts a lambda (benches, tests). */
class FunctionSink : public ResultSink
{
  public:
    explicit FunctionSink(std::function<void(const JobResult &)> fn)
        : _fn(std::move(fn))
    {
    }

    void
    onResult(const JobResult &result) override
    {
        _fn(result);
    }

  private:
    std::function<void(const JobResult &)> _fn;
};

/** Fans one result stream out to several sinks, in order. */
class TeeSink : public ResultSink
{
  public:
    explicit TeeSink(std::vector<ResultSink *> sinks)
        : _sinks(std::move(sinks))
    {
    }

    void
    onResult(const JobResult &result) override
    {
        for (ResultSink *sink : _sinks)
            sink->onResult(result);
    }

  private:
    std::vector<ResultSink *> _sinks;
};

} // namespace tmi::driver

#endif // TMI_DRIVER_SINK_HH
