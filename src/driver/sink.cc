#include "sink.hh"

#include <cstdio>

#include <unistd.h>

#include "workloads/params.hh"

namespace tmi::driver
{

const char *
sweepCsvHeader()
{
    return "job_id,workload,treatment,threads,scale,period,"
           "fault_point,fault_rate,seed,status,attempts,error,"
           "outcome,valid,rung,cycles,seconds,hitm_events,"
           "pebs_records,pages_protected,commits,conflict_bytes,"
           "fault_fires,t2p_aborts,unrepairs,watchdog_flushes,"
           "cow_fallbacks,ladder_drops,params,requests,"
           "sojourn_p50,sojourn_p99,sojourn_p999,plan_sites,"
           "plan_applied,plan_padding_bytes,plan_redirected,"
           "plan_profile_hitms,placement,txn_commits,txn_aborts,"
           "abort_rate,fallback_locks";
}

namespace
{

const char *
outcomeStr(RunOutcome outcome)
{
    switch (outcome) {
      case RunOutcome::Completed:
        return "completed";
      case RunOutcome::Timeout:
        return "timeout";
      case RunOutcome::Deadlock:
        return "deadlock";
    }
    return "?";
}

/** CSV cells must not sprout new columns or rows. */
std::string
sanitize(std::string s)
{
    for (char &c : s) {
        if (c == ',' || c == '\n' || c == '\r')
            c = ';';
    }
    return s;
}

} // namespace

std::string
sweepCsvRow(const JobResult &r)
{
    const ExperimentConfig &run = r.job.config.run;
    bool ok = r.status == JobStatus::Ok;
    // The params cell comes from the job config, not the journaled
    // result, so shards reproduce it bit-for-bit without journaling
    // the strings.
    std::string params = sanitize(canonicalParamText(run.params));
    // Abort rate as a fraction of txn attempts: the placement
    // sensitivity tables compare this across policies.
    std::uint64_t txn_tries =
        ok ? r.run.txnCommits + r.run.txnAborts : 0;
    double abort_rate =
        txn_tries ? static_cast<double>(r.run.txnAborts) /
                        static_cast<double>(txn_tries)
                  : 0.0;
    char buf[896];
    std::snprintf(
        buf, sizeof(buf),
        "%llu,%s,%s,%u,%llu,%llu,%s,%.4f,%llu,%s,%u,%s,"
        "%s,%d,%s,%llu,%.9f,%llu,%llu,%llu,%llu,%llu,"
        "%llu,%llu,%llu,%llu,%llu,%llu,%s,%llu,%.3f,%.3f,%.3f,"
        "%llu,%llu,%llu,%llu,%llu,%s,%llu,%llu,%.4f,%llu",
        static_cast<unsigned long long>(r.job.id),
        run.workload.c_str(), treatmentName(run.treatment),
        run.threads, static_cast<unsigned long long>(run.scale),
        static_cast<unsigned long long>(run.perfPeriod),
        r.job.faultPoint.empty() ? "-" : r.job.faultPoint.c_str(),
        r.job.faultRate, static_cast<unsigned long long>(run.seed),
        jobStatusName(r.status), r.attempts,
        r.error.empty() ? "-" : sanitize(r.error).c_str(),
        ok ? outcomeStr(r.run.outcome) : "-", ok && r.run.valid,
        ok && !r.run.ladderRung.empty() ? r.run.ladderRung.c_str()
                                        : "-",
        static_cast<unsigned long long>(ok ? r.run.cycles : 0),
        ok ? r.run.seconds : 0.0,
        static_cast<unsigned long long>(ok ? r.run.hitmEvents : 0),
        static_cast<unsigned long long>(ok ? r.run.pebsRecords : 0),
        static_cast<unsigned long long>(ok ? r.run.pagesProtected
                                           : 0),
        static_cast<unsigned long long>(ok ? r.run.commits : 0),
        static_cast<unsigned long long>(ok ? r.run.conflictBytes : 0),
        static_cast<unsigned long long>(ok ? r.run.faultFires : 0),
        static_cast<unsigned long long>(ok ? r.run.t2pAborts : 0),
        static_cast<unsigned long long>(ok ? r.run.unrepairs : 0),
        static_cast<unsigned long long>(ok ? r.run.watchdogFlushes
                                           : 0),
        static_cast<unsigned long long>(ok ? r.run.cowFallbacks : 0),
        static_cast<unsigned long long>(ok ? r.run.ladderDrops : 0),
        params.c_str(),
        static_cast<unsigned long long>(ok ? r.run.requests : 0),
        ok ? r.run.sojournP50 : 0.0, ok ? r.run.sojournP99 : 0.0,
        ok ? r.run.sojournP999 : 0.0,
        static_cast<unsigned long long>(ok ? r.run.planSites : 0),
        static_cast<unsigned long long>(ok ? r.run.planAppliedSites
                                           : 0),
        static_cast<unsigned long long>(ok ? r.run.planPaddingBytes
                                           : 0),
        static_cast<unsigned long long>(ok ? r.run.planRedirectedSites
                                           : 0),
        static_cast<unsigned long long>(ok ? r.run.planProfileHitms
                                           : 0),
        placementName(run.placement),
        static_cast<unsigned long long>(ok ? r.run.txnCommits : 0),
        static_cast<unsigned long long>(ok ? r.run.txnAborts : 0),
        abort_rate,
        static_cast<unsigned long long>(ok ? r.run.txnFallbackLocks
                                           : 0));
    return buf;
}

SweepCsvSink::SweepCsvSink(std::ostream &os) : _os(&os)
{
    *_os << sweepCsvHeader() << '\n';
}

SweepCsvSink::SweepCsvSink(const std::string &path,
                           std::uint64_t flushEvery)
    : _flushEvery(flushEvery ? flushEvery : 1)
{
    _file = std::fopen(path.c_str(), "w");
    if (_file)
        std::fprintf(_file, "%s\n", sweepCsvHeader());
}

SweepCsvSink::~SweepCsvSink()
{
    if (_file) {
        sync();
        std::fclose(_file);
    }
}

void
SweepCsvSink::onResult(const JobResult &result)
{
    if (_os) {
        *_os << sweepCsvRow(result) << '\n';
        return;
    }
    if (!_file)
        return;
    std::fprintf(_file, "%s\n", sweepCsvRow(result).c_str());
    if (++_sinceFlush >= _flushEvery)
        sync();
}

void
SweepCsvSink::sync()
{
    if (!_file)
        return;
    std::fflush(_file);
    ::fsync(fileno(_file));
    _sinceFlush = 0;
}

} // namespace tmi::driver
