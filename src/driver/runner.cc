#include "runner.hh"

#include <algorithm>
#include <sstream>

namespace tmi::driver
{

namespace
{

std::string
joinErrors(const std::vector<ConfigError> &errors)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (i)
            os << "; ";
        os << errors[i].field << ": " << errors[i].message;
    }
    return os.str();
}

} // namespace

Runner::Runner(RunnerOptions options) : _opts(std::move(options))
{
    if (_opts.maxAttempts == 0)
        _opts.maxAttempts = 1;
    if (!_opts.progressStream)
        _opts.progressStream = stderr;
}

std::vector<JobResult>
Runner::run(const SweepSpec &spec, ResultSink *sink)
{
    std::vector<ConfigError> errors = spec.validate();
    if (!errors.empty()) {
        // Nothing runs: every cell of the (attempted) expansion is
        // reported Failed carrying the full error list, so a bad
        // spec is visible in the output instead of silently empty.
        std::string joined = joinErrors(errors);
        std::vector<JobResult> results;
        std::vector<Job> jobs = spec.expand();
        results.reserve(jobs.size());
        for (Job &job : jobs) {
            JobResult r;
            r.job = std::move(job);
            r.status = JobStatus::Failed;
            r.attempts = 0;
            r.error = joined;
            if (sink)
                sink->onResult(r);
            results.push_back(std::move(r));
        }
        _stats = {};
        _stats.total = results.size();
        _stats.failed = results.size();
        return results;
    }
    return run(spec.expand(), sink);
}

std::vector<JobResult>
Runner::run(std::vector<Job> jobs, ResultSink *sink)
{
    // Delivery order is input order, whatever ids the caller chose.
    for (std::size_t i = 0; i < jobs.size(); ++i)
        jobs[i].id = i;

    _jobs = &jobs;
    _sink = sink;
    _stop.store(false, std::memory_order_relaxed);
    _pending.clear();
    _nextId = 0;
    _ordered.clear();
    if (_opts.collectResults)
        _ordered.reserve(jobs.size());
    _stats = {};
    _stats.total = jobs.size();
    _startedAt = std::chrono::steady_clock::now();

    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    _workers = _opts.workers ? _opts.workers : hw;
    if (jobs.size() < _workers)
        _workers = std::max<std::size_t>(1, jobs.size());

    _queues.clear();
    for (unsigned w = 0; w < _workers; ++w)
        _queues.push_back(std::make_unique<WorkerQueue>());
    // Round-robin deal keeps each worker's share in id order (the
    // owner pops the front, thieves steal the back).
    for (std::size_t i = 0; i < jobs.size(); ++i)
        _queues[i % _workers]->jobs.push_back(i);

    _timeoutSlots.assign(_workers, {});
    _timeoutLoopExit = false;
    std::thread timeout_thread;
    if (_opts.jobTimeout.count() > 0)
        timeout_thread = std::thread([this] { timeoutLoop(); });

    if (_workers == 1) {
        // Inline on the caller's thread: zero pool overhead and the
        // reference execution order for the determinism tests.
        workerLoop(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(_workers);
        for (unsigned w = 0; w < _workers; ++w)
            pool.emplace_back([this, w] { workerLoop(w); });
        for (std::thread &t : pool)
            t.join();
    }

    if (timeout_thread.joinable()) {
        {
            std::lock_guard<std::mutex> g(_timeoutMutex);
            _timeoutLoopExit = true;
        }
        _timeoutCv.notify_all();
        timeout_thread.join();
    }

    _stats.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - _startedAt)
            .count();
    if (_opts.progress) {
        printProgress();
        std::fprintf(_opts.progressStream, "\n");
        std::fflush(_opts.progressStream);
    }
    _jobs = nullptr;
    _sink = nullptr;
    return std::move(_ordered);
}

void
Runner::requestStop()
{
    _stop.store(true, std::memory_order_relaxed);
    // Reach every in-flight simulation through its cancel token.
    std::lock_guard<std::mutex> g(_timeoutMutex);
    for (TimeoutSlot &slot : _timeoutSlots) {
        if (slot.flag)
            slot.flag->store(true, std::memory_order_relaxed);
    }
}

bool
Runner::takeJob(unsigned self, std::size_t &index)
{
    {
        WorkerQueue &own = *_queues[self];
        std::lock_guard<std::mutex> g(own.mutex);
        if (!own.jobs.empty()) {
            index = own.jobs.front();
            own.jobs.pop_front();
            return true;
        }
    }
    for (unsigned step = 1; step < _workers; ++step) {
        WorkerQueue &victim = *_queues[(self + step) % _workers];
        std::lock_guard<std::mutex> g(victim.mutex);
        if (!victim.jobs.empty()) {
            index = victim.jobs.back();
            victim.jobs.pop_back();
            return true;
        }
    }
    return false;
}

void
Runner::workerLoop(unsigned self)
{
    std::size_t index = 0;
    while (takeJob(self, index))
        deliver(execute(self, (*_jobs)[index]));
}

void
Runner::armSlot(unsigned self, std::atomic<bool> *flag)
{
    {
        std::lock_guard<std::mutex> g(_timeoutMutex);
        _timeoutSlots[self].flag = flag;
        _timeoutSlots[self].deadline =
            std::chrono::steady_clock::now() +
            (_opts.jobTimeout.count() > 0 ? _opts.jobTimeout
                                          : std::chrono::hours(24));
        // Close the race with a concurrent requestStop(): it may
        // have swept the slots before this flag was registered.
        if (stopRequested())
            flag->store(true, std::memory_order_relaxed);
    }
    if (_opts.jobTimeout.count() > 0)
        _timeoutCv.notify_all();
}

void
Runner::disarmSlot(unsigned self)
{
    std::lock_guard<std::mutex> g(_timeoutMutex);
    _timeoutSlots[self].flag = nullptr;
}

JobResult
Runner::execute(unsigned self, const Job &job)
{
    JobResult r;
    r.job = job;

    std::vector<ConfigError> errors = job.config.validate();
    if (!errors.empty()) {
        // Checked here, single-threaded per job, because the engine
        // itself would fatal() -- a sweep must contain bad cells,
        // not die on them.
        r.status = JobStatus::Failed;
        r.error = joinErrors(errors);
        return r;
    }

    auto backoff = _opts.retryBackoff;
    for (unsigned attempt = 1; attempt <= _opts.maxAttempts;
         ++attempt) {
        if (stopRequested()) {
            r.status = JobStatus::Cancelled;
            r.error = "sweep cancelled";
            return r;
        }
        r.attempts = attempt;
        if (_opts.failInjector && _opts.failInjector(job, attempt)) {
            r.error = "injected failure";
        } else {
            // The attempt's cancel token: the simulation polls it at
            // fiber switches; the timeout watchdog and requestStop()
            // set it from outside.
            std::atomic<bool> cancel{false};
            armSlot(self, &cancel);
            try {
                Config cfg = job.config;
                cfg.run.cancel = &cancel;
                RunResult res = runExperiment(cfg);
                disarmSlot(self);
                if (cancel.load(std::memory_order_relaxed)) {
                    if (stopRequested()) {
                        r.status = JobStatus::Cancelled;
                        r.error = "sweep cancelled";
                    } else {
                        // Deterministic simulations do not get
                        // faster on retry; report and move on.
                        r.status = JobStatus::TimedOut;
                        r.error = "host timeout";
                    }
                    return r;
                }
                r.run = std::move(res);
                r.status = JobStatus::Ok;
                r.error.clear();
                return r;
            } catch (const std::exception &e) {
                disarmSlot(self);
                r.error = e.what();
            } catch (...) {
                disarmSlot(self);
                r.error = "unknown exception";
            }
        }
        if (attempt < _opts.maxAttempts) {
            std::this_thread::sleep_for(
                std::min(backoff, _opts.retryBackoffCap));
            backoff *= 2;
        }
    }
    r.status = JobStatus::Failed;
    return r;
}

void
Runner::deliver(JobResult &&result)
{
    std::lock_guard<std::mutex> g(_deliverMutex);
    switch (result.status) {
      case JobStatus::Ok:
        ++_stats.ok;
        break;
      case JobStatus::Failed:
        ++_stats.failed;
        break;
      case JobStatus::TimedOut:
        ++_stats.timedOut;
        break;
      case JobStatus::Cancelled:
        ++_stats.cancelled;
        break;
      case JobStatus::Poisoned:
        ++_stats.poisoned;
        break;
    }
    if (result.attempts > 1)
        _stats.retries += result.attempts - 1;

    _pending.emplace(result.job.id, std::move(result));
    while (!_pending.empty() && _pending.begin()->first == _nextId) {
        JobResult &front = _pending.begin()->second;
        if (_sink)
            _sink->onResult(front);
        if (_opts.collectResults)
            _ordered.push_back(std::move(front));
        _pending.erase(_pending.begin());
        ++_nextId;
    }
    if (_opts.progress)
        printProgress();
}

void
Runner::printProgress()
{
    std::uint64_t done = _stats.ok + _stats.failed +
                         _stats.timedOut + _stats.cancelled;
    double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - _startedAt)
            .count();
    double eta = 0;
    if (done > 0 && done < _stats.total) {
        eta = elapsed / static_cast<double>(done) *
              static_cast<double>(_stats.total - done);
    }
    std::fprintf(_opts.progressStream,
                 "\r[sweep] %llu/%llu done, %llu failed, %llu "
                 "retried, ETA %.0fs   ",
                 static_cast<unsigned long long>(done),
                 static_cast<unsigned long long>(_stats.total),
                 static_cast<unsigned long long>(_stats.failed +
                                                 _stats.timedOut),
                 static_cast<unsigned long long>(_stats.retries),
                 eta);
    std::fflush(_opts.progressStream);
}

void
Runner::timeoutLoop()
{
    std::unique_lock<std::mutex> lock(_timeoutMutex);
    while (!_timeoutLoopExit) {
        auto now = std::chrono::steady_clock::now();
        auto next = now + std::chrono::hours(24);
        for (TimeoutSlot &slot : _timeoutSlots) {
            if (!slot.flag)
                continue;
            if (slot.deadline <= now)
                slot.flag->store(true, std::memory_order_relaxed);
            else
                next = std::min(next, slot.deadline);
        }
        // Sleep to the earliest pending deadline; a worker arming a
        // new slot (or run() tearing down) notifies the condvar.
        _timeoutCv.wait_until(lock, next);
    }
}

} // namespace tmi::driver
