/**
 * @file
 * The sweep runner: executes a job matrix on a host thread pool.
 *
 * Design constraints, in priority order:
 *
 *  1. *Determinism*: each job is an isolated, per-cell-seeded
 *     simulation, so its RunResult is a pure function of its Config.
 *     The runner only has to keep delivery deterministic: results
 *     are buffered and released to the ResultSink in job-id order,
 *     which makes all output byte-identical for 1 or N workers.
 *  2. *Utilization*: jobs are dealt round-robin onto per-worker
 *     deques; an idle worker steals from the back of a victim's
 *     deque (classic work-stealing, cheap because the unit of work
 *     is a whole simulation).
 *  3. *Containment*: a failing job (exception or injected failure)
 *     is retried with capped exponential backoff; exhausting the
 *     budget marks that job Failed without touching its siblings. A
 *     per-job host timeout cancels runaway simulations through the
 *     scheduler's abort flag; requestStop() cancels the whole sweep
 *     the same way.
 */

#ifndef TMI_DRIVER_RUNNER_HH
#define TMI_DRIVER_RUNNER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "driver/sink.hh"
#include "driver/sweep.hh"

namespace tmi::driver
{

/** Host-side execution policy (all knobs, no simulation knobs). */
struct RunnerOptions
{
    /** Worker threads; 0 = hardware concurrency (min 1). */
    unsigned workers = 0;
    /** Executions per job before it is reported Failed (>= 1). */
    unsigned maxAttempts = 3;
    /** Host wait before the first retry; doubles per retry. */
    std::chrono::milliseconds retryBackoff{10};
    /** Backoff growth stops at this cap. */
    std::chrono::milliseconds retryBackoffCap{2000};
    /** Kill a single execution after this long (0 = unlimited).
     *  Timed-out jobs are not retried: a deterministic simulation
     *  that ran out of host time once will again. */
    std::chrono::milliseconds jobTimeout{0};
    /** Emit a \r-progress line (done/failed/retried, ETA) to
     *  @ref progressStream as results are delivered. */
    bool progress = false;
    /** Buffer every JobResult and return the vector from run().
     *  Turn off for big campaigns that consume results through the
     *  sink only: memory stays flat instead of O(matrix). */
    bool collectResults = true;
    /** Defaults to stderr when null. */
    std::FILE *progressStream = nullptr;
    /** Test hook: pretend attempt @p attempt of @p job failed
     *  (before the simulation runs). Exercised by the retry tests. */
    std::function<bool(const Job &, unsigned attempt)> failInjector;
};

/** Aggregate counters for one run() call. */
struct SweepStats
{
    std::uint64_t total = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t timedOut = 0;
    std::uint64_t cancelled = 0;
    /** Quarantined poison jobs (only the shard supervisor makes
     *  these; an in-process Runner never does). */
    std::uint64_t poisoned = 0;
    /** Extra executions beyond each job's first. */
    std::uint64_t retries = 0;
    double wallSeconds = 0;
};

/** Executes SweepSpecs / job lists. One run() at a time. */
class Runner
{
  public:
    explicit Runner(RunnerOptions options = {});

    /** Expand and run @p spec. Results (and sink deliveries) are in
     *  job-id order. A spec that fails validate() runs nothing and
     *  reports every job Failed with the error list. */
    std::vector<JobResult> run(const SweepSpec &spec,
                               ResultSink *sink = nullptr);

    /** Run an explicit job list. Ids are reassigned densely in input
     *  order (input order == delivery order). */
    std::vector<JobResult> run(std::vector<Job> jobs,
                               ResultSink *sink = nullptr);

    /** Cancel the sweep: not-yet-started jobs report Cancelled, the
     *  in-flight ones are aborted mid-simulation. Safe from any
     *  thread, including a sink callback. */
    void requestStop();

    bool
    stopRequested() const
    {
        return _stop.load(std::memory_order_relaxed);
    }

    /** Counters from the most recent run(). */
    const SweepStats &stats() const { return _stats; }

    const RunnerOptions &options() const { return _opts; }

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::size_t> jobs; //!< indices into _jobs
    };

    /** One in-flight execution being watched for timeout. */
    struct TimeoutSlot
    {
        std::atomic<bool> *flag = nullptr;
        std::chrono::steady_clock::time_point deadline;
    };

    void workerLoop(unsigned self);
    bool takeJob(unsigned self, std::size_t &index);
    JobResult execute(unsigned self, const Job &job);
    void armSlot(unsigned self, std::atomic<bool> *flag);
    void disarmSlot(unsigned self);
    void deliver(JobResult &&result);
    void printProgress();
    void timeoutLoop();

    RunnerOptions _opts;
    unsigned _workers = 1;

    // Per-run state (owned by run(), read by workers).
    const std::vector<Job> *_jobs = nullptr;
    ResultSink *_sink = nullptr;
    std::vector<std::unique_ptr<WorkerQueue>> _queues;
    std::atomic<bool> _stop{false};

    // In-order release: results park in _pending until every lower
    // id has been delivered.
    std::mutex _deliverMutex;
    std::map<std::uint64_t, JobResult> _pending;
    std::uint64_t _nextId = 0;
    std::vector<JobResult> _ordered;
    SweepStats _stats;
    std::chrono::steady_clock::time_point _startedAt;

    // Host-timeout watchdog.
    std::mutex _timeoutMutex;
    std::condition_variable _timeoutCv;
    std::vector<TimeoutSlot> _timeoutSlots;
    bool _timeoutLoopExit = false;
};

} // namespace tmi::driver

#endif // TMI_DRIVER_RUNNER_HH
