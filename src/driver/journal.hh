/**
 * @file
 * Crash-safe per-shard result journals.
 *
 * A shard worker process appends one record per completed job to its
 * journal; the supervisor recovers journals to decide what still
 * needs to run and to merge the final result stream. The format is
 * built for exactly one threat model: the writer (or the whole
 * machine) dies mid-byte at an arbitrary point.
 *
 *   file   := magic(8) record*
 *   record := payloadLen(u32 LE) crc32(u32 LE, over payload) payload
 *
 * Recovery scans from the front and stops at the first record whose
 * length or CRC does not check out -- a torn tail is dropped, never
 * interpreted, and the jobs it would have covered simply re-run
 * (each job is a deterministic simulation, so a re-run reproduces
 * the lost record bit for bit). Reopening a journal for append
 * truncates the torn tail first so new records never follow garbage.
 *
 * Durability is checkpoint-based: every K appends (and on close) the
 * writer fsyncs the journal and then publishes a small `.ckpt` meta
 * file via the tempfile+rename idiom, so the meta is always an
 * atomic, self-consistent snapshot. The journal itself remains the
 * source of truth; the checkpoint is advisory (recovery cross-checks
 * it and trusts the CRC scan on disagreement).
 *
 * Records carry the *global* job id plus every RunResult scalar the
 * CSV schemas and the chaos oracle consume. Trace timelines, stats
 * dumps and metrics registries are deliberately not journaled: they
 * are debugging payloads, not results, and would turn flat-memory
 * streaming back into buffering.
 */

#ifndef TMI_DRIVER_JOURNAL_HH
#define TMI_DRIVER_JOURNAL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "driver/sweep.hh"

namespace tmi::driver
{

/** One journaled job outcome (the durable subset of JobResult). */
struct JournalRecord
{
    std::uint64_t jobId = 0; //!< global (pre-sharding) job id
    JobStatus status = JobStatus::Cancelled;
    unsigned attempts = 0;
    std::string error;
    RunResult run; //!< scalar fields only (no traces/metrics)

    /** Copy the durable fields back onto a JobResult shell whose
     *  Job was re-derived from the spec expansion. */
    void restore(JobResult &out) const;

    /** Capture the durable fields of @p result (id = global id). */
    static JournalRecord capture(std::uint64_t globalId,
                                 const JobResult &result);
};

/** @name Record (de)serialization -- exposed for the format tests */
/// @{
/** Serialize @p record to the framed payload (no length/CRC). */
std::string encodeRecord(const JournalRecord &record);

/** Parse a payload; false on a short or malformed buffer. */
bool decodeRecord(const std::string &payload, JournalRecord &out);

/** CRC-32 (IEEE, reflected) of @p data. */
std::uint32_t crc32(const void *data, std::size_t size);
/// @}

/** What a recovery scan found in one journal file. */
struct JournalRecovery
{
    /** CRC-valid records, in file (== append) order. */
    std::vector<JournalRecord> records;
    /** Length of the valid prefix; bytes past this are torn. */
    std::uint64_t validBytes = 0;
    /** Bytes dropped as a torn/corrupt tail. */
    std::uint64_t tornBytes = 0;
    /** File existed (a missing journal recovers to empty). */
    bool existed = false;
    /** The `.ckpt` meta disagreed with the scan (advisory only). */
    bool checkpointStale = false;
};

/**
 * Scan @p path incrementally, validating frame by frame and handing
 * each CRC-valid record to @p fn together with its file offset --
 * one record in memory at a time, so a scan over an arbitrarily
 * large journal stays flat. The returned recovery carries the
 * metadata only (records empty). Never throws: an unreadable or
 * empty file yields an empty recovery; a corrupt tail is measured,
 * not fatal. @p fn may be null (pure validation scan).
 */
JournalRecovery scanJournal(
    const std::string &path,
    const std::function<void(const JournalRecord &record,
                             std::uint64_t offset)> &fn);

/** scanJournal, retaining the records (small journals, tests). */
JournalRecovery recoverJournal(const std::string &path);

/** Re-read one framed record at @p offset (as reported by
 *  scanJournal); false on any framing/CRC mismatch. */
bool readRecordAt(const std::string &path, std::uint64_t offset,
                  JournalRecord &out);

/**
 * Append-only journal writer over a POSIX fd.
 *
 * open() recovers the existing file (if any), truncates any torn
 * tail, and positions at the end; recovered() says what was already
 * there, so the caller can skip done jobs. append() frames and
 * writes one record; every checkpointEvery appends it fsyncs and
 * publishes the meta checkpoint. close() (and the destructor) always
 * checkpoint, so a cleanly exiting worker never leaves an unsynced
 * tail.
 */
class JournalWriter
{
  public:
    explicit JournalWriter(std::string path,
                           std::uint64_t checkpointEvery = 16);
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Recover + open for append; false (with a message in
     *  lastError()) when the file cannot be created. */
    bool open();

    /** Records already durable when open() ran. */
    const JournalRecovery &recovered() const { return _recovered; }

    /** Frame and append @p record; checkpoints every K appends. */
    bool append(const JournalRecord &record);

    /** fsync the journal, then atomically replace the `.ckpt` meta
     *  (tempfile + rename). Idempotent; cheap when nothing new. */
    bool checkpoint();

    /** Checkpoint and close the fd. Safe to call twice. */
    void close();

    bool isOpen() const { return _fd >= 0; }
    std::uint64_t recordCount() const { return _count; }
    const std::string &path() const { return _path; }
    const std::string &lastError() const { return _error; }

    /** Meta sidecar path for a journal ("<path>.ckpt"). */
    static std::string checkpointPath(const std::string &path);

  private:
    std::string _path;
    std::uint64_t _checkpointEvery;
    JournalRecovery _recovered;
    int _fd = -1;
    std::uint64_t _count = 0;         //!< records durable + appended
    std::uint64_t _sinceCheckpoint = 0;
    std::string _error;
};

} // namespace tmi::driver

#endif // TMI_DRIVER_JOURNAL_HH
