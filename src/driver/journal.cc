#include "journal.hh"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace tmi::driver
{

namespace
{

/** File magic: format name + version byte. Bumping the version is a
 *  clean break -- old journals recover as empty, jobs just re-run. */
constexpr char kMagic[8] = {'T', 'M', 'I', 'J', 'R', 'N', 'L', '4'};

/** Frames larger than this are treated as corruption, not records;
 *  a real record is a few hundred bytes of scalars and short
 *  strings. */
constexpr std::uint32_t kMaxPayload = 1u << 20;

/** @name Little-endian primitive (de)serializers */
/// @{
void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putDouble(std::string &out, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

void
putString(std::string &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

struct Cursor
{
    const std::string &buf;
    std::size_t pos = 0;
    bool ok = true;

    bool
    take(void *dst, std::size_t n)
    {
        if (!ok || pos + n > buf.size()) {
            ok = false;
            return false;
        }
        std::memcpy(dst, buf.data() + pos, n);
        pos += n;
        return true;
    }

    std::uint32_t
    u32()
    {
        unsigned char b[4] = {};
        take(b, 4);
        return static_cast<std::uint32_t>(b[0]) | (b[1] << 8) |
               (b[2] << 16) | (static_cast<std::uint32_t>(b[3]) << 24);
    }

    std::uint64_t
    u64()
    {
        unsigned char b[8] = {};
        take(b, 8);
        std::uint64_t v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) | b[i];
        return v;
    }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v = 0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        std::uint32_t n = u32();
        if (!ok || n > kMaxPayload || pos + n > buf.size()) {
            ok = false;
            return {};
        }
        std::string s(buf, pos, n);
        pos += n;
        return s;
    }
};
/// @}

/** Full write() with EINTR retry. */
bool
writeAll(int fd, const void *data, std::size_t size)
{
    const char *p = static_cast<const char *>(data);
    while (size > 0) {
        ssize_t n = ::write(fd, p, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size)
{
    // Table-driven CRC-32 (IEEE 802.3, reflected 0xEDB88320),
    // computed once on first use.
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xFFFFFFFFu;
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

void
JournalRecord::restore(JobResult &out) const
{
    out.status = status;
    out.attempts = attempts;
    out.error = error;
    out.run = run;
}

JournalRecord
JournalRecord::capture(std::uint64_t globalId, const JobResult &r)
{
    JournalRecord rec;
    rec.jobId = globalId;
    rec.status = r.status;
    rec.attempts = r.attempts;
    rec.error = r.error;
    rec.run = r.run;
    // Strip the non-durable debugging payloads (see file comment).
    rec.run.traceEvents.clear();
    rec.run.statsText.clear();
    rec.run.metrics.reset();
    return rec;
}

std::string
encodeRecord(const JournalRecord &rec)
{
    const RunResult &r = rec.run;
    std::string out;
    out.reserve(256);
    putU64(out, rec.jobId);
    out.push_back(static_cast<char>(rec.status));
    putU32(out, rec.attempts);
    putString(out, rec.error);

    putString(out, r.workload);
    out.push_back(static_cast<char>(r.treatment));
    out.push_back(static_cast<char>(r.outcome));
    out.push_back(r.valid ? 1 : 0);
    out.push_back(r.compatible ? 1 : 0);
    out.push_back(r.repairActive ? 1 : 0);
    putU64(out, r.resultDigest);
    putU64(out, r.cycles);
    putDouble(out, r.seconds);
    putU64(out, r.hitmEvents);
    putU64(out, r.pebsRecords);
    putDouble(out, r.fsEventsEstimated);
    putDouble(out, r.tsEventsEstimated);
    putU64(out, r.repairStartCycles);
    putU64(out, r.t2pCycles);
    putU64(out, r.commits);
    putDouble(out, r.commitsPerSec);
    putU64(out, r.pagesProtected);
    putU64(out, r.conflictBytes);
    putU64(out, r.appBytesPeak);
    putU64(out, r.overheadBytes);
    putU64(out, r.softFaults);
    putU64(out, r.memOps);
    putString(out, r.ladderRung);
    putU64(out, r.faultFires);
    putU64(out, r.t2pAborts);
    putU64(out, r.unrepairs);
    putU64(out, r.watchdogFlushes);
    putU64(out, r.cowFallbacks);
    putU64(out, r.ladderDrops);
    putU64(out, r.ladderRecovers);
    putU64(out, r.invariantViolations);
    putU64(out, r.traceRecorded);
    putU64(out, r.traceOverwritten);
    putU64(out, r.requests);
    putDouble(out, r.sojournP50);
    putDouble(out, r.sojournP99);
    putDouble(out, r.sojournP999);
    putU64(out, r.planSites);
    putU64(out, r.planAppliedSites);
    putU64(out, r.planPaddingBytes);
    putU64(out, r.planRedirectedSites);
    putU64(out, r.planProfileHitms);
    putString(out, r.planText);
    putU64(out, r.txnCommits);
    putU64(out, r.txnAborts);
    putU64(out, r.txnFallbackLocks);
    return out;
}

bool
decodeRecord(const std::string &payload, JournalRecord &out)
{
    Cursor c{payload};
    out = {};
    out.jobId = c.u64();
    char status = 0;
    c.take(&status, 1);
    if (status < 0 ||
        status > static_cast<char>(JobStatus::Poisoned)) {
        return false;
    }
    out.status = static_cast<JobStatus>(status);
    out.attempts = c.u32();
    out.error = c.str();

    RunResult &r = out.run;
    r.workload = c.str();
    char treatment = 0, outcome = 0, flag = 0;
    c.take(&treatment, 1);
    r.treatment = static_cast<Treatment>(treatment);
    c.take(&outcome, 1);
    r.outcome = static_cast<RunOutcome>(outcome);
    c.take(&flag, 1);
    r.valid = flag != 0;
    c.take(&flag, 1);
    r.compatible = flag != 0;
    c.take(&flag, 1);
    r.repairActive = flag != 0;
    r.resultDigest = c.u64();
    r.cycles = c.u64();
    r.seconds = c.f64();
    r.hitmEvents = c.u64();
    r.pebsRecords = c.u64();
    r.fsEventsEstimated = c.f64();
    r.tsEventsEstimated = c.f64();
    r.repairStartCycles = c.u64();
    r.t2pCycles = c.u64();
    r.commits = c.u64();
    r.commitsPerSec = c.f64();
    r.pagesProtected = c.u64();
    r.conflictBytes = c.u64();
    r.appBytesPeak = c.u64();
    r.overheadBytes = c.u64();
    r.softFaults = c.u64();
    r.memOps = c.u64();
    r.ladderRung = c.str();
    r.faultFires = c.u64();
    r.t2pAborts = c.u64();
    r.unrepairs = c.u64();
    r.watchdogFlushes = c.u64();
    r.cowFallbacks = c.u64();
    r.ladderDrops = c.u64();
    r.ladderRecovers = c.u64();
    r.invariantViolations = c.u64();
    r.traceRecorded = c.u64();
    r.traceOverwritten = c.u64();
    r.requests = c.u64();
    r.sojournP50 = c.f64();
    r.sojournP99 = c.f64();
    r.sojournP999 = c.f64();
    r.planSites = c.u64();
    r.planAppliedSites = c.u64();
    r.planPaddingBytes = c.u64();
    r.planRedirectedSites = c.u64();
    r.planProfileHitms = c.u64();
    r.planText = c.str();
    r.txnCommits = c.u64();
    r.txnAborts = c.u64();
    r.txnFallbackLocks = c.u64();
    // The payload must be exactly one record: trailing bytes mean a
    // framing bug or a foreign format, both grounds for rejection.
    return c.ok && c.pos == payload.size();
}

namespace
{

/** Read exactly @p size bytes at @p offset; false on a short read. */
bool
preadAll(int fd, void *dst, std::size_t size, std::uint64_t offset)
{
    char *p = static_cast<char *>(dst);
    while (size > 0) {
        ssize_t n = ::pread(fd, p, size, static_cast<off_t>(offset));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        p += n;
        offset += static_cast<std::uint64_t>(n);
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

/** Decode the frame at @p offset; false on tear/corruption.
 *  @p frameBytes reports the full frame length on success. */
bool
readFrame(int fd, std::uint64_t offset, std::uint64_t fileSize,
          JournalRecord &out, std::uint64_t &frameBytes)
{
    if (offset + 8 > fileSize)
        return false;
    unsigned char hdr[8];
    if (!preadAll(fd, hdr, sizeof(hdr), offset))
        return false;
    std::uint32_t len = static_cast<std::uint32_t>(hdr[0]) |
                        (hdr[1] << 8) | (hdr[2] << 16) |
                        (static_cast<std::uint32_t>(hdr[3]) << 24);
    std::uint32_t crc = static_cast<std::uint32_t>(hdr[4]) |
                        (hdr[5] << 8) | (hdr[6] << 16) |
                        (static_cast<std::uint32_t>(hdr[7]) << 24);
    if (len == 0 || len > kMaxPayload || offset + 8 + len > fileSize)
        return false;
    std::string payload(len, '\0');
    if (!preadAll(fd, payload.data(), len, offset + 8))
        return false;
    if (crc32(payload.data(), payload.size()) != crc)
        return false; // bit rot or a mid-payload tear
    if (!decodeRecord(payload, out))
        return false;
    frameBytes = 8 + len;
    return true;
}

} // namespace

JournalRecovery
scanJournal(const std::string &path,
            const std::function<void(const JournalRecord &,
                                     std::uint64_t)> &fn)
{
    JournalRecovery rec;
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return rec;
    rec.existed = true;
    off_t end = ::lseek(fd, 0, SEEK_END);
    std::uint64_t size = end > 0 ? static_cast<std::uint64_t>(end) : 0;

    char magic[sizeof(kMagic)];
    if (size < sizeof(kMagic) ||
        !preadAll(fd, magic, sizeof(magic), 0) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        // Wrong/zero-length magic: the whole file is torn.
        rec.tornBytes = size;
        ::close(fd);
        return rec;
    }
    rec.validBytes = sizeof(kMagic);

    JournalRecord record;
    std::uint64_t frame = 0;
    std::uint64_t count = 0;
    while (readFrame(fd, rec.validBytes, size, record, frame)) {
        if (fn)
            fn(record, rec.validBytes);
        rec.validBytes += frame;
        ++count;
    }
    rec.tornBytes = size - rec.validBytes;
    ::close(fd);

    // Cross-check the advisory checkpoint: it may lag (appends since
    // the last sync) but claiming *more* records than the journal
    // holds marks it stale.
    int mfd = ::open(JournalWriter::checkpointPath(path).c_str(),
                     O_RDONLY);
    if (mfd >= 0) {
        char buf[128];
        ssize_t n = ::read(mfd, buf, sizeof(buf) - 1);
        ::close(mfd);
        if (n > 0) {
            buf[n] = '\0';
            unsigned long long claimed = 0;
            if (std::sscanf(buf, "records=%llu", &claimed) == 1 &&
                claimed > count) {
                rec.checkpointStale = true;
            }
        }
    }
    return rec;
}

JournalRecovery
recoverJournal(const std::string &path)
{
    std::vector<JournalRecord> records;
    JournalRecovery rec = scanJournal(
        path, [&](const JournalRecord &r, std::uint64_t) {
            records.push_back(r);
        });
    rec.records = std::move(records);
    return rec;
}

bool
readRecordAt(const std::string &path, std::uint64_t offset,
             JournalRecord &out)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    off_t end = ::lseek(fd, 0, SEEK_END);
    std::uint64_t frame = 0;
    bool ok = end > 0 &&
              readFrame(fd, offset, static_cast<std::uint64_t>(end),
                        out, frame);
    ::close(fd);
    return ok;
}

std::string
JournalWriter::checkpointPath(const std::string &path)
{
    return path + ".ckpt";
}

JournalWriter::JournalWriter(std::string path,
                             std::uint64_t checkpointEvery)
    : _path(std::move(path)),
      _checkpointEvery(checkpointEvery ? checkpointEvery : 1)
{
}

JournalWriter::~JournalWriter()
{
    close();
}

bool
JournalWriter::open()
{
    close();
    _recovered = recoverJournal(_path);
    _fd = ::open(_path.c_str(), O_WRONLY | O_CREAT, 0644);
    if (_fd < 0) {
        _error = _path + ": " + std::strerror(errno);
        return false;
    }
    if (!_recovered.existed || _recovered.validBytes == 0) {
        // Fresh file (or one torn before the magic survived).
        if (::ftruncate(_fd, 0) != 0 ||
            !writeAll(_fd, kMagic, sizeof(kMagic))) {
            _error = _path + ": " + std::strerror(errno);
            close();
            return false;
        }
        _recovered.records.clear();
        _recovered.validBytes = sizeof(kMagic);
    } else if (_recovered.tornBytes > 0) {
        // Drop the torn tail so new records never follow garbage.
        if (::ftruncate(_fd,
                        static_cast<off_t>(_recovered.validBytes)) !=
            0) {
            _error = _path + ": " + std::strerror(errno);
            close();
            return false;
        }
    }
    if (::lseek(_fd, 0, SEEK_END) < 0) {
        _error = _path + ": " + std::strerror(errno);
        close();
        return false;
    }
    _count = _recovered.records.size();
    _sinceCheckpoint = 0;
    return true;
}

bool
JournalWriter::append(const JournalRecord &record)
{
    if (_fd < 0)
        return false;
    std::string payload = encodeRecord(record);
    std::string frame;
    frame.reserve(payload.size() + 8);
    putU32(frame, static_cast<std::uint32_t>(payload.size()));
    putU32(frame, crc32(payload.data(), payload.size()));
    frame.append(payload);
    if (!writeAll(_fd, frame.data(), frame.size())) {
        _error = _path + ": " + std::strerror(errno);
        return false;
    }
    ++_count;
    if (++_sinceCheckpoint >= _checkpointEvery)
        return checkpoint();
    return true;
}

bool
JournalWriter::checkpoint()
{
    if (_fd < 0)
        return false;
    if (::fsync(_fd) != 0) {
        _error = _path + ": fsync: " + std::strerror(errno);
        return false;
    }
    // Publish the meta atomically: a reader sees either the old
    // checkpoint or the new one, never a torn half-write.
    std::string meta_path = checkpointPath(_path);
    std::string tmp_path = meta_path + ".tmp";
    int mfd = ::open(tmp_path.c_str(),
                     O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (mfd < 0) {
        _error = tmp_path + ": " + std::strerror(errno);
        return false;
    }
    char buf[64];
    int n = std::snprintf(buf, sizeof(buf), "records=%llu\n",
                          static_cast<unsigned long long>(_count));
    bool ok = writeAll(mfd, buf, static_cast<std::size_t>(n)) &&
              ::fsync(mfd) == 0;
    ::close(mfd);
    ok = ok && ::rename(tmp_path.c_str(), meta_path.c_str()) == 0;
    if (!ok) {
        _error = meta_path + ": " + std::strerror(errno);
        return false;
    }
    _sinceCheckpoint = 0;
    return true;
}

void
JournalWriter::close()
{
    if (_fd < 0)
        return;
    checkpoint();
    ::close(_fd);
    _fd = -1;
}

} // namespace tmi::driver
