#include "supervisor.hh"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <stdexcept>
#include <thread>
#include <tuple>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

namespace tmi::driver
{

namespace
{

constexpr char kManifestName[] = "MANIFEST";

/** FNV-1a, the same mixing the fault injector uses for seeds. */
std::uint64_t
fnv1a(std::uint64_t h, const void *data, std::size_t size)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t
fnv1aU64(std::uint64_t h, std::uint64_t v)
{
    return fnv1a(h, &v, sizeof(v));
}

std::uint64_t
fnv1aStr(std::uint64_t h, const std::string &s)
{
    h = fnv1aU64(h, s.size());
    return fnv1a(h, s.data(), s.size());
}

/** mkdir -p, POSIX-only (no <filesystem> in the child path). */
bool
makeDirs(const std::string &dir)
{
    std::string prefix;
    for (std::size_t i = 0; i <= dir.size(); ++i) {
        if (i < dir.size() && dir[i] != '/')
            continue;
        prefix = dir.substr(0, i);
        if (prefix.empty() || prefix == ".")
            continue;
        if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
            return false;
    }
    return true;
}

std::string
describeExit(int status)
{
    char buf[96];
    if (WIFSIGNALED(status)) {
        std::snprintf(buf, sizeof(buf), "signal %d (%s)",
                      WTERMSIG(status),
                      strsignal(WTERMSIG(status)));
    } else if (WIFEXITED(status)) {
        std::snprintf(buf, sizeof(buf), "exit status %d",
                      WEXITSTATUS(status));
    } else {
        std::snprintf(buf, sizeof(buf), "wait status 0x%x", status);
    }
    return buf;
}

} // namespace

/** Everything the parent tracks about one shard. */
struct ShardSupervisor::ShardState
{
    unsigned index = 0;
    std::uint64_t begin = 0, end = 0; //!< global id range [b, e)
    std::string path;                 //!< journal file
    std::set<std::uint64_t> done;     //!< durably journaled ids
    std::map<std::uint64_t, unsigned> kills;
    unsigned generation = 0; //!< respawns so far
    pid_t pid = -1;
    bool settled = false;

    std::vector<std::uint64_t>
    pending() const
    {
        std::vector<std::uint64_t> ids;
        for (std::uint64_t id = begin; id < end; ++id) {
            if (!done.count(id))
                ids.push_back(id);
        }
        return ids;
    }
};

ShardSupervisor::ShardSupervisor(ShardOptions options)
    : _opts(std::move(options))
{
    if (_opts.shards == 0) {
        _opts.shards = std::max(
            1u, std::thread::hardware_concurrency());
    }
    if (_opts.killBudget == 0)
        _opts.killBudget = 1;
    if (!_opts.onEvent) {
        _opts.onEvent = [](const std::string &line) {
            std::fprintf(stderr, "%s\n", line.c_str());
        };
    }
}

std::pair<std::uint64_t, std::uint64_t>
ShardSupervisor::shardRange(std::uint64_t jobs, unsigned shards,
                            unsigned shard)
{
    // Contiguous split, remainder spread over the leading shards.
    std::uint64_t base = jobs / shards;
    std::uint64_t extra = jobs % shards;
    std::uint64_t begin = shard * base + std::min<std::uint64_t>(
                                             shard, extra);
    std::uint64_t len = base + (shard < extra ? 1 : 0);
    return {begin, begin + len};
}

std::uint64_t
ShardSupervisor::fingerprintJobs(const std::vector<Job> &jobs)
{
    std::uint64_t h = 1469598103934665603ull; // FNV offset basis
    h = fnv1aU64(h, jobs.size());
    for (const Job &job : jobs) {
        const ExperimentConfig &run = job.config.run;
        h = fnv1aStr(h, run.workload);
        h = fnv1aU64(h, static_cast<std::uint64_t>(run.treatment));
        h = fnv1aU64(h, run.threads);
        h = fnv1aU64(h, run.scale);
        h = fnv1aU64(h, run.perfPeriod);
        h = fnv1aU64(h, run.seed);
        h = fnv1aU64(h, run.budget);
        h = fnv1aStr(h, job.faultPoint);
        std::uint64_t rate_bits = 0;
        static_assert(sizeof(rate_bits) == sizeof(job.faultRate));
        std::memcpy(&rate_bits, &job.faultRate, sizeof(rate_bits));
        h = fnv1aU64(h, rate_bits);
        h = fnv1aU64(h, run.faults.size());
    }
    return h;
}

std::string
ShardSupervisor::journalPath(const std::string &dir, unsigned shard)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "/shard-%03u.journal", shard);
    return dir + buf;
}

void
ShardSupervisor::writeManifest(const std::string &path,
                               std::uint64_t jobs,
                               std::uint64_t fingerprint) const
{
    std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throw std::runtime_error(tmp + ": " + std::strerror(errno));
    char buf[192];
    int n = std::snprintf(buf, sizeof(buf),
                          "tmi-campaign-manifest v1\n"
                          "jobs=%" PRIu64 "\n"
                          "shards=%u\n"
                          "fingerprint=%016" PRIx64 "\n",
                          jobs, _opts.shards, fingerprint);
    bool ok = ::write(fd, buf, static_cast<std::size_t>(n)) == n &&
              ::fsync(fd) == 0;
    ::close(fd);
    if (!ok || ::rename(tmp.c_str(), path.c_str()) != 0)
        throw std::runtime_error(path + ": " + std::strerror(errno));
}

void
ShardSupervisor::childMain(ShardState &shard,
                           const std::vector<Job> &jobs)
{
#ifdef __linux__
    // Die with the supervisor: a kill -9 on the orchestrator must
    // not leave orphan workers appending to the journals it thinks
    // are quiescent on resume.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() == 1)
        ::_exit(0); // parent already gone
#endif

    JournalWriter journal(shard.path, _opts.checkpointEvery);
    if (!journal.open())
        ::_exit(102);

    // The shard's remaining work, in id order; local dense ids map
    // back to global ids by position.
    std::vector<Job> pending;
    std::vector<std::uint64_t> global_ids;
    for (std::uint64_t id = shard.begin; id < shard.end; ++id) {
        if (shard.done.count(id))
            continue;
        pending.push_back(jobs[id]);
        global_ids.push_back(id);
    }

    RunnerOptions ro = _opts.runner;
    ro.progress = false;
    ro.collectResults = false; // the journal is the result
    if (_opts.childFaultHook) {
        auto inner = ro.failInjector;
        auto hook = _opts.childFaultHook;
        unsigned generation = shard.generation;
        ro.failInjector = [hook, inner, &global_ids, generation](
                              const Job &job, unsigned attempt) {
            hook(job, global_ids[job.id], generation);
            return inner ? inner(job, attempt) : false;
        };
    }

    bool journal_ok = true;
    FunctionSink sink([&](const JobResult &r) {
        journal_ok = journal.append(JournalRecord::capture(
                         global_ids[r.job.id], r)) &&
                     journal_ok;
    });
    Runner runner(ro);
    runner.run(std::move(pending), &sink);
    journal.close(); // final checkpoint + fsync
    // _exit, not exit: the child must not run the parent's atexit
    // hooks or flush its inherited stdio buffers a second time.
    ::_exit(journal_ok ? 0 : 103);
}

void
ShardSupervisor::spawnShard(ShardState &shard,
                            const std::vector<Job> &jobs)
{
    pid_t pid = ::fork();
    if (pid < 0) {
        throw std::runtime_error(std::string{"fork: "} +
                                 std::strerror(errno));
    }
    if (pid == 0)
        childMain(shard, jobs); // never returns
    shard.pid = pid;
}

void
ShardSupervisor::reapShard(ShardState &shard, int status)
{
    shard.pid = -1;

    // Re-read what actually became durable (ids only; flat memory).
    shard.done.clear();
    for (std::uint64_t id = shard.begin; id < shard.end; ++id)
        if (shard.kills.count(id) &&
            shard.kills.at(id) >= _opts.killBudget)
            shard.done.insert(id); // quarantined earlier
    JournalRecovery scan = scanJournal(
        shard.path, [&](const JournalRecord &r, std::uint64_t) {
            shard.done.insert(r.jobId);
        });
    if (scan.tornBytes > 0)
        ++_stats.tornRecords;

    std::vector<std::uint64_t> pending = shard.pending();
    bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (clean && pending.empty()) {
        shard.settled = true;
        return;
    }

    // Crash (or a child that exited without finishing its range).
    ++_stats.crashes;
    char line[192];
    std::snprintf(
        line, sizeof(line),
        "[shard %u] crashed: %s; %zu job(s) incomplete "
        "(gen %u)",
        shard.index, describeExit(status).c_str(), pending.size(),
        shard.generation);
    _opts.onEvent(line);

    if (!pending.empty()) {
        // Children journal in id order, so the first unjournaled job
        // is the one that was in flight (exact for 1 in-child
        // worker; the closest attribution otherwise).
        std::uint64_t suspect = pending.front();
        unsigned kills = ++shard.kills[suspect];
        if (kills >= _opts.killBudget) {
            JournalRecord rec;
            rec.jobId = suspect;
            rec.status = JobStatus::Poisoned;
            rec.attempts = kills;
            std::snprintf(line, sizeof(line),
                          "poison job: killed shard %u worker %u "
                          "times (last: %s)",
                          shard.index, kills,
                          describeExit(status).c_str());
            rec.error = line;
            JournalWriter journal(shard.path, 1);
            if (journal.open())
                journal.append(rec);
            journal.close();
            shard.done.insert(suspect);
            ++_stats.poisoned;
            std::snprintf(line, sizeof(line),
                          "[shard %u] job %" PRIu64
                          " quarantined as poison after %u kills",
                          shard.index, suspect, kills);
            _opts.onEvent(line);
            pending = shard.pending();
        }
    }

    if (pending.empty()) {
        shard.settled = true;
        return;
    }
    if (shard.generation >= _opts.maxRespawnsPerShard) {
        // Safety net: journal explicit failures so the merge (and
        // the CSV) still accounts for every job.
        JournalWriter journal(shard.path, 1);
        if (journal.open()) {
            for (std::uint64_t id : pending) {
                JournalRecord rec;
                rec.jobId = id;
                rec.status = JobStatus::Failed;
                rec.error = "shard respawn budget exhausted";
                journal.append(rec);
                shard.done.insert(id);
            }
        }
        journal.close();
        std::snprintf(line, sizeof(line),
                      "[shard %u] respawn budget exhausted; %zu "
                      "job(s) failed",
                      shard.index, pending.size());
        _opts.onEvent(line);
        shard.settled = true;
        return;
    }
    ++shard.generation;
    ++_stats.respawns;
}

ShardRunStats
ShardSupervisor::run(std::vector<Job> jobs, ResultSink *sink)
{
    _stats = {};
    auto started = std::chrono::steady_clock::now();

    // Delivery order is input order, like Runner::run.
    for (std::size_t i = 0; i < jobs.size(); ++i)
        jobs[i].id = i;
    std::uint64_t fingerprint = fingerprintJobs(jobs);

    if (_opts.journalDir.empty())
        throw std::runtime_error("ShardOptions.journalDir is empty");
    if (!makeDirs(_opts.journalDir)) {
        throw std::runtime_error(_opts.journalDir + ": " +
                                 std::strerror(errno));
    }

    unsigned shards = _opts.shards;
    if (jobs.size() < shards)
        shards = std::max<std::size_t>(1, jobs.size());

    // The manifest pins this directory to one expansion: resuming a
    // different spec (or shard split) into it would interleave
    // unrelated journals into one CSV.
    std::string manifest = _opts.journalDir + "/" + kManifestName;
    bool have_manifest = ::access(manifest.c_str(), R_OK) == 0;
    if (have_manifest) {
        if (!_opts.resume) {
            throw std::runtime_error(
                manifest + " exists: this directory already holds a "
                           "campaign (pass resume to continue it)");
        }
        std::FILE *mf = std::fopen(manifest.c_str(), "r");
        unsigned long long m_jobs = 0, m_fp = 0;
        unsigned m_shards = 0;
        char header[64] = {};
        if (!mf ||
            std::fscanf(mf,
                        "%63[^\n]\njobs=%llu\nshards=%u\n"
                        "fingerprint=%llx",
                        header, &m_jobs, &m_shards, &m_fp) != 4) {
            if (mf)
                std::fclose(mf);
            throw std::runtime_error(manifest + ": unreadable");
        }
        std::fclose(mf);
        if (m_jobs != jobs.size() || m_fp != fingerprint) {
            throw std::runtime_error(
                manifest +
                ": spec mismatch (the resume spec must expand to "
                "the journaled campaign)");
        }
        if (m_shards == 0)
            throw std::runtime_error(manifest + ": zero shards");
        // The journal<->range mapping is fixed at first run; a
        // different --shards on resume silently adopts the original.
        shards = m_shards;
    }
    _opts.shards = shards;
    if (!have_manifest)
        writeManifest(manifest, jobs.size(), fingerprint);
    _stats.shards = shards;

    // Recover per-shard state (resumed jobs already journaled).
    std::vector<ShardState> states(shards);
    for (unsigned s = 0; s < shards; ++s) {
        ShardState &st = states[s];
        st.index = s;
        std::tie(st.begin, st.end) =
            shardRange(jobs.size(), shards, s);
        st.path = journalPath(_opts.journalDir, s);
        JournalRecovery scan = scanJournal(
            st.path, [&](const JournalRecord &r, std::uint64_t) {
                if (r.jobId >= st.begin && r.jobId < st.end)
                    st.done.insert(r.jobId);
            });
        if (scan.tornBytes > 0)
            ++_stats.tornRecords;
        _stats.resumedJobs += st.done.size();
        st.settled = st.pending().empty();
    }

    // Spawn every unsettled shard, then supervise until all settle.
    // reapShard() may un-settle nothing but can leave a shard
    // wanting a respawn (settled == false, pid == -1).
    auto spawn_ready = [&] {
        for (ShardState &st : states) {
            if (!st.settled && st.pid < 0)
                spawnShard(st, jobs);
        }
    };
    spawn_ready();
    for (;;) {
        bool any_live = false;
        for (ShardState &st : states)
            any_live = any_live || st.pid >= 0;
        if (!any_live)
            break;
        int status = 0;
        pid_t pid = ::waitpid(-1, &status, 0);
        if (pid < 0) {
            if (errno == EINTR)
                continue;
            break; // ECHILD: nothing left to reap
        }
        for (ShardState &st : states) {
            if (st.pid == pid) {
                reapShard(st, status);
                break;
            }
        }
        spawn_ready();
    }

    // Merge: shards cover [0, N) contiguously, so walking them in
    // index order yields global id order. Pass 1 per shard indexes
    // id -> file offset (dedup: last record wins); pass 2 re-reads
    // one record at a time -- memory stays flat at any matrix size.
    _stats.sweep.total = jobs.size();
    for (ShardState &st : states) {
        std::map<std::uint64_t, std::uint64_t> offsets;
        scanJournal(st.path, [&](const JournalRecord &r,
                                 std::uint64_t offset) {
            if (r.jobId >= st.begin && r.jobId < st.end)
                offsets[r.jobId] = offset;
        });
        for (std::uint64_t id = st.begin; id < st.end; ++id) {
            JobResult jr;
            jr.job = jobs[id];
            auto it = offsets.find(id);
            JournalRecord rec;
            if (it != offsets.end() &&
                readRecordAt(st.path, it->second, rec)) {
                rec.restore(jr);
            } else {
                jr.status = JobStatus::Failed;
                jr.error = "no journal record (shard never "
                           "completed this job)";
            }
            switch (jr.status) {
              case JobStatus::Ok:
                ++_stats.sweep.ok;
                break;
              case JobStatus::Failed:
                ++_stats.sweep.failed;
                break;
              case JobStatus::TimedOut:
                ++_stats.sweep.timedOut;
                break;
              case JobStatus::Cancelled:
                ++_stats.sweep.cancelled;
                break;
              case JobStatus::Poisoned:
                ++_stats.sweep.poisoned;
                break;
            }
            if (jr.attempts > 1)
                _stats.sweep.retries += jr.attempts - 1;
            if (sink)
                sink->onResult(jr);
        }
    }

    _stats.sweep.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - started)
            .count();
    return _stats;
}

} // namespace tmi::driver
