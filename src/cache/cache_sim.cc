#include "cache_sim.hh"

namespace tmi
{

void
CacheSim::TagArray::init(unsigned s, unsigned w)
{
    sets = s;
    ways = w;
    lines.assign(static_cast<std::size_t>(s) * w, Line{});
}

CacheSim::Line *
CacheSim::TagArray::find(Addr line_addr)
{
    unsigned set = setIndex(line_addr);
    Line *base = &lines[static_cast<std::size_t>(set) * ways];
    for (unsigned w = 0; w < ways; ++w) {
        if (base[w].state != Mesi::Invalid && base[w].tag == line_addr)
            return &base[w];
    }
    return nullptr;
}

CacheSim::Line &
CacheSim::TagArray::victim(Addr line_addr)
{
    unsigned set = setIndex(line_addr);
    Line *base = &lines[static_cast<std::size_t>(set) * ways];
    Line *lru = &base[0];
    for (unsigned w = 0; w < ways; ++w) {
        if (base[w].state == Mesi::Invalid)
            return base[w];
        if (base[w].lastUse < lru->lastUse)
            lru = &base[w];
    }
    return *lru;
}

CacheSim::CacheSim(const CacheConfig &config) : _config(config)
{
    TMI_ASSERT(config.cores >= 1 && config.cores <= 32);
    _l1.resize(config.cores);
    for (auto &l1 : _l1)
        l1.init(config.l1Sets, config.l1Ways);
    _llc.init(config.llcSets, config.llcWays);
}

void
CacheSim::dropFromCore(CoreId core, Addr line_addr)
{
    Line *line = _l1[core].find(line_addr);
    if (line) {
        if (line->state == Mesi::Modified ||
            line->state == Mesi::Owned) {
            ++_statWritebacks;
            // Dirty data returns to the LLC.
            llcLookupFill(line_addr);
        }
        line->state = Mesi::Invalid;
    }
    auto it = _dir.find(line_addr);
    if (it != _dir.end()) {
        it->second.sharers &= ~(std::uint32_t{1} << core);
        if (it->second.owner == core)
            it->second.ownerState = Mesi::Invalid;
        if (it->second.sharers == 0)
            _dir.erase(it);
    }
}

bool
CacheSim::llcLookupFill(Addr line_addr)
{
    Line *hit = _llc.find(line_addr);
    if (hit) {
        hit->lastUse = _useClock;
        return true;
    }
    Line &v = _llc.victim(line_addr);
    // LLC evictions have no side effects: data always lives in the
    // simulated physical memory, and the LLC is non-inclusive.
    v.tag = line_addr;
    v.state = Mesi::Shared;
    v.lastUse = _useClock;
    return false;
}

void
CacheSim::fillLine(CoreId core, Addr line_addr, Mesi state)
{
    Line &v = _l1[core].victim(line_addr);
    if (v.state != Mesi::Invalid) {
        // Evict the victim: update the directory, write back if dirty.
        Addr victim_addr = v.tag;
        if (v.state == Mesi::Modified || v.state == Mesi::Owned) {
            ++_statWritebacks;
            llcLookupFill(victim_addr);
        }
        auto it = _dir.find(victim_addr);
        if (it != _dir.end()) {
            it->second.sharers &= ~(std::uint32_t{1} << core);
            if (it->second.owner == core)
                it->second.ownerState = Mesi::Invalid;
            if (it->second.sharers == 0)
                _dir.erase(it);
        }
    }
    v.tag = line_addr;
    v.state = state;
    v.lastUse = _useClock;

    DirEntry &entry = _dir[line_addr];
    entry.sharers |= std::uint32_t{1} << core;
    if (state == Mesi::Modified || state == Mesi::Exclusive) {
        entry.owner = core;
        entry.ownerState = state;
    }
}

AccessResult
CacheSim::access(const AccessContext &ctx)
{
    TMI_ASSERT(ctx.core < _config.cores);
    TMI_ASSERT(lineOffset(ctx.paddr) + ctx.width <= lineBytes,
               "access spans a cache line");

    AccessResult res;
    ++_statAccesses;
    ++_useClock;

    Addr line_addr = lineNumber(ctx.paddr);
    TagArray &l1 = _l1[ctx.core];
    Line *line = l1.find(line_addr);

    if (line) {
        line->lastUse = _useClock;
        if (!ctx.isWrite || line->state == Mesi::Modified) {
            res.l1Hit = true;
            res.latency = _config.l1HitLatency;
            ++_statL1Hits;
            return res;
        }
        if (line->state == Mesi::Exclusive) {
            // Silent E->M upgrade.
            line->state = Mesi::Modified;
            DirEntry &entry = _dir[line_addr];
            entry.owner = ctx.core;
            entry.ownerState = Mesi::Modified;
            res.l1Hit = true;
            res.latency = _config.l1HitLatency;
            ++_statL1Hits;
            return res;
        }
        // S/O->M upgrade: invalidate every other sharer. A remote
        // Owned copy is dirty and must be written back first.
        ++_statUpgrades;
        auto it = _dir.find(line_addr);
        if (it != _dir.end()) {
            std::uint32_t others =
                it->second.sharers & ~(std::uint32_t{1} << ctx.core);
            for (CoreId c = 0; c < _config.cores; ++c) {
                if (others & (std::uint32_t{1} << c)) {
                    ++_statInvalidations;
                    Line *remote = _l1[c].find(line_addr);
                    if (remote) {
                        if (remote->state == Mesi::Owned) {
                            ++_statWritebacks;
                            llcLookupFill(line_addr);
                        }
                        remote->state = Mesi::Invalid;
                    }
                }
            }
            it->second.sharers = std::uint32_t{1} << ctx.core;
            it->second.owner = ctx.core;
            it->second.ownerState = Mesi::Modified;
        }
        line->state = Mesi::Modified;
        res.l1Hit = true;
        res.latency = _config.upgradeLatency;
        return res;
    }

    // L1 miss: snoop the other private caches via the directory.
    auto it = _dir.find(line_addr);
    bool remote_modified = false;
    bool remote_owned = false;
    bool remote_clean = false;
    CoreId owner = 0;

    if (it != _dir.end() && it->second.sharers != 0) {
        std::uint32_t others =
            it->second.sharers & ~(std::uint32_t{1} << ctx.core);
        if (others != 0) {
            bool owner_remote =
                it->second.owner != ctx.core &&
                (others & (std::uint32_t{1} << it->second.owner));
            if (it->second.ownerState == Mesi::Modified &&
                owner_remote) {
                remote_modified = true;
                owner = it->second.owner;
            } else if (it->second.ownerState == Mesi::Owned &&
                       owner_remote) {
                remote_owned = true;
                owner = it->second.owner;
            } else {
                remote_clean = true;
            }
        }
    }

    if (remote_modified) {
        // HITM: dirty hit in a remote private cache.
        ++_statHitm;
        if (ctx.isWrite)
            ++_statHitmStores;
        res.hitm = true;
        res.latency = _config.hitmLatency;
        if (_hitmCb)
            res.latency += _hitmCb(ctx);

        if (ctx.isWrite) {
            // RFO: the owner is invalidated, we take Modified.
            ++_statWritebacks;
            llcLookupFill(line_addr);
            dropFromCore(owner, line_addr);
            ++_statInvalidations;
            fillLine(ctx.core, line_addr, Mesi::Modified);
        } else if (_config.protocol == Protocol::Moesi) {
            // MOESI read: the owner keeps the dirty data in Owned
            // state; no writeback happens at all.
            Line *remote = _l1[owner].find(line_addr);
            if (remote)
                remote->state = Mesi::Owned;
            DirEntry &entry = _dir[line_addr];
            entry.ownerState = Mesi::Owned;
            fillLine(ctx.core, line_addr, Mesi::Shared);
        } else {
            // MESI read: writeback, the owner downgrades to Shared.
            ++_statWritebacks;
            llcLookupFill(line_addr);
            Line *remote = _l1[owner].find(line_addr);
            if (remote)
                remote->state = Mesi::Shared;
            DirEntry &entry = _dir[line_addr];
            entry.ownerState = Mesi::Invalid;
            fillLine(ctx.core, line_addr, Mesi::Shared);
        }
        return res;
    }

    if (remote_owned) {
        // MOESI dirty forward: served from the Owned copy. The line
        // is not Modified, so Intel's HITM event does NOT fire --
        // dirty sharing is cheaper and *quieter* under MOESI.
        ++_statOwnedForwards;
        res.latency = _config.ownedForwardLatency;
        if (ctx.isWrite) {
            std::uint32_t others =
                it->second.sharers & ~(std::uint32_t{1} << ctx.core);
            for (CoreId c = 0; c < _config.cores; ++c) {
                if (others & (std::uint32_t{1} << c)) {
                    ++_statInvalidations;
                    dropFromCore(c, line_addr);
                }
            }
            fillLine(ctx.core, line_addr, Mesi::Modified);
        } else {
            fillLine(ctx.core, line_addr, Mesi::Shared);
        }
        return res;
    }

    if (remote_clean) {
        res.latency = _config.cleanForwardLatency;
        if (ctx.isWrite) {
            // Invalidate all remote clean copies, take Modified.
            std::uint32_t others =
                it->second.sharers & ~(std::uint32_t{1} << ctx.core);
            for (CoreId c = 0; c < _config.cores; ++c) {
                if (others & (std::uint32_t{1} << c)) {
                    ++_statInvalidations;
                    Line *remote = _l1[c].find(line_addr);
                    if (remote)
                        remote->state = Mesi::Invalid;
                }
            }
            it->second.sharers &= std::uint32_t{1} << ctx.core;
            fillLine(ctx.core, line_addr, Mesi::Modified);
        } else {
            // Downgrade a remote Exclusive copy if there is one.
            if (it->second.ownerState == Mesi::Exclusive) {
                Line *remote =
                    _l1[it->second.owner].find(line_addr);
                if (remote && remote->state == Mesi::Exclusive)
                    remote->state = Mesi::Shared;
                it->second.ownerState = Mesi::Invalid;
            }
            fillLine(ctx.core, line_addr, Mesi::Shared);
        }
        return res;
    }

    // No private copy anywhere: LLC, then memory.
    bool llc_hit = llcLookupFill(line_addr);
    if (llc_hit) {
        res.latency = _config.llcHitLatency;
        ++_statLlcHits;
    } else {
        res.latency = _config.dramLatency;
        ++_statDramFills;
    }
    fillLine(ctx.core, line_addr,
             ctx.isWrite ? Mesi::Modified : Mesi::Exclusive);
    return res;
}

void
CacheSim::invalidateLine(Addr paddr)
{
    Addr line_addr = lineNumber(paddr);
    for (CoreId c = 0; c < _config.cores; ++c)
        dropFromCore(c, line_addr);
}

void
CacheSim::invalidatePage(PPage frame, unsigned page_shift)
{
    Addr base = frame << page_shift;
    Addr lines = (Addr{1} << page_shift) >> lineShift;
    for (Addr i = 0; i < lines; ++i)
        invalidateLine(base + (i << lineShift));
}

bool
CacheSim::auditCoherence() const
{
    // Gather every valid private-cache copy per line address.
    std::unordered_map<Addr, std::vector<std::pair<CoreId, Mesi>>>
        copies;
    for (CoreId c = 0; c < _config.cores; ++c) {
        for (const Line &line : _l1[c].lines) {
            if (line.state != Mesi::Invalid)
                copies[line.tag].push_back({c, line.state});
        }
    }

    for (const auto &[line_addr, holders] : copies) {
        unsigned exclusive_holders = 0;
        unsigned owned_holders = 0;
        for (const auto &[core, state] : holders) {
            (void)core;
            if (state == Mesi::Modified || state == Mesi::Exclusive)
                ++exclusive_holders;
            if (state == Mesi::Owned)
                ++owned_holders;
        }
        // SWMR: an M/E copy must be the only copy of the line; at
        // most one Owned copy, and never alongside an M/E copy.
        if (exclusive_holders > 1 || owned_holders > 1)
            return false;
        if (exclusive_holders == 1 && holders.size() > 1)
            return false;
        if (owned_holders == 1 && exclusive_holders > 0)
            return false;
        if (owned_holders == 1 && _config.protocol == Protocol::Mesi)
            return false;

        // The directory must cover every cached copy.
        auto it = _dir.find(line_addr);
        if (it == _dir.end())
            return false;
        for (const auto &[core, state] : holders) {
            if (!(it->second.sharers & (std::uint32_t{1} << core)))
                return false;
            if ((state == Mesi::Modified ||
                 state == Mesi::Exclusive ||
                 state == Mesi::Owned) &&
                (it->second.owner != core ||
                 it->second.ownerState != state)) {
                return false;
            }
        }
    }
    return true;
}

void
CacheSim::regStats(stats::StatGroup &group)
{
    group.addScalar("accesses", &_statAccesses, "data accesses");
    group.addScalar("l1Hits", &_statL1Hits, "private-cache hits");
    group.addScalar("llcHits", &_statLlcHits, "shared-cache hits");
    group.addScalar("dramFills", &_statDramFills, "fills from memory");
    group.addScalar("hitmEvents", &_statHitm,
                    "remote-Modified (HITM) coherence events");
    group.addScalar("hitmStoreEvents", &_statHitmStores,
                    "HITM events triggered by stores");
    group.addScalar("ownedForwards", &_statOwnedForwards,
                    "dirty forwards from Owned lines (MOESI)");
    group.addScalar("upgrades", &_statUpgrades, "S->M upgrades");
    group.addScalar("invalidations", &_statInvalidations,
                    "remote lines invalidated");
    group.addScalar("writebacks", &_statWritebacks,
                    "dirty lines written back");
}

} // namespace tmi
