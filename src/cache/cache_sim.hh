/**
 * @file
 * MESI cache-coherence simulator with HITM event generation.
 *
 * The simulated machine has one private L1 per core, a shared LLC,
 * and a snooping interconnect enforcing the single-writer multiple-
 * reader invariant. A HITM ("HIT Modified") event fires when a core's
 * request hits a remote private cache holding the line in Modified
 * state -- exactly the coherence condition Intel's PEBS
 * MEM_LOAD_UOPS_LLC_HIT_RETIRED.XSNP_HITM event reports, which Tmi's
 * detector consumes (paper section 2.1).
 *
 * Caches are keyed by *physical* address. Tmi's repair remaps a
 * contended virtual page to per-process private frames, so repaired
 * accesses stop colliding in the coherence protocol for the same
 * reason they do on real hardware.
 */

#ifndef TMI_CACHE_CACHE_SIM_HH
#define TMI_CACHE_CACHE_SIM_HH

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace tmi
{

/** Coherence protocol flavour. */
enum class Protocol : std::uint8_t
{
    Mesi,  //!< Intel-style: a read of a remote-M line writes back
    Moesi, //!< AMD-style: the writer keeps dirty data in Owned state
};

/** MESI/MOESI line states. */
enum class Mesi : std::uint8_t
{
    Invalid,
    Shared,
    Owned,     //!< dirty but shared (MOESI only)
    Exclusive,
    Modified,
};

/** Geometry and latency parameters of the memory hierarchy. */
struct CacheConfig
{
    Protocol protocol = Protocol::Mesi;
    unsigned cores = 4;            //!< private-cache count
    unsigned l1Sets = 64;          //!< 64 sets x 8 ways x 64 B = 32 KB
    unsigned l1Ways = 8;
    unsigned llcSets = 8192;       //!< 8192 x 16 x 64 B = 8 MB
    unsigned llcWays = 16;

    Cycles l1HitLatency = 4;       //!< private-cache hit
    Cycles llcHitLatency = 38;     //!< shared-cache hit
    Cycles hitmLatency = 180;      //!< dirty cache-to-cache transfer
    Cycles ownedForwardLatency = 95; //!< O-state dirty forward (MOESI)
    Cycles cleanForwardLatency = 70; //!< clean remote hit (E/S)
    Cycles dramLatency = 230;      //!< LLC miss to memory
    Cycles upgradeLatency = 55;    //!< S->M invalidation round

    bool operator==(const CacheConfig &) const = default;
};

/** Everything the memory system needs to know about one access. */
struct AccessContext
{
    CoreId core = 0;       //!< issuing core
    ThreadId tid = 0;      //!< issuing simulated thread
    Addr paddr = 0;        //!< physical address
    Addr vaddr = 0;        //!< virtual address (for PEBS records)
    Addr pc = 0;           //!< program counter of the instruction
    unsigned width = 0;    //!< access size in bytes
    bool isWrite = false;
};

/** Result of one access through the hierarchy. */
struct AccessResult
{
    Cycles latency = 0;
    bool l1Hit = false;
    bool hitm = false;      //!< remote-Modified hit occurred
};

/**
 * Raised on every HITM coherence event (before PEBS sampling).
 *
 * @param ctx the access that triggered the event.
 * @return extra cycles to charge the access (e.g. the PEBS assist
 *         cost when the observer emits a record).
 */
using HitmCallback = std::function<Cycles(const AccessContext &ctx)>;

/** The simulated cache hierarchy. */
class CacheSim
{
  public:
    explicit CacheSim(const CacheConfig &config = {});

    const CacheConfig &config() const { return _config; }

    /** Install the HITM observer (the PEBS model). */
    void setHitmCallback(HitmCallback cb) { _hitmCb = std::move(cb); }

    /**
     * Simulate one data access; updates coherence state and returns
     * the latency to charge. The access must not span a cache line.
     */
    AccessResult access(const AccessContext &ctx);

    /**
     * Invalidate a line from every private cache (used when a page
     * mapping changes so stale translations cannot linger).
     */
    void invalidateLine(Addr paddr);

    /** Invalidate every line in a physical page from all caches. */
    void invalidatePage(PPage frame, unsigned page_shift);

    /** Total true HITM events (before sampling). */
    std::uint64_t hitmEvents() const
    {
        return static_cast<std::uint64_t>(_statHitm.value());
    }

    /** Dirty forwards served from Owned lines (MOESI only): remote
     *  dirty hits that do NOT raise the Intel HITM event. */
    std::uint64_t ownedForwards() const
    {
        return static_cast<std::uint64_t>(_statOwnedForwards.value());
    }

    /** Dirty lines written back to the LLC. */
    std::uint64_t writebacks() const
    {
        return static_cast<std::uint64_t>(_statWritebacks.value());
    }

    /** Total accesses simulated. */
    std::uint64_t accesses() const
    {
        return static_cast<std::uint64_t>(_statAccesses.value());
    }

    /**
     * Audit the single-writer multiple-reader invariant: no line may
     * be valid in any private cache while another private cache
     * holds it Modified or Exclusive, and the directory must agree
     * with the private tag arrays. Intended for property tests.
     *
     * @retval true if every invariant holds.
     */
    bool auditCoherence() const;

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    struct Line
    {
        Addr tag = 0;           //!< line address (paddr >> lineShift)
        Mesi state = Mesi::Invalid;
        std::uint64_t lastUse = 0;
    };

    /** One set-associative tag array. */
    struct TagArray
    {
        unsigned sets = 0;
        unsigned ways = 0;
        std::vector<Line> lines;

        void init(unsigned s, unsigned w);
        Line *find(Addr line_addr);
        /** Victim way for a fill (invalid first, else LRU). */
        Line &victim(Addr line_addr);
        unsigned setIndex(Addr line_addr) const
        {
            return static_cast<unsigned>(line_addr % sets);
        }
    };

    /** Directory entry summarizing private-cache residency. */
    struct DirEntry
    {
        std::uint32_t sharers = 0;  //!< bitmask of cores with the line
        CoreId owner = 0;           //!< valid if ownerState is M or E
        Mesi ownerState = Mesi::Invalid;
    };

    void dropFromCore(CoreId core, Addr line_addr);
    void fillLine(CoreId core, Addr line_addr, Mesi state);
    bool llcLookupFill(Addr line_addr);

    CacheConfig _config;
    std::vector<TagArray> _l1;
    TagArray _llc;
    std::unordered_map<Addr, DirEntry> _dir;
    HitmCallback _hitmCb;
    std::uint64_t _useClock = 0;

    stats::Scalar _statAccesses;
    stats::Scalar _statL1Hits;
    stats::Scalar _statLlcHits;
    stats::Scalar _statDramFills;
    stats::Scalar _statHitm;
    stats::Scalar _statHitmStores;
    stats::Scalar _statOwnedForwards;
    stats::Scalar _statUpgrades;
    stats::Scalar _statInvalidations;
    stats::Scalar _statWritebacks;
};

} // namespace tmi

#endif // TMI_CACHE_CACHE_SIM_HH
