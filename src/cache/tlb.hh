/**
 * @file
 * A per-core TLB model.
 *
 * Sized like the combined L1 DTLB + shared STLB of a Haswell core.
 * Used to price translation: huge pages cover 512x more memory per
 * entry, which is one of the two effects (with fewer soft faults)
 * behind Figure 10's huge-page speedups.
 */

#ifndef TMI_CACHE_TLB_HH
#define TMI_CACHE_TLB_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace tmi
{

/** TLB geometry and miss cost. */
struct TlbConfig
{
    /** Effective entries (L1 DTLB + STLB) for 4 KB pages. */
    unsigned entries4k = 1088;
    /** Effective entries for 2 MB pages. */
    unsigned entries2m = 544;
    Cycles missLatency = 30; //!< page-walk cost

    bool operator==(const TlbConfig &) const = default;
};

/** Set-associative (4-way) LRU TLB, one instance per core. */
class Tlb
{
  public:
    Tlb(const TlbConfig &config, unsigned page_shift)
        : _missLatency(config.missLatency), _pageShift(page_shift)
    {
        unsigned n = page_shift >= hugePageShift ? config.entries2m
                                                 : config.entries4k;
        _sets = n / ways;
        if (_sets == 0)
            _sets = 1;
        _entries.assign(static_cast<std::size_t>(_sets) * ways,
                        Entry{});
    }

    /**
     * Look up the page containing @p vaddr; fills on miss.
     * @return the translation latency to charge (0 on hit).
     */
    Cycles
    lookup(Addr vaddr)
    {
        VPage vpage = vaddr >> _pageShift;
        Entry *set = setFor(vpage);
        ++_clock;
        Entry *victim = &set[0];
        for (unsigned w = 0; w < ways; ++w) {
            Entry &e = set[w];
            if (e.valid && e.vpage == vpage) {
                e.lastUse = _clock;
                ++_statHits;
                return 0;
            }
            if (!e.valid) {
                victim = &e;
            } else if (victim->valid &&
                       e.lastUse < victim->lastUse) {
                victim = &e;
            }
        }
        ++_statMisses;
        victim->valid = true;
        victim->vpage = vpage;
        victim->lastUse = _clock;
        return _missLatency;
    }

    /** Drop every cached translation (mapping change). */
    void
    flush()
    {
        for (auto &e : _entries)
            e.valid = false;
    }

    /** Drop the translation for one page if present. */
    void
    flushPage(VPage vpage)
    {
        Entry *set = setFor(vpage);
        for (unsigned w = 0; w < ways; ++w) {
            if (set[w].valid && set[w].vpage == vpage)
                set[w].valid = false;
        }
    }

    std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(_statMisses.value());
    }

    /** Register stats under @p group. */
    void
    regStats(stats::StatGroup &group)
    {
        group.addScalar("tlbHits", &_statHits, "TLB hits");
        group.addScalar("tlbMisses", &_statMisses, "TLB misses");
    }

  private:
    static constexpr unsigned ways = 4;

    struct Entry
    {
        VPage vpage = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    Entry *
    setFor(VPage vpage)
    {
        // Mix the page number so contiguous pages spread over sets.
        std::uint64_t h = vpage * 0x9e3779b97f4a7c15ULL;
        unsigned set = static_cast<unsigned>(h >> 40) % _sets;
        return &_entries[static_cast<std::size_t>(set) * ways];
    }

    Cycles _missLatency;
    unsigned _pageShift;
    unsigned _sets = 1;
    std::vector<Entry> _entries;
    std::uint64_t _clock = 0;

    stats::Scalar _statHits;
    stats::Scalar _statMisses;
};

} // namespace tmi

#endif // TMI_CACHE_TLB_HH
