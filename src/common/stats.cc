#include "stats.hh"

#include <iomanip>

namespace tmi::stats
{

void
StatGroup::dump(std::ostream &os, int indent) const
{
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    os << pad << _name << "\n";
    for (const auto &s : _scalars) {
        os << pad << "  " << std::left << std::setw(32) << s.name
           << std::setw(16) << s.stat->value() << "# " << s.desc << "\n";
    }
    for (const auto &d : _dists) {
        os << pad << "  " << std::left << std::setw(32)
           << (d.name + ".mean") << std::setw(16) << d.stat->mean()
           << "# " << d.desc << "\n";
        os << pad << "  " << std::left << std::setw(32)
           << (d.name + ".count") << std::setw(16)
           << static_cast<double>(d.stat->count()) << "#\n";
    }
    for (const auto *c : _children)
        c->dump(os, indent + 1);
}

void
StatGroup::visitScalars(
    const std::function<void(const std::string &, double,
                             const std::string &)> &fn) const
{
    for (const auto &s : _scalars)
        fn(s.name, s.stat->value(), s.desc);
    for (const auto *c : _children) {
        c->visitScalars([&](const std::string &path, double value,
                            const std::string &desc) {
            fn(c->name() + "." + path, value, desc);
        });
    }
}

void
StatGroup::visitDistributions(
    const std::function<void(const std::string &, const Distribution &,
                             const std::string &)> &fn) const
{
    for (const auto &d : _dists)
        fn(d.name, *d.stat, d.desc);
    for (const auto *c : _children) {
        c->visitDistributions([&](const std::string &path,
                                  const Distribution &dist,
                                  const std::string &desc) {
            fn(c->name() + "." + path, dist, desc);
        });
    }
}

bool
StatGroup::lookupScalar(const std::string &path, double &out) const
{
    auto dot = path.find('.');
    if (dot == std::string::npos) {
        for (const auto &s : _scalars) {
            if (s.name == path) {
                out = s.stat->value();
                return true;
            }
        }
        return false;
    }
    std::string head = path.substr(0, dot);
    std::string rest = path.substr(dot + 1);
    for (const auto *c : _children) {
        if (c->name() == head)
            return c->lookupScalar(rest, out);
    }
    return false;
}

} // namespace tmi::stats
