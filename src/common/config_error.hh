/**
 * @file
 * Structured configuration-error reporting.
 *
 * Validators collect ConfigError records -- one per violated
 * constraint, each naming the offending field -- instead of calling
 * fatal() at the first problem. tmi::Config::validate() aggregates
 * every subsystem's validator into one list a caller can inspect;
 * component constructors keep their historical fail-fast behaviour
 * through fatalIfConfigErrors(), now a thin wrapper over the same
 * validators.
 */

#ifndef TMI_COMMON_CONFIG_ERROR_HH
#define TMI_COMMON_CONFIG_ERROR_HH

#include <string>
#include <vector>

#include "common/logging.hh"

namespace tmi
{

/** One violated configuration constraint. */
struct ConfigError
{
    /** Dotted field path, e.g. "TmiConfig.robust.watchdogTimeout". */
    std::string field;
    /** What is wrong and why it matters. */
    std::string message;
};

/** One error per line as "field: message". */
inline std::string
formatConfigErrors(const std::vector<ConfigError> &errors)
{
    std::string out;
    for (const ConfigError &err : errors) {
        if (!out.empty())
            out += '\n';
        out += err.field;
        out += ": ";
        out += err.message;
    }
    return out;
}

/**
 * The historical fatal() path as a thin wrapper: exit with every
 * collected error listed, or do nothing if the list is empty.
 */
inline void
fatalIfConfigErrors(const std::vector<ConfigError> &errors)
{
    if (errors.empty())
        return;
    fatal("invalid configuration:\n%s",
          formatConfigErrors(errors).c_str());
}

} // namespace tmi

#endif // TMI_COMMON_CONFIG_ERROR_HH
