/**
 * @file
 * Status and error reporting helpers in the gem5 style.
 *
 * panic() is for internal invariant violations (a Tmi bug); it aborts.
 * fatal() is for unrecoverable user/configuration errors; it exits.
 * warn() and inform() report conditions without stopping execution.
 */

#ifndef TMI_COMMON_LOGGING_HH
#define TMI_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace tmi
{

/** Verbosity levels for runtime status messages. */
enum class LogLevel
{
    Quiet,   //!< errors only
    Normal,  //!< warn + inform
    Verbose  //!< everything, including debug trace
};

/** Set the global verbosity for warn()/inform()/debugTrace(). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Report an internal invariant violation and abort.
 *
 * Use when something happened that should never happen regardless of
 * configuration: a genuine Tmi bug.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-level error and exit(1).
 *
 * Use for bad configuration or invalid arguments, not simulator bugs.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Alert the user to suspicious but survivable behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a normal informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a verbose-only trace message. */
void debugTrace(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list ap);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace tmi

/**
 * Runtime assertion that survives NDEBUG builds.
 *
 * Prefer this over assert() for invariants whose violation would
 * silently corrupt simulation results.
 */
#define TMI_ASSERT(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::tmi::panic("assertion '%s' failed at %s:%d", #cond,       \
                         __FILE__, __LINE__);                           \
        }                                                               \
    } while (0)

#endif // TMI_COMMON_LOGGING_HH
