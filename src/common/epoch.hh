/**
 * @file
 * The global invalidation epoch governing the access-path caches.
 *
 * Every event that can change how a virtual address translates or
 * how the runtime hooks treat an access -- page protection, COW
 * servicing, address-space clones, T2P rebinds, PTSB commits, ladder
 * rung changes, LASER store-buffer arm/disarm -- bumps this counter.
 * The AccessPipeline tags everything it caches with the epoch value
 * and revalidates lazily on mismatch, so a bump is O(1) no matter
 * how much is cached.
 *
 * The rule for new code (DESIGN.md section 4d): if a mutation can
 * change the result of Mmu::translate or of any RuntimeHooks query
 * the pipeline snapshots, it must bump the epoch. Bumping too often
 * only costs cache misses; bumping too rarely serves stale
 * translations, which is a correctness bug.
 */

#ifndef TMI_COMMON_EPOCH_HH
#define TMI_COMMON_EPOCH_HH

#include <cstdint>

namespace tmi
{

/** Monotonic generation counter for access-path cache validity. */
class InvalidationEpoch
{
  public:
    /** Invalidate every cache entry tagged with an older value. */
    void bump() { ++_value; }

    std::uint64_t value() const { return _value; }

  private:
    /** Starts at 1 so zero-initialized tags are stale from birth. */
    std::uint64_t _value = 1;
};

} // namespace tmi

#endif // TMI_COMMON_EPOCH_HH
