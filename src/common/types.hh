/**
 * @file
 * Fundamental types and machine constants shared by every Tmi module.
 *
 * The simulated machine uses 64-bit virtual and physical addresses,
 * 64-byte cache lines, and either 4 KB standard pages or 2 MB huge
 * pages, matching the Haswell systems the paper evaluates on.
 */

#ifndef TMI_COMMON_TYPES_HH
#define TMI_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace tmi
{

/** A virtual or physical byte address in the simulated machine. */
using Addr = std::uint64_t;

/** A simulated-time duration or timestamp, in core clock cycles. */
using Cycles = std::uint64_t;

/** Identifier of a simulated hardware core. */
using CoreId = std::uint32_t;

/** Identifier of a simulated application thread. */
using ThreadId = std::uint32_t;

/** Identifier of a simulated process (address space). */
using ProcessId = std::uint32_t;

/** A virtual page number (address >> page shift). */
using VPage = std::uint64_t;

/** A physical page frame number. */
using PPage = std::uint64_t;

/** Log2 of the coherence granularity: 64-byte cache lines. */
constexpr unsigned lineShift = 6;

/** Size of a cache line in bytes. */
constexpr Addr lineBytes = Addr{1} << lineShift;

/** Log2 of the standard (small) page size: 4 KB. */
constexpr unsigned smallPageShift = 12;

/** Size of a standard page in bytes. */
constexpr Addr smallPageBytes = Addr{1} << smallPageShift;

/** Log2 of the huge page size: 2 MB (MAP_HUGE_2MB). */
constexpr unsigned hugePageShift = 21;

/** Size of a huge page in bytes. */
constexpr Addr hugePageBytes = Addr{1} << hugePageShift;

/** An invalid/unmapped physical page marker. */
constexpr PPage invalidPPage = ~PPage{0};

/** An invalid process id (e.g. a failed address-space clone). */
constexpr ProcessId invalidProcessId = ~ProcessId{0};

/** Extract the cache-line-aligned base of an address. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~(lineBytes - 1);
}

/** Extract the cache line number of an address. */
constexpr Addr
lineNumber(Addr a)
{
    return a >> lineShift;
}

/** Offset of an address within its cache line. */
constexpr unsigned
lineOffset(Addr a)
{
    return static_cast<unsigned>(a & (lineBytes - 1));
}

/** Round @p a up to the next multiple of @p align (a power of two). */
constexpr Addr
roundUp(Addr a, Addr align)
{
    return (a + align - 1) & ~(align - 1);
}

/** Round @p a down to a multiple of @p align (a power of two). */
constexpr Addr
roundDown(Addr a, Addr align)
{
    return a & ~(align - 1);
}

/** True if @p a is a power of two (and nonzero). */
constexpr bool
isPowerOf2(Addr a)
{
    return a != 0 && (a & (a - 1)) == 0;
}

/** Floor of log2 of @p a; a must be nonzero. */
constexpr unsigned
floorLog2(Addr a)
{
    unsigned l = 0;
    while (a >>= 1)
        ++l;
    return l;
}

} // namespace tmi

#endif // TMI_COMMON_TYPES_HH
