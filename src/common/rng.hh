/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * Every source of randomness in the simulator is seeded explicitly so
 * that experiments are exactly reproducible run-to-run. The generator
 * is xoshiro256**, which is fast and has good statistical quality.
 */

#ifndef TMI_COMMON_RNG_HH
#define TMI_COMMON_RNG_HH

#include <cstdint>

namespace tmi
{

/** Seedable xoshiro256** generator. */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : s)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for workload generation purposes.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t s[4];
};

} // namespace tmi

#endif // TMI_COMMON_RNG_HH
