/**
 * @file
 * A small statistics package in the spirit of gem5's Stats.
 *
 * Components register named statistics with a StatGroup; groups nest to
 * form a tree (machine -> core -> cache, runtime -> detector, ...). At
 * the end of a run the tree can be dumped as text or harvested
 * programmatically by the experiment driver.
 */

#ifndef TMI_COMMON_STATS_HH
#define TMI_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace tmi::stats
{

/** A monotonically accumulating scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator=(double v) { _value = v; return *this; }

    double value() const { return _value; }
    void reset() { _value = 0; }

  private:
    double _value = 0;
};

/** Running mean / min / max / count over observed samples. */
class Distribution
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        if (_count == 0 || v < _min)
            _min = v;
        if (_count == 0 || v > _max)
            _max = v;
        _sum += v;
        _sumSq += v * v;
        ++_count;
    }

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

    /** Population variance of the observed samples. */
    double
    variance() const
    {
        if (_count == 0)
            return 0.0;
        double m = mean();
        return _sumSq / _count - m * m;
    }

    void
    reset()
    {
        _count = 0;
        _sum = _sumSq = 0.0;
        _min = _max = 0.0;
    }

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _sumSq = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * A named collection of statistics with nested child groups.
 *
 * Groups do not own the registered Scalars/Distributions; the owning
 * component must outlive the group's last dump.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    /** Register a scalar under @p name with a one-line description. */
    void
    addScalar(const std::string &name, const Scalar *s,
              const std::string &desc)
    {
        _scalars.push_back({name, desc, s});
    }

    /** Register a distribution under @p name. */
    void
    addDistribution(const std::string &name, const Distribution *d,
                    const std::string &desc)
    {
        _dists.push_back({name, desc, d});
    }

    /** Attach a child group; the child must outlive this group. */
    void addChild(const StatGroup *child) { _children.push_back(child); }

    const std::string &name() const { return _name; }

    /** Dump this group and all children as indented text. */
    void dump(std::ostream &os, int indent = 0) const;

    /**
     * Find a scalar's current value by dotted path relative to this
     * group, e.g. "core0.l1.hitmEvents".
     *
     * @retval true if found, with the value stored in @p out.
     */
    bool lookupScalar(const std::string &path, double &out) const;

    /** Visitor over every scalar in the tree, depth first. @p fn is
     *  called with the dotted path relative to (and excluding) this
     *  group's own name, the current value, and the description.
     *  This is the generic bridge that lets external consumers (the
     *  obs::MetricsRegistry in particular) ingest any component's
     *  registered statistics without per-class export code. */
    void visitScalars(
        const std::function<void(const std::string &path, double value,
                                 const std::string &desc)> &fn) const;

    /** Visitor over every distribution in the tree, depth first. */
    void visitDistributions(
        const std::function<void(const std::string &path,
                                 const Distribution &dist,
                                 const std::string &desc)> &fn) const;

  private:
    struct NamedScalar
    {
        std::string name;
        std::string desc;
        const Scalar *stat;
    };

    struct NamedDist
    {
        std::string name;
        std::string desc;
        const Distribution *stat;
    };

    std::string _name;
    std::vector<NamedScalar> _scalars;
    std::vector<NamedDist> _dists;
    std::vector<const StatGroup *> _children;
};

} // namespace tmi::stats

#endif // TMI_COMMON_STATS_HH
