#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace tmi
{

namespace
{
/// Atomic: sweep workers read the level while a host main thread may
/// still be configuring it.
std::atomic<LogLevel> globalLevel = LogLevel::Normal;
} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
debugTrace(const char *fmt, ...)
{
    if (globalLevel != LogLevel::Verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "trace: %s\n", msg.c_str());
}

} // namespace tmi
