#include "ptsb.hh"

#include <cstring>

#include "fault/fault_injector.hh"

namespace tmi
{

Ptsb::Ptsb(Mmu &mmu, ProcessId pid, const PtsbCosts &costs,
           CacheSim *cache, FaultInjector *faults)
    : _mmu(mmu), _pid(pid), _costs(costs), _cache(cache),
      _faults(faults)
{
}

Cycles
Ptsb::protectPage(VPage vpage)
{
    if (_protected.count(vpage))
        return 0;
    _mmu.protectPrivateCow(_pid, vpage);
    _protected.emplace(vpage, true);
    return _costs.protectPage;
}

void
Ptsb::unprotectPage(VPage vpage)
{
    auto it = _protected.find(vpage);
    if (it == _protected.end())
        return;
    TMI_ASSERT(_twins.find(vpage) == _twins.end(),
               "unprotect of a dirty PTSB page; commit first");
    _mmu.unprotect(_pid, vpage);
    _protected.erase(it);
}

void
Ptsb::forgetPage(VPage vpage)
{
    TMI_ASSERT(_twins.find(vpage) == _twins.end(),
               "forget of a dirty PTSB page");
    _protected.erase(vpage);
}

Cycles
Ptsb::dissolve()
{
    CommitResult res = commit();
    Cycles cost = res.cost;
    for (const auto &[vpage, armed] : _protected) {
        (void)armed;
        _mmu.unprotect(_pid, vpage);
        cost += _costs.unprotectPage;
    }
    _protected.clear();
    return cost;
}

bool
Ptsb::isProtected(VPage vpage) const
{
    return _protected.count(vpage) != 0;
}

CowOutcome
Ptsb::onCowFault(VPage vpage, PPage shared_frame, PPage private_frame)
{
    TMI_ASSERT(_protected.count(vpage), "COW fault on unprotected page");
    TMI_ASSERT(_twins.find(vpage) == _twins.end(),
               "double COW fault without commit");

    if (_faults &&
        _faults->shouldFail(faultpoint::ptsbTwinAllocFail)) {
        // Under memory pressure the twin snapshot cannot be taken;
        // report failure so the MMU abandons the divergence and the
        // page falls back to direct shared writes.
        ++_statTwinAllocFails;
        return {0, false};
    }

    Twin twin;
    twin.sharedFrame = shared_frame;
    twin.privateFrame = private_frame;

    // The twin is the shared page's contents at fault time -- the
    // same snapshot the private frame starts from, so diff(private,
    // twin) is exactly the bytes this process wrote since.
    const Addr page_bytes = _mmu.pageBytes();
    twin.snapshot.resize(page_bytes);
    const std::uint8_t *shared = _mmu.phys().framePtrIfTouched(shared_frame);
    if (shared)
        std::memcpy(twin.snapshot.data(), shared, page_bytes);
    else
        std::memset(twin.snapshot.data(), 0, page_bytes);

    _twins.emplace(vpage, std::move(twin));
    ++_statTwinsCreated;

    Cycles chunks = page_bytes / smallPageBytes;
    if (chunks == 0)
        chunks = 1;
    return {_costs.twinCopyPer4k * chunks, true};
}

CommitResult
Ptsb::commit()
{
    CommitResult res;
    ++_statCommits;
    if (_twins.empty())
        return res; // clean PTSB: the commit is free
    res.cost = _costs.commitBase;

    const Addr page_bytes = _mmu.pageBytes();
    const bool huge = page_bytes > smallPageBytes;
    const std::size_t chunk = smallPageBytes;

    for (auto &[vpage, twin] : _twins) {
        ++res.pagesDiffed;
        ++_statPagesDiffed;

        std::uint8_t *priv = _mmu.phys().framePtr(twin.privateFrame);
        std::uint8_t *shared = _mmu.phys().framePtr(twin.sharedFrame);
        const std::uint8_t *snap = twin.snapshot.data();

        Addr changed_line = ~Addr{0};
        for (std::size_t base = 0; base < page_bytes; base += chunk) {
            if (huge) {
                // Huge-page optimization: compare 4 KB regions with
                // memcmp before descending to bytes (section 4.4).
                res.cost += _costs.memcmpPer4k;
                if (std::memcmp(priv + base, snap + base, chunk) == 0)
                    continue;
            }
            res.cost += _costs.diffPer4k;
            for (std::size_t i = 0; i < chunk; ++i) {
                std::size_t off = base + i;
                if (priv[off] == snap[off])
                    continue;
                // Merge must change only the bytes identified by the
                // diff; touching identical bytes would fabricate
                // stores the program never performed (section 2.2).
                if (shared[off] != snap[off])
                    ++res.conflictBytes; // racy concurrent merge
                shared[off] = priv[off];
                ++res.bytesChanged;
                Addr line = (twin.sharedFrame * page_bytes + off) >>
                            lineShift;
                if (line != changed_line) {
                    changed_line = line;
                    ++res.linesMerged;
                    res.cost += _costs.mergePerLine;
                    if (_cache)
                        _cache->invalidateLine(line << lineShift);
                }
            }
        }

        // Step 5 of Figure 2: drop the mutable copy and twin so the
        // page is read-only again and re-twins on the next write.
        _mmu.dropPrivateFrame(_pid, vpage);
    }

    _statBytesMerged += static_cast<double>(res.bytesChanged);
    _statConflictBytes += static_cast<double>(res.conflictBytes);
    _twins.clear();

    if (_faults &&
        _faults->shouldFail(faultpoint::ptsbOversizeCommit)) {
        // Pathological commit (evicted twins, cold caches): the same
        // merge costs dramatically more. The effectiveness monitor is
        // what must notice this and un-repair.
        res.cost *= _costs.oversizeFactor;
        ++_statOversizeCommits;
    }
    return res;
}

std::uint64_t
Ptsb::twinBytes() const
{
    return static_cast<std::uint64_t>(_twins.size()) * _mmu.pageBytes();
}

void
Ptsb::regStats(stats::StatGroup &group)
{
    group.addScalar("commits", &_statCommits, "PTSB commit operations");
    group.addScalar("pagesDiffed", &_statPagesDiffed,
                    "pages diffed across all commits");
    group.addScalar("bytesMerged", &_statBytesMerged,
                    "changed bytes merged into shared memory");
    group.addScalar("twinsCreated", &_statTwinsCreated,
                    "twin snapshots taken (COW faults)");
    group.addScalar("conflictBytes", &_statConflictBytes,
                    "racy-merge bytes (nonzero implies a data race)");
    group.addScalar("twinAllocFails", &_statTwinAllocFails,
                    "twin allocations that failed (injected)");
    group.addScalar("oversizeCommits", &_statOversizeCommits,
                    "commits with injected pathological cost");
}

} // namespace tmi
