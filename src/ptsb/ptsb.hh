/**
 * @file
 * The page twinning store buffer (PTSB), paper section 2.2 / 3.3.
 *
 * One Ptsb instance serves one converted process (one isolated
 * thread). Protected pages are PrivateCow in the process's address
 * space: the first write faults, and the fault handler snapshots the
 * shared page as the *twin* while the MMU gives the process a private
 * mutable copy. At each synchronization operation commit() diffs each
 * mutable page against its twin, merges exactly the changed bytes
 * into shared memory, and re-arms the page.
 *
 * Merging only the changed bytes is what makes the PTSB cheap -- and
 * what breaks aligned multi-byte store atomicity (AMBSA) under data
 * races (Figure 3): a racy 2-byte store whose low byte matches the
 * twin merges as a 1-byte store. That behaviour is genuine here, not
 * modeled; the consistency tests rely on it.
 */

#ifndef TMI_PTSB_PTSB_HH
#define TMI_PTSB_PTSB_HH

#include <unordered_map>
#include <vector>

#include "cache/cache_sim.hh"
#include "mem/mmu.hh"

namespace tmi
{

/** Cycle costs of PTSB maintenance operations. */
struct PtsbCosts
{
    Cycles protectPage = 700;    //!< mprotect + TLB shootdown, per page
    Cycles unprotectPage = 700;  //!< mprotect back + shootdown, per page
    Cycles twinCopyPer4k = 500;  //!< copying one 4 KB chunk at fault
    Cycles diffPer4k = 400;      //!< scanning one 4 KB chunk at commit
    Cycles memcmpPer4k = 90;     //!< huge-page memcmp pre-filter per 4 KB
    Cycles mergePerLine = 45;    //!< writing one changed line + coherence
    Cycles commitBase = 150;     //!< fixed cost per dirty commit
    /** Cost multiplier when the ptsb.oversize_commit fault fires
     *  (cold caches / pathological diff). */
    Cycles oversizeFactor = 64;

    bool operator==(const PtsbCosts &) const = default;
};

/** Result of one commit. */
struct CommitResult
{
    Cycles cost = 0;
    std::uint64_t pagesDiffed = 0;
    std::uint64_t bytesChanged = 0;
    std::uint64_t linesMerged = 0;
    /**
     * Bytes this commit overwrote that some other process had
     * already changed since our twin was taken (shared[i] != twin[i]
     * at merge time). Nonzero conflicts mean concurrent conflicting
     * writes reached the same bytes through two PTSBs -- a data race
     * whose merge order is arbitrary. Useful as an online AMBSA /
     * racy-merge diagnostic (Lemma 3.1: race-free programs never
     * produce conflicts).
     */
    std::uint64_t conflictBytes = 0;
};

/** A per-process page twinning store buffer. */
class Ptsb
{
  public:
    /**
     * @param cache optional: merged lines are invalidated there so
     *              commit's coherence traffic is visible to timing.
     * @param faults optional fault injector (twin allocation failure,
     *               oversized commits).
     */
    Ptsb(Mmu &mmu, ProcessId pid, const PtsbCosts &costs = {},
         CacheSim *cache = nullptr, FaultInjector *faults = nullptr);

    ProcessId pid() const { return _pid; }

    /**
     * Protect @p vpage: subsequent writes by this process are
     * buffered until the next commit.
     * @return the cost to charge (0 if already protected).
     */
    Cycles protectPage(VPage vpage);

    /** Stop buffering @p vpage (changes must be committed first). */
    void unprotectPage(VPage vpage);

    /**
     * Drop @p vpage from the protected set without touching the MMU.
     *
     * Used when the MMU already reverted the page to SharedRW after
     * an unserviceable COW fault; the page must not hold a twin.
     */
    void forgetPage(VPage vpage);

    /**
     * Tear the whole buffer down: commit outstanding twins, then
     * unprotect every page (un-repair / rollback path).
     *
     * @return the total cycle cost (commit + per-page mprotect).
     */
    Cycles dissolve();

    /** True if @p vpage is currently under the PTSB. */
    bool isProtected(VPage vpage) const;

    /**
     * COW-fault hook: snapshot the twin for @p vpage.
     *
     * Wired to the Mmu's CowCallback by the runtime; must be called
     * exactly when the private frame is created.
     * @return cost of the fault + twin copy to charge the faulting
     *         thread; `ok == false` when the twin allocation failed
     *         (injected), in which case no twin was taken and the
     *         MMU must abandon the COW.
     */
    CowOutcome onCowFault(VPage vpage, PPage shared_frame,
                          PPage private_frame);

    /**
     * Diff every dirty page against its twin, merge changed bytes
     * into shared memory, drop private frames, and re-arm.
     *
     * Huge pages are pre-filtered 4 KB at a time with memcmp before
     * byte-level diffing (paper section 4.4).
     */
    CommitResult commit();

    /** Number of pages currently protected. */
    std::size_t protectedPages() const { return _protected.size(); }

    /** Number of pages with an outstanding (uncommitted) twin. */
    std::size_t dirtyPages() const { return _twins.size(); }

    /** Bytes of twin snapshots currently held (Figure 8 accounting). */
    std::uint64_t twinBytes() const;

    /** Total commits performed. */
    std::uint64_t commits() const
    {
        return static_cast<std::uint64_t>(_statCommits.value());
    }

    /** Lifetime racy-merge bytes (see CommitResult::conflictBytes). */
    std::uint64_t conflictBytes() const
    {
        return static_cast<std::uint64_t>(_statConflictBytes.value());
    }

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    struct Twin
    {
        std::vector<std::uint8_t> snapshot;
        PPage sharedFrame = invalidPPage;
        PPage privateFrame = invalidPPage;
    };

    Mmu &_mmu;
    ProcessId _pid;
    PtsbCosts _costs;
    CacheSim *_cache;
    FaultInjector *_faults;

    std::unordered_map<VPage, bool> _protected;
    std::unordered_map<VPage, Twin> _twins;

    stats::Scalar _statCommits;
    stats::Scalar _statPagesDiffed;
    stats::Scalar _statBytesMerged;
    stats::Scalar _statTwinsCreated;
    stats::Scalar _statConflictBytes;
    stats::Scalar _statTwinAllocFails;
    stats::Scalar _statOversizeCommits;
};

} // namespace tmi

#endif // TMI_PTSB_PTSB_HH
