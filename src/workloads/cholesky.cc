#include "cholesky.hh"

namespace tmi
{

void
CholeskyWorkload::init(Machine &machine)
{
    InstructionTable &instrs = machine.instructions();
    _pcScratchLoad = instrs.define("cholesky.scratch.load",
                                   MemKind::Load, 8);
    _pcScratchStore = instrs.define("cholesky.scratch.store",
                                    MemKind::Store, 8);
    _pcFlagLoad = instrs.define("cholesky.flag.load", MemKind::Load, 8);
    _pcFlagStore = instrs.define("cholesky.flag.store",
                                 MemKind::Store, 8);
    _pcDoneStore = instrs.define("cholesky.done.store",
                                 MemKind::Store, 8);
}

void
CholeskyWorkload::main(ThreadApi &api)
{
    unsigned threads = std::max(2u, _params.threads);
    _phase1Iters = 20000 * _params.scale;

    // Scratch slots (8 B per thread, packed -- the false sharing
    // that triggers protection) and the volatile flag share a page.
    _page = api.malloc(256);
    api.fill(_page, 0, 256);
    _flag = _page + 8 * threads;

    _done = api.memalign(lineBytes, lineBytes);
    api.fill(_done, 0, lineBytes);

    _barrier = api.malloc(lineBytes);
    api.barrierInit(_barrier, threads);

    std::vector<ThreadId> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.push_back(api.spawn(
            "cholesky-" + std::to_string(t),
            [this, t](ThreadApi &wapi) { worker(wapi, t); }));
    }
    for (ThreadId t : workers)
        api.join(t);
}

void
CholeskyWorkload::worker(ThreadApi &api, unsigned t)
{
    Addr slot = _page + t * 8;

    // Phase 1: false sharing on the packed scratch slots, long
    // enough for a detector to notice and protect the page.
    for (std::uint64_t i = 0; i < _phase1Iters; ++i) {
        std::uint64_t v = api.load(_pcScratchLoad, slot);
        api.store(_pcScratchStore, slot, v + 1);
    }

    // Phase 2: volatile-flag handshake with NO synchronization
    // between the scratch write and the flag accesses. Code-centric
    // consistency treats the volatile accesses as an asm region.
    if (t == 0) {
        std::uint64_t v = api.load(_pcScratchLoad, slot);
        api.store(_pcScratchStore, slot, v + 1); // page now dirty

        // while (!flag) {} -- simplified from mf.C:135-156.
        while (true) {
            api.enterAsm();
            std::uint64_t f = api.load(_pcFlagLoad, _flag);
            api.exitAsm();
            if (f != 0)
                break;
            api.compute(500);
        }
        api.store(_pcDoneStore, _done, 1);
    } else if (t == 1) {
        std::uint64_t v = api.load(_pcScratchLoad, slot);
        api.store(_pcScratchStore, slot, v + 1);

        api.compute(20000); // let t0 reach the spin first
        api.enterAsm();
        api.store(_pcFlagStore, _flag, 1);
        api.exitAsm();
    }

    api.barrierWait(_barrier);
}

bool
CholeskyWorkload::validate(Machine &machine)
{
    // If the handshake hung, the run times out before this; the done
    // marker is belt-and-braces.
    return machine.peekShared(_done, 8) == 1;
}

} // namespace tmi
