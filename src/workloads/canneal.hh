/**
 * @file
 * PARSEC canneal's atomic element swaps (Figure 11).
 *
 * Threads repeatedly swap two random netlist slots using lock-free
 * claims built from inline-assembly atomics (canneal's
 * atomic-pointer implementation): each slot is claimed with a CAS to
 * a sentinel, both values are exchanged, and the claims released.
 * Natively this is linearizable, so the multiset of elements -- and
 * therefore their sum -- is invariant.
 *
 * Under a PTSB without code-centric consistency the CAS operates on
 * the thread's private page copy: two threads can claim the same
 * slot in their own copies, and the later diff/merge replicates one
 * element and loses another, exactly the corruption of Figure 11.
 * With code-centric consistency Tmi runs the asm region directly on
 * shared memory and the invariant holds.
 */

#ifndef TMI_WORKLOADS_CANNEAL_HH
#define TMI_WORKLOADS_CANNEAL_HH

#include "workloads/workload.hh"

namespace tmi
{

/** PARSEC canneal stand-in focused on its atomic swaps. */
class CannealWorkload : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "canneal"; }

    void init(Machine &machine) override;
    void main(ThreadApi &api) override;
    bool validate(Machine &machine) override;

  private:
    void worker(ThreadApi &api, unsigned t);

    Addr _pcSlotCas = 0;
    Addr _pcSlotLoad = 0;
    Addr _pcSlotStore = 0;
    Addr _pcCostLoad = 0;
    Addr _pcCostStore = 0;

    Addr _slots = 0;   //!< netlist element grid
    Addr _costs = 0;   //!< per-thread cost accumulators (padded)
    std::uint64_t _slotCount = 0;
    std::uint64_t _swapsPerThread = 0;
    std::uint64_t _expectedSum = 0;
};

} // namespace tmi

#endif // TMI_WORKLOADS_CANNEAL_HH
