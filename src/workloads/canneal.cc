#include "canneal.hh"

namespace tmi
{

namespace
{
/// Claim marker: no real element uses this value.
constexpr std::uint64_t sentinel = ~std::uint64_t{0};
} // namespace

void
CannealWorkload::init(Machine &machine)
{
    InstructionTable &instrs = machine.instructions();
    _pcSlotCas = instrs.define("canneal.slot.cas", MemKind::Store, 8);
    _pcSlotLoad = instrs.define("canneal.slot.load", MemKind::Load, 8);
    _pcSlotStore = instrs.define("canneal.slot.store", MemKind::Store, 8);
    _pcCostLoad = instrs.define("canneal.cost.load", MemKind::Load, 8);
    _pcCostStore = instrs.define("canneal.cost.store", MemKind::Store, 8);
}

void
CannealWorkload::main(ThreadApi &api)
{
    unsigned threads = _params.threads;
    // A large netlist spreads the swap traffic thin: real canneal's
    // contention never concentrates enough per page to cross Tmi's
    // repair threshold (section 4.5).
    _slotCount = 131072;
    _swapsPerThread = 6000 * _params.scale;

    _slots = api.malloc(_slotCount * 8);
    std::vector<std::uint64_t> init(_slotCount);
    _expectedSum = 0;
    for (std::uint64_t i = 0; i < _slotCount; ++i) {
        init[i] = i + 1;
        _expectedSum += i + 1;
    }
    api.writeBuf(_slots, init.data(), init.size() * 8);

    _costs = api.memalign(lineBytes, lineBytes * threads);
    api.fill(_costs, 0, lineBytes * threads);

    std::vector<ThreadId> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.push_back(api.spawn(
            "canneal-" + std::to_string(t),
            [this, t](ThreadApi &wapi) { worker(wapi, t); }));
    }
    for (ThreadId t : workers)
        api.join(t);
}

void
CannealWorkload::worker(ThreadApi &api, unsigned t)
{
    Rng &rng = api.rng();
    Addr cost_slot = _costs + t * lineBytes;

    for (std::uint64_t i = 0; i < _swapsPerThread; ++i) {
        std::uint64_t ia = rng.below(_slotCount);
        std::uint64_t ib = rng.below(_slotCount);
        if (ia == ib)
            continue;
        if (ia > ib)
            std::swap(ia, ib); // address order avoids deadlock
        Addr slot_a = _slots + ia * 8;
        Addr slot_b = _slots + ib * 8;

        // canneal's pointer swap: inline-assembly atomics.
        api.enterAsm();
        std::uint64_t va = api.atomicLoad(_pcSlotLoad, slot_a);
        if (va == sentinel || !api.cas(_pcSlotCas, slot_a, va, sentinel)) {
            api.exitAsm();
            --i; // retry the swap
            continue;
        }
        std::uint64_t vb = api.atomicLoad(_pcSlotLoad, slot_b);
        if (vb == sentinel || !api.cas(_pcSlotCas, slot_b, vb, sentinel)) {
            // Release the first claim and retry.
            api.atomicStore(_pcSlotStore, slot_a, va);
            api.exitAsm();
            --i;
            continue;
        }
        api.atomicStore(_pcSlotStore, slot_a, vb);
        api.atomicStore(_pcSlotStore, slot_b, va);
        api.exitAsm();

        // Annealing cost bookkeeping in padded per-thread slots.
        std::uint64_t c = api.load(_pcCostLoad, cost_slot);
        api.store(_pcCostStore, cost_slot, c + (va ^ vb));
    }
}

bool
CannealWorkload::validate(Machine &machine)
{
    // The multiset of elements is invariant under correct swaps: the
    // sum matches and no claim sentinel is left behind.
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < _slotCount; ++i) {
        std::uint64_t v = machine.peekShared(_slots + i * 8, 8);
        if (v == sentinel)
            return false;
        sum += v;
    }
    return sum == _expectedSum;
}

} // namespace tmi
