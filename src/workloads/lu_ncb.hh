/**
 * @file
 * SPLASH-2 lu (non-contiguous blocks), with its allocator-dependent
 * false sharing.
 *
 * The daxpy inner loop updates per-thread accumulator buffers that
 * the program allocates as separate 32-byte mallocs from the main
 * thread. Under an allocator that packs small objects contiguously
 * (the baseline's 32-byte size class puts two buffers per cache
 * line), adjacent threads' daxpy updates false-share. Tmi's modified
 * allocator hands out small objects at cache-line granularity, so
 * running under any Tmi mode repairs the bug with no PTSB at all --
 * "automatically repaired by changing the allocator" (section 4.3).
 *
 * The manual fix uses posix_memalign per buffer.
 */

#ifndef TMI_WORKLOADS_LU_NCB_HH
#define TMI_WORKLOADS_LU_NCB_HH

#include "workloads/workload.hh"

namespace tmi
{

/** SPLASH-2 lu-ncb. */
class LuNcbWorkload : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "lu-ncb"; }

    void init(Machine &machine) override;
    void main(ThreadApi &api) override;
    bool validate(Machine &machine) override;
    std::uint64_t resultDigest(Machine &machine) override;

  private:
    void worker(ThreadApi &api, unsigned t);

    Addr _pcMatLoad = 0;
    Addr _pcAccLoad = 0;
    Addr _pcAccStore = 0;

    Addr _matrix = 0;
    std::vector<Addr> _accBufs; //!< one 32 B buffer per thread
    Addr _barrier = 0;
    std::uint64_t _n = 0;     //!< matrix dimension
    std::uint64_t _iters = 0; //!< daxpy sweeps
};

} // namespace tmi

#endif // TMI_WORKLOADS_LU_NCB_HH
