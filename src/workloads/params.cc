#include "workloads/params.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace tmi
{

namespace
{

std::string
trimCopy(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
parseU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty() ||
        !std::isdigit(static_cast<unsigned char>(text[0]))) {
        return false;
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0')
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

bool
parseDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == text.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

std::string
joinList(const std::vector<std::string> &items)
{
    std::string out;
    for (const std::string &item : items) {
        if (!out.empty())
            out += ", ";
        out += item;
    }
    return out;
}

} // namespace

const char *
paramTypeName(ParamType type)
{
    switch (type) {
      case ParamType::Int: return "int";
      case ParamType::Double: return "double";
      case ParamType::Bool: return "bool";
      case ParamType::Enum: return "enum";
    }
    return "?";
}

std::string
ParamSpec::defaultText() const
{
    switch (type) {
      case ParamType::Int:
        return std::to_string(defaultInt);
      case ParamType::Double: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%g", defaultDouble);
        return buf;
      }
      case ParamType::Bool:
        return defaultBool ? "true" : "false";
      case ParamType::Enum:
        return defaultEnum;
    }
    return "";
}

ParamSchema &
ParamSchema::intKnob(std::string name, std::uint64_t def,
                     std::string desc)
{
    ParamSpec spec;
    spec.name = std::move(name);
    spec.type = ParamType::Int;
    spec.defaultInt = def;
    spec.desc = std::move(desc);
    _specs.push_back(std::move(spec));
    return *this;
}

ParamSchema &
ParamSchema::doubleKnob(std::string name, double def, std::string desc)
{
    ParamSpec spec;
    spec.name = std::move(name);
    spec.type = ParamType::Double;
    spec.defaultDouble = def;
    spec.desc = std::move(desc);
    _specs.push_back(std::move(spec));
    return *this;
}

ParamSchema &
ParamSchema::boolKnob(std::string name, bool def, std::string desc)
{
    ParamSpec spec;
    spec.name = std::move(name);
    spec.type = ParamType::Bool;
    spec.defaultBool = def;
    spec.desc = std::move(desc);
    _specs.push_back(std::move(spec));
    return *this;
}

ParamSchema &
ParamSchema::enumKnob(std::string name, std::string def,
                      std::vector<std::string> values, std::string desc)
{
    ParamSpec spec;
    spec.name = std::move(name);
    spec.type = ParamType::Enum;
    spec.defaultEnum = std::move(def);
    spec.enumValues = std::move(values);
    spec.desc = std::move(desc);
    _specs.push_back(std::move(spec));
    return *this;
}

const ParamSpec *
ParamSchema::find(const std::string &name) const
{
    for (const ParamSpec &spec : _specs) {
        if (spec.name == name)
            return &spec;
    }
    return nullptr;
}

std::string
ParamSchema::validKeyList() const
{
    std::vector<std::string> names;
    names.reserve(_specs.size());
    for (const ParamSpec &spec : _specs)
        names.push_back(spec.name);
    return joinList(names);
}

std::uint64_t
ParamValues::getInt(const std::string &name) const
{
    auto it = _values.find(name);
    return it == _values.end() ? 0 : it->second.i;
}

double
ParamValues::getDouble(const std::string &name) const
{
    auto it = _values.find(name);
    return it == _values.end() ? 0.0 : it->second.d;
}

bool
ParamValues::getBool(const std::string &name) const
{
    auto it = _values.find(name);
    return it == _values.end() ? false : it->second.b;
}

const std::string &
ParamValues::getEnum(const std::string &name) const
{
    static const std::string empty;
    auto it = _values.find(name);
    return it == _values.end() ? empty : it->second.e;
}

void
ParamValues::set(const std::string &name, ParamValue value)
{
    _values[name] = std::move(value);
}

bool
parseParamAssignment(const std::string &text,
                     std::pair<std::string, std::string> &out,
                     std::string &err)
{
    std::size_t eq = text.find('=');
    if (eq == std::string::npos) {
        err = "'" + text + "' is not of the form key=value";
        return false;
    }
    out.first = trimCopy(text.substr(0, eq));
    out.second = trimCopy(text.substr(eq + 1));
    if (out.first.empty()) {
        err = "'" + text + "' has an empty parameter key";
        return false;
    }
    return true;
}

bool
resolveParams(const ParamSchema &schema, const RawParams &raw,
              ParamValues &out, std::string &err)
{
    // Defaults first; overlays below replace them knob by knob.
    for (const ParamSpec &spec : schema.specs()) {
        ParamValue v;
        v.type = spec.type;
        v.i = spec.defaultInt;
        v.d = spec.defaultDouble;
        v.b = spec.defaultBool;
        v.e = spec.defaultEnum;
        out.set(spec.name, std::move(v));
    }

    for (const auto &[key, text] : raw) {
        const ParamSpec *spec = schema.find(key);
        if (!spec) {
            if (schema.empty()) {
                err = "unknown parameter '" + key +
                      "': this workload takes no parameters";
            } else {
                err = "unknown parameter '" + key +
                      "'; valid keys are: " + schema.validKeyList();
            }
            return false;
        }
        ParamValue v;
        v.type = spec->type;
        switch (spec->type) {
          case ParamType::Int:
            if (!parseU64(text, v.i)) {
                err = "parameter '" + key + "' wants an unsigned "
                      "integer, got '" + text + "'";
                return false;
            }
            break;
          case ParamType::Double:
            if (!parseDouble(text, v.d)) {
                err = "parameter '" + key + "' wants a number, got '" +
                      text + "'";
                return false;
            }
            break;
          case ParamType::Bool:
            if (text == "true" || text == "1") {
                v.b = true;
            } else if (text == "false" || text == "0") {
                v.b = false;
            } else {
                err = "parameter '" + key + "' wants true/false, "
                      "got '" + text + "'";
                return false;
            }
            break;
          case ParamType::Enum:
            if (std::find(spec->enumValues.begin(),
                          spec->enumValues.end(),
                          text) == spec->enumValues.end()) {
                err = "parameter '" + key + "' wants one of {" +
                      joinList(spec->enumValues) + "}, got '" + text +
                      "'";
                return false;
            }
            v.e = text;
            break;
        }
        out.set(key, std::move(v));
    }
    return true;
}

std::string
canonicalParamText(const RawParams &raw)
{
    if (raw.empty())
        return "-";
    RawParams sorted = raw;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    std::string out;
    for (const auto &[key, value] : sorted) {
        if (!out.empty())
            out += ";";
        out += key + "=" + value;
    }
    return out;
}

} // namespace tmi
