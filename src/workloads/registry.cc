/**
 * @file
 * Registry of all 35 evaluation programs plus cholesky.
 */

#include "workloads/workload.hh"

#include "workloads/boost_micro.hh"
#include "workloads/canneal.hh"
#include "workloads/cholesky.hh"
#include "workloads/generic_kernel.hh"
#include "workloads/histogram.hh"
#include "workloads/leveldb.hh"
#include "workloads/linear_regression.hh"
#include "workloads/lu_ncb.hh"
#include "workloads/server/feed_handler.hh"
#include "workloads/stringmatch.hh"

#include <tuple>

namespace tmi
{

namespace
{

/**
 * Factory binding constructor arguments. The arguments are captured
 * once in a shared tuple instead of a by-value lambda capture, so
 * copying the std::function (registry lookups hand WorkloadInfo
 * around by value in the driver) shares the bound state rather than
 * deep-copying it per copy.
 */
template <typename T, typename... Args>
WorkloadFactory
makeFactory(Args &&...args)
{
    auto held = std::make_shared<std::tuple<std::decay_t<Args>...>>(
        std::forward<Args>(args)...);
    return [held](const WorkloadParams &params) {
        return std::apply(
            [&params](const auto &...a) {
                return std::make_unique<T>(params, a...);
            },
            *held);
    };
}

std::vector<WorkloadInfo>
buildRegistry()
{
    std::vector<WorkloadInfo> reg;

    auto add_generic = [&reg](const KernelSpec &spec,
                              bool uses_atomics_or_asm) {
        WorkloadInfo info;
        info.name = spec.name;
        info.make = [spec](const WorkloadParams &params) {
            return std::make_unique<GenericKernelWorkload>(params, spec);
        };
        info.knownFalseSharing = false;
        info.inOverheadSet = true;
        info.usesAtomicsOrAsm = uses_atomics_or_asm;
        reg.push_back(std::move(info));
    };

    // Figure 7 order: PARSEC, then Phoenix, then Splash2x, then
    // leveldb and the Boost microbenchmarks.
    const auto &specs = kernelSpecs();
    auto spec = [&specs](const char *name) -> const KernelSpec & {
        for (const auto &s : specs) {
            if (std::string(s.name) == name)
                return s;
        }
        fatal("unknown kernel spec '%s'", name);
    };

    add_generic(spec("blackscholes"), false);
    add_generic(spec("bodytrack"), false);
    reg.push_back({"canneal", makeFactory<CannealWorkload>(), false,
                   true, true});
    add_generic(spec("dedup"), true);
    add_generic(spec("facesim"), false);
    add_generic(spec("ferret"), false);
    add_generic(spec("fluidanimate"), false);
    add_generic(spec("streamcluster"), false);
    add_generic(spec("swaptions"), false);

    reg.push_back({"histogram", makeFactory<HistogramWorkload>(false),
                   true, true, false});
    reg.push_back({"histogramfs", makeFactory<HistogramWorkload>(true),
                   true, true, false});
    add_generic(spec("kmeans"), false);
    reg.push_back({"lreg", makeFactory<LinearRegressionWorkload>(),
                   true, true, false});
    add_generic(spec("matrix"), false);
    add_generic(spec("pca"), false);
    add_generic(spec("reverse"), false);
    reg.push_back({"stringmatch", makeFactory<StringMatchWorkload>(),
                   true, true, false});
    add_generic(spec("wordcount"), false);

    add_generic(spec("barnes"), false);
    add_generic(spec("fft"), false);
    add_generic(spec("fmm"), false);
    add_generic(spec("lu-cb"), false);
    reg.push_back({"lu-ncb", makeFactory<LuNcbWorkload>(), true, true,
                   false});
    add_generic(spec("ocean-cp"), false);
    add_generic(spec("ocean-ncp"), false);
    add_generic(spec("radiosity"), false);
    add_generic(spec("radix"), false);
    add_generic(spec("raytrace"), false);
    add_generic(spec("volrend"), false);
    add_generic(spec("water-nsquare"), false);
    add_generic(spec("water-spatial"), false);

    reg.push_back({"leveldb", makeFactory<LevelDbWorkload>(), true,
                   true, true});
    {
        // Declares small_slots (the malloc-placement sweep's knob),
        // so it needs the schema field the aggregate inits leave
        // defaulted.
        WorkloadInfo info;
        info.name = "spinlockpool";
        info.make = makeFactory<SpinlockPoolWorkload>();
        info.knownFalseSharing = true;
        info.inOverheadSet = true;
        info.usesAtomicsOrAsm = false;
        info.schema = SpinlockPoolWorkload::schema();
        reg.push_back(std::move(info));
    }
    reg.push_back({"shptr-relaxed", makeFactory<SharedPtrWorkload>(false),
                   true, true, true});
    reg.push_back({"shptr-lock", makeFactory<SharedPtrWorkload>(true),
                   true, true, false});

    // cholesky: excluded from the timing set (section 4.1) but used
    // for the Figure 12 consistency case study.
    reg.push_back({"cholesky", makeFactory<CholeskyWorkload>(), false,
                   false, true});

    // The server family: request/response feed handlers driven by
    // the open-loop traffic generator. Not part of the paper's
    // 35-workload overhead set; not in the Figure 9 set either (the
    // repairable cell -- packed stat counters -- is deliberate, but
    // the figure list is pinned to the paper). Atomics-based ring
    // protocols make them Sheriff-incompatible by design.
    auto add_feed = [&reg](const char *fname, bool spmc) {
        WorkloadInfo info;
        info.name = fname;
        info.make = makeFactory<FeedHandlerWorkload>(spmc);
        info.knownFalseSharing = false;
        info.inOverheadSet = false;
        info.usesAtomicsOrAsm = true;
        info.family = "server";
        info.schema = FeedHandlerWorkload::schema();
        reg.push_back(std::move(info));
    };
    add_feed("feed-spsc", false);
    add_feed("feed-spmc", true);

    return reg;
}

} // namespace

const std::vector<WorkloadInfo> &
workloadRegistry()
{
    static const std::vector<WorkloadInfo> registry = buildRegistry();
    return registry;
}

const WorkloadInfo *
tryFindWorkload(const std::string &name)
{
    for (const auto &info : workloadRegistry()) {
        if (info.name == name)
            return &info;
    }
    return nullptr;
}

const WorkloadInfo &
findWorkload(const std::string &name)
{
    if (const WorkloadInfo *info = tryFindWorkload(name))
        return *info;
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::string>
workloadFamilies()
{
    std::vector<std::string> out;
    for (const auto &info : workloadRegistry()) {
        bool seen = false;
        for (const auto &f : out)
            seen = seen || f == info.family;
        if (!seen)
            out.push_back(info.family);
    }
    return out;
}

std::vector<std::string>
workloadsInFamily(const std::string &family)
{
    std::vector<std::string> out;
    for (const auto &info : workloadRegistry()) {
        if (info.family == family)
            out.push_back(info.name);
    }
    return out;
}

} // namespace tmi
