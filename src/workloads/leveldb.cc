#include "leveldb.hh"

namespace tmi
{

namespace
{
constexpr std::uint64_t emptyKey = 0;
/// Compaction's claim marker; no real key uses it.
constexpr std::uint64_t claimKey = ~std::uint64_t{0};
/// Keyspace is larger than the table so probe chains overlap.
constexpr std::uint64_t keySpace = 1024;

std::uint64_t
hashKey(std::uint64_t key)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    return key;
}

std::uint64_t
valueFor(std::uint64_t key)
{
    return key * 31 + 1;
}
} // namespace

void
LevelDbWorkload::init(Machine &machine)
{
    InstructionTable &instrs = machine.instructions();
    _pcSlotKeyLoad = instrs.define("leveldb.slot.key.load",
                                   MemKind::Load, 8);
    _pcSlotKeyCas = instrs.define("leveldb.slot.key.cas",
                                  MemKind::Store, 8);
    _pcSlotValLoad = instrs.define("leveldb.slot.val.load",
                                   MemKind::Load, 8);
    _pcSlotValStore = instrs.define("leveldb.slot.val.store",
                                    MemKind::Store, 8);
    _pcCountLoad = instrs.define("leveldb.count.load", MemKind::Load, 8);
    _pcCountStore = instrs.define("leveldb.count.store",
                                  MemKind::Store, 8);
    _pcVersionLoad = instrs.define("leveldb.version.load",
                                   MemKind::Load, 8);
    _pcVersionCas = instrs.define("leveldb.version.cas",
                                  MemKind::Store, 8);
    _pcQueueStore = instrs.define("leveldb.queue.store",
                                  MemKind::Store, 8);
    _pcQueueLoad = instrs.define("leveldb.queue.load", MemKind::Load, 8);
}

void
LevelDbWorkload::main(ThreadApi &api)
{
    unsigned threads = _params.threads;
    _opsPerThread = 12000 * _params.scale;
    _buckets = 2048;

    _table = api.malloc(_buckets * 16);
    api.fill(_table, 0, _buckets * 16);

    // The injected bug: per-thread stat counters (ops, bytes,
    // micros) packed back to back -- 24 bytes per thread, so up to
    // two threads and a neighbour's counters share each line.
    // Manual fix: one cache line per thread.
    _counterStride = _params.manualFix ? lineBytes : statSlots * 8;
    _counters = _params.manualFix
                    ? api.memalign(lineBytes, _counterStride * threads)
                    : api.malloc(_counterStride * threads + 8) + 8;
    api.fill(_counters, 0, _counterStride * threads);

    _version = api.memalign(lineBytes, lineBytes);
    api.fill(_version, 0, lineBytes);

    _queue = api.memalign(lineBytes, queueSlots * 8);
    api.fill(_queue, 0, queueSlots * 8);
    _queueLock = api.memalign(lineBytes, lineBytes);
    api.mutexInit(_queueLock);

    std::vector<ThreadId> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.push_back(api.spawn(
            "leveldb-" + std::to_string(t),
            [this, t](ThreadApi &wapi) { worker(wapi, t); }));
    }
    for (ThreadId t : workers)
        api.join(t);
}

void
LevelDbWorkload::put(ThreadApi &api, std::uint64_t key,
                     std::uint64_t value)
{
    std::uint64_t bucket = hashKey(key) & (_buckets - 1);
    // Lock-free put-if-absent, like a memtable skiplist insert:
    // probe with relaxed atomic loads, claim an empty slot with a
    // CAS, publish the value exactly once. Code-centric consistency
    // services the relaxed operations without any PTSB flush.
    for (std::uint64_t probe = 0; probe < _buckets; ++probe) {
        Addr slot = _table + ((bucket + probe) & (_buckets - 1)) * 16;
        std::uint64_t k = api.atomicLoad(_pcSlotKeyLoad, slot,
                                         MemOrder::Relaxed);
        if (k == key)
            break; // already present; values never change
        if (k == emptyKey) {
            if (api.cas(_pcSlotKeyCas, slot, emptyKey, key,
                        MemOrder::SeqCst)) {
                api.atomicStore(_pcSlotValStore, slot + 8, value,
                                MemOrder::Relaxed);
                break;
            }
            // Lost the claim race: re-check this slot.
            --probe;
            continue;
        }
    }
}

std::uint64_t
LevelDbWorkload::get(ThreadApi &api, std::uint64_t key)
{
    std::uint64_t bucket = hashKey(key) & (_buckets - 1);
    std::uint64_t value = 0;
    for (std::uint64_t probe = 0; probe < _buckets; ++probe) {
        Addr slot = _table + ((bucket + probe) & (_buckets - 1)) * 16;
        std::uint64_t k = api.atomicLoad(_pcSlotKeyLoad, slot,
                                         MemOrder::Relaxed);
        if (k == emptyKey)
            break;
        if (k == key) {
            value = api.atomicLoad(_pcSlotValLoad, slot + 8,
                                   MemOrder::Relaxed);
            break;
        }
    }
    return value;
}

void
LevelDbWorkload::compactionSwap(ThreadApi &api, Rng &rng)
{
    // Background compaction relocates entries: claim two slots with
    // the asm-atomic protocol, exchange them, release.
    std::uint64_t ia = rng.below(_buckets);
    std::uint64_t ib = rng.below(_buckets);
    if (ia == ib)
        return;
    if (ia > ib)
        std::swap(ia, ib);
    Addr slot_a = _table + ia * 16;
    Addr slot_b = _table + ib * 16;

    api.enterAsm();
    // Only fully published entries move: a nonzero value means the
    // inserting put has completed, and values are immutable after
    // publication, so the claimed entries are stable.
    std::uint64_t ka = api.atomicLoad(_pcSlotKeyLoad, slot_a,
                                      MemOrder::Relaxed);
    std::uint64_t va = api.atomicLoad(_pcSlotValLoad, slot_a + 8,
                                      MemOrder::Relaxed);
    if (ka == claimKey || ka == emptyKey || va == 0 ||
        !api.cas(_pcSlotKeyCas, slot_a, ka, claimKey)) {
        api.exitAsm();
        return;
    }
    std::uint64_t kb = api.atomicLoad(_pcSlotKeyLoad, slot_b,
                                      MemOrder::Relaxed);
    std::uint64_t vb = api.atomicLoad(_pcSlotValLoad, slot_b + 8,
                                      MemOrder::Relaxed);
    if (kb == claimKey || kb == emptyKey || vb == 0 ||
        !api.cas(_pcSlotKeyCas, slot_b, kb, claimKey)) {
        api.atomicStore(_pcSlotKeyCas, slot_a, ka); // release
        api.exitAsm();
        return;
    }
    api.atomicStore(_pcSlotValStore, slot_a + 8, vb,
                    MemOrder::Relaxed);
    api.atomicStore(_pcSlotValStore, slot_b + 8, va,
                    MemOrder::Relaxed);
    api.atomicStore(_pcSlotKeyCas, slot_a, kb);
    api.atomicStore(_pcSlotKeyCas, slot_b, ka);
    api.exitAsm();
}

void
LevelDbWorkload::bumpCounters(ThreadApi &api, unsigned t,
                              std::uint64_t bytes)
{
    // The injected bug: three plain read-modify-writes per
    // operation on the packed per-thread stat counters.
    Addr base = _counters + t * _counterStride;
    std::uint64_t deltas[statSlots] = {1, bytes, 7};
    for (unsigned s = 0; s < statSlots; ++s) {
        Addr slot = base + s * 8;
        std::uint64_t v = api.load(_pcCountLoad, slot);
        api.store(_pcCountStore, slot, v + deltas[s]);
    }
}

void
LevelDbWorkload::worker(ThreadApi &api, unsigned t)
{
    Rng &rng = api.rng();
    for (std::uint64_t i = 0; i < _opsPerThread; ++i) {
        std::uint64_t key = 1 + rng.below(keySpace);
        if (rng.chance(0.1))
            put(api, key, valueFor(key));
        else
            (void)get(api, key);
        bumpCounters(api, t, 16);

        if (i % 64 == 0) {
            // Version check on the read path (asm atomics).
            api.enterAsm();
            api.atomicLoad(_pcVersionLoad, _version,
                           MemOrder::Relaxed);
            api.exitAsm();
        }
        if (t == 0 && i % 128 == 0)
            compactionSwap(api, rng);

        if (i % 32 == 0) {
            // Group-commit write queue: heavily synchronized, true
            // sharing under the queue lock.
            api.mutexLock(_queueLock);
            Addr slot = _queue + (i % queueSlots) * 8;
            std::uint64_t old = api.load(_pcQueueLoad, slot);
            api.store(_pcQueueStore, slot, old + key);
            api.mutexUnlock(_queueLock);
        }
    }
}

bool
LevelDbWorkload::validate(Machine &machine)
{
    // The injected op counters must account for every operation.
    std::uint64_t total = 0;
    for (unsigned t = 0; t < _params.threads; ++t)
        total += machine.peekShared(_counters + t * _counterStride, 8);
    if (total != _opsPerThread * _params.threads)
        return false;

    // Table invariants: no claim marker left behind; every stored
    // key is a real key and its value is consistent with it. (A key
    // may legitimately appear twice if a put raced a compaction
    // relocation, but both copies must carry the right value.)
    for (std::uint64_t b = 0; b < _buckets; ++b) {
        std::uint64_t k = machine.peekShared(_table + b * 16, 8);
        if (k == emptyKey)
            continue;
        if (k == claimKey || k > keySpace)
            return false;
        std::uint64_t v = machine.peekShared(_table + b * 16 + 8, 8);
        if (v != valueFor(k))
            return false;
    }
    return true;
}

} // namespace tmi
