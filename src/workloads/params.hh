/**
 * @file
 * Typed per-workload parameter schema.
 *
 * `scale` used to be the only input knob, so workloads overloaded it
 * (array length here, iteration count there). Server workloads need
 * genuinely independent knobs -- arrival gap, burst size, ring
 * capacity -- so each WorkloadInfo now declares a ParamSchema of
 * named, typed knobs with defaults, and WorkloadParams carries the
 * validated values. Raw key=value pairs flow in from `experiment_cli
 * --param k=v` and sweep spec files; resolveParams() checks them
 * against the schema (unknown or ill-typed keys fail with the list
 * of valid keys) and fills defaults for everything unset. Workloads
 * without a schema reject every key, so the legacy surface is
 * unchanged.
 */

#ifndef TMI_WORKLOADS_PARAMS_HH
#define TMI_WORKLOADS_PARAMS_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace tmi
{

/** Value type of one declared workload knob. */
enum class ParamType
{
    Int,    //!< unsigned 64-bit integer
    Double, //!< floating point
    Bool,   //!< true/false (also accepts 1/0)
    Enum,   //!< one of a fixed set of strings
};

/** Type name for messages and --list-workloads ("int", "enum", ...). */
const char *paramTypeName(ParamType type);

/** One declared knob: name, type, default, one-line description. */
struct ParamSpec
{
    std::string name;
    ParamType type = ParamType::Int;
    std::string desc;
    std::uint64_t defaultInt = 0;
    double defaultDouble = 0.0;
    bool defaultBool = false;
    std::string defaultEnum;
    /** Legal values when type == ParamType::Enum. */
    std::vector<std::string> enumValues;

    /** Default value rendered as spec-file text ("600", "steady"). */
    std::string defaultText() const;
};

/** A workload's declared knobs, in declaration order. */
class ParamSchema
{
  public:
    ParamSchema &intKnob(std::string name, std::uint64_t def,
                         std::string desc);
    ParamSchema &doubleKnob(std::string name, double def,
                            std::string desc);
    ParamSchema &boolKnob(std::string name, bool def, std::string desc);
    ParamSchema &enumKnob(std::string name, std::string def,
                          std::vector<std::string> values,
                          std::string desc);

    const std::vector<ParamSpec> &specs() const { return _specs; }
    bool empty() const { return _specs.empty(); }

    /** Spec for @p name, or null if undeclared. */
    const ParamSpec *find(const std::string &name) const;

    /** Comma-joined knob names for "valid keys are ..." messages. */
    std::string validKeyList() const;

  private:
    std::vector<ParamSpec> _specs;
};

/** One validated value; carries the slot for each possible type. */
struct ParamValue
{
    ParamType type = ParamType::Int;
    std::uint64_t i = 0;
    double d = 0.0;
    bool b = false;
    std::string e;

    bool operator==(const ParamValue &) const = default;
};

/** Validated knob values, defaults included for every declared knob. */
class ParamValues
{
  public:
    bool empty() const { return _values.empty(); }

    std::uint64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getBool(const std::string &name) const;
    const std::string &getEnum(const std::string &name) const;

    void set(const std::string &name, ParamValue value);

    bool operator==(const ParamValues &) const = default;

  private:
    std::map<std::string, ParamValue> _values;
};

/** Raw, unvalidated key=value pairs in the order they were given. */
using RawParams = std::vector<std::pair<std::string, std::string>>;

/**
 * Split one "key=value" assignment (as given to --param). Leading and
 * trailing whitespace around both halves is trimmed.
 * @retval false with @p err set when there is no '=' or an empty key.
 */
bool parseParamAssignment(const std::string &text,
                          std::pair<std::string, std::string> &out,
                          std::string &err);

/**
 * Validate @p raw against @p schema and produce the full value set:
 * every declared knob gets its default, then raw pairs overlay in
 * order (later duplicates win). Unknown keys and ill-typed values
 * fail with a message naming the valid keys (or legal enum values).
 * A workload with an empty schema rejects any key.
 */
bool resolveParams(const ParamSchema &schema, const RawParams &raw,
                   ParamValues &out, std::string &err);

/**
 * Canonical text form of a raw param list: "k=v;k=v" sorted by key
 * (stable for equal keys), or "-" when empty. This is what the sweep
 * CSV's `params` column holds, and parsing each ';'-separated
 * assignment back yields an equivalent list -- the round-trip the
 * param tests pin.
 */
std::string canonicalParamText(const RawParams &raw);

} // namespace tmi

#endif // TMI_WORKLOADS_PARAMS_HH
