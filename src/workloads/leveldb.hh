/**
 * @file
 * A miniature leveldb-like key-value store (the paper's real-world
 * workload), with the injected false sharing bug.
 *
 * Like real leveldb, the memtable read/insert paths are lock-free:
 * gets traverse with relaxed atomic loads and puts claim slots with
 * CAS, both implemented with leveldb's inline-assembly atomic
 * pointers (asm regions). A background "compaction" (thread 0)
 * relocates entries with the same claim protocol. Writes also pass
 * through a heavily synchronized group-commit queue (the std::deque
 * the paper found minor, true-sharing-dominated contention in).
 *
 * The injected bug matches the paper's: each thread keeps per-thread
 * stats (ops, bytes, micros) that the buggy version packs into
 * adjacent cache lines; the manual fix pads them.
 *
 * The lock-free CAS protocol is exactly what a Sheriff-style PTSB
 * breaks: claims made on private page copies collide and the merge
 * interleaves keys and values from different puts.
 */

#ifndef TMI_WORKLOADS_LEVELDB_HH
#define TMI_WORKLOADS_LEVELDB_HH

#include "workloads/workload.hh"

namespace tmi
{

/** leveldb-mini with injected per-thread counter false sharing. */
class LevelDbWorkload : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "leveldb"; }

    void init(Machine &machine) override;
    void main(ThreadApi &api) override;
    bool validate(Machine &machine) override;

  private:
    void worker(ThreadApi &api, unsigned t);
    void put(ThreadApi &api, std::uint64_t key, std::uint64_t value);
    std::uint64_t get(ThreadApi &api, std::uint64_t key);
    void compactionSwap(ThreadApi &api, Rng &rng);
    void bumpCounters(ThreadApi &api, unsigned t,
                      std::uint64_t bytes);

    Addr _pcSlotKeyLoad = 0;
    Addr _pcSlotKeyCas = 0;
    Addr _pcSlotValLoad = 0;
    Addr _pcSlotValStore = 0;
    Addr _pcCountLoad = 0;
    Addr _pcCountStore = 0;
    Addr _pcVersionLoad = 0;
    Addr _pcVersionCas = 0;
    Addr _pcQueueStore = 0;
    Addr _pcQueueLoad = 0;

    static constexpr std::uint64_t queueSlots = 64;
    /** Per-thread stat counters: ops, bytes, micros. */
    static constexpr unsigned statSlots = 3;

    Addr _table = 0;       //!< (key, value) u64 pairs
    Addr _counters = 0;    //!< per-thread stat counters (the bug)
    Addr _version = 0;     //!< atomic version (asm region)
    Addr _queue = 0;       //!< group-commit write queue ring
    Addr _queueLock = 0;
    std::uint64_t _buckets = 0;
    std::uint64_t _counterStride = 0;
    std::uint64_t _opsPerThread = 0;
};

} // namespace tmi

#endif // TMI_WORKLOADS_LEVELDB_HH
