#include "lu_ncb.hh"

namespace tmi
{

void
LuNcbWorkload::init(Machine &machine)
{
    InstructionTable &instrs = machine.instructions();
    _pcMatLoad = instrs.define("lu.mat.load", MemKind::Load, 8);
    _pcAccLoad = instrs.define("lu.acc.load", MemKind::Load, 8);
    _pcAccStore = instrs.define("lu.acc.store", MemKind::Store, 8);
}

void
LuNcbWorkload::main(ThreadApi &api)
{
    unsigned threads = _params.threads;
    _n = 96;
    _iters = 30 * _params.scale;

    _matrix = api.malloc(_n * _n * 8);
    std::vector<std::uint64_t> init(_n * _n);
    for (std::uint64_t i = 0; i < init.size(); ++i)
        init[i] = i % 17 + 1;
    api.writeBuf(_matrix, init.data(), init.size() * 8);

    // One small accumulator buffer per thread, allocated in a burst
    // from the main thread exactly like lu-ncb's init code does. The
    // allocator's small-object policy decides whether these share
    // cache lines.
    _accBufs.clear();
    for (unsigned t = 0; t < threads; ++t) {
        Addr buf = _params.manualFix ? api.memalign(lineBytes, 32)
                                     : api.malloc(32);
        api.fill(buf, 0, 32);
        _accBufs.push_back(buf);
    }

    _barrier = api.malloc(lineBytes);
    api.barrierInit(_barrier, threads);

    std::vector<ThreadId> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.push_back(api.spawn(
            "lu-" + std::to_string(t),
            [this, t](ThreadApi &wapi) { worker(wapi, t); }));
    }
    for (ThreadId t : workers)
        api.join(t);
}

void
LuNcbWorkload::worker(ThreadApi &api, unsigned t)
{
    unsigned threads = _params.threads;
    std::uint64_t rows = _n / threads;
    std::uint64_t row0 = t * rows;
    Addr acc = _accBufs[t];

    for (std::uint64_t it = 0; it < _iters; ++it) {
        // daxpy sweep over this thread's rows, accumulating into the
        // thread's small buffer on every element.
        for (std::uint64_t r = row0; r < row0 + rows; ++r) {
            for (std::uint64_t c = 0; c < _n; ++c) {
                std::uint64_t v =
                    api.load(_pcMatLoad, _matrix + (r * _n + c) * 8);
                Addr slot = acc + (c % 4) * 8;
                std::uint64_t a = api.load(_pcAccLoad, slot);
                api.store(_pcAccStore, slot, a + v);
            }
        }
        api.barrierWait(_barrier);
    }
}

bool
LuNcbWorkload::validate(Machine &machine)
{
    // Each thread accumulated its rows' elements _iters times; the
    // grand total must match a host-side recomputation over the rows
    // that were actually assigned.
    std::uint64_t rows = _n / _params.threads;
    std::uint64_t expected = 0;
    for (std::uint64_t i = 0; i < _params.threads * rows * _n; ++i)
        expected += i % 17 + 1;
    expected *= _iters;

    std::uint64_t got = 0;
    for (unsigned t = 0; t < _params.threads; ++t) {
        for (unsigned s = 0; s < 4; ++s)
            got += machine.peekShared(_accBufs[t] + s * 8, 8);
    }
    return got == expected;
}

std::uint64_t
LuNcbWorkload::resultDigest(Machine &machine)
{
    std::uint64_t h = digestSeed;
    for (unsigned t = 0; t < _params.threads; ++t) {
        for (unsigned s = 0; s < 4; ++s)
            h = digestWord(h,
                           machine.peekShared(_accBufs[t] + s * 8,
                                              8));
    }
    return digestFinalize(h);
}

} // namespace tmi
