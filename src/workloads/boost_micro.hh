/**
 * @file
 * The Boost microbenchmarks (paper section 4.1, Figure 9 right).
 *
 * spinlockpool: boost::detail::spinlock_pool keeps 41 spinlocks in a
 * packed array, so locks protecting unrelated data share cache lines
 * and every lock CAS false-shares with its neighbours. Tmi fixes it
 * as a side effect of moving sync objects to process-shared memory
 * (one cache-line-sized object each); the manual fix pads the array.
 *
 * shptr-relaxed / shptr-lock: reference-counted smart-pointer
 * operations on one page while unrelated false sharing runs on a
 * separate page. The refcounts use relaxed atomics (Boost's default)
 * or a mutex. Under code-centric consistency relaxed atomics need no
 * PTSB flush, so Tmi repairs the false sharing at full speed; with a
 * mutex every acquire/release commits the PTSB and the repair gains
 * almost nothing (1.04x in the paper).
 */

#ifndef TMI_WORKLOADS_BOOST_MICRO_HH
#define TMI_WORKLOADS_BOOST_MICRO_HH

#include "workloads/workload.hh"

namespace tmi
{

/** boost::spinlock_pool false sharing. */
class SpinlockPoolWorkload : public Workload
{
  public:
    explicit SpinlockPoolWorkload(const WorkloadParams &params);

    const char *name() const override { return "spinlockpool"; }

    /** The declared knobs (registered in WorkloadInfo::schema). */
    static ParamSchema schema();

    void init(Machine &machine) override;
    void main(ThreadApi &api) override;
    bool validate(Machine &machine) override;
    std::uint64_t resultDigest(Machine &machine) override;

  private:
    void worker(ThreadApi &api, unsigned t);

    Addr _pcDataLoad = 0;
    Addr _pcDataStore = 0;

    Addr _locks = 0;     //!< packed lock array (41 x 40 B)
    Addr _data = 0;      //!< per-thread payload slots (padded)
    std::uint64_t _lockStride = 0;
    std::uint64_t _opsPerThread = 0;
    /** small_slots=1: each worker mallocs its own 8-byte payload
     *  slot, so the allocator's placement policy decides whether
     *  slots share cache lines (the malloc-placement sweep's knob;
     *  0 keeps the padded static layout and the legacy goldens). */
    bool _smallSlots = false;
    /** Worker-allocated slot addresses, indexed by worker (host
     *  bookkeeping for validate/digest; written before any lock
     *  traffic starts). */
    std::vector<Addr> _slots;
    static constexpr unsigned poolSize = 41;
};

/** Smart-pointer refcounts: relaxed atomics or mutex-protected. */
class SharedPtrWorkload : public Workload
{
  public:
    SharedPtrWorkload(const WorkloadParams &params, bool use_lock)
        : Workload(params), _useLock(use_lock)
    {}

    const char *
    name() const override
    {
        return _useLock ? "shptr-lock" : "shptr-relaxed";
    }

    void init(Machine &machine) override;
    void main(ThreadApi &api) override;
    bool validate(Machine &machine) override;
    std::uint64_t resultDigest(Machine &machine) override;

  private:
    void worker(ThreadApi &api, unsigned t);

    bool _useLock;
    Addr _pcFsLoad = 0;
    Addr _pcFsStore = 0;
    Addr _pcRefAdd = 0;
    Addr _pcRefLoad = 0;
    Addr _pcRefStore = 0;

    Addr _fsArray = 0;   //!< packed per-thread slots (the FS page)
    Addr _refcount = 0;  //!< shared refcount (separate page)
    Addr _refLock = 0;   //!< mutex for shptr-lock
    std::uint64_t _slotBytes = 0;
    std::uint64_t _opsPerThread = 0;
    /** Smart-pointer op every N false-sharing iterations. */
    static constexpr std::uint64_t refPeriod = 64;
};

} // namespace tmi

#endif // TMI_WORKLOADS_BOOST_MICRO_HH
