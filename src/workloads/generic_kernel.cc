#include "generic_kernel.hh"

namespace tmi
{

void
GenericKernelWorkload::init(Machine &machine)
{
    InstructionTable &instrs = machine.instructions();
    std::string base = _spec.name;
    _pcRead = instrs.define(base + ".read", MemKind::Load, 8);
    _pcWrite = instrs.define(base + ".write", MemKind::Store, 8);
    _pcHotLoad = instrs.define(base + ".hot.load", MemKind::Load, 8);
    _pcHotStore = instrs.define(base + ".hot.store", MemKind::Store, 8);
    _pcAtomic = instrs.define(base + ".atomic", MemKind::Store, 8);
    _pcDoneStore = instrs.define(base + ".done", MemKind::Store, 8);
}

void
GenericKernelWorkload::main(ThreadApi &api)
{
    unsigned threads = _params.threads;
    _iters = _spec.itersPerThread * _params.scale;

    std::uint64_t total = _spec.footprintKb * 1024;
    _partBytes = roundDown(total / threads, lineBytes);
    if (_partBytes < lineBytes)
        _partBytes = lineBytes;
    _data = api.memalign(lineBytes, _partBytes * threads);
    // First-touch initialization by the main thread, page-chunked.
    api.fill(_data, 1, _partBytes * threads);

    _hot = api.memalign(lineBytes, hotBytes);
    api.fill(_hot, 0, hotBytes);

    unsigned locks = std::max(1u, _spec.lockCount);
    if (_spec.sync == KernelSync::CoarseLock ||
        _spec.sync == KernelSync::FineLocks) {
        _locks = api.memalign(lineBytes, lineBytes * locks);
        for (unsigned i = 0; i < locks; ++i)
            api.mutexInit(_locks + i * lineBytes);
    }
    if (_spec.sync == KernelSync::Barrier) {
        _barrier = api.memalign(lineBytes, lineBytes);
        api.barrierInit(_barrier, threads);
    }
    if (_spec.atomics) {
        _atomicCtr = api.memalign(lineBytes, lineBytes);
        api.fill(_atomicCtr, 0, lineBytes);
    }

    _doneSlots = api.memalign(lineBytes, lineBytes * threads);
    api.fill(_doneSlots, 0, lineBytes * threads);

    std::vector<ThreadId> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.push_back(api.spawn(
            std::string(_spec.name) + "-" + std::to_string(t),
            [this, t](ThreadApi &wapi) { worker(wapi, t); }));
    }
    for (ThreadId t : workers)
        api.join(t);
}

void
GenericKernelWorkload::worker(ThreadApi &api, unsigned t)
{
    Rng &rng = api.rng();
    Addr part = _data + t * _partBytes;
    std::uint64_t part_slots = _partBytes / 8;
    std::uint64_t hot_slots = hotBytes / 8;
    unsigned locks = std::max(1u, _spec.lockCount);
    std::uint64_t wr_cursor = 0;

    for (std::uint64_t i = 0; i < _iters; ++i) {
        for (unsigned r = 0; r < _spec.partitionReads; ++r) {
            if (rng.uniform() < _spec.hotReadFrac) {
                api.load(_pcHotLoad, _hot + rng.below(hot_slots) * 8);
            } else {
                api.load(_pcRead, part + rng.below(part_slots) * 8);
            }
        }
        // Sequential partition stores, split only where the cursor
        // wraps so each run is a fixed-stride storeStream.
        for (std::uint64_t w = 0; w < _spec.partitionWrites;) {
            std::uint64_t start = wr_cursor % part_slots;
            std::uint64_t n =
                std::min<std::uint64_t>(_spec.partitionWrites - w,
                                        part_slots - start);
            api.storeStream(_pcWrite, part + start * 8, n, 8, i, 0);
            wr_cursor += n;
            w += n;
        }
        for (unsigned w = 0; w < _spec.hotWrites; ++w) {
            std::uint64_t idx = rng.below(hot_slots);
            Addr slot = _hot + idx * 8;
            if (_spec.sync == KernelSync::FineLocks) {
                Addr lock = _locks + (idx % locks) * lineBytes;
                api.mutexLock(lock);
                std::uint64_t v = api.load(_pcHotLoad, slot);
                api.store(_pcHotStore, slot, v + 1);
                api.mutexUnlock(lock);
            } else {
                std::uint64_t v = api.load(_pcHotLoad, slot);
                api.store(_pcHotStore, slot, v + 1);
            }
        }
        if (_spec.computeCycles)
            api.compute(_spec.computeCycles);

        if (_spec.allocEvery && i % _spec.allocEvery == 0) {
            // Allocation churn (dedup/wordcount-style): the arena
            // policy and per-op cost of the allocator show up here.
            Addr scratch = api.malloc(48);
            api.store(_pcWrite, scratch, i);
            api.free(scratch);
        }

        if (_spec.atomics && i % 16 == 0)
            api.fetchAdd(_pcAtomic, _atomicCtr, 1, MemOrder::SeqCst);

        if (_spec.asmRegions && i % 8 == 0) {
            // e.g. openssl's SHA rounds in dedup: compute inside an
            // inline-assembly region.
            api.enterAsm();
            api.compute(180);
            api.exitAsm();
        }

        if (_spec.syncEvery && i % _spec.syncEvery == 0) {
            switch (_spec.sync) {
              case KernelSync::CoarseLock: {
                api.mutexLock(_locks);
                std::uint64_t v = api.load(_pcHotLoad, _hot);
                api.store(_pcHotStore, _hot, v + 1);
                api.mutexUnlock(_locks);
                break;
              }
              case KernelSync::Barrier:
                api.barrierWait(_barrier);
                break;
              case KernelSync::FineLocks:
              case KernelSync::None:
                break;
            }
        }
    }
    api.store(_pcDoneStore, _doneSlots + t * lineBytes, _iters);
}

bool
GenericKernelWorkload::validate(Machine &machine)
{
    std::uint64_t total = 0;
    for (unsigned t = 0; t < _params.threads; ++t)
        total += machine.peekShared(_doneSlots + t * lineBytes, 8);
    return total == _iters * _params.threads;
}

const std::vector<KernelSpec> &
kernelSpecs()
{
    // Footprints are scaled-down stand-ins for the native inputs;
    // the *relative* footprint classes match the paper (ocean-ncp
    // largest; canneal/reverse/fft/fmm/radix page-fault heavy,
    // section 4.4). lockCount models sync-object populations
    // (fluidanimate and water-spatial use fine-grained locks, which
    // drives their Figure 8 memory overhead).
    static const std::vector<KernelSpec> specs = {
        {"blackscholes", 512, 6000, 4, 0.00, 2, 0, 120,
         KernelSync::None, 0, 1, 0, false, false},
        {"bodytrack", 1024, 4000, 4, 0.05, 2, 0, 90,
         KernelSync::Barrier, 128, 1, 0, false, false},
        {"dedup", 2048, 3500, 4, 0.05, 1, 1, 60,
         KernelSync::CoarseLock, 8, 1, 4, false, true},
        {"facesim", 1024, 4000, 5, 0.02, 3, 0, 110,
         KernelSync::Barrier, 256, 1, 0, false, false},
        {"ferret", 768, 3500, 4, 0.08, 1, 1, 80,
         KernelSync::CoarseLock, 16, 1, 8, false, false},
        {"fluidanimate", 1024, 3000, 3, 0.04, 2, 2, 50,
         KernelSync::FineLocks, 0, 2048, 0, false, false},
        {"streamcluster", 768, 4500, 6, 0.10, 1, 0, 70,
         KernelSync::Barrier, 64, 1, 0, false, false},
        {"swaptions", 256, 6000, 4, 0.00, 2, 0, 140,
         KernelSync::None, 0, 1, 0, false, false},
        {"kmeans", 512, 4000, 5, 0.15, 2, 2, 60,
         KernelSync::Barrier, 200, 1, 0, false, false},
        {"matrix", 768, 5000, 6, 0.00, 2, 0, 50,
         KernelSync::None, 0, 1, 0, false, false},
        {"pca", 512, 4500, 5, 0.02, 1, 0, 70,
         KernelSync::Barrier, 512, 1, 0, false, false},
        {"reverse", 16384, 9000, 3, 0.04, 3, 1, 40,
         KernelSync::FineLocks, 0, 256, 6, false, false},
        {"wordcount", 768, 4500, 4, 0.03, 2, 0, 50,
         KernelSync::CoarseLock, 512, 1, 4, false, false},
        {"barnes", 1024, 3500, 5, 0.08, 2, 1, 80,
         KernelSync::FineLocks, 0, 128, 24, false, false},
        {"fft", 12288, 9000, 4, 0.02, 3, 0, 60,
         KernelSync::Barrier, 128, 1, 0, false, false},
        {"fmm", 10240, 9000, 4, 0.05, 2, 1, 70,
         KernelSync::FineLocks, 0, 256, 32, false, false},
        {"lu-cb", 768, 4000, 4, 0.03, 2, 0, 60,
         KernelSync::Barrier, 96, 1, 0, false, false},
        {"ocean-cp", 8192, 9000, 5, 0.04, 3, 0, 50,
         KernelSync::Barrier, 64, 1, 0, false, false},
        {"ocean-ncp", 20480, 9000, 5, 0.04, 3, 0, 50,
         KernelSync::Barrier, 64, 1, 0, false, false},
        {"radiosity", 1024, 3500, 4, 0.06, 2, 1, 70,
         KernelSync::FineLocks, 0, 192, 16, false, false},
        {"radix", 14336, 9000, 3, 0.02, 4, 0, 40,
         KernelSync::Barrier, 96, 1, 0, false, false},
        {"raytrace", 1024, 3500, 6, 0.05, 1, 0, 90,
         KernelSync::None, 0, 1, 32, false, false},
        {"volrend", 768, 3500, 5, 0.05, 1, 1, 80,
         KernelSync::FineLocks, 0, 64, 24, false, false},
        {"water-nsquare", 768, 3500, 4, 0.04, 2, 1, 70,
         KernelSync::Barrier, 160, 1, 0, false, false},
        {"water-spatial", 768, 3500, 4, 0.04, 2, 1, 70,
         KernelSync::FineLocks, 0, 1536, 0, false, false},
    };
    return specs;
}

} // namespace tmi
