/**
 * @file
 * Phoenix histogram, with its known false sharing bug.
 *
 * Each thread scans a chunk of RGB pixels and increments its own
 * 768-counter block (256 per channel). The counter blocks for all
 * threads live in one allocation whose rows are not padded to cache
 * lines -- and the allocation is 8-byte skewed like the paper's
 * forced mis-alignment -- so the line at each row boundary is shared
 * between adjacent threads.
 *
 * The standard input (uniform random pixels) touches boundary
 * counters occasionally; the "fs" input concentrates pixel values on
 * r=0 / b=255 so adjacent threads hammer exactly the boundary line,
 * accentuating the bug (the paper's histogramfs image).
 *
 * The manual fix pads each thread's block to a cache-line multiple
 * and aligns the allocation.
 */

#ifndef TMI_WORKLOADS_HISTOGRAM_HH
#define TMI_WORKLOADS_HISTOGRAM_HH

#include "workloads/workload.hh"

namespace tmi
{

/** Phoenix histogram (standard or FS-accentuating input). */
class HistogramWorkload : public Workload
{
  public:
    HistogramWorkload(const WorkloadParams &params, bool fs_input)
        : Workload(params), _fsInput(fs_input)
    {}

    const char *
    name() const override
    {
        return _fsInput ? "histogramfs" : "histogram";
    }

    void init(Machine &machine) override;
    void main(ThreadApi &api) override;
    bool validate(Machine &machine) override;
    std::uint64_t resultDigest(Machine &machine) override;

  private:
    void worker(ThreadApi &api, unsigned t);

    bool _fsInput;
    Addr _pcPixelLoad = 0;
    Addr _pcCountLoad = 0;
    Addr _pcCountStore = 0;
    Addr _pcStageStore = 0;
    Addr _pcOutStore = 0;

    /** Map-reduce chunks; a barrier separates them. */
    static constexpr unsigned chunks = 8;

    Addr _pixels = 0;      //!< u32 packed rgb per pixel
    Addr _counts = 0;      //!< per-thread counter blocks
    Addr _output = 0;      //!< map-phase intermediate output
    Addr _staging = 0;     //!< per-thread reduce staging (paged)
    Addr _barrier = 0;
    std::uint64_t _pixelsPerThread = 0;
    std::uint64_t _rowBytes = 0; //!< stride between thread blocks
    std::uint64_t _stageBytes = 0;
    std::uint64_t _totalPixels = 0;
};

} // namespace tmi

#endif // TMI_WORKLOADS_HISTOGRAM_HH
