/**
 * @file
 * SPLASH-2 cholesky's volatile-flag synchronization (Figure 12).
 *
 * Old C code synchronizes with a volatile flag: thread 1 stores to
 * the flag and thread 0 busy-waits on it. Phase 1 makes every thread
 * dirty its scratch slot on the flag's page (creating false sharing
 * that gets the page protected); then, with no intervening
 * synchronization, thread 0 dirties its slot again and spins reading
 * the flag while thread 1 sets it.
 *
 * Natively the store becomes visible and the loop exits. Under a
 * PTSB without code-centric consistency thread 1's store sits in its
 * private copy (and thread 0 reads its own stale copy), so the loop
 * never exits -- the run times out, reproducing the paper's "sheriff
 * hangs on cholesky". With code-centric consistency the volatile
 * accesses are treated as an assembly region and operate on shared
 * memory directly.
 */

#ifndef TMI_WORKLOADS_CHOLESKY_HH
#define TMI_WORKLOADS_CHOLESKY_HH

#include "workloads/workload.hh"

namespace tmi
{

/** SPLASH-2 cholesky stand-in focused on its flag-based sync. */
class CholeskyWorkload : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "cholesky"; }

    void init(Machine &machine) override;
    void main(ThreadApi &api) override;
    bool validate(Machine &machine) override;

  private:
    void worker(ThreadApi &api, unsigned t);

    Addr _pcScratchLoad = 0;
    Addr _pcScratchStore = 0;
    Addr _pcFlagLoad = 0;
    Addr _pcFlagStore = 0;
    Addr _pcDoneStore = 0;

    Addr _page = 0;    //!< scratch slots + flag, all on one page
    Addr _flag = 0;
    Addr _done = 0;    //!< completion marker (padded, separate)
    Addr _barrier = 0;
    std::uint64_t _phase1Iters = 0;
};

} // namespace tmi

#endif // TMI_WORKLOADS_CHOLESKY_HH
