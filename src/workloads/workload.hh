/**
 * @file
 * Workload framework: the evaluation programs from the paper.
 *
 * Each workload registers its static memory instructions (so the
 * detector can disassemble PEBS PCs), then runs as a simulated main
 * thread that allocates its data, spawns workers, and joins them.
 * validate() checks results after the run -- this is how baseline
 * incompatibilities (Sheriff corrupting canneal, Figure 11) surface
 * as measurements instead of assertions.
 */

#ifndef TMI_WORKLOADS_WORKLOAD_HH
#define TMI_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "obs/metrics.hh"
#include "workloads/params.hh"

namespace tmi
{

/** Knobs common to every workload. */
struct WorkloadParams
{
    unsigned threads = 4;
    /** Input-size multiplier: tests use 1, benches use more. */
    std::uint64_t scale = 1;
    /** Apply the manual source-level fix (padding/alignment). */
    bool manualFix = false;
    std::uint64_t seed = 7;
    /**
     * Workload-specific knobs, validated against the workload's
     * ParamSchema with defaults filled in. Empty for workloads that
     * declare no schema -- and possibly for direct construction in
     * tests, so workloads re-resolve defaults when handed an empty
     * set.
     */
    ParamValues extra;
};

/** Initial value for resultDigest() accumulation (FNV-1a offset). */
inline constexpr std::uint64_t digestSeed = 0xcbf29ce484222325ULL;

/** Fold one 64-bit output word into a running FNV-1a digest. */
inline std::uint64_t
digestWord(std::uint64_t h, std::uint64_t v)
{
    for (unsigned byte = 0; byte < 8; ++byte) {
        h ^= (v >> (byte * 8)) & 0xff;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Map an accumulated digest away from 0 ("no digest defined"). */
inline std::uint64_t
digestFinalize(std::uint64_t h)
{
    return h == 0 ? 1 : h;
}

/** Base class for all evaluation programs. */
class Workload
{
  public:
    explicit Workload(const WorkloadParams &params) : _params(params) {}
    virtual ~Workload() = default;

    /** Workload name as it appears in the paper's figures. */
    virtual const char *name() const = 0;

    /**
     * Register static instructions and stash their PCs. Called once,
     * before the machine starts running.
     */
    virtual void init(Machine &machine) = 0;

    /**
     * Body of the simulated main thread: allocate and initialize
     * data, spawn workers, join them.
     */
    virtual void main(ThreadApi &api) = 0;

    /** Check results after the run completed. */
    virtual bool validate(Machine &machine)
    {
        (void)machine;
        return true;
    }

    /**
     * Digest of the program's semantically meaningful final state
     * (its output arrays), read through the shared committed view
     * after the run. Two runs with equal params must digest equal iff
     * their results are equal -- the chaos oracle compares faulted
     * runs against a fault-free golden through this. Zero means the
     * workload defines no digest and differential checks skip it.
     */
    virtual std::uint64_t resultDigest(Machine &machine)
    {
        (void)machine;
        return 0;
    }

    /**
     * Completed-request sojourn times in simulated cycles, or null
     * for workloads that do not measure latency. The experiment
     * driver reads p50/p99/p999 out of this for the sweep CSV.
     * Recorded host-side: sampling costs no simulated cycles.
     */
    virtual const obs::Histogram *latencyHistogram() const
    {
        return nullptr;
    }

    const WorkloadParams &params() const { return _params; }

  protected:
    WorkloadParams _params;
};

/** Factory signature used by the registry. */
using WorkloadFactory =
    std::function<std::unique_ptr<Workload>(const WorkloadParams &)>;

/** Registry entry describing one evaluation program. */
struct WorkloadInfo
{
    std::string name;
    WorkloadFactory make;
    /** Appears in Figure 9 / Table 3 (repairable false sharing). */
    bool knownFalseSharing = false;
    /** Part of the 35-workload Figure 7/8 overhead set. */
    bool inOverheadSet = true;
    /** Uses atomics or inline asm (Sheriff-incompatible risk). */
    bool usesAtomicsOrAsm = false;
    /** Workload family ("batch" = paper kernels, "server" = the
     *  request/response feed handlers). Sweep specs select whole
     *  families with the `family:<name>` workload token. */
    std::string family = "batch";
    /** Declared knobs beyond threads/scale (see params.hh). */
    ParamSchema schema;
};

/** All registered workloads, in the paper's figure order. */
const std::vector<WorkloadInfo> &workloadRegistry();

/** Look up one workload by name; fatal if unknown. */
const WorkloadInfo &findWorkload(const std::string &name);

/** Look up one workload by name; null if unknown (validation). */
const WorkloadInfo *tryFindWorkload(const std::string &name);

/** Distinct family tags, in registry order. */
std::vector<std::string> workloadFamilies();

/** Names of the workloads in @p family; empty when unknown. */
std::vector<std::string> workloadsInFamily(const std::string &family);

} // namespace tmi

#endif // TMI_WORKLOADS_WORKLOAD_HH
