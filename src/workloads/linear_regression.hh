/**
 * @file
 * Phoenix linear-regression, with its known false sharing bug.
 *
 * Every worker accumulates five partial sums (SX, SY, SXX, SYY, SXY)
 * plus a count into its slot of a shared args array. Each slot is 48
 * bytes, so slots straddle cache lines and adjacent threads fight
 * over every update -- the canonical Phoenix false sharing bug ("an
 * args array that is not 64-byte aligned by default").
 *
 * The manual fix pads each slot to 64 bytes and aligns the array.
 */

#ifndef TMI_WORKLOADS_LINEAR_REGRESSION_HH
#define TMI_WORKLOADS_LINEAR_REGRESSION_HH

#include "workloads/workload.hh"

namespace tmi
{

/** Phoenix linear-regression (lreg). */
class LinearRegressionWorkload : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "lreg"; }

    void init(Machine &machine) override;
    void main(ThreadApi &api) override;
    bool validate(Machine &machine) override;
    std::uint64_t resultDigest(Machine &machine) override;

  private:
    void worker(ThreadApi &api, unsigned t);

    Addr _pcPointLoad = 0;
    Addr _pcSumLoad = 0;
    Addr _pcSumStore = 0;

    Addr _points = 0; //!< packed (x, y) u32 pairs
    Addr _args = 0;   //!< per-thread accumulator slots
    std::uint64_t _slotBytes = 0;
    std::uint64_t _pointsPerThread = 0;
    std::uint64_t _expectedCount = 0;
};

} // namespace tmi

#endif // TMI_WORKLOADS_LINEAR_REGRESSION_HH
