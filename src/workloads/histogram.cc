#include "histogram.hh"

namespace tmi
{

void
HistogramWorkload::init(Machine &machine)
{
    InstructionTable &instrs = machine.instructions();
    _pcPixelLoad = instrs.define("histogram.pixel.load",
                                 MemKind::Load, 4);
    _pcCountLoad = instrs.define("histogram.count.load",
                                 MemKind::Load, 4);
    _pcCountStore = instrs.define("histogram.count.store",
                                  MemKind::Store, 4);
    _pcStageStore = instrs.define("histogram.stage.store",
                                  MemKind::Store, 8);
    _pcOutStore = instrs.define("histogram.out.store",
                                MemKind::Store, 8);
}

void
HistogramWorkload::main(ThreadApi &api)
{
    unsigned threads = _params.threads;
    _pixelsPerThread = 24000 * _params.scale;
    _totalPixels = _pixelsPerThread * threads;

    // Counter layout: 768 u32 counters per thread.
    std::uint64_t block = 768 * 4;
    if (_params.manualFix) {
        _rowBytes = roundUp(block, lineBytes);
        _counts = api.memalign(lineBytes, _rowBytes * threads);
    } else {
        // Unpadded rows; the 8-byte skew recreates the mis-aligned
        // allocation the paper forces to expose the bug.
        _rowBytes = block;
        _counts = api.malloc(_rowBytes * threads + 8) + 8;
    }
    api.fill(_counts, 0, _rowBytes * threads);

    // Map-phase intermediate output: one u32 per pixel, written by
    // the owning thread. No false sharing (page-aligned partitions),
    // but an indiscriminate PTSB pays twin+diff for every output
    // page at every barrier -- the section 4.3 effect.
    _output = api.memalign(smallPageBytes,
                           roundUp(_totalPixels * 8, smallPageBytes));

    // Per-thread staging buffers for the chunked reduce phase: two
    // pages each, disjoint and line-aligned -- no false sharing, but
    // an indiscriminate (PTSB-everywhere) repair pays twin+diff for
    // them at every barrier.
    _stageBytes = 2 * smallPageBytes;
    _staging = api.memalign(smallPageBytes, _stageBytes * threads);
    api.fill(_staging, 0, _stageBytes * threads);

    _barrier = api.malloc(lineBytes);
    api.barrierInit(_barrier, threads);

    // Input image. The standard input is a natural image: clipped
    // shadows and highlights put ~25% of pixels in the extreme bins,
    // so some increments land on the row-boundary lines. The "fs"
    // input is crafted so nearly every pixel does.
    _pixels = api.malloc(_totalPixels * 4);
    Rng &rng = api.rng();
    std::vector<std::uint32_t> img(_totalPixels);
    for (auto &px : img) {
        if (_fsInput) {
            std::uint32_t g = static_cast<std::uint32_t>(rng.below(4));
            px = (0u) | (g << 8) | (255u << 16);
        } else if (rng.chance(0.25)) {
            // Clipped pixel: dark red channel, blown-out blue.
            std::uint32_t r = static_cast<std::uint32_t>(rng.below(3));
            std::uint32_t g = static_cast<std::uint32_t>(rng.below(256));
            std::uint32_t b = 253 + static_cast<std::uint32_t>(
                                        rng.below(3));
            px = r | (g << 8) | (b << 16);
        } else {
            px = static_cast<std::uint32_t>(rng.next());
        }
    }
    api.writeBuf(_pixels, img.data(), img.size() * 4);

    std::vector<ThreadId> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.push_back(api.spawn(
            "histogram-" + std::to_string(t),
            [this, t](ThreadApi &wapi) { worker(wapi, t); }));
    }
    for (ThreadId t : workers)
        api.join(t);
}

void
HistogramWorkload::worker(ThreadApi &api, unsigned t)
{
    Addr my_counts = _counts + t * _rowBytes;
    Addr my_pixels = _pixels + t * _pixelsPerThread * 4;
    Addr my_stage = _staging + t * _stageBytes;

    std::uint64_t per_chunk = _pixelsPerThread / chunks;
    std::uint64_t stage_slots = _stageBytes / 8;

    for (unsigned c = 0; c < chunks; ++c) {
        std::uint64_t base = c * per_chunk;
        std::uint64_t end = (c == chunks - 1) ? _pixelsPerThread
                                              : base + per_chunk;
        for (std::uint64_t i = base; i < end; ++i) {
            auto px = static_cast<std::uint32_t>(
                api.load(_pcPixelLoad, my_pixels + i * 4));
            unsigned r = px & 0xff;
            unsigned g = (px >> 8) & 0xff;
            unsigned b = (px >> 16) & 0xff;
            // Map-phase intermediate emit (key-value pair).
            api.store(_pcOutStore,
                      _output + (t * _pixelsPerThread + i) * 8,
                      (static_cast<std::uint64_t>(px) << 32) | i);
            for (unsigned chan = 0; chan < 3; ++chan) {
                unsigned idx =
                    chan * 256 + (chan == 0 ? r : chan == 1 ? g : b);
                Addr slot = my_counts + idx * 4;
                std::uint64_t v = api.load(_pcCountLoad, slot);
                api.store(_pcCountStore, slot, v + 1);
            }
        }
        // Emit this chunk's intermediate results into the private
        // staging buffer (map-reduce style), then synchronize. One
        // store per 8th slot, value c + s: a fixed-stride run the
        // bulk-issue helper can drive.
        api.storeStream(_pcStageStore, my_stage, (stage_slots + 7) / 8,
                        64, c, 8);
        api.barrierWait(_barrier);
    }
}

bool
HistogramWorkload::validate(Machine &machine)
{
    // Every pixel contributes one count per channel per thread.
    std::uint64_t total = 0;
    for (unsigned t = 0; t < _params.threads; ++t) {
        for (unsigned idx = 0; idx < 768; ++idx) {
            total += machine.peekShared(
                _counts + t * _rowBytes + idx * 4, 4);
        }
    }
    return total == _totalPixels * 3;
}

std::uint64_t
HistogramWorkload::resultDigest(Machine &machine)
{
    // The per-bin counts are the program's answer; validate() only
    // checks their sum, the digest pins every bin exactly.
    std::uint64_t h = digestSeed;
    for (unsigned t = 0; t < _params.threads; ++t) {
        for (unsigned idx = 0; idx < 768; ++idx) {
            h = digestWord(h, machine.peekShared(
                                  _counts + t * _rowBytes + idx * 4,
                                  4));
        }
    }
    return digestFinalize(h);
}

} // namespace tmi
