/**
 * @file
 * Layout fuzzer: a synthetic workload with *known ground truth* for
 * measuring detector accuracy.
 *
 * The fuzzer lays out a configurable number of cache lines, each
 * randomly assigned one of four behaviours:
 *
 *  - FalseShared: two threads read-modify-write disjoint halves;
 *  - TrueShared: two threads read-modify-write the same word;
 *  - PrivateHot: one thread hammers it alone;
 *  - ReadShared: every thread only reads it.
 *
 * Only FalseShared lines should be classified as false sharing and
 * nominated for repair; everything else is a potential false
 * positive. Because the generator knows each line's label, the
 * detector's precision and recall are directly measurable
 * (bench/detector_accuracy, tests/detect).
 */

#ifndef TMI_WORKLOADS_FUZZ_LAYOUT_HH
#define TMI_WORKLOADS_FUZZ_LAYOUT_HH

#include "workloads/workload.hh"

namespace tmi
{

/** Ground-truth behaviour of one fuzzed line. */
enum class LineBehaviour : std::uint8_t
{
    FalseShared,
    TrueShared,
    PrivateHot,
    ReadShared,
};

/** Synthetic layout with known sharing behaviour per line. */
class FuzzLayoutWorkload : public Workload
{
  public:
    /** Mix of behaviours, in percent (rest becomes ReadShared). */
    struct Mix
    {
        unsigned falseSharedPct = 25;
        unsigned trueSharedPct = 25;
        unsigned privatePct = 25;
        unsigned lines = 32;
    };

    FuzzLayoutWorkload(const WorkloadParams &params, const Mix &mix)
        : Workload(params), _mix(mix)
    {}

    const char *name() const override { return "fuzz-layout"; }

    void init(Machine &machine) override;
    void main(ThreadApi &api) override;
    bool validate(Machine &machine) override;

    /** Ground truth, indexed by fuzzed line; valid after main(). */
    const std::vector<LineBehaviour> &groundTruth() const
    {
        return _behaviours;
    }

    /** Simulated byte address of fuzzed line @p i. */
    Addr lineAddr(std::size_t i) const { return _base + i * lineBytes; }

  private:
    void worker(ThreadApi &api, unsigned t);

    Mix _mix;
    Addr _pcLoad = 0;
    Addr _pcStore = 0;
    Addr _base = 0;
    std::vector<LineBehaviour> _behaviours;
    std::uint64_t _itersPerThread = 0;
};

} // namespace tmi

#endif // TMI_WORKLOADS_FUZZ_LAYOUT_HH
