#include "boost_micro.hh"

namespace tmi
{

// ---------------------------------------------------------------------
// spinlockpool

SpinlockPoolWorkload::SpinlockPoolWorkload(
    const WorkloadParams &params)
    : Workload(params)
{
    // Direct construction (tests, benches) skips the driver's param
    // resolution; fall back to the schema defaults.
    if (_params.extra.empty()) {
        std::string err;
        resolveParams(schema(), {}, _params.extra, err);
    }
    _smallSlots = _params.extra.getInt("small_slots") != 0;
}

ParamSchema
SpinlockPoolWorkload::schema()
{
    ParamSchema s;
    s.intKnob("small_slots", 0,
              "1 = each worker mallocs its own 8-byte payload slot, "
              "letting the allocator's placement policy decide line "
              "sharing (malloc-placement sweeps)");
    return s;
}

void
SpinlockPoolWorkload::init(Machine &machine)
{
    InstructionTable &instrs = machine.instructions();
    _pcDataLoad = instrs.define("spinlockpool.data.load",
                                MemKind::Load, 8);
    _pcDataStore = instrs.define("spinlockpool.data.store",
                                 MemKind::Store, 8);
}

void
SpinlockPoolWorkload::main(ThreadApi &api)
{
    unsigned threads = _params.threads;
    _opsPerThread = 16000 * _params.scale;

    // boost::detail::spinlock_pool<..>::pool_: 41 packed spinlocks
    // of 4 bytes each -- sixteen locks per cache line, so distinct
    // locks false-share heavily. The manual fix pads each to 64 B.
    _lockStride = _params.manualFix ? lineBytes : 4;
    if (_params.manualFix) {
        _locks = api.memalign(lineBytes, _lockStride * poolSize);
    } else {
        // Tagged with array geometry: a static-repair plan can
        // spread the packed locks one per line (index redirection)
        // instead of just splitting the blob.
        _locks = api.mallocAt("spinlock.pool",
                              _lockStride * poolSize + 8) +
                 8;
        api.describeArray("spinlock.pool", 8, 4, poolSize);
    }
    for (unsigned i = 0; i < poolSize; ++i)
        api.mutexInit(_locks + i * _lockStride);

    // The data the locks protect. Default: padded, so the contention
    // under study is purely the lock array's. small_slots mode skips
    // this -- each worker mallocs its own 8-byte slot instead, and
    // whether those slots share lines is entirely the allocator's
    // placement decision (pack vs arena vs isolate).
    _slots.assign(threads, 0);
    if (!_smallSlots) {
        _data = api.memalign(lineBytes, lineBytes * threads);
        api.fill(_data, 0, lineBytes * threads);
        for (unsigned t = 0; t < threads; ++t)
            _slots[t] = _data + t * lineBytes;
    }

    std::vector<ThreadId> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.push_back(api.spawn(
            "spinlockpool-" + std::to_string(t),
            [this, t](ThreadApi &wapi) { worker(wapi, t); }));
    }
    for (ThreadId t : workers)
        api.join(t);
}

void
SpinlockPoolWorkload::worker(ThreadApi &api, unsigned t)
{
    // Each thread uses its own lock (spinlock_pool hashes by address,
    // different addresses -> different locks), but the packed array
    // makes neighbouring locks' CAS traffic collide.
    unsigned my_lock = (t * 7) % poolSize;
    Addr lock = _locks + my_lock * _lockStride;
    if (_smallSlots) {
        // Worker-side allocation is the point: a per-thread-arena
        // allocator serves this from the worker's own slab (isolated
        // lines), a shared-arena allocator packs the slots together.
        Addr slot = api.malloc(8);
        api.fill(slot, 0, 8);
        _slots[t] = slot;
    }
    Addr slot = _slots[t];
    for (std::uint64_t i = 0; i < _opsPerThread; ++i) {
        api.mutexLock(lock);
        // Mostly-read critical sections (weak_ptr lock checks);
        // the occasional refcount write.
        std::uint64_t v = api.load(_pcDataLoad, slot);
        if (i % 16 == 0)
            api.store(_pcDataStore, slot, v + 1);
        api.mutexUnlock(lock);
    }
}

bool
SpinlockPoolWorkload::validate(Machine &machine)
{
    std::uint64_t total = 0;
    for (unsigned t = 0; t < _params.threads; ++t)
        total += machine.peekShared(_slots[t], 8);
    std::uint64_t writes_per_thread = (_opsPerThread + 15) / 16;
    return total == writes_per_thread * _params.threads;
}

std::uint64_t
SpinlockPoolWorkload::resultDigest(Machine &machine)
{
    std::uint64_t h = digestSeed;
    for (unsigned t = 0; t < _params.threads; ++t)
        h = digestWord(h, machine.peekShared(_slots[t], 8));
    return digestFinalize(h);
}

// ---------------------------------------------------------------------
// shptr-relaxed / shptr-lock

void
SharedPtrWorkload::init(Machine &machine)
{
    InstructionTable &instrs = machine.instructions();
    _pcFsLoad = instrs.define("shptr.fs.load", MemKind::Load, 8);
    _pcFsStore = instrs.define("shptr.fs.store", MemKind::Store, 8);
    _pcRefAdd = instrs.define("shptr.ref.add", MemKind::Store, 8);
    _pcRefLoad = instrs.define("shptr.ref.load", MemKind::Load, 8);
    _pcRefStore = instrs.define("shptr.ref.store", MemKind::Store, 8);
}

void
SharedPtrWorkload::main(ThreadApi &api)
{
    unsigned threads = _params.threads;
    _opsPerThread = 20000 * _params.scale;

    // The false sharing page: packed 8-byte per-thread slots, all on
    // one line for up to 8 threads.
    _slotBytes = 8;
    if (_params.manualFix) {
        _slotBytes = lineBytes;
        _fsArray = api.memalign(lineBytes, _slotBytes * threads);
    } else {
        _fsArray = api.mallocAt("shptr.slots", _slotBytes * threads);
        api.describeArray("shptr.slots", 0, _slotBytes, threads);
    }
    api.fill(_fsArray, 0, _slotBytes * threads);

    // The smart-pointer refcount lives on its own page.
    _refcount = api.memalign(lineBytes, lineBytes);
    api.fill(_refcount, 0, lineBytes);
    _refLock = api.memalign(lineBytes, lineBytes);
    api.mutexInit(_refLock);

    std::vector<ThreadId> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.push_back(api.spawn(
            std::string(name()) + "-" + std::to_string(t),
            [this, t](ThreadApi &wapi) { worker(wapi, t); }));
    }
    for (ThreadId t : workers)
        api.join(t);
}

void
SharedPtrWorkload::worker(ThreadApi &api, unsigned t)
{
    Addr slot = _fsArray + t * _slotBytes;
    for (std::uint64_t i = 0; i < _opsPerThread; ++i) {
        // Hot loop: false sharing on the packed slots.
        std::uint64_t v = api.load(_pcFsLoad, slot);
        api.store(_pcFsStore, slot, v + 1);

        if (i % refPeriod == 0) {
            // Occasional smart-pointer copy: refcount bump + drop.
            if (_useLock) {
                api.mutexLock(_refLock);
                std::uint64_t r = api.load(_pcRefLoad, _refcount);
                api.store(_pcRefStore, _refcount, r + 1);
                api.mutexUnlock(_refLock);
            } else {
                api.fetchAdd(_pcRefAdd, _refcount, 1,
                             MemOrder::Relaxed);
            }
        }
    }
}

bool
SharedPtrWorkload::validate(Machine &machine)
{
    std::uint64_t total = 0;
    for (unsigned t = 0; t < _params.threads; ++t)
        total += machine.peekShared(_fsArray + t * _slotBytes, 8);
    if (total != _opsPerThread * _params.threads)
        return false;

    std::uint64_t refs = machine.peekShared(_refcount, 8);
    std::uint64_t expected =
        ((_opsPerThread + refPeriod - 1) / refPeriod) * _params.threads;
    return refs == expected;
}

std::uint64_t
SharedPtrWorkload::resultDigest(Machine &machine)
{
    std::uint64_t h = digestSeed;
    for (unsigned t = 0; t < _params.threads; ++t)
        h = digestWord(h,
                       machine.peekShared(_fsArray + t * _slotBytes,
                                          8));
    h = digestWord(h, machine.peekShared(_refcount, 8));
    return digestFinalize(h);
}

} // namespace tmi
