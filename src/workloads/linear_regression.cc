#include "linear_regression.hh"

namespace tmi
{

namespace
{
/// Field offsets within one args slot (all u64).
constexpr unsigned fieldSX = 0;
constexpr unsigned fieldSY = 8;
constexpr unsigned fieldSXX = 16;
constexpr unsigned fieldSYY = 24;
constexpr unsigned fieldSXY = 32;
constexpr unsigned fieldCount = 40;
constexpr std::uint64_t slotPayload = 48;
} // namespace

void
LinearRegressionWorkload::init(Machine &machine)
{
    InstructionTable &instrs = machine.instructions();
    _pcPointLoad = instrs.define("lreg.point.load", MemKind::Load, 8);
    _pcSumLoad = instrs.define("lreg.sum.load", MemKind::Load, 8);
    _pcSumStore = instrs.define("lreg.sum.store", MemKind::Store, 8);
}

void
LinearRegressionWorkload::main(ThreadApi &api)
{
    unsigned threads = _params.threads;
    _pointsPerThread = 40000 * _params.scale;
    _expectedCount = _pointsPerThread * threads;

    if (_params.manualFix) {
        _slotBytes = roundUp(slotPayload, lineBytes);
        _args = api.memalign(lineBytes, _slotBytes * threads);
    } else {
        _slotBytes = slotPayload;
        _args = api.malloc(_slotBytes * threads + 8) + 8;
    }
    api.fill(_args, 0, _slotBytes * threads);

    _points = api.malloc(_expectedCount * 8);
    Rng &rng = api.rng();
    std::vector<std::uint64_t> pts(_expectedCount);
    for (auto &p : pts) {
        std::uint64_t x = rng.below(1000);
        std::uint64_t y = 3 * x + rng.below(50);
        p = (x << 32) | y;
    }
    api.writeBuf(_points, pts.data(), pts.size() * 8);

    std::vector<ThreadId> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.push_back(api.spawn(
            "lreg-" + std::to_string(t),
            [this, t](ThreadApi &wapi) { worker(wapi, t); }));
    }
    for (ThreadId t : workers)
        api.join(t);
}

void
LinearRegressionWorkload::worker(ThreadApi &api, unsigned t)
{
    Addr slot = _args + t * _slotBytes;
    Addr my_points = _points + t * _pointsPerThread * 8;

    auto bump = [&](unsigned field, std::uint64_t delta) {
        Addr a = slot + field;
        std::uint64_t v = api.load(_pcSumLoad, a);
        api.store(_pcSumStore, a, v + delta);
    };

    for (std::uint64_t i = 0; i < _pointsPerThread; ++i) {
        std::uint64_t p = api.load(_pcPointLoad, my_points + i * 8);
        std::uint64_t x = p >> 32;
        std::uint64_t y = p & 0xffffffffu;
        bump(fieldSX, x);
        bump(fieldSY, y);
        bump(fieldSXX, x * x);
        bump(fieldSYY, y * y);
        bump(fieldSXY, x * y);
        bump(fieldCount, 1);
    }
}

bool
LinearRegressionWorkload::validate(Machine &machine)
{
    std::uint64_t count = 0;
    for (unsigned t = 0; t < _params.threads; ++t) {
        count += machine.peekShared(
            _args + t * _slotBytes + fieldCount, 8);
    }
    return count == _expectedCount;
}

std::uint64_t
LinearRegressionWorkload::resultDigest(Machine &machine)
{
    // All six accumulator fields per thread: the regression's inputs
    // to the closed-form solve, exact to the last partial sum.
    std::uint64_t h = digestSeed;
    for (unsigned t = 0; t < _params.threads; ++t) {
        for (unsigned field = 0; field < 6; ++field) {
            h = digestWord(h, machine.peekShared(
                                  _args + t * _slotBytes + field * 8,
                                  8));
        }
    }
    return digestFinalize(h);
}

} // namespace tmi
