#include "stringmatch.hh"

namespace tmi
{

namespace
{
/// cur_word (32 B) + cur_word_final (32 B).
constexpr std::uint64_t scratchPayload = 64;
/// Trivial "encryption": the match targets below are pre-encrypted.
constexpr std::uint64_t
encrypt(std::uint64_t w)
{
    return w * 0x9e3779b97f4a7c15ULL;
}
constexpr std::uint64_t matchTarget = 1234567;
} // namespace

void
StringMatchWorkload::init(Machine &machine)
{
    InstructionTable &instrs = machine.instructions();
    _pcKeyLoad = instrs.define("stringmatch.key.load", MemKind::Load, 8);
    _pcScratchStore =
        instrs.define("stringmatch.scratch.store", MemKind::Store, 8);
    _pcMatchLoad =
        instrs.define("stringmatch.match.load", MemKind::Load, 8);
    _pcMatchStore =
        instrs.define("stringmatch.match.store", MemKind::Store, 8);
}

void
StringMatchWorkload::main(ThreadApi &api)
{
    unsigned threads = _params.threads;
    _keysPerThread = 30000 * _params.scale;

    if (_params.manualFix) {
        // Manual fix: a full aligned cache line per scratch pair.
        _areaBytes = roundUp(scratchPayload, lineBytes) + lineBytes;
        _scratch = api.memalign(lineBytes, _areaBytes * threads);
    } else {
        // 64-byte pairs at an 8-byte skew: each pair straddles into
        // the neighbouring thread's line.
        _areaBytes = scratchPayload;
        _scratch = api.malloc(_areaBytes * threads + 8) + 8;
    }
    api.fill(_scratch, 0, _areaBytes * threads);

    _matches = api.memalign(lineBytes, lineBytes * threads);
    api.fill(_matches, 0, lineBytes * threads);

    // Dictionary: every 97th key matches.
    std::uint64_t total = _keysPerThread * threads;
    std::vector<std::uint64_t> keys(total);
    Rng &rng = api.rng();
    _expectedMatches = 0;
    for (std::uint64_t i = 0; i < total; ++i) {
        if (i % 97 == 0) {
            keys[i] = encrypt(matchTarget);
            ++_expectedMatches;
        } else {
            keys[i] = encrypt(rng.next() | 1);
        }
    }
    _keys = api.malloc(total * 8);
    api.writeBuf(_keys, keys.data(), keys.size() * 8);

    std::vector<ThreadId> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.push_back(api.spawn(
            "stringmatch-" + std::to_string(t),
            [this, t](ThreadApi &wapi) { worker(wapi, t); }));
    }
    for (ThreadId t : workers)
        api.join(t);
}

void
StringMatchWorkload::worker(ThreadApi &api, unsigned t)
{
    Addr area = _scratch + t * _areaBytes;
    // cur_word sits at the head of the thread's area; cur_word_final
    // at the tail. With the unpadded 8-byte-skewed layout the tail
    // lands on the line holding the NEXT thread's cur_word -- the
    // partial overlap the paper describes.
    Addr cur_word = area;
    Addr cur_word_final = area + (_areaBytes == scratchPayload
                                      ? scratchPayload - 8
                                      : 32);
    Addr match_slot = _matches + t * lineBytes;

    std::uint64_t found = 0;
    for (std::uint64_t i = 0; i < _keysPerThread; ++i) {
        Addr key_addr = _keys + (t * _keysPerThread + i) * 8;
        std::uint64_t key = api.load(_pcKeyLoad, key_addr);
        // "Decrypt" the candidate into cur_word, then the processed
        // form into cur_word_final -- both are per-iteration stores
        // into the thread-private scratch (the false sharing source).
        api.store(_pcScratchStore, cur_word, key);
        std::uint64_t candidate = encrypt(matchTarget);
        api.store(_pcScratchStore, cur_word_final, candidate);
        if (key == candidate)
            ++found;
    }
    api.store(_pcMatchStore, match_slot, found);
}

bool
StringMatchWorkload::validate(Machine &machine)
{
    std::uint64_t total = 0;
    for (unsigned t = 0; t < _params.threads; ++t)
        total += machine.peekShared(_matches + t * lineBytes, 8);
    return total == _expectedMatches;
}

std::uint64_t
StringMatchWorkload::resultDigest(Machine &machine)
{
    std::uint64_t h = digestSeed;
    for (unsigned t = 0; t < _params.threads; ++t)
        h = digestWord(h,
                       machine.peekShared(_matches + t * lineBytes,
                                          8));
    return digestFinalize(h);
}

} // namespace tmi
