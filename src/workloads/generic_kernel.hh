/**
 * @file
 * Parameterized kernels standing in for the PARSEC / Phoenix /
 * SPLASH-2x programs without repairable false sharing (the Figure
 * 7/8/10 overhead set).
 *
 * Each program is described by a KernelSpec capturing the properties
 * that matter to Tmi: memory footprint class, read/write mix,
 * synchronization style and frequency (coarse lock, many fine locks,
 * barriers), hot-data true sharing, atomics, and inline-assembly
 * regions. These are not ports of the originals -- they reproduce
 * the sharing-relevant behaviour the paper names for each program
 * (e.g. fluidanimate's thousands of fine-grained locks, dedup's
 * openssl asm regions, ocean's huge grids that stress paging).
 */

#ifndef TMI_WORKLOADS_GENERIC_KERNEL_HH
#define TMI_WORKLOADS_GENERIC_KERNEL_HH

#include "workloads/workload.hh"

namespace tmi
{

/** Synchronization style of a kernel. */
enum class KernelSync
{
    None,       //!< embarrassingly parallel, join only
    CoarseLock, //!< one global lock (queues, pipelines)
    FineLocks,  //!< many small locks (fluidanimate, fmm)
    Barrier,    //!< iterative barrier phases (SPLASH kernels)
};

/** Static description of one stand-in program. */
struct KernelSpec
{
    const char *name;
    /** Shared-data footprint in KB (scaled-down from the original). */
    std::uint64_t footprintKb = 2048;
    /** Work-loop iterations per thread (multiplied by scale). */
    std::uint64_t itersPerThread = 4000;
    /** Reads per iteration from this thread's partition. */
    unsigned partitionReads = 4;
    /** Fraction of reads redirected at the shared hot region. */
    double hotReadFrac = 0.05;
    /** Writes per iteration into this thread's partition. */
    unsigned partitionWrites = 2;
    /** Read-modify-writes on the hot region per iteration
     *  (true sharing; 0 for clean data-parallel codes). */
    unsigned hotWrites = 0;
    /** Pure compute cycles per iteration. */
    unsigned computeCycles = 60;
    KernelSync sync = KernelSync::None;
    /** Sync operation every N iterations. */
    unsigned syncEvery = 64;
    /** Lock count for FineLocks (memory overhead driver). */
    unsigned lockCount = 1;
    /** malloc/free a scratch object every N iterations (0 = never);
     *  dedup/wordcount/reverse-style allocation churn. */
    unsigned allocEvery = 0;
    /** Occasional seq_cst atomics (canneal/leveldb-style). */
    bool atomics = false;
    /** Occasional inline-assembly regions (dedup's openssl). */
    bool asmRegions = false;
};

/** A workload driven by a KernelSpec. */
class GenericKernelWorkload : public Workload
{
  public:
    GenericKernelWorkload(const WorkloadParams &params,
                          const KernelSpec &spec)
        : Workload(params), _spec(spec)
    {}

    const char *name() const override { return _spec.name; }

    void init(Machine &machine) override;
    void main(ThreadApi &api) override;
    bool validate(Machine &machine) override;

  private:
    void worker(ThreadApi &api, unsigned t);

    KernelSpec _spec;
    Addr _pcRead = 0;
    Addr _pcWrite = 0;
    Addr _pcHotLoad = 0;
    Addr _pcHotStore = 0;
    Addr _pcAtomic = 0;
    Addr _pcDoneStore = 0;

    Addr _data = 0;      //!< partitioned shared data
    Addr _hot = 0;       //!< small hot region (true sharing)
    Addr _locks = 0;     //!< lock array (padded)
    Addr _barrier = 0;
    Addr _atomicCtr = 0;
    Addr _doneSlots = 0; //!< per-thread padded completion counters
    std::uint64_t _partBytes = 0;
    std::uint64_t _iters = 0;

    static constexpr std::uint64_t hotBytes = 512;
};

/** Specs for every stand-in program, in Figure 7 order. */
const std::vector<KernelSpec> &kernelSpecs();

} // namespace tmi

#endif // TMI_WORKLOADS_GENERIC_KERNEL_HH
