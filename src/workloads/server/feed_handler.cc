#include "workloads/server/feed_handler.hh"

#include <algorithm>

namespace tmi
{

namespace
{

/** Request record layout (one cache line per record). */
constexpr Addr recSeqOff = 0;      //!< sequence number (plain)
constexpr Addr recEnqOff = 8;      //!< enqueue cycle stamp (plain)
constexpr Addr recPayloadOff = 16; //!< checksummed payload (plain)
constexpr Addr recNextOff = 56;    //!< free-list link (atomic)

/** Per-worker stat counter slots within a block. */
constexpr unsigned statEnqueued = 0;  //!< producer: requests enqueued
constexpr unsigned statProcessed = 0; //!< consumer: requests completed
constexpr unsigned statChecksum = 1;  //!< consumer: payload sum
constexpr unsigned statSojourn = 2;   //!< consumer: sojourn cycle sum
constexpr unsigned statScratch = 3;   //!< extra per-request updates

/** Simulated cycles burned per empty-poll iteration. */
constexpr Cycles idleStep = 256;

/** Cumulative idle budget per thread before declaring the run
 *  wedged (a Sheriff-buffered ring protocol stalls; a correct one
 *  never gets near this). */
constexpr Cycles spinBudget = 100'000'000;

/** popFree() bail-out sentinel. */
constexpr std::uint64_t noSlot = ~std::uint64_t{0};

} // namespace

FeedHandlerWorkload::FeedHandlerWorkload(const WorkloadParams &params,
                                         bool spmc)
    : Workload(params), _spmc(spmc)
{
    // Direct construction (tests, benches) skips the driver's param
    // resolution; fall back to the schema defaults.
    if (_params.extra.empty()) {
        std::string err;
        resolveParams(schema(), {}, _params.extra, err);
    }
    const ParamValues &v = _params.extra;
    parseArrivalProfile(v.getEnum("profile"), _profile);
    _gap = std::max<std::uint64_t>(1, v.getInt("arrival_gap"));
    _requests = std::max<std::uint64_t>(1, v.getInt("requests"));
    _capacity = std::max<std::uint64_t>(2, v.getInt("ring_capacity"));
    _service = v.getInt("service_cycles");
    _burst = std::max<std::uint64_t>(1, v.getInt("burst"));
    _diurnalPeriod =
        std::max<std::uint64_t>(4, v.getInt("diurnal_period"));
    _statRounds = static_cast<unsigned>(v.getInt("stat_rounds"));
}

ParamSchema
FeedHandlerWorkload::schema()
{
    ParamSchema s;
    s.enumKnob("profile", "steady", {"steady", "bursty", "diurnal"},
               "arrival process shape");
    s.intKnob("arrival_gap", 600,
              "mean cycles between arrivals per producer");
    s.intKnob("requests", 64,
              "requests per producer, multiplied by scale");
    s.intKnob("ring_capacity", 64, "ring buffer slots per lane");
    s.intKnob("service_cycles", 150,
              "compute cycles per request at the consumer");
    s.intKnob("burst", 8, "bursty profile: arrivals per burst");
    s.intKnob("diurnal_period", 1024,
              "diurnal profile: requests per simulated day");
    s.intKnob("stat_rounds", 4,
              "extra stat counter touches per request (false-sharing "
              "intensity)");
    return s;
}

void
FeedHandlerWorkload::init(Machine &machine)
{
    InstructionTable &instrs = machine.instructions();
    _pcReqLoad = instrs.define("feed.req.load", MemKind::Load, 8);
    _pcReqStore = instrs.define("feed.req.store", MemKind::Store, 8);
    _pcStatLoad = instrs.define("feed.stat.load", MemKind::Load, 8);
    _pcStatStore = instrs.define("feed.stat.store", MemKind::Store, 8);
    _pcRingLoad = instrs.define("feed.ring.load", MemKind::Load, 8);
    _pcRingStore = instrs.define("feed.ring.store", MemKind::Store, 8);
    _pcFreeLoad = instrs.define("feed.free.load", MemKind::Load, 8);
    _pcFreeStore = instrs.define("feed.free.store", MemKind::Store, 8);
}

Addr
FeedHandlerWorkload::recAddr(const Lane &lane, std::uint64_t slot) const
{
    return lane.slab + slot * lineBytes;
}

Addr
FeedHandlerWorkload::statAddr(unsigned worker, unsigned counter) const
{
    return _statBase + worker * _statStride + counter * 8;
}

void
FeedHandlerWorkload::bumpStat(ThreadApi &api, unsigned worker,
                              unsigned counter, std::uint64_t delta)
{
    Addr slot = statAddr(worker, counter);
    std::uint64_t v = api.load(_pcStatLoad, slot);
    api.store(_pcStatStore, slot, v + delta);
}

std::uint64_t
FeedHandlerWorkload::popFree(ThreadApi &api, const Lane &lane,
                             Cycles &waited)
{
    // Treiber stack with a single popper (the lane's producer), so
    // there is no ABA window. Cells hold slot+1; 0 means empty.
    for (;;) {
        std::uint64_t top = api.atomicLoad(_pcFreeLoad, lane.freeTop);
        if (top == 0) {
            api.compute(idleStep);
            waited += idleStep;
            if (waited > spinBudget)
                return noSlot;
            continue;
        }
        std::uint64_t slot = top - 1;
        std::uint64_t next = api.atomicLoad(
            _pcFreeLoad, recAddr(lane, slot) + recNextOff);
        if (api.cas(_pcFreeStore, lane.freeTop, top, next))
            return slot;
    }
}

void
FeedHandlerWorkload::pushFree(ThreadApi &api, const Lane &lane,
                              std::uint64_t slot)
{
    for (;;) {
        std::uint64_t top = api.atomicLoad(_pcFreeLoad, lane.freeTop);
        api.atomicStore(_pcFreeStore,
                        recAddr(lane, slot) + recNextOff, top);
        if (api.cas(_pcFreeStore, lane.freeTop, top, slot + 1))
            return;
    }
}

void
FeedHandlerWorkload::main(ThreadApi &api)
{
    const unsigned threads = std::max(1u, _params.threads);
    unsigned producers, consumersPerLane;
    if (_spmc) {
        _lanes = 1;
        producers = 1;
        consumersPerLane = std::max(1u, threads - 1);
    } else {
        _lanes = std::max(1u, threads / 2);
        producers = _lanes;
        consumersPerLane = 1;
    }
    _workers = producers + _lanes * consumersPerLane;
    _perProducer = _requests * _params.scale;
    // In-flight requests are bounded by the ring, so capacity + a
    // small margin of records per lane never runs dry.
    _slabSlots = _capacity + 2;

    // Every region lives on its own pages so a repair of one cell
    // cannot be masked (or caused) by a neighbour from a different
    // structure sharing its page.
    //
    // Stat counter blocks: 4 u64 per worker. Packed, two workers per
    // line -- the repairable false-sharing cell -- or one line each
    // under the manual fix.
    _statStride = _params.manualFix ? lineBytes : 32;
    Addr stat_bytes = roundUp(_workers * _statStride, smallPageBytes);
    if (_params.manualFix) {
        _statBase = api.memalign(smallPageBytes, stat_bytes);
    } else {
        // Tagged with per-worker geometry so a static-repair plan
        // can spread the packed blocks one per line (the applier
        // keeps the page alignment).
        _statBase = api.memalignAt("feed.stats", smallPageBytes,
                                   stat_bytes);
        api.describeArray("feed.stats", 0, _statStride, _workers);
    }
    api.fill(_statBase, 0, stat_bytes);

    // Ring index cells (head, tail, done per lane). Packed, a lane's
    // producer- and consumer-owned cursors share a line (and lanes
    // pack together); padded, every cell gets its own line. These are
    // atomics: TMI cannot repair this cell even when the detector
    // sees it -- the realistic residual the manual fix removes.
    Addr idx_stride = _params.manualFix ? 3 * lineBytes : 24;
    Addr idx_bytes = roundUp(_lanes * idx_stride, smallPageBytes);
    Addr idx_base = api.memalign(smallPageBytes, idx_bytes);
    api.fill(idx_base, 0, idx_bytes);

    // Slab free-stack tops, one atomic cell per lane: packed on one
    // line vs one line each.
    Addr free_stride = _params.manualFix ? lineBytes : 8;
    Addr free_bytes = roundUp(_lanes * free_stride, smallPageBytes);
    Addr free_base = api.memalign(smallPageBytes, free_bytes);
    api.fill(free_base, 0, free_bytes);

    // Ring slot cells (atomic, slot+1 or 0) and the slab records
    // (one line per record: producer writes and consumer reads the
    // same offsets, so these pages only ever see true sharing).
    Addr slots_bytes =
        roundUp(_lanes * _capacity * 8, smallPageBytes);
    Addr slots_base = api.memalign(smallPageBytes, slots_bytes);
    api.fill(slots_base, 0, slots_bytes);
    Addr slab_bytes =
        roundUp(_lanes * _slabSlots * lineBytes, smallPageBytes);
    Addr slab_base = api.memalign(smallPageBytes, slab_bytes);
    api.fill(slab_base, 0, slab_bytes);

    _lane.assign(_lanes, Lane{});
    for (unsigned l = 0; l < _lanes; ++l) {
        Lane &lane = _lane[l];
        Addr hstep = _params.manualFix ? lineBytes : 8;
        lane.head = idx_base + l * idx_stride;
        lane.tail = lane.head + hstep;
        lane.done = lane.head + 2 * hstep;
        lane.freeTop = free_base + l * free_stride;
        lane.slots = slots_base + l * _capacity * 8;
        lane.slab = slab_base + l * _slabSlots * lineBytes;
        lane.seed = trafficHash(_params.seed, l);

        // Seed the free stack so pops come out 0, 1, 2, ...
        std::uint64_t top = 0;
        for (std::uint64_t s = _slabSlots; s-- > 0;) {
            api.atomicStore(_pcFreeStore,
                            recAddr(lane, s) + recNextOff, top);
            top = s + 1;
        }
        api.atomicStore(_pcFreeStore, lane.freeTop, top);
    }

    std::vector<ThreadId> workers;
    unsigned worker_id = 0;
    for (unsigned l = 0; l < _lanes; ++l) {
        // Producer first, its consumer(s) next: packed 32-byte stat
        // blocks put each lane's producer and consumer on one line.
        unsigned pw = worker_id++;
        workers.push_back(api.spawn(
            "feed-prod-" + std::to_string(l),
            [this, l, pw](ThreadApi &w) { producer(w, _lane[l], pw); }));
        for (unsigned c = 0; c < consumersPerLane; ++c) {
            unsigned cw = worker_id++;
            workers.push_back(api.spawn(
                "feed-cons-" + std::to_string(l) + "-" +
                    std::to_string(c),
                [this, l, cw](ThreadApi &w) {
                    consumer(w, _lane[l], cw);
                }));
        }
    }
    for (ThreadId t : workers)
        api.join(t);
}

void
FeedHandlerWorkload::producer(ThreadApi &api, const Lane &lane,
                              unsigned worker)
{
    SimScheduler &sched = api.machine().sched();
    TrafficConfig cfg;
    cfg.profile = _profile;
    cfg.seed = lane.seed;
    cfg.gap = _gap;
    cfg.burst = _burst;
    cfg.period = _diurnalPeriod;

    Cycles waited = 0;
    for (std::uint64_t i = 0; i < _perProducer; ++i) {
        // Open loop: arrivals do not wait for the service pipeline.
        Cycles at = arrivalAt(cfg, i);
        if (at > sched.now())
            sched.sleepUntil(at);

        std::uint64_t slot = popFree(api, lane, waited);
        if (slot == noSlot) {
            _bailed = true;
            break;
        }

        // Stamp and fill the record (plain stores; the slab page is
        // only ever truly shared, so these propagate normally).
        Addr rec = recAddr(lane, slot);
        api.store(_pcReqStore, rec + recSeqOff, i);
        api.store(_pcReqStore, rec + recEnqOff, sched.now());
        api.store(_pcReqStore, rec + recPayloadOff,
                  payloadAt(lane.seed, i));

        // Publish: wait for ring space, write the slot cell, bump
        // tail. Single producer, so tail is only contended as a
        // *reader* on the consumer side.
        for (;;) {
            std::uint64_t head = api.atomicLoad(_pcRingLoad, lane.head);
            std::uint64_t tail = api.atomicLoad(_pcRingLoad, lane.tail);
            if (tail - head < _capacity) {
                api.atomicStore(_pcRingStore,
                                lane.slots + (tail % _capacity) * 8,
                                slot + 1);
                api.atomicStore(_pcRingStore, lane.tail, tail + 1);
                break;
            }
            api.compute(idleStep);
            waited += idleStep;
            if (waited > spinBudget) {
                _bailed = true;
                return;
            }
        }

        // Per-request bookkeeping, interleaved with the remaining
        // framing work: each touch lands on the packed stat line
        // while the lane's consumer is touching its own half, which
        // is what keeps the line ping-ponging.
        bumpStat(api, worker, statEnqueued, 1);
        for (unsigned r = 0; r < _statRounds; ++r) {
            api.compute(idleStep / 8);
            bumpStat(api, worker, statScratch, 1);
        }
    }
    api.atomicStore(_pcRingStore, lane.done, 1);
}

void
FeedHandlerWorkload::consumer(ThreadApi &api, const Lane &lane,
                              unsigned worker)
{
    SimScheduler &sched = api.machine().sched();
    Cycles waited = 0;
    for (;;) {
        std::uint64_t head = api.atomicLoad(_pcRingLoad, lane.head);
        std::uint64_t tail = api.atomicLoad(_pcRingLoad, lane.tail);
        if (head == tail) {
            if (api.atomicLoad(_pcRingLoad, lane.done) &&
                api.atomicLoad(_pcRingLoad, lane.tail) == head) {
                return;
            }
            api.compute(idleStep);
            waited += idleStep;
            if (waited > spinBudget) {
                _bailed = true;
                return;
            }
            continue;
        }

        // Read the slot cell *before* claiming head: a successful
        // claim proves head still equalled `head` at the read, and
        // the producer cannot have lapped a cell whose index it
        // still saw as unconsumed.
        std::uint64_t cell = api.atomicLoad(
            _pcRingLoad, lane.slots + (head % _capacity) * 8);
        if (cell == 0)
            continue;
        std::uint64_t slot = cell - 1;
        if (_spmc) {
            if (!api.cas(_pcRingStore, lane.head, head, head + 1))
                continue;
        }

        // The record cannot be reused until we push it back to the
        // free stack, so plain reads after the claim are stable.
        Addr rec = recAddr(lane, slot);
        std::uint64_t seq = api.load(_pcReqLoad, rec + recSeqOff);
        std::uint64_t enq = api.load(_pcReqLoad, rec + recEnqOff);
        std::uint64_t payload =
            api.load(_pcReqLoad, rec + recPayloadOff);
        (void)seq;
        if (!_spmc)
            api.atomicStore(_pcRingStore, lane.head, head + 1);
        pushFree(api, lane, slot);

        // Service, with the per-event bookkeeping woven through it
        // the way production metrics code updates counters inside
        // the processing loop -- that interleaving is what makes the
        // packed stat line a continuously hot false-sharing cell.
        unsigned slices = std::max(1u, _statRounds);
        Cycles slice = std::max<Cycles>(1, _service / slices);
        for (unsigned r = 0; r < slices; ++r) {
            api.compute(slice);
            bumpStat(api, worker, statScratch, 1);
        }
        std::uint64_t done_at = sched.now();
        bumpStat(api, worker, statProcessed, 1);
        bumpStat(api, worker, statChecksum, payload);
        // min-clock scheduling can let a consumer observe a publish
        // from slightly ahead of its own clock; clamp, the skew is
        // bounded by the scheduler quantum.
        std::uint64_t sojourn = done_at > enq ? done_at - enq : 0;
        bumpStat(api, worker, statSojourn, sojourn);

        // Host-side latency recording: zero simulated cost.
        _sojourn.sample(static_cast<double>(sojourn));
    }
}

bool
FeedHandlerWorkload::validate(Machine &machine)
{
    if (_bailed)
        return false;

    std::uint64_t enqueued = 0, processed = 0, checksum = 0;
    unsigned worker_id = 0;
    for (unsigned l = 0; l < _lanes; ++l) {
        enqueued += machine.peekShared(
            statAddr(worker_id++, statEnqueued), 8);
        unsigned consumers = _spmc ? _workers - 1 : 1;
        for (unsigned c = 0; c < consumers; ++c) {
            processed += machine.peekShared(
                statAddr(worker_id, statProcessed), 8);
            checksum += machine.peekShared(
                statAddr(worker_id, statChecksum), 8);
            ++worker_id;
        }
    }

    std::uint64_t want_total = _perProducer * _lanes;
    std::uint64_t want_checksum = 0;
    for (unsigned l = 0; l < _lanes; ++l) {
        for (std::uint64_t i = 0; i < _perProducer; ++i)
            want_checksum += payloadAt(_lane[l].seed, i);
    }
    return enqueued == want_total && processed == want_total &&
           checksum == want_checksum &&
           _sojourn.count() == want_total;
}

std::uint64_t
FeedHandlerWorkload::resultDigest(Machine &machine)
{
    // Aggregate, commutative end state only: which consumer served
    // which request is schedule-dependent (SPMC work stealing), but
    // the totals are not -- so a faulted run that still completed
    // correctly digests equal to its fault-free golden.
    // statEnqueued and statProcessed share slot 0 (producers write
    // one, consumers the other), so summing slot 0 over every worker
    // yields enqueued + processed in one number -- still commutative
    // and still zero-sensitive to a lost request on either side.
    std::uint64_t completed = 0, checksum = 0;
    for (unsigned w = 0; w < _workers; ++w) {
        completed += machine.peekShared(statAddr(w, statEnqueued), 8);
        checksum += machine.peekShared(statAddr(w, statChecksum), 8);
    }
    std::uint64_t h = digestSeed;
    h = digestWord(h, completed);
    h = digestWord(h, checksum);
    h = digestWord(h, _bailed ? 1 : 0);
    return digestFinalize(h);
}

} // namespace tmi
