#include "workloads/server/traffic.hh"

namespace tmi
{

const char *
arrivalProfileName(ArrivalProfile profile)
{
    switch (profile) {
      case ArrivalProfile::Steady: return "steady";
      case ArrivalProfile::Bursty: return "bursty";
      case ArrivalProfile::Diurnal: return "diurnal";
    }
    return "?";
}

bool
parseArrivalProfile(const std::string &name, ArrivalProfile &out)
{
    if (name == "steady") {
        out = ArrivalProfile::Steady;
    } else if (name == "bursty") {
        out = ArrivalProfile::Bursty;
    } else if (name == "diurnal") {
        out = ArrivalProfile::Diurnal;
    } else {
        return false;
    }
    return true;
}

std::uint64_t
trafficHash(std::uint64_t seed, std::uint64_t index)
{
    // splitmix64 finalizer over a golden-ratio combination of the
    // two inputs; the combination keeps (seed, index) pairs distinct
    // enough for jitter even when seeds are small consecutive ints.
    std::uint64_t z = seed ^ (index * 0x9e3779b97f4a7c15ULL +
                              0x632be59bd9b4e019ULL);
    z ^= z >> 30;
    z *= 0xbf58476d1ce4e5b9ULL;
    z ^= z >> 27;
    z *= 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z;
}

Cycles
arrivalAt(const TrafficConfig &config, std::uint64_t index)
{
    const Cycles gap = config.gap < 1 ? 1 : config.gap;
    switch (config.profile) {
      case ArrivalProfile::Steady: {
        // Jitter < gap, so consecutive arrivals stay ordered:
        // delta >= gap - gap/2 > 0.
        Cycles jitter = trafficHash(config.seed, index) % (gap / 2 + 1);
        return index * gap + jitter;
      }
      case ArrivalProfile::Bursty: {
        // One group of `burst` back-to-back arrivals per burst*gap
        // window; the group start is jittered by at most gap/2, which
        // can never push the group's tail past the next window.
        const std::uint64_t burst = config.burst < 1 ? 1 : config.burst;
        std::uint64_t group = index / burst;
        std::uint64_t within = index % burst;
        Cycles start = group * burst * gap +
                       trafficHash(config.seed, group) % (gap / 2 + 1);
        return start + within;
      }
      case ArrivalProfile::Diurnal: {
        // Triangle wave over `period` requests: the phase offset
        // advances by 0 or +/-1 gap/2 steps per request, so the
        // effective inter-arrival gap swings between ~gap/2 and
        // ~3*gap/2 while staying strictly positive.
        const std::uint64_t period =
            config.period < 4 ? 4 : config.period;
        std::uint64_t phase = index % period;
        std::uint64_t off =
            phase <= period / 2 ? phase : period - phase;
        Cycles jitter = trafficHash(config.seed, index) % (gap / 4 + 1);
        return index * gap + off * (gap / 2) + jitter;
      }
    }
    return index * gap;
}

std::uint64_t
payloadAt(std::uint64_t seed, std::uint64_t index)
{
    return trafficHash(seed ^ 0xfeedULL, index) | 1;
}

} // namespace tmi
