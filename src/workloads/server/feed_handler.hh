/**
 * @file
 * Simulated feed-handler service: the server workload family.
 *
 * A market-data-style pipeline built from the three structures where
 * production false sharing hides: lock-free ring buffers whose
 * head/tail indices pack onto one cache line, a slab pool of request
 * records with per-lane free-list tops packed together, and per-worker
 * stat counter blocks packed two to a line (SNIPPETS.md snippet 1's
 * `PackedCounters` layout). Under `manualFix` every index, free-list
 * top, and counter block gets its own line -- the repaired layout.
 *
 * Traffic is open-loop (workloads/server/traffic.hh): each producer
 * sleeps to arrivalAt(seed, i), stamps the request with its enqueue
 * cycle, and the completing consumer records the sojourn time
 * (completion - enqueue) into a host-side log2 histogram the driver
 * reads p50/p99/p999 from. Queueing amplifies the per-request cost of
 * the counter false sharing into the latency tail, which is exactly
 * what TMI's repair should pull back.
 *
 * Correctness under page privatization is by construction:
 *  - ring indices, slot cells, and free-list links are atomics, which
 *    bypass privatization (RuntimeHooks::atomicsBypassPrivate);
 *  - slab records are line-aligned and only ever truly shared
 *    (producer writes and consumer reads the same offsets), so the
 *    detector never classifies their pages as false sharing;
 *  - the falsely-shared counter blocks are single-writer, so
 *    privatize-and-merge commits reconstruct the exact totals.
 * Sheriff, which buffers atomics too, can stall the ring protocol --
 * so every spin loop carries a bounded idle budget and a stalled run
 * completes as an invalid measurement instead of hanging the host
 * (the workloads are usesAtomicsOrAsm for this reason).
 */

#ifndef TMI_WORKLOADS_SERVER_FEED_HANDLER_HH
#define TMI_WORKLOADS_SERVER_FEED_HANDLER_HH

#include "workloads/server/traffic.hh"
#include "workloads/workload.hh"

namespace tmi
{

/** SPSC ("feed-spsc") or SPMC ("feed-spmc") feed handler. */
class FeedHandlerWorkload : public Workload
{
  public:
    FeedHandlerWorkload(const WorkloadParams &params, bool spmc);

    /** The declared knobs (registered in WorkloadInfo::schema). */
    static ParamSchema schema();

    const char *name() const override
    {
        return _spmc ? "feed-spmc" : "feed-spsc";
    }

    void init(Machine &machine) override;
    void main(ThreadApi &api) override;
    bool validate(Machine &machine) override;
    std::uint64_t resultDigest(Machine &machine) override;

    const obs::Histogram *latencyHistogram() const override
    {
        return &_sojourn;
    }

  private:
    struct Lane
    {
        Addr head = 0;    //!< consumer cursor (atomic cell)
        Addr tail = 0;    //!< producer cursor (atomic cell)
        Addr done = 0;    //!< producer-finished flag (atomic cell)
        Addr freeTop = 0; //!< slab free-stack top (atomic cell)
        Addr slots = 0;   //!< ring slot cells, _capacity x 8 bytes
        Addr slab = 0;    //!< request records, line-sized each
        std::uint64_t seed = 0;
    };

    Addr recAddr(const Lane &lane, std::uint64_t slot) const;
    Addr statAddr(unsigned worker, unsigned counter) const;
    void bumpStat(ThreadApi &api, unsigned worker, unsigned counter,
                  std::uint64_t delta);
    /** Pop a slab slot (single popper per lane); ~0 on bail-out. */
    std::uint64_t popFree(ThreadApi &api, const Lane &lane,
                          Cycles &waited);
    void pushFree(ThreadApi &api, const Lane &lane, std::uint64_t slot);

    void producer(ThreadApi &api, const Lane &lane, unsigned worker);
    void consumer(ThreadApi &api, const Lane &lane, unsigned worker);

    const bool _spmc;

    // Knobs (resolved from the schema in the constructor).
    ArrivalProfile _profile = ArrivalProfile::Steady;
    std::uint64_t _gap = 600;
    std::uint64_t _requests = 64;
    std::uint64_t _capacity = 64;
    std::uint64_t _service = 150;
    std::uint64_t _burst = 8;
    std::uint64_t _diurnalPeriod = 1024;
    unsigned _statRounds = 4;

    // Topology, fixed in main().
    unsigned _lanes = 1;
    unsigned _workers = 0;
    std::uint64_t _perProducer = 0; //!< requests per producer
    std::uint64_t _slabSlots = 0;

    // Layout, fixed in main().
    Addr _statBase = 0;
    Addr _statStride = 0;
    std::vector<Lane> _lane;

    // Instruction PCs.
    Addr _pcReqLoad = 0, _pcReqStore = 0;
    Addr _pcStatLoad = 0, _pcStatStore = 0;
    Addr _pcRingLoad = 0, _pcRingStore = 0;
    Addr _pcFreeLoad = 0, _pcFreeStore = 0;

    // Host-side results.
    obs::Histogram _sojourn;
    bool _bailed = false;
};

} // namespace tmi

#endif // TMI_WORKLOADS_SERVER_FEED_HANDLER_HH
