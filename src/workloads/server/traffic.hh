/**
 * @file
 * Open-loop synthetic traffic for the server workload family.
 *
 * Arrival times are a pure function of (config, index): no state, no
 * host randomness, so any shard or chaos replay regenerates the exact
 * same request stream, and a consumer never perturbs the arrivals it
 * is late for (open-loop, the property closed-loop load generators
 * famously lack -- coordinated omission). Three profiles:
 *
 *  - steady:  fixed mean gap with bounded per-request jitter;
 *  - bursty:  groups of `burst` back-to-back arrivals, one group per
 *             burst*gap window, start jittered within the window;
 *  - diurnal: the effective gap swings between gap/2 and 3*gap/2
 *             over a `period`-request triangle wave -- rush hour and
 *             dead of night in miniature.
 *
 * All three are non-decreasing in the index, so a producer can sleep
 * to arrivalAt(i) in order.
 */

#ifndef TMI_WORKLOADS_SERVER_TRAFFIC_HH
#define TMI_WORKLOADS_SERVER_TRAFFIC_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace tmi
{

/** Arrival-process shape. */
enum class ArrivalProfile
{
    Steady,
    Bursty,
    Diurnal,
};

/** Profile name as it appears in the `profile` enum knob. */
const char *arrivalProfileName(ArrivalProfile profile);

/** Parse a profile name; @retval false when unknown. */
bool parseArrivalProfile(const std::string &name, ArrivalProfile &out);

/** Everything arrivalAt() depends on. */
struct TrafficConfig
{
    ArrivalProfile profile = ArrivalProfile::Steady;
    std::uint64_t seed = 7;
    /** Mean cycles between arrivals (clamped to >= 1). */
    Cycles gap = 600;
    /** Bursty: arrivals per burst group (clamped to >= 1). */
    std::uint64_t burst = 8;
    /** Diurnal: requests per day (clamped to >= 4). */
    std::uint64_t period = 1024;
};

/** Stateless splitmix64-style mix of (seed, index). */
std::uint64_t trafficHash(std::uint64_t seed, std::uint64_t index);

/**
 * Simulated-cycle arrival time of request @p index. Pure in
 * (config, index) and non-decreasing in index.
 */
Cycles arrivalAt(const TrafficConfig &config, std::uint64_t index);

/** Deterministic nonzero payload word for request @p index; the
 *  workloads checksum these end to end. */
std::uint64_t payloadAt(std::uint64_t seed, std::uint64_t index);

} // namespace tmi

#endif // TMI_WORKLOADS_SERVER_TRAFFIC_HH
