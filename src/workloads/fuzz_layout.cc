#include "fuzz_layout.hh"

namespace tmi
{

void
FuzzLayoutWorkload::init(Machine &machine)
{
    InstructionTable &instrs = machine.instructions();
    _pcLoad = instrs.define("fuzz.load", MemKind::Load, 8);
    _pcStore = instrs.define("fuzz.store", MemKind::Store, 8);
}

void
FuzzLayoutWorkload::main(ThreadApi &api)
{
    unsigned threads = std::max(2u, _params.threads);
    _itersPerThread = 6000 * _params.scale;

    _base = api.memalign(lineBytes, _mix.lines * lineBytes);
    api.fill(_base, 0, _mix.lines * lineBytes);

    // Deterministic per-seed behaviour assignment.
    Rng rng(_params.seed * 0x5851f42dULL + 7);
    _behaviours.clear();
    for (unsigned i = 0; i < _mix.lines; ++i) {
        unsigned roll = static_cast<unsigned>(rng.below(100));
        if (roll < _mix.falseSharedPct)
            _behaviours.push_back(LineBehaviour::FalseShared);
        else if (roll < _mix.falseSharedPct + _mix.trueSharedPct)
            _behaviours.push_back(LineBehaviour::TrueShared);
        else if (roll < _mix.falseSharedPct + _mix.trueSharedPct +
                            _mix.privatePct)
            _behaviours.push_back(LineBehaviour::PrivateHot);
        else
            _behaviours.push_back(LineBehaviour::ReadShared);
    }

    std::vector<ThreadId> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.push_back(api.spawn(
            "fuzz-" + std::to_string(t),
            [this, t](ThreadApi &wapi) { worker(wapi, t); }));
    }
    for (ThreadId t : workers)
        api.join(t);
}

void
FuzzLayoutWorkload::worker(ThreadApi &api, unsigned t)
{
    Rng &rng = api.rng();
    const unsigned lines = _mix.lines;

    for (std::uint64_t i = 0; i < _itersPerThread; ++i) {
        unsigned li = static_cast<unsigned>(rng.below(lines));
        Addr line = _base + li * lineBytes;
        switch (_behaviours[li]) {
          case LineBehaviour::FalseShared: {
            // Every thread read-modify-writes its own word of the
            // line: disjoint bytes, maximal coherence conflict.
            Addr slot = line + 8 * (t % 8);
            std::uint64_t v = api.load(_pcLoad, slot);
            api.store(_pcStore, slot, v + 1);
            break;
          }
          case LineBehaviour::TrueShared: {
            // Everyone read-modify-writes the same word (racy on
            // purpose: contention is the point, counts are not).
            std::uint64_t v = api.load(_pcLoad, line);
            api.store(_pcStore, line, v + 1);
            break;
          }
          case LineBehaviour::PrivateHot: {
            // Owned by one thread; others skip it.
            if (t == li % _params.threads) {
                std::uint64_t v = api.load(_pcLoad, line + 16);
                api.store(_pcStore, line + 16, v + 1);
            }
            break;
          }
          case LineBehaviour::ReadShared:
            api.load(_pcLoad, line + 24);
            break;
        }
    }
}

bool
FuzzLayoutWorkload::validate(Machine &machine)
{
    (void)machine;
    // The fuzzer's races are intentional; completion is the check.
    return true;
}

} // namespace tmi
