/**
 * @file
 * Phoenix string-match, with its known false sharing bug.
 *
 * Each worker hashes candidate keys against an encrypted dictionary
 * chunk, repeatedly writing two thread-private scratch buffers,
 * cur_word and cur_word_final. The buffers are 32 bytes each and
 * allocated back-to-back for all threads, so a pair can partially
 * overlap a neighbouring thread's pair on one cache line. The manual
 * fix pads each thread's scratch area to a full cache line.
 */

#ifndef TMI_WORKLOADS_STRINGMATCH_HH
#define TMI_WORKLOADS_STRINGMATCH_HH

#include "workloads/workload.hh"

namespace tmi
{

/** Phoenix string-match. */
class StringMatchWorkload : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "stringmatch"; }

    void init(Machine &machine) override;
    void main(ThreadApi &api) override;
    bool validate(Machine &machine) override;
    std::uint64_t resultDigest(Machine &machine) override;

  private:
    void worker(ThreadApi &api, unsigned t);

    Addr _pcKeyLoad = 0;
    Addr _pcScratchStore = 0;
    Addr _pcMatchLoad = 0;
    Addr _pcMatchStore = 0;

    Addr _keys = 0;     //!< dictionary of 8-byte encrypted keys
    Addr _scratch = 0;  //!< per-thread cur_word / cur_word_final
    Addr _matches = 0;  //!< per-thread match counters (padded)
    std::uint64_t _areaBytes = 0;
    std::uint64_t _keysPerThread = 0;
    std::uint64_t _expectedMatches = 0;
};

} // namespace tmi

#endif // TMI_WORKLOADS_STRINGMATCH_HH
