/**
 * @file
 * Model of Intel PEBS HITM sampling exposed through the Linux perf
 * API (paper sections 2.1 and 3.1).
 *
 * A PerfSession subscribes to the cache simulator's HITM events and
 * emits PEBS records into per-thread ring buffers at a configurable
 * sampling period. The model reproduces the documented imprecision:
 * the PC is reliable, the data address occasionally is not, and
 * store-triggered HITM events produce records at a lower rate than
 * loads. Each emitted record charges a microcode-assist cost to the
 * triggering thread, which is what makes small periods expensive
 * (Figure 4).
 *
 * Records do NOT say whether the access was a load or a store -- the
 * detector recovers that by disassembling the PC, as on real
 * hardware.
 */

#ifndef TMI_PERF_PEBS_HH
#define TMI_PERF_PEBS_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "cache/cache_sim.hh"
#include "common/config_error.hh"
#include "common/rng.hh"

namespace tmi
{

class FaultInjector;

namespace obs
{
class TraceRecorder;
} // namespace obs

/** One PEBS sample as seen by a userspace perf client. */
struct PebsRecord
{
    Addr vaddr = 0;    //!< sampled data address (may be imprecise)
    Addr pc = 0;       //!< program counter (reliable)
    ThreadId tid = 0;  //!< thread that triggered the event
    CoreId core = 0;   //!< core it ran on
    Cycles time = 0;   //!< simulated timestamp of the sample
};

/** Sampling configuration (perf_event_attr subset). */
struct PerfConfig
{
    std::uint64_t period = 100;    //!< emit one record per N events
    double storeSampleBias = 0.35; //!< stores count toward the period
                                   //!< only this often (undercounting)
    double addrNoiseProb = 0.02;   //!< data-address imprecision rate
    std::size_t bufferRecords = 8192; //!< per-thread ring capacity
    Cycles recordCost = 2200;      //!< assist cost charged per record
    std::uint64_t seed = 12345;    //!< imprecision RNG seed

    bool operator==(const PerfConfig &) const = default;
};

/** Collect PerfConfig constraint violations under @p prefix. */
void validateConfig(const PerfConfig &config,
                    std::vector<ConfigError> &errors,
                    const std::string &prefix = "PerfConfig");

/** Per-thread HITM event counting and record buffering. */
class PerfSession
{
  public:
    explicit PerfSession(const PerfConfig &config = {});

    const PerfConfig &config() const { return _config; }

    /** Change the sampling period (takes effect immediately). */
    void setPeriod(std::uint64_t period) { _config.period = period; }

    /** Wire the fault injector (null disables injection). */
    void setFaultInjector(FaultInjector *faults) { _faults = faults; }

    /** Wire the trace recorder: emitted records become HitmSample
     *  events, lost ones PebsRecordDrop (null disables). */
    void setTrace(obs::TraceRecorder *trace) { _trace = trace; }

    /** Open a counting context for @p tid (pthread_create hook). */
    void attachThread(ThreadId tid);

    /** True if @p tid has an open context. */
    bool attached(ThreadId tid) const;

    /**
     * Feed one HITM coherence event.
     *
     * @return extra cycles to charge the triggering thread (the PEBS
     *         assist cost when a record was emitted, else 0).
     */
    Cycles onHitm(const AccessContext &ctx, Cycles now);

    /**
     * Move all buffered records for @p tid into @p out.
     * @return number of records drained.
     */
    std::size_t drain(ThreadId tid, std::vector<PebsRecord> &out);

    /** Drain every attached thread's buffer into @p out. */
    std::size_t drainAll(std::vector<PebsRecord> &out);

    /** Records emitted so far (before any loss). */
    std::uint64_t recordsEmitted() const
    {
        return static_cast<std::uint64_t>(_statEmitted.value());
    }

    /** Records dropped because a ring buffer was full. */
    std::uint64_t recordsLost() const
    {
        return static_cast<std::uint64_t>(_statLost.value());
    }

    /** Raw HITM events observed (what period scaling estimates). */
    std::uint64_t eventsSeen() const
    {
        return static_cast<std::uint64_t>(_statEvents.value());
    }

    /** Approximate memory used by perf buffers, in bytes. */
    std::uint64_t bufferBytes() const;

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    struct ThreadCtx
    {
        std::uint64_t counter = 0;
        std::deque<PebsRecord> ring;
    };

    PerfConfig _config;
    Rng _rng;
    FaultInjector *_faults = nullptr;
    obs::TraceRecorder *_trace = nullptr;
    std::unordered_map<ThreadId, ThreadCtx> _threads;

    stats::Scalar _statEvents;
    stats::Scalar _statEmitted;
    stats::Scalar _statLost;
};

} // namespace tmi

#endif // TMI_PERF_PEBS_HH
