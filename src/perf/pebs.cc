#include "pebs.hh"

#include "fault/fault_injector.hh"
#include "obs/trace.hh"

namespace tmi
{

void
validateConfig(const PerfConfig &config,
               std::vector<ConfigError> &errors,
               const std::string &prefix)
{
    if (config.period < 1) {
        errors.push_back(
            {prefix + ".period",
             "must be >= 1: a zero sampling period would emit a "
             "record per event and divide by zero in the n/r "
             "correction"});
    }
    if (config.storeSampleBias < 0.0 || config.storeSampleBias > 1.0) {
        errors.push_back({prefix + ".storeSampleBias",
                          "is a probability and must be in [0, 1]"});
    }
    if (config.addrNoiseProb < 0.0 || config.addrNoiseProb > 1.0) {
        errors.push_back({prefix + ".addrNoiseProb",
                          "is a probability and must be in [0, 1]"});
    }
    if (config.bufferRecords == 0) {
        errors.push_back({prefix + ".bufferRecords",
                          "must be positive: a zero-slot ring drops "
                          "every record"});
    }
}

PerfSession::PerfSession(const PerfConfig &config)
    : _config(config), _rng(config.seed)
{
    std::vector<ConfigError> errors;
    validateConfig(config, errors);
    fatalIfConfigErrors(errors);
}

void
PerfSession::attachThread(ThreadId tid)
{
    _threads.emplace(tid, ThreadCtx{});
}

bool
PerfSession::attached(ThreadId tid) const
{
    return _threads.count(tid) != 0;
}

Cycles
PerfSession::onHitm(const AccessContext &ctx, Cycles now)
{
    auto it = _threads.find(ctx.tid);
    if (it == _threads.end())
        return 0;
    ThreadCtx &tc = it->second;
    ++_statEvents;

    // Stores advance the counter at a reduced rate: the HITM PEBS
    // event nominally covers loads, and store-triggered records are
    // observed to appear less often (paper section 2.1).
    if (ctx.isWrite && !_rng.chance(_config.storeSampleBias))
        return 0;

    if (++tc.counter < _config.period)
        return 0;
    tc.counter = 0;

    PebsRecord rec;
    rec.pc = ctx.pc;
    rec.tid = ctx.tid;
    rec.core = ctx.core;
    rec.time = now;
    rec.vaddr = ctx.vaddr;
    if (_rng.chance(_config.addrNoiseProb)) {
        // Imprecise data address: perturb within a small window, as
        // LASER observed on real PEBS hardware.
        std::uint64_t skid = _rng.below(2 * lineBytes);
        rec.vaddr = (rec.vaddr > skid) ? rec.vaddr - skid
                                       : rec.vaddr + skid;
    }

    bool ring_full = tc.ring.size() >= _config.bufferRecords;
    if (_faults && _faults->enabled()) {
        // Injected PEBS pathologies (CounterPoint-class failures).
        if (_faults->shouldFail(faultpoint::perfDropRecord)) {
            if (_trace) {
                _trace->recordAt(now, obs::EventKind::PebsRecordDrop,
                                 ctx.tid, rec.vaddr, 0);
            }
            return _config.recordCost; // assist ran, record vanished
        }
        if (_faults->shouldFail(faultpoint::perfWildPc)) {
            // PC outside the analyzed binary (JIT stub, vdso...):
            // the detector must filter it, not crash on it.
            rec.pc = 0xdead0000ULL | (rec.pc & 0xffffULL);
        }
        if (_faults->shouldFail(faultpoint::perfCorruptAddr)) {
            // Gross data-address corruption, far beyond normal skid.
            rec.vaddr ^= 0x5a5a5a5a5a40ULL;
        }
        ring_full = ring_full ||
                    _faults->shouldFail(faultpoint::perfRingOverflow);
    }

    if (ring_full) {
        ++_statLost;
        if (_trace) {
            _trace->recordAt(now, obs::EventKind::PebsRecordDrop,
                             ctx.tid, rec.vaddr, 1);
        }
    } else {
        tc.ring.push_back(rec);
        ++_statEmitted;
        if (_trace) {
            _trace->recordAt(now, obs::EventKind::HitmSample, ctx.tid,
                             rec.vaddr, rec.pc);
        }
    }
    return _config.recordCost;
}

std::size_t
PerfSession::drain(ThreadId tid, std::vector<PebsRecord> &out)
{
    auto it = _threads.find(tid);
    if (it == _threads.end())
        return 0;
    std::size_t n = it->second.ring.size();
    for (auto &rec : it->second.ring)
        out.push_back(rec);
    it->second.ring.clear();
    return n;
}

std::size_t
PerfSession::drainAll(std::vector<PebsRecord> &out)
{
    std::size_t n = 0;
    for (auto &[tid, tc] : _threads) {
        (void)tid;
        n += tc.ring.size();
        for (auto &rec : tc.ring)
            out.push_back(rec);
        tc.ring.clear();
    }
    return n;
}

std::uint64_t
PerfSession::bufferBytes() const
{
    // Each attached thread owns a fixed-size mmap'd ring in the real
    // system; account for the full capacity, not current occupancy.
    return static_cast<std::uint64_t>(_threads.size()) *
           _config.bufferRecords * sizeof(PebsRecord);
}

void
PerfSession::regStats(stats::StatGroup &group)
{
    group.addScalar("hitmEventsSeen", &_statEvents,
                    "HITM events observed by perf");
    group.addScalar("recordsEmitted", &_statEmitted,
                    "PEBS records written to buffers");
    group.addScalar("recordsLost", &_statLost,
                    "records dropped on full buffers");
}

} // namespace tmi
