#include "htm.hh"

#include "common/logging.hh"
#include "obs/trace.hh"

namespace tmi
{

HtmRuntime::HtmRuntime(Machine &machine, const HtmConfig &config)
    : _m(machine), _cfg(config), _trace(machine.trace()), _probe(machine)
{
    TMI_ASSERT(_cfg.maxRetries >= 1, "htm needs at least one attempt");
    TMI_ASSERT(_cfg.stormThreshold >= 1);
    // The lock-word subscription read: 4 bytes, matching the width
    // the machine's sync.lock.cas traffic stores.
    _pcLockProbe = _m.instructions().define("htm.lock.probe",
                                            MemKind::Load, 4);
}

void
HtmRuntime::attach()
{
    _m.setHooks(this);
}

Addr &
HtmRuntime::elidedSiteOf(ThreadId tid)
{
    if (_elided.size() <= tid)
        _elided.resize(tid + 1, 0);
    return _elided[tid];
}

void
HtmRuntime::countAbort(TxnAbortReason why)
{
    switch (why) {
      case TxnAbortReason::Conflict:
        ++_statAbortConflict;
        break;
      case TxnAbortReason::RemoteConflict:
        ++_statAbortRemote;
        break;
      case TxnAbortReason::Capacity:
        ++_statAbortCapacity;
        break;
      case TxnAbortReason::Spurious:
        ++_statAbortSpurious;
        break;
      case TxnAbortReason::Nested:
        ++_statAbortNested;
        break;
      case TxnAbortReason::None:
        break;
    }
}

bool
HtmRuntime::onMutexLock(ThreadId tid, Addr caddr)
{
    // A nested acquisition inside a speculative region: decline, and
    // let the machine abort the outer txn (Nested) -- the re-executed
    // entry falls straight back to real locks.
    if (_m.txnActive(tid))
        return false;
    if (_globalLockOnly)
        return false;

    SiteState &site = _sites[caddr];
    if (site.mode == SiteState::Mode::LockOnly &&
        !tryRecoverUp(site, caddr, _m.sched().now())) {
        return false;
    }

    unsigned attempts = 0;
    for (;;) {
        _m.compute(tid, _cfg.beginCost);
        // `attempts` lives in this frame: each txnBegin snapshots it,
        // so an abort arrival resumes with the count it had at that
        // begin and the ++ below makes retries progress.
        if (_m.txnBegin(tid, _cfg.readSetLines, _cfg.writeSetLines)) {
            // Subscribe the lock word: the read joins our read set,
            // so a real acquirer's CAS remote-aborts us. A nonzero
            // word means a real holder is inside the critical
            // section right now -- speculating alongside it would
            // read its half-done writes, so abort and retry until
            // its unlock store (which also aborts us) lands.
            std::uint64_t word =
                _m.memOp(tid, _pcLockProbe, caddr, false, 0, true);
            if (word != 0)
                _m.txnAbortSelf(tid, TxnAbortReason::Conflict);
            elidedSiteOf(tid) = caddr;
            return true;
        }

        // Abort arrival: memory and stack are back at begin-time.
        elidedSiteOf(tid) = 0;
        TxnAbortReason why = _m.txnAbortReason(tid);
        countAbort(why);
        _m.compute(tid, _cfg.abortCost);
        if (why == TxnAbortReason::Nested)
            break; // retrying replays the same nested lock
        if (why == TxnAbortReason::Conflict) {
            // Distinguish "a real holder owns the lock" from a data
            // conflict: re-speculating against a held lock word is a
            // guaranteed abort, so one fallback would cascade every
            // speculator into the fallback rung and trip the storm
            // watchdog on a healthy site. Wait out the holder with
            // plain loads instead (the glibc elision idiom) -- the
            // wait is bounded by the holder's critical section and
            // is not charged against the retry budget.
            bool lock_held = false;
            while (_m.memOp(tid, _pcLockProbe, caddr, false, 0, true) !=
                   0) {
                lock_held = true;
                _m.compute(tid, _cfg.backoffBase);
            }
            if (lock_held)
                continue;
        }
        ++attempts;
        if (attempts >= _cfg.maxRetries) {
            FaultInjector &faults = _m.faults();
            if (faults.enabled() &&
                faults.shouldFail(faultpoint::htmFallbackStuck)) {
                // Injected pathology: the fallback rung refuses the
                // real lock and re-enters retry. Every refusal feeds
                // the storm window, so the watchdog (when armed)
                // trips the site and cuts the loop; with it disabled
                // this is a genuine livelock the chaos oracle must
                // flag.
                ++_statFallbackStuck;
                _m.compute(tid, _cfg.fallbackStallCost);
                noteStorm(site, caddr);
                if (site.mode == SiteState::Mode::LockOnly ||
                    _globalLockOnly) {
                    break;
                }
                attempts = 0;
                continue;
            }
            break;
        }
        // Capped exponential backoff, staggered per thread: under the
        // deterministic scheduler symmetric delays re-align mutually
        // aborting txns so they collide forever; the tid-scaled term
        // is the deterministic stand-in for randomized backoff.
        Cycles backoff = (_cfg.backoffBase + tid * (_cfg.backoffBase / 2))
                         << (attempts - 1);
        if (backoff > _cfg.backoffCap)
            backoff = _cfg.backoffCap;
        _m.compute(tid, backoff);
    }

    // Graceful degradation: this entry takes the real lock.
    ++_statFallbacks;
    noteStorm(site, caddr);
    return false;
}

bool
HtmRuntime::onMutexUnlock(ThreadId tid, Addr caddr)
{
    if (!_m.txnActive(tid) || elidedSiteOf(tid) != caddr)
        return false;
    // If a conflict lands while the commit cost drains, the txn is
    // aborted out from under this frame and control re-emerges at
    // txnBegin -- the lines below only run for a real commit.
    bool conflict = _m.txnConflictObserved(tid);
    _m.compute(tid, _cfg.commitCost);
    _m.txnCommit(tid);
    _probe.afterTxnCommit("htm-elide", conflict);
    elidedSiteOf(tid) = 0;
    return true;
}

void
HtmRuntime::noteStorm(SiteState &site, Addr caddr)
{
    if (!_cfg.robust.watchdogEnabled ||
        site.mode == SiteState::Mode::LockOnly) {
        return;
    }
    Cycles now = _m.sched().now();
    if (now - site.windowStart > _cfg.stormWindow) {
        site.windowStart = now;
        site.fallbacksInWindow = 0;
    }
    if (++site.fallbacksInWindow >= _cfg.stormThreshold)
        tripSite(site, caddr, now);
}

void
HtmRuntime::tripSite(SiteState &site, Addr caddr, Cycles now)
{
    site.mode = SiteState::Mode::LockOnly;
    site.trippedAt = now;
    ++_lockedSites;
    ++_statStormTrips;
    ++_statLadderDrops;
    warn("htm: abort storm at lock %#lx (%u fallbacks in window); "
         "site -> lock-only",
         static_cast<unsigned long>(caddr), site.fallbacksInWindow);
    if (_trace) {
        _trace->recordHere(obs::EventKind::WatchdogFlush,
                           static_cast<std::uint64_t>(
                               _statStormTrips.value()),
                           caddr, "htm abort storm");
        _trace->recordHere(obs::EventKind::LadderDrop, 1, caddr,
                           "elide -> partial-lockdown");
    }
    if (!_globalLockOnly &&
        static_cast<std::uint64_t>(_statStormTrips.value()) >=
            _cfg.robust.watchdogMaxFlushes) {
        _globalLockOnly = true;
        ++_statLadderDrops;
        warn("htm: %lu storm trips; degrading to lock-only globally",
             static_cast<unsigned long>(_statStormTrips.value()));
        if (_trace) {
            _trace->recordHere(obs::EventKind::LadderDrop, 2, 0,
                               "partial-lockdown -> lock-only");
        }
    }
}

bool
HtmRuntime::tryRecoverUp(SiteState &site, Addr caddr, Cycles now)
{
    if (_cfg.robust.recoverUpWindows == 0)
        return false;
    Cycles quiet = static_cast<Cycles>(_cfg.robust.recoverUpWindows) *
                   _cfg.stormWindow;
    if (now - site.trippedAt < quiet)
        return false;
    site.mode = SiteState::Mode::Elide;
    site.fallbacksInWindow = 0;
    site.windowStart = now;
    TMI_ASSERT(_lockedSites > 0);
    --_lockedSites;
    ++_statLadderRecovers;
    inform("htm: lock %#lx quiet for %u windows; recovering to elide",
           static_cast<unsigned long>(caddr),
           _cfg.robust.recoverUpWindows);
    if (_trace) {
        _trace->recordHere(obs::EventKind::LadderRecover, 1, caddr,
                           "partial-lockdown -> elide");
    }
    return true;
}

void
HtmRuntime::regStats(stats::StatGroup &group)
{
    group.addScalar("htmFallbackLocks", &_statFallbacks,
                    "entries that fell back to the real lock");
    group.addScalar("htmStormTrips", &_statStormTrips,
                    "abort-storm watchdog trips (site -> lock-only)");
    group.addScalar("htmLadderDrops", &_statLadderDrops,
                    "elision ladder rungs dropped");
    group.addScalar("htmLadderRecovers", &_statLadderRecovers,
                    "sites recovered to elision after quiet windows");
    group.addScalar("htmFallbackStuck", &_statFallbackStuck,
                    "injected fallback refusals (htm.fallback_stuck)");
    group.addScalar("htmAbortConflict", &_statAbortConflict,
                    "aborts: remote-Modified hit inside the txn");
    group.addScalar("htmAbortRemote", &_statAbortRemote,
                    "aborts: another thread hit our read/write set");
    group.addScalar("htmAbortCapacity", &_statAbortCapacity,
                    "aborts: bounded set capacity overflow");
    group.addScalar("htmAbortSpurious", &_statAbortSpurious,
                    "aborts: injected htm.spurious_abort");
    group.addScalar("htmAbortNested", &_statAbortNested,
                    "aborts: nested sync inside the txn");
    _probe.regStats(group);
}

} // namespace tmi
