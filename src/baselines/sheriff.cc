#include "sheriff.hh"

namespace tmi
{

const char *
sheriffRungName(SheriffRung rung)
{
    switch (rung) {
      case SheriffRung::FullIsolation:
        return "full-isolation";
      case SheriffRung::PartialIsolation:
        return "partial-isolation";
      case SheriffRung::Dissolved:
        return "dissolved";
    }
    return "?";
}

SheriffRuntime::SheriffRuntime(Machine &machine,
                               const SheriffConfig &config)
    : _m(machine), _cfg(config), _invariants(machine),
      _trace(machine.trace())
{
}

void
SheriffRuntime::attach()
{
    _m.setHooks(this);
    _m.mmu().setCowCallback(
        [this](ProcessId pid, VPage vpage, PPage shared_frame,
               PPage private_frame) -> CowOutcome {
            auto it = _ptsbs.find(pid);
            if (it == _ptsbs.end())
                return {};
            CowOutcome out = it->second->onCowFault(
                vpage, shared_frame, private_frame);
            if (out.ok)
                _windowOverhead += out.cost;
            return out;
        });
    _m.mmu().setCowAbortCallback(
        [this](ProcessId pid, VPage vpage) {
            // The MMU reverted the page to SharedRW (no frame or no
            // twin). Writes go straight to shared memory; the page
            // loses isolation but the program stays correct.
            auto it = _ptsbs.find(pid);
            if (it != _ptsbs.end())
                it->second->forgetPage(vpage);
            ++_statCowFallbacks;
            if (_trace) {
                _trace->recordHere(obs::EventKind::CowFallback, vpage,
                                   pid);
            }
        });
    if (_cfg.robust.watchdogEnabled || _cfg.robust.monitorEnabled) {
        _m.spawnSystemThread(
            "sheriff-watchdog",
            [this](ThreadApi &api) { supervisionLoop(api); },
            /*daemon=*/true);
    }
}

void
SheriffRuntime::onThreadCreate(ThreadId tid)
{
    if (_rung == SheriffRung::Dissolved)
        return; // isolation abandoned: new threads run plain
    // Every thread runs as a process from birth, with all of the
    // heap protected. A clone failure is retried with backoff, the
    // same transactional-T2P policy Tmi applies (here the transaction
    // is a single thread, so the rollback is just the retry wait).
    const RobustnessConfig &rc = _cfg.robust;
    ProcessId pid = invalidProcessId;
    Cycles backoff = rc.t2pRetryBackoff;
    for (unsigned attempt = 1; attempt <= rc.t2pMaxAttempts;
         ++attempt) {
        pid = _m.mmu().cloneAddressSpace(_m.processOf(tid));
        if (pid != invalidProcessId)
            break;
        ++_statT2pAborts;
        if (_trace) {
            _trace->recordHere(obs::EventKind::T2pRollback, tid, 0,
                               "sheriff clone failed");
        }
        if (attempt == rc.t2pMaxAttempts)
            break;
        warn("sheriff: clone attempt %u/%u for thread %u failed; "
             "backing off %lu cycles",
             attempt, rc.t2pMaxAttempts,
             static_cast<unsigned>(tid),
             static_cast<unsigned long>(backoff));
        _m.sched().penalize(tid, rc.t2pAbortCost + backoff);
        backoff *= 2;
    }
    if (pid == invalidProcessId) {
        degradeTo(SheriffRung::PartialIsolation,
                  "address-space clone failed on every attempt; "
                  "thread stays plain");
        return;
    }
    _m.setThreadProcess(tid, pid);
    auto ptsb = std::make_unique<Ptsb>(_m.mmu(), pid, _cfg.ptsbCosts,
                                       &_m.cache(), &_m.faults());
    VPage heap_first = Machine::heapBase >> _m.config().pageShift;
    std::uint64_t heap_pages = _m.heapRegion().pages();
    Cycles cost = 0;
    for (std::uint64_t i = 0; i < heap_pages; ++i)
        cost += ptsb->protectPage(heap_first + i);
    _ptsbs.emplace(pid, std::move(ptsb));
    _m.sched().penalize(tid, _cfg.t2pCostPerThread + cost);
    ++_statConversions;
}

Addr
SheriffRuntime::onSyncObjectInit(ThreadId tid, Addr va)
{
    (void)tid;
    (void)va;
    // Processes cannot share plain pthread objects; Sheriff also
    // places them in process-shared memory.
    return _m.internalAlloc(lineBytes);
}

void
SheriffRuntime::onSyncAcquire(ThreadId tid)
{
    commitThread(tid);
}

void
SheriffRuntime::onSyncRelease(ThreadId tid)
{
    commitThread(tid);
}

void
SheriffRuntime::onHeapGrow(VPage first, std::uint64_t n)
{
    if (_rung == SheriffRung::Dissolved)
        return;
    Cycles cost = 0;
    for (auto &[pid, ptsb] : _ptsbs) {
        (void)pid;
        for (std::uint64_t i = 0; i < n; ++i)
            cost += ptsb->protectPage(first + i);
    }
    if (cost && _m.sched().current())
        _m.sched().advance(cost);
}

void
SheriffRuntime::commitThread(ThreadId tid)
{
    if (_rung == SheriffRung::Dissolved)
        return;
    auto it = _ptsbs.find(_m.processOf(tid));
    if (it == _ptsbs.end())
        return;
    CommitResult res = it->second->commit();
    ++_statCommits;
    Cycles cost = res.cost;
    if (_cfg.detectMode)
        cost += _cfg.detectAnalysisPerPage * res.pagesDiffed;
    _windowOverhead += cost;
    _windowLinesMerged += res.linesMerged;
    _m.sched().advance(cost);
}

void
SheriffRuntime::supervisionLoop(ThreadApi &api)
{
    Machine &m = api.machine();
    Cycles last = m.sched().now();
    while (true) {
        m.sched().sleepUntil(last + _cfg.monitorInterval);
        Cycles now = m.sched().now();
        Cycles window = now - last;
        last = now;
        if (_rung == SheriffRung::Dissolved) {
            _windowOverhead = 0;
            _windowLinesMerged = 0;
            continue;
        }
        if (_cfg.robust.watchdogEnabled)
            runWatchdog(window);
        if (_cfg.robust.monitorEnabled &&
            _rung != SheriffRung::Dissolved) {
            updateEffectiveness(window);
        }
    }
}

void
SheriffRuntime::runWatchdog(Cycles window)
{
    const RobustnessConfig &rc = _cfg.robust;
    Cycles flush_cost = 0;
    bool fired = false;
    for (auto &[pid, ptsb] : _ptsbs) {
        PtsbWatch &w = _watch[pid];
        std::uint64_t commits = ptsb->commits();
        if (ptsb->dirtyPages() == 0 || commits != w.lastCommits) {
            w.lastCommits = commits;
            w.stall = 0;
            continue;
        }
        w.stall += window;
        if (w.stall < rc.watchdogTimeout)
            continue;
        // This process holds buffered writes nobody else can see and
        // has not committed for the whole stall -- the same livelock
        // Tmi's watchdog breaks (Figure 12). Committing on its behalf
        // is the flush the thread would eventually issue.
        CommitResult res = ptsb->commit();
        flush_cost += res.cost;
        w.stall = 0;
        w.lastCommits = ptsb->commits();
        fired = true;
        if (_trace)
            _trace->recordHere(obs::EventKind::WatchdogFlush, pid);
    }
    if (!fired)
        return;
    ++_watchdogFires;
    ++_statWatchdogFlushes;
    warn("sheriff: watchdog force-committed stalled PTSB(s), fire %u "
         "of %u",
         _watchdogFires, rc.watchdogMaxFlushes);
    _m.sched().advance(flush_cost);
    if (_watchdogFires >= rc.watchdogMaxFlushes)
        dissolve("repeated PTSB-induced livelock");
}

void
SheriffRuntime::updateEffectiveness(Cycles window)
{
    const RobustnessConfig &rc = _cfg.robust;
    Cycles overhead = _windowOverhead;
    std::uint64_t merged = _windowLinesMerged;
    _windowOverhead = 0;
    _windowLinesMerged = 0;
    if (window == 0)
        return;
    if (++_windows <= rc.monitorWarmupWindows)
        return;
    // Sheriff isolates from birth, so there is no pre-repair HITM
    // baseline to learn (unlike Tmi). Each merged line stands in for
    // a coherence transfer isolation avoided: every one was a write
    // that would otherwise have invalidated the line under a sharer.
    double benefit = static_cast<double>(merged) *
                     static_cast<double>(rc.hitmCostEstimate);
    bool regressed =
        static_cast<double>(overhead) >
            static_cast<double>(window) * rc.minOverheadFraction &&
        static_cast<double>(overhead) > benefit * rc.regressFactor;
    _regressStreak = regressed ? _regressStreak + 1 : 0;
    if (_regressStreak >= rc.regressWindows)
        dissolve("isolation overhead dwarfs its benefit");
}

void
SheriffRuntime::dissolve(const char *reason)
{
    if (_cfg.buggyDissolveOrder) {
        // TEST-ONLY: the pre-fix ordering. Paying the dissolution
        // cost first yields this fiber while the rung still reads
        // FullIsolation; a thread spawned in that window is converted
        // and its PTSB never commits again (lost writes). Kept behind
        // the flag so the chaos oracle's regression test can prove it
        // catches exactly this bug.
        Cycles cost = 0;
        for (auto &[pid, ptsb] : _ptsbs) {
            (void)pid;
            cost += ptsb->dissolve();
        }
        if (_m.sched().current())
            _m.sched().advance(cost);
        degradeTo(SheriffRung::Dissolved, reason);
        finishDissolve(reason);
        return;
    }
    // Drop the rung BEFORE paying the dissolution cost: advance()
    // yields this fiber, and a thread created during that window
    // must see Dissolved and stay plain -- converting it would leave
    // a PTSB nobody ever commits again (lost writes).
    degradeTo(SheriffRung::Dissolved, reason);
    Cycles cost = 0;
    for (auto &[pid, ptsb] : _ptsbs) {
        (void)pid;
        cost += ptsb->dissolve();
    }
    finishDissolve(reason);
    if (_m.sched().current())
        _m.sched().advance(cost);
}

void
SheriffRuntime::finishDissolve(const char *reason)
{
    _m.flushTlbs();
    for (const auto &[pid, ptsb] : _ptsbs) {
        (void)pid;
        _invariants.afterDissolve("sheriff dissolve", *ptsb);
    }
    _invariants.afterUnrepair("sheriff dissolve");
    _watch.clear();
    _regressStreak = 0;
    ++_statUnrepairs;
    if (_trace)
        _trace->recordHere(obs::EventKind::Unrepair, 1, 0, reason);
    warn("sheriff: isolation dissolved (%s)", reason);
}

void
SheriffRuntime::degradeTo(SheriffRung rung, const char *reason)
{
    if (static_cast<int>(rung) >= static_cast<int>(_rung))
        return;
    warn("sheriff: degrading %s -> %s (%s)", sheriffRungName(_rung),
         sheriffRungName(rung), reason);
    if (_trace) {
        _trace->recordHere(obs::EventKind::LadderDrop,
                           static_cast<std::uint64_t>(_rung),
                           static_cast<std::uint64_t>(rung), reason);
    }
    _rung = rung;
    ++_statLadderDrops;
    // Rung changes alter hook behaviour: kill the access-path caches.
    _m.accessEpoch().bump();
}

std::uint64_t
SheriffRuntime::totalCommits() const
{
    std::uint64_t n = 0;
    for (const auto &[pid, ptsb] : _ptsbs) {
        (void)pid;
        n += ptsb->commits();
    }
    return n;
}

std::uint64_t
SheriffRuntime::totalConflictBytes() const
{
    std::uint64_t n = 0;
    for (const auto &[pid, ptsb] : _ptsbs) {
        (void)pid;
        n += ptsb->conflictBytes();
    }
    return n;
}

void
SheriffRuntime::regStats(stats::StatGroup &group)
{
    group.addScalar("conversions", &_statConversions,
                    "threads wrapped in processes");
    group.addScalar("commitCalls", &_statCommits,
                    "PTSB commit invocations");
    group.addScalar("t2pAborts", &_statT2pAborts,
                    "aborted address-space clone attempts");
    group.addScalar("unrepairs", &_statUnrepairs,
                    "isolation dissolutions");
    group.addScalar("watchdogFlushes", &_statWatchdogFlushes,
                    "watchdog force-commit events");
    group.addScalar("ladderDrops", &_statLadderDrops,
                    "degradation-ladder transitions");
    group.addScalar("cowFallbacks", &_statCowFallbacks,
                    "COW faults degraded to shared writes");
    _invariants.regStats(group);
}

} // namespace tmi
