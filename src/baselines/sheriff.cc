#include "sheriff.hh"

namespace tmi
{

SheriffRuntime::SheriffRuntime(Machine &machine,
                               const SheriffConfig &config)
    : _m(machine), _cfg(config)
{
}

void
SheriffRuntime::attach()
{
    _m.setHooks(this);
    _m.mmu().setCowCallback(
        [this](ProcessId pid, VPage vpage, PPage shared_frame,
               PPage private_frame) -> CowOutcome {
            auto it = _ptsbs.find(pid);
            if (it == _ptsbs.end())
                return {};
            return it->second->onCowFault(vpage, shared_frame,
                                          private_frame);
        });
}

void
SheriffRuntime::onThreadCreate(ThreadId tid)
{
    // Every thread runs as a process from birth, with all of the
    // heap protected.
    ProcessId pid = _m.mmu().cloneAddressSpace(_m.processOf(tid));
    if (pid == invalidProcessId) {
        warn("sheriff: could not isolate thread %u; it stays a "
             "plain thread",
             static_cast<unsigned>(tid));
        return;
    }
    _m.setThreadProcess(tid, pid);
    auto ptsb = std::make_unique<Ptsb>(_m.mmu(), pid, _cfg.ptsbCosts,
                                       &_m.cache());
    VPage heap_first = Machine::heapBase >> _m.config().pageShift;
    std::uint64_t heap_pages = _m.heapRegion().pages();
    Cycles cost = 0;
    for (std::uint64_t i = 0; i < heap_pages; ++i)
        cost += ptsb->protectPage(heap_first + i);
    _ptsbs.emplace(pid, std::move(ptsb));
    _m.sched().penalize(tid, _cfg.t2pCostPerThread + cost);
    ++_statConversions;
}

Addr
SheriffRuntime::onSyncObjectInit(ThreadId tid, Addr va)
{
    (void)tid;
    (void)va;
    // Processes cannot share plain pthread objects; Sheriff also
    // places them in process-shared memory.
    return _m.internalAlloc(lineBytes);
}

void
SheriffRuntime::onSyncAcquire(ThreadId tid)
{
    commitThread(tid);
}

void
SheriffRuntime::onSyncRelease(ThreadId tid)
{
    commitThread(tid);
}

void
SheriffRuntime::onHeapGrow(VPage first, std::uint64_t n)
{
    Cycles cost = 0;
    for (auto &[pid, ptsb] : _ptsbs) {
        (void)pid;
        for (std::uint64_t i = 0; i < n; ++i)
            cost += ptsb->protectPage(first + i);
    }
    if (cost && _m.sched().current())
        _m.sched().advance(cost);
}

void
SheriffRuntime::commitThread(ThreadId tid)
{
    auto it = _ptsbs.find(_m.processOf(tid));
    if (it == _ptsbs.end())
        return;
    CommitResult res = it->second->commit();
    ++_statCommits;
    Cycles cost = res.cost;
    if (_cfg.detectMode)
        cost += _cfg.detectAnalysisPerPage * res.pagesDiffed;
    _m.sched().advance(cost);
}

std::uint64_t
SheriffRuntime::totalCommits() const
{
    std::uint64_t n = 0;
    for (const auto &[pid, ptsb] : _ptsbs) {
        (void)pid;
        n += ptsb->commits();
    }
    return n;
}

std::uint64_t
SheriffRuntime::totalConflictBytes() const
{
    std::uint64_t n = 0;
    for (const auto &[pid, ptsb] : _ptsbs) {
        (void)pid;
        n += ptsb->conflictBytes();
    }
    return n;
}

void
SheriffRuntime::regStats(stats::StatGroup &group)
{
    group.addScalar("conversions", &_statConversions,
                    "threads wrapped in processes");
    group.addScalar("commitCalls", &_statCommits,
                    "PTSB commit invocations");
}

} // namespace tmi
