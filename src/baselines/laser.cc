#include "laser.hh"

namespace tmi
{

namespace
{

DetectorConfig
detectorConfigFor(Machine &machine, const LaserConfig &config)
{
    DetectorConfig dc = config.detector;
    dc.samplePeriod = machine.config().perf.period;
    dc.cyclesPerSecond = machine.config().cyclesPerSecond;
    dc.pageShift = machine.config().pageShift;
    return dc;
}

} // namespace

LaserRuntime::LaserRuntime(Machine &machine, const LaserConfig &config)
    : _m(machine), _cfg(config),
      _detector(machine.instructions(), machine.addressMap(),
                detectorConfigFor(machine, config))
{
}

void
LaserRuntime::attach()
{
    _m.setHooks(this);
    _m.spawnSystemThread(
        "laser-detector",
        [this](ThreadApi &api) { detectionLoop(api); },
        /*daemon=*/true);
}

std::uint64_t
LaserRuntime::syncOpsSoFar() const
{
    // Only full-fence operations force a TSO drain: lock operations
    // and atomic read-modify-writes. Plain atomic loads/stores ride
    // in the store buffer like ordinary accesses.
    return _m.sync().acquires() + _rmwAtomics;
}

bool
LaserRuntime::interceptAccess(ThreadId tid, Addr va, bool is_write,
                              Cycles &cost)
{
    (void)tid;
    if (_repairedPages.empty())
        return false;
    VPage vpage = va >> _m.config().pageShift;
    if (!_repairedPages.count(vpage))
        return false;
    ++_statBufferedAccesses;
    cost = is_write ? _cfg.bufferedStoreCost : _cfg.bufferedLoadCost;
    return true;
}

void
LaserRuntime::onSyncAcquire(ThreadId tid)
{
    (void)tid;
    if (!_repairedPages.empty()) {
        ++_statDrains;
        _m.sched().advance(_cfg.drainCost);
    }
}

void
LaserRuntime::onSyncRelease(ThreadId tid)
{
    onSyncAcquire(tid);
}

void
LaserRuntime::onAtomicOp(ThreadId tid, MemOrder order, bool is_rmw)
{
    (void)tid;
    // TSO gives no relaxed escape hatch: every locked RMW is a full
    // fence and drains the software store buffer, regardless of the
    // C++ memory order.
    (void)order;
    if (!is_rmw)
        return;
    ++_rmwAtomics;
    if (!_repairedPages.empty()) {
        ++_statDrains;
        _m.sched().advance(_cfg.drainCost);
    }
}

void
LaserRuntime::detectionLoop(ThreadApi &api)
{
    Machine &m = api.machine();
    Cycles last = m.sched().now();
    std::uint64_t last_syncs = 0;
    std::vector<PebsRecord> records;
    while (true) {
        m.sched().sleepUntil(last + _cfg.analysisInterval);
        Cycles now = m.sched().now();

        records.clear();
        m.perf().drainAll(records);
        Cycles cost = 0;
        for (const auto &rec : records)
            cost += _detector.consume(rec);
        AnalysisResult res = _detector.analyze(now - last);
        cost += res.cost;
        m.sched().advance(cost);

        // Repair gate: frequent synchronization makes a TSO store
        // buffer unprofitable, so LASER leaves such programs alone.
        std::uint64_t syncs = syncOpsSoFar();
        double window_sec = static_cast<double>(now - last) /
                            m.config().cyclesPerSecond;
        double sync_rate =
            static_cast<double>(syncs - last_syncs) / window_sec;
        last = now;
        last_syncs = syncs;

        if (res.pagesToRepair.empty())
            continue;
        if (sync_rate > _cfg.maxSyncRatePerSec) {
            _declined = true;
            continue;
        }
        for (VPage vpage : res.pagesToRepair)
            _repairedPages.insert(vpage);
    }
}

void
LaserRuntime::regStats(stats::StatGroup &group)
{
    group.addScalar("bufferedAccesses", &_statBufferedAccesses,
                    "accesses serviced by the software store buffer");
    group.addScalar("drains", &_statDrains,
                    "TSO store-buffer drains at sync/atomic ops");
    _detector.regStats(group);
}

} // namespace tmi
