#include "laser.hh"

namespace tmi
{

namespace
{

DetectorConfig
detectorConfigFor(Machine &machine, const LaserConfig &config)
{
    DetectorConfig dc = config.detector;
    dc.samplePeriod = machine.config().perf.period;
    dc.cyclesPerSecond = machine.config().cyclesPerSecond;
    dc.pageShift = machine.config().pageShift;
    return dc;
}

} // namespace

LaserRuntime::LaserRuntime(Machine &machine, const LaserConfig &config)
    : _m(machine), _cfg(config), _trace(machine.trace()),
      _detector(machine.instructions(), machine.addressMap(),
                detectorConfigFor(machine, config))
{
}

void
LaserRuntime::attach()
{
    _m.setHooks(this);
    _m.spawnSystemThread(
        "laser-detector",
        [this](ThreadApi &api) { detectionLoop(api); },
        /*daemon=*/true);
}

std::uint64_t
LaserRuntime::syncOpsSoFar() const
{
    // Only full-fence operations force a TSO drain: lock operations
    // and atomic read-modify-writes. Plain atomic loads/stores ride
    // in the store buffer like ordinary accesses.
    return _m.sync().acquires() + _rmwAtomics;
}

bool
LaserRuntime::interceptAccess(ThreadId tid, Addr va, bool is_write,
                              Cycles &cost)
{
    (void)tid;
    if (_repairedPages.empty())
        return false;
    VPage vpage = va >> _m.config().pageShift;
    if (!_repairedPages.count(vpage))
        return false;
    ++_statBufferedAccesses;
    cost = is_write ? _cfg.bufferedStoreCost : _cfg.bufferedLoadCost;
    _windowOverhead += cost;
    return true;
}

void
LaserRuntime::onSyncAcquire(ThreadId tid)
{
    (void)tid;
    if (!_repairedPages.empty()) {
        ++_statDrains;
        _windowOverhead += _cfg.drainCost;
        _m.sched().advance(_cfg.drainCost);
    }
}

void
LaserRuntime::onSyncRelease(ThreadId tid)
{
    onSyncAcquire(tid);
}

void
LaserRuntime::onAtomicOp(ThreadId tid, MemOrder order, bool is_rmw)
{
    (void)tid;
    // TSO gives no relaxed escape hatch: every locked RMW is a full
    // fence and drains the software store buffer, regardless of the
    // C++ memory order.
    (void)order;
    if (!is_rmw)
        return;
    ++_rmwAtomics;
    if (!_repairedPages.empty()) {
        ++_statDrains;
        _windowOverhead += _cfg.drainCost;
        _m.sched().advance(_cfg.drainCost);
    }
}

void
LaserRuntime::detectionLoop(ThreadApi &api)
{
    Machine &m = api.machine();
    Cycles last = m.sched().now();
    std::uint64_t last_syncs = 0;
    std::vector<PebsRecord> records;
    while (true) {
        m.sched().sleepUntil(last + _cfg.analysisInterval);
        Cycles now = m.sched().now();
        Cycles window = now - last;

        records.clear();
        m.perf().drainAll(records);
        Cycles cost = 0;
        for (const auto &rec : records)
            cost += _detector.consume(rec);
        AnalysisResult res = _detector.analyze(window);
        cost += res.cost;
        m.sched().advance(cost);

        // Repair gate: frequent synchronization makes a TSO store
        // buffer unprofitable, so LASER leaves such programs alone.
        std::uint64_t syncs = syncOpsSoFar();
        double window_sec = static_cast<double>(window) /
                            m.config().cyclesPerSecond;
        double sync_rate =
            static_cast<double>(syncs - last_syncs) / window_sec;
        last = now;
        last_syncs = syncs;

        if (_cfg.robust.monitorEnabled) {
            checkPerfHealth(window);
            updateEffectiveness(window);
        }

        if (res.pagesToRepair.empty())
            continue;
        if (!_repairAllowed)
            continue;
        if (_cfg.robust.monitorEnabled &&
            _windowsSinceUnrepair < _cfg.robust.repairCooldownWindows &&
            _unrepairs > 0) {
            continue; // let caches settle before re-instrumenting
        }
        if (sync_rate > _cfg.maxSyncRatePerSec) {
            _declined = true;
            continue;
        }
        for (VPage vpage : res.pagesToRepair)
            _repairedPages.insert(vpage);
        // The store buffer just armed: un-snapshot interceptArmed.
        _m.accessEpoch().bump();
    }
}

void
LaserRuntime::checkPerfHealth(Cycles window)
{
    (void)window;
    const RobustnessConfig &rc = _cfg.robust;
    std::uint64_t lost = _m.perf().recordsLost();
    std::uint64_t emitted = _m.perf().recordsEmitted();
    std::uint64_t d_lost = lost - _lastLost;
    std::uint64_t d_kept = emitted - _lastEmitted;
    _lastLost = lost;
    _lastEmitted = emitted;

    if (d_lost + d_kept < rc.lostRecordsMinSamples)
        return; // too few samples to judge this window
    double frac = static_cast<double>(d_lost) /
                  static_cast<double>(d_lost + d_kept);
    if (frac > rc.lostRecordsFraction)
        ++_lossStreak;
    else
        _lossStreak = 0;
    if (_lossStreak < rc.lostRecordsWindows)
        return;
    _lossStreak = 0;

    // Repair decisions based on samples this lossy would be noise.
    if (repairActive())
        unrepair("perf sampling unreliable");
    degradeToDetectOnly("perf rings persistently overflowing");
}

void
LaserRuntime::updateEffectiveness(Cycles window)
{
    const RobustnessConfig &rc = _cfg.robust;
    std::uint64_t hitm = _m.cache().hitmEvents();
    std::uint64_t window_hitm = hitm - _lastHitm;
    _lastHitm = hitm;
    Cycles overhead = _windowOverhead;
    _windowOverhead = 0;
    if (window == 0)
        return;

    if (!repairActive()) {
        // Learn the baseline HITM rate so a later repair has
        // something to be compared against.
        double rate = static_cast<double>(window_hitm) /
                      static_cast<double>(window);
        _preRepairHitmRate = _preRepairHitmRate == 0.0
                                 ? rate
                                 : 0.75 * _preRepairHitmRate +
                                       0.25 * rate;
        ++_windowsSinceUnrepair;
        _windowsSinceRepair = 0;
        return;
    }
    if (++_windowsSinceRepair <= rc.monitorWarmupWindows)
        return;

    double avoided = _preRepairHitmRate *
                         static_cast<double>(window) -
                     static_cast<double>(window_hitm);
    double benefit =
        avoided > 0
            ? avoided * static_cast<double>(rc.hitmCostEstimate)
            : 0.0;
    bool regressed =
        static_cast<double>(overhead) >
            static_cast<double>(window) * rc.minOverheadFraction &&
        static_cast<double>(overhead) > benefit * rc.regressFactor;
    _regressStreak = regressed ? _regressStreak + 1 : 0;
    if (_regressStreak >= rc.regressWindows)
        unrepair("DBI tax dwarfs the avoided-HITM benefit");
}

void
LaserRuntime::unrepair(const char *reason)
{
    // Removing DBI instrumentation is a code-patching operation, not
    // a memory operation: no pages move, no twins exist, so unlike
    // Tmi's PTSB dissolution it carries no simulated commit cost.
    _repairedPages.clear();
    _m.accessEpoch().bump();
    _regressStreak = 0;
    _windowsSinceRepair = 0;
    _windowsSinceUnrepair = 0;
    ++_unrepairs;
    ++_statUnrepairs;
    if (_trace)
        _trace->recordHere(obs::EventKind::Unrepair, _unrepairs, 0,
                           reason);
    warn("laser: un-repaired (%s); rollback %u of %u", reason,
         _unrepairs, _cfg.robust.maxUnrepairs);
    if (_unrepairs >= _cfg.robust.maxUnrepairs)
        degradeToDetectOnly("repair rollback budget exhausted");
}

void
LaserRuntime::degradeToDetectOnly(const char *reason)
{
    if (!_repairAllowed)
        return;
    warn("laser: degrading detect-and-repair -> detect-only (%s)",
         reason);
    if (_trace)
        _trace->recordHere(obs::EventKind::LadderDrop, 1, 0, reason);
    _repairAllowed = false;
    _m.accessEpoch().bump();
    ++_statLadderDrops;
}

void
LaserRuntime::regStats(stats::StatGroup &group)
{
    group.addScalar("bufferedAccesses", &_statBufferedAccesses,
                    "accesses serviced by the software store buffer");
    group.addScalar("drains", &_statDrains,
                    "TSO store-buffer drains at sync/atomic ops");
    group.addScalar("unrepairs", &_statUnrepairs,
                    "instrumentation rollbacks");
    group.addScalar("ladderDrops", &_statLadderDrops,
                    "degradation-ladder transitions");
    _detector.regStats(group);
}

} // namespace tmi
