/**
 * @file
 * An HTM lock-elision backend with abort/retry/fallback hardening.
 *
 * Unlike the detect-then-repair treatments (tmi, sheriff, laser,
 * huron-static), htm-elide never looks for false sharing at all: it
 * speculatively elides every mutex acquisition into a bounded
 * read/write-set transaction and lets the MESI simulator supply the
 * conflicts ("Limited Read/Write-Set HTM without modifying the ISA or
 * the Coherence Protocol"). False sharing then costs aborts instead
 * of HITM stalls -- and the characteristic pathology changes from COW
 * storms to *livelock-by-abort*, which is exactly the failure family
 * the chaos matrix lacked.
 *
 * The robustness envelope, mirroring the ladders of the other
 * runtimes:
 *
 *  - per-entry retry with capped exponential backoff; after
 *    HtmConfig::maxRetries consecutive aborts the entry falls back to
 *    the real lock (graceful degradation, the classic elision rung);
 *  - an abort-storm watchdog: a site whose fallback engagements
 *    cluster inside a storm window is tripped to lock-only
 *    ("partial-lockdown"); RobustnessConfig::watchdogMaxFlushes site
 *    trips degrade the whole runtime to "lock-only";
 *  - RecoverUp: a tripped site quietly returns to elision after
 *    RobustnessConfig::recoverUpWindows storm windows without a new
 *    storm (0 keeps trips permanent);
 *  - fault points htm.spurious_abort and htm.capacity_misaccount
 *    perturb the abort machinery inside the machine's txn engine, and
 *    htm.fallback_stuck makes the fallback rung itself refuse the
 *    real lock -- with the watchdog disabled that is a genuine
 *    livelock, which is the chaos reproducer this backend ships.
 *
 * Safety: an elided region reads the lock word into its read set, so
 * a real acquirer's CAS aborts every elider (speculation never runs
 * concurrently with a lock holder), and the commit-time invariant
 * probe checks that no transaction commits after observing a
 * conflicting remote store.
 */

#ifndef TMI_BASELINES_HTM_HH
#define TMI_BASELINES_HTM_HH

#include <unordered_map>
#include <vector>

#include "core/machine.hh"
#include "runtime/invariants.hh"
#include "runtime/robustness.hh"

namespace tmi
{

/** htm-elide configuration. */
struct HtmConfig
{
    /** Bounded speculative set capacities, in cache lines. */
    unsigned readSetLines = 64;
    unsigned writeSetLines = 32;
    /** Consecutive aborts of one entry before the real lock. Deep
     *  enough that the capped exponential backoff reaches a window
     *  longer than a contended critical section before the fallback
     *  rung engages (fallbacks write the lock word, which kills
     *  every concurrent speculator -- a rung worth deferring). */
    unsigned maxRetries = 8;

    Cycles beginCost = 40;   //!< checkpoint + txn setup
    Cycles commitCost = 25;  //!< set teardown at commit
    Cycles abortCost = 120;  //!< rollback + restart penalty
    /** First retry backoff; doubles per retry up to the cap. */
    Cycles backoffBase = 200;
    Cycles backoffCap = 25'000;
    /** Stall charged each time htm.fallback_stuck refuses the lock
     *  (keeps simulated time advancing through the livelock). */
    Cycles fallbackStallCost = 2'000;

    /** Abort-storm watchdog: this many fallback engagements at one
     *  site within one storm window trip the site to lock-only. */
    unsigned stormThreshold = 8;
    Cycles stormWindow = 1'000'000;

    /** Shared robustness vocabulary. The effectiveness monitor does
     *  not apply (there is no repair to judge); watchdogEnabled arms
     *  the abort-storm watchdog, watchdogMaxFlushes bounds site trips
     *  before global lock-only, and recoverUpWindows controls how
     *  many quiet storm windows un-trip a site. */
    RobustnessConfig robust{.monitorEnabled = false};
};

/** Speculative lock-elision runtime (Treatment::HtmElide). */
class HtmRuntime : public RuntimeHooks
{
  public:
    HtmRuntime(Machine &machine, const HtmConfig &config = {});

    /** Install hooks; no daemon thread (the watchdog is lazy). */
    void attach();

    bool onMutexLock(ThreadId tid, Addr caddr) override;
    bool onMutexUnlock(ThreadId tid, Addr caddr) override;

    /** @name Robustness queries (parity with the other runtimes) */
    /// @{
    /** "elide", "partial-lockdown" (some sites tripped), or
     *  "lock-only" (the watchdog gave up on elision globally). */
    const char *rungName() const
    {
        if (_globalLockOnly)
            return "lock-only";
        return _lockedSites != 0 ? "partial-lockdown" : "elide";
    }

    /** Elision still engaged somewhere (repairActive analogue). */
    bool elisionActive() const { return !_globalLockOnly; }

    /** Entries that fell back to the real lock. */
    std::uint64_t fallbackLocks() const
    {
        return static_cast<std::uint64_t>(_statFallbacks.value());
    }

    /** Abort-storm watchdog trips (site -> lock-only). */
    std::uint64_t watchdogFlushes() const
    {
        return static_cast<std::uint64_t>(_statStormTrips.value());
    }

    /** Ladder drops: every site trip, plus the global drop. */
    std::uint64_t ladderDrops() const
    {
        return static_cast<std::uint64_t>(_statLadderDrops.value());
    }

    /** Sites recovered back to elision after quiet windows. */
    std::uint64_t ladderRecovers() const
    {
        return static_cast<std::uint64_t>(_statLadderRecovers.value());
    }

    /** Commit-time invariant probe (chaos oracle input). */
    const InvariantProbe &probe() const { return _probe; }
    /// @}

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    /** Per-lock-site elision state, keyed by canonical address. */
    struct SiteState
    {
        enum class Mode : std::uint8_t
        {
            Elide,    //!< speculate on entry
            LockOnly, //!< storm-tripped: take the real lock
        };

        Mode mode = Mode::Elide;
        /** Storm accounting: fallbacks inside the current window. */
        unsigned fallbacksInWindow = 0;
        Cycles windowStart = 0;
        Cycles trippedAt = 0; //!< for RecoverUp's quiet-period test
    };

    /** Count a fallback toward the site's storm window. */
    void noteStorm(SiteState &site, Addr caddr);
    /** Trip @p site to lock-only; may drop the global rung. */
    void tripSite(SiteState &site, Addr caddr, Cycles now);
    /** Un-trip @p site if its quiet period has elapsed. */
    bool tryRecoverUp(SiteState &site, Addr caddr, Cycles now);
    /** Record one abort by reason. */
    void countAbort(TxnAbortReason why);

    Addr &elidedSiteOf(ThreadId tid);

    Machine &_m;
    HtmConfig _cfg;
    obs::TraceRecorder *_trace;
    InvariantProbe _probe;
    Addr _pcLockProbe = 0;

    std::unordered_map<Addr, SiteState> _sites;
    /** Lock site each thread is currently eliding (0 = none). */
    std::vector<Addr> _elided;
    unsigned _lockedSites = 0;
    bool _globalLockOnly = false;

    stats::Scalar _statFallbacks;
    stats::Scalar _statStormTrips;
    stats::Scalar _statLadderDrops;
    stats::Scalar _statLadderRecovers;
    stats::Scalar _statFallbackStuck;
    stats::Scalar _statAbortConflict;
    stats::Scalar _statAbortRemote;
    stats::Scalar _statAbortCapacity;
    stats::Scalar _statAbortSpurious;
    stats::Scalar _statAbortNested;
};

} // namespace tmi

#endif // TMI_BASELINES_HTM_HH
