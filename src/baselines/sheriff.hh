/**
 * @file
 * A Sheriff-like baseline runtime (Liu & Berger, OOPSLA 2011; paper
 * sections 2.2 and 4).
 *
 * Sheriff wraps every thread in a process from the moment it is
 * created and page-protects all of memory, running a PTSB
 * everywhere, always. That gives excellent false sharing repair --
 * close to manual fixes -- but two structural problems the paper
 * documents:
 *
 *  1. overhead without contention: every written page is twinned,
 *     diffed, and merged at every synchronization operation (27%
 *     average overhead in the paper);
 *  2. no code-centric consistency: atomics and inline assembly are
 *     buffered like plain stores, so programs that rely on them
 *     (canneal, leveldb, shptr-relaxed) produce wrong results or
 *     hang. In this reproduction those failures are emergent: the
 *     experiment driver observes validation failures and timeouts.
 *
 * sheriff-detect additionally pays a per-page analysis cost at each
 * commit (it inspects diffs to report sharing), making it heavier
 * than sheriff-protect.
 */

#ifndef TMI_BASELINES_SHERIFF_HH
#define TMI_BASELINES_SHERIFF_HH

#include <memory>
#include <unordered_map>

#include "core/machine.hh"
#include "ptsb/ptsb.hh"

namespace tmi
{

/** Sheriff configuration. */
struct SheriffConfig
{
    /** Detection flavor: extra per-page diff analysis at commits. */
    bool detectMode = false;
    PtsbCosts ptsbCosts;
    Cycles detectAnalysisPerPage = 2500;
    Cycles t2pCostPerThread = 110'000;
};

/** Threads-as-processes, PTSB-everywhere runtime. */
class SheriffRuntime : public RuntimeHooks
{
  public:
    SheriffRuntime(Machine &machine, const SheriffConfig &config = {});

    /** Install hooks and the COW callback. */
    void attach();

    void onThreadCreate(ThreadId tid) override;
    void onThreadExit(ThreadId tid) override { commitThread(tid); }
    bool atomicsBypassPrivate() override { return false; }
    Addr onSyncObjectInit(ThreadId tid, Addr va) override;
    void onSyncAcquire(ThreadId tid) override;
    void onSyncRelease(ThreadId tid) override;
    void onHeapGrow(VPage first, std::uint64_t n) override;

    /** Total PTSB commits across all threads. */
    std::uint64_t totalCommits() const;

    /** Racy-merge bytes across all PTSBs: Sheriff has no code-centric
     *  consistency, so atomics-based programs rack these up. */
    std::uint64_t totalConflictBytes() const;

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    void commitThread(ThreadId tid);

    Machine &_m;
    SheriffConfig _cfg;
    std::unordered_map<ProcessId, std::unique_ptr<Ptsb>> _ptsbs;

    stats::Scalar _statConversions;
    stats::Scalar _statCommits;
};

} // namespace tmi

#endif // TMI_BASELINES_SHERIFF_HH
