/**
 * @file
 * A Sheriff-like baseline runtime (Liu & Berger, OOPSLA 2011; paper
 * sections 2.2 and 4).
 *
 * Sheriff wraps every thread in a process from the moment it is
 * created and page-protects all of memory, running a PTSB
 * everywhere, always. That gives excellent false sharing repair --
 * close to manual fixes -- but two structural problems the paper
 * documents:
 *
 *  1. overhead without contention: every written page is twinned,
 *     diffed, and merged at every synchronization operation (27%
 *     average overhead in the paper);
 *  2. no code-centric consistency: atomics and inline assembly are
 *     buffered like plain stores, so programs that rely on them
 *     (canneal, leveldb, shptr-relaxed) produce wrong results or
 *     hang. In this reproduction those failures are emergent: the
 *     experiment driver observes validation failures and timeouts.
 *
 * sheriff-detect additionally pays a per-page analysis cost at each
 * commit (it inspects diffs to report sharing), making it heavier
 * than sheriff-protect.
 *
 * For apples-to-apples robustness sweeps against Tmi, Sheriff carries
 * the same RobustnessConfig and its own degradation ladder:
 * full-isolation -> partial-isolation (a clone failure exhausted its
 * retry budget, so some threads run plain) -> dissolved (the watchdog
 * or effectiveness monitor gave up on isolation entirely). The clone
 * retry loop is always armed; the watchdog and monitor default *off*
 * because stock Sheriff has no such machinery -- its documented
 * failure modes must stay emergent unless a sweep arms them via
 * ExperimentConfig::watchdog / ::monitor.
 */

#ifndef TMI_BASELINES_SHERIFF_HH
#define TMI_BASELINES_SHERIFF_HH

#include <memory>
#include <unordered_map>

#include "core/machine.hh"
#include "ptsb/ptsb.hh"
#include "runtime/invariants.hh"
#include "runtime/robustness.hh"

namespace tmi
{

/** Sheriff's degradation ladder (top to bottom). */
enum class SheriffRung
{
    Dissolved,        //!< isolation abandoned; plain execution
    PartialIsolation, //!< some threads could not be isolated
    FullIsolation,    //!< every thread in its own process
};

/** Human-readable rung name for logs and CSVs. */
const char *sheriffRungName(SheriffRung rung);

/** Sheriff configuration. */
struct SheriffConfig
{
    /** Detection flavor: extra per-page diff analysis at commits. */
    bool detectMode = false;
    PtsbCosts ptsbCosts;
    Cycles detectAnalysisPerPage = 2500;
    Cycles t2pCostPerThread = 110'000;

    /** Self-healing parity knobs (see file comment for defaults). */
    RobustnessConfig robust{.monitorEnabled = false,
                            .watchdogEnabled = false};
    /** Watchdog/monitor daemon cadence in simulated cycles. */
    Cycles monitorInterval = 2'000'000;

    /**
     * TEST-ONLY: reintroduce the dissolve-ordering bug this runtime
     * originally shipped with (the dissolution cost was paid --
     * yielding -- before the rung flipped, so a thread spawned inside
     * that window was converted and its PTSB never committed again:
     * lost writes). Exists so the chaos oracle's regression test can
     * prove it catches the bug; never set it outside tests.
     */
    bool buggyDissolveOrder = false;
};

/** Threads-as-processes, PTSB-everywhere runtime. */
class SheriffRuntime : public RuntimeHooks
{
  public:
    SheriffRuntime(Machine &machine, const SheriffConfig &config = {});

    /** Install hooks, the COW callbacks, and (when the watchdog or
     *  monitor is armed) the supervision daemon. */
    void attach();

    void onThreadCreate(ThreadId tid) override;
    void onThreadExit(ThreadId tid) override { commitThread(tid); }
    bool atomicsBypassPrivate() override { return false; }
    Addr onSyncObjectInit(ThreadId tid, Addr va) override;
    void onSyncAcquire(ThreadId tid) override;
    void onSyncRelease(ThreadId tid) override;
    void onHeapGrow(VPage first, std::uint64_t n) override;

    /** Total PTSB commits across all threads. */
    std::uint64_t totalCommits() const;

    /** Racy-merge bytes across all PTSBs: Sheriff has no code-centric
     *  consistency, so atomics-based programs rack these up. */
    std::uint64_t totalConflictBytes() const;

    /** @name Robustness queries (parity with TmiRuntime) */
    /// @{
    SheriffRung rung() const { return _rung; }
    const char *rungName() const { return sheriffRungName(_rung); }

    /** Aborted address-space clone attempts. */
    std::uint64_t t2pAborts() const
    {
        return static_cast<std::uint64_t>(_statT2pAborts.value());
    }

    /** Times isolation was torn down after engaging (0 or 1: a
     *  dissolution is final for Sheriff). */
    std::uint64_t unrepairs() const
    {
        return static_cast<std::uint64_t>(_statUnrepairs.value());
    }

    /** Watchdog force-flush events. */
    unsigned watchdogFires() const { return _watchdogFires; }

    /** COW faults degraded to plain shared writes. */
    std::uint64_t cowFallbacks() const
    {
        return static_cast<std::uint64_t>(_statCowFallbacks.value());
    }

    /** Ladder transitions taken. */
    std::uint64_t ladderDrops() const
    {
        return static_cast<std::uint64_t>(_statLadderDrops.value());
    }

    /** Ladder-transition invariant probe (chaos oracle). */
    const InvariantProbe &invariants() const { return _invariants; }
    /// @}

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    void commitThread(ThreadId tid);
    void supervisionLoop(ThreadApi &api);

    /** Force-commit PTSBs stuck with old dirty twins (the same
     *  livelock Tmi's watchdog breaks, e.g. cholesky's flag spin). */
    void runWatchdog(Cycles window);

    /** Dissolve isolation when its measured overhead dwarfs the
     *  coherence traffic it avoids. */
    void updateEffectiveness(Cycles window);

    /** Tear every PTSB down and fall to the Dissolved rung. */
    void dissolve(const char *reason);

    /** Shared dissolve bookkeeping + invariant probes. */
    void finishDissolve(const char *reason);

    /** One-way ladder transition with logging. */
    void degradeTo(SheriffRung rung, const char *reason);

    Machine &_m;
    SheriffConfig _cfg;
    InvariantProbe _invariants;
    /** The machine's recorder, or null when tracing is off. */
    obs::TraceRecorder *_trace;
    std::unordered_map<ProcessId, std::unique_ptr<Ptsb>> _ptsbs;

    SheriffRung _rung = SheriffRung::FullIsolation;

    // Effectiveness-monitor state: per-window isolation overhead
    // (commit + COW costs) against a merged-lines benefit proxy.
    Cycles _windowOverhead = 0;
    std::uint64_t _windowLinesMerged = 0;
    unsigned _windows = 0;
    unsigned _regressStreak = 0;

    // Watchdog state.
    struct PtsbWatch
    {
        std::uint64_t lastCommits = 0;
        Cycles stall = 0;
    };
    std::unordered_map<ProcessId, PtsbWatch> _watch;
    unsigned _watchdogFires = 0;

    stats::Scalar _statConversions;
    stats::Scalar _statCommits;
    stats::Scalar _statT2pAborts;
    stats::Scalar _statUnrepairs;
    stats::Scalar _statWatchdogFlushes;
    stats::Scalar _statLadderDrops;
    stats::Scalar _statCowFallbacks;
};

} // namespace tmi

#endif // TMI_BASELINES_SHERIFF_HH
