/**
 * @file
 * A LASER-like baseline runtime (Luo et al., HPCA 2016).
 *
 * LASER detects contention exactly the way Tmi does -- PEBS HITM
 * sampling -- but repairs it with a *software store buffer* applied
 * to contended regions through dynamic binary instrumentation,
 * preserving full TSO semantics. The consequences the paper
 * documents, reproduced here by the cost model:
 *
 *  - repaired accesses avoid coherence traffic but pay an
 *    instrumentation tax on every load and store of a repaired page,
 *    so LASER captures only ~24% of the manual-fix speedup;
 *  - TSO requires draining the buffer at every synchronization or
 *    non-relaxed atomic operation, so LASER declines to repair
 *    workloads with frequent synchronization (the Boost
 *    microbenchmarks).
 *
 * For apples-to-apples robustness sweeps, LASER carries the same
 * RobustnessConfig as Tmi and Sheriff: when armed, an effectiveness
 * monitor un-repairs pages whose instrumentation tax dwarfs the
 * avoided-HITM benefit (the paper's histogram slowdown becomes a
 * recoverable event instead of a permanent tax), and a perf-health
 * pass stops repairing off persistently lossy sampling. Both default
 * *off*: stock LASER keeps its documented behaviour unless a sweep
 * arms them via ExperimentConfig::monitor. A PTSB watchdog does not
 * apply -- LASER's store buffer drains at every sync by
 * construction, so it cannot livelock the way an uncommitted PTSB
 * can.
 */

#ifndef TMI_BASELINES_LASER_HH
#define TMI_BASELINES_LASER_HH

#include <unordered_set>

#include "core/machine.hh"
#include "detect/detector.hh"
#include "runtime/robustness.hh"

namespace tmi
{

/** LASER configuration. */
struct LaserConfig
{
    DetectorConfig detector;
    Cycles analysisInterval = 2'000'000;
    /** DBI cost per instrumented load on a repaired page. */
    Cycles bufferedLoadCost = 10;
    /** DBI cost per instrumented store on a repaired page. */
    Cycles bufferedStoreCost = 26;
    /** TSO drain at each sync/atomic once repair is active. */
    Cycles drainCost = 900;
    /**
     * Repair gate: if the application performs more than this many
     * sync+atomic operations per simulated second, the store buffer
     * would thrash and LASER leaves the program unrepaired.
     */
    double maxSyncRatePerSec = 1e6;

    /** Self-healing parity knobs (see file comment for defaults;
     *  watchdogEnabled is ignored -- no PTSB to watch). */
    RobustnessConfig robust{.monitorEnabled = false,
                            .watchdogEnabled = false};
};

/** HITM detection + software-store-buffer repair runtime. */
class LaserRuntime : public RuntimeHooks
{
  public:
    LaserRuntime(Machine &machine, const LaserConfig &config = {});

    /** Install hooks and launch the detection thread. */
    void attach();

    bool interceptAccess(ThreadId tid, Addr va, bool is_write,
                         Cycles &cost) override;
    bool interceptArmed() override { return !_repairedPages.empty(); }
    void onSyncAcquire(ThreadId tid) override;
    void onSyncRelease(ThreadId tid) override;
    void onAtomicOp(ThreadId tid, MemOrder order,
                    bool is_rmw) override;

    /** True once at least one page is being repaired. */
    bool repairActive() const { return !_repairedPages.empty(); }

    /** True if the sync-rate gate suppressed repair. */
    bool repairDeclined() const { return _declined; }

    Detector &detector() { return _detector; }

    /** @name Robustness queries (parity with TmiRuntime) */
    /// @{
    /** "detect-and-repair", or "detect-only" once the monitor gave
     *  up on store-buffer repair for this run. */
    const char *rungName() const
    {
        return _repairAllowed ? "detect-and-repair" : "detect-only";
    }

    /** Times repair was rolled back (instrumentation removed). */
    unsigned unrepairs() const { return _unrepairs; }

    /** Ladder transitions taken (at most 1: repair -> detect-only). */
    std::uint64_t ladderDrops() const
    {
        return static_cast<std::uint64_t>(_statLadderDrops.value());
    }
    /// @}

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    void detectionLoop(ThreadApi &api);
    std::uint64_t syncOpsSoFar() const;

    /** Un-repair when the DBI tax dwarfs the avoided-HITM benefit. */
    void updateEffectiveness(Cycles window);

    /** Stop repairing off persistently lossy perf sampling. */
    void checkPerfHealth(Cycles window);

    /** Remove the instrumentation from every repaired page. */
    void unrepair(const char *reason);

    /** One-way drop to detect-only with logging. */
    void degradeToDetectOnly(const char *reason);

    Machine &_m;
    LaserConfig _cfg;
    /** The machine's recorder, or null when tracing is off. */
    obs::TraceRecorder *_trace;
    Detector _detector;
    std::unordered_set<VPage> _repairedPages;
    bool _declined = false;
    std::uint64_t _rmwAtomics = 0;

    bool _repairAllowed = true;

    // Effectiveness-monitor state (mirrors TmiRuntime).
    double _preRepairHitmRate = 0; //!< EMA while un-repaired
    std::uint64_t _lastHitm = 0;
    Cycles _windowOverhead = 0; //!< DBI taxes + drains
    unsigned _regressStreak = 0;
    unsigned _windowsSinceRepair = 0;
    unsigned _windowsSinceUnrepair = 0;
    unsigned _unrepairs = 0;

    // Perf-health state.
    std::uint64_t _lastLost = 0;
    std::uint64_t _lastEmitted = 0;
    unsigned _lossStreak = 0;

    stats::Scalar _statBufferedAccesses;
    stats::Scalar _statDrains;
    stats::Scalar _statUnrepairs;
    stats::Scalar _statLadderDrops;
};

} // namespace tmi

#endif // TMI_BASELINES_LASER_HH
