/**
 * @file
 * A LASER-like baseline runtime (Luo et al., HPCA 2016).
 *
 * LASER detects contention exactly the way Tmi does -- PEBS HITM
 * sampling -- but repairs it with a *software store buffer* applied
 * to contended regions through dynamic binary instrumentation,
 * preserving full TSO semantics. The consequences the paper
 * documents, reproduced here by the cost model:
 *
 *  - repaired accesses avoid coherence traffic but pay an
 *    instrumentation tax on every load and store of a repaired page,
 *    so LASER captures only ~24% of the manual-fix speedup;
 *  - TSO requires draining the buffer at every synchronization or
 *    non-relaxed atomic operation, so LASER declines to repair
 *    workloads with frequent synchronization (the Boost
 *    microbenchmarks).
 */

#ifndef TMI_BASELINES_LASER_HH
#define TMI_BASELINES_LASER_HH

#include <unordered_set>

#include "core/machine.hh"
#include "detect/detector.hh"

namespace tmi
{

/** LASER configuration. */
struct LaserConfig
{
    DetectorConfig detector;
    Cycles analysisInterval = 2'000'000;
    /** DBI cost per instrumented load on a repaired page. */
    Cycles bufferedLoadCost = 10;
    /** DBI cost per instrumented store on a repaired page. */
    Cycles bufferedStoreCost = 26;
    /** TSO drain at each sync/atomic once repair is active. */
    Cycles drainCost = 900;
    /**
     * Repair gate: if the application performs more than this many
     * sync+atomic operations per simulated second, the store buffer
     * would thrash and LASER leaves the program unrepaired.
     */
    double maxSyncRatePerSec = 1e6;
};

/** HITM detection + software-store-buffer repair runtime. */
class LaserRuntime : public RuntimeHooks
{
  public:
    LaserRuntime(Machine &machine, const LaserConfig &config = {});

    /** Install hooks and launch the detection thread. */
    void attach();

    bool interceptAccess(ThreadId tid, Addr va, bool is_write,
                         Cycles &cost) override;
    void onSyncAcquire(ThreadId tid) override;
    void onSyncRelease(ThreadId tid) override;
    void onAtomicOp(ThreadId tid, MemOrder order,
                    bool is_rmw) override;

    /** True once at least one page is being repaired. */
    bool repairActive() const { return !_repairedPages.empty(); }

    /** True if the sync-rate gate suppressed repair. */
    bool repairDeclined() const { return _declined; }

    Detector &detector() { return _detector; }

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    void detectionLoop(ThreadApi &api);
    std::uint64_t syncOpsSoFar() const;

    Machine &_m;
    LaserConfig _cfg;
    Detector _detector;
    std::unordered_set<VPage> _repairedPages;
    bool _declined = false;
    std::uint64_t _rmwAtomics = 0;

    stats::Scalar _statBufferedAccesses;
    stats::Scalar _statDrains;
};

} // namespace tmi

#endif // TMI_BASELINES_LASER_HH
