#include "mmu.hh"

#include "fault/fault_injector.hh"
#include "obs/trace.hh"

namespace tmi
{

Mmu::Mmu(unsigned page_shift) : _phys(page_shift) {}

ProcessId
Mmu::createAddressSpace()
{
    auto pid = static_cast<ProcessId>(_spaces.size());
    _spaces.push_back(std::make_unique<AddressSpace>(pid));
    return pid;
}

ProcessId
Mmu::cloneAddressSpace(ProcessId src)
{
    if (_faults && _faults->shouldFail(faultpoint::memCloneFail)) {
        ++_statCloneFails;
        warn("mmu: address-space clone of pid %u failed (injected)",
             src);
        return invalidProcessId;
    }
    ProcessId pid = createAddressSpace();
    AddressSpace &dst = *_spaces[pid];
    const AddressSpace &from = space(src);
    for (const auto &[vpage, entry] : from.table()) {
        PageEntry copy = entry;
        if (entry.kind == MapKind::PrivateCow &&
            entry.privateFrame != invalidPPage) {
            copy.privateFrame = _phys.allocCopy(entry.privateFrame);
        }
        dst.install(vpage, copy);
    }
    ++_statClones;
    bumpEpoch();
    return pid;
}

AddressSpace &
Mmu::space(ProcessId pid)
{
    TMI_ASSERT(pid < _spaces.size());
    return *_spaces[pid];
}

const AddressSpace &
Mmu::space(ProcessId pid) const
{
    TMI_ASSERT(pid < _spaces.size());
    return *_spaces[pid];
}

void
Mmu::mapShared(ProcessId pid, Addr vbase, ShmRegion &region,
               std::uint64_t file_page_start, std::uint64_t n_pages)
{
    TMI_ASSERT((vbase & (pageBytes() - 1)) == 0);
    TMI_ASSERT(file_page_start + n_pages <= region.pages());
    AddressSpace &as = space(pid);
    VPage base = vpageOf(vbase);
    for (std::uint64_t i = 0; i < n_pages; ++i) {
        PageEntry entry;
        entry.backing = &region;
        entry.filePage = file_page_start + i;
        entry.kind = MapKind::SharedRW;
        as.install(base + i, entry);
    }
    bumpEpoch();
}

void
Mmu::protectPrivateCow(ProcessId pid, VPage vpage)
{
    PageEntry *entry = space(pid).find(vpage);
    TMI_ASSERT(entry, "protect of unmapped page");
    if (entry->kind == MapKind::PrivateCow)
        return;
    entry->kind = MapKind::PrivateCow;
    entry->privateFrame = invalidPPage;
    ++_statProtects;
    bumpEpoch();
}

void
Mmu::unprotect(ProcessId pid, VPage vpage)
{
    PageEntry *entry = space(pid).find(vpage);
    TMI_ASSERT(entry, "unprotect of unmapped page");
    if (entry->kind != MapKind::PrivateCow)
        return;
    if (entry->privateFrame != invalidPPage) {
        _phys.freeFrame(entry->privateFrame);
        entry->privateFrame = invalidPPage;
    }
    entry->kind = MapKind::SharedRW;
    ++_statUnprotects;
    bumpEpoch();
}

bool
Mmu::isProtected(ProcessId pid, VPage vpage) const
{
    const PageEntry *entry = space(pid).find(vpage);
    return entry && entry->kind == MapKind::PrivateCow;
}

void
Mmu::dropPrivateFrame(ProcessId pid, VPage vpage)
{
    PageEntry *entry = space(pid).find(vpage);
    TMI_ASSERT(entry && entry->kind == MapKind::PrivateCow);
    if (entry->privateFrame != invalidPPage) {
        _phys.freeFrame(entry->privateFrame);
        entry->privateFrame = invalidPPage;
    }
    bumpEpoch();
}

PageEntry &
Mmu::entryForAccess(ProcessId pid, Addr vaddr)
{
    PageEntry *entry = space(pid).find(vpageOf(vaddr));
    if (!entry) {
        panic("simulated segfault: pid %u access to unmapped vaddr %#lx",
              pid, static_cast<unsigned long>(vaddr));
    }
    return *entry;
}

void
Mmu::abandonCow(ProcessId pid, VPage vpage, PageEntry &entry)
{
    // The process cannot take a private copy right now (no frame or
    // no twin). Reverting to SharedRW is always memory-safe: writes
    // land directly in shared memory, which is exactly the unrepaired
    // behaviour -- we merely lose the isolation benefit on this page.
    entry.kind = MapKind::SharedRW;
    entry.privateFrame = invalidPPage;
    ++_statCowAborts;
    bumpEpoch();
    if (_cowAbortCallback)
        _cowAbortCallback(pid, vpage);
}

TranslateResult
Mmu::translate(ProcessId pid, Addr vaddr, bool is_write)
{
    TranslateResult res;
    PageEntry &entry = entryForAccess(pid, vaddr);
    if (!entry.touched) {
        entry.touched = true;
        res.softFault = true;
        ++_statSoftFaults;
    }
    if (is_write && entry.kind == MapKind::PrivateCow &&
        entry.privateFrame == invalidPPage) {
        VPage vpage = vpageOf(vaddr);
        if (_faults &&
            _faults->shouldFail(faultpoint::memFrameExhausted)) {
            res.cowAborted = true;
            abandonCow(pid, vpage, entry);
        } else {
            PPage shared = entry.backing->frameFor(entry.filePage);
            entry.privateFrame = _phys.allocCopy(shared);
            res.cowFault = true;
            ++_statCowFaults;
            if (_cowCallback) {
                CowOutcome out = _cowCallback(pid, vpage, shared,
                                              entry.privateFrame);
                if (out.ok) {
                    res.extraCost = out.cost;
                } else {
                    // The handler (PTSB) could not twin the page:
                    // undo the divergence before any write lands in
                    // the private frame.
                    _phys.freeFrame(entry.privateFrame);
                    res.cowFault = false;
                    res.cowAborted = true;
                    abandonCow(pid, vpage, entry);
                }
            }
            if (res.cowFault && _trace) {
                _trace->recordHere(obs::EventKind::CowFault, vpage,
                                   pid);
            }
        }
    }
    Addr off = vaddr & (pageBytes() - 1);
    // The page is touched by now; SharedRW means no future access can
    // fault or diverge, so the translation is safe to cache until the
    // next epoch bump.
    res.cacheable = entry.kind == MapKind::SharedRW;
    res.paddr = (entry.activeFrame() << pageShift()) | off;
    return res;
}

bool
Mmu::translatePeek(ProcessId pid, Addr vaddr, Addr &paddr) const
{
    const PageEntry *entry = space(pid).find(vpageOf(vaddr));
    if (!entry)
        return false;
    Addr off = vaddr & (pageBytes() - 1);
    paddr = (entry->activeFrame() << pageShift()) | off;
    return true;
}

void
Mmu::read(ProcessId pid, Addr vaddr, void *buf, std::size_t size)
{
    auto *out = static_cast<std::uint8_t *>(buf);
    while (size > 0) {
        Addr off = vaddr & (pageBytes() - 1);
        std::size_t chunk =
            std::min<std::size_t>(size, pageBytes() - off);
        TranslateResult tr = translate(pid, vaddr, false);
        _phys.read(tr.paddr, out, chunk);
        out += chunk;
        vaddr += chunk;
        size -= chunk;
    }
}

void
Mmu::write(ProcessId pid, Addr vaddr, const void *buf, std::size_t size)
{
    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (size > 0) {
        Addr off = vaddr & (pageBytes() - 1);
        std::size_t chunk =
            std::min<std::size_t>(size, pageBytes() - off);
        TranslateResult tr = translate(pid, vaddr, true);
        _phys.write(tr.paddr, in, chunk);
        in += chunk;
        vaddr += chunk;
        size -= chunk;
    }
}

void
Mmu::readShared(ProcessId pid, Addr vaddr, void *buf, std::size_t size)
{
    auto *out = static_cast<std::uint8_t *>(buf);
    while (size > 0) {
        Addr off = vaddr & (pageBytes() - 1);
        std::size_t chunk =
            std::min<std::size_t>(size, pageBytes() - off);
        const PageEntry *entry = space(pid).find(vpageOf(vaddr));
        TMI_ASSERT(entry, "readShared of unmapped page");
        PPage frame = entry->backing->frameFor(entry->filePage);
        _phys.read((frame << pageShift()) | off, out, chunk);
        out += chunk;
        vaddr += chunk;
        size -= chunk;
    }
}

std::uint64_t
Mmu::softFaults() const
{
    return static_cast<std::uint64_t>(_statSoftFaults.value());
}

std::uint64_t
Mmu::cowFaults() const
{
    return static_cast<std::uint64_t>(_statCowFaults.value());
}

void
Mmu::regStats(stats::StatGroup &group)
{
    group.addScalar("softFaults", &_statSoftFaults,
                    "first-touch page faults");
    group.addScalar("cowFaults", &_statCowFaults,
                    "copy-on-write faults on protected pages");
    group.addScalar("cowAborts", &_statCowAborts,
                    "COW faults abandoned (no frame or twin)");
    group.addScalar("protects", &_statProtects,
                    "pages switched to PrivateCow");
    group.addScalar("unprotects", &_statUnprotects,
                    "pages reverted to SharedRW");
    group.addScalar("clones", &_statClones,
                    "address-space clones (T2P conversions)");
    group.addScalar("cloneFails", &_statCloneFails,
                    "address-space clones that failed (injected)");
    _phys.regStats(group);
}

} // namespace tmi
