/**
 * @file
 * Simulated physical memory: a sparse store of page frames.
 *
 * Frames are allocated by monotonically increasing frame number and
 * their backing host buffers are materialized lazily on first byte
 * access, so large simulated footprints cost accounting only until
 * they are actually touched. Reads from untouched frames return zero,
 * matching anonymous-mmap semantics.
 */

#ifndef TMI_MEM_PHYSICAL_HH
#define TMI_MEM_PHYSICAL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace tmi
{

/** Sparse, lazily materialized simulated physical memory. */
class PhysicalMemory
{
  public:
    /**
     * @param page_shift log2 of the frame size (12 for 4 KB frames,
     *                   21 for 2 MB huge frames).
     */
    explicit PhysicalMemory(unsigned page_shift);

    /** Frame size in bytes. */
    Addr pageBytes() const { return Addr{1} << _pageShift; }

    /** log2 of the frame size. */
    unsigned pageShift() const { return _pageShift; }

    /** Allocate a fresh zeroed frame and return its frame number. */
    PPage allocFrame();

    /**
     * Allocate a private copy-on-write copy of @p src.
     *
     * The new frame's contents equal src's current contents.
     */
    PPage allocCopy(PPage src);

    /** Release a frame; its number is not reused. */
    void freeFrame(PPage frame);

    /** Read @p size bytes starting at physical address @p paddr. */
    void read(Addr paddr, void *buf, std::size_t size) const;

    /** Write @p size bytes starting at physical address @p paddr. */
    void write(Addr paddr, const void *buf, std::size_t size);

    /**
     * Borrow a frame's backing buffer, materializing it if needed.
     *
     * Used by the PTSB diff/merge path, which scans whole pages.
     */
    std::uint8_t *framePtr(PPage frame);

    /** Borrow a frame's buffer for reading; null if never touched. */
    const std::uint8_t *framePtrIfTouched(PPage frame) const;

    /** True if @p frame is currently allocated. */
    bool frameLive(PPage frame) const;

    /** Number of frames currently allocated (live). */
    std::uint64_t liveFrames() const { return _liveFrames; }

    /** Bytes of simulated memory currently allocated (live frames). */
    std::uint64_t liveBytes() const { return _liveFrames * pageBytes(); }

    /** High-water mark of live frames. */
    std::uint64_t peakFrames() const { return _peakFrames; }

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    struct Frame
    {
        std::unique_ptr<std::uint8_t[]> data; //!< null until touched
        bool live = false;
    };

    Frame &frameRef(PPage frame);
    const Frame &frameRefConst(PPage frame) const;
    std::uint8_t *materialize(Frame &f);

    unsigned _pageShift;
    std::vector<Frame> _frames;
    std::uint64_t _liveFrames = 0;
    std::uint64_t _peakFrames = 0;

    stats::Scalar _statFramesAllocated;
    stats::Scalar _statFramesCopied;
    stats::Scalar _statFramesFreed;
};

} // namespace tmi

#endif // TMI_MEM_PHYSICAL_HH
