/**
 * @file
 * A simulated process-shared memory region (the shm_open file).
 *
 * Tmi's allocator serves all application memory from a shared,
 * file-backed region so that page permissions and mappings can be
 * changed per-process during execution (paper section 3.2). A
 * ShmRegion models that file: an ordered sequence of shared physical
 * frames that any address space can map.
 */

#ifndef TMI_MEM_SHM_HH
#define TMI_MEM_SHM_HH

#include <string>
#include <vector>

#include "mem/physical.hh"

namespace tmi
{

/** A named, growable run of shared physical frames. */
class ShmRegion
{
  public:
    ShmRegion(std::string name, PhysicalMemory &phys)
        : _name(std::move(name)), _phys(phys)
    {}

    /** Region name (diagnostic only, like a /dev/shm path). */
    const std::string &name() const { return _name; }

    /** Current size in pages. */
    std::uint64_t pages() const { return _frames.size(); }

    /** Current size in bytes. */
    Addr bytes() const { return pages() * _phys.pageBytes(); }

    /** Grow the region (ftruncate) by @p n pages; returns old size. */
    std::uint64_t
    grow(std::uint64_t n)
    {
        std::uint64_t old = _frames.size();
        for (std::uint64_t i = 0; i < n; ++i)
            _frames.push_back(_phys.allocFrame());
        return old;
    }

    /** Shared frame backing file page @p file_page. */
    PPage
    frameFor(std::uint64_t file_page) const
    {
        TMI_ASSERT(file_page < _frames.size());
        return _frames[file_page];
    }

    /** The physical memory this region allocates from. */
    PhysicalMemory &phys() const { return _phys; }

  private:
    std::string _name;
    PhysicalMemory &_phys;
    std::vector<PPage> _frames;
};

} // namespace tmi

#endif // TMI_MEM_SHM_HH
