/**
 * @file
 * The simulated MMU: translation, protection, faults, and COW.
 *
 * The Mmu owns the physical memory and all address spaces. It is the
 * single point through which every simulated memory access flows, and
 * it is where Tmi's repair mechanism hooks in: protecting a page as
 * PrivateCow makes the next write to it fault, copy the frame, and
 * diverge that process's view of the page from shared memory until
 * the PTSB commits it back.
 */

#ifndef TMI_MEM_MMU_HH
#define TMI_MEM_MMU_HH

#include <functional>
#include <memory>
#include <vector>

#include "mem/address_space.hh"

namespace tmi
{

/** Outcome metadata for one translation. */
struct TranslateResult
{
    Addr paddr = 0;          //!< resulting physical address
    bool softFault = false;  //!< first access to the page by this process
    bool cowFault = false;   //!< write hit a PrivateCow page
    Cycles extraCost = 0;    //!< cost reported by the COW callback
};

/**
 * Called when a write faults on a PrivateCow page, after the private
 * frame has been created. The PTSB uses this to snapshot the twin.
 *
 * @return cycles to charge the faulting access (twin-copy cost). The
 *         callback must not yield to the scheduler.
 */
using CowCallback = std::function<Cycles(ProcessId pid, VPage vpage,
                                         PPage shared_frame,
                                         PPage private_frame)>;

/** Simulated memory-management unit. */
class Mmu
{
  public:
    explicit Mmu(unsigned page_shift);

    PhysicalMemory &phys() { return _phys; }
    const PhysicalMemory &phys() const { return _phys; }

    unsigned pageShift() const { return _phys.pageShift(); }
    Addr pageBytes() const { return _phys.pageBytes(); }

    /** Virtual page number of @p vaddr under the configured size. */
    VPage vpageOf(Addr vaddr) const { return vaddr >> pageShift(); }

    /** Create a fresh empty address space; returns its pid. */
    ProcessId createAddressSpace();

    /**
     * Clone @p src's page table into a new address space (fork).
     *
     * Shared mappings alias the same frames; PrivateCow pages with a
     * live private frame get their own copy (fork copies them).
     */
    ProcessId cloneAddressSpace(ProcessId src);

    /** Access a space by pid. */
    AddressSpace &space(ProcessId pid);
    const AddressSpace &space(ProcessId pid) const;

    /** Number of address spaces created so far. */
    std::size_t spaceCount() const { return _spaces.size(); }

    /**
     * Map @p n_pages of @p region at virtual address @p vbase in
     * process @p pid as a shared read-write mapping.
     */
    void mapShared(ProcessId pid, Addr vbase, ShmRegion &region,
                   std::uint64_t file_page_start, std::uint64_t n_pages);

    /**
     * Switch @p vpage in @p pid to PrivateCow (repair protection).
     *
     * Subsequent writes by that process fault and copy the frame.
     * No-op if already protected.
     */
    void protectPrivateCow(ProcessId pid, VPage vpage);

    /**
     * Revert @p vpage in @p pid to SharedRW, dropping any private
     * frame. The caller (PTSB) must have merged wanted changes first.
     */
    void unprotect(ProcessId pid, VPage vpage);

    /** True if @p vpage is currently PrivateCow in @p pid. */
    bool isProtected(ProcessId pid, VPage vpage) const;

    /**
     * Drop a PrivateCow page's private frame without unprotecting,
     * so the next write re-faults and re-twins (PTSB commit step 5).
     */
    void dropPrivateFrame(ProcessId pid, VPage vpage);

    /** Install the COW-fault callback (at most one; PTSB). */
    void setCowCallback(CowCallback cb) { _cowCallback = std::move(cb); }

    /**
     * Translate @p vaddr for an access by @p pid.
     *
     * Handles first-touch accounting and COW faults. Panics on an
     * unmapped page (a simulated segfault is always a harness bug).
     */
    TranslateResult translate(ProcessId pid, Addr vaddr, bool is_write);

    /**
     * Translate without side effects (no faults, no accounting).
     *
     * Returns false if unmapped. Used by diagnostic readers.
     */
    bool translatePeek(ProcessId pid, Addr vaddr, Addr &paddr) const;

    /** Data-path read: translate page-by-page and copy bytes out. */
    void read(ProcessId pid, Addr vaddr, void *buf, std::size_t size);

    /** Data-path write: translate page-by-page and copy bytes in. */
    void write(ProcessId pid, Addr vaddr, const void *buf,
               std::size_t size);

    /**
     * Read through the always-shared mapping, ignoring PrivateCow
     * divergence (the paper's first mmap of the shm file).
     */
    void readShared(ProcessId pid, Addr vaddr, void *buf,
                    std::size_t size);

    /** Total soft (first-touch) page faults taken. */
    std::uint64_t softFaults() const;

    /** Total COW faults taken. */
    std::uint64_t cowFaults() const;

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    PageEntry &entryForAccess(ProcessId pid, Addr vaddr);

    PhysicalMemory _phys;
    std::vector<std::unique_ptr<AddressSpace>> _spaces;
    CowCallback _cowCallback;

    stats::Scalar _statSoftFaults;
    stats::Scalar _statCowFaults;
    stats::Scalar _statProtects;
    stats::Scalar _statUnprotects;
    stats::Scalar _statClones;
};

} // namespace tmi

#endif // TMI_MEM_MMU_HH
