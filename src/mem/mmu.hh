/**
 * @file
 * The simulated MMU: translation, protection, faults, and COW.
 *
 * The Mmu owns the physical memory and all address spaces. It is the
 * single point through which every simulated memory access flows, and
 * it is where Tmi's repair mechanism hooks in: protecting a page as
 * PrivateCow makes the next write to it fault, copy the frame, and
 * diverge that process's view of the page from shared memory until
 * the PTSB commits it back.
 */

#ifndef TMI_MEM_MMU_HH
#define TMI_MEM_MMU_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/epoch.hh"
#include "mem/address_space.hh"

namespace tmi
{

class FaultInjector;

namespace obs
{
class TraceRecorder;
} // namespace obs

/** Outcome metadata for one translation. */
struct TranslateResult
{
    Addr paddr = 0;          //!< resulting physical address
    bool softFault = false;  //!< first access to the page by this process
    bool cowFault = false;   //!< write hit a PrivateCow page
    bool cowAborted = false; //!< COW failed; page reverted to SharedRW
    Cycles extraCost = 0;    //!< cost reported by the COW callback
    /** True when the page ended this translation touched and
     *  SharedRW: for such pages translate() is pure (no faults, no
     *  stats, no RNG), so the AccessPipeline may cache the frame. */
    bool cacheable = false;
};

/** What the COW-fault callback did. */
struct CowOutcome
{
    /** Cycles to charge the faulting access (twin-copy cost). */
    Cycles cost = 0;
    /** False: the handler could not take the page (e.g. the twin
     *  allocation failed); the MMU must abandon the divergence. */
    bool ok = true;
};

/**
 * Called when a write faults on a PrivateCow page, after the private
 * frame has been created. The PTSB uses this to snapshot the twin.
 * The callback must not yield to the scheduler.
 */
using CowCallback = std::function<CowOutcome(ProcessId pid, VPage vpage,
                                             PPage shared_frame,
                                             PPage private_frame)>;

/**
 * Called when a COW fault could not be serviced (frame exhaustion or
 * a failed twin allocation) and the page reverted to SharedRW in that
 * process. Lets the runtime drop its own protection bookkeeping.
 */
using CowAbortCallback = std::function<void(ProcessId pid, VPage vpage)>;

/** Simulated memory-management unit. */
class Mmu
{
  public:
    explicit Mmu(unsigned page_shift);

    PhysicalMemory &phys() { return _phys; }
    const PhysicalMemory &phys() const { return _phys; }

    unsigned pageShift() const { return _phys.pageShift(); }
    Addr pageBytes() const { return _phys.pageBytes(); }

    /** Virtual page number of @p vaddr under the configured size. */
    VPage vpageOf(Addr vaddr) const { return vaddr >> pageShift(); }

    /** Create a fresh empty address space; returns its pid. */
    ProcessId createAddressSpace();

    /**
     * Clone @p src's page table into a new address space (fork).
     *
     * Shared mappings alias the same frames; PrivateCow pages with a
     * live private frame get their own copy (fork copies them).
     *
     * @return the new pid, or invalidProcessId if the clone failed
     *         (the mem.clone_fail fault point; real fork can fail).
     */
    ProcessId cloneAddressSpace(ProcessId src);

    /** Access a space by pid. */
    AddressSpace &space(ProcessId pid);
    const AddressSpace &space(ProcessId pid) const;

    /** Number of address spaces created so far. */
    std::size_t spaceCount() const { return _spaces.size(); }

    /**
     * Map @p n_pages of @p region at virtual address @p vbase in
     * process @p pid as a shared read-write mapping.
     */
    void mapShared(ProcessId pid, Addr vbase, ShmRegion &region,
                   std::uint64_t file_page_start, std::uint64_t n_pages);

    /**
     * Switch @p vpage in @p pid to PrivateCow (repair protection).
     *
     * Subsequent writes by that process fault and copy the frame.
     * No-op if already protected.
     */
    void protectPrivateCow(ProcessId pid, VPage vpage);

    /**
     * Revert @p vpage in @p pid to SharedRW, dropping any private
     * frame. The caller (PTSB) must have merged wanted changes first.
     */
    void unprotect(ProcessId pid, VPage vpage);

    /** True if @p vpage is currently PrivateCow in @p pid. */
    bool isProtected(ProcessId pid, VPage vpage) const;

    /**
     * Drop a PrivateCow page's private frame without unprotecting,
     * so the next write re-faults and re-twins (PTSB commit step 5).
     */
    void dropPrivateFrame(ProcessId pid, VPage vpage);

    /** Install the COW-fault callback (at most one; PTSB). */
    void setCowCallback(CowCallback cb) { _cowCallback = std::move(cb); }

    /** Install the COW-abort callback (at most one; runtime). */
    void
    setCowAbortCallback(CowAbortCallback cb)
    {
        _cowAbortCallback = std::move(cb);
    }

    /** Wire the fault injector (null disables injection). */
    void setFaultInjector(FaultInjector *faults) { _faults = faults; }

    /**
     * Wire the access-path invalidation epoch (null disables). Every
     * mapping mutation -- protect/unprotect, COW service or abort,
     * private-frame drop, clone, mapShared -- bumps it so cached
     * translations die before they can go stale.
     */
    void setEpoch(InvalidationEpoch *epoch) { _epoch = epoch; }

    /** Wire the trace recorder: serviced COW faults emit CowFault
     *  events (null disables). */
    void setTrace(obs::TraceRecorder *trace) { _trace = trace; }

    /** COW faults abandoned because no frame/twin was available. */
    std::uint64_t cowAborts() const
    {
        return static_cast<std::uint64_t>(_statCowAborts.value());
    }

    /**
     * Translate @p vaddr for an access by @p pid.
     *
     * Handles first-touch accounting and COW faults. Panics on an
     * unmapped page (a simulated segfault is always a harness bug).
     */
    TranslateResult translate(ProcessId pid, Addr vaddr, bool is_write);

    /**
     * Translate without side effects (no faults, no accounting).
     *
     * Returns false if unmapped. Used by diagnostic readers.
     */
    bool translatePeek(ProcessId pid, Addr vaddr, Addr &paddr) const;

    /** Data-path read: translate page-by-page and copy bytes out. */
    void read(ProcessId pid, Addr vaddr, void *buf, std::size_t size);

    /** Data-path write: translate page-by-page and copy bytes in. */
    void write(ProcessId pid, Addr vaddr, const void *buf,
               std::size_t size);

    /**
     * Read through the always-shared mapping, ignoring PrivateCow
     * divergence (the paper's first mmap of the shm file).
     */
    void readShared(ProcessId pid, Addr vaddr, void *buf,
                    std::size_t size);

    /** Total soft (first-touch) page faults taken. */
    std::uint64_t softFaults() const;

    /** Total COW faults taken. */
    std::uint64_t cowFaults() const;

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    PageEntry &entryForAccess(ProcessId pid, Addr vaddr);
    /** Revert @p entry to SharedRW after an unserviceable COW fault. */
    void abandonCow(ProcessId pid, VPage vpage, PageEntry &entry);

    void
    bumpEpoch()
    {
        if (_epoch)
            _epoch->bump();
    }

    PhysicalMemory _phys;
    std::vector<std::unique_ptr<AddressSpace>> _spaces;
    CowCallback _cowCallback;
    CowAbortCallback _cowAbortCallback;
    FaultInjector *_faults = nullptr;
    obs::TraceRecorder *_trace = nullptr;
    InvalidationEpoch *_epoch = nullptr;

    stats::Scalar _statSoftFaults;
    stats::Scalar _statCowFaults;
    stats::Scalar _statCowAborts;
    stats::Scalar _statProtects;
    stats::Scalar _statUnprotects;
    stats::Scalar _statClones;
    stats::Scalar _statCloneFails;
};

} // namespace tmi

#endif // TMI_MEM_MMU_HH
