#include "physical.hh"

#include <cstring>

namespace tmi
{

PhysicalMemory::PhysicalMemory(unsigned page_shift)
    : _pageShift(page_shift)
{
    TMI_ASSERT(page_shift >= lineShift && page_shift <= 30);
}

PhysicalMemory::Frame &
PhysicalMemory::frameRef(PPage frame)
{
    TMI_ASSERT(frame < _frames.size());
    return _frames[frame];
}

const PhysicalMemory::Frame &
PhysicalMemory::frameRefConst(PPage frame) const
{
    TMI_ASSERT(frame < _frames.size());
    return _frames[frame];
}

std::uint8_t *
PhysicalMemory::materialize(Frame &f)
{
    TMI_ASSERT(f.live);
    if (!f.data) {
        f.data = std::make_unique<std::uint8_t[]>(pageBytes());
        std::memset(f.data.get(), 0, pageBytes());
    }
    return f.data.get();
}

PPage
PhysicalMemory::allocFrame()
{
    _frames.emplace_back();
    _frames.back().live = true;
    ++_liveFrames;
    if (_liveFrames > _peakFrames)
        _peakFrames = _liveFrames;
    ++_statFramesAllocated;
    return _frames.size() - 1;
}

PPage
PhysicalMemory::allocCopy(PPage src)
{
    PPage dst = allocFrame();
    ++_statFramesCopied;
    const Frame &sf = frameRefConst(src);
    TMI_ASSERT(sf.live);
    if (sf.data) {
        Frame &df = frameRef(dst);
        materialize(df);
        std::memcpy(df.data.get(), sf.data.get(), pageBytes());
    }
    return dst;
}

void
PhysicalMemory::freeFrame(PPage frame)
{
    Frame &f = frameRef(frame);
    TMI_ASSERT(f.live);
    f.live = false;
    f.data.reset();
    --_liveFrames;
    ++_statFramesFreed;
}

void
PhysicalMemory::read(Addr paddr, void *buf, std::size_t size) const
{
    auto *out = static_cast<std::uint8_t *>(buf);
    while (size > 0) {
        PPage frame = paddr >> _pageShift;
        Addr off = paddr & (pageBytes() - 1);
        std::size_t chunk =
            std::min<std::size_t>(size, pageBytes() - off);
        const Frame &f = frameRefConst(frame);
        TMI_ASSERT(f.live);
        if (f.data)
            std::memcpy(out, f.data.get() + off, chunk);
        else
            std::memset(out, 0, chunk);
        out += chunk;
        paddr += chunk;
        size -= chunk;
    }
}

void
PhysicalMemory::write(Addr paddr, const void *buf, std::size_t size)
{
    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (size > 0) {
        PPage frame = paddr >> _pageShift;
        Addr off = paddr & (pageBytes() - 1);
        std::size_t chunk =
            std::min<std::size_t>(size, pageBytes() - off);
        Frame &f = frameRef(frame);
        TMI_ASSERT(f.live);
        std::memcpy(materialize(f) + off, in, chunk);
        in += chunk;
        paddr += chunk;
        size -= chunk;
    }
}

std::uint8_t *
PhysicalMemory::framePtr(PPage frame)
{
    return materialize(frameRef(frame));
}

const std::uint8_t *
PhysicalMemory::framePtrIfTouched(PPage frame) const
{
    const Frame &f = frameRefConst(frame);
    TMI_ASSERT(f.live);
    return f.data.get();
}

bool
PhysicalMemory::frameLive(PPage frame) const
{
    if (frame >= _frames.size())
        return false;
    return _frames[frame].live;
}

void
PhysicalMemory::regStats(stats::StatGroup &group)
{
    group.addScalar("framesAllocated", &_statFramesAllocated,
                    "total physical frames ever allocated");
    group.addScalar("framesCopied", &_statFramesCopied,
                    "frames allocated as COW copies");
    group.addScalar("framesFreed", &_statFramesFreed,
                    "frames released");
}

} // namespace tmi
