/**
 * @file
 * Per-process virtual address space: the simulated page table.
 *
 * Threads of one process share an AddressSpace. When Tmi converts a
 * thread to a process (T2P), the thread receives a clone of the page
 * table; shared mappings keep pointing at the same physical frames,
 * so memory stays coherent until a page is deliberately made
 * process-private for repair.
 */

#ifndef TMI_MEM_ADDRESS_SPACE_HH
#define TMI_MEM_ADDRESS_SPACE_HH

#include <unordered_map>

#include "mem/shm.hh"

namespace tmi
{

/** How a virtual page is currently mapped. */
enum class MapKind : std::uint8_t
{
    SharedRW,   //!< shared mapping, reads and writes hit the file frame
    PrivateCow, //!< read-only; first write copies the frame (repair)
};

/** One page-table entry. */
struct PageEntry
{
    /** Backing shm region (all application memory is file-backed). */
    ShmRegion *backing = nullptr;
    /** Page index within the backing region. */
    std::uint64_t filePage = 0;
    /** Private frame after a COW fault; invalidPPage until then. */
    PPage privateFrame = invalidPPage;
    /** Current mapping mode. */
    MapKind kind = MapKind::SharedRW;
    /** First access by this process already accounted (soft fault). */
    bool touched = false;

    /** Frame an access should use given the current mapping. */
    PPage
    activeFrame() const
    {
        if (kind == MapKind::PrivateCow && privateFrame != invalidPPage)
            return privateFrame;
        return backing->frameFor(filePage);
    }
};

/** A simulated process page table. */
class AddressSpace
{
  public:
    explicit AddressSpace(ProcessId pid) : _pid(pid) {}

    ProcessId pid() const { return _pid; }

    /** Look up the entry for @p vpage; null if unmapped. */
    PageEntry *
    find(VPage vpage)
    {
        auto it = _table.find(vpage);
        return it == _table.end() ? nullptr : &it->second;
    }

    const PageEntry *
    find(VPage vpage) const
    {
        auto it = _table.find(vpage);
        return it == _table.end() ? nullptr : &it->second;
    }

    /** Install or replace the entry for @p vpage. */
    void
    install(VPage vpage, const PageEntry &entry)
    {
        _table[vpage] = entry;
    }

    /** Remove the entry for @p vpage. */
    void erase(VPage vpage) { _table.erase(vpage); }

    /** Number of mapped pages. */
    std::size_t mappedPages() const { return _table.size(); }

    /** Iterate all entries (for clone and teardown). */
    const std::unordered_map<VPage, PageEntry> &table() const
    {
        return _table;
    }

    std::unordered_map<VPage, PageEntry> &table() { return _table; }

  private:
    ProcessId _pid;
    std::unordered_map<VPage, PageEntry> _table;
};

} // namespace tmi

#endif // TMI_MEM_ADDRESS_SPACE_HH
