#include "export.hh"

#include <cinttypes>
#include <cstdio>
#include <map>

namespace tmi::obs
{

namespace
{

/** JSON string escape for the small ASCII detail strings we emit. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatMicros(Cycles cycles, double cycles_per_second)
{
    double us = static_cast<double>(cycles) / cycles_per_second * 1e6;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", us);
    return buf;
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceEvent> &events,
                 const ChromeTraceMeta &meta)
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
          "\"tid\":0,\"args\":{\"name\":\""
       << jsonEscape(meta.processName) << "\"}}";
    for (const TraceEvent &ev : events) {
        os << ",\n{\"name\":\"" << eventKindName(ev.kind)
           << "\",\"cat\":\"tmi\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
           << formatMicros(ev.time, meta.cyclesPerSecond)
           << ",\"pid\":1,\"tid\":" << ev.tid << ",\"args\":{";
        os << "\"cycles\":" << ev.time << ",\"a0\":" << ev.a0
           << ",\"a1\":" << ev.a1;
        if (ev.detail[0] != '\0')
            os << ",\"detail\":\"" << jsonEscape(ev.detail) << "\"";
        os << "}}";
    }
    os << "]}\n";
}

void
writeCsvTimeSeries(std::ostream &os,
                   const std::vector<TraceEvent> &events,
                   double cycles_per_second, Cycles bucket)
{
    if (bucket == 0)
        bucket = 1;
    os << "window,start_ms";
    for (EventKind kind : allEventKinds())
        os << ',' << eventKindName(kind);
    os << '\n';

    // events are time-ordered (drain() sorts), so one forward pass
    // fills each window in turn.
    Cycles last_time = events.empty() ? 0 : events.back().time;
    std::uint64_t windows = last_time / bucket + 1;
    std::size_t next = 0;
    for (std::uint64_t w = 0; w < windows; ++w) {
        std::uint64_t counts[numEventKinds] = {};
        Cycles end = (w + 1) * bucket;
        while (next < events.size() && events[next].time < end) {
            ++counts[static_cast<unsigned>(events[next].kind)];
            ++next;
        }
        double start_ms = static_cast<double>(w * bucket) /
                          cycles_per_second * 1e3;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f", start_ms);
        os << w << ',' << buf;
        for (unsigned k = 0; k < numEventKinds; ++k)
            os << ',' << counts[k];
        os << '\n';
    }
}

TraceSummary
summarizeTrace(const std::vector<TraceEvent> &events)
{
    TraceSummary sum;
    for (const TraceEvent &ev : events) {
        ++sum.counts[static_cast<unsigned>(ev.kind)];
        ++sum.total;
        if (sum.total == 1 || ev.time < sum.firstTime)
            sum.firstTime = ev.time;
        if (ev.time > sum.lastTime)
            sum.lastTime = ev.time;
    }
    return sum;
}

void
writeTraceReport(std::ostream &os,
                 const std::vector<TraceEvent> &events,
                 double cycles_per_second)
{
    TraceSummary sum = summarizeTrace(events);
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "trace: %" PRIu64 " events spanning %.3f ms\n",
                  sum.total,
                  static_cast<double>(sum.lastTime - sum.firstTime) /
                      cycles_per_second * 1e3);
    os << buf;
    for (EventKind kind : allEventKinds()) {
        if (sum.count(kind) == 0)
            continue;
        std::snprintf(buf, sizeof(buf), "  %-20s %12" PRIu64 "\n",
                      eventKindName(kind), sum.count(kind));
        os << buf;
    }

    // Fault fires by point.
    std::map<std::string, std::uint64_t> fires;
    for (const TraceEvent &ev : events) {
        if (ev.kind == EventKind::FaultFire)
            ++fires[ev.detail];
    }
    if (!fires.empty()) {
        os << "fault points fired:\n";
        for (const auto &[point, n] : fires) {
            std::snprintf(buf, sizeof(buf), "  %-28s %8" PRIu64 "\n",
                          point.c_str(), n);
            os << buf;
        }
    }

    // Every state transition the self-healing machinery took, with
    // reason and timestamp -- the narrative of the run.
    bool have_transitions = false;
    for (const TraceEvent &ev : events) {
        switch (ev.kind) {
          case EventKind::T2pCommit:
          case EventKind::T2pRollback:
          case EventKind::Unrepair:
          case EventKind::LadderDrop:
          case EventKind::WatchdogFlush:
            if (!have_transitions) {
                os << "transitions:\n";
                have_transitions = true;
            }
            std::snprintf(
                buf, sizeof(buf), "  %10.3f ms  %-16s %s\n",
                static_cast<double>(ev.time) / cycles_per_second * 1e3,
                eventKindName(ev.kind), ev.detail);
            os << buf;
            break;
          default:
            break;
        }
    }
}

void
writeMetricsCsv(std::ostream &os, const MetricsRegistry &metrics)
{
    os << "kind,name,value,count,mean,min,max,p50,p99,p999\n";
    char buf[96];
    auto num = [&buf](double v) -> const char * {
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        return buf;
    };
    for (const std::string &name : metrics.names()) {
        if (const Counter *c = metrics.findCounter(name)) {
            os << "counter," << name << "," << num(c->value())
               << ",,,,,,,\n";
        } else if (const Gauge *g = metrics.findGauge(name)) {
            os << "gauge," << name << "," << num(g->value())
               << ",,,,,,,\n";
        } else if (const Histogram *h = metrics.findHistogram(name)) {
            os << "histogram," << name << ",," << h->count();
            os << "," << num(h->mean());
            os << "," << num(h->min());
            os << "," << num(h->max());
            os << "," << num(h->p50());
            os << "," << num(h->p99());
            os << "," << num(h->p999());
            os << "\n";
        }
    }
}

} // namespace tmi::obs
